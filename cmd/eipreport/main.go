// Command eipreport reruns the paper's entire evaluation (Tables 1-6 and
// the data behind Figures 6 and 8, plus the baseline comparison) against
// the synthetic dataset catalog and prints the resulting tables. It is the
// programmatic counterpart of EXPERIMENTS.md.
//
// Usage:
//
//	eipreport                 # laptop-scale defaults (1K train, 100K candidates)
//	eipreport -quick          # very small sizes, a few seconds end to end
//	eipreport -candidates 1000000   # the paper's candidate count
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"entropyip/internal/core"
	"entropyip/internal/report"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "use very small experiment sizes (smoke test)")
		train      = flag.Int("train", 1000, "training sample size")
		candidates = flag.Int("candidates", 100000, "number of generated candidates per dataset")
		universe   = flag.Int("universe", 0, "synthetic universe size per dataset (0 = archetype default)")
		seed       = flag.Int64("seed", 1, "random seed")
		only       = flag.String("only", "", "run only one exhibit: table1..table6, figure6, figure8, baselines")
	)
	flag.Parse()

	sizes := report.Sizes{TrainSize: *train, Candidates: *candidates, UniverseSize: *universe, Seed: *seed}
	if *quick {
		sizes = report.Sizes{TrainSize: 300, Candidates: 5000, UniverseSize: 6000, Seed: *seed}
	}
	// All exhibit output flows through one buffered writer: the tables are
	// hundreds of lines, and unbuffered per-line prints cost a syscall
	// each. The buffer is flushed (with the error checked) after every
	// exhibit and before any error exit, so partial output is never lost.
	out := bufio.NewWriter(os.Stdout)
	flush := func() {
		if err := out.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "eipreport: writing output: %v\n", err)
			os.Exit(1)
		}
	}
	run := func(name string, fn func() error) {
		if *only != "" && *only != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			flush()
			fmt.Fprintf(os.Stderr, "eipreport: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		flush()
	}

	run("table1", func() error {
		t, err := report.Table1(sizes.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t)
		return nil
	})
	run("table2", func() error {
		a, err := report.Analyze("C1", sizes, core.Options{})
		if err != nil {
			return err
		}
		t, err := report.Table2(a)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t)
		return nil
	})
	run("table3", func() error {
		a, err := report.Analyze("S1", sizes, core.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, report.Table3(a))
		return nil
	})
	run("table4", func() error {
		t, _, err := report.Table4(sizes)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t)
		return nil
	})
	run("table5", func() error {
		trainSizes := []int{100, 1000, 10000}
		if *quick {
			trainSizes = []int{100, 300}
		}
		t, _, err := report.Table5(nil, trainSizes, sizes)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t)
		return nil
	})
	run("table6", func() error {
		t, _, err := report.Table6(sizes)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t)
		return nil
	})
	run("figure6", func() error {
		series, err := report.Figure6(sizes)
		if err != nil {
			return err
		}
		t := &report.Table{Title: "Figure 6: total entropy (H_S) of the aggregate datasets",
			Header: []string{"Dataset", "H_S", "mean H (bits 0-64)", "mean H (bits 64-128)"}}
		for _, s := range series {
			t.Add(s.Dataset, fmt.Sprintf("%.1f", s.Total), fmt.Sprintf("%.2f", mean(s.H[:16])), fmt.Sprintf("%.2f", mean(s.H[16:])))
		}
		fmt.Fprintln(out, t)
		return nil
	})
	run("figure8", func() error {
		series, err := report.Figure8(sizes)
		if err != nil {
			return err
		}
		t := &report.Table{Title: "Figure 8: per-dataset entropy summaries",
			Header: []string{"Dataset", "H_S", "mean ACR (bits 32-64)", "mean H (bits 64-128)"}}
		for _, s := range series {
			t.Add(s.Dataset, fmt.Sprintf("%.1f", s.Total), fmt.Sprintf("%.2f", mean(s.ACR[8:16])), fmt.Sprintf("%.2f", mean(s.H[16:])))
		}
		fmt.Fprintln(out, t)
		return nil
	})
	run("baselines", func() error {
		rows, err := report.CompareBaselines("R1", sizes)
		if err != nil {
			return err
		}
		t := &report.Table{Title: "Baseline comparison on R1 (ablation; §2/§5.5 discussion)",
			Header: []string{"Generator", "Overall hits", "Success", "New /64s"}}
		for _, r := range rows {
			t.Add(r.Generator, r.Overall, report.Percent(r.SuccessRate), r.NewPrefixes)
		}
		fmt.Fprintln(out, t)
		return nil
	})
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
