// Command eipsynth synthesizes IPv6 address datasets from the built-in
// archetype catalog (the stand-ins for the paper's S*, R*, C* and aggregate
// datasets) and writes them as text files, one address per line.
//
// Usage:
//
//	eipsynth -list
//	eipsynth -dataset S1 -n 30000 -seed 1 -o s1.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"entropyip/internal/dataset"
	"entropyip/internal/synth"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the available dataset archetypes and exit")
		name    = flag.String("dataset", "", "archetype to synthesize (e.g. S1, R3, C5, AC)")
		n       = flag.Int("n", 0, "number of unique addresses (0 = archetype default)")
		seed    = flag.Int64("seed", 1, "random seed")
		outPath = flag.String("o", "-", "output file ('-' for stdout)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-5s %-10s %-12s %-10s %s\n", "NAME", "KIND", "PAPER SIZE", "DEFAULT", "DESCRIPTION")
		for _, s := range synth.Catalog() {
			fmt.Printf("%-5s %-10s %-12d %-10d %s\n", s.Name, s.Kind, s.PaperSize, s.DefaultSize, s.Description)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "eipsynth: -dataset is required (use -list to see choices)")
		os.Exit(2)
	}
	addrs, err := synth.Generate(*name, *n, *seed)
	if err != nil {
		fatal(err)
	}
	d := dataset.New(*name, addrs)
	if *outPath == "-" {
		if err := d.Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if err := d.SaveFile(*outPath); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "eipsynth: wrote %d addresses of %s to %s\n", d.Len(), *name, *outPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eipsynth:", err)
	os.Exit(1)
}
