// Command entropyip analyzes a set of IPv6 addresses with the Entropy/IP
// pipeline: per-nybble entropy, segmentation, segment mining and Bayesian
// network learning. It prints a terminal report (entropy plot, mined
// segment values, dependencies) and can write the trained model as JSON,
// the interactive conditional-probability browser as HTML, and the network
// structure as Graphviz DOT.
//
// Usage:
//
//	entropyip -in addresses.txt -train 1000 -model model.json -html report.html
//	entropyip -dataset C1 -train 1000 -condition J=J1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"entropyip/internal/core"
	"entropyip/internal/dataset"
	"entropyip/internal/ip6"
	"entropyip/internal/report"
	"entropyip/internal/stats"
	"entropyip/internal/synth"
	"entropyip/internal/viz"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input file with one IPv6 address per line")
		dsName    = flag.String("dataset", "", "analyze a built-in synthetic dataset instead of a file")
		trainSize = flag.Int("train", 1000, "number of training addresses sampled from the input (0 = all)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "goroutines used for training (0 = all cores; the model is identical either way)")
		prefix64  = flag.Bool("prefix64", false, "model only the top 64 bits (network identifiers)")
		condition = flag.String("condition", "", "conditional browsing evidence, e.g. \"J=J1,B=B2\"")
		modelOut  = flag.String("model", "", "write the trained model as JSON to this file")
		htmlOut   = flag.String("html", "", "write the conditional probability browser as HTML to this file")
		dotOut    = flag.String("dot", "", "write the Bayesian network structure as Graphviz DOT to this file")
		quiet     = flag.Bool("q", false, "suppress the terminal report")
	)
	flag.Parse()

	addrs, name, err := loadInput(*inPath, *dsName, *seed)
	if err != nil {
		fatal(err)
	}
	train := addrs
	if *trainSize > 0 && *trainSize < len(addrs) {
		train, _ = stats.SplitTrainTest(stats.RNG(*seed), addrs, *trainSize)
	}
	model, err := core.Build(train, core.Options{Prefix64Only: *prefix64, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	evidence, err := parseEvidence(*condition)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		printReport(name, model, evidence)
	}
	if *modelOut != "" {
		if err := writeFile(*modelOut, func(f *os.File) error { return model.Save(f) }); err != nil {
			fatal(err)
		}
	}
	if *htmlOut != "" {
		page := &viz.BrowserPage{Title: name, Model: model, Evidence: evidence}
		if err := writeFile(*htmlOut, func(f *os.File) error { return page.Render(f) }); err != nil {
			fatal(err)
		}
	}
	if *dotOut != "" {
		dot := viz.DOTNetwork(model, "")
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			fatal(err)
		}
	}
}

func loadInput(inPath, dsName string, seed int64) ([]ip6.Addr, string, error) {
	switch {
	case inPath != "" && dsName != "":
		return nil, "", fmt.Errorf("use either -in or -dataset, not both")
	case inPath != "":
		d, err := dataset.LoadFile(inPath)
		if err != nil {
			return nil, "", err
		}
		return d.Addrs, inPath, nil
	case dsName != "":
		addrs, err := synth.Generate(dsName, 0, seed)
		return addrs, dsName, err
	default:
		return nil, "", fmt.Errorf("one of -in or -dataset is required")
	}
}

func parseEvidence(s string) (core.Evidence, error) {
	if s == "" {
		return nil, nil
	}
	ev := core.Evidence{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("invalid -condition entry %q (want LABEL=CODE)", part)
		}
		ev[kv[0]] = kv[1]
	}
	return ev, nil
}

func printReport(name string, model *core.Model, evidence core.Evidence) {
	fmt.Printf("Entropy/IP analysis of %s (%d training addresses)\n", name, model.TrainCount)
	fmt.Printf("total entropy H_S = %.1f\n\n", model.TotalEntropy())
	segments := make([]string, 32)
	for _, sm := range model.Segments {
		if sm.Seg.Start < len(segments) {
			segments[sm.Seg.Start] = sm.Seg.Label
		}
	}
	fmt.Println(viz.ASCIIEntropy(model.Profile.H[:], model.ACR.ACR[:], segments))
	fmt.Println("Segmentation:", model.Segmentation.String())
	fmt.Println()
	a := &report.Analysis{Dataset: name, Model: model}
	fmt.Println(report.Table3(a).String())
	fmt.Println("Bayesian network dependencies (by mutual information):")
	for _, d := range model.Dependencies() {
		fmt.Printf("  %s -> %s  (MI %.2f bits)\n", d.Parent, d.Child, d.MI)
	}
	fmt.Println()
	dists, err := model.Browse(evidence)
	if err != nil {
		fatal(err)
	}
	if len(evidence) > 0 {
		fmt.Printf("Conditional probability browser (evidence: %v):\n", evidence)
	} else {
		fmt.Println("Conditional probability browser (no evidence):")
	}
	fmt.Println(viz.ASCIIBrowser(dists))
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "entropyip:", err)
	os.Exit(1)
}
