// Command entropyip analyzes a set of IPv6 addresses with the Entropy/IP
// pipeline: per-nybble entropy, segmentation, segment mining and Bayesian
// network learning. It prints a terminal report (entropy plot, mined
// segment values, dependencies) and can write the trained model as JSON,
// the interactive conditional-probability browser as HTML, and the network
// structure as Graphviz DOT.
//
// Usage:
//
//	entropyip -in addresses.txt -train 1000 -model model.json -html report.html
//	entropyip -dataset C1 -train 1000 -condition J=J1
//
// With -gen N it additionally generates N candidate addresses from the
// freshly trained model (conditioned on -condition, parallelized with
// -gen-workers), streaming them to -gen-out:
//
//	entropyip -in addresses.txt -train 1000 -q -gen 100000 -gen-out cands.txt
//
// With -drift it runs offline drift scoring instead of training: the input
// addresses are compared against an existing model (the offline twin of
// eipserved's online drift detection), the per-segment divergence report
// is printed, and the exit status is 2 when the score reaches the enter
// threshold — so cron jobs can page on stale models.
//
//	entropyip -in today.txt -drift model.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"entropyip/internal/buildinfo"
	"entropyip/internal/core"
	"entropyip/internal/dataset"
	"entropyip/internal/drift"
	"entropyip/internal/ip6"
	"entropyip/internal/obs"
	"entropyip/internal/report"
	"entropyip/internal/stats"
	"entropyip/internal/synth"
	"entropyip/internal/viz"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input file with one IPv6 address per line")
		dsName    = flag.String("dataset", "", "analyze a built-in synthetic dataset instead of a file")
		trainSize = flag.Int("train", 1000, "number of training addresses sampled from the input (0 = all)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "goroutines used for training (0 = all cores; the model is identical either way)")
		prefix64  = flag.Bool("prefix64", false, "model only the top 64 bits (network identifiers)")
		condition = flag.String("condition", "", "conditional browsing evidence, e.g. \"J=J1,B=B2\"")
		modelOut  = flag.String("model", "", "write the trained model as JSON to this file")
		genCount  = flag.Int("gen", 0, "generate this many candidate addresses from the trained model (conditioned on -condition)")
		genOut    = flag.String("gen-out", "-", "file the -gen candidates are written to ('-' for stdout)")
		genWork   = flag.Int("gen-workers", 0, "goroutines used for -gen (0 = all cores; the candidate stream is identical either way)")
		htmlOut   = flag.String("html", "", "write the conditional probability browser as HTML to this file")
		dotOut    = flag.String("dot", "", "write the Bayesian network structure as Graphviz DOT to this file")
		quiet     = flag.Bool("q", false, "suppress the terminal report")
		driftIn   = flag.String("drift", "", "score the input addresses for drift against this model file instead of training")
		driftGate = flag.Float64("drift-enter", drift.DefaultEnter, "drift score at which -drift exits with status 2")
		trace     = flag.Bool("trace", false, "print per-stage training pipeline timings to stderr")
		version   = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println("entropyip", buildinfo.Version())
		return
	}

	addrs, name, err := loadInput(*inPath, *dsName, *seed)
	if err != nil {
		fatal(err)
	}
	if *driftIn != "" {
		runDrift(*driftIn, name, addrs, *driftGate, *quiet)
		return
	}
	train := addrs
	if *trainSize > 0 && *trainSize < len(addrs) {
		train, _ = stats.SplitTrainTest(stats.RNG(*seed), addrs, *trainSize)
	}
	buildOpts := core.Options{Prefix64Only: *prefix64, Workers: *workers}
	var tr *obs.StageTrace
	if *trace {
		tr = obs.NewStageTrace()
		buildOpts.OnStage = tr.Record
	}
	model, err := core.Build(train, buildOpts)
	if err != nil {
		fatal(err)
	}
	if tr != nil {
		fmt.Fprintln(os.Stderr, "entropyip: training stage timing:")
		if err := tr.Report(os.Stderr); err != nil {
			fatal(err)
		}
	}
	evidence, err := parseEvidence(*condition)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		printReport(name, model, evidence)
	}
	if *modelOut != "" {
		if err := writeFile(*modelOut, func(f *os.File) error { return model.Save(f) }); err != nil {
			fatal(err)
		}
	}
	if *htmlOut != "" {
		page := &viz.BrowserPage{Title: name, Model: model, Evidence: evidence}
		if err := writeFile(*htmlOut, func(f *os.File) error { return page.Render(f) }); err != nil {
			fatal(err)
		}
	}
	if *dotOut != "" {
		dot := viz.DOTNetwork(model, "")
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			fatal(err)
		}
	}
	if *genCount > 0 {
		if err := generateCandidates(model, *genCount, *seed, *genWork, evidence, *genOut); err != nil {
			fatal(err)
		}
	}
}

// generateCandidates streams candidates drawn from the trained model —
// the §5.5 generation step without a separate eipgen invocation. The
// training addresses are not excluded here; use eipgen -exclude for the
// paper's "new targets only" workflow.
func generateCandidates(model *core.Model, n int, seed int64, workers int, evidence core.Evidence, outPath string) error {
	out := os.Stdout
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	opts := core.GenerateOptions{Count: n, Seed: seed, Workers: workers, Evidence: evidence}
	count := 0
	line := make([]byte, 0, 64)
	err := model.GenerateStream(opts, func(a ip6.Addr) bool {
		line = a.AppendString(line[:0])
		line = append(line, '\n')
		_, werr := w.Write(line)
		count++
		return werr == nil
	})
	// Flush even on a mid-stream error so the output file is not left
	// truncated mid-line.
	if ferr := w.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "entropyip: generated %d candidate addresses\n", count)
	return nil
}

// runDrift is the offline drift sub-mode: score the input addresses
// against a saved model and report per-segment divergence.
func runDrift(modelPath, name string, addrs []ip6.Addr, gate float64, quiet bool) {
	f, err := os.Open(modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := core.Load(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("loading model %s: %w", modelPath, err))
	}
	rep, err := drift.Score(model, addrs)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		w := bufio.NewWriter(os.Stdout)
		fmt.Fprintf(w, "Drift of %s (%d addresses) against %s (trained on %d):\n\n",
			name, rep.Window, modelPath, model.TrainCount)
		fmt.Fprintf(w, "  %-8s %-12s %8s %8s %10s %8s\n", "segment", "nybbles", "codeJS", "codeKL", "nybbleJS", "clamped")
		for _, s := range rep.Segments {
			nyb := "n/a"
			if s.HasNybble {
				nyb = fmt.Sprintf("%.3f", s.NybbleJS)
			}
			fmt.Fprintf(w, "  %-8s %3d..%-8d %8.3f %8.3f %10s %7.1f%%\n",
				s.Label, s.Start, s.Start+s.Width, s.CodeJS, s.CodeKL, nyb, 100*s.Clamped)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  score (max segment divergence): %.3f\n", rep.Score)
		fmt.Fprintf(w, "  mean code JS:                   %.3f\n", rep.MeanCodeJS)
		fmt.Fprintf(w, "  mean log-likelihood per addr:   %.2f nats\n", rep.MeanLogLikelihood)
		if err := w.Flush(); err != nil {
			fatal(err)
		}
	}
	if rep.Score >= gate {
		fmt.Printf("DRIFTED: score %.3f >= %.3f — the model is stale for this input\n", rep.Score, gate)
		os.Exit(2)
	}
	fmt.Printf("OK: score %.3f < %.3f\n", rep.Score, gate)
}

func loadInput(inPath, dsName string, seed int64) ([]ip6.Addr, string, error) {
	switch {
	case inPath != "" && dsName != "":
		return nil, "", fmt.Errorf("use either -in or -dataset, not both")
	case inPath != "":
		d, err := dataset.LoadFile(inPath)
		if err != nil {
			return nil, "", err
		}
		return d.Addrs, inPath, nil
	case dsName != "":
		addrs, err := synth.Generate(dsName, 0, seed)
		return addrs, dsName, err
	default:
		return nil, "", fmt.Errorf("one of -in or -dataset is required")
	}
}

func parseEvidence(s string) (core.Evidence, error) {
	if s == "" {
		return nil, nil
	}
	ev := core.Evidence{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("invalid -condition entry %q (want LABEL=CODE)", part)
		}
		ev[kv[0]] = kv[1]
	}
	return ev, nil
}

// printReport renders the terminal report through one buffered writer —
// the report is dozens of lines, and unbuffered per-line Printf costs one
// syscall each — with an explicit final flush whose error is checked (a
// full pipe or closed stdout must not pass silently).
func printReport(name string, model *core.Model, evidence core.Evidence) {
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "Entropy/IP analysis of %s (%d training addresses)\n", name, model.TrainCount)
	fmt.Fprintf(w, "total entropy H_S = %.1f\n\n", model.TotalEntropy())
	segments := make([]string, 32)
	for _, sm := range model.Segments {
		if sm.Seg.Start < len(segments) {
			segments[sm.Seg.Start] = sm.Seg.Label
		}
	}
	fmt.Fprintln(w, viz.ASCIIEntropy(model.Profile.H[:], model.ACR.ACR[:], segments))
	fmt.Fprintln(w, "Segmentation:", model.Segmentation.String())
	fmt.Fprintln(w)
	a := &report.Analysis{Dataset: name, Model: model}
	fmt.Fprintln(w, report.Table3(a).String())
	fmt.Fprintln(w, "Bayesian network dependencies (by mutual information):")
	for _, d := range model.Dependencies() {
		fmt.Fprintf(w, "  %s -> %s  (MI %.2f bits)\n", d.Parent, d.Child, d.MI)
	}
	fmt.Fprintln(w)
	dists, err := model.Browse(evidence)
	if err != nil {
		_ = w.Flush()
		fatal(err)
	}
	if len(evidence) > 0 {
		fmt.Fprintf(w, "Conditional probability browser (evidence: %v):\n", evidence)
	} else {
		fmt.Fprintln(w, "Conditional probability browser (no evidence):")
	}
	fmt.Fprintln(w, viz.ASCIIBrowser(dists))
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "entropyip:", err)
	os.Exit(1)
}
