// Command eipserved is the Entropy/IP model-serving daemon: a long-running
// HTTP server that holds trained models in a versioned registry (in-memory
// LRU over a disk directory) and answers the paper's two application
// workloads over the network — conditional-probability browsing (Figs. 1,
// 7, 9–10) and candidate generation for scanning (§5.5–5.6) — while
// continuously ingesting observed addresses, scoring the live window for
// drift against the active model, and (with -auto-refresh) retraining and
// rotating models that have gone stale.
//
// Usage:
//
//	eipserved -addr :8080 -dir /var/lib/eipserved
//	eipserved -auto-refresh -ingest-file /var/log/addrs.txt -ingest-model live
//	eipserved -log-format json -log-level debug
//	eipserved -rate-limit 50 -gen-budget 2e6 -tenant-slots 4 -queue-depth 32
//
// Endpoints (see internal/serve for the full API):
//
//	GET    /v1/models                   list models
//	PUT    /v1/models/{name}            upload or train a model
//	POST   /v1/models/{name}/browse     conditional probabilities
//	POST   /v1/models/{name}/generate   stream candidates (NDJSON)
//	POST   /v1/models/{name}/observe    ingest observed addresses (NDJSON)
//	GET    /v1/models/{name}/drift      drift status
//	GET    /healthz (also /v1/healthz)  liveness + version + metrics
//	GET    /metrics                     Prometheus text exposition
//
// Expensive training requests (client-submitted and drift-triggered alike)
// run on a bounded worker pool; the daemon sheds load with 503 when the
// queue is full. SIGINT/SIGTERM trigger a graceful shutdown that lets
// in-flight requests finish. All logging is structured (log/slog) on
// stderr: -log-format selects text or json, -log-level the verbosity
// (per-request access logs are emitted at debug).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"entropyip/internal/admission"
	"entropyip/internal/buildinfo"
	"entropyip/internal/drift"
	"entropyip/internal/ingest"
	"entropyip/internal/ip6"
	"entropyip/internal/obs"
	"entropyip/internal/obs/trace"
	"entropyip/internal/registry"
	"entropyip/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dir          = flag.String("dir", "models", "model registry directory")
		cacheSize    = flag.Int("cache", registry.DefaultCacheSize, "decoded models kept in memory (LRU)")
		workers      = flag.Int("workers", serve.DefaultWorkers, "concurrent model-training workers")
		queueDepth   = flag.Int("queue", serve.DefaultQueueDepth, "training requests that may wait for a worker")
		trainWorkers = flag.Int("train-workers", 0, "goroutines each training job may use (0 = all cores; models are identical either way)")
		genWorkers   = flag.Int("gen-workers", 0, "goroutines each generate request may use by default (0 = all cores; the candidate stream is identical either way)")
		maxBodyMB    = flag.Int("max-body-mb", 64, "request body limit in MiB")
		maxGenerate  = flag.Int("max-generate", serve.DefaultMaxGenerateCount, "largest count one generate request may ask for")
		drainWait    = flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")

		// Per-tenant admission control (tenant = X-Tenant header, falling
		// back to the client IP). All zero = admission disabled.
		rateLimit   = flag.Float64("rate-limit", 0, "per-tenant request rate on /v1 model routes, requests/second (0 = unlimited)")
		genBudget   = flag.Float64("gen-budget", 0, "per-tenant generation budget, candidates/second (0 = unlimited)")
		admQueue    = flag.Int("queue-depth", 0, "slot waiters one tenant may queue before requests shed with 429 (0 = default)")
		tenantSlots = flag.Int("tenant-slots", 0, "concurrent generation streams one tenant may run (0 = unlimited)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060); empty disables profiling")
		logFormat    = flag.String("log-format", "text", "log output format: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error (access logs are debug)")
		version      = flag.Bool("version", false, "print the version and exit")

		traceCapacity = flag.Int("trace-capacity", 0, "completed traces the flight recorder retains (0 = default 512)")
		traceSample   = flag.Int("trace-sample", 0, "keep 1 in N unremarkable traces (0 = default 64, negative = only errors/slow/forced)")
		traceSlow     = flag.Duration("trace-slow", 0, "requests at least this slow are always retained (0 = default 250ms)")

		// Online ingest + drift + refresh.
		autoRefresh   = flag.Bool("auto-refresh", false, "retrain and rotate models automatically when drift is detected")
		observeWindow = flag.Int("observe-window", ingest.DefaultWindowSize, "observed addresses kept per model (sliding window)")
		maxPer64      = flag.Int("observe-max-per64", 0, "window slots one /64 prefix may hold per model (0 = unlimited)")
		evaluateEvery = flag.Int("evaluate-every", serve.DefaultEvaluateEvery, "accepted observations between drift evaluations")
		driftEnter    = flag.Float64("drift-enter", drift.DefaultEnter, "drift score that (after -drift-consecutive evaluations) marks a model stale")
		driftExit     = flag.Float64("drift-exit", 0, "drift score at which a stale model recovers (0 = enter/2)")
		driftRuns     = flag.Int("drift-consecutive", drift.DefaultConsecutive, "consecutive evaluations above the enter threshold required")
		driftWindow   = flag.Int("drift-min-window", drift.DefaultMinWindow, "smallest window drift evaluation will judge")
		shadowMargin  = flag.Float64("shadow-margin", 0, "mean log-likelihood improvement (nats/address) a retrained candidate must show before rotation")

		// File tail mode: feed a model's window from an append-only file.
		ingestFile  = flag.String("ingest-file", "", "tail this address file (dataset format) into a model's observation window")
		ingestModel = flag.String("ingest-model", "", "model name -ingest-file feeds (required with -ingest-file)")
		ingestPoll  = flag.Duration("ingest-poll", ingest.DefaultTailPoll, "poll interval of the -ingest-file tail")
		ingestStart = flag.Bool("ingest-from-start", false, "consume the file's existing contents before following appends")
	)
	flag.Parse()

	if *version {
		fmt.Println("eipserved", buildinfo.Version())
		return
	}
	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "eipserved: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eipserved: -log-level: %v\n", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if (*ingestFile == "") != (*ingestModel == "") {
		fatal("-ingest-file and -ingest-model must be set together")
	}

	reg, err := registry.Open(*dir, *cacheSize)
	if err != nil {
		fatal("opening registry", "dir", *dir, "err", err)
	}
	handler := serve.New(reg, serve.Options{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		MaxBodyBytes:     int64(*maxBodyMB) << 20,
		MaxGenerateCount: *maxGenerate,
		TrainWorkers:     *trainWorkers,
		GenerateWorkers:  *genWorkers,
		Logger:           logger,
		Trace: trace.Policy{
			Capacity:      *traceCapacity,
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		},
		Admission: admission.Config{
			RequestRate: *rateLimit,
			GenBudget:   *genBudget,
			QueueDepth:  *admQueue,
			TenantSlots: *tenantSlots,
		},
		Refresh: serve.RefreshOptions{
			AutoRefresh:   *autoRefresh,
			EvaluateEvery: *evaluateEvery,
			ShadowMargin:  *shadowMargin,
			Ingest: ingest.Config{
				WindowSize: *observeWindow,
				MaxPer64:   *maxPer64,
			},
			Drift: drift.Config{
				Enter:       *driftEnter,
				Exit:        *driftExit,
				Consecutive: *driftRuns,
				MinWindow:   *driftWindow,
			},
			// Refresh events are logged by the Refresher itself through the
			// structured logger; no OnEvent callback needed.
		},
	})

	srv := newHTTPServer(*addr, handler)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Profiling is opt-in and deliberately a SEPARATE listener from the
	// API: pprof must never ride the public address, and a loopback bind
	// keeps heap/CPU profiles reachable only from the box — enforced, not
	// just documented: a non-loopback -pprof host is a startup error. The
	// default mux is avoided so importing net/http/pprof cannot leak
	// handlers into the API server either.
	if *pprofAddr != "" {
		if err := requireLoopback(*pprofAddr); err != nil {
			fatal("-pprof address rejected", "addr", *pprofAddr, "err", err)
		}
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			logger.Info("pprof listening", "url", "http://"+*pprofAddr+"/debug/pprof/")
			srv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	if *ingestFile != "" {
		go tailIntoModel(ctx, logger, reg, handler.Refresher(), *ingestFile, *ingestModel, ingest.TailConfig{
			Poll:      *ingestPoll,
			FromStart: *ingestStart,
		})
	}

	errc := make(chan error, 1)
	go func() {
		st := reg.Stats()
		logger.Info("listening",
			"version", buildinfo.Version(),
			"addr", *addr,
			"dir", *dir,
			"models", st.Models,
			"model_versions", st.Versions)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("server failed", "err", err)
		}
	case <-ctx.Done():
		logger.Info("shutting down", "drain", *drainWait)
		// Drain first: http.Server.Shutdown only waits for handlers to
		// return, and a streaming generate would otherwise run to
		// completion or the timeout. Drain makes in-flight streams stop
		// after their current candidate with an in-band shutdown error.
		handler.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("forced shutdown", "err", err)
			_ = srv.Close()
		}
		st := reg.Stats()
		logger.Info("bye", "cache_hits", st.Hits, "cache_misses", st.Misses)
	}
}

// newHTTPServer builds the API server with its connection-hygiene
// timeouts. ReadHeaderTimeout bounds the slowloris window (a client
// dribbling header bytes) and IdleTimeout reclaims keep-alive
// connections parked between requests. WriteTimeout and ReadTimeout
// stay ZERO deliberately: generate responses stream for as long as the
// client keeps reading, and observe bodies may upload for minutes — an
// absolute deadline on either would cut legitimate long transfers
// (TestNewHTTPServerTimeouts pins all four).
func newHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// requireLoopback rejects a listen address whose host is not a loopback
// IP or "localhost": the pprof listener serves heap contents and accepts
// CPU-profile work from anyone who can connect, so it must never bind a
// public interface.
func requireLoopback(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("invalid listen address: %v", err)
	}
	if host == "localhost" {
		return nil
	}
	ip := net.ParseIP(host)
	if ip == nil || !ip.IsLoopback() {
		return fmt.Errorf("host %q is not a loopback address (use 127.0.0.1:PORT or [::1]:PORT)", host)
	}
	return nil
}

// tailIntoModel follows an address file and feeds the parsed addresses
// into the named model's observation window — the same path POST /observe
// uses, so drift evaluation and auto-refresh behave identically for both
// feeds. The tail does not start until the model exists in the registry:
// starting earlier would advance the read offset past data the refresher
// rejects, silently discarding the backlog a -ingest-from-start boot is
// meant to consume. Observe errors (e.g. the model deleted later) are
// logged at most once per second so a misconfigured tail cannot flood the
// logs.
func tailIntoModel(ctx context.Context, logger *slog.Logger, reg *registry.Registry, r *serve.Refresher, path, model string, cfg ingest.TailConfig) {
	var lastErrLog time.Time
	throttled := func(msg string, args ...any) {
		if time.Since(lastErrLog) >= time.Second {
			lastErrLog = time.Now()
			logger.Warn(msg, args...)
		}
	}
	cfg.OnError = func(line int, err error) {
		throttled("ingest parse error", "file", path, "line", line, "err", err)
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = ingest.DefaultTailPoll
	}
	for {
		if _, err := reg.Versions(model); err == nil {
			break
		}
		throttled("ingest waiting for model to exist", "model", model, "file", path)
		select {
		case <-ctx.Done():
			return
		case <-time.After(poll):
		}
	}
	logger.Info("tailing into model", "file", path, "model", model)
	err := ingest.TailFile(ctx, path, cfg, func(batch []ip6.Addr) {
		if _, err := r.Observe(ctx, model, batch); err != nil {
			throttled("ingest observe failed", "model", model, "err", err)
		}
	})
	if err != nil && ctx.Err() == nil {
		logger.Error("ingest tail stopped", "file", path, "err", err)
	}
}
