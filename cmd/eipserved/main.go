// Command eipserved is the Entropy/IP model-serving daemon: a long-running
// HTTP server that holds trained models in a versioned registry (in-memory
// LRU over a disk directory) and answers the paper's two application
// workloads over the network — conditional-probability browsing (Figs. 1,
// 7, 9–10) and candidate generation for scanning (§5.5–5.6).
//
// Usage:
//
//	eipserved -addr :8080 -dir /var/lib/eipserved
//
// Endpoints (see internal/serve for the full API):
//
//	GET    /v1/models                   list models
//	PUT    /v1/models/{name}            upload or train a model
//	POST   /v1/models/{name}/browse     conditional probabilities
//	POST   /v1/models/{name}/generate   stream candidates (NDJSON)
//	GET    /healthz                     liveness + metrics
//
// Expensive training requests run on a bounded worker pool; the daemon
// sheds load with 503 when the queue is full. SIGINT/SIGTERM trigger a
// graceful shutdown that lets in-flight requests finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"entropyip/internal/registry"
	"entropyip/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dir          = flag.String("dir", "models", "model registry directory")
		cacheSize    = flag.Int("cache", registry.DefaultCacheSize, "decoded models kept in memory (LRU)")
		workers      = flag.Int("workers", serve.DefaultWorkers, "concurrent model-training workers")
		queueDepth   = flag.Int("queue", serve.DefaultQueueDepth, "training requests that may wait for a worker")
		trainWorkers = flag.Int("train-workers", 0, "goroutines each training job may use (0 = all cores; models are identical either way)")
		maxBodyMB    = flag.Int("max-body-mb", 64, "request body limit in MiB")
		maxGenerate  = flag.Int("max-generate", serve.DefaultMaxGenerateCount, "largest count one generate request may ask for")
		drainWait    = flag.Duration("drain", 30*time.Second, "graceful shutdown timeout")
	)
	flag.Parse()

	reg, err := registry.Open(*dir, *cacheSize)
	if err != nil {
		log.Fatalf("eipserved: %v", err)
	}
	handler := serve.New(reg, serve.Options{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		MaxBodyBytes:     int64(*maxBodyMB) << 20,
		MaxGenerateCount: *maxGenerate,
		TrainWorkers:     *trainWorkers,
	})

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// No WriteTimeout: generate responses stream for as long as the
		// client keeps reading. Header reads are still bounded.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		st := reg.Stats()
		log.Printf("eipserved: listening on %s (%d models, %d versions in %s)", *addr, st.Models, st.Versions, *dir)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("eipserved: %v", err)
		}
	case <-ctx.Done():
		log.Printf("eipserved: shutting down (draining up to %s)", *drainWait)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("eipserved: forced shutdown: %v", err)
			_ = srv.Close()
		}
		st := reg.Stats()
		fmt.Fprintf(os.Stderr, "eipserved: served %d cache hits / %d misses; bye\n", st.Hits, st.Misses)
	}
}
