package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestNewHTTPServerTimeouts pins the API server's connection-hygiene
// configuration: slowloris protection (ReadHeaderTimeout) and keep-alive
// reclamation (IdleTimeout) must be on, while ReadTimeout and
// WriteTimeout must stay zero — an absolute deadline on either would cut
// long-lived streaming generate responses and multi-minute observe
// uploads.
func TestNewHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slowloris-exposed")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections never reclaimed")
	}
	if srv.ReadTimeout != 0 {
		t.Errorf("ReadTimeout = %v, want 0 (observe bodies may upload for minutes)", srv.ReadTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (generate responses stream indefinitely)", srv.WriteTimeout)
	}
}

// TestHTTPServerStreamsPastReadHeaderTimeout proves the timeouts do not
// break long-lived streaming responses: a response that trickles bytes
// for longer than ReadHeaderTimeout still completes.
func TestHTTPServerStreamsPastReadHeaderTimeout(t *testing.T) {
	const chunks = 6
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := w.(http.Flusher)
		for i := 0; i < chunks; i++ {
			fmt.Fprintf(w, "chunk %d\n", i)
			f.Flush()
			time.Sleep(20 * time.Millisecond)
		}
	})
	srv := newHTTPServer(":0", h)
	// Shrink the header timeout so the streaming response provably
	// outlives it without a slow test.
	srv.ReadHeaderTimeout = 50 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading streamed body: %v", err)
	}
	if got := strings.Count(string(body), "chunk"); got != chunks {
		t.Fatalf("streamed %d chunks, want %d (timeout cut the stream?)", got, chunks)
	}
}

// TestHTTPServerReadHeaderTimeoutCutsSlowClients is the other half: a
// connection that never finishes its request headers is dropped at the
// ReadHeaderTimeout rather than held open forever.
func TestHTTPServerReadHeaderTimeoutCutsSlowClients(t *testing.T) {
	srv := newHTTPServer(":0", http.NewServeMux())
	srv.ReadHeaderTimeout = 50 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Start a request but never finish the headers (the slowloris shape).
	if _, err := io.WriteString(conn, "GET / HTTP/1.1\r\nHost: x\r\nX-Dribble: "); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The server must close the connection; a read unblocks with EOF (or
	// a reset) instead of hanging until our own deadline.
	if _, err := bufio.NewReader(conn).ReadByte(); err == nil {
		t.Fatal("server answered a half-sent request; want the connection cut")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server held the half-open connection past ReadHeaderTimeout")
	}
}

// TestNewHTTPServerServesHandler is a plain wiring check: the configured
// server routes requests to the supplied handler.
func TestNewHTTPServerServesHandler(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ping", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "pong")
	})
	srv := newHTTPServer(":0", mux)
	rr := httptest.NewRecorder()
	srv.Handler.ServeHTTP(rr, httptest.NewRequest("GET", "/ping", nil))
	if rr.Code != http.StatusOK || rr.Body.String() != "pong" {
		t.Fatalf("got %d %q, want 200 pong", rr.Code, rr.Body.String())
	}
}
