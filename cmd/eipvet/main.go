// Command eipvet runs the repo's analyzer suite (detrand, hotpath,
// layers, pooledbuf, loghygiene — see DESIGN.md "Static analysis").
//
// Standalone, over package patterns:
//
//	go run ./cmd/eipvet ./...
//	eipvet -config docs/eipvet.json -layers docs/layers.json ./...
//
// or as a go vet tool, which feeds it one compilation unit at a time
// through vet's .cfg protocol:
//
//	go build -o /tmp/eipvet ./cmd/eipvet
//	go vet -vettool=/tmp/eipvet ./...
//
// Exit codes: 0 clean, 1 operational error (bad flags, packages fail to
// load or type-check), 2 diagnostics reported.
//
// Configuration resolves, in order: explicit -config/-layers flags, the
// EIPVET_CONFIG/EIPVET_LAYERS environment variables (the only channel
// available under go vet, which owns the tool's argv), then
// docs/eipvet.json and docs/layers.json at the analyzed module's root,
// then compiled-in defaults.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"entropyip/internal/analysis"
	"entropyip/internal/analysis/load"
	"entropyip/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet probes its tool with -V=full (the output becomes part of
	// the build cache key) and may probe -flags for supported options.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Println("eipvet version v1 (entropyip analyzer suite)")
			return 0
		case "-flags", "--flags":
			fmt.Println("[]")
			return 0
		}
	}

	fs := flag.NewFlagSet("eipvet", flag.ContinueOnError)
	configPath := fs.String("config", os.Getenv("EIPVET_CONFIG"), "path to eipvet.json (default: docs/eipvet.json at the module root)")
	layersPath := fs.String("layers", os.Getenv("EIPVET_LAYERS"), "path to layers.json (default: docs/layers.json at the module root)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	rest := fs.Args()

	// go vet invokes the tool with a single *.cfg argument describing
	// one package.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], *configPath, *layersPath)
	}
	return runStandalone(rest, *configPath, *layersPath)
}

func runStandalone(patterns []string, configPath, layersPath string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eipvet:", err)
		return 1
	}
	pkgs, err := load.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eipvet:", err)
		return 1
	}

	moduleDir := ""
	for _, p := range pkgs {
		if p.ModuleDir != "" {
			moduleDir = p.ModuleDir
			break
		}
	}
	analyzers, err := suite.Analyzers(moduleDir, configPath, layersPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eipvet:", err)
		return 1
	}

	found := false
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			ModulePath: pkg.ModulePath,
			ModuleDir:  pkg.ModuleDir,
		}
		diags, err := analysis.RunAnalyzers(pass, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eipvet:", err)
			return 1
		}
		if printDiags(pkg.Fset, diags) {
			found = true
		}
	}
	if found {
		return 2
	}
	return 0
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) bool {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return len(diags) > 0
}

// vetConfig is the subset of cmd/go's vet .cfg schema eipvet consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath, configPath, layersPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eipvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "eipvet: %s: %v\n", cfgPath, err)
		return 1
	}
	// The tool exports no facts, but vet expects the output file to
	// appear regardless.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "eipvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "eipvet:", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok && mapped != "" {
			path = mapped
		}
		exp := cfg.PackageFile[path]
		if exp == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	tconf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "eipvet:", err)
		return 1
	}

	moduleDir := findModuleRoot(cfg.Dir)
	analyzers, err := suite.Analyzers(moduleDir, configPath, layersPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eipvet:", err)
		return 1
	}
	pass := &analysis.Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		ModuleDir: moduleDir,
	}
	diags, err := analysis.RunAnalyzers(pass, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eipvet:", err)
		return 1
	}
	if printDiags(fset, diags) {
		return 2
	}
	return 0
}

func findModuleRoot(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
