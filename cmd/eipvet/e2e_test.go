package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildTool builds the eipvet binary once per test run.
var buildTool = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "eipvet-e2e-*")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "eipvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", &buildError{out: string(out), err: err}
	}
	return bin, nil
})

type buildError struct {
	out string
	err error
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + e.out }

// writeModule lays out a synthetic module with its own eipvet config
// (no layers.json: the layers analyzer must quietly stay out).
func writeModule(t *testing.T, mainSrc string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/synthetic\n\ngo 1.22\n",
		"docs/eipvet.json": `{
  "detrand": {"packages": ["example.com/synthetic"]},
  "loghygiene": {"packages": ["example.com/synthetic"]}
}`,
		"main.go": mainSrc,
	}
	for name, content := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// Lines are significant: the test asserts diagnostic positions.
const dirtyMain = `package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(stamp())
}

func stamp() time.Time {
	return time.Now()
}
`

const cleanMain = `package main

import (
	"log/slog"
	"os"
	"time"
)

func main() {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	logger.Info("started", "pid", os.Getpid())
	_ = stamp(time.Now)
}

func stamp(now func() time.Time) time.Time {
	return now()
}
`

func runTool(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	bin, err := buildTool()
	if err != nil {
		t.Fatalf("building eipvet: %v", err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running eipvet: %v\n%s", err, out)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

func TestStandaloneDirtyModule(t *testing.T) {
	dir := writeModule(t, dirtyMain)
	out, code := runTool(t, dir, "./...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\n%s", code, out)
	}
	for _, want := range []string{
		"main.go:9:2: loghygiene: fmt.Println",
		"main.go:13:9: detrand: time.Now",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestStandaloneCleanModule(t *testing.T) {
	dir := writeModule(t, cleanMain)
	out, code := runTool(t, dir, "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("expected no output, got:\n%s", out)
	}
}

func TestVersionHandshake(t *testing.T) {
	out, code := runTool(t, t.TempDir(), "-V=full")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	if !strings.HasPrefix(out, "eipvet version ") {
		t.Errorf("unexpected -V=full output: %q", out)
	}
}

// TestGoVetDirtyModule drives the real `go vet -vettool=` path, which
// exercises the .cfg unitchecker protocol end to end.
func TestGoVetDirtyModule(t *testing.T) {
	bin, err := buildTool()
	if err != nil {
		t.Fatalf("building eipvet: %v", err)
	}
	dir := writeModule(t, dirtyMain)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded on a dirty module:\n%s", out)
	}
	for _, want := range []string{"loghygiene: fmt.Println", "detrand: time.Now"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("go vet output missing %q:\n%s", want, out)
		}
	}
}

func TestGoVetCleanModule(t *testing.T) {
	bin, err := buildTool()
	if err != nil {
		t.Fatalf("building eipvet: %v", err)
	}
	dir := writeModule(t, cleanMain)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}
