// Command eipscan evaluates candidate target addresses against a synthetic
// target universe (a built-in dataset archetype), reproducing the paper's
// scanning protocol (§5.5) with known ground truth. Probing is done either
// in memory or over a real loopback UDP prober/responder pair (-udp),
// which exercises sockets, deadlines and a concurrent worker pool.
//
// Usage:
//
//	eipscan -candidates candidates.txt -dataset R1 -train train.txt
//	eipscan -candidates candidates.txt -dataset R1 -udp -workers 64
//	eipscan -server http://farm:8080 -server-model web -n 100000 -dataset R1 -feedback
//
// With -server, candidates are pulled from an eipserved farm over the
// framed binary wire encoding instead of a local file, and -feedback
// pushes the scan's hit addresses back into the same model's ingest
// window (binary observe) so the farm's drift detector sees them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"entropyip/internal/dataset"
	"entropyip/internal/ip6"
	"entropyip/internal/scan"
	"entropyip/internal/synth"
	"entropyip/pkg/client"
)

func main() {
	var (
		candPath  = flag.String("candidates", "", "file of candidate addresses to probe")
		dsName    = flag.String("dataset", "", "synthetic dataset archetype acting as the target network")
		dsSize    = flag.Int("universe", 0, "target universe size (0 = archetype default)")
		trainPath = flag.String("train", "", "optional training-set file; hit /64s outside it count as new")
		seed      = flag.Int64("seed", 1, "random seed for the universe's ping/rDNS coverage")
		workers   = flag.Int("workers", 0, "concurrent probe workers (0 = GOMAXPROCS)")
		useUDP    = flag.Bool("udp", false, "probe over a loopback UDP responder instead of in memory")
		timeout   = flag.Duration("timeout", 50*time.Millisecond, "per-probe reply timeout (UDP mode)")
		prefixes  = flag.Bool("prefixes", false, "treat candidates as /64 prefixes (prefix-prediction mode)")
		server    = flag.String("server", "", "pull candidates from an eipserved instance (base URL) instead of -candidates")
		srvModel  = flag.String("server-model", "", "model name on the server (with -server)")
		n         = flag.Int("n", 100000, "candidates to pull from the server (with -server)")
		genSeed   = flag.Int64("gen-seed", 1, "generation seed for server-pulled candidates")
		feedback  = flag.Bool("feedback", false, "push hit addresses back to the server's observe endpoint after the scan (with -server)")
	)
	flag.Parse()
	if (*candPath == "" && *server == "") || *dsName == "" {
		fmt.Fprintln(os.Stderr, "eipscan: -dataset plus -candidates or -server are required")
		os.Exit(2)
	}
	var candAddrs []ip6.Addr
	var srv *client.Client
	var traceID string
	srvCtx := context.Background()
	if *server != "" {
		if *srvModel == "" {
			fmt.Fprintln(os.Stderr, "eipscan: -server-model is required with -server")
			os.Exit(2)
		}
		srv = client.New(*server, nil)
		// One trace spans the whole round: the candidate pull and (with
		// -feedback) the observe push carry the same traceparent, so the
		// server's flight recorder shows them as one connected trace.
		srvCtx, traceID = client.WithTrace(srvCtx)
		var err error
		candAddrs, err = pullCandidates(srvCtx, srv, *srvModel, *n, *genSeed)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "eipscan: pulled %d candidates from %s (trace %s)\n", len(candAddrs), *server, traceID)
	} else {
		cands, err := dataset.LoadFile(*candPath)
		if err != nil {
			fatal(err)
		}
		candAddrs = cands.Addrs
	}
	population, err := synth.Generate(*dsName, *dsSize, *seed)
	if err != nil {
		fatal(err)
	}
	universe := scan.NewUniverse(population, scan.UniverseConfig{Seed: *seed})

	cfg := scan.Config{Workers: *workers}
	if *trainPath != "" {
		train, err := dataset.LoadFile(*trainPath)
		if err != nil {
			fatal(err)
		}
		cfg.TrainingPrefixes = scan.TrainingPrefixSet(train.Addrs)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var prober scan.Prober
	switch {
	case *prefixes:
		prober = &scan.PrefixProber{Universe: universe}
	case *useUDP:
		responder := &scan.Responder{Universe: universe}
		target, err := responder.Start(ctx)
		if err != nil {
			fatal(err)
		}
		defer responder.Close()
		prober = &scan.UDPProber{Target: target, Timeout: *timeout}
	default:
		prober = &scan.MemProber{Universe: universe, Seed: *seed}
	}

	start := time.Now()
	res, err := scan.Run(ctx, prober, candAddrs, cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("target universe: %s (%d active addresses, %d active /64s)\n",
		*dsName, universe.Size(), universe.Prefixes64())
	fmt.Println(res.String())
	fmt.Printf("probed %d candidates in %v (%.0f probes/s)\n",
		res.Candidates, elapsed.Round(time.Millisecond), float64(res.Candidates)/elapsed.Seconds())

	if *feedback {
		if srv == nil {
			fatal(fmt.Errorf("-feedback requires -server"))
		}
		or, err := srv.Observe(srvCtx, *srvModel, res.Hits)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "eipscan: fed %d hits back to %s (%d accepted, trace %s)\n",
			len(res.Hits), *srvModel, or.Accepted, traceID)
	}
}

// pullCandidates streams n candidates from the serving farm over the
// binary wire encoding.
func pullCandidates(ctx context.Context, c *client.Client, model string, n int, seed int64) ([]ip6.Addr, error) {
	out := make([]ip6.Addr, 0, n)
	var streamErr error
	_, err := c.Generate(ctx, model,
		client.GenerateOptions{Count: n, Seed: &seed, Binary: true},
		func(e client.Event) bool {
			switch e.Kind {
			case client.KindCandidate:
				out = append(out, e.Addr)
			case client.KindStreamError:
				streamErr = fmt.Errorf("server stream failed: %s", e.Err)
				return false
			}
			return true
		})
	if err == nil {
		err = streamErr
	}
	return out, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eipscan:", err)
	os.Exit(1)
}
