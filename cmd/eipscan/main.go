// Command eipscan evaluates candidate target addresses against a synthetic
// target universe (a built-in dataset archetype), reproducing the paper's
// scanning protocol (§5.5) with known ground truth. Probing is done either
// in memory or over a real loopback UDP prober/responder pair (-udp),
// which exercises sockets, deadlines and a concurrent worker pool.
//
// Usage:
//
//	eipscan -candidates candidates.txt -dataset R1 -train train.txt
//	eipscan -candidates candidates.txt -dataset R1 -udp -workers 64
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"entropyip/internal/dataset"
	"entropyip/internal/scan"
	"entropyip/internal/synth"
)

func main() {
	var (
		candPath  = flag.String("candidates", "", "file of candidate addresses to probe")
		dsName    = flag.String("dataset", "", "synthetic dataset archetype acting as the target network")
		dsSize    = flag.Int("universe", 0, "target universe size (0 = archetype default)")
		trainPath = flag.String("train", "", "optional training-set file; hit /64s outside it count as new")
		seed      = flag.Int64("seed", 1, "random seed for the universe's ping/rDNS coverage")
		workers   = flag.Int("workers", 0, "concurrent probe workers (0 = GOMAXPROCS)")
		useUDP    = flag.Bool("udp", false, "probe over a loopback UDP responder instead of in memory")
		timeout   = flag.Duration("timeout", 50*time.Millisecond, "per-probe reply timeout (UDP mode)")
		prefixes  = flag.Bool("prefixes", false, "treat candidates as /64 prefixes (prefix-prediction mode)")
	)
	flag.Parse()
	if *candPath == "" || *dsName == "" {
		fmt.Fprintln(os.Stderr, "eipscan: -candidates and -dataset are required")
		os.Exit(2)
	}
	cands, err := dataset.LoadFile(*candPath)
	if err != nil {
		fatal(err)
	}
	population, err := synth.Generate(*dsName, *dsSize, *seed)
	if err != nil {
		fatal(err)
	}
	universe := scan.NewUniverse(population, scan.UniverseConfig{Seed: *seed})

	cfg := scan.Config{Workers: *workers}
	if *trainPath != "" {
		train, err := dataset.LoadFile(*trainPath)
		if err != nil {
			fatal(err)
		}
		cfg.TrainingPrefixes = scan.TrainingPrefixSet(train.Addrs)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var prober scan.Prober
	switch {
	case *prefixes:
		prober = &scan.PrefixProber{Universe: universe}
	case *useUDP:
		responder := &scan.Responder{Universe: universe}
		target, err := responder.Start(ctx)
		if err != nil {
			fatal(err)
		}
		defer responder.Close()
		prober = &scan.UDPProber{Target: target, Timeout: *timeout}
	default:
		prober = &scan.MemProber{Universe: universe, Seed: *seed}
	}

	start := time.Now()
	res, err := scan.Run(ctx, prober, cands.Addrs, cfg)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("target universe: %s (%d active addresses, %d active /64s)\n",
		*dsName, universe.Size(), universe.Prefixes64())
	fmt.Println(res.String())
	fmt.Printf("probed %d candidates in %v (%.0f probes/s)\n",
		res.Candidates, elapsed.Round(time.Millisecond), float64(res.Candidates)/elapsed.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eipscan:", err)
	os.Exit(1)
}
