// Command eipgen generates candidate target addresses (or /64 prefixes)
// from a trained Entropy/IP model, optionally conditioned on particular
// segment values — the paper's §5.5/§5.6 generation step.
//
// Usage:
//
//	eipgen -model model.json -n 100000 -o candidates.txt
//	eipgen -model model.json -n 100000 -prefixes -condition B=B2
//	eipgen -server http://farm:8080 -server-model web -n 100000
//
// Generation draws on all cores by default (-workers bounds it); the
// emitted sequence is identical for any worker count unless -unordered
// trades the deterministic order for throughput. With -server the model
// stays on an eipserved farm and candidates stream back over the framed
// binary wire encoding (16 bytes per address; -ndjson switches to the
// text encoding) — the output is identical to generating locally from
// the same model and seed.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"entropyip/internal/core"
	"entropyip/internal/dataset"
	"entropyip/internal/ip6"
	"entropyip/pkg/client"
)

func main() {
	var (
		modelPath = flag.String("model", "", "trained model JSON (from the entropyip command)")
		n         = flag.Int("n", 100000, "number of candidates to generate")
		seed      = flag.Int64("seed", 1, "random seed")
		prefixes  = flag.Bool("prefixes", false, "generate /64 prefixes instead of full addresses")
		condition = flag.String("condition", "", "evidence constraining generation, e.g. \"B=B2,C=C1\"")
		exclude   = flag.String("exclude", "", "file of addresses never to emit (e.g. the training set)")
		workers   = flag.Int("workers", 0, "goroutines drawing candidates (0 = all cores; output is identical either way)")
		unordered = flag.Bool("unordered", false, "emit candidates in arrival order instead of the deterministic order (faster)")
		outPath   = flag.String("o", "-", "output file ('-' for stdout)")
		server    = flag.String("server", "", "generate remotely on an eipserved instance (base URL) instead of from a local model file")
		srvModel  = flag.String("server-model", "", "model name on the server (with -server)")
		ndjson    = flag.Bool("ndjson", false, "use the NDJSON response encoding instead of binary (with -server)")
	)
	flag.Parse()
	evidence := map[string]string{}
	if *condition != "" {
		for _, part := range strings.Split(*condition, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				fatal(fmt.Errorf("invalid -condition entry %q", part))
			}
			evidence[kv[0]] = kv[1]
		}
	}

	var err error
	out := os.Stdout
	if *outPath != "-" {
		out, err = os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
	}
	w := bufio.NewWriter(out)

	if *server != "" {
		if *srvModel == "" {
			fmt.Fprintln(os.Stderr, "eipgen: -server-model is required with -server")
			os.Exit(2)
		}
		if *exclude != "" {
			fatal(fmt.Errorf("-exclude is local-only; the server manages its own dedup"))
		}
		count, err := generateRemote(w, *server, *srvModel, client.GenerateOptions{
			Count:     *n,
			Seed:      seed,
			Evidence:  evidence,
			Prefixes:  *prefixes,
			Workers:   *workers,
			Unordered: *unordered,
			Binary:    !*ndjson,
		})
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
		if err != nil {
			fatal(err)
		}
		report(count, *prefixes)
		return
	}

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "eipgen: -model or -server is required")
		os.Exit(2)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := core.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	opts := core.GenerateOptions{Count: *n, Seed: *seed, Workers: *workers, Unordered: *unordered}
	if len(evidence) > 0 {
		opts.Evidence = core.Evidence(evidence)
	}
	if *exclude != "" {
		d, err := dataset.LoadFile(*exclude)
		if err != nil {
			fatal(err)
		}
		opts.Exclude = d.Set()
	}

	// Stream instead of materializing: memory stays bounded by the
	// generator's dedup set however large -n is. Each candidate is
	// append-formatted into one reused line buffer (no fmt, no per-line
	// String allocation), so output cost is the buffered write itself.
	// Flush before reporting a mid-stream error — fatal's os.Exit skips
	// deferred flushes, and an unflushed buffer could truncate the output
	// file mid-line.
	count := 0
	line := make([]byte, 0, 64)
	if *prefixes {
		err = model.GeneratePrefixesStream(opts, func(p ip6.Prefix) bool {
			line = p.AppendString(line[:0])
			line = append(line, '\n')
			_, werr := w.Write(line)
			count++
			return werr == nil
		})
	} else {
		err = model.GenerateStream(opts, func(a ip6.Addr) bool {
			line = a.AppendString(line[:0])
			line = append(line, '\n')
			_, werr := w.Write(line)
			count++
			return werr == nil
		})
	}
	if ferr := w.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
	report(count, *prefixes)
}

// generateRemote streams candidates from a serving farm through
// pkg/client, writing the same text lines local generation produces.
func generateRemote(w *bufio.Writer, server, model string, opts client.GenerateOptions) (int, error) {
	c := client.New(server, nil)
	// The minted trace ID goes to the server in traceparent; printing it
	// lets the operator pull the request's server-side trace from
	// GET /v1/debug/traces?trace_id=... afterwards.
	ctx, traceID := client.WithTrace(context.Background())
	count := 0
	line := make([]byte, 0, 64)
	var werr error
	res, err := c.Generate(ctx, model, opts, func(e client.Event) bool {
		switch e.Kind {
		case client.KindCandidate:
			if opts.Prefixes {
				line = e.Prefix.AppendString(line[:0])
			} else {
				line = e.Addr.AppendString(line[:0])
			}
			line = append(line, '\n')
			_, werr = w.Write(line)
			count++
			return werr == nil
		case client.KindStreamError:
			werr = fmt.Errorf("server stream failed: %s", e.Err)
			return false
		}
		return true
	})
	if err == nil {
		err = werr
	}
	if err == nil && res != nil && len(res.Seeds) > 0 {
		fmt.Fprintf(os.Stderr, "eipgen: server %s encoding, seed %d, trace %s\n", res.Encoding, res.Seeds[0], traceID)
	}
	return count, err
}

func report(count int, prefixes bool) {
	kind := "addresses"
	if prefixes {
		kind = "/64 prefixes"
	}
	fmt.Fprintf(os.Stderr, "eipgen: generated %d candidate %s\n", count, kind)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eipgen:", err)
	os.Exit(1)
}
