// Command eipgen generates candidate target addresses (or /64 prefixes)
// from a trained Entropy/IP model, optionally conditioned on particular
// segment values — the paper's §5.5/§5.6 generation step.
//
// Usage:
//
//	eipgen -model model.json -n 100000 -o candidates.txt
//	eipgen -model model.json -n 100000 -prefixes -condition B=B2
//
// Generation draws on all cores by default (-workers bounds it); the
// emitted sequence is identical for any worker count unless -unordered
// trades the deterministic order for throughput.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"entropyip/internal/core"
	"entropyip/internal/dataset"
	"entropyip/internal/ip6"
)

func main() {
	var (
		modelPath = flag.String("model", "", "trained model JSON (from the entropyip command)")
		n         = flag.Int("n", 100000, "number of candidates to generate")
		seed      = flag.Int64("seed", 1, "random seed")
		prefixes  = flag.Bool("prefixes", false, "generate /64 prefixes instead of full addresses")
		condition = flag.String("condition", "", "evidence constraining generation, e.g. \"B=B2,C=C1\"")
		exclude   = flag.String("exclude", "", "file of addresses never to emit (e.g. the training set)")
		workers   = flag.Int("workers", 0, "goroutines drawing candidates (0 = all cores; output is identical either way)")
		unordered = flag.Bool("unordered", false, "emit candidates in arrival order instead of the deterministic order (faster)")
		outPath   = flag.String("o", "-", "output file ('-' for stdout)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "eipgen: -model is required")
		os.Exit(2)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := core.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	opts := core.GenerateOptions{Count: *n, Seed: *seed, Workers: *workers, Unordered: *unordered}
	if *condition != "" {
		opts.Evidence = core.Evidence{}
		for _, part := range strings.Split(*condition, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				fatal(fmt.Errorf("invalid -condition entry %q", part))
			}
			opts.Evidence[kv[0]] = kv[1]
		}
	}
	if *exclude != "" {
		d, err := dataset.LoadFile(*exclude)
		if err != nil {
			fatal(err)
		}
		opts.Exclude = d.Set()
	}

	out := os.Stdout
	if *outPath != "-" {
		out, err = os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
	}
	w := bufio.NewWriter(out)

	// Stream instead of materializing: memory stays bounded by the
	// generator's dedup set however large -n is. Each candidate is
	// append-formatted into one reused line buffer (no fmt, no per-line
	// String allocation), so output cost is the buffered write itself.
	// Flush before reporting a mid-stream error — fatal's os.Exit skips
	// deferred flushes, and an unflushed buffer could truncate the output
	// file mid-line.
	count := 0
	line := make([]byte, 0, 64)
	if *prefixes {
		err = model.GeneratePrefixesStream(opts, func(p ip6.Prefix) bool {
			line = p.AppendString(line[:0])
			line = append(line, '\n')
			_, werr := w.Write(line)
			count++
			return werr == nil
		})
	} else {
		err = model.GenerateStream(opts, func(a ip6.Addr) bool {
			line = a.AppendString(line[:0])
			line = append(line, '\n')
			_, werr := w.Write(line)
			count++
			return werr == nil
		})
	}
	if ferr := w.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
	kind := "addresses"
	if *prefixes {
		kind = "/64 prefixes"
	}
	fmt.Fprintf(os.Stderr, "eipgen: generated %d candidate %s\n", count, kind)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eipgen:", err)
	os.Exit(1)
}
