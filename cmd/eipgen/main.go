// Command eipgen generates candidate target addresses (or /64 prefixes)
// from a trained Entropy/IP model, optionally conditioned on particular
// segment values — the paper's §5.5/§5.6 generation step.
//
// Usage:
//
//	eipgen -model model.json -n 100000 -o candidates.txt
//	eipgen -model model.json -n 100000 -prefixes -condition B=B2
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"entropyip/internal/core"
	"entropyip/internal/dataset"
)

func main() {
	var (
		modelPath = flag.String("model", "", "trained model JSON (from the entropyip command)")
		n         = flag.Int("n", 100000, "number of candidates to generate")
		seed      = flag.Int64("seed", 1, "random seed")
		prefixes  = flag.Bool("prefixes", false, "generate /64 prefixes instead of full addresses")
		condition = flag.String("condition", "", "evidence constraining generation, e.g. \"B=B2,C=C1\"")
		exclude   = flag.String("exclude", "", "file of addresses never to emit (e.g. the training set)")
		outPath   = flag.String("o", "-", "output file ('-' for stdout)")
	)
	flag.Parse()
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "eipgen: -model is required")
		os.Exit(2)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := core.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	opts := core.GenerateOptions{Count: *n, Seed: *seed}
	if *condition != "" {
		opts.Evidence = core.Evidence{}
		for _, part := range strings.Split(*condition, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
			if len(kv) != 2 {
				fatal(fmt.Errorf("invalid -condition entry %q", part))
			}
			opts.Evidence[kv[0]] = kv[1]
		}
	}
	if *exclude != "" {
		d, err := dataset.LoadFile(*exclude)
		if err != nil {
			fatal(err)
		}
		opts.Exclude = d.Set()
	}

	out := os.Stdout
	if *outPath != "-" {
		out, err = os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer out.Close()
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	if *prefixes {
		ps, err := model.GeneratePrefixes(opts)
		if err != nil {
			fatal(err)
		}
		for _, p := range ps {
			fmt.Fprintln(w, p)
		}
		fmt.Fprintf(os.Stderr, "eipgen: generated %d candidate /64 prefixes\n", len(ps))
		return
	}
	addrs, err := model.Generate(opts)
	if err != nil {
		fatal(err)
	}
	for _, a := range addrs {
		fmt.Fprintln(w, a)
	}
	fmt.Fprintf(os.Stderr, "eipgen: generated %d candidate addresses\n", len(addrs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eipgen:", err)
	os.Exit(1)
}
