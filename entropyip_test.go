package entropyip

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseHelpers(t *testing.T) {
	a, err := ParseAddr("2001:db8::1")
	if err != nil || a.String() != "2001:db8::1" {
		t.Fatalf("ParseAddr: %v %v", a, err)
	}
	if MustParseAddr("2001:db8::2").Hex() != "20010db8000000000000000000000002" {
		t.Error("MustParseAddr/Hex wrong")
	}
	p, err := ParsePrefix("2001:db8::/48")
	if err != nil || p.Bits() != 48 {
		t.Fatalf("ParsePrefix: %v %v", p, err)
	}
	addrs, err := ParseAddrs([]string{"2001:db8::1", "2001:db8::2"})
	if err != nil || len(addrs) != 2 {
		t.Fatalf("ParseAddrs: %v %v", addrs, err)
	}
	if _, err := ParseAddrs([]string{"2001:db8::1", "bad"}); err == nil {
		t.Error("ParseAddrs should fail on malformed input")
	}
}

func TestSyntheticCatalogAccess(t *testing.T) {
	names := SyntheticDatasets()
	if len(names) != 19 || names[0] != "S1" {
		t.Fatalf("SyntheticDatasets = %v", names)
	}
	addrs, err := Synthesize("R5", 1200, 1)
	if err != nil || len(addrs) != 1200 {
		t.Fatalf("Synthesize: %d, %v", len(addrs), err)
	}
	if _, err := Synthesize("nope", 10, 1); err == nil {
		t.Error("unknown archetype should error")
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	// The quickstart flow: synthesize a network, analyze a sample, browse,
	// generate candidates, save and reload the model.
	addrs, err := Synthesize("R1", 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Analyze(addrs[:1000], Options{})
	if err != nil {
		t.Fatal(err)
	}
	dists, err := model.Browse(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) == 0 || dists[0].Label != "A" {
		t.Fatalf("browse output: %+v", dists)
	}
	exclude := NewSet(1000)
	for _, a := range addrs[:1000] {
		exclude.Add(a)
	}
	cands, err := model.Generate(GenerateOptions{Count: 2000, Seed: 1, Exclude: exclude})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	held := NewSet(len(addrs))
	for _, a := range addrs[1000:] {
		held.Add(a)
	}
	hits := 0
	for _, c := range cands {
		if held.Contains(c) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("the model should rediscover some held-out router addresses")
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TrainCount != model.TrainCount {
		t.Error("model round trip lost data")
	}
}

func TestDatasetHelpers(t *testing.T) {
	d, err := ReadDataset("inline", strings.NewReader("2001:db8::1\n2001:db8::2\n"))
	if err != nil || d.Len() != 2 {
		t.Fatalf("ReadDataset: %v %v", d, err)
	}
	if _, err := LoadDataset("/nonexistent/file"); err == nil {
		t.Error("LoadDataset should fail for missing files")
	}
}
