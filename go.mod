module entropyip

go 1.22
