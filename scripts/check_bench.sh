#!/usr/bin/env bash
# check_bench.sh — the CI benchmark gate.
#
# Usage: check_bench.sh <baseline.txt> <new.txt>
#
# Both files are raw `go test -bench -benchmem` output (ideally -count 3 of
# the command in .github/workflows/ci.yml). The script prints a benchstat
# comparison when benchstat is installed (informational), then gates on two
# axes:
#
#   ns/op   — the mean of each NAMED hot benchmark must not regress by
#             more than 30% (override with BENCH_GATE_THRESHOLD, a ratio,
#             e.g. 1.30). Absolute ns/op only compares on matching
#             hardware, so this axis ARMS ONLY when the `cpu:` lines of
#             baseline and new agree (see the limitation note below).
#   allocs/op — hardware-independent, so this axis gates REGARDLESS of
#             the cpu match. The ZERO_ALLOC benchmarks must report exactly
#             0 allocs/op (these are the serving-plane hot paths whose
#             zero-allocation contract this repo's tests pin; any value
#             above 0 is a regression and fails even with no baseline).
#             The remaining named benchmarks fail when mean allocs/op
#             regresses by more than BENCH_GATE_ALLOC_THRESHOLD (default
#             1.30) against a baseline that carries allocs data.
#
# NEW benchmarks (present in this run, absent from the baseline) never
# fail the ns/op gate; they are reported per name AND in a closing summary
# line so a stale baseline is visible in the job log instead of silent.
#
# KNOWN LIMITATION — the CPU-match requirement (ns/op axis only). The gate
# compares raw ns/op, which is only meaningful when both runs came from
# the same CPU model. The committed bench_baseline.txt was produced on
# developer hardware, so on GitHub-hosted runners the `cpu:` lines differ
# and the ns/op gate stays PERMANENTLY INFORMATIONAL until a baseline
# recorded on CI hardware is committed. GitHub also rotates runner CPU
# models between jobs (several Xeon/EPYC generations serve
# `ubuntu-latest`), so even a CI-recorded baseline can disarm
# intermittently: the ns/op gate is best-effort hardware-matched, not a
# guarantee. The allocs/op axis has no such limitation. Each CI bench run
# uploads a `bench-baseline` artifact containing a ready-to-commit
# bench_baseline.txt; see README "Refreshing the benchmark baseline" for
# the exact arming steps. Set BENCH_GATE_REQUIRE_MATCH=1 to turn a cpu
# mismatch into a failure (to catch a baseline gone permanently stale).
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 <baseline.txt> <new.txt>" >&2
    exit 2
fi
BASE="$1"
NEW="$2"
THRESHOLD="${BENCH_GATE_THRESHOLD:-1.30}"
ALLOC_THRESHOLD="${BENCH_GATE_ALLOC_THRESHOLD:-1.30}"

# The hot-path benchmarks the gate protects (top-level names only; the
# regex below deliberately excludes /workers=... sub-benchmarks).
BENCHES=(NewProfile10k NewProfile100k Learn10k Learn100k Build10k Build100k
         Generate10k Generate100k Encode100k ParseFormat ObserveIngest
         GenerateNDJSON GenerateBinary100k ObserveBinary10k MetricsHotPath
         SpanHotPath)

# Serving-plane paths with a zero-allocation contract: allocs/op must be
# exactly 0, baseline or not.
ZERO_ALLOC=(Encode100k ParseFormat ObserveIngest GenerateNDJSON
            GenerateBinary100k ObserveBinary10k MetricsHotPath SpanHotPath)

if command -v benchstat >/dev/null 2>&1; then
    echo "== benchstat baseline vs new (informational) =="
    benchstat "$BASE" "$NEW" || true
    echo
fi

# cpuline FILE -> the first `cpu:` line go test printed, if any.
cpuline() {
    awk -F': ' '$1 == "cpu" { print $2; exit }' "$1"
}

base_cpu=$(cpuline "$BASE")
new_cpu=$(cpuline "$NEW")
armed=1
if [ -z "$base_cpu" ] || [ "$base_cpu" != "$new_cpu" ]; then
    armed=0
    echo "NOTE: baseline CPU (${base_cpu:-unknown}) != this run's CPU (${new_cpu:-unknown})."
    echo "      Absolute ns/op is not comparable across hardware; the ns/op axis is"
    echo "      reporting only, not gating (the allocs/op axis still gates). Refresh"
    echo "      bench_baseline.txt from this environment's bench-results artifact to"
    echo "      arm the ns/op gate."
    echo
fi

# mean FILE NAME UNIT -> mean value of the benchmark's UNIT column over
# all -count runs, empty if absent. Scans value/unit pairs so extra
# ReportMetric columns cannot shift the field positions.
mean() {
    awk -v name="$2" -v unit="$3" '
        $1 ~ ("^Benchmark" name "(-[0-9]+)?$") {
            for (i = 2; i < NF; i++) {
                if ($(i+1) == unit) { sum += $i; n++ }
            }
        }
        END { if (n) printf "%.2f", sum / n }
    ' "$1"
}

fail=0
new_names=()
echo "== bench gate: ns/op mean regression > ${THRESHOLD}x fails (cpu-matched runs) =="
for b in "${BENCHES[@]}"; do
    base=$(mean "$BASE" "$b" ns/op)
    new=$(mean "$NEW" "$b" ns/op)
    if [ -z "$new" ]; then
        if [ -n "$base" ]; then
            # Gated benchmark disappeared — that hides regressions; fail.
            echo "MISSING      $b (present in baseline, absent from this run)"
            fail=1
        else
            echo "ABSENT       $b (in neither file; is the bench command covering its package?)"
            fail=1
        fi
        continue
    fi
    if [ -z "$base" ]; then
        # Not in the baseline yet (newly added benchmark): report only.
        echo "NEW          $b  ${new}ns/op (no baseline entry; informational)"
        new_names+=("$b")
        continue
    fi
    ratio=$(awk -v a="$new" -v b="$base" 'BEGIN { printf "%.3f", a / b }')
    verdict=ok
    if awk -v r="$ratio" -v t="$THRESHOLD" 'BEGIN { exit !(r > t) }'; then
        # Over the threshold: fail when armed; when the cpu mismatch
        # disarmed the gate, still LABEL it honestly (hardware noise or
        # real — a human should look) instead of printing "ok".
        if [ "$armed" -eq 1 ]; then
            verdict=REGRESSION
            fail=1
        else
            verdict='regressed?'
        fi
    fi
    printf '%-12s %-16s base=%sns/op new=%sns/op ratio=%s\n' "$verdict" "$b" "$base" "$new" "$ratio"
done

echo
echo "== alloc gate: zero-alloc benches must stay at 0 allocs/op; others mean regression > ${ALLOC_THRESHOLD}x fails =="
for b in "${BENCHES[@]}"; do
    new_allocs=$(mean "$NEW" "$b" allocs/op)
    if [ -z "$new_allocs" ]; then
        continue # absence already handled (or -benchmem missing: nothing to gate)
    fi
    is_zero=0
    for z in "${ZERO_ALLOC[@]}"; do
        [ "$b" = "$z" ] && is_zero=1
    done
    if [ "$is_zero" -eq 1 ]; then
        if awk -v a="$new_allocs" 'BEGIN { exit !(a > 0) }'; then
            echo "ALLOC-REGRESSION $b  ${new_allocs} allocs/op (contract: exactly 0)"
            fail=1
        else
            printf '%-12s %-16s 0 allocs/op (zero-alloc contract holds)\n' ok "$b"
        fi
        continue
    fi
    base_allocs=$(mean "$BASE" "$b" allocs/op)
    if [ -z "$base_allocs" ]; then
        continue # no alloc data in the baseline: informational only
    fi
    if awk -v b="$base_allocs" 'BEGIN { exit !(b == 0) }'; then
        # Baseline at 0: any alloc is a regression (ratio is undefined).
        if awk -v a="$new_allocs" 'BEGIN { exit !(a > 0) }'; then
            echo "ALLOC-REGRESSION $b  base=0 new=${new_allocs} allocs/op"
            fail=1
        else
            printf '%-12s %-16s base=0 new=0 allocs/op\n' ok "$b"
        fi
        continue
    fi
    ratio=$(awk -v a="$new_allocs" -v b="$base_allocs" 'BEGIN { printf "%.3f", a / b }')
    verdict=ok
    if awk -v r="$ratio" -v t="$ALLOC_THRESHOLD" 'BEGIN { exit !(r > t) }'; then
        verdict=ALLOC-REGRESSION
        fail=1
    fi
    printf '%-12s %-16s base=%s new=%s allocs/op ratio=%s\n' "$verdict" "$b" "$base_allocs" "$new_allocs" "$ratio"
done

echo
# Binary-vs-NDJSON throughput summary. Both numbers come from THIS run,
# so the ratio is hardware-matched by construction and gates regardless
# of the baseline CPU match: the binary encoding's reason to exist is
# beating the text path, so it must stay at least
# BENCH_BINARY_SPEEDUP_MIN (default 2.0) times the NDJSON throughput.
# GenerateBinary100k encodes 100000 candidates per op; GenerateNDJSON
# formats one line per op.
bin_ns=$(mean "$NEW" GenerateBinary100k ns/op)
nd_ns=$(mean "$NEW" GenerateNDJSON ns/op)
if [ -n "$bin_ns" ] && [ -n "$nd_ns" ]; then
    bin_per=$(awk -v b="$bin_ns" 'BEGIN { printf "%.1f", b / 100000 }')
    speedup=$(awk -v b="$bin_per" -v n="$nd_ns" 'BEGIN { printf "%.1f", n / b }')
    min="${BENCH_BINARY_SPEEDUP_MIN:-2.0}"
    echo "SUMMARY: generate encode cost — binary ${bin_per}ns/candidate vs NDJSON ${nd_ns}ns/candidate (binary ${speedup}x faster; contract >= ${min}x)"
    if awk -v s="$speedup" -v m="$min" 'BEGIN { exit !(s < m) }'; then
        echo "THROUGHPUT-REGRESSION: binary encode fell below ${min}x the NDJSON throughput"
        fail=1
    fi
fi

if [ "${#new_names[@]}" -gt 0 ]; then
    echo "SUMMARY: ${#new_names[@]} benchmark(s) have no baseline entry and ran informationally: ${new_names[*]}"
    echo "         Commit a refreshed bench_baseline.txt (bench-baseline CI artifact) to gate them."
fi
if [ "$armed" -eq 0 ]; then
    if [ "${BENCH_GATE_REQUIRE_MATCH:-0}" = "1" ]; then
        echo "CPU mismatch with BENCH_GATE_REQUIRE_MATCH=1: the baseline is stale; failing."
        exit 1
    fi
    echo "ns/op gate disarmed (CPU mismatch); allocs/op gate verdict stands: exit $fail."
fi
exit "$fail"
