#!/usr/bin/env bash
# check_bench.sh — the CI benchmark gate.
#
# Usage: check_bench.sh <baseline.txt> <new.txt>
#
# Both files are raw `go test -bench` output (ideally -count 3 of the
# command in .github/workflows/ci.yml). The script prints a benchstat
# comparison when benchstat is installed (informational), then compares
# the mean ns/op of each NAMED hot benchmark and fails when any regresses
# by more than 30% (override with BENCH_GATE_THRESHOLD, a ratio, e.g.
# 1.30). Only the named benchmarks gate: worker-scaling sub-benchmarks and
# exploratory benchmarks are reported but never fail the build.
#
# Absolute ns/op is only comparable on matching hardware, so the gate
# ARMS ONLY when the `cpu:` lines of baseline and new run agree. On a
# mismatch (e.g. the committed baseline came from a developer machine, or
# GitHub swapped runner hardware) the comparison is printed for
# information and the script exits 0 with a reminder to refresh the
# baseline from CI hardware. Set BENCH_GATE_REQUIRE_MATCH=1 to turn that
# mismatch into a failure instead (to catch a baseline gone permanently
# stale).
#
# KNOWN LIMITATION — the CPU-match requirement. The gate compares raw
# ns/op, which is only meaningful when both runs came from the same CPU
# model. The committed bench_baseline.txt was produced on developer
# hardware, so on GitHub-hosted runners the `cpu:` lines differ and the
# gate stays PERMANENTLY INFORMATIONAL until a baseline recorded on CI
# hardware is committed. GitHub also rotates runner CPU models between
# jobs (several Xeon/EPYC generations serve `ubuntu-latest`), so even a
# CI-recorded baseline can disarm intermittently: the gate is best-effort
# hardware-matched, not a guarantee. Each CI bench run uploads a
# `bench-baseline` artifact containing a ready-to-commit
# bench_baseline.txt; see README "Refreshing the benchmark baseline" for
# the exact arming steps.
#
# To refresh the committed baseline after an intentional change, download
# the bench-baseline artifact from a CI run on main (so the numbers come
# from CI hardware, not a laptop) and commit it as bench_baseline.txt.
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 <baseline.txt> <new.txt>" >&2
    exit 2
fi
BASE="$1"
NEW="$2"
THRESHOLD="${BENCH_GATE_THRESHOLD:-1.30}"

# The hot-path benchmarks the gate protects (top-level names only; the
# regex below deliberately excludes /workers=... sub-benchmarks).
BENCHES=(NewProfile10k NewProfile100k Learn10k Learn100k Build10k Build100k Generate10k Generate100k)

if command -v benchstat >/dev/null 2>&1; then
    echo "== benchstat baseline vs new (informational) =="
    benchstat "$BASE" "$NEW" || true
    echo
fi

# cpuline FILE -> the first `cpu:` line go test printed, if any.
cpuline() {
    awk -F': ' '$1 == "cpu" { print $2; exit }' "$1"
}

base_cpu=$(cpuline "$BASE")
new_cpu=$(cpuline "$NEW")
armed=1
if [ -z "$base_cpu" ] || [ "$base_cpu" != "$new_cpu" ]; then
    armed=0
    echo "NOTE: baseline CPU (${base_cpu:-unknown}) != this run's CPU (${new_cpu:-unknown})."
    echo "      Absolute ns/op is not comparable across hardware; reporting only,"
    echo "      not gating. Refresh bench_baseline.txt from this environment's"
    echo "      bench-results artifact to arm the gate."
    echo
fi

# mean FILE NAME -> mean ns/op over all -count runs, empty if absent.
mean() {
    awk -v name="$2" '
        $1 ~ ("^Benchmark" name "(-[0-9]+)?$") && $4 == "ns/op" { sum += $3; n++ }
        END { if (n) printf "%.0f", sum / n }
    ' "$1"
}

fail=0
echo "== bench gate: fail on mean ns/op regression > ${THRESHOLD}x =="
for b in "${BENCHES[@]}"; do
    base=$(mean "$BASE" "$b")
    new=$(mean "$NEW" "$b")
    if [ -z "$base" ]; then
        # Not in the baseline yet (newly added benchmark): report only.
        echo "NEW          $b (no baseline entry; commit a refreshed baseline)"
        continue
    fi
    if [ -z "$new" ]; then
        # Gated benchmark disappeared — that hides regressions; fail.
        echo "MISSING      $b (present in baseline, absent from this run)"
        fail=1
        continue
    fi
    ratio=$(awk -v a="$new" -v b="$base" 'BEGIN { printf "%.3f", a / b }')
    verdict=ok
    if awk -v r="$ratio" -v t="$THRESHOLD" 'BEGIN { exit !(r > t) }'; then
        verdict=REGRESSION
        fail=1
    fi
    printf '%-12s %-16s base=%sns/op new=%sns/op ratio=%s\n' "$verdict" "$b" "$base" "$new" "$ratio"
done

if [ "$armed" -eq 0 ]; then
    if [ "${BENCH_GATE_REQUIRE_MATCH:-0}" = "1" ]; then
        echo "CPU mismatch with BENCH_GATE_REQUIRE_MATCH=1: the baseline is stale; failing."
        exit 1
    fi
    echo "gate disarmed (CPU mismatch): exit 0."
    exit 0
fi
exit "$fail"
