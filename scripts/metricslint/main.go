// Command metricslint boots the serving plane in-process against a
// throwaway registry, exercises enough routes to materialize the
// per-route series, scrapes GET /metrics and lints every family in the
// exposition against the repo's metric-naming contract:
//
//   - every family carries a non-empty # HELP line
//   - every sample's family is declared with # TYPE before its samples
//   - names are eip_-prefixed snake_case
//   - counters end in _total; gauges and histograms must not
//   - label keys are snake_case and bounded (no unbounded cardinality
//     creeping in through a new label)
//
// CI runs it with `go run ./scripts/metricslint`; any violation exits 1
// with one line per finding. The lint needs no network and no deps — it
// drives the real http.Handler through httptest.
package main

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"

	"entropyip/internal/core"
	"entropyip/internal/ip6"
	"entropyip/internal/registry"
	"entropyip/internal/serve"
)

// maxLabelKeys bounds label-set width per series; more keys than this is
// almost always a cardinality accident, not a design choice.
const maxLabelKeys = 5

var (
	nameRE  = regexp.MustCompile(`^eip_[a-z][a-z0-9_]*$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

func main() {
	body, err := scrape()
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricslint:", err)
		os.Exit(1)
	}
	problems := lint(body)
	for _, p := range problems {
		fmt.Println("metricslint:", p)
	}
	if len(problems) > 0 {
		fmt.Printf("metricslint: %d violation(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("metricslint: ok")
}

// scrape builds a server over a temp registry with one small trained
// model, drives a few requests through it (success, error, generate,
// observe) so lazily-created route series exist, and returns the
// /metrics exposition.
func scrape() (string, error) {
	dir, err := os.MkdirTemp("", "metricslint")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)
	reg, err := registry.Open(dir, 4)
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(1))
	base := ip6.MustParseAddr("2001:db8::")
	addrs := make([]ip6.Addr, 500)
	for i := range addrs {
		a := base.SetField(8, 2, uint64(rng.Intn(4)))
		addrs[i] = a.SetField(16, 16, rng.Uint64())
	}
	m, err := core.Build(addrs, core.Options{})
	if err != nil {
		return "", err
	}
	if _, err := reg.Put("lint", m); err != nil {
		return "", err
	}
	s := serve.New(reg, serve.Options{})
	do := func(method, path, body string) {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		s.ServeHTTP(httptest.NewRecorder(), req)
	}
	do("GET", "/healthz", "")
	do("GET", "/v1/models", "")
	do("GET", "/v1/models/absent", "") // 404: error-path series
	do("POST", "/v1/models/lint/generate", `{"count":50,"seed":1}`)
	do("POST", "/v1/models/lint/observe", `{"addrs":["2001:db8::1"]}`)
	do("GET", "/v1/debug/traces", "")

	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != 200 {
		return "", fmt.Errorf("GET /metrics: status %d", w.Code)
	}
	return w.Body.String(), nil
}

// family strips a sample's name down to its declaring family: histogram
// samples render as name_bucket/_sum/_count under a # TYPE name
// histogram header.
func family(sample string, histograms map[string]bool) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(sample, suf); base != sample && histograms[base] {
			return base
		}
	}
	return sample
}

func lint(body string) []string {
	var problems []string
	types := map[string]string{}
	helps := map[string]bool{}
	histograms := map[string]bool{}
	seriesLabels := map[string][]string{}

	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if strings.TrimSpace(help) == "" {
				problems = append(problems, fmt.Sprintf("%s: empty HELP text", name))
			}
			helps[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				problems = append(problems, fmt.Sprintf("malformed TYPE line: %q", line))
				continue
			}
			name, typ := fields[0], fields[1]
			types[name] = typ
			if typ == "histogram" {
				histograms[name] = true
			}
			if !nameRE.MatchString(name) {
				problems = append(problems, fmt.Sprintf("%s: name not eip_-prefixed snake_case", name))
			}
			switch typ {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					problems = append(problems, fmt.Sprintf("%s: counter must end in _total", name))
				}
			case "gauge", "histogram":
				if strings.HasSuffix(name, "_total") {
					problems = append(problems, fmt.Sprintf("%s: %s must not end in _total", name, typ))
				}
			default:
				problems = append(problems, fmt.Sprintf("%s: unknown type %q", name, typ))
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments (e.g. OpenMetrics EOF) are fine
		}

		// Sample line: name{labels} value
		sample := line
		if i := strings.IndexAny(sample, "{ "); i >= 0 {
			sample = sample[:i]
		}
		fam := family(sample, histograms)
		if _, ok := types[fam]; !ok {
			problems = append(problems, fmt.Sprintf("%s: sample without a preceding # TYPE declaration", sample))
			continue
		}
		if !helps[fam] {
			problems = append(problems, fmt.Sprintf("%s: family has no # HELP line", fam))
			helps[fam] = true // report once
		}
		if open := strings.Index(line, "{"); open >= 0 {
			// Label values may contain literal braces (route="GET
			// /v1/models/{name}"), so the block ends at the LAST brace.
			closing := strings.LastIndex(line, "}")
			if closing < open {
				problems = append(problems, fmt.Sprintf("%s: malformed label block: %q", fam, line))
				continue
			}
			keys := labelKeys(line[open+1 : closing])
			if len(keys) > maxLabelKeys {
				problems = append(problems, fmt.Sprintf("%s: %d label keys (max %d): %v", fam, len(keys), maxLabelKeys, keys))
			}
			for _, k := range keys {
				if !labelRE.MatchString(k) {
					problems = append(problems, fmt.Sprintf("%s: label key %q not snake_case", fam, k))
				}
			}
			// Keyed by sample name, not family: histogram _bucket rows
			// legitimately carry an extra "le" vs their _sum/_count rows.
			if prev, ok := seriesLabels[sample]; ok && strings.Join(prev, ",") != strings.Join(keys, ",") {
				problems = append(problems, fmt.Sprintf("%s: inconsistent label keys across series: %v vs %v", sample, prev, keys))
				delete(seriesLabels, sample) // report once
			} else if !ok {
				seriesLabels[sample] = keys
			}
		}
	}
	if len(types) == 0 {
		problems = append(problems, "exposition declared no metric families at all")
	}
	return problems
}

// labelKeys extracts the keys of one label block, skipping over quoted
// values (which may contain commas or escaped quotes).
func labelKeys(block string) []string {
	var keys []string
	for i := 0; i < len(block); {
		eq := strings.IndexByte(block[i:], '=')
		if eq < 0 {
			break
		}
		keys = append(keys, strings.TrimSpace(block[i:i+eq]))
		i += eq + 1
		if i < len(block) && block[i] == '"' {
			i++
			for i < len(block) {
				if block[i] == '\\' {
					i += 2
					continue
				}
				if block[i] == '"' {
					i++
					break
				}
				i++
			}
		}
		if i < len(block) && block[i] == ',' {
			i++
		}
	}
	return keys
}
