package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"entropyip/internal/core"
	"entropyip/internal/ip6"
	"entropyip/internal/registry"
	"entropyip/internal/serve"
)

// testAddrs synthesizes a structured network with a large address
// support, mirroring the serve package's test fixture.
func testAddrs(n int, seed int64) []ip6.Addr {
	rng := rand.New(rand.NewSource(seed))
	base := ip6.MustParseAddr("2001:db8::")
	out := make([]ip6.Addr, n)
	for i := range out {
		a := base
		a = a.SetField(8, 2, uint64(rng.Intn(8)))
		a = a.SetField(16, 16, rng.Uint64())
		out[i] = a
	}
	return out
}

// newServer starts a real serving plane with one trained model "web"
// and returns a Client pointed at it.
func newServer(t *testing.T) *Client {
	t.Helper()
	c, _ := newServerURL(t)
	return c
}

// newServerURL is newServer plus the base URL, for tests that hit
// endpoints the client doesn't wrap (the trace debug endpoint).
func newServerURL(t *testing.T) (*Client, string) {
	t.Helper()
	reg, err := registry.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Build(testAddrs(1500, 1), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Put("web", m); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.New(reg, serve.Options{}))
	t.Cleanup(srv.Close)
	return New(srv.URL, srv.Client()), srv.URL
}

// collect gathers every event of one Generate call.
func collect(t *testing.T, c *Client, opts GenerateOptions) (*GenerateResult, []Event) {
	t.Helper()
	var events []Event
	res, err := c.Generate(context.Background(), "web", opts, func(e Event) bool {
		events = append(events, e)
		return true
	})
	if err != nil {
		t.Fatalf("Generate(%+v): %v", opts, err)
	}
	return res, events
}

// TestGenerateEncodingsAgree checks NDJSON and binary yield the
// identical event sequence for the same seed, in both address and
// prefix mode.
func TestGenerateEncodingsAgree(t *testing.T) {
	c := newServer(t)
	for _, prefixes := range []bool{false, true} {
		opts := GenerateOptions{Count: 300, Seed: seed(42), Prefixes: prefixes}
		resText, text := collect(t, c, opts)
		opts.Binary = true
		resBin, bin := collect(t, c, opts)

		if resText.Encoding != "ndjson" || resBin.Encoding != "binary" {
			t.Fatalf("encodings = %q/%q", resText.Encoding, resBin.Encoding)
		}
		if len(resText.Seeds) != 1 || resText.Seeds[0] != 42 || len(resBin.Seeds) != 1 || resBin.Seeds[0] != 42 {
			t.Fatalf("seeds = %v / %v, want [42]", resText.Seeds, resBin.Seeds)
		}
		if resText.Candidates == 0 || resText.Candidates != resBin.Candidates {
			t.Fatalf("candidates = %d text vs %d binary", resText.Candidates, resBin.Candidates)
		}
		if len(text) != len(bin) {
			t.Fatalf("prefixes=%v: %d text events vs %d binary", prefixes, len(text), len(bin))
		}
		for i := range text {
			if fmt.Sprint(text[i]) != fmt.Sprint(bin[i]) {
				t.Fatalf("prefixes=%v: event %d differs: %+v vs %+v", prefixes, i, text[i], bin[i])
			}
		}
		if last := text[len(text)-1]; last.Kind != KindStreamEnd {
			t.Fatalf("last event = %+v, want stream end", last)
		}
	}
}

// TestGenerateBatch checks batch demultiplexing over both encodings:
// per-stream sequences equal the corresponding single-stream calls, and
// every stream ends.
func TestGenerateBatch(t *testing.T) {
	c := newServer(t)
	specs := []StreamSpec{
		{Count: 30, Seed: seed(7)},
		{Count: 30, Seed: seed(8)},
	}
	for _, binary := range []bool{false, true} {
		res, events := collect(t, c, GenerateOptions{Streams: specs, Binary: binary})
		if len(res.Seeds) != 2 || res.Seeds[0] != 7 || res.Seeds[1] != 8 {
			t.Fatalf("binary=%v: seeds = %v", binary, res.Seeds)
		}
		byStream := map[int][]string{}
		ended := map[int]bool{}
		for _, e := range events {
			switch e.Kind {
			case KindCandidate:
				byStream[e.Stream] = append(byStream[e.Stream], e.Addr.String())
			case KindStreamEnd:
				ended[e.Stream] = true
			case KindStreamError:
				t.Fatalf("stream %d error: %s", e.Stream, e.Err)
			}
		}
		for i, spec := range specs {
			if !ended[i] {
				t.Errorf("binary=%v: stream %d did not end", binary, i)
			}
			_, ref := collect(t, c, GenerateOptions{Count: spec.Count, Seed: spec.Seed})
			var want []string
			for _, e := range ref {
				if e.Kind == KindCandidate {
					want = append(want, e.Addr.String())
				}
			}
			if fmt.Sprint(byStream[i]) != fmt.Sprint(want) {
				t.Errorf("binary=%v: stream %d differs from single-stream call", binary, i)
			}
		}
	}
}

// TestAPIError checks non-2xx envelopes decode into typed *APIError.
func TestAPIError(t *testing.T) {
	c := newServer(t)
	_, err := c.Generate(context.Background(), "web", GenerateOptions{Count: 0}, func(Event) bool { return true })
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusBadRequest || apiErr.Code != "invalid_request" {
		t.Errorf("apiErr = %+v", apiErr)
	}
	if apiErr.RequestID == "" {
		t.Error("missing request ID")
	}

	_, err = c.Observe(context.Background(), "missing", testAddrs(2, 1))
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != "not_found" {
		t.Errorf("observe err = %v", err)
	}
}

// TestObserve pushes addresses over the binary encoding and checks they
// all land in the window.
func TestObserve(t *testing.T) {
	c := newServer(t)
	addrs := testAddrs(5000, 3)
	res, err := c.Observe(context.Background(), "web", addrs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != len(addrs) || res.Invalid != 0 {
		t.Errorf("result = %+v, want %d accepted", res, len(addrs))
	}
}

// TestGenerateEarlyStop checks yield returning false stops the stream
// without error.
func TestGenerateEarlyStop(t *testing.T) {
	c := newServer(t)
	seen := 0
	res, err := c.Generate(context.Background(), "web",
		GenerateOptions{Count: 10000, Seed: seed(1), Binary: true},
		func(e Event) bool {
			if e.Kind == KindCandidate {
				seen++
			}
			return seen < 10
		})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Errorf("saw %d candidates after stop, want 10", seen)
	}
	_ = res
}

// TestTraceRoundTrip pins the propagation contract the CLIs rely on:
// WithTrace mints a trace context, every request under that ctx carries
// it as a traceparent, the server joins it (results echo the trace ID),
// and a generate + observe round comes back from /v1/debug/traces as one
// connected trace under the minted ID.
func TestTraceRoundTrip(t *testing.T) {
	c, base := newServerURL(t)
	ctx, id := WithTrace(context.Background())
	if len(id) != 32 {
		t.Fatalf("minted trace ID %q, want 32 hex chars", id)
	}

	res, err := c.Generate(ctx, "web",
		GenerateOptions{Count: 50, Seed: seed(9), Binary: true},
		func(Event) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID != id {
		t.Errorf("generate trace ID = %q, want minted %q", res.TraceID, id)
	}
	or, err := c.Observe(ctx, "web", testAddrs(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if or.TraceID != id {
		t.Errorf("observe trace ID = %q, want minted %q", or.TraceID, id)
	}

	// Both requests merged into one connected trace in the flight
	// recorder, fetchable by the minted ID.
	resp, err := http.Get(base + "/v1/debug/traces?trace_id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces status = %d", resp.StatusCode)
	}
	var dbg serve.DebugTracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Trace == nil || dbg.Trace.Root == nil {
		t.Fatal("no trace tree returned for minted ID")
	}
	if dbg.Trace.TraceID != id {
		t.Errorf("tree trace ID = %q, want %q", dbg.Trace.TraceID, id)
	}
	if dbg.Trace.Root.Name != "trace" {
		t.Fatalf("root = %q, want synthetic merge root \"trace\"", dbg.Trace.Root.Name)
	}
	names := map[string]bool{}
	for _, ch := range dbg.Trace.Root.Children {
		names[ch.Name] = true
	}
	if !names["POST /v1/models/{name}/generate"] || !names["POST /v1/models/{name}/observe"] {
		t.Errorf("merged round missing request spans; have %v", names)
	}

	// Error envelopes under the same ctx carry the trace ID too.
	_, err = c.Generate(ctx, "web", GenerateOptions{Count: 0}, func(Event) bool { return true })
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.TraceID != id {
		t.Errorf("APIError trace ID = %q, want %q", apiErr.TraceID, id)
	}
}

func seed(v int64) *int64 { return &v }
