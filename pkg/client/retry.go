package client

import (
	"bytes"
	crand "crypto/rand"
	"encoding/binary"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Retry defaults used when RetryPolicy fields are zero.
const (
	// DefaultRetryAttempts is the total number of tries (first attempt
	// included) under WithRetry's zero policy.
	DefaultRetryAttempts = 4
	// DefaultRetryBase is the first backoff delay; later delays double.
	DefaultRetryBase = 100 * time.Millisecond
	// DefaultRetryMax caps one backoff delay.
	DefaultRetryMax = 2 * time.Second
)

// RetryPolicy configures WithRetry. The zero value means the defaults
// above.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first attempt included.
	// Zero means DefaultRetryAttempts; 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the first backoff delay; each further attempt doubles
	// it. Zero means DefaultRetryBase.
	BaseDelay time.Duration
	// MaxDelay caps a single delay (a server's Retry-After may still
	// exceed it — the server knows better). Zero means DefaultRetryMax.
	MaxDelay time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return DefaultRetryAttempts
	}
	return p.MaxAttempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return DefaultRetryBase
	}
	return p.BaseDelay
}

func (p RetryPolicy) max() time.Duration {
	if p.MaxDelay <= 0 {
		return DefaultRetryMax
	}
	return p.MaxDelay
}

// Option configures a Client (see New).
type Option func(*Client)

// WithRetry makes the Client retry requests answered 429 or 503 — the
// admission-shed and queue-full statuses — with jittered exponential
// backoff, honoring the server's Retry-After header when present.
// Other statuses (including every other 4xx) are never retried: they are
// deterministic request errors, not transient load. Streaming requests
// are only retried before any response byte arrived (a 429/503 is always
// pre-stream), so no candidate is ever delivered twice. When the request
// context's deadline would expire before the next delay, the Client
// gives up immediately and returns the last refusal as its *APIError
// instead of sleeping into a guaranteed context error.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p; c.retryOn = true }
}

// retryableStatus reports whether a status signals transient load
// shedding rather than a request defect.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// retryDelay picks the wait before attempt+2: the server's Retry-After
// when it sent one (the server knows its own refill schedule), else
// jittered exponential backoff — base·2^attempt capped at max, scaled by
// a random factor in [0.5, 1.5) so a shed burst of clients does not
// reconverge on the same instant.
func (c *Client) retryDelay(attempt int, resp *http.Response) time.Duration {
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	d := c.retry.base() << uint(attempt)
	if max := c.retry.max(); d > max || d <= 0 {
		d = max
	}
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		// frac in [0, 1): 53 random bits over 2^53.
		frac := float64(binary.LittleEndian.Uint64(b[:])>>11) / (1 << 53)
		d = time.Duration(float64(d) * (0.5 + frac))
	}
	return d
}

// do sends one request, retrying under the configured policy. body is
// the full request payload, replayed on every attempt (nil for bodyless
// requests); the caller still owns resp.Body on every non-nil return.
func (c *Client) do(req *http.Request, body []byte) (*http.Response, error) {
	if !c.retryOn {
		return c.hc.Do(req)
	}
	ctx := req.Context()
	attempts := c.retry.attempts()
	for attempt := 0; ; attempt++ {
		if body != nil {
			req.Body = io.NopCloser(bytes.NewReader(body))
			req.ContentLength = int64(len(body))
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			// Transport errors are not retried: the request may have
			// reached the server (an observe could double-ingest).
			return nil, err
		}
		if !retryableStatus(resp.StatusCode) || attempt+1 >= attempts {
			return resp, nil
		}
		delay := c.retryDelay(attempt, resp)
		if deadline, ok := ctx.Deadline(); ok && time.Now().Add(delay).After(deadline) {
			// Sleeping would outlive the caller's deadline: hand back the
			// refusal itself rather than a bare context error.
			return resp, nil
		}
		// Drain so the connection can be reused, then back off.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		_ = resp.Body.Close()
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
}
