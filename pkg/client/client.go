// Package client is the Go client of the Entropy/IP serving API. It
// speaks both response encodings of POST /v1/models/{name}/generate —
// NDJSON and the framed binary format of internal/wire — demultiplexes
// batch (multi-stream) responses, pushes observations back over the
// binary encoding, and turns v1 error envelopes into typed *APIError
// values.
//
// The two generate encodings yield the identical event sequence for the
// same request, so callers pick purely on transport cost: binary moves a
// candidate in 16 bytes instead of ~40 bytes of JSON and skips text
// formatting on both ends.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"entropyip/internal/ip6"
	"entropyip/internal/obs/trace"
	"entropyip/internal/wire"
)

// Client talks to one Entropy/IP server. The zero value is not usable;
// call New.
type Client struct {
	base string
	hc   *http.Client
	// retry/retryOn hold the WithRetry policy; off by default, so a 429
	// surfaces immediately unless the caller opted in.
	retry   RetryPolicy
	retryOn bool
}

// New returns a Client for the server at baseURL (e.g.
// "http://localhost:8080"). A nil httpClient uses http.DefaultClient.
// Options (e.g. WithRetry) refine behavior.
func New(baseURL string, httpClient *http.Client, opts ...Option) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// WithTrace returns ctx carrying a fresh client-minted trace context and
// the trace ID it will propagate. Every request the Client makes with the
// returned context sends the same trace ID in its traceparent header, so
// a multi-request round (generate, scan, feed results back) appears as
// one connected trace in the server's flight recorder — retrievable via
// GET /v1/debug/traces?trace_id=<returned ID>. The minted context is
// sampled, which the server honors as a forced keep.
func WithTrace(ctx context.Context) (context.Context, string) {
	sc := trace.NewSpanContext()
	return trace.ContextWithRemote(ctx, sc), sc.TraceID.String()
}

// traceparent injects the outbound W3C traceparent header when ctx
// carries a trace (from WithTrace, or a server-side span upstream).
func traceparent(ctx context.Context, req *http.Request) {
	if sc := trace.Outbound(ctx); sc.IsValid() {
		req.Header.Set("Traceparent", trace.Traceparent(sc))
	}
}

// APIError is a non-2xx answer decoded from the v1 error envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-matchable error class ("invalid_request",
	// "not_found", ...).
	Code string
	// Message is the human-readable description.
	Message string
	// RequestID names the server-side log records of this request.
	RequestID string
	// TraceID keys the server's flight recorder (/v1/debug/traces) and
	// trace_id log attribute.
	TraceID string
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("server: %s (%s, status %d, request %s)", e.Message, e.Code, e.Status, e.RequestID)
	}
	return fmt.Sprintf("server: %s (%s, status %d)", e.Message, e.Code, e.Status)
}

// decodeAPIError turns a non-2xx response into an *APIError.
func decodeAPIError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var envelope struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			RequestID string `json:"request_id"`
			TraceID   string `json:"trace_id"`
		} `json:"error"`
	}
	e := &APIError{Status: resp.StatusCode}
	if json.Unmarshal(body, &envelope) == nil && envelope.Error.Message != "" {
		e.Code = envelope.Error.Code
		e.Message = envelope.Error.Message
		e.RequestID = envelope.Error.RequestID
		e.TraceID = envelope.Error.TraceID
	} else {
		e.Message = strings.TrimSpace(string(body))
		if e.Message == "" {
			e.Message = resp.Status
		}
	}
	return e
}

// StreamSpec is one stream of a batch generate request.
type StreamSpec struct {
	Count             int               `json:"count"`
	Seed              *int64            `json:"seed,omitempty"`
	Evidence          map[string]string `json:"evidence,omitempty"`
	MaxAttemptsFactor int               `json:"max_attempts_factor,omitempty"`
}

// GenerateOptions configures one generate call. Leave Streams nil for a
// single stream described by Count/Seed/Evidence/MaxAttemptsFactor; set
// it for a batch request (the single-stream fields must then stay zero).
type GenerateOptions struct {
	// Count, Seed, Evidence, MaxAttemptsFactor describe the single
	// stream when Streams is nil.
	Count             int
	Seed              *int64
	Evidence          map[string]string
	MaxAttemptsFactor int
	// Streams switches to a batch request.
	Streams []StreamSpec
	// Version selects a model version; 0 means latest.
	Version int
	// Prefixes requests candidate /64 prefixes instead of addresses.
	Prefixes bool
	// Workers bounds the server-side generation parallelism.
	Workers int
	// Unordered trades deterministic order for throughput.
	Unordered bool
	// Binary selects the framed binary response encoding.
	Binary bool
}

// EventKind discriminates generate stream events.
type EventKind int

const (
	// KindCandidate is one generated address or prefix.
	KindCandidate EventKind = iota
	// KindStreamEnd marks a stream's clean completion (a stream shorter
	// than its count means the model's support was exhausted).
	KindStreamEnd
	// KindStreamError marks a stream that failed mid-way; Err carries
	// the server's message. Other streams of a batch keep going.
	KindStreamError
)

// Event is one demultiplexed element of a generate response.
type Event struct {
	// Kind says what the event is.
	Kind EventKind
	// Stream is the stream index (always 0 on single-stream requests).
	Stream int
	// Addr is the candidate address (address mode, KindCandidate).
	Addr ip6.Addr
	// Prefix is the candidate prefix (prefix mode, KindCandidate).
	Prefix ip6.Prefix
	// Err is the server's error message (KindStreamError).
	Err string
}

// GenerateResult summarizes a completed generate call.
type GenerateResult struct {
	// Seeds are the effective per-stream seeds from X-Seed; replaying
	// them reproduces each stream exactly.
	Seeds []int64
	// Encoding is the negotiated response encoding ("ndjson"/"binary").
	Encoding string
	// ModelVersion is the version that generated the stream.
	ModelVersion int
	// Candidates counts KindCandidate events delivered.
	Candidates int64
	// TraceID is the server's trace of this request (X-Trace-Id header,
	// or the binary stream's Trace frame), for /v1/debug/traces lookups.
	TraceID string
}

// generateRequest mirrors serve.GenerateRequest.
type generateRequest struct {
	Version           int               `json:"version,omitempty"`
	Count             int               `json:"count,omitempty"`
	Seed              *int64            `json:"seed,omitempty"`
	Evidence          map[string]string `json:"evidence,omitempty"`
	Prefixes          bool              `json:"prefixes,omitempty"`
	MaxAttemptsFactor int               `json:"max_attempts_factor,omitempty"`
	Workers           int               `json:"workers,omitempty"`
	Unordered         bool              `json:"unordered,omitempty"`
	Streams           []StreamSpec      `json:"streams,omitempty"`
}

// Generate streams candidates from the model, invoking yield for every
// event in arrival order until the response ends or yield returns false.
// Events of one stream arrive in the model's deterministic order;
// streams of a batch interleave.
func (c *Client) Generate(ctx context.Context, model string, opts GenerateOptions, yield func(Event) bool) (*GenerateResult, error) {
	body, err := json.Marshal(generateRequest{
		Version:           opts.Version,
		Count:             opts.Count,
		Seed:              opts.Seed,
		Evidence:          opts.Evidence,
		Prefixes:          opts.Prefixes,
		MaxAttemptsFactor: opts.MaxAttemptsFactor,
		Workers:           opts.Workers,
		Unordered:         opts.Unordered,
		Streams:           opts.Streams,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST",
		c.base+"/v1/models/"+model+"/generate", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	traceparent(ctx, req)
	if opts.Binary {
		req.Header.Set("Accept", wire.ContentType)
	} else {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	resp, err := c.do(req, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}

	res := &GenerateResult{
		Encoding: resp.Header.Get("X-Encoding"),
		TraceID:  resp.Header.Get("X-Trace-Id"),
	}
	res.ModelVersion, _ = strconv.Atoi(resp.Header.Get("X-Model-Version"))
	for _, part := range strings.Split(resp.Header.Get("X-Seed"), ",") {
		if seed, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64); err == nil {
			res.Seeds = append(res.Seeds, seed)
		}
	}
	if strings.EqualFold(resp.Header.Get("Content-Type"), wire.ContentType) {
		err = decodeBinaryStream(resp.Body, res, yield)
	} else {
		err = decodeNDJSONStream(resp.Body, opts.Prefixes, res, yield)
	}
	return res, err
}

// decodeBinaryStream demultiplexes a framed binary generate response.
func decodeBinaryStream(body io.Reader, res *GenerateResult, yield func(Event) bool) error {
	rd, err := wire.NewReader(bufio.NewReaderSize(body, 32<<10))
	if err != nil {
		return fmt.Errorf("decoding binary response: %w", err)
	}
	for {
		f, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("decoding binary response: %w", err)
		}
		switch f.Kind {
		case wire.KindAddrs:
			for i := 0; i < f.Count; i++ {
				res.Candidates++
				if !yield(Event{Kind: KindCandidate, Stream: f.Stream, Addr: f.Addr(i)}) {
					return nil
				}
			}
		case wire.KindPrefixes:
			for i := 0; i < f.Count; i++ {
				res.Candidates++
				if !yield(Event{Kind: KindCandidate, Stream: f.Stream, Prefix: f.Prefix(i)}) {
					return nil
				}
			}
		case wire.KindSeed:
			// Seeds are already in res.Seeds via X-Seed.
		case wire.KindTrace:
			// The in-band copy of the trace ID; authoritative when the
			// stream was saved to disk and replayed without its headers.
			if res.TraceID == "" {
				res.TraceID = trace.TraceID(f.TraceID()).String()
			}
		case wire.KindEnd:
			if !yield(Event{Kind: KindStreamEnd, Stream: f.Stream}) {
				return nil
			}
		case wire.KindError:
			if !yield(Event{Kind: KindStreamError, Stream: f.Stream, Err: f.Message()}) {
				return nil
			}
		}
	}
}

// generateLine mirrors serve.GenerateItem, for both single-stream and
// batch ({"stream":i,...}) lines.
type generateLine struct {
	Addr   string `json:"addr"`
	Prefix string `json:"prefix"`
	Error  string `json:"error"`
	Stream *int   `json:"stream"`
	Done   bool   `json:"done"`
}

// decodeNDJSONStream demultiplexes an NDJSON generate response into the
// same event sequence the binary decoder produces: batch done lines and
// the single stream's clean EOF both become KindStreamEnd.
func decodeNDJSONStream(body io.Reader, prefixes bool, res *GenerateResult, yield func(Event) bool) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	single := true
	failed := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item generateLine
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("decoding NDJSON line %q: %w", line, err)
		}
		ev := Event{Kind: KindCandidate}
		if item.Stream != nil {
			single = false
			ev.Stream = *item.Stream
		}
		switch {
		case item.Error != "":
			ev.Kind = KindStreamError
			ev.Err = item.Error
			failed = true
		case item.Done:
			ev.Kind = KindStreamEnd
		case prefixes:
			p, err := ip6.ParsePrefix(item.Prefix)
			if err != nil {
				return fmt.Errorf("server sent bad prefix %q: %w", item.Prefix, err)
			}
			ev.Prefix = p
			res.Candidates++
		default:
			a, err := ip6.ParseAddr(item.Addr)
			if err != nil {
				return fmt.Errorf("server sent bad address %q: %w", item.Addr, err)
			}
			ev.Addr = a
			res.Candidates++
		}
		if !yield(ev) {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// A single NDJSON stream has no done marker: clean EOF without an
	// error trailer is the stream's end.
	if single && !failed {
		yield(Event{Kind: KindStreamEnd})
	}
	return nil
}

// ObserveResult summarizes an observe call (the drift details of the
// full response body are available server-side via GET drift).
type ObserveResult struct {
	// Accepted is how many addresses entered the model's window.
	Accepted int `json:"accepted"`
	// Invalid is how many inputs the server rejected (always 0 over the
	// binary encoding, which cannot carry malformed addresses).
	Invalid int `json:"invalid"`
	// Evaluated is true when the batch triggered a drift evaluation.
	Evaluated bool `json:"evaluated"`
	// TraceID is the server's trace of this request (X-Trace-Id header).
	TraceID string `json:"-"`
}

// Observe pushes observed addresses into the model's ingest window over
// the framed binary encoding.
func (c *Client) Observe(ctx context.Context, model string, addrs []ip6.Addr) (*ObserveResult, error) {
	var buf bytes.Buffer
	buf.Grow(wire.HeaderSize + len(addrs)*16 + (len(addrs)/wire.MaxFrameRecords+1)*wire.FrameHeaderSize + wire.FrameHeaderSize)
	buf.Write(wire.AppendHeader(nil, wire.Header{Streams: 1}))
	ww := wire.NewWriter(&buf, 0, false, 0)
	for _, a := range addrs {
		if err := ww.AddAddr(a); err != nil {
			return nil, err
		}
	}
	if err := ww.End(); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST",
		c.base+"/v1/models/"+model+"/observe", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", wire.ContentType)
	traceparent(ctx, req)
	resp, err := c.do(req, buf.Bytes())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError(resp)
	}
	var out ObserveResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding observe response: %w", err)
	}
	out.TraceID = resp.Header.Get("X-Trace-Id")
	return &out, nil
}
