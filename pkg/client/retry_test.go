package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedThenServe answers n requests with the given status (and a 1-second
// Retry-After on 429/503), then succeeds with an empty NDJSON stream.
func shedThenServe(t *testing.T, shed int, status int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(shed) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_, _ = w.Write([]byte(`{"error":{"code":"rate_limited","message":"shed"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Seed", "7")
		w.Header().Set("X-Encoding", "ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"addr":"2001:db8::1"}` + "\n"))
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func generateOnce(t *testing.T, c *Client, ctx context.Context) (*GenerateResult, error) {
	t.Helper()
	return c.Generate(ctx, "m", GenerateOptions{Count: 1}, func(Event) bool { return true })
}

// TestRetryOn429HonorsRetryAfter: two sheds with Retry-After: 0, then
// success — WithRetry must ride through both and deliver the stream.
// Retry-After of 0 seconds keeps the test fast while proving the header
// is what set the delay (the default backoff base would be measurable).
func TestRetryOn429HonorsRetryAfter(t *testing.T) {
	srv, calls := shedThenServe(t, 2, http.StatusTooManyRequests, "0")
	c := New(srv.URL, nil, WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: 30 * time.Second}))
	start := time.Now()
	res, err := generateOnce(t, c, context.Background())
	if err != nil {
		t.Fatalf("Generate after retries: %v", err)
	}
	if res.Candidates != 1 {
		t.Fatalf("Candidates = %d, want 1", res.Candidates)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 sheds + success)", got)
	}
	// With BaseDelay at 30s, finishing fast proves Retry-After (0s) won.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retries took %v; Retry-After was not honored", elapsed)
	}
}

// TestRetryOn503 covers the other retryable status (the training queue's
// shed status).
func TestRetryOn503(t *testing.T) {
	srv, calls := shedThenServe(t, 1, http.StatusServiceUnavailable, "0")
	c := New(srv.URL, nil, WithRetry(RetryPolicy{}))
	if _, err := generateOnce(t, c, context.Background()); err != nil {
		t.Fatalf("Generate after 503 retry: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

// TestNoRetryOn400: a deterministic request error must surface on the
// first attempt — retrying a bad request can never fix it.
func TestNoRetryOn400(t *testing.T) {
	srv, calls := shedThenServe(t, 100, http.StatusBadRequest, "")
	c := New(srv.URL, nil, WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	_, err := generateOnce(t, c, context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *APIError with status 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry on 400)", got)
	}
}

// TestRetryGivesUpBeforeDeadline: when the next delay would outlive the
// context deadline, the client returns the last 429 as an *APIError
// immediately instead of sleeping into a guaranteed context error.
func TestRetryGivesUpBeforeDeadline(t *testing.T) {
	srv, calls := shedThenServe(t, 100, http.StatusTooManyRequests, "30")
	c := New(srv.URL, nil, WithRetry(RetryPolicy{MaxAttempts: 5}))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	_, err := generateOnce(t, c, ctx)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the 429 *APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (delay exceeds deadline)", got)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("gave up after %v; want immediate (no sleep into the deadline)", elapsed)
	}
}

// TestRetryExhaustsAttempts: a server that never recovers yields the
// final 429 after exactly MaxAttempts tries.
func TestRetryExhaustsAttempts(t *testing.T) {
	srv, calls := shedThenServe(t, 100, http.StatusTooManyRequests, "0")
	c := New(srv.URL, nil, WithRetry(RetryPolicy{MaxAttempts: 3}))
	_, err := generateOnce(t, c, context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the 429 *APIError", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want MaxAttempts = 3", got)
	}
}

// TestNoRetryWithoutOptIn: the default Client surfaces the first 429 —
// WithRetry is opt-in.
func TestNoRetryWithoutOptIn(t *testing.T) {
	srv, calls := shedThenServe(t, 100, http.StatusTooManyRequests, "0")
	c := New(srv.URL, nil)
	if _, err := generateOnce(t, c, context.Background()); err == nil {
		t.Fatal("want an error without retry opt-in")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// TestRetryReplaysRequestBody: every attempt must carry the full JSON
// body — a consumed reader would send an empty body on attempt 2.
func TestRetryReplaysRequestBody(t *testing.T) {
	var bodies atomic.Int64
	var shed atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Count int `json:"count"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Count != 1 {
			t.Errorf("attempt body missing count=1: err=%v count=%d", err, req.Count)
		}
		bodies.Add(1)
		if shed.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	c := New(srv.URL, nil, WithRetry(RetryPolicy{}))
	if _, err := generateOnce(t, c, context.Background()); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := bodies.Load(); got != 2 {
		t.Fatalf("server saw %d bodies, want 2", got)
	}
}
