// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the per-exhibit index). Each benchmark
// runs the corresponding experiment end to end on the synthetic dataset
// catalog and reports domain metrics (success rates, entropy values, hit
// counts) through b.ReportMetric, so that
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation at laptop scale. Full tables with the
// same rows as the paper are printed by `go run ./cmd/eipreport`; the
// benchmarks here use b.Logf for row-level detail (visible with -v).
package entropyip

import (
	"strings"
	"testing"

	"entropyip/internal/bayes"
	"entropyip/internal/core"
	"entropyip/internal/entropy"
	"entropyip/internal/mining"
	"entropyip/internal/report"
	"entropyip/internal/segment"
	"entropyip/internal/synth"
	"entropyip/internal/viz"
)

// benchSizes keeps a full `go test -bench=.` run in the minutes range while
// preserving the paper's protocol (1K training addresses). Candidate counts
// and universe sizes can be raised to the paper's scale via cmd/eipreport.
func benchSizes() report.Sizes {
	return report.Sizes{TrainSize: 1000, Candidates: 20_000, UniverseSize: 20_000, Seed: 1}
}

// --- Table 1 -----------------------------------------------------------

func BenchmarkTable1DatasetSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := report.Table1(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// --- Figures 1 and 2, Table 2 (C1, the Japanese-telco-like client set) --

func BenchmarkFigure1ConditionalBrowser(b *testing.B) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		a, err := report.Analyze("C1", sizes, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// The "mouse click" of Fig. 1(b)->(c): condition on the most
		// popular exact value of the last segment and recompute the
		// browser.
		last := a.Model.Segments[len(a.Model.Segments)-1]
		var code string
		for _, v := range last.Values {
			if v.IsExact() {
				code = v.Code
				break
			}
		}
		if code == "" {
			b.Fatal("no exact value to click on")
		}
		before, err := a.Model.Browse(nil)
		if err != nil {
			b.Fatal(err)
		}
		after, err := a.Model.Browse(core.Evidence{last.Seg.Label: code})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("clicked %s=%s; first segment before/after:\n%s\n%s",
				last.Seg.Label, code, viz.ASCIIBrowser(before[:1]), viz.ASCIIBrowser(after[:1]))
			b.ReportMetric(a.Model.TotalEntropy(), "H_S")
			b.ReportMetric(float64(len(a.Model.Segments)), "segments")
		}
	}
}

func BenchmarkFigure2BNStructure(b *testing.B) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		a, err := report.Analyze("C1", sizes, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		deps := a.Model.Dependencies()
		dot := viz.DOTNetwork(a.Model, "")
		if !strings.HasPrefix(dot, "digraph") {
			b.Fatal("bad DOT output")
		}
		if i == 0 {
			b.ReportMetric(float64(len(deps)), "edges")
			for _, d := range deps {
				b.Logf("edge %s -> %s (MI %.2f bits)", d.Parent, d.Child, d.MI)
			}
		}
	}
}

func BenchmarkTable2ConditionalProbability(b *testing.B) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		a, err := report.Analyze("C1", sizes, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		tbl, err := report.Table2(a)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tbl)
		}
	}
}

// --- Figure 4 and Table 3 (segment mining of S1) ------------------------

func BenchmarkFigure4SegmentMining(b *testing.B) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		a, err := report.Analyze("S1", sizes, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// Fig. 4 is the histogram of one two-nybble segment with its mined
		// codes; report how many codes the mining produced per step.
		steps := map[mining.Step]int{}
		for _, sm := range a.Model.Segments {
			for _, v := range sm.Values {
				steps[v.Step]++
			}
		}
		if i == 0 {
			b.ReportMetric(float64(steps[mining.StepOutlier]), "outlier_values")
			b.ReportMetric(float64(steps[mining.StepDense]+steps[mining.StepUniform]), "range_values")
			b.ReportMetric(float64(steps[mining.StepClosing]), "closing_values")
		}
	}
}

func BenchmarkTable3SegmentMiningS1(b *testing.B) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		a, err := report.Analyze("S1", sizes, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		tbl := report.Table3(a)
		if i == 0 {
			b.Logf("\n%s", tbl)
			b.ReportMetric(float64(len(a.Model.Segments)), "segments")
			codes := 0
			for _, sm := range a.Model.Segments {
				codes += sm.Arity()
			}
			b.ReportMetric(float64(codes), "mined_codes")
		}
	}
}

// --- Figure 5 (windowed entropy of S1) ----------------------------------

func BenchmarkFigure5WindowedEntropy(b *testing.B) {
	addrs, err := synth.Generate("S1", 5000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := entropy.NewWindowed(addrs)
		if i == 0 {
			b.ReportMetric(w.Max(), "max_bits")
			svg := viz.SVGWindowedHeatmap("Fig 5: windowed entropy, S1", w)
			if !strings.HasPrefix(svg, "<svg") {
				b.Fatal("bad SVG")
			}
		}
	}
}

// --- Figure 6 (aggregate entropy) ---------------------------------------

func BenchmarkFigure6AggregateEntropy(b *testing.B) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		series, err := report.Figure6(sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.Logf("%s: H_S = %.1f", s.Dataset, s.Total)
				switch s.Dataset {
				case "AS":
					b.ReportMetric(s.Total, "H_S_servers")
				case "AC":
					b.ReportMetric(s.Total, "H_S_clients")
					b.ReportMetric(s.H[17], "u_bit_nybble_H")
				case "AR":
					b.ReportMetric((s.H[22]+s.H[23])/2, "fffe_nybble_H")
				}
			}
		}
	}
}

// --- Figures 7, 9, 10 (per-dataset deep dives) ---------------------------

func benchmarkDatasetFigure(b *testing.B, name string) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		a, err := report.Analyze(name, sizes, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		svg := viz.SVGEntropyPlot(name, a.Model.Profile.H[:], a.Model.ACR.ACR[:], viz.SegmentMarkers(a.Model))
		if !strings.HasPrefix(svg, "<svg") {
			b.Fatal("bad SVG")
		}
		if _, err := a.Model.Browse(nil); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(a.Model.TotalEntropy(), "H_S")
			b.ReportMetric(float64(len(a.Model.Segments)), "segments")
			b.Logf("%s segmentation: %s", name, a.Model.Segmentation)
		}
	}
}

func BenchmarkFigure7ServerS1(b *testing.B)  { benchmarkDatasetFigure(b, "S1") }
func BenchmarkFigure9RouterR1(b *testing.B)  { benchmarkDatasetFigure(b, "R1") }
func BenchmarkFigure10ClientC1(b *testing.B) { benchmarkDatasetFigure(b, "C1") }

// --- Figure 8 (brief plots) ----------------------------------------------

func BenchmarkFigure8BriefPlots(b *testing.B) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		series, err := report.Figure8(sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.Logf("%s: H_S = %.1f", s.Dataset, s.Total)
			}
			b.ReportMetric(float64(len(series)), "datasets")
		}
	}
}

// --- Table 4 (scanning servers and routers) ------------------------------

func BenchmarkTable4Scanning(b *testing.B) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		tbl, rows, err := report.Table4(sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tbl)
			var sum, routers float64
			newPrefixes := 0
			for _, r := range rows {
				sum += r.SuccessRate
				if r.Dataset[0] == 'R' {
					routers += r.SuccessRate
				}
				newPrefixes += r.NewPrefixes64
			}
			b.ReportMetric(100*sum/float64(len(rows)), "mean_success_%")
			b.ReportMetric(float64(newPrefixes), "new_/64s")
		}
	}
}

// --- Table 5 (training size sweep) ----------------------------------------

func BenchmarkTable5TrainingSize(b *testing.B) {
	sizes := benchSizes()
	sizes.Candidates = 10_000
	for i := 0; i < b.N; i++ {
		tbl, results, err := report.Table5([]string{"S5", "R1", "C5"}, []int{100, 1000, 5000}, sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tbl)
			if r := results["R1"]; len(r) == 3 {
				b.ReportMetric(100*r[1], "R1_success_at_1K_%")
			}
		}
	}
}

// --- Table 6 (client /64 prefix prediction) -------------------------------

func BenchmarkTable6PrefixPrediction(b *testing.B) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		tbl, rows, err := report.Table6(sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tbl)
			sum := 0.0
			for _, r := range rows {
				sum += r.SuccessRate7Day
			}
			b.ReportMetric(100*sum/float64(len(rows)), "mean_7day_success_%")
		}
	}
}

// --- Baseline comparison (the §2/§5.5 qualitative claim) -------------------

func BenchmarkBaselineComparison(b *testing.B) {
	sizes := benchSizes()
	for i := 0; i < b.N; i++ {
		rows, err := report.CompareBaselines("R1", sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-18s success %6.2f%%  new /64s %d", r.Generator, 100*r.SuccessRate, r.NewPrefixes)
				if r.Generator == "entropy-ip" {
					b.ReportMetric(float64(r.NewPrefixes), "entropyip_new_/64s")
				}
			}
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) --------------------

// BenchmarkAblationSegmentation compares the paper's entropy-threshold
// segmentation against fixed-width 4-nybble segments by the likelihood the
// resulting model assigns to held-out data.
func BenchmarkAblationSegmentation(b *testing.B) {
	addrs, err := synth.Generate("S1", 20_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	train, test := addrs[:1000], addrs[1000:3000]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entropyModel, err := core.Build(train, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		fixedModel, err := core.Build(train, core.Options{
			Segmentation: segment.Config{Thresholds: []float64{2}, ForcedBoundaries: []int{16, 32, 48, 64, 80, 96, 112}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(entropyModel.LogLikelihood(test)/float64(len(test)), "entropy_seg_LL")
			b.ReportMetric(fixedModel.LogLikelihood(test)/float64(len(test)), "fixed_seg_LL")
			b.ReportMetric(float64(len(entropyModel.Segments)), "entropy_segments")
			b.ReportMetric(float64(len(fixedModel.Segments)), "fixed_segments")
		}
	}
}

// BenchmarkAblationBNStructure compares the learned Bayesian network against
// the independent-segments and Markov-chain alternatives discussed in §4.5,
// by held-out log-likelihood.
func BenchmarkAblationBNStructure(b *testing.B) {
	addrs, err := synth.Generate("C1", 20_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	train, test := addrs[:1000], addrs[1000:3000]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		type variant struct {
			name string
			s    bayes.Structure
		}
		variants := []variant{
			{"learned", bayes.StructureLearned},
			{"independent", bayes.StructureIndependent},
			{"chain", bayes.StructureChain},
		}
		for _, v := range variants {
			m, err := core.Build(train, core.Options{Learn: bayes.LearnConfig{Structure: v.s}})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(m.LogLikelihood(test)/float64(len(test)), v.name+"_LL")
			}
		}
	}
}

// BenchmarkAblationMining compares the paper's full mining heuristic against
// a top-K-only variant (no DBSCAN ranges) by scanning success on R1.
func BenchmarkAblationMining(b *testing.B) {
	sizes := benchSizes()
	sizes.Candidates = 10_000
	for i := 0; i < b.N; i++ {
		full, err := report.ScanDataset("R1", sizes)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*full.SuccessRate, "full_mining_success_%")
		}
		// Top-K-only mining: tiny nominate limit and huge stop fraction so
		// only the outlier step contributes.
		a, err := report.Analyze("R1", sizes, core.Options{
			Mining: mining.Config{NominateLimit: 5, StopFraction: 0.5},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			codes := 0
			for _, sm := range a.Model.Segments {
				codes += sm.Arity()
			}
			b.ReportMetric(float64(codes), "topk_codes")
		}
	}
}
