// Explore: the conditional probability browser (Fig. 1 of the paper).
//
// The program synthesizes the C1 archetype — a mobile ISP where 47% of the
// interface identifiers follow a vendor-specific pattern (zero middle, IID
// ending in 01) — trains an Entropy/IP model, and shows how the per-segment
// value distributions change when the analyst "clicks" on a value of the
// last segment, exactly the Fig. 1(b) → Fig. 1(c) interaction: the zero
// middle becomes certain and the subnet distribution shifts, because
// probabilistic influence flows backwards through the Bayesian network.
//
// Run it with:
//
//	go run ./examples/explore
package main

import (
	"fmt"
	"log"
	"strings"

	"entropyip"
)

func main() {
	addrs, err := entropyip.Synthesize("C1", 40000, 11)
	if err != nil {
		log.Fatal(err)
	}
	model, err := entropyip.Analyze(addrs[:2000], entropyip.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Find the vendor-pattern code in the last segment: the exact value
	// whose hexadecimal form ends in "01".
	last := model.Segments[len(model.Segments)-1]
	var clickCode, clickDisplay string
	for _, v := range last.Values {
		display := last.FormatValue(v)
		if v.IsExact() && strings.HasSuffix(display, "01") {
			clickCode, clickDisplay = v.Code, display
			break
		}
	}
	if clickCode == "" {
		log.Fatalf("no vendor-pattern value mined in segment %s", last.Seg.Label)
	}

	before, err := model.Browse(nil)
	if err != nil {
		log.Fatal(err)
	}
	after, err := model.Browse(entropyip.Evidence{last.Seg.Label: clickCode})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset C1: %d training addresses, segments %v\n", model.TrainCount, model.Segmentation)
	fmt.Printf("clicking on %s = %s (%s) in the conditional probability browser:\n\n",
		last.Seg.Label, clickCode, clickDisplay)
	fmt.Printf("%-8s %-30s %12s %12s\n", "segment", "value", "before", "after")
	for i := range before {
		for k := range before[i].Entries {
			b := before[i].Entries[k]
			a := after[i].Entries[k]
			// Only print rows that move noticeably, as an analyst would
			// scan for.
			if abs(b.Prob-a.Prob) < 0.02 {
				continue
			}
			fmt.Printf("%-8s %-30s %11.1f%% %11.1f%%\n", before[i].Label, b.Display, b.Prob*100, a.Prob*100)
		}
	}
	fmt.Println("\ndirect influences on the clicked segment (red edges of Fig. 2):")
	infl, err := model.DirectInfluences(last.Seg.Label)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", strings.Join(infl, ", "))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
