// Client prefixes: reproduce the paper's §5.6 experiment.
//
// Client addresses use pseudo-random privacy interface identifiers, so
// guessing full /128 addresses is hopeless; the paper instead predicts
// active /64 prefixes (subscriber networks). This program synthesizes a
// wired-ISP client population (the C5 archetype), models only the top 64
// bits of a 1K-prefix training sample, generates candidate /64s and counts
// how many are actually active.
//
// Run it with:
//
//	go run ./examples/clientprefixes
package main

import (
	"fmt"
	"log"

	"entropyip"
)

func main() {
	population, err := entropyip.Synthesize("C5", 60000, 3)
	if err != nil {
		log.Fatal(err)
	}
	// Ground truth: the set of active /64s over the whole week.
	activePrefixes := map[entropyip.Prefix]bool{}
	for _, a := range population {
		activePrefixes[entropyip.Prefix64(a)] = true
	}

	// Training: 1K addresses seen on "day one".
	train := population[:1000]
	model, err := entropyip.Analyze(train, entropyip.Options{Prefix64Only: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client /64 model: %d training prefixes, segments %v\n", model.TrainCount, model.Segmentation)

	exclude := entropyip.NewSet(len(train))
	for _, a := range train {
		exclude.Add(a)
	}
	candidates, err := model.GeneratePrefixes(entropyip.GenerateOptions{Count: 50000, Seed: 9, Exclude: exclude})
	if err != nil {
		log.Fatal(err)
	}

	trainPrefixes := map[entropyip.Prefix]bool{}
	for _, a := range train {
		trainPrefixes[entropyip.Prefix64(a)] = true
	}
	hits, newHits := 0, 0
	for _, p := range candidates {
		if !activePrefixes[p] {
			continue
		}
		hits++
		if !trainPrefixes[p] {
			newHits++
		}
	}
	fmt.Printf("generated %d candidate /64 prefixes\n", len(candidates))
	fmt.Printf("%d are active (%.1f%% success rate); %d of them were never seen in training\n",
		hits, 100*float64(hits)/float64(len(candidates)), newHits)
	fmt.Printf("the network has %d active /64s in total; training saw only %d\n",
		len(activePrefixes), len(trainPrefixes))
}
