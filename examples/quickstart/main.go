// Quickstart: analyze a set of IPv6 addresses with Entropy/IP.
//
// The program synthesizes a server network (the S5 archetype: many /64s
// whose last nybbles identify the service type), trains a model on a 1K
// sample, prints what the system discovered — the per-nybble entropy, the
// segmentation, the mined segment values and the Bayesian-network
// dependencies — and generates a handful of candidate addresses.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"entropyip"
)

func main() {
	// 1. Obtain a set of active IPv6 addresses. Real deployments would load
	//    them from server logs or DNS; here we synthesize the S5 archetype.
	addrs, err := entropyip.Synthesize("S5", 20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	train := addrs[:1000]

	// 2. Train the Entropy/IP model (entropy → segments → mining → BN).
	model, err := entropyip.Analyze(train, entropyip.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d addresses; total entropy H_S = %.1f\n\n", model.TrainCount, model.TotalEntropy())

	// 3. Inspect the discovered structure.
	fmt.Println("segments:", model.Segmentation)
	for _, sm := range model.Segments {
		fmt.Printf("  %s (bits %d-%d): %d mined values, e.g.", sm.Seg.Label, sm.Seg.StartBit(), sm.Seg.EndBit(), sm.Arity())
		for i, v := range sm.Values {
			if i == 3 {
				fmt.Print(" ...")
				break
			}
			fmt.Printf(" %s=%s (%.0f%%)", v.Code, sm.FormatValue(v), v.Freq*100)
		}
		fmt.Println()
	}
	fmt.Println("\ndependencies between segments (Bayesian network):")
	for _, d := range model.Dependencies() {
		fmt.Printf("  %s -> %s (mutual information %.2f bits)\n", d.Parent, d.Child, d.MI)
	}

	// 4. Generate candidate addresses for scanning and check how many are
	//    real (present in the held-out portion of the network).
	heldOut := entropyip.NewSet(len(addrs))
	for _, a := range addrs[1000:] {
		heldOut.Add(a)
	}
	exclude := entropyip.NewSet(len(train))
	for _, a := range train {
		exclude.Add(a)
	}
	cands, err := model.Generate(entropyip.GenerateOptions{Count: 5000, Seed: 42, Exclude: exclude})
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, c := range cands {
		if heldOut.Contains(c) {
			hits++
		}
	}
	fmt.Printf("\ngenerated %d candidates never seen in training; %d (%.1f%%) are active hosts\n",
		len(cands), hits, 100*float64(hits)/float64(len(cands)))
	fmt.Println("first candidates:")
	for _, c := range cands[:5] {
		fmt.Println("  ", c)
	}
}
