// Scanning: reproduce the paper's §5.5 experiment on one network.
//
// The program plays both sides of the experiment: it synthesizes a router
// network (R1: point-to-point links, ::1/::2 interface identifiers), trains
// an Entropy/IP model on 1K known addresses, generates 50K candidate
// targets, and "scans" them against the full synthetic population — the
// stand-in for the paper's ICMPv6 echo scanning of the real Internet. It
// reports the hit rate and how many active /64 prefixes were discovered
// that never appeared in the training data, and contrasts the result with a
// client network whose privacy addresses are unguessable.
//
// Run it with:
//
//	go run ./examples/scanning
package main

import (
	"fmt"
	"log"

	"entropyip"
)

func main() {
	for _, name := range []string{"R1", "C3"} {
		if err := scanNetwork(name); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func scanNetwork(name string) error {
	population, err := entropyip.Synthesize(name, 40000, 7)
	if err != nil {
		return err
	}
	train := population[:1000]
	fmt.Printf("=== dataset %s: %d active addresses, training on %d ===\n", name, len(population), len(train))

	model, err := entropyip.Analyze(train, entropyip.Options{})
	if err != nil {
		return err
	}

	exclude := entropyip.NewSet(len(train))
	trainPrefixes := map[entropyip.Prefix]bool{}
	for _, a := range train {
		exclude.Add(a)
		trainPrefixes[entropyip.Prefix64(a)] = true
	}
	candidates, err := model.Generate(entropyip.GenerateOptions{Count: 50000, Seed: 1, Exclude: exclude})
	if err != nil {
		return err
	}

	active := entropyip.NewSet(len(population))
	activePrefixes := map[entropyip.Prefix]bool{}
	for _, a := range population {
		active.Add(a)
		activePrefixes[entropyip.Prefix64(a)] = true
	}

	hits := 0
	newPrefixes := map[entropyip.Prefix]bool{}
	for _, c := range candidates {
		if !active.Contains(c) {
			continue
		}
		hits++
		p := entropyip.Prefix64(c)
		if !trainPrefixes[p] {
			newPrefixes[p] = true
		}
	}
	fmt.Printf("generated %d candidates, %d hits (%.2f%% success rate)\n",
		len(candidates), hits, 100*float64(hits)/float64(len(candidates)))
	fmt.Printf("discovered %d active /64 prefixes not seen in training (of %d active /64s total)\n",
		len(newPrefixes), len(activePrefixes))
	return nil
}
