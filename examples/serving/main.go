// Serving: run the Entropy/IP model-serving API end to end, in process.
//
// The program starts the eipserved HTTP handler on a loopback listener
// backed by a temporary registry directory, then acts as a client:
//
//  1. trains a model locally on a synthesized server network and uploads
//     it, then has the server train a second version from raw addresses;
//  2. lists the registry;
//  3. issues a conditional-probability browse query and checks the
//     distributions match Model.Browse computed locally;
//  4. streams 10,000 candidate addresses as NDJSON, consuming them line
//     by line off the wire.
//
// Run it with:
//
//	go run ./examples/serving
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"

	"entropyip"
)

func main() {
	// --- Server side: registry + HTTP handler on a loopback port. ---
	dir, err := os.MkdirTemp("", "eipserved-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	reg, err := entropyip.OpenRegistry(dir, 8)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: entropyip.NewServeHandler(reg, entropyip.ServeOptions{})}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// --- 1a. Train locally and upload the serialized model. ---
	addrs, err := entropyip.Synthesize("S5", 20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	model, err := entropyip.Analyze(addrs[:2000], entropyip.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rawModel, err := json.Marshal(model)
	if err != nil {
		log.Fatal(err)
	}
	var put entropyip.PutModelResponse
	request("PUT", base+"/v1/models/s5", entropyip.PutModelRequest{Model: rawModel}, &put)
	fmt.Printf("uploaded model s5 v%d (%d training addresses, %d segments)\n",
		put.Info.Version, put.Info.TrainCount, put.Info.Segments)

	// --- 1b. Let the server train the next version from raw addresses. ---
	lines := make([]string, 0, 2000)
	for _, a := range addrs[2000:4000] {
		lines = append(lines, a.String())
	}
	request("PUT", base+"/v1/models/s5", entropyip.PutModelRequest{Addresses: lines}, &put)
	fmt.Printf("server trained s5 v%d from %d posted addresses\n", put.Info.Version, len(lines))

	// --- 2. List models. ---
	var list entropyip.ListModelsResponse
	request("GET", base+"/v1/models", nil, &list)
	for _, info := range list.Models {
		fmt.Printf("registry: %s v%d (%d bytes on disk)\n", info.Name, info.Version, info.SizeBytes)
	}

	// --- 3. Browse v1 and verify against the local model. ---
	var browse entropyip.BrowseResponse
	request("POST", base+"/v1/models/s5/browse", entropyip.BrowseRequest{Version: 1}, &browse)
	direct, err := model.Browse(nil)
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range direct {
		for k, e := range d.Entries {
			if diff := math.Abs(browse.Distributions[i].Entries[k].Prob - e.Prob); diff > 1e-12 {
				log.Fatalf("browse mismatch at %s/%s: %v", d.Label, e.Code, diff)
			}
		}
	}
	fmt.Printf("browse: %d segment distributions match Model.Browse exactly\n", len(browse.Distributions))
	top := browse.Distributions[len(browse.Distributions)-1]
	fmt.Printf("  e.g. segment %s:", top.Label)
	for i, e := range top.Entries {
		if i == 4 {
			fmt.Print(" ...")
			break
		}
		fmt.Printf(" %s=%.0f%%", e.Code, e.Prob*100)
	}
	fmt.Println()

	// --- 4. Stream 10k candidates as NDJSON. ---
	// An explicit seed makes the stream reproducible; omit it (nil) to let
	// the server derive one and echo it in the X-Seed response header.
	seed := int64(42)
	genReq, _ := json.Marshal(entropyip.GenerateRequest{Count: 10000, Seed: &seed, Version: 1})
	resp, err := http.Post(base+"/v1/models/s5/generate", "application/json", bytes.NewReader(genReq))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("generate: status %d", resp.StatusCode)
	}
	count := 0
	var first, last string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var item entropyip.GenerateItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			log.Fatal(err)
		}
		if count == 0 {
			first = item.Addr
		}
		last = item.Addr
		count++
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d candidates over HTTP (first %s, last %s)\n", count, first, last)

	// --- Health check with request metrics. ---
	var health entropyip.HealthResponse
	request("GET", base+"/healthz", nil, &health)
	fmt.Printf("healthz: %s, %d models, cache %d/%d, %d routes served\n",
		health.Status, health.Registry.Models,
		health.Registry.CacheEntries, health.Registry.CacheCapacity,
		len(health.Metrics.Routes))
}

// request issues one JSON request and decodes the JSON response into out.
func request(method, url string, body, out interface{}) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			log.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		log.Fatalf("%s %s: status %d: %s", method, url, resp.StatusCode, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}
