// Drift: watch the serving daemon detect a shifted address population and
// rotate to a fresh model on its own.
//
// The paper models a snapshot of an operator's addressing plan, but
// operators change plans over time — a served model goes stale. This
// program runs the full feedback loop in process:
//
//  1. trains a model on the S5 archetype (a server network) and uploads
//     it as version 1 of "live";
//  2. streams in-distribution S5 traffic to POST /observe — drift stays
//     near zero and nothing happens;
//  3. switches the "live traffic" to the R2 archetype (a router network
//     with a completely different plan) — the drift detector trips, the
//     daemon retrains on the live window, shadow-evaluates the candidate
//     (its likelihood on live traffic must beat the stale model's), and
//     atomically publishes version 2;
//  4. prints the rotation record and the registry's version list.
//
// The same loop runs against real traffic via `eipserved -auto-refresh`
// with `-ingest-file` or POST /v1/models/{name}/observe; the offline twin
// is `entropyip -drift model.json -in today.txt`.
//
// Run it with:
//
//	go run ./examples/drift
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"entropyip"
)

func main() {
	// --- Server with the refresh loop enabled. ---
	dir, err := os.MkdirTemp("", "eip-drift-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	reg, err := entropyip.OpenRegistry(dir, 8)
	if err != nil {
		log.Fatal(err)
	}
	handler := entropyip.NewServeHandler(reg, entropyip.ServeOptions{
		Refresh: entropyip.RefreshOptions{
			AutoRefresh:   true,
			EvaluateEvery: 512,
			Ingest:        entropyip.IngestConfig{WindowSize: 4096},
			Drift:         entropyip.DriftConfig{Enter: 0.15, Consecutive: 2, MinWindow: 256},
			OnEvent: func(model, event, detail string) {
				fmt.Printf("  [refresh] %s: %s (%s)\n", model, event, detail)
			},
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// --- 1. Train on S5 and publish as "live" v1. ---
	s5, err := entropyip.Synthesize("S5", 12000, 1)
	if err != nil {
		log.Fatal(err)
	}
	model, err := entropyip.Analyze(s5[:2000], entropyip.Options{})
	if err != nil {
		log.Fatal(err)
	}
	raw, err := json.Marshal(model)
	if err != nil {
		log.Fatal(err)
	}
	var put entropyip.PutModelResponse
	request(base, "PUT", "/v1/models/live", entropyip.PutModelRequest{Model: raw}, &put)
	fmt.Printf("published live v%d trained on %d S5 addresses\n\n", put.Info.Version, put.Info.TrainCount)

	// --- 2. In-distribution traffic: drift stays quiet. ---
	fmt.Println("streaming in-distribution S5 traffic...")
	observe(base, s5[2000:4000])
	printStatus(base)

	// --- 3. The operator's plan changes: live traffic is now R2. ---
	r2, err := entropyip.Synthesize("R2", 12000, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan change! streaming R2 traffic...")
	for i := 0; i < len(r2) && !rotatedOnce(base); i += 512 {
		end := i + 512
		if end > len(r2) {
			end = len(r2)
		}
		observe(base, r2[i:end])
	}

	// Wait for the background retrain + rotation to land.
	deadline := time.Now().Add(2 * time.Minute)
	for !rotatedOnce(base) {
		if time.Now().After(deadline) {
			log.Fatal("no rotation within two minutes")
		}
		time.Sleep(100 * time.Millisecond)
	}
	st := status(base)
	fmt.Printf("\nrotated to v%d: mean log-likelihood %.2f -> %.2f on a %d-address live window\n",
		st.LastRotation.Version, st.LastRotation.StaleMeanLL, st.LastRotation.FreshMeanLL, st.LastRotation.Window)
	printStatus(base)

	// --- 4. The registry now serves the fresh model to new requests. ---
	resp, err := http.Get(base + "/v1/models/live")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Latest   entropyip.ModelInfo   `json:"latest"`
		Versions []entropyip.ModelInfo `json:"versions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregistry: latest is v%d (trained on %d live addresses); %d versions kept:\n",
		info.Latest.Version, info.Latest.TrainCount, len(info.Versions))
	for _, v := range info.Versions {
		fmt.Printf("  v%d: %d training addresses, %d segments\n", v.Version, v.TrainCount, v.Segments)
	}
}

// request issues one JSON request and decodes the JSON answer into out.
func request(base, method, path string, body, out interface{}) {
	var payload strings.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			log.Fatal(err)
		}
		payload = *strings.NewReader(string(raw))
	}
	req, err := http.NewRequest(method, base+path, &payload)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

// observe streams addresses to POST /observe as plain NDJSON lines (the
// same format `curl --data-binary @addrs.txt` would send).
func observe(base string, addrs []entropyip.Addr) {
	var b strings.Builder
	for _, a := range addrs {
		b.WriteString(a.String())
		b.WriteByte('\n')
	}
	resp, err := http.Post(base+"/v1/models/live/observe", "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var or entropyip.ObserveResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("observe: HTTP %d", resp.StatusCode)
	}
}

func status(base string) entropyip.DriftStatus {
	resp, err := http.Get(base + "/v1/models/live/drift")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st entropyip.DriftStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return st
}

func rotatedOnce(base string) bool { return status(base).Rotations >= 1 }

func printStatus(base string) {
	st := status(base)
	score := 0.0
	if st.LastVerdict != nil {
		score = st.LastVerdict.Report.Score
	}
	fmt.Printf("  drift status: window=%d evaluations=%d score=%.3f drifting=%v rotations=%d\n",
		st.Ingest.Window, st.Evaluations, score, st.Drifting, st.Rotations)
}
