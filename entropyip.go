// Package entropyip is the public facade of the Entropy/IP reproduction:
// a system that discovers the structure of IPv6 address sets by combining
// per-nybble entropy analysis, entropy-based segmentation, per-segment
// value mining and a Bayesian network over segment codes, and that uses the
// resulting model to explore addressing plans and to generate candidate
// targets for active scanning (Foremski, Plonka, Berger — "Entropy/IP:
// Uncovering Structure in IPv6 Addresses", IMC 2016).
//
// The facade re-exports the stable subset of the internal packages through
// type aliases, so that example programs and downstream users interact with
// a single import path:
//
//	addrs, _ := entropyip.ParseAddrs(lines)
//	model, _ := entropyip.Analyze(addrs, entropyip.Options{})
//	dists, _ := model.Browse(nil)
//	cands, _ := model.Generate(entropyip.GenerateOptions{Count: 100000})
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping between packages and the paper's sections.
package entropyip

import (
	"fmt"
	"io"
	"net/http"

	"entropyip/internal/core"
	"entropyip/internal/dataset"
	"entropyip/internal/drift"
	"entropyip/internal/ingest"
	"entropyip/internal/ip6"
	"entropyip/internal/registry"
	"entropyip/internal/serve"
	"entropyip/internal/synth"
)

// Addr is a 128-bit IPv6 address.
type Addr = ip6.Addr

// Prefix is a CIDR prefix.
type Prefix = ip6.Prefix

// Set is a collection of unique addresses.
type Set = ip6.Set

// Model is a trained Entropy/IP model.
type Model = core.Model

// Options configures model building; the zero value reproduces the paper's
// configuration. Options.Workers bounds training parallelism (0 = all
// cores); the trained model is bit-identical for any worker count.
type Options = core.Options

// GenerateOptions controls candidate generation. Workers bounds the
// goroutines drawing candidates (0 = all cores); the emitted candidate
// sequence is byte-identical for any worker count unless Unordered
// trades the deterministic order for throughput.
type GenerateOptions = core.GenerateOptions

// Evidence conditions the model on segment values by code, e.g.
// Evidence{"J": "J1"}.
type Evidence = core.Evidence

// SegmentDistribution is one row of the conditional probability browser.
type SegmentDistribution = core.SegmentDistribution

// Dataset is a named collection of unique addresses.
type Dataset = dataset.Dataset

// ParseAddr parses an IPv6 address in any RFC 4291 textual form or the
// fixed-width 32-hex-character form.
func ParseAddr(s string) (Addr, error) { return ip6.ParseAddr(s) }

// ParseAddrBytes is ParseAddr over a byte slice, for line-oriented
// readers that should not convert each line to a string; it does not
// allocate and does not retain b. Addr's append-style formatters
// (AppendString, AppendHex, AppendExpanded) are the matching output
// primitives.
func ParseAddrBytes(b []byte) (Addr, error) { return ip6.ParseAddrBytes(b) }

// ParseDatasetLine parses one line of an address file (whitespace,
// '#' comments and /len prefix notation handled) from a byte slice
// without allocating; ok is false for blank and comment lines.
func ParseDatasetLine(line []byte) (a Addr, ok bool, err error) {
	return dataset.ParseLineBytes(line)
}

// MustParseAddr is like ParseAddr but panics on error.
func MustParseAddr(s string) Addr { return ip6.MustParseAddr(s) }

// ParsePrefix parses a prefix in "addr/len" notation.
func ParsePrefix(s string) (Prefix, error) { return ip6.ParsePrefix(s) }

// ParseAddrs parses a list of address strings, failing on the first
// malformed entry.
func ParseAddrs(lines []string) ([]Addr, error) {
	out := make([]Addr, 0, len(lines))
	for i, l := range lines {
		a, err := ip6.ParseAddr(l)
		if err != nil {
			return nil, fmt.Errorf("entropyip: address %d: %w", i, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// Analyze trains an Entropy/IP model on the given addresses.
func Analyze(addrs []Addr, opts Options) (*Model, error) { return core.Build(addrs, opts) }

// LoadModel reads a model previously written with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// ReadDataset parses addresses from r, one per line ('#' comments allowed).
func ReadDataset(name string, r io.Reader) (*Dataset, error) { return dataset.Read(name, r) }

// LoadDataset reads a dataset file from disk.
func LoadDataset(path string) (*Dataset, error) { return dataset.LoadFile(path) }

// SyntheticDatasets lists the names of the built-in synthetic dataset
// archetypes that stand in for the paper's real-world datasets
// (S1-S5, R1-R5, C1-C5, AS, AR, AC, AT).
func SyntheticDatasets() []string { return synth.Names() }

// Synthesize generates n unique addresses from the named built-in
// archetype; n <= 0 selects the archetype's default size.
func Synthesize(name string, n int, seed int64) ([]Addr, error) {
	return synth.Generate(name, n, seed)
}

// NewSet returns an empty address set with the given capacity hint.
func NewSet(capacity int) *Set { return ip6.NewSet(capacity) }

// Prefix64 returns the /64 prefix ("subnet") containing the address, the
// unit used when counting newly discovered networks.
func Prefix64(a Addr) Prefix { return ip6.Prefix64(a) }

// Prefix32 re-exports below this line belong to the serving subsystem: the
// versioned model registry and the HTTP API of the eipserved daemon.

// Registry is a named, versioned store of trained models: an in-memory LRU
// of decoded models over a disk directory of Model.Save files. Safe for
// concurrent use.
type Registry = registry.Registry

// ModelInfo describes one stored model version.
type ModelInfo = registry.Info

// RegistryStats is a snapshot of registry cache behaviour.
type RegistryStats = registry.Stats

// ServeOptions configures the HTTP serving layer.
type ServeOptions = serve.Options

// PutModelRequest is the body of PUT /v1/models/{name}: either a
// serialized model upload or an address set to train on.
type PutModelRequest = serve.PutModelRequest

// PutModelResponse acknowledges a stored model version.
type PutModelResponse = serve.PutModelResponse

// ListModelsResponse is the body of GET /v1/models.
type ListModelsResponse = serve.ListModelsResponse

// BrowseRequest is one conditional-probability query against a served
// model — a click state of the paper's browser.
type BrowseRequest = serve.BrowseRequest

// BrowseResponse carries the posterior distribution of every segment.
type BrowseResponse = serve.BrowseResponse

// GenerateRequest asks a served model for candidate addresses or /64
// prefixes, streamed back as NDJSON. Omitting Seed (nil) makes the
// server derive a random one and echo it in the X-Seed response header;
// Workers bounds the request's generation parallelism (capped
// server-side).
type GenerateRequest = serve.GenerateRequest

// GenerateItem is one line of the NDJSON candidate stream.
type GenerateItem = serve.GenerateItem

// HealthResponse is the body of GET /healthz.
type HealthResponse = serve.HealthResponse

// OpenRegistry opens (creating if needed) a model registry rooted at dir,
// keeping up to cacheSize decoded models in memory (<= 0 selects the
// default).
func OpenRegistry(dir string, cacheSize int) (*Registry, error) {
	return registry.Open(dir, cacheSize)
}

// NewServeHandler returns the HTTP handler of the model-serving API over
// the given registry — the handler cmd/eipserved mounts, usable directly
// with net/http or httptest.
func NewServeHandler(reg *Registry, opts ServeOptions) http.Handler {
	return serve.New(reg, opts)
}

// Prefix32 returns the /32 prefix containing the address, the smallest
// block registries allocate to operators.
func Prefix32(a Addr) Prefix { return ip6.Prefix32(a) }

// Re-exports below this line belong to the online ingest + drift
// subsystem: streaming observation buffers, divergence scoring between a
// live address window and a served model, and the automatic refresh loop.

// IngestConfig configures a streaming observation buffer (sliding window,
// per-/64 cap, reservoir sample).
type IngestConfig = ingest.Config

// IngestBuffer is a bounded, concurrent buffer of observed addresses.
type IngestBuffer = ingest.Buffer

// IngestStats is a snapshot of an observation buffer's counters.
type IngestStats = ingest.Stats

// DriftConfig sets drift thresholds and hysteresis for a Detector.
type DriftConfig = drift.Config

// DriftReport is the divergence score of one observation window against
// one model (per-segment Jensen–Shannon/KL plus mean log-likelihood).
type DriftReport = drift.Report

// DriftDetector folds a stream of drift reports into a drifting/healthy
// state with hysteresis.
type DriftDetector = drift.Detector

// DriftVerdict is a detector's judgement of one evaluation.
type DriftVerdict = drift.Verdict

// RefreshOptions configures the serving daemon's observe → score →
// retrain → shadow-evaluate → rotate loop (ServeOptions.Refresh).
type RefreshOptions = serve.RefreshOptions

// DriftStatus is the observable refresh-loop state of one served model
// (the body of GET /v1/models/{name}/drift).
type DriftStatus = serve.DriftStatus

// ObserveResponse is the body of POST /v1/models/{name}/observe.
type ObserveResponse = serve.ObserveResponse

// NewIngestBuffer returns a bounded concurrent observation buffer.
func NewIngestBuffer(cfg IngestConfig) *IngestBuffer { return ingest.New(cfg) }

// DriftScore computes the drift report of a window of observed addresses
// against a model; it is deterministic for a fixed window.
func DriftScore(m *Model, window []Addr) (DriftReport, error) {
	return drift.Score(m, window)
}

// NewDriftDetector returns a detector with the given thresholds.
func NewDriftDetector(cfg DriftConfig) *DriftDetector { return drift.NewDetector(cfg) }
