// Package entropyip is the public facade of the Entropy/IP reproduction:
// a system that discovers the structure of IPv6 address sets by combining
// per-nybble entropy analysis, entropy-based segmentation, per-segment
// value mining and a Bayesian network over segment codes, and that uses the
// resulting model to explore addressing plans and to generate candidate
// targets for active scanning (Foremski, Plonka, Berger — "Entropy/IP:
// Uncovering Structure in IPv6 Addresses", IMC 2016).
//
// The facade re-exports the stable subset of the internal packages through
// type aliases, so that example programs and downstream users interact with
// a single import path:
//
//	addrs, _ := entropyip.ParseAddrs(lines)
//	model, _ := entropyip.Analyze(addrs, entropyip.Options{})
//	dists, _ := model.Browse(nil)
//	cands, _ := model.Generate(entropyip.GenerateOptions{Count: 100000})
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping between packages and the paper's sections.
package entropyip

import (
	"fmt"
	"io"

	"entropyip/internal/core"
	"entropyip/internal/dataset"
	"entropyip/internal/ip6"
	"entropyip/internal/synth"
)

// Addr is a 128-bit IPv6 address.
type Addr = ip6.Addr

// Prefix is a CIDR prefix.
type Prefix = ip6.Prefix

// Set is a collection of unique addresses.
type Set = ip6.Set

// Model is a trained Entropy/IP model.
type Model = core.Model

// Options configures model building; the zero value reproduces the paper's
// configuration.
type Options = core.Options

// GenerateOptions controls candidate generation.
type GenerateOptions = core.GenerateOptions

// Evidence conditions the model on segment values by code, e.g.
// Evidence{"J": "J1"}.
type Evidence = core.Evidence

// SegmentDistribution is one row of the conditional probability browser.
type SegmentDistribution = core.SegmentDistribution

// Dataset is a named collection of unique addresses.
type Dataset = dataset.Dataset

// ParseAddr parses an IPv6 address in any RFC 4291 textual form or the
// fixed-width 32-hex-character form.
func ParseAddr(s string) (Addr, error) { return ip6.ParseAddr(s) }

// MustParseAddr is like ParseAddr but panics on error.
func MustParseAddr(s string) Addr { return ip6.MustParseAddr(s) }

// ParsePrefix parses a prefix in "addr/len" notation.
func ParsePrefix(s string) (Prefix, error) { return ip6.ParsePrefix(s) }

// ParseAddrs parses a list of address strings, failing on the first
// malformed entry.
func ParseAddrs(lines []string) ([]Addr, error) {
	out := make([]Addr, 0, len(lines))
	for i, l := range lines {
		a, err := ip6.ParseAddr(l)
		if err != nil {
			return nil, fmt.Errorf("entropyip: address %d: %w", i, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// Analyze trains an Entropy/IP model on the given addresses.
func Analyze(addrs []Addr, opts Options) (*Model, error) { return core.Build(addrs, opts) }

// LoadModel reads a model previously written with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// ReadDataset parses addresses from r, one per line ('#' comments allowed).
func ReadDataset(name string, r io.Reader) (*Dataset, error) { return dataset.Read(name, r) }

// LoadDataset reads a dataset file from disk.
func LoadDataset(path string) (*Dataset, error) { return dataset.LoadFile(path) }

// SyntheticDatasets lists the names of the built-in synthetic dataset
// archetypes that stand in for the paper's real-world datasets
// (S1-S5, R1-R5, C1-C5, AS, AR, AC, AT).
func SyntheticDatasets() []string { return synth.Names() }

// Synthesize generates n unique addresses from the named built-in
// archetype; n <= 0 selects the archetype's default size.
func Synthesize(name string, n int, seed int64) ([]Addr, error) {
	return synth.Generate(name, n, seed)
}

// NewSet returns an empty address set with the given capacity hint.
func NewSet(capacity int) *Set { return ip6.NewSet(capacity) }

// Prefix64 returns the /64 prefix ("subnet") containing the address, the
// unit used when counting newly discovered networks.
func Prefix64(a Addr) Prefix { return ip6.Prefix64(a) }

// Prefix32 returns the /32 prefix containing the address, the smallest
// block registries allocate to operators.
func Prefix32(a Addr) Prefix { return ip6.Prefix32(a) }
