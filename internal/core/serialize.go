package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"entropyip/internal/bayes"
	"entropyip/internal/entropy"
	"entropyip/internal/mining"
	"entropyip/internal/mra"
	"entropyip/internal/segment"
)

// modelVersion is the on-disk format version written by Save.
const modelVersion = 1

// modelJSON is the serialized form of a Model. Only what is needed to
// reconstruct the model is stored; derived structures (the encoder) are
// rebuilt on load.
type modelJSON struct {
	Version      int       `json:"version"`
	Prefix64Only bool      `json:"prefix64_only"`
	TrainCount   int       `json:"train_count"`
	EntropyH     []float64 `json:"entropy_h"`
	EntropyRaw   []float64 `json:"entropy_raw"`
	// EntropyCounts is the per-nybble value histogram of the training set
	// (32 rows of 16 counts). It is what online drift detection compares
	// live windows against; files written before it existed load with nil
	// counts and drift scoring falls back to code distributions only.
	EntropyCounts [][]int        `json:"entropy_counts,omitempty"`
	ACRCounts     []int          `json:"acr_counts"`
	ACRAddrs      int            `json:"acr_addrs"`
	Segments      []segmentJSON  `json:"segments"`
	Net           *bayes.Network `json:"net"`
	Options       *optionsJSON   `json:"options,omitempty"`
}

// optionsJSON is the serialized form of Options. Every field that changes
// how a model is built is persisted, so that a loaded model reports exactly
// the configuration it was trained with (and retraining from the stored
// options reproduces it). Options.Workers (and bayes.LearnConfig.Workers)
// are deliberately absent: training is bit-deterministic across worker
// counts, so the model does not depend on them and serialized output must
// stay byte-identical whatever parallelism trained it.
type optionsJSON struct {
	Segmentation segmentConfigJSON `json:"segmentation"`
	Mining       miningConfigJSON  `json:"mining"`
	Learn        learnConfigJSON   `json:"learn"`
	Prefix64Only bool              `json:"prefix64_only"`
}

type segmentConfigJSON struct {
	// Thresholds and ForcedBoundaries must NOT use omitempty: nil (use the
	// defaults) and [] (explicitly none) mean different things to
	// segment.Config, and both must survive the round trip.
	Thresholds       []float64 `json:"thresholds"`
	Hysteresis       float64   `json:"hysteresis,omitempty"`
	ForcedBoundaries []int     `json:"forced_boundaries"`
	MaxNybble        int       `json:"max_nybble,omitempty"`
}

type miningConfigJSON struct {
	NominateLimit  int     `json:"nominate_limit,omitempty"`
	StopFraction   float64 `json:"stop_fraction,omitempty"`
	SmallSetLimit  int     `json:"small_set_limit,omitempty"`
	TukeyK         float64 `json:"tukey_k,omitempty"`
	MinRangePoints int     `json:"min_range_points,omitempty"`
}

type learnConfigJSON struct {
	MaxParents           int     `json:"max_parents,omitempty"`
	EquivalentSampleSize float64 `json:"equivalent_sample_size,omitempty"`
	Pseudocount          float64 `json:"pseudocount,omitempty"`
	MaxParentConfigs     int     `json:"max_parent_configs,omitempty"`
	Structure            int     `json:"structure,omitempty"`
	Score                int     `json:"score,omitempty"`
}

func optionsToJSON(o Options) *optionsJSON {
	return &optionsJSON{
		Segmentation: segmentConfigJSON{
			Thresholds:       o.Segmentation.Thresholds,
			Hysteresis:       o.Segmentation.Hysteresis,
			ForcedBoundaries: o.Segmentation.ForcedBoundaries,
			MaxNybble:        o.Segmentation.MaxNybble,
		},
		Mining: miningConfigJSON{
			NominateLimit:  o.Mining.NominateLimit,
			StopFraction:   o.Mining.StopFraction,
			SmallSetLimit:  o.Mining.SmallSetLimit,
			TukeyK:         o.Mining.TukeyK,
			MinRangePoints: o.Mining.MinRangePoints,
		},
		Learn: learnConfigJSON{
			MaxParents:           o.Learn.MaxParents,
			EquivalentSampleSize: o.Learn.EquivalentSampleSize,
			Pseudocount:          o.Learn.Pseudocount,
			MaxParentConfigs:     o.Learn.MaxParentConfigs,
			Structure:            int(o.Learn.Structure),
			Score:                int(o.Learn.Score),
		},
		Prefix64Only: o.Prefix64Only,
	}
}

func (oj *optionsJSON) toOptions() Options {
	return Options{
		Segmentation: segment.Config{
			Thresholds:       oj.Segmentation.Thresholds,
			Hysteresis:       oj.Segmentation.Hysteresis,
			ForcedBoundaries: oj.Segmentation.ForcedBoundaries,
			MaxNybble:        oj.Segmentation.MaxNybble,
		},
		Mining: mining.Config{
			NominateLimit:  oj.Mining.NominateLimit,
			StopFraction:   oj.Mining.StopFraction,
			SmallSetLimit:  oj.Mining.SmallSetLimit,
			TukeyK:         oj.Mining.TukeyK,
			MinRangePoints: oj.Mining.MinRangePoints,
		},
		Learn: bayes.LearnConfig{
			MaxParents:           oj.Learn.MaxParents,
			EquivalentSampleSize: oj.Learn.EquivalentSampleSize,
			Pseudocount:          oj.Learn.Pseudocount,
			MaxParentConfigs:     oj.Learn.MaxParentConfigs,
			Structure:            bayes.Structure(oj.Learn.Structure),
			Score:                bayes.Score(oj.Learn.Score),
		},
		Prefix64Only: oj.Prefix64Only,
	}
}

type segmentJSON struct {
	Label  string      `json:"label"`
	Start  int         `json:"start"`
	Width  int         `json:"width"`
	Total  int         `json:"total"`
	Values []valueJSON `json:"values"`
}

type valueJSON struct {
	Code  string `json:"code"`
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count int    `json:"count"`
	Step  int    `json:"step"`
}

// MarshalJSON implements json.Marshaler.
func (m *Model) MarshalJSON() ([]byte, error) {
	out := modelJSON{
		Version:      modelVersion,
		Prefix64Only: m.Opts.Prefix64Only,
		TrainCount:   m.TrainCount,
		EntropyH:     append([]float64(nil), m.Profile.H[:]...),
		EntropyRaw:   append([]float64(nil), m.Profile.Raw[:]...),
		ACRCounts:    append([]int(nil), m.ACR.Counts[:]...),
		ACRAddrs:     m.ACR.N,
		Net:          m.Net,
		Options:      optionsToJSON(m.Opts),
	}
	out.EntropyCounts = make([][]int, len(m.Profile.Counts))
	for i := range m.Profile.Counts {
		out.EntropyCounts[i] = append([]int(nil), m.Profile.Counts[i][:]...)
	}
	for _, sm := range m.Segments {
		sj := segmentJSON{
			Label: sm.Seg.Label,
			Start: sm.Seg.Start,
			Width: sm.Seg.Width,
			Total: sm.Total,
		}
		for _, v := range sm.Values {
			sj.Values = append(sj.Values, valueJSON{
				Code: v.Code, Lo: v.Lo, Hi: v.Hi, Count: v.Count, Step: int(v.Step),
			})
		}
		out.Segments = append(out.Segments, sj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Model) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Version != modelVersion {
		return fmt.Errorf("core: unsupported model version %d", in.Version)
	}
	if in.Net == nil {
		return fmt.Errorf("core: model has no Bayesian network")
	}
	if len(in.Segments) != in.Net.NumVars() {
		return fmt.Errorf("core: %d segments but %d network variables", len(in.Segments), in.Net.NumVars())
	}

	profile := &entropy.Profile{N: in.TrainCount}
	copy(profile.H[:], in.EntropyH)
	copy(profile.Raw[:], in.EntropyRaw)
	for i, row := range in.EntropyCounts {
		if i >= len(profile.Counts) {
			break
		}
		copy(profile.Counts[i][:], row)
	}

	acr := &mra.Series{N: in.ACRAddrs}
	copy(acr.Counts[:], in.ACRCounts)
	for d := 1; d <= len(acr.ACR); d++ {
		prev, cur := acr.Counts[d-1], acr.Counts[d]
		if cur > 0 && prev > 0 {
			acr.ACR[d-1] = 1 - float64(prev)/float64(cur)
		}
	}

	var segs []segment.Segment
	var models []*mining.SegmentModel
	for _, sj := range in.Segments {
		seg := segment.Segment{Label: sj.Label, Start: sj.Start, Width: sj.Width}
		sm := &mining.SegmentModel{Seg: seg, Total: sj.Total}
		for _, vj := range sj.Values {
			sm.Values = append(sm.Values, mining.Value{
				Code: vj.Code, Lo: vj.Lo, Hi: vj.Hi, Count: vj.Count,
				Step: mining.Step(vj.Step),
				Freq: freqOf(vj.Count, sj.Total),
			})
		}
		segs = append(segs, seg)
		models = append(models, sm)
	}
	sg := &segment.Segmentation{Segments: segs}
	if err := sg.Validate(); err != nil {
		return fmt.Errorf("core: invalid segmentation in model file: %w", err)
	}
	// Renormalize before validating: CPT rows read from JSON carry float
	// drift (every cell was independently rounded on encode), and sampling
	// must never inherit that bias. All-zero rows are rejected here.
	if err := in.Net.Renormalize(); err != nil {
		return fmt.Errorf("core: invalid network in model file: %w", err)
	}
	if err := in.Net.Validate(); err != nil {
		return fmt.Errorf("core: invalid network in model file: %w", err)
	}
	for i, sm := range models {
		if in.Net.Vars[i].Arity != sm.Arity() {
			return fmt.Errorf("core: segment %s arity %d does not match network arity %d",
				sm.Seg.Label, sm.Arity(), in.Net.Vars[i].Arity)
		}
	}

	m.Profile = profile
	m.ACR = acr
	m.Segmentation = sg
	m.Segments = models
	m.Net = in.Net
	if in.Options != nil {
		m.Opts = in.Options.toOptions()
	} else {
		// Model files written before options were persisted carry only the
		// Prefix64Only flag; the remaining options default to zero (the
		// paper's configuration).
		m.Opts = Options{Prefix64Only: in.Prefix64Only}
	}
	m.TrainCount = in.TrainCount
	m.encOnce = sync.Once{}
	m.encoder = nil
	m.margOnce = sync.Once{}
	m.marginals = nil
	m.margErr = nil
	return nil
}

func freqOf(count, total int) float64 {
	if total <= 0 {
		return 0
	}
	return float64(count) / float64(total)
}

// Save writes the model as JSON to w.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(m)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	dec := json.NewDecoder(r)
	var m Model
	if err := dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
