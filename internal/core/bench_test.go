package core

import (
	"fmt"
	"runtime"
	"testing"

	"entropyip/internal/ip6"
	"entropyip/internal/synth"
)

// benchBuildAddrs generates the synthetic S1 population used by the
// CI-gated hot-path benchmarks (see bench_baseline.txt at the repo root).
func benchBuildAddrs(b *testing.B, n int) []ip6.Addr {
	b.Helper()
	addrs, err := synth.Generate("S1", n, 1)
	if err != nil {
		b.Fatal(err)
	}
	return addrs
}

func benchmarkBuild(b *testing.B, n, workers int) {
	addrs := benchBuildAddrs(b, n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := Build(addrs, Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(m.Segments)), "segments")
		}
	}
}

func BenchmarkBuild10k(b *testing.B)  { benchmarkBuild(b, 10_000, 0) }
func BenchmarkBuild100k(b *testing.B) { benchmarkBuild(b, 100_000, 0) }

// BenchmarkEncode100k is the CI-gated encode hot loop: 100k addresses per
// op through the compiled flat-table encoder into a reused vector — the
// path ingest drift scoring and likelihood evaluation run per observation
// window. Steady state must be 0 allocs/op (gated strictly by
// scripts/check_bench.sh); the ≥2x claim over the uncompiled scan is
// measured against BenchmarkEncodeReference100k.
func BenchmarkEncode100k(b *testing.B) {
	addrs := benchBuildAddrs(b, 100_000)
	m := benchGenerateModel(b)
	c := m.Encoder().Compiled()
	vec := make([]int, len(m.Segments))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range addrs {
			c.EncodeInto(vec, a)
		}
	}
}

// BenchmarkEncodeReference100k is the uncompiled per-element scan
// (mining.Encoder.Encode) over the same 100k addresses — the informational
// baseline BenchmarkEncode100k's speedup is quoted against in DESIGN.md.
func BenchmarkEncodeReference100k(b *testing.B) {
	addrs := benchBuildAddrs(b, 100_000)
	m := benchGenerateModel(b)
	enc := m.Encoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range addrs {
			enc.Encode(a)
		}
	}
}

// benchGenerateModel trains the model the generation benchmarks draw
// from: the S1 population at 10k addresses, enough support to emit 100k
// unique candidates.
func benchGenerateModel(b *testing.B) *Model {
	b.Helper()
	m, err := Build(benchBuildAddrs(b, 10_000), Options{})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchmarkGenerate(b *testing.B, n, workers int) {
	m := benchGenerateModel(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := m.Generate(GenerateOptions{Count: n, Seed: int64(i + 1), Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(got) == 0 {
			b.Fatal("no candidates")
		}
	}
}

func BenchmarkGenerate10k(b *testing.B)  { benchmarkGenerate(b, 10_000, 0) }
func BenchmarkGenerate100k(b *testing.B) { benchmarkGenerate(b, 100_000, 0) }

// BenchmarkGenerateWorkers100k is the scaling benchmark behind the PR's
// acceptance criterion: on a multi-core runner, workers=max must show a
// multiple of workers=1's throughput while emitting a byte-identical
// candidate sequence (asserted by the determinism tests). The unordered
// sub-benchmark shows the additional headroom from dropping the ordered
// merge. Compare the sub-benchmarks with benchstat.
func BenchmarkGenerateWorkers100k(b *testing.B) {
	m := benchGenerateModel(b)
	run := func(name string, workers int, unordered bool) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, err := m.Generate(GenerateOptions{
					Count: 100_000, Seed: int64(i + 1),
					Workers: workers, Unordered: unordered,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(got) == 0 {
					b.Fatal("no candidates")
				}
			}
		})
	}
	run("workers=1", 1, false)
	run(fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), 0, false)
	run(fmt.Sprintf("workers=%d/unordered", runtime.GOMAXPROCS(0)), 0, true)
}

// BenchmarkBuildWorkers100k is the scaling benchmark behind the PR's
// acceptance criterion: on a multi-core runner, workers=max must be at
// least ~2x faster than workers=1 while (per the determinism tests)
// producing a byte-identical model. Compare the two sub-benchmarks with
// benchstat.
func BenchmarkBuildWorkers100k(b *testing.B) {
	addrs := benchBuildAddrs(b, 100_000)
	for _, w := range []int{1, 0} {
		name := "workers=1"
		if w == 0 {
			name = fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(addrs, Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
