// Package core implements the Entropy/IP system itself: the end-to-end
// pipeline that ingests a set of active IPv6 addresses, computes per-nybble
// entropy, segments the addresses, mines per-segment value sets, and learns
// a Bayesian network over the segment codes (§4 of the paper). The
// resulting Model supports the paper's two applications: interactive
// exploration through conditional probabilities (the "conditional
// probability browser", Figs. 1, 7, 9, 10 and Table 2) and generation of
// candidate target addresses or /64 prefixes for scanning (§5.5, §5.6).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"entropyip/internal/bayes"
	"entropyip/internal/entropy"
	"entropyip/internal/ip6"
	"entropyip/internal/mining"
	"entropyip/internal/mra"
	"entropyip/internal/parallel"
	"entropyip/internal/segment"
)

// Options configures model building. The zero value reproduces the paper's
// configuration.
type Options struct {
	// Segmentation configures the entropy-threshold segmentation (§4.2).
	Segmentation segment.Config
	// Mining configures per-segment value mining (§4.3).
	Mining mining.Config
	// Learn configures Bayesian-network structure learning and parameter
	// fitting (§4.4).
	Learn bayes.LearnConfig
	// Prefix64Only restricts the model to the top 64 bits of the address
	// (network identifiers), the configuration used for client /64-prefix
	// prediction in §5.6 of the paper.
	Prefix64Only bool
	// Workers bounds the number of goroutines used while training
	// (0 = runtime.GOMAXPROCS). Training is deterministic: the same input
	// yields a bit-identical model — and bit-identical serialized JSON —
	// for every worker count, so Workers is purely an operational knob.
	// It is deliberately NOT persisted in model JSON.
	Workers int
	// OnStage, if non-nil, receives the name and wall-clock duration of
	// each completed pipeline stage (the names in BuildStages, in order).
	// It is called from the goroutine running Build. Like Workers it is an
	// operational knob: excluded from model JSON so serialized models stay
	// byte-identical whether or not a build was traced.
	OnStage func(stage string, d time.Duration) `json:"-"`
}

// BuildStages lists the pipeline stage names Build reports through
// Options.OnStage, in execution order.
var BuildStages = []string{"entropy", "segment", "mine", "compile", "encode", "learn"}

// buildStage reports one completed stage and returns the start of the
// next. With no observer it passes start through untouched — durations
// are then never read, so no clock is consulted.
func buildStage(on func(string, time.Duration), name string, start time.Time) time.Time {
	if on == nil {
		return start
	}
	//eip:nondeterministic-ok stage durations feed only the OnStage observer, never the model
	now := time.Now()
	on(name, now.Sub(start))
	return now
}

// Model is a trained Entropy/IP model.
type Model struct {
	// Profile is the per-nybble entropy profile of the training set.
	Profile *entropy.Profile
	// ACR is the 4-bit aggregate count ratio series of the training set.
	ACR *mra.Series
	// Segmentation is the entropy-derived segmentation.
	Segmentation *segment.Segmentation
	// Segments holds the mined value set of every segment, in order.
	Segments []*mining.SegmentModel
	// Net is the Bayesian network over segment codes.
	Net *bayes.Network
	// Opts records the options the model was built with.
	Opts Options
	// TrainCount is the number of training addresses.
	TrainCount int

	encOnce sync.Once
	encoder *mining.Encoder

	margOnce  sync.Once
	marginals [][]float64
	margErr   error
}

// ErrNoData is returned when a model is built from an empty training set.
var ErrNoData = errors.New("core: no training addresses")

// Build trains an Entropy/IP model on the given addresses.
func Build(addrs []ip6.Addr, opts Options) (*Model, error) {
	if len(addrs) == 0 {
		return nil, ErrNoData
	}
	train := addrs
	segCfg := opts.Segmentation
	if opts.Prefix64Only {
		// Operate on network identifiers: mask the low 64 bits and model
		// only the first 16 nybbles.
		masked := make([]ip6.Addr, 0, len(addrs))
		seen := ip6.NewSet(len(addrs))
		for _, a := range addrs {
			p := ip6.Mask(a, 64)
			if seen.Add(p) {
				masked = append(masked, p)
			}
		}
		train = masked
		if segCfg.MaxNybble == 0 || segCfg.MaxNybble > 16 {
			segCfg.MaxNybble = 16
		}
	}

	// One resolved worker count drives every stage, so Workers=1 is a
	// genuinely sequential build and Workers=N bounds the whole pipeline.
	workers := parallel.Workers(opts.Workers)

	//eip:nondeterministic-ok stopwatch start for the OnStage observer; no timestamp enters the model
	now := time.Now()
	profile := entropy.NewProfileWorkers(train, workers)
	acr := mra.NewWorkers(train, workers)
	now = buildStage(opts.OnStage, "entropy", now)
	sg := segment.Segments(profile, segCfg)
	if err := sg.Validate(); err != nil {
		return nil, fmt.Errorf("core: segmentation: %w", err)
	}
	now = buildStage(opts.OnStage, "segment", now)
	models := mining.MineAllWorkers(train, sg, opts.Mining, workers)
	now = buildStage(opts.OnStage, "mine", now)
	enc := mining.NewEncoder(models)
	now = buildStage(opts.OnStage, "compile", now)

	vars := make([]bayes.Variable, len(models))
	for i, m := range models {
		if m.Arity() == 0 {
			return nil, fmt.Errorf("core: segment %s mined no values", m.Seg.Label)
		}
		vars[i] = bayes.Variable{Name: m.Seg.Label, Arity: m.Arity()}
	}
	data := enc.EncodeAllWorkers(train, workers)
	now = buildStage(opts.OnStage, "encode", now)
	learnCfg := opts.Learn
	if learnCfg.Workers == 0 {
		learnCfg.Workers = workers
	}
	net, err := bayes.Learn(data, vars, learnCfg)
	if err != nil {
		return nil, fmt.Errorf("core: learning Bayesian network: %w", err)
	}
	buildStage(opts.OnStage, "learn", now)

	return &Model{
		Profile:      profile,
		ACR:          acr,
		Segmentation: sg,
		Segments:     models,
		Net:          net,
		Opts:         opts,
		TrainCount:   len(train),
	}, nil
}

// Encoder returns the categorical encoder over the model's mined segments.
// It is safe for concurrent use: a model shared between request handlers
// initializes its encoder exactly once.
func (m *Model) Encoder() *mining.Encoder {
	m.encOnce.Do(func() { m.encoder = mining.NewEncoder(m.Segments) })
	return m.encoder
}

// SegmentByLabel returns the mined model of the segment with the given
// label and its index.
func (m *Model) SegmentByLabel(label string) (int, *mining.SegmentModel, bool) {
	for i, sm := range m.Segments {
		if sm.Seg.Label == label {
			return i, sm, true
		}
	}
	return -1, nil, false
}

// TotalEntropy returns H_S of the training set (Eq. 3 of the paper).
func (m *Model) TotalEntropy() float64 { return m.Profile.Total() }

// Evidence expresses conditioning in terms of segment labels and value
// codes, e.g. {"J": "J1", "B": "B2"} — the mouse clicks of the paper's
// conditional probability browser.
type Evidence map[string]string

// evidenceIndices resolves label/code evidence into variable/category
// indices for the Bayesian network.
func (m *Model) evidenceIndices(ev Evidence) (map[int]int, error) {
	labels := make([]string, 0, len(ev))
	for label := range ev {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	out := make(map[int]int, len(ev))
	for _, label := range labels {
		code := ev[label]
		idx, sm, ok := m.SegmentByLabel(label)
		if !ok {
			return nil, fmt.Errorf("core: unknown segment %q", label)
		}
		found := -1
		for k, v := range sm.Values {
			if v.Code == code {
				found = k
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("core: segment %q has no value code %q", label, code)
		}
		out[idx] = found
	}
	return out, nil
}

// EvidenceFromAddr builds evidence fixing the given segments to the codes
// the address encodes to. Unknown labels cause an error.
func (m *Model) EvidenceFromAddr(a ip6.Addr, labels ...string) (Evidence, error) {
	ev := make(Evidence, len(labels))
	for _, label := range labels {
		_, sm, ok := m.SegmentByLabel(label)
		if !ok {
			return nil, fmt.Errorf("core: unknown segment %q", label)
		}
		idx, ok := sm.Encode(sm.Seg.Value(a))
		if !ok {
			idx, ok = sm.EncodeNearest(sm.Seg.Value(a))
			if !ok {
				return nil, fmt.Errorf("core: segment %q cannot encode %v", label, a)
			}
		}
		ev[label] = sm.Values[idx].Code
	}
	return ev, nil
}

// SegmentDistribution is the posterior distribution of one segment, the row
// of the conditional probability browser.
type SegmentDistribution struct {
	Label string
	// Entries are the segment's mined values with their posterior
	// probabilities, in mined (code) order.
	Entries []DistEntry
}

// DistEntry is one value of a segment with its posterior probability.
type DistEntry struct {
	Code    string
	Display string
	Prob    float64
	IsRange bool
}

// Browse computes the posterior distribution of every segment given the
// evidence: the data behind Figs. 1(b), 1(c), 7(b), 9(b) and 10(b).
func (m *Model) Browse(ev Evidence) ([]SegmentDistribution, error) {
	indices, err := m.evidenceIndices(ev)
	if err != nil {
		return nil, err
	}
	posts, err := m.Net.Posteriors(indices)
	if err != nil {
		return nil, err
	}
	out := make([]SegmentDistribution, len(m.Segments))
	for i, sm := range m.Segments {
		entries := make([]DistEntry, sm.Arity())
		for k, v := range sm.Values {
			entries[k] = DistEntry{
				Code:    v.Code,
				Display: sm.FormatValue(v),
				Prob:    posts[i][k],
				IsRange: !v.IsExact(),
			}
		}
		out[i] = SegmentDistribution{Label: sm.Seg.Label, Entries: entries}
	}
	return out, nil
}

// ConditionalProb returns P(target segment takes the value with the given
// code | evidence), the quantity tabulated in the paper's Table 2.
func (m *Model) ConditionalProb(targetLabel, targetCode string, ev Evidence) (float64, error) {
	tIdx, sm, ok := m.SegmentByLabel(targetLabel)
	if !ok {
		return 0, fmt.Errorf("core: unknown segment %q", targetLabel)
	}
	cIdx := -1
	for k, v := range sm.Values {
		if v.Code == targetCode {
			cIdx = k
			break
		}
	}
	if cIdx < 0 {
		return 0, fmt.Errorf("core: segment %q has no value code %q", targetLabel, targetCode)
	}
	indices, err := m.evidenceIndices(ev)
	if err != nil {
		return 0, err
	}
	dist, err := m.Net.Query(tIdx, indices)
	if err != nil {
		return 0, err
	}
	return dist[cIdx], nil
}

// Dependency is a directed edge of the Bayesian network between two
// segments, annotated with the mutual information between them.
type Dependency struct {
	Parent, Child string
	// MI is the mutual information in bits between the two segments under
	// the model's joint distribution.
	MI float64
}

// Dependencies lists the BN's directed edges (Fig. 2 of the paper), sorted
// by descending mutual information.
func (m *Model) Dependencies() []Dependency {
	var out []Dependency
	for _, e := range m.Net.Edges() {
		mi, err := m.Net.MutualInformation(e[0], e[1], nil)
		if err != nil {
			mi = 0
		}
		out = append(out, Dependency{
			Parent: m.Segments[e[0]].Seg.Label,
			Child:  m.Segments[e[1]].Seg.Label,
			MI:     mi,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MI != out[j].MI {
			return out[i].MI > out[j].MI
		}
		if out[i].Parent != out[j].Parent {
			return out[i].Parent < out[j].Parent
		}
		return out[i].Child < out[j].Child
	})
	return out
}

// DirectInfluences returns the labels of segments that are direct BN
// parents or children of the given segment (the red edges of Fig. 2).
func (m *Model) DirectInfluences(label string) ([]string, error) {
	idx, _, ok := m.SegmentByLabel(label)
	if !ok {
		return nil, fmt.Errorf("core: unknown segment %q", label)
	}
	seen := map[string]bool{}
	var out []string
	for _, e := range m.Net.Edges() {
		var other int
		switch {
		case e[0] == idx:
			other = e[1]
		case e[1] == idx:
			other = e[0]
		default:
			continue
		}
		l := m.Segments[other].Seg.Label
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out, nil
}
