package core

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"entropyip/internal/ip6"
)

// genEvidence picks a valid evidence assignment on the model's last
// segment (the IID segment of the test network, which has multiple
// codes).
func genEvidence(t *testing.T, m *Model) Evidence {
	t.Helper()
	sm := m.Segments[len(m.Segments)-1]
	return Evidence{sm.Seg.Label: sm.Values[0].Code}
}

// TestGenerateDeterministicAcrossWorkers is the acceptance gate for the
// parallel generation engine: in the (default) ordered mode the emitted
// candidate sequence must be byte-identical for every worker count —
// parallelism is purely operational, exactly as it is for training. Run
// under -race in CI, this also exercises the producer/merger protocol.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	m, addrs := buildTestModel(t, 4000, 23, Options{})
	exclude := ip6.NewSet(500)
	exclude.AddAll(addrs[:500])
	cases := []struct {
		name string
		opts GenerateOptions
	}{
		{"plain", GenerateOptions{Count: 1500, Seed: 42}},
		{"exclude", GenerateOptions{Count: 1200, Seed: 7, Exclude: exclude}},
		{"evidence", GenerateOptions{Count: 1100, Seed: 5, Evidence: genEvidence(t, m)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want []ip6.Addr
			for _, workers := range []int{1, 2, 3, 8} {
				opts := tc.opts
				opts.Workers = workers
				got, err := m.Generate(opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if want == nil {
					want = got
					if len(want) == 0 {
						t.Fatal("no candidates generated")
					}
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d candidates, want %d", workers, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: candidate %d differs: %v vs %v", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestGeneratePrefixesDeterministicAcrossWorkers mirrors the address
// test for /64 prefix generation.
func TestGeneratePrefixesDeterministicAcrossWorkers(t *testing.T) {
	m, _ := buildTestModel(t, 3000, 24, Options{})
	var want []ip6.Prefix
	for _, workers := range []int{1, 4} {
		got, err := m.GeneratePrefixes(GenerateOptions{Count: 2000, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d prefixes, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: prefix %d differs: %v vs %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestGenerateUnordered checks the throughput mode keeps every
// correctness property except ordering: requested count, uniqueness,
// exclusion and evidence all hold.
func TestGenerateUnordered(t *testing.T) {
	m, addrs := buildTestModel(t, 4000, 25, Options{})
	exclude := ip6.NewSet(len(addrs))
	exclude.AddAll(addrs)
	got, err := m.Generate(GenerateOptions{
		Count: 1500, Seed: 3, Workers: 8, Unordered: true, Exclude: exclude,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1500 {
		t.Fatalf("generated %d, want 1500", len(got))
	}
	seen := ip6.NewSet(len(got))
	for _, a := range got {
		if !seen.Add(a) {
			t.Fatalf("duplicate candidate %v", a)
		}
		if exclude.Contains(a) {
			t.Fatalf("excluded address %v was generated", a)
		}
	}

	ev := genEvidence(t, m)
	sm := m.Segments[len(m.Segments)-1]
	want := sm.Values[0]
	got, err = m.Generate(GenerateOptions{Count: 1100, Seed: 4, Workers: 4, Unordered: true, Evidence: ev})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if !want.Contains(sm.Seg.Value(a)) {
			t.Fatalf("candidate %v violates evidence %v", a, ev)
		}
	}
}

// TestGenerateUnorderedSmallSupport checks the attempt budget also
// bounds the unordered execution: a nearly-enumerable model must stop
// rather than spin.
func TestGenerateUnorderedSmallSupport(t *testing.T) {
	var addrs []ip6.Addr
	base := ip6.MustParseAddr("2001:db8::")
	for i := 0; i < 8; i++ {
		addrs = append(addrs, base.SetField(31, 1, uint64(i)))
	}
	for i := 0; i < 100; i++ {
		addrs = append(addrs, addrs[i%8])
	}
	m, err := Build(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Generate(GenerateOptions{
		Count: 10000, Seed: 1, MaxAttemptsFactor: 2, Workers: 4, Unordered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= 10000 {
		t.Error("expected fewer unique candidates than requested")
	}
	if len(got) == 0 {
		t.Error("expected at least some candidates")
	}
}

// TestGenerateStopLatencyWithEvidence is the cancellation regression
// test: with evidence set, Stop is polled on every attempt (not every
// stopPollInterval), so a disconnected client halts generation after at
// most a handful of draws — across every execution mode.
func TestGenerateStopLatencyWithEvidence(t *testing.T) {
	m, _ := buildTestModel(t, 3000, 26, Options{})
	ev := genEvidence(t, m)
	for _, workers := range []int{1, 4} {
		for _, unordered := range []bool{false, true} {
			var emitted atomic.Int64
			var stopped atomic.Bool
			stopped.Store(true)
			start := time.Now()
			err := m.GenerateStream(GenerateOptions{
				Count:     1 << 20,
				Seed:      1,
				Evidence:  ev,
				Workers:   workers,
				Unordered: unordered,
				Stop:      func() bool { return stopped.Load() },
			}, func(ip6.Addr) bool {
				emitted.Add(1)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if n := emitted.Load(); n != 0 {
				t.Errorf("workers=%d unordered=%v: emitted %d candidates after Stop, want 0", workers, unordered, n)
			}
			if d := time.Since(start); d > 5*time.Second {
				t.Errorf("workers=%d unordered=%v: generation took %v to notice Stop", workers, unordered, d)
			}
		}
	}
}

// TestGenerateStopMidStreamWithEvidence flips Stop while candidates are
// flowing: per-attempt polling means at most one further candidate can
// be emitted after Stop becomes true.
func TestGenerateStopMidStreamWithEvidence(t *testing.T) {
	m, _ := buildTestModel(t, 3000, 27, Options{})
	var stopped atomic.Bool
	var emitted int
	err := m.GenerateStream(GenerateOptions{
		Count:    1 << 20,
		Seed:     2,
		Evidence: genEvidence(t, m),
		Workers:  4,
		Stop:     func() bool { return stopped.Load() },
	}, func(ip6.Addr) bool {
		emitted++
		if emitted == 50 {
			stopped.Store(true)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted > 51 {
		t.Errorf("emitted %d candidates, want <= 51 (per-attempt Stop polling)", emitted)
	}
}

// TestLoadRenormalizesDriftedRows pins the load-time healing: a model
// file whose CPT rows drifted (e.g. written by a truncating tool) loads
// with exactly-normalized rows instead of being rejected or sampling
// biased.
func TestLoadRenormalizesDriftedRows(t *testing.T) {
	m, _ := buildTestModel(t, 2000, 28, Options{})
	// Simulate a truncating writer: scale a row so it sums to ~0.9994.
	row := m.Net.CPTs[len(m.Net.CPTs)-1].Rows[0]
	for k := range row {
		row[k] *= 0.9994
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("drifted model failed to load: %v", err)
	}
	for i, cpt := range loaded.Net.CPTs {
		for j, row := range cpt.Rows {
			sum := 0.0
			for _, v := range row {
				sum += v
			}
			if diff := sum - 1; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("node %d row %d sums to %v after load", i, j, sum)
			}
		}
	}
}
