package core

import (
	"math"
	"math/rand"
	"testing"

	"entropyip/internal/ip6"
	"entropyip/internal/synth"
)

// refEncodeWindow is the pre-compiled-encoder EncodeWindow, kept verbatim
// as the reference: the rewiring onto mining.CompiledEncoder must produce
// bit-identical vectors, counts AND likelihood terms (the acceptance
// criterion that drift scores and shadow evaluations cannot move).
func refEncodeWindow(m *Model, addrs []ip6.Addr) *WindowEncoding {
	w := &WindowEncoding{
		Vecs:       make([][]int, 0, len(addrs)),
		CodeCounts: make([][]int, len(m.Segments)),
		Clamped:    make([]int, len(m.Segments)),
	}
	for i, sm := range m.Segments {
		w.CodeCounts[i] = make([]int, sm.Arity())
	}
	for _, a := range addrs {
		vec := make([]int, len(m.Segments))
		for i, sm := range m.Segments {
			value := sm.Seg.Value(a)
			idx, ok := sm.Encode(value)
			if ok {
				w.WithinLogDensity -= math.Log(float64(sm.Values[idx].Width()))
			} else {
				w.Clamped[i]++
				w.WithinLogDensity += outOfSupportLogProb(sm.Seg.Width)
				if idx, ok = sm.EncodeNearest(value); !ok {
					idx = 0
				}
			}
			vec[i] = idx
			w.CodeCounts[i][idx]++
		}
		w.Vecs = append(w.Vecs, vec)
	}
	return w
}

func TestEncodeWindowMatchesReference(t *testing.T) {
	addrs, err := synth.Generate("S1", 4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(addrs[:1000], Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Window: in-distribution addresses plus out-of-support ones (random
	// and shifted), so both the covered and the clamped paths execute.
	window := append([]ip6.Addr{}, addrs[1000:3000]...)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		var a ip6.Addr
		rng.Read(a[:])
		window = append(window, a)
	}

	got := m.EncodeWindow(window)
	want := refEncodeWindow(m, window)

	if len(got.Vecs) != len(want.Vecs) {
		t.Fatalf("Vecs len %d != %d", len(got.Vecs), len(want.Vecs))
	}
	for i := range want.Vecs {
		for k := range want.Vecs[i] {
			if got.Vecs[i][k] != want.Vecs[i][k] {
				t.Fatalf("Vecs[%d][%d] = %d, reference %d", i, k, got.Vecs[i][k], want.Vecs[i][k])
			}
		}
	}
	for i := range want.CodeCounts {
		if got.Clamped[i] != want.Clamped[i] {
			t.Fatalf("Clamped[%d] = %d, reference %d", i, got.Clamped[i], want.Clamped[i])
		}
		for k := range want.CodeCounts[i] {
			if got.CodeCounts[i][k] != want.CodeCounts[i][k] {
				t.Fatalf("CodeCounts[%d][%d] = %d, reference %d", i, k, got.CodeCounts[i][k], want.CodeCounts[i][k])
			}
		}
	}
	// Bit-identical, not approximately equal: the same math.Log inputs
	// accumulate in the same order.
	if got.WithinLogDensity != want.WithinLogDensity {
		t.Fatalf("WithinLogDensity = %v, reference %v", got.WithinLogDensity, want.WithinLogDensity)
	}
	if gll, wll := got.LogLikelihood(m), want.LogLikelihood(m); gll != wll {
		t.Fatalf("LogLikelihood = %v, reference %v", gll, wll)
	}
}
