package core

import (
	"testing"

	"entropyip/internal/ip6"
)

// TestGenerateStreamMatchesGenerate checks the streaming generator emits
// exactly the sequence the batch API returns for the same seed.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	m, _ := buildTestModel(t, 3000, 11, Options{})
	opts := GenerateOptions{Count: 500, Seed: 99}
	batch, err := m.Generate(opts)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []ip6.Addr
	if err := m.GenerateStream(opts, func(a ip6.Addr) bool {
		streamed = append(streamed, a)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("stream emitted %d candidates, batch returned %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i] != batch[i] {
			t.Fatalf("candidate %d differs: %v vs %v", i, streamed[i], batch[i])
		}
	}
}

// TestGenerateStreamEarlyStop checks yield returning false halts generation.
func TestGenerateStreamEarlyStop(t *testing.T) {
	m, _ := buildTestModel(t, 3000, 11, Options{})
	n := 0
	err := m.GenerateStream(GenerateOptions{Count: 500, Seed: 1}, func(ip6.Addr) bool {
		n++
		return n < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("expected exactly 10 yields before stop, got %d", n)
	}
}

// TestGenerateStreamStop checks the Stop hook halts generation even when
// nothing is being yielded (the disconnected-client path).
func TestGenerateStreamStop(t *testing.T) {
	m, _ := buildTestModel(t, 3000, 11, Options{})
	n := 0
	err := m.GenerateStream(GenerateOptions{
		Count: 1 << 20,
		Seed:  1,
		Stop:  func() bool { return true },
	}, func(ip6.Addr) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stop is polled every stopPollInterval draws, so at most that many
	// candidates can be emitted before the halt is noticed.
	if n > stopPollInterval {
		t.Errorf("emitted %d candidates after Stop, want <= %d", n, stopPollInterval)
	}
}

// TestGeneratePrefixesStreamMatchesBatch mirrors the address test for /64s.
func TestGeneratePrefixesStreamMatchesBatch(t *testing.T) {
	m, _ := buildTestModel(t, 3000, 11, Options{})
	opts := GenerateOptions{Count: 200, Seed: 5}
	batch, err := m.GeneratePrefixes(opts)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []ip6.Prefix
	if err := m.GeneratePrefixesStream(opts, func(p ip6.Prefix) bool {
		streamed = append(streamed, p)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("stream emitted %d prefixes, batch returned %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i] != batch[i] {
			t.Fatalf("prefix %d differs: %v vs %v", i, streamed[i], batch[i])
		}
	}
}
