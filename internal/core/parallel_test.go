package core

import (
	"bytes"
	"testing"

	"entropyip/internal/synth"
)

// TestBuildDeterministicAcrossWorkers is the acceptance gate for the
// parallel training pipeline: for the same input, Workers=1 and Workers=8
// (and the GOMAXPROCS default) must produce byte-identical serialized
// models — same segmentation, same mined values, same BN structure, same
// CPT bits — and identical generation output follows, since generation is
// seeded and reads only the model.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	for _, ds := range []string{"S1", "C1"} {
		addrs, err := synth.Generate(ds, 4000, 1)
		if err != nil {
			t.Fatal(err)
		}
		var want []byte
		for _, workers := range []int{1, 8, 0} {
			m, err := Build(addrs, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", ds, workers, err)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = buf.Bytes()
				continue
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s workers=%d: serialized model differs from Workers=1 build", ds, workers)
			}
		}
	}
}

// TestBuildWorkersGenerationIdentical double-checks the downstream claim
// directly: candidates generated from models trained with different worker
// counts are identical for the same generation seed.
func TestBuildWorkersGenerationIdentical(t *testing.T) {
	addrs, err := synth.Generate("R1", 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Build(addrs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m8, err := Build(addrs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := m1.Generate(GenerateOptions{Count: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g8, err := m8.Generate(GenerateOptions{Count: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != len(g8) {
		t.Fatalf("generated %d vs %d candidates", len(g1), len(g8))
	}
	for i := range g1 {
		if g1[i] != g8[i] {
			t.Fatalf("candidate %d differs: %v vs %v", i, g1[i], g8[i])
		}
	}
}

// TestOptionsWorkersNotPersisted pins the serialization contract: Workers
// must not appear in model JSON, so the same training data produces the
// same document whatever parallelism built it, and loaded models always
// default to all cores.
func TestOptionsWorkersNotPersisted(t *testing.T) {
	addrs, err := synth.Generate("S1", 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(addrs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("workers")) {
		t.Fatal("serialized model mentions workers")
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Opts.Workers != 0 {
		t.Fatalf("loaded Workers = %d, want 0", loaded.Opts.Workers)
	}
}
