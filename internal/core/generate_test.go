package core

import (
	"bytes"
	"math"
	"testing"

	"entropyip/internal/ip6"
)

func TestGenerateBasics(t *testing.T) {
	m, addrs := buildTestModel(t, 4000, 10, Options{})
	got, err := m.Generate(GenerateOptions{Count: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("generated %d, want 500", len(got))
	}
	// Unique.
	set := ip6.NewSet(len(got))
	for _, a := range got {
		if !set.Add(a) {
			t.Fatalf("duplicate candidate %v", a)
		}
	}
	// All candidates stay within the training /32 (segment A is constant).
	p32 := ip6.MustParsePrefix("2001:db8::/32")
	for _, a := range got {
		if !p32.Contains(a) {
			t.Errorf("candidate %v escapes the /32", a)
		}
	}
	// Deterministic for a fixed seed.
	again, err := m.Generate(GenerateOptions{Count: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatal("generation is not deterministic for a fixed seed")
		}
	}
	// Different seed differs (overwhelmingly likely).
	other, _ := m.Generate(GenerateOptions{Count: 500, Seed: 43})
	same := 0
	for i := range got {
		if got[i] == other[i] {
			same++
		}
	}
	if same == len(got) {
		t.Error("different seeds should produce different candidates")
	}
	_ = addrs
}

func TestGenerateErrors(t *testing.T) {
	m, _ := buildTestModel(t, 1000, 11, Options{})
	if _, err := m.Generate(GenerateOptions{Count: 0}); err == nil {
		t.Error("expected error for zero count")
	}
	if _, err := m.Generate(GenerateOptions{Count: 10, Evidence: Evidence{"ZZ": "Z1"}}); err == nil {
		t.Error("expected error for unknown evidence")
	}
	if _, err := m.GeneratePrefixes(GenerateOptions{Count: 0}); err == nil {
		t.Error("expected error for zero count")
	}
	if _, err := m.GeneratePrefixes(GenerateOptions{Count: 10, Evidence: Evidence{"ZZ": "Z1"}}); err == nil {
		t.Error("expected error for unknown evidence")
	}
}

func TestGenerateExcludesTraining(t *testing.T) {
	m, addrs := buildTestModel(t, 2000, 12, Options{})
	exclude := ip6.NewSet(len(addrs))
	exclude.AddAll(addrs)
	got, err := m.Generate(GenerateOptions{Count: 300, Seed: 7, Exclude: exclude})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if exclude.Contains(a) {
			t.Fatalf("excluded address %v was generated", a)
		}
	}
}

func TestGenerateWithEvidence(t *testing.T) {
	m, _ := buildTestModel(t, 4000, 13, Options{})
	last := m.Segments[len(m.Segments)-1]
	var code string
	var want uint64
	for _, v := range last.Values {
		if v.IsExact() {
			code = v.Code
			want = v.Lo
			break
		}
	}
	if code == "" {
		t.Skip("no exact value in the last segment")
	}
	got, err := m.Generate(GenerateOptions{Count: 200, Seed: 3, Evidence: Evidence{last.Seg.Label: code}})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if last.Seg.Value(a) != want {
			t.Fatalf("candidate %v violates evidence %s=%s", a, last.Seg.Label, code)
		}
	}
}

func TestGenerateSmallSupportStopsEarly(t *testing.T) {
	// A network with very few possible addresses: the generator cannot make
	// 10000 unique candidates and must stop at the attempt bound rather
	// than hang.
	var addrs []ip6.Addr
	base := ip6.MustParseAddr("2001:db8::")
	for i := 0; i < 8; i++ {
		addrs = append(addrs, base.SetField(31, 1, uint64(i)))
	}
	for i := 0; i < 100; i++ {
		addrs = append(addrs, addrs[i%8])
	}
	m, err := Build(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Generate(GenerateOptions{Count: 10000, Seed: 1, MaxAttemptsFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= 10000 {
		t.Error("expected fewer unique candidates than requested")
	}
	if len(got) == 0 {
		t.Error("expected at least some candidates")
	}
}

func TestGeneratePrefixes(t *testing.T) {
	m, addrs := buildTestModel(t, 3000, 14, Options{})
	prefs, err := m.GeneratePrefixes(GenerateOptions{Count: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(prefs) == 0 {
		t.Fatal("no prefixes generated")
	}
	seen := ip6.NewPrefixSet(len(prefs))
	for _, p := range prefs {
		if p.Bits() != 64 {
			t.Fatalf("prefix %v is not a /64", p)
		}
		if !seen.Add(p) {
			t.Fatalf("duplicate prefix %v", p)
		}
	}
	// Excluding the training /64s works.
	exclude := ip6.NewSet(len(addrs))
	exclude.AddAll(addrs)
	trainPrefixes := exclude.Prefixes(64)
	prefs, err = m.GeneratePrefixes(GenerateOptions{Count: 200, Seed: 6, Exclude: exclude})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prefs {
		if trainPrefixes.Contains(p) {
			t.Fatalf("excluded /64 %v was generated", p)
		}
	}
}

func TestPrefix64OnlyModel(t *testing.T) {
	addrs := testNetwork(3000, 15)
	m, err := Build(addrs, Options{Prefix64Only: true})
	if err != nil {
		t.Fatal(err)
	}
	// All segments are within the first 16 nybbles.
	for _, sm := range m.Segments {
		if sm.Seg.End() > 16 {
			t.Errorf("segment %v extends past /64 in a Prefix64Only model", sm.Seg)
		}
	}
	// Generated addresses have a zero interface identifier.
	got, err := m.Generate(GenerateOptions{Count: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range got {
		if a.Field(16, 16) != 0 {
			t.Errorf("candidate %v has a non-zero IID in a Prefix64Only model", a)
		}
	}
	prefs, err := m.GeneratePrefixes(GenerateOptions{Count: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(prefs) == 0 {
		t.Error("no prefixes generated")
	}
	// Training on duplicates per /64 deduplicates: TrainCount is the number
	// of distinct /64s, not addresses.
	if m.TrainCount >= len(addrs) {
		t.Errorf("TrainCount = %d, want fewer than %d distinct /64s", m.TrainCount, len(addrs))
	}
}

func TestGenerateHitsHeldOutAddresses(t *testing.T) {
	// The headline behaviour of the paper (§5.5): trained on a small sample
	// of a structured network, the model should regenerate a meaningful
	// fraction of the held-out addresses. Our patterned variant (zero
	// middle, last byte 01, small subnet space) is guessable; the random
	// variant is not.
	addrs := testNetwork(30000, 16)
	train := addrs[:1000]
	test := ip6.NewSet(len(addrs))
	test.AddAll(addrs[1000:])
	m, err := Build(train, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exclude := ip6.NewSet(len(train))
	exclude.AddAll(train)
	cands, err := m.Generate(GenerateOptions{Count: 20000, Seed: 9, Exclude: exclude})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, a := range cands {
		if test.Contains(a) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("expected the model to rediscover at least some held-out addresses")
	}
	t.Logf("hit %d of %d candidates (%.2f%%)", hits, len(cands), 100*float64(hits)/float64(len(cands)))
}

func TestLearnedDependencyBetweenSubnetAndIID(t *testing.T) {
	// The training network couples the subnet selector (nybble 9) with the
	// IID style: subnets 0-3 hold ::1/::2 hosts, subnets 4-7 hold random
	// IIDs. The trained model must reflect that: P(IID = ::1-code) is much
	// higher given a patterned subnet than given a random-IID subnet.
	m, _ := buildTestModel(t, 4000, 17, Options{})
	iid := m.Segments[len(m.Segments)-1]
	var code1 string
	for _, v := range iid.Values {
		if v.IsExact() && v.Lo == 1 {
			code1 = v.Code
		}
	}
	if code1 == "" {
		t.Fatalf("::1 not mined: %+v", iid.Values)
	}
	selSeg, ok := m.Segmentation.At(9)
	if !ok {
		t.Fatal("no segment covers nybble 9")
	}
	patterned := ip6.MustParseAddr("2001:db8::").SetField(8, 2, 1)
	random := ip6.MustParseAddr("2001:db8::").SetField(8, 2, 6)
	evLow, err := m.EvidenceFromAddr(patterned, selSeg.Label)
	if err != nil {
		t.Fatal(err)
	}
	evHigh, err := m.EvidenceFromAddr(random, selSeg.Label)
	if err != nil {
		t.Fatal(err)
	}
	pLow, err := m.ConditionalProb(iid.Seg.Label, code1, evLow)
	if err != nil {
		t.Fatal(err)
	}
	pHigh, err := m.ConditionalProb(iid.Seg.Label, code1, evHigh)
	if err != nil {
		t.Fatal(err)
	}
	if pLow < 5*pHigh {
		t.Errorf("P(IID=::1 | patterned subnet) = %v should greatly exceed %v (random-IID subnet)", pLow, pHigh)
	}
	// LogLikelihood sanity: finite and negative on training data.
	ll := m.LogLikelihood(testNetwork(100, 18))
	if !(ll < 0) || math.IsInf(ll, 0) || math.IsNaN(ll) {
		t.Errorf("LogLikelihood = %v", ll)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, addrs := buildTestModel(t, 3000, 19, Options{})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TrainCount != m.TrainCount {
		t.Errorf("TrainCount = %d, want %d", loaded.TrainCount, m.TrainCount)
	}
	if len(loaded.Segments) != len(m.Segments) {
		t.Fatalf("segments = %d, want %d", len(loaded.Segments), len(m.Segments))
	}
	// Conditional probabilities agree.
	pOrig, err := m.ConditionalProb("A", "A1", nil)
	if err != nil {
		t.Fatal(err)
	}
	pLoaded, err := loaded.ConditionalProb("A", "A1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pOrig-pLoaded) > 1e-12 {
		t.Errorf("conditional probability changed after round trip: %v vs %v", pOrig, pLoaded)
	}
	// Generation with the same seed produces the same candidates.
	a1, err := m.Generate(GenerateOptions{Count: 200, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := loaded.Generate(GenerateOptions{Count: 200, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatalf("lengths differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("loaded model generates differently")
		}
	}
	// Entropy profile preserved.
	for i := range m.Profile.H {
		if math.Abs(m.Profile.H[i]-loaded.Profile.H[i]) > 1e-12 {
			t.Fatal("entropy profile changed after round trip")
		}
	}
	_ = addrs
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := Load(bytes.NewBufferString(`{"version": 99}`)); err == nil {
		t.Error("unknown version should fail")
	}
	if _, err := Load(bytes.NewBufferString(`{"version": 1}`)); err == nil {
		t.Error("missing network should fail")
	}
}

func BenchmarkBuild1K(b *testing.B) {
	addrs := testNetwork(1000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(addrs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerate1K(b *testing.B) {
	addrs := testNetwork(1000, 21)
	m, err := Build(addrs, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Generate(GenerateOptions{Count: 1000, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAddressLogLikelihoodOrdering pins the invariants the drift/shadow
// machinery depends on: in-distribution addresses score better than
// out-of-support ones — even when the model mines very wide ranges whose
// within-range density is itself low — and the mean form is per-address.
func TestAddressLogLikelihoodOrdering(t *testing.T) {
	// testNetwork mines a pseudo-random 64-bit-wide IID segment (width 16
	// nybbles), the widest range the format allows, so a constant floor
	// below its density would invert the comparison this test pins.
	m, addrs := buildTestModel(t, 4000, 1, Options{})
	inDist := addrs[:500]

	// Same structure, different /32: every segment value covering the
	// prefix falls outside the mined support.
	shifted := make([]ip6.Addr, len(inDist))
	for i, a := range inDist {
		shifted[i] = a.SetField(0, 8, 0x20020000)
	}

	inLL := m.MeanAddressLogLikelihood(inDist)
	outLL := m.MeanAddressLogLikelihood(shifted)
	if inLL >= 0 {
		t.Errorf("in-distribution mean LL = %v, want negative", inLL)
	}
	if outLL >= inLL {
		t.Errorf("out-of-support mean LL %v not below in-distribution %v", outLL, inLL)
	}

	// Mean form is total/len, zero on empty.
	if got := m.MeanAddressLogLikelihood(nil); got != 0 {
		t.Errorf("empty mean LL = %v", got)
	}
	total := m.AddressLogLikelihood(inDist)
	if diff := total/float64(len(inDist)) - inLL; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean %v != total/len %v", inLL, total/float64(len(inDist)))
	}

	// The single-pass window encoding agrees with the one-shot form.
	enc := m.EncodeWindow(inDist)
	if got := enc.LogLikelihood(m); got != total {
		t.Errorf("EncodeWindow LL %v != AddressLogLikelihood %v", got, total)
	}
	counted := 0
	for _, row := range enc.CodeCounts[0] {
		counted += row
	}
	if counted != len(inDist) {
		t.Errorf("segment 0 code counts sum to %d, want %d", counted, len(inDist))
	}
}
