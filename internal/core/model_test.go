package core

import (
	"math"
	"math/rand"
	"testing"

	"entropyip/internal/ip6"
)

// testNetwork synthesizes a structured address population reminiscent of
// the networks in the paper: one /32, a subnet part, and two addressing
// variants whose choice is visible in the subnet bits — subnets 0-3 hold
// point-to-point style hosts (zero IID ending in 1 or 2, as in the paper's
// R1/R2), subnets 4-7 hold hosts with pseudo-random IIDs. The cross-segment
// coupling between the subnet selector and the IID is what the Bayesian
// network is expected to discover.
func testNetwork(n int, seed int64) []ip6.Addr {
	rng := rand.New(rand.NewSource(seed))
	base := ip6.MustParseAddr("2001:db8::")
	out := make([]ip6.Addr, n)
	for i := range out {
		a := base
		patterned := rng.Float64() < 0.5
		if patterned {
			a = a.SetField(8, 2, uint64(rng.Intn(4))) // subnet selector 0-3
		} else {
			a = a.SetField(8, 2, 4+uint64(rng.Intn(4))) // subnet selector 4-7
		}
		a = a.SetField(10, 6, uint64(rng.Intn(400))) // finer subnet bits
		if patterned {
			a = a.SetField(16, 15, 0)
			a = a.SetField(31, 1, 1+uint64(rng.Intn(2))) // IID ::1 or ::2
		} else {
			a = a.SetField(16, 16, rng.Uint64()) // pseudo-random IID
		}
		out[i] = a
	}
	return out
}

func buildTestModel(t *testing.T, n int, seed int64, opts Options) (*Model, []ip6.Addr) {
	t.Helper()
	addrs := testNetwork(n, seed)
	m, err := Build(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, addrs
}

func TestBuildBasicInvariants(t *testing.T) {
	m, addrs := buildTestModel(t, 4000, 1, Options{})
	if m.TrainCount != len(addrs) {
		t.Errorf("TrainCount = %d", m.TrainCount)
	}
	if err := m.Segmentation.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) != len(m.Segmentation.Segments) {
		t.Error("segment model count mismatch")
	}
	if got := m.Net.NumVars(); got != len(m.Segments) {
		t.Errorf("network vars = %d, segments = %d", got, len(m.Segments))
	}
	if m.TotalEntropy() <= 0 {
		t.Error("total entropy should be positive")
	}
	// The constant /32 prefix must be a zero-entropy segment A covering
	// exactly bits 0-32 with a single mined value.
	segA := m.Segments[0]
	if segA.Seg.Label != "A" || segA.Seg.StartBit() != 0 || segA.Seg.EndBit() != 32 {
		t.Errorf("segment A = %v", segA.Seg)
	}
	if segA.Arity() != 1 || segA.Values[0].Lo != 0x20010db8 {
		t.Errorf("segment A values = %+v", segA.Values)
	}
}

func TestBuildEmptyErrors(t *testing.T) {
	if _, err := Build(nil, Options{}); err != ErrNoData {
		t.Errorf("expected ErrNoData, got %v", err)
	}
}

func TestSegmentByLabel(t *testing.T) {
	m, _ := buildTestModel(t, 1000, 2, Options{})
	i, sm, ok := m.SegmentByLabel("A")
	if !ok || i != 0 || sm.Seg.Label != "A" {
		t.Error("SegmentByLabel(A) failed")
	}
	if _, _, ok := m.SegmentByLabel("ZZ"); ok {
		t.Error("unknown label should not be found")
	}
}

func TestBrowseAndConditioning(t *testing.T) {
	m, _ := buildTestModel(t, 6000, 3, Options{})
	// Unconditioned browse: distributions sum to 1.
	dists, err := m.Browse(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != len(m.Segments) {
		t.Fatalf("distributions = %d", len(dists))
	}
	for _, d := range dists {
		sum := 0.0
		for _, e := range d.Entries {
			if e.Prob < 0 || e.Prob > 1+1e-9 {
				t.Errorf("probability out of range: %+v", e)
			}
			sum += e.Prob
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("segment %s posterior sums to %v", d.Label, sum)
		}
		if len(d.Entries) == 0 {
			t.Errorf("segment %s has no entries", d.Label)
		}
	}
	// Find the IID segment's exact value 1 (the ::1 point-to-point hosts);
	// conditioning on it should shift the subnet-selector segment toward
	// the patterned subnets 0-3.
	last := m.Segments[len(m.Segments)-1]
	var code string
	for _, v := range last.Values {
		if v.IsExact() && v.Lo == 0x01 {
			code = v.Code
		}
	}
	if code == "" {
		t.Fatalf("the ::1 IID was not mined as an exact value: %+v", last.Values)
	}
	cond, err := m.Browse(Evidence{last.Seg.Label: code})
	if err != nil {
		t.Fatal(err)
	}
	// The conditioned browse must differ from the unconditioned one
	// somewhere upstream (evidential reasoning flows backwards).
	changed := false
	for i := range dists {
		for k := range dists[i].Entries {
			if math.Abs(dists[i].Entries[k].Prob-cond[i].Entries[k].Prob) > 0.05 {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("conditioning on the last segment should change upstream distributions")
	}
}

func TestConditionalProb(t *testing.T) {
	m, _ := buildTestModel(t, 5000, 4, Options{})
	// P(A = A1) must be 1: single /32.
	p, err := m.ConditionalProb("A", "A1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.999 {
		t.Errorf("P(A=A1) = %v, want ~1", p)
	}
	// Errors.
	if _, err := m.ConditionalProb("ZZ", "Z1", nil); err == nil {
		t.Error("unknown target segment should error")
	}
	if _, err := m.ConditionalProb("A", "A9", nil); err == nil {
		t.Error("unknown target code should error")
	}
	if _, err := m.ConditionalProb("A", "A1", Evidence{"Q": "Q1"}); err == nil {
		t.Error("unknown evidence segment should error")
	}
	if _, err := m.ConditionalProb("A", "A1", Evidence{"A": "A7"}); err == nil {
		t.Error("unknown evidence code should error")
	}
}

func TestEvidenceFromAddr(t *testing.T) {
	m, addrs := buildTestModel(t, 2000, 5, Options{})
	ev, err := m.EvidenceFromAddr(addrs[0], "A")
	if err != nil {
		t.Fatal(err)
	}
	if ev["A"] != "A1" {
		t.Errorf("evidence = %v", ev)
	}
	if _, err := m.EvidenceFromAddr(addrs[0], "NOPE"); err == nil {
		t.Error("unknown label should error")
	}
}

func TestDependenciesAndInfluences(t *testing.T) {
	m, _ := buildTestModel(t, 6000, 6, Options{})
	deps := m.Dependencies()
	if len(deps) == 0 {
		t.Fatal("expected at least one BN dependency in the patterned network")
	}
	for i := 1; i < len(deps); i++ {
		if deps[i].MI > deps[i-1].MI+1e-9 {
			t.Error("dependencies not sorted by MI")
		}
	}
	for _, d := range deps {
		if d.Parent == "" || d.Child == "" {
			t.Error("dependency with empty label")
		}
		if d.MI < -1e-9 {
			t.Errorf("negative MI: %+v", d)
		}
	}
	// DirectInfluences of a segment that appears in some edge.
	lbl := deps[0].Child
	inf, err := m.DirectInfluences(lbl)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range inf {
		if l == deps[0].Parent {
			found = true
		}
	}
	if !found {
		t.Errorf("DirectInfluences(%s) = %v should contain %s", lbl, inf, deps[0].Parent)
	}
	if _, err := m.DirectInfluences("ZZ"); err == nil {
		t.Error("unknown label should error")
	}
}

func TestModelOnUniformRandomAddresses(t *testing.T) {
	// A model built on totally random addresses must still be valid: high
	// entropy everywhere, few (range-only) mined values, no crash.
	rng := rand.New(rand.NewSource(7))
	addrs := make([]ip6.Addr, 2000)
	for i := range addrs {
		var b [16]byte
		rng.Read(b[:])
		addrs[i] = ip6.AddrFrom16(b)
	}
	m, err := Build(addrs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalEntropy() < 25 {
		t.Errorf("total entropy = %v, want close to 32", m.TotalEntropy())
	}
	if _, err := m.Generate(GenerateOptions{Count: 100, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}
