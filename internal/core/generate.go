package core

import (
	"fmt"
	"math"
	"math/rand"

	"entropyip/internal/ip6"
)

// GenerateOptions controls candidate generation.
type GenerateOptions struct {
	// Count is the number of candidates to generate (the paper uses 1M).
	Count int
	// Seed seeds the generator's randomness; generation is deterministic
	// for a fixed model, seed and options.
	Seed int64
	// Evidence optionally constrains generation to particular segment
	// values (e.g. only addresses within one mined /32 code).
	Evidence Evidence
	// Exclude is an optional set of addresses never to emit (typically the
	// training set, so that all candidates are "new").
	Exclude *ip6.Set
	// MaxAttemptsFactor bounds the work spent looking for unique, non-
	// excluded candidates: generation stops after Count×MaxAttemptsFactor
	// draws even if fewer than Count unique candidates were found.
	// Zero means the default of 20.
	MaxAttemptsFactor int
	// Stop, if non-nil, is polled periodically (including during runs of
	// duplicate or excluded draws that emit nothing); generation halts
	// when it returns true. Servers use it to abandon work for
	// disconnected clients.
	Stop func() bool
}

// stopPollInterval is how many draws pass between Stop polls.
const stopPollInterval = 1024

func (o GenerateOptions) maxAttempts() int {
	f := o.MaxAttemptsFactor
	if f <= 0 {
		f = 20
	}
	n := o.Count * f
	if n/f != o.Count { // overflow: effectively unbounded attempts
		return math.MaxInt
	}
	return n
}

// setCapacity bounds the dedup set's initial allocation: the set still
// grows to Count entries when generation gets that far, but a huge
// requested Count no longer pre-allocates hundreds of megabytes up front.
func setCapacity(count int) int {
	const max = 1 << 20
	if count > max {
		return max
	}
	return count
}

// GenerateStream draws unique candidate IPv6 addresses from the model's
// joint distribution (§5.5 of the paper) and hands each one to yield as
// soon as it is produced, without accumulating them. Generation stops when
// Count candidates have been emitted, the attempt budget is exhausted, or
// yield returns false. Memory use is bounded by the deduplication set (16
// bytes per emitted candidate), not by the candidates themselves, which
// makes it suitable for streaming very large candidate lists over a
// network connection.
//
// The candidate sequence is identical to Generate's for the same model,
// seed and options.
func (m *Model) GenerateStream(opts GenerateOptions, yield func(ip6.Addr) bool) error {
	if opts.Count <= 0 {
		return fmt.Errorf("core: GenerateStream needs a positive Count")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	enc := m.Encoder()

	evidence, err := m.evidenceIndices(opts.Evidence)
	if err != nil {
		return err
	}

	emitted := 0
	seen := ip6.NewSet(setCapacity(opts.Count))
	attempts := 0
	maxAttempts := opts.maxAttempts()
	for emitted < opts.Count && attempts < maxAttempts {
		attempts++
		if opts.Stop != nil && attempts%stopPollInterval == 0 && opts.Stop() {
			return nil
		}
		var vec []int
		if len(evidence) == 0 {
			vec = m.Net.Sample(rng)
		} else {
			vec, err = m.Net.SampleConditional(rng, evidence)
			if err != nil {
				return err
			}
		}
		addr, err := enc.Decode(vec, rng)
		if err != nil {
			return err
		}
		if m.Opts.Prefix64Only {
			addr = ip6.Mask(addr, 64)
		}
		if opts.Exclude != nil && opts.Exclude.Contains(addr) {
			continue
		}
		if seen.Add(addr) {
			emitted++
			if !yield(addr) {
				return nil
			}
		}
	}
	return nil
}

// Generate produces unique candidate IPv6 addresses drawn from the model's
// joint distribution (§5.5 of the paper). Candidates present in
// opts.Exclude are skipped. The number returned may be smaller than
// requested when the model's support is too small (e.g. a network whose
// addresses are nearly enumerable).
func (m *Model) Generate(opts GenerateOptions) ([]ip6.Addr, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("core: Generate needs a positive Count")
	}
	out := make([]ip6.Addr, 0, opts.Count)
	err := m.GenerateStream(opts, func(a ip6.Addr) bool {
		out = append(out, a)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GeneratePrefixesStream draws unique candidate /64 prefixes (§5.6 of the
// paper) and hands each one to yield as soon as it is produced. It works
// for both full models and Prefix64Only models: full models have their
// generated addresses truncated to /64 before deduplication. Stops under
// the same conditions as GenerateStream.
func (m *Model) GeneratePrefixesStream(opts GenerateOptions, yield func(ip6.Prefix) bool) error {
	if opts.Count <= 0 {
		return fmt.Errorf("core: GeneratePrefixesStream needs a positive Count")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	enc := m.Encoder()
	evidence, err := m.evidenceIndices(opts.Evidence)
	if err != nil {
		return err
	}
	emitted := 0
	seen := ip6.NewPrefixSet(setCapacity(opts.Count))
	var excludePrefixes *ip6.PrefixSet
	if opts.Exclude != nil {
		excludePrefixes = opts.Exclude.Prefixes(64)
	}
	attempts := 0
	maxAttempts := opts.maxAttempts()
	for emitted < opts.Count && attempts < maxAttempts {
		attempts++
		if opts.Stop != nil && attempts%stopPollInterval == 0 && opts.Stop() {
			return nil
		}
		var vec []int
		if len(evidence) == 0 {
			vec = m.Net.Sample(rng)
		} else {
			vec, err = m.Net.SampleConditional(rng, evidence)
			if err != nil {
				return err
			}
		}
		addr, err := enc.Decode(vec, rng)
		if err != nil {
			return err
		}
		p := ip6.Prefix64(addr)
		if excludePrefixes != nil && excludePrefixes.Contains(p) {
			continue
		}
		if seen.Add(p) {
			emitted++
			if !yield(p) {
				return nil
			}
		}
	}
	return nil
}

// GeneratePrefixes produces unique candidate /64 prefixes (§5.6 of the
// paper). It works for both full models and Prefix64Only models: full
// models have their generated addresses truncated to /64 before dedup.
func (m *Model) GeneratePrefixes(opts GenerateOptions) ([]ip6.Prefix, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("core: GeneratePrefixes needs a positive Count")
	}
	out := make([]ip6.Prefix, 0, opts.Count)
	err := m.GeneratePrefixesStream(opts, func(p ip6.Prefix) bool {
		out = append(out, p)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LogLikelihood returns the model's total log-likelihood of the given
// addresses under the BN over segment codes (addresses outside the mined
// value sets are clamped to the nearest code, as in Encoder.Encode).
func (m *Model) LogLikelihood(addrs []ip6.Addr) float64 {
	enc := m.Encoder()
	data := enc.EncodeAll(addrs)
	return m.Net.LogLikelihood(data)
}

// outOfSupportPenalty is the extra log-probability (nats) charged, on top
// of the segment's domain-wide uniform density, for a value outside every
// mined element. LogLikelihood's clamped encoding assigns such values the
// nearest code's full probability, which makes a stale model look like a
// good fit for traffic it cannot generate; the floor makes staleness
// visible instead.
var outOfSupportPenalty = math.Log(1e-12)

// outOfSupportLogProb is the log-density charged for an out-of-support
// value of a segment covering `width` nybbles: the uniform density over
// the segment's whole 16^width domain minus a fixed penalty. Anchoring at
// the domain size (not a constant) keeps the ordering invariant that
// matters for shadow evaluation: an out-of-support value always scores
// strictly worse than a value inside ANY mined element, however wide —
// with a constant floor, a range wider than the constant would score
// below "cannot generate this at all" and invert the staleness signal.
func outOfSupportLogProb(width int) float64 {
	return -float64(4*width)*math.Ln2 + outOfSupportPenalty
}

// WindowEncoding is the shared per-window encoding summary behind drift
// scoring and address-level likelihood, produced in one pass over the
// addresses.
type WindowEncoding struct {
	// Vecs is each address's categorical vector (out-of-support values
	// clamped to the nearest code, as in Encoder.Encode).
	Vecs [][]int
	// CodeCounts[i][k] is how many addresses took code k of segment i.
	CodeCounts [][]int
	// Clamped[i] is how many addresses had a value outside segment i's
	// mined elements.
	Clamped []int
	// WithinLogDensity is the accumulated within-value log-density
	// (nats): 0 per exact value, -log w per range of width w, and the
	// out-of-support floor per clamped value.
	WithinLogDensity float64
}

// EncodeWindow encodes a window of addresses once, collecting everything
// drift scoring and AddressLogLikelihood need.
func (m *Model) EncodeWindow(addrs []ip6.Addr) *WindowEncoding {
	w := &WindowEncoding{
		Vecs:       make([][]int, 0, len(addrs)),
		CodeCounts: make([][]int, len(m.Segments)),
		Clamped:    make([]int, len(m.Segments)),
	}
	for i, sm := range m.Segments {
		w.CodeCounts[i] = make([]int, sm.Arity())
	}
	for _, a := range addrs {
		vec := make([]int, len(m.Segments))
		for i, sm := range m.Segments {
			value := sm.Seg.Value(a)
			idx, ok := sm.Encode(value)
			if ok {
				w.WithinLogDensity -= math.Log(float64(sm.Values[idx].Width()))
			} else {
				w.Clamped[i]++
				w.WithinLogDensity += outOfSupportLogProb(sm.Seg.Width)
				if idx, ok = sm.EncodeNearest(value); !ok {
					idx = 0 // unreachable: mined segments have arity >= 1
				}
			}
			vec[i] = idx
			w.CodeCounts[i][idx]++
		}
		w.Vecs = append(w.Vecs, vec)
	}
	return w
}

// LogLikelihood returns the BN-plus-within-density log-likelihood (nats)
// of the encoded window.
func (w *WindowEncoding) LogLikelihood(m *Model) float64 {
	return m.Net.LogLikelihood(w.Vecs) + w.WithinLogDensity
}

// AddressLogLikelihood returns the total log-likelihood (nats) of the
// addresses at address level: the BN likelihood of each address's segment
// codes, plus the within-value density of the concrete value inside each
// mined element (exact values contribute log 1 = 0, a range of width w
// contributes -log w — the uniform density Generate actually samples
// from), with out-of-support values charged the outOfSupportLogProb floor
// instead of being silently clamped.
//
// Unlike LogLikelihood, this is comparable across models with different
// mined value sets, which is what shadow evaluation needs when judging a
// retrained candidate against the model it would replace.
func (m *Model) AddressLogLikelihood(addrs []ip6.Addr) float64 {
	return m.EncodeWindow(addrs).LogLikelihood(m)
}

// MeanAddressLogLikelihood is AddressLogLikelihood per address — the
// size-independent fit score drift detection reports and shadow
// evaluation compares across model versions. It returns 0 for an empty
// slice.
func (m *Model) MeanAddressLogLikelihood(addrs []ip6.Addr) float64 {
	if len(addrs) == 0 {
		return 0
	}
	return m.AddressLogLikelihood(addrs) / float64(len(addrs))
}

// Marginals returns the unconditional distribution of every segment under
// the Bayesian network, in segment order — the model's own belief about
// how often each mined value code occurs, against which live observation
// windows are compared for drift. The distributions are constant for a
// model, so the variable-elimination pass runs once and is cached (drift
// evaluation calls this on the ingest request path, like Encoder); the
// result must be treated as read-only.
func (m *Model) Marginals() ([][]float64, error) {
	m.margOnce.Do(func() { m.marginals, m.margErr = m.Net.Posteriors(nil) })
	return m.marginals, m.margErr
}
