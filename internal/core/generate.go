package core

import (
	"fmt"
	"math/rand"

	"entropyip/internal/ip6"
)

// GenerateOptions controls candidate generation.
type GenerateOptions struct {
	// Count is the number of candidates to generate (the paper uses 1M).
	Count int
	// Seed seeds the generator's randomness; generation is deterministic
	// for a fixed model, seed and options.
	Seed int64
	// Evidence optionally constrains generation to particular segment
	// values (e.g. only addresses within one mined /32 code).
	Evidence Evidence
	// Exclude is an optional set of addresses never to emit (typically the
	// training set, so that all candidates are "new").
	Exclude *ip6.Set
	// MaxAttemptsFactor bounds the work spent looking for unique, non-
	// excluded candidates: generation stops after Count×MaxAttemptsFactor
	// draws even if fewer than Count unique candidates were found.
	// Zero means the default of 20.
	MaxAttemptsFactor int
}

func (o GenerateOptions) maxAttempts() int {
	f := o.MaxAttemptsFactor
	if f <= 0 {
		f = 20
	}
	return o.Count * f
}

// Generate produces unique candidate IPv6 addresses drawn from the model's
// joint distribution (§5.5 of the paper). Candidates present in
// opts.Exclude are skipped. The number returned may be smaller than
// requested when the model's support is too small (e.g. a network whose
// addresses are nearly enumerable).
func (m *Model) Generate(opts GenerateOptions) ([]ip6.Addr, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("core: Generate needs a positive Count")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	enc := m.Encoder()

	evidence, err := m.evidenceIndices(opts.Evidence)
	if err != nil {
		return nil, err
	}

	out := make([]ip6.Addr, 0, opts.Count)
	seen := ip6.NewSet(opts.Count)
	attempts := 0
	maxAttempts := opts.maxAttempts()
	for len(out) < opts.Count && attempts < maxAttempts {
		attempts++
		var vec []int
		if len(evidence) == 0 {
			vec = m.Net.Sample(rng)
		} else {
			vec, err = m.Net.SampleConditional(rng, evidence)
			if err != nil {
				return nil, err
			}
		}
		addr, err := enc.Decode(vec, rng)
		if err != nil {
			return nil, err
		}
		if m.Opts.Prefix64Only {
			addr = ip6.Mask(addr, 64)
		}
		if opts.Exclude != nil && opts.Exclude.Contains(addr) {
			continue
		}
		if seen.Add(addr) {
			out = append(out, addr)
		}
	}
	return out, nil
}

// GeneratePrefixes produces unique candidate /64 prefixes (§5.6 of the
// paper). It works for both full models and Prefix64Only models: full
// models have their generated addresses truncated to /64 before dedup.
func (m *Model) GeneratePrefixes(opts GenerateOptions) ([]ip6.Prefix, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("core: GeneratePrefixes needs a positive Count")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	enc := m.Encoder()
	evidence, err := m.evidenceIndices(opts.Evidence)
	if err != nil {
		return nil, err
	}
	out := make([]ip6.Prefix, 0, opts.Count)
	seen := ip6.NewPrefixSet(opts.Count)
	var excludePrefixes *ip6.PrefixSet
	if opts.Exclude != nil {
		excludePrefixes = opts.Exclude.Prefixes(64)
	}
	attempts := 0
	maxAttempts := opts.maxAttempts()
	for len(out) < opts.Count && attempts < maxAttempts {
		attempts++
		var vec []int
		if len(evidence) == 0 {
			vec = m.Net.Sample(rng)
		} else {
			vec, err = m.Net.SampleConditional(rng, evidence)
			if err != nil {
				return nil, err
			}
		}
		addr, err := enc.Decode(vec, rng)
		if err != nil {
			return nil, err
		}
		p := ip6.Prefix64(addr)
		if excludePrefixes != nil && excludePrefixes.Contains(p) {
			continue
		}
		if seen.Add(p) {
			out = append(out, p)
		}
	}
	return out, nil
}

// LogLikelihood returns the model's total log-likelihood of the given
// addresses under the BN over segment codes (addresses outside the mined
// value sets are clamped to the nearest code, as in Encoder.Encode).
func (m *Model) LogLikelihood(addrs []ip6.Addr) float64 {
	enc := m.Encoder()
	data := enc.EncodeAll(addrs)
	return m.Net.LogLikelihood(data)
}
