package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"entropyip/internal/ip6"
	"entropyip/internal/parallel"
	"entropyip/internal/stats"
)

// GenerateOptions controls candidate generation.
type GenerateOptions struct {
	// Count is the number of candidates to generate (the paper uses 1M).
	Count int
	// Seed seeds the generator's randomness; generation is deterministic
	// for a fixed model, seed and options (see Unordered for the one
	// exception).
	Seed int64
	// Evidence optionally constrains generation to particular segment
	// values (e.g. only addresses within one mined /32 code).
	Evidence Evidence
	// Exclude is an optional set of addresses never to emit (typically the
	// training set, so that all candidates are "new").
	Exclude *ip6.Set
	// MaxAttemptsFactor bounds the work spent looking for unique, non-
	// excluded candidates: generation stops after Count×MaxAttemptsFactor
	// draws even if fewer than Count unique candidates were found.
	// Zero means the default of 20.
	MaxAttemptsFactor int
	// Stop, if non-nil, is polled periodically (including during runs of
	// duplicate or excluded draws that emit nothing); generation halts
	// when it returns true. Servers use it to abandon work for
	// disconnected clients. With evidence set it is polled on every
	// attempt, without evidence every stopPollInterval draws. It must be
	// safe for concurrent use when Workers != 1.
	Stop func() bool
	// Workers bounds the number of goroutines drawing candidates
	// (0 = GOMAXPROCS, 1 = fully sequential). The candidate sequence is
	// identical for every worker count unless Unordered is set: draws
	// come from a fixed number of logical substreams that are merged in
	// a worker-independent round-robin order.
	Workers int
	// Unordered trades the deterministic candidate order for throughput:
	// workers emit candidates as soon as they are drawn instead of
	// waiting for the ordered merge. The candidate SET for a fixed seed
	// is still drawn from the same distribution, but order and (under
	// races between duplicate draws) membership may vary run to run.
	Unordered bool
}

// stopPollInterval is how many draws pass between Stop polls when no
// evidence is set (evidence makes each attempt expensive enough that
// Stop is polled on every one).
const stopPollInterval = 1024

// genSubstreams is the fixed number of logical generator substreams. It
// is a constant — not the worker count — so that the ordered candidate
// sequence depends only on the model, seed and options, never on how
// many workers happened to run: substream i draws from
// stats.Split(seed, i), and the merged sequence interleaves substreams
// round-robin per attempt.
const genSubstreams = 64

// MaxGenerateWorkers is the largest worker count the engine can put to
// use: one per logical substream. Larger requested values behave
// identically, so callers exposing the knob (the serve API) cap at this.
const MaxGenerateWorkers = genSubstreams

// genParallelCutoff is the Count below which generation always runs
// sequentially: the parallel setup (one producer goroutine per
// substream, each eagerly filling batches) costs more draws than a
// small request needs. The emitted candidates are identical either way.
const genParallelCutoff = 1024

func (o GenerateOptions) maxAttempts() int {
	f := o.MaxAttemptsFactor
	if f <= 0 {
		f = 20
	}
	n := o.Count * f
	if n/f != o.Count { // overflow: effectively unbounded attempts
		return math.MaxInt
	}
	return n
}

// setCapacity bounds the dedup set's initial allocation: the set still
// grows to Count entries when generation gets that far, but a huge
// requested Count no longer pre-allocates hundreds of megabytes up front.
func setCapacity(count int) int {
	const max = 1 << 20
	if count > max {
		return max
	}
	return count
}

// drawFunc draws one candidate address using a stream-local rng and
// assignment buffer. Implementations are safe for concurrent use as long
// as each goroutine owns its rng and buf.
type drawFunc func(rng *rand.Rand, buf []int) (ip6.Addr, error)

// newDraw compiles the model into a draw function: an unconditional
// forward sampler, or — when evidence is set — a conditional sampler
// whose variable-elimination work runs once here instead of once per
// variable per draw. mask64 truncates drawn addresses to their /64.
func (m *Model) newDraw(evidence map[int]int, mask64 bool) (drawFunc, error) {
	enc := m.Encoder()
	if len(evidence) == 0 {
		s := m.Net.NewSampler()
		return func(rng *rand.Rand, buf []int) (ip6.Addr, error) {
			a, err := enc.Decode(s.SampleInto(rng, buf), rng)
			if err == nil && mask64 {
				a = ip6.Mask(a, 64)
			}
			return a, err
		}, nil
	}
	cs, err := m.Net.NewCondSampler(evidence)
	if err != nil {
		return nil, err
	}
	return func(rng *rand.Rand, buf []int) (ip6.Addr, error) {
		a, err := enc.Decode(cs.SampleInto(rng, buf), rng)
		if err == nil && mask64 {
			a = ip6.Mask(a, 64)
		}
		return a, err
	}, nil
}

// genRun is one generation run: the compiled draw function plus the
// limits and sinks shared by the sequential, ordered-parallel and
// unordered-parallel executions.
type genRun struct {
	count          int
	maxAttempts    int
	stop           func() bool
	perAttemptStop bool
	draw           drawFunc
	excluded       func(ip6.Addr) bool
	yield          func(ip6.Addr) bool
	seed           int64
	workers        int
	bufLen         int
}

// generate is the engine shared by address and prefix generation: yield
// receives unique, non-excluded candidate addresses (masked to /64 when
// mask64 is set) until Count candidates were emitted, the attempt budget
// is exhausted, Stop reports true, or yield returns false.
func (m *Model) generate(opts GenerateOptions, mask64 bool, excluded func(ip6.Addr) bool, yield func(ip6.Addr) bool) error {
	evidence, err := m.evidenceIndices(opts.Evidence)
	if err != nil {
		return err
	}
	draw, err := m.newDraw(evidence, mask64)
	if err != nil {
		return err
	}
	r := &genRun{
		count:       opts.Count,
		maxAttempts: opts.maxAttempts(),
		stop:        opts.Stop,
		// With evidence every attempt is comparatively expensive, and a
		// disconnected client must not keep cores pinned: poll per
		// attempt instead of per stopPollInterval.
		perAttemptStop: len(evidence) > 0,
		draw:           draw,
		excluded:       excluded,
		yield:          yield,
		seed:           opts.Seed,
		workers:        parallel.Workers(opts.Workers),
		bufLen:         m.Net.NumVars(),
	}
	if r.workers > genSubstreams {
		r.workers = genSubstreams
	}
	switch {
	case r.workers <= 1 || r.count < genParallelCutoff:
		return r.runSequential()
	case opts.Unordered:
		return r.runUnordered()
	default:
		return r.runOrdered()
	}
}

// pollStop reports whether generation should halt at this attempt.
func (r *genRun) pollStop(attempts int) bool {
	if r.stop == nil {
		return false
	}
	if r.perAttemptStop || attempts%stopPollInterval == 0 {
		return r.stop()
	}
	return false
}

// runSequential is the single-goroutine execution; it defines the
// canonical candidate order the ordered-parallel execution reproduces:
// attempt k consumes the next draw of substream k % genSubstreams.
func (r *genRun) runSequential() error {
	rngs := make([]*rand.Rand, genSubstreams)
	bufs := make([][]int, genSubstreams)
	flat := make([]int, genSubstreams*r.bufLen)
	for i := range rngs {
		rngs[i] = stats.Split(r.seed, int64(i))
		bufs[i] = flat[i*r.bufLen : (i+1)*r.bufLen]
	}
	seen := ip6.NewSet(setCapacity(r.count))
	emitted, attempts := 0, 0
	for emitted < r.count && attempts < r.maxAttempts {
		s := attempts % genSubstreams
		attempts++
		if r.pollStop(attempts) {
			return nil
		}
		a, err := r.draw(rngs[s], bufs[s])
		if err != nil {
			return err
		}
		if r.excluded(a) {
			continue
		}
		if seen.Add(a) {
			emitted++
			if !r.yield(a) {
				return nil
			}
		}
	}
	return nil
}

// drawBatch is a run of consecutive draws of one substream, in draw
// order. err terminates the substream after the accumulated draws.
type drawBatch struct {
	addrs []ip6.Addr
	err   error
}

// batchSize picks how many draws producers hand over at once: large
// enough to amortize channel traffic on big requests, small enough that
// tiny requests do not overdraw by much.
func (r *genRun) batchSize() int {
	b := r.count / (2 * genSubstreams)
	if b < 16 {
		b = 16
	}
	if b > 512 {
		b = 512
	}
	return b
}

// runOrdered is the deterministic parallel execution: every substream
// produces its draws concurrently (at most workers of them computing at
// a time), and the consuming goroutine merges them in the same
// round-robin order runSequential uses, applying dedup, exclusion, the
// attempt budget and Stop on the merged sequence — so the emitted
// candidates are byte-identical to the sequential ones.
func (r *genRun) runOrdered() error {
	done := make(chan struct{})
	defer close(done)
	sem := make(chan struct{}, r.workers)
	chans := make([]chan drawBatch, genSubstreams)
	batch := r.batchSize()
	for i := range chans {
		chans[i] = make(chan drawBatch, 2)
		go r.produce(i, chans[i], sem, done, batch)
	}
	seen := ip6.NewSet(setCapacity(r.count))
	var cur [genSubstreams]drawBatch
	var idx [genSubstreams]int
	emitted, attempts := 0, 0
	for emitted < r.count && attempts < r.maxAttempts {
		s := attempts % genSubstreams
		attempts++
		if r.pollStop(attempts) {
			return nil
		}
		if idx[s] == len(cur[s].addrs) {
			if err := cur[s].err; err != nil {
				return err
			}
			cur[s] = <-chans[s]
			idx[s] = 0
			if len(cur[s].addrs) == 0 {
				if cur[s].err != nil {
					return cur[s].err
				}
				continue // defensive: empty errorless batch
			}
		}
		a := cur[s].addrs[idx[s]]
		idx[s]++
		if r.excluded(a) {
			continue
		}
		if seen.Add(a) {
			emitted++
			if !r.yield(a) {
				return nil
			}
		}
	}
	return nil
}

// produce draws batches for one substream until done closes. The
// semaphore bounds how many substreams compute simultaneously (the
// Workers option); while blocked on a full output buffer a producer
// holds no semaphore slot.
func (r *genRun) produce(stream int, out chan<- drawBatch, sem chan struct{}, done <-chan struct{}, batch int) {
	rng := stats.Split(r.seed, int64(stream))
	buf := make([]int, r.bufLen)
	for {
		select {
		case sem <- struct{}{}:
		case <-done:
			return
		}
		b := drawBatch{addrs: make([]ip6.Addr, 0, batch)}
		for len(b.addrs) < batch {
			if r.perAttemptStop {
				// Expensive draws: notice cancellation mid-batch instead
				// of finishing it.
				select {
				case <-done:
					<-sem
					return
				default:
				}
			}
			a, err := r.draw(rng, buf)
			if err != nil {
				b.err = err
				break
			}
			b.addrs = append(b.addrs, a)
		}
		<-sem
		select {
		case out <- b:
		case <-done:
			return
		}
		if b.err != nil {
			return
		}
	}
}

// dedupShards is the number of independently locked dedup sets the
// unordered execution hashes candidates across. Power of two.
const dedupShards = 64

// shardedSet is an address set sharded by hash so concurrent workers
// rarely contend on the same lock.
type shardedSet struct {
	shards [dedupShards]struct {
		mu  sync.Mutex
		set *ip6.Set
		_   [40]byte // keep neighboring locks off one cache line
	}
}

func newShardedSet(count int) *shardedSet {
	s := &shardedSet{}
	per := setCapacity(count)/dedupShards + 1
	for i := range s.shards {
		s.shards[i].set = ip6.NewSet(per)
	}
	return s
}

// add inserts the address and reports whether it was not already present.
func (s *shardedSet) add(a ip6.Addr) bool {
	hi, lo := a.Uint64s()
	// SplitMix64-style finalizer over the address words.
	z := hi ^ (lo * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z ^= z >> 31
	sh := &s.shards[z&(dedupShards-1)]
	sh.mu.Lock()
	fresh := sh.set.Add(a)
	sh.mu.Unlock()
	return fresh
}

// runUnordered is the throughput-first parallel execution: each worker
// owns one substream and emits candidates as soon as they clear the
// sharded dedup set, with a shared atomic attempt budget. The consuming
// goroutine only forwards to yield, so candidate order depends on
// scheduling.
func (r *genRun) runUnordered() error {
	done := make(chan struct{})
	var once sync.Once
	finish := func() { once.Do(func() { close(done) }) }
	defer finish()

	out := make(chan ip6.Addr, 64*r.workers)
	errc := make(chan error, r.workers)
	var attempts atomic.Int64
	seen := newShardedSet(r.count)
	var wg sync.WaitGroup
	for w := 0; w < r.workers; w++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			rng := stats.Split(r.seed, int64(stream))
			buf := make([]int, r.bufLen)
			for n := 1; ; n++ {
				if attempts.Add(1) > int64(r.maxAttempts) {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				if r.stop != nil && (r.perAttemptStop || n%stopPollInterval == 0) && r.stop() {
					finish()
					return
				}
				a, err := r.draw(rng, buf)
				if err != nil {
					errc <- err
					finish()
					return
				}
				if r.excluded(a) || !seen.add(a) {
					continue
				}
				select {
				case out <- a:
				case <-done:
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	emitted := 0
	for a := range out {
		emitted++
		ok := r.yield(a)
		if !ok || emitted == r.count {
			finish()
			break
		}
	}
	if emitted < r.count {
		select {
		case err := <-errc:
			return err
		default:
		}
	}
	return nil
}

// GenerateStream draws unique candidate IPv6 addresses from the model's
// joint distribution (§5.5 of the paper) and hands each one to yield as
// soon as it is produced, without accumulating them. Generation stops when
// Count candidates have been emitted, the attempt budget is exhausted, or
// yield returns false. Memory use is bounded by the deduplication set (16
// bytes per emitted candidate) plus a constant number of in-flight draw
// batches, which makes it suitable for streaming very large candidate
// lists over a network connection.
//
// The candidate sequence is identical to Generate's for the same model,
// seed and options, and — unless Unordered is set — identical for every
// Workers value.
func (m *Model) GenerateStream(opts GenerateOptions, yield func(ip6.Addr) bool) error {
	if opts.Count <= 0 {
		return fmt.Errorf("core: GenerateStream needs a positive Count")
	}
	excluded := func(ip6.Addr) bool { return false }
	if opts.Exclude != nil {
		excluded = opts.Exclude.Contains
	}
	return m.generate(opts, m.Opts.Prefix64Only, excluded, yield)
}

// Generate produces unique candidate IPv6 addresses drawn from the model's
// joint distribution (§5.5 of the paper). Candidates present in
// opts.Exclude are skipped. The number returned may be smaller than
// requested when the model's support is too small (e.g. a network whose
// addresses are nearly enumerable).
func (m *Model) Generate(opts GenerateOptions) ([]ip6.Addr, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("core: Generate needs a positive Count")
	}
	out := make([]ip6.Addr, 0, opts.Count)
	err := m.GenerateStream(opts, func(a ip6.Addr) bool {
		out = append(out, a)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GeneratePrefixesStream draws unique candidate /64 prefixes (§5.6 of the
// paper) and hands each one to yield as soon as it is produced. It works
// for both full models and Prefix64Only models: full models have their
// generated addresses truncated to /64 before deduplication. Stops under
// the same conditions as GenerateStream and shares its engine: drawn
// addresses are masked to their /64 and deduplicated as addresses, which
// is equivalent to deduplicating the /64 prefixes themselves.
func (m *Model) GeneratePrefixesStream(opts GenerateOptions, yield func(ip6.Prefix) bool) error {
	if opts.Count <= 0 {
		return fmt.Errorf("core: GeneratePrefixesStream needs a positive Count")
	}
	excluded := func(ip6.Addr) bool { return false }
	if opts.Exclude != nil {
		ex := opts.Exclude.Prefixes(64)
		excluded = func(a ip6.Addr) bool { return ex.Contains(ip6.Prefix64(a)) }
	}
	return m.generate(opts, true, excluded, func(a ip6.Addr) bool {
		return yield(ip6.Prefix64(a))
	})
}

// GeneratePrefixes produces unique candidate /64 prefixes (§5.6 of the
// paper). It works for both full models and Prefix64Only models: full
// models have their generated addresses truncated to /64 before dedup.
func (m *Model) GeneratePrefixes(opts GenerateOptions) ([]ip6.Prefix, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("core: GeneratePrefixes needs a positive Count")
	}
	out := make([]ip6.Prefix, 0, opts.Count)
	err := m.GeneratePrefixesStream(opts, func(p ip6.Prefix) bool {
		out = append(out, p)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LogLikelihood returns the model's total log-likelihood of the given
// addresses under the BN over segment codes (addresses outside the mined
// value sets are clamped to the nearest code, as in Encoder.Encode).
func (m *Model) LogLikelihood(addrs []ip6.Addr) float64 {
	enc := m.Encoder()
	data := enc.EncodeAll(addrs)
	return m.Net.LogLikelihood(data)
}

// outOfSupportPenalty is the extra log-probability (nats) charged, on top
// of the segment's domain-wide uniform density, for a value outside every
// mined element. LogLikelihood's clamped encoding assigns such values the
// nearest code's full probability, which makes a stale model look like a
// good fit for traffic it cannot generate; the floor makes staleness
// visible instead.
var outOfSupportPenalty = math.Log(1e-12)

// outOfSupportLogProb is the log-density charged for an out-of-support
// value of a segment covering `width` nybbles: the uniform density over
// the segment's whole 16^width domain minus a fixed penalty. Anchoring at
// the domain size (not a constant) keeps the ordering invariant that
// matters for shadow evaluation: an out-of-support value always scores
// strictly worse than a value inside ANY mined element, however wide —
// with a constant floor, a range wider than the constant would score
// below "cannot generate this at all" and invert the staleness signal.
func outOfSupportLogProb(width int) float64 {
	return -float64(4*width)*math.Ln2 + outOfSupportPenalty
}

// WindowEncoding is the shared per-window encoding summary behind drift
// scoring and address-level likelihood, produced in one pass over the
// addresses.
type WindowEncoding struct {
	// Vecs is each address's categorical vector (out-of-support values
	// clamped to the nearest code, as in Encoder.Encode).
	Vecs [][]int
	// CodeCounts[i][k] is how many addresses took code k of segment i.
	CodeCounts [][]int
	// Clamped[i] is how many addresses had a value outside segment i's
	// mined elements.
	Clamped []int
	// WithinLogDensity is the accumulated within-value log-density
	// (nats): 0 per exact value, -log w per range of width w, and the
	// out-of-support floor per clamped value.
	WithinLogDensity float64
}

// EncodeWindow encodes a window of addresses once, collecting everything
// drift scoring and AddressLogLikelihood need. It runs on the compiled
// flat-table encoder — drift scoring calls this per evaluation on the
// ingest request path, so the per-address cost is a handful of table
// lookups into two flat allocations, not a re-scan of every segment's
// mined ranges (the answers are identical; see mining.CompiledEncoder).
func (m *Model) EncodeWindow(addrs []ip6.Addr) *WindowEncoding {
	c := m.Encoder().Compiled()
	cols := len(m.Segments)
	w := &WindowEncoding{
		Vecs:       make([][]int, len(addrs)),
		CodeCounts: make([][]int, cols),
		Clamped:    make([]int, cols),
	}
	for i, sm := range m.Segments {
		w.CodeCounts[i] = make([]int, sm.Arity())
	}
	outOfSupport := make([]float64, cols)
	for i, sm := range m.Segments {
		outOfSupport[i] = outOfSupportLogProb(sm.Seg.Width)
	}
	flat := make([]int, len(addrs)*cols)
	for ai, a := range addrs {
		vec := flat[ai*cols : (ai+1)*cols : (ai+1)*cols]
		n := a.Nybbles()
		for i, sm := range m.Segments {
			idx, covered := c.EncodeValue(i, n.Field(sm.Seg.Start, sm.Seg.Width))
			if covered {
				w.WithinLogDensity -= c.LogWidth(i, idx)
			} else {
				w.Clamped[i]++
				w.WithinLogDensity += outOfSupport[i]
				if idx < 0 {
					idx = 0 // unreachable: mined segments have arity >= 1
				}
			}
			vec[i] = idx
			w.CodeCounts[i][idx]++
		}
		w.Vecs[ai] = vec
	}
	return w
}

// LogLikelihood returns the BN-plus-within-density log-likelihood (nats)
// of the encoded window.
func (w *WindowEncoding) LogLikelihood(m *Model) float64 {
	return m.Net.LogLikelihood(w.Vecs) + w.WithinLogDensity
}

// AddressLogLikelihood returns the total log-likelihood (nats) of the
// addresses at address level: the BN likelihood of each address's segment
// codes, plus the within-value density of the concrete value inside each
// mined element (exact values contribute log 1 = 0, a range of width w
// contributes -log w — the uniform density Generate actually samples
// from), with out-of-support values charged the outOfSupportLogProb floor
// instead of being silently clamped.
//
// Unlike LogLikelihood, this is comparable across models with different
// mined value sets, which is what shadow evaluation needs when judging a
// retrained candidate against the model it would replace.
func (m *Model) AddressLogLikelihood(addrs []ip6.Addr) float64 {
	return m.EncodeWindow(addrs).LogLikelihood(m)
}

// MeanAddressLogLikelihood is AddressLogLikelihood per address — the
// size-independent fit score drift detection reports and shadow
// evaluation compares across model versions. It returns 0 for an empty
// slice.
func (m *Model) MeanAddressLogLikelihood(addrs []ip6.Addr) float64 {
	if len(addrs) == 0 {
		return 0
	}
	return m.AddressLogLikelihood(addrs) / float64(len(addrs))
}

// Marginals returns the unconditional distribution of every segment under
// the Bayesian network, in segment order — the model's own belief about
// how often each mined value code occurs, against which live observation
// windows are compared for drift. The distributions are constant for a
// model, so the variable-elimination pass runs once and is cached (drift
// evaluation calls this on the ingest request path, like Encoder); the
// result must be treated as read-only.
func (m *Model) Marginals() ([][]float64, error) {
	m.margOnce.Do(func() { m.marginals, m.margErr = m.Net.Posteriors(nil) })
	return m.marginals, m.margErr
}
