package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"entropyip/internal/bayes"
	"entropyip/internal/mining"
	"entropyip/internal/segment"
)

// TestOptionsRoundTrip verifies that Save/Load preserves the full Options —
// not just Prefix64Only but the segmentation, mining and learning
// configuration the model was built with.
func TestOptionsRoundTrip(t *testing.T) {
	opts := Options{
		Segmentation: segment.Config{
			Thresholds:       []float64{0.025, 0.1, 0.3, 0.5, 0.9},
			Hysteresis:       0.08,
			ForcedBoundaries: []int{32, 64},
		},
		Mining: mining.Config{
			NominateLimit:  12,
			StopFraction:   0.002,
			SmallSetLimit:  8,
			TukeyK:         2.0,
			MinRangePoints: 4,
		},
		Learn: bayes.LearnConfig{
			MaxParents:           1,
			EquivalentSampleSize: 2.0,
			Pseudocount:          0.25,
			MaxParentConfigs:     2048,
			Structure:            bayes.StructureChain,
			Score:                bayes.ScoreBDeu,
		},
	}
	m, _ := buildTestModel(t, 2000, 7, opts)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Opts, m.Opts) {
		t.Errorf("options did not round-trip:\n got  %+v\n want %+v", loaded.Opts, m.Opts)
	}

	// A second round trip must be byte-identical (the format is stable).
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("second save differs from first")
	}
}

// TestOptionsRoundTripPrefix64 checks the flag that existed before full
// options were persisted still round-trips through the new field.
func TestOptionsRoundTripPrefix64(t *testing.T) {
	m, _ := buildTestModel(t, 2000, 3, Options{Prefix64Only: true})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Opts.Prefix64Only {
		t.Error("Prefix64Only lost in round trip")
	}
	if !reflect.DeepEqual(loaded.Opts, m.Opts) {
		t.Errorf("options did not round-trip: got %+v want %+v", loaded.Opts, m.Opts)
	}
}

// TestLoadLegacyModelWithoutOptions ensures model files written before the
// options field existed (only the top-level prefix64_only flag) still load,
// restoring the flag and defaulting the rest.
func TestLoadLegacyModelWithoutOptions(t *testing.T) {
	m, _ := buildTestModel(t, 2000, 5, Options{Prefix64Only: true})
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	delete(doc, "options")
	legacy, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Opts.Prefix64Only {
		t.Error("legacy Prefix64Only flag not restored")
	}
	want := Options{Prefix64Only: true}
	if !reflect.DeepEqual(loaded.Opts, want) {
		t.Errorf("legacy options = %+v, want %+v", loaded.Opts, want)
	}
}

// TestEntropyCountsRoundTrip verifies the per-nybble training histograms —
// the reference side of online drift scoring — survive Save/Load, and that
// files without them (written before the field existed) still load.
func TestEntropyCountsRoundTrip(t *testing.T) {
	m, _ := buildTestModel(t, 2000, 11, Options{})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Profile.Counts != m.Profile.Counts {
		t.Error("entropy counts did not round-trip")
	}

	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	delete(doc, "entropy_counts")
	legacy, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	old, err := Load(bytes.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	var zero [16]int
	for i := range old.Profile.Counts {
		if old.Profile.Counts[i] != zero {
			t.Fatalf("legacy model nybble %d counts = %v, want zero", i, old.Profile.Counts[i])
		}
	}
}
