// Package ip6 implements the IPv6 address substrate used by Entropy/IP.
//
// The package is intentionally self-contained (it does not depend on
// net/netip) so that the rest of the system can operate directly on the
// representation the paper uses: an address as a fixed-width string of 32
// hexadecimal characters ("nybbles"), without colons. It provides parsing
// of all RFC 4291 text forms, canonical and fixed-width formatting,
// prefixes, prefix sets and counting tries, address classification helpers
// (EUI-64, embedded IPv4, low-byte), and anonymization into the
// documentation prefix as done in the paper.
package ip6

import (
	"errors"
	"fmt"
	"strconv"
)

// NybbleCount is the number of hexadecimal characters (4-bit nybbles) in a
// full IPv6 address.
const NybbleCount = 32

// Addr is a 128-bit IPv6 address stored as 16 bytes in network order.
//
// The zero value is the unspecified address "::".
type Addr [16]byte

// Nybbles is an IPv6 address expressed as 32 nybble values, each in the
// range 0-15, most significant first. It corresponds to the fixed-width
// hexadecimal representation used throughout the paper (Fig. 3).
type Nybbles [NybbleCount]byte

// AddrFromBytes returns the address for the given 16 bytes.
func AddrFromBytes(b []byte) (Addr, error) {
	var a Addr
	if len(b) != 16 {
		return a, fmt.Errorf("ip6: address must be 16 bytes, got %d", len(b))
	}
	copy(a[:], b)
	return a, nil
}

// AddrFrom16 returns the address for the given 16-byte array.
func AddrFrom16(b [16]byte) Addr { return Addr(b) }

// AddrFromUint64s builds an address from its high and low 64-bit halves.
func AddrFromUint64s(hi, lo uint64) Addr {
	var a Addr
	for i := 0; i < 8; i++ {
		a[i] = byte(hi >> (56 - 8*i))
		a[8+i] = byte(lo >> (56 - 8*i))
	}
	return a
}

// Uint64s returns the high and low 64-bit halves of the address.
func (a Addr) Uint64s() (hi, lo uint64) {
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(a[i])
		lo = lo<<8 | uint64(a[8+i])
	}
	return hi, lo
}

// Bytes returns the 16-byte representation of the address.
func (a Addr) Bytes() [16]byte { return [16]byte(a) }

// IsZero reports whether a is the unspecified address "::".
func (a Addr) IsZero() bool {
	return a == Addr{}
}

// Is4In6 reports whether a is an IPv4-mapped IPv6 address (::ffff:0:0/96).
func (a Addr) Is4In6() bool {
	for i := 0; i < 10; i++ {
		if a[i] != 0 {
			return false
		}
	}
	return a[10] == 0xff && a[11] == 0xff
}

// Nybble returns the value of the i-th nybble (0-based, 0..31), most
// significant first.
func (a Addr) Nybble(i int) byte {
	b := a[i/2]
	if i%2 == 0 {
		return b >> 4
	}
	return b & 0x0f
}

// SetNybble returns a copy of the address with the i-th nybble (0-based)
// set to v (only the low 4 bits of v are used).
func (a Addr) SetNybble(i int, v byte) Addr {
	v &= 0x0f
	if i%2 == 0 {
		a[i/2] = a[i/2]&0x0f | v<<4
	} else {
		a[i/2] = a[i/2]&0xf0 | v
	}
	return a
}

// Nybbles expands the address into its 32 nybble values.
func (a Addr) Nybbles() Nybbles {
	var n Nybbles
	for i := 0; i < 16; i++ {
		n[2*i] = a[i] >> 4
		n[2*i+1] = a[i] & 0x0f
	}
	return n
}

// Addr packs 32 nybble values back into an address. Nybble values must be
// in the range 0-15; higher bits are masked off.
func (n Nybbles) Addr() Addr {
	var a Addr
	for i := 0; i < 16; i++ {
		a[i] = n[2*i]&0x0f<<4 | n[2*i+1]&0x0f
	}
	return a
}

// Append appends the nybbles as 32 lowercase hexadecimal characters to
// dst and returns the extended slice. It never allocates when dst has
// NybbleCount bytes of spare capacity.
func (n Nybbles) Append(dst []byte) []byte {
	for _, v := range n {
		dst = append(dst, hexDigit(v&0x0f))
	}
	return dst
}

// String returns the nybbles as a 32-character lowercase hexadecimal
// string, e.g. "20010db8000000000000000000000001".
func (n Nybbles) String() string {
	var b [NybbleCount]byte
	return string(n.Append(b[:0]))
}

// Field extracts nybbles [start, start+width) as an unsigned integer, most
// significant nybble first. Width must be between 0 and 16; wider fields do
// not fit in a uint64 and cause a panic, which matches the segmentation
// invariant that no segment crosses the 64-bit boundary.
func (n Nybbles) Field(start, width int) uint64 {
	if width < 0 || width > 16 || start < 0 || start+width > NybbleCount {
		panic(fmt.Sprintf("ip6: invalid nybble field [%d,%d)", start, start+width))
	}
	var v uint64
	for i := start; i < start+width; i++ {
		v = v<<4 | uint64(n[i]&0x0f)
	}
	return v
}

// SetField writes the width lowest nybbles of v into nybbles
// [start, start+width), most significant first, and returns the result.
func (n Nybbles) SetField(start, width int, v uint64) Nybbles {
	if width < 0 || width > 16 || start < 0 || start+width > NybbleCount {
		panic(fmt.Sprintf("ip6: invalid nybble field [%d,%d)", start, start+width))
	}
	for i := width - 1; i >= 0; i-- {
		n[start+i] = byte(v & 0x0f)
		v >>= 4
	}
	return n
}

// Field extracts nybbles [start, start+width) of the address as an
// unsigned integer. See Nybbles.Field for constraints.
func (a Addr) Field(start, width int) uint64 {
	return a.Nybbles().Field(start, width)
}

// SetField writes the width lowest nybbles of v into the address at nybble
// positions [start, start+width) and returns the result.
func (a Addr) SetField(start, width int, v uint64) Addr {
	return a.Nybbles().SetField(start, width, v).Addr()
}

// Compare returns -1, 0 or +1 depending on whether a sorts before, equal
// to, or after b in numeric (network byte) order.
func (a Addr) Compare(b Addr) int {
	for i := 0; i < 16; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether a sorts strictly before b.
func (a Addr) Less(b Addr) bool { return a.Compare(b) < 0 }

// AppendHex appends the fixed-width 32-character hexadecimal form of the
// address (no colons) to dst and returns the extended slice. It never
// allocates when dst has NybbleCount bytes of spare capacity.
func (a Addr) AppendHex(dst []byte) []byte {
	for i := 0; i < 16; i++ {
		dst = append(dst, hexDigit(a[i]>>4), hexDigit(a[i]&0x0f))
	}
	return dst
}

// Hex returns the fixed-width 32-character hexadecimal form of the address
// (no colons), as used by the paper's Fig. 3.
func (a Addr) Hex() string {
	var b [NybbleCount]byte
	return string(a.AppendHex(b[:0]))
}

// maxStringLen is the longest textual form AppendString can produce: the
// RFC 5952 mixed notation "::ffff:255.255.255.255" is 22 bytes, the pure
// hexadecimal worst case 39; 48 leaves slack for a ":" plus prefix length.
const maxStringLen = 48

// AppendString appends the canonical RFC 5952 textual representation of
// the address to dst and returns the extended slice. It never allocates
// when dst has maxStringLen bytes of spare capacity; this is the
// formatting primitive every bulk output path (NDJSON streaming, CLI
// candidate files) is built on.
func (a Addr) AppendString(dst []byte) []byte {
	// RFC 5952 §5: IPv4-mapped addresses use mixed notation.
	if a.Is4In6() {
		dst = append(dst, "::ffff:"...)
		for i := 12; i < 16; i++ {
			if i > 12 {
				dst = append(dst, '.')
			}
			dst = strconv.AppendUint(dst, uint64(a[i]), 10)
		}
		return dst
	}
	var groups [8]uint16
	for i := 0; i < 8; i++ {
		groups[i] = uint16(a[2*i])<<8 | uint16(a[2*i+1])
	}
	// Find the longest run of zero groups (length >= 2) for "::".
	bestStart, bestLen := -1, 1
	runStart, runLen := -1, 0
	for i := 0; i < 8; i++ {
		if groups[i] == 0 {
			if runStart < 0 {
				runStart, runLen = i, 1
			} else {
				runLen++
			}
			if runLen > bestLen {
				bestStart, bestLen = runStart, runLen
			}
		} else {
			runStart, runLen = -1, 0
		}
	}
	start := len(dst)
	for i := 0; i < 8; i++ {
		if bestStart >= 0 && i == bestStart {
			dst = append(dst, ':', ':')
			i += bestLen - 1
			continue
		}
		if len(dst) > start && dst[len(dst)-1] != ':' {
			dst = append(dst, ':')
		}
		dst = appendHexGroup(dst, groups[i])
	}
	return dst
}

// String returns the canonical RFC 5952 textual representation of the
// address (lowercase, zero compression of the longest run of zero groups,
// no leading zeros within groups).
func (a Addr) String() string {
	var b [maxStringLen]byte
	return string(a.AppendString(b[:0]))
}

// AppendExpanded appends the fully expanded, colon-separated form of the
// address to dst and returns the extended slice. It never allocates when
// dst has 39 bytes of spare capacity.
func (a Addr) AppendExpanded(dst []byte) []byte {
	for i := 0; i < 8; i++ {
		if i > 0 {
			dst = append(dst, ':')
		}
		dst = append(dst, hexDigit(a[2*i]>>4), hexDigit(a[2*i]&0x0f),
			hexDigit(a[2*i+1]>>4), hexDigit(a[2*i+1]&0x0f))
	}
	return dst
}

// Expanded returns the fully expanded, colon-separated form of the address,
// e.g. "2001:0db8:0000:0000:0000:0000:0000:0001".
func (a Addr) Expanded() string {
	var b [39]byte
	return string(a.AppendExpanded(b[:0]))
}

// AppendBinary appends the raw 16-byte network-order form of the address
// to dst and returns the extended slice — the record format of the binary
// wire protocol. It never allocates when dst has 16 bytes of spare
// capacity.
func (a Addr) AppendBinary(dst []byte) []byte {
	return append(dst, a[:]...)
}

// AddrFromBinary decodes an address from the first 16 bytes of b, the
// inverse of AppendBinary. ok is false when b is shorter than 16 bytes.
// Unlike AddrFromBytes it neither errors nor cares about trailing bytes,
// so frame decoders can slice records out of one payload buffer.
func AddrFromBinary(b []byte) (a Addr, ok bool) {
	if len(b) < 16 {
		return Addr{}, false
	}
	copy(a[:], b)
	return a, true
}

// MarshalText implements encoding.TextMarshaler using the canonical form.
func (a Addr) MarshalText() ([]byte, error) {
	return a.AppendString(make([]byte, 0, maxStringLen)), nil
}

// UnmarshalText implements encoding.TextUnmarshaler; it accepts any form
// accepted by ParseAddr.
func (a *Addr) UnmarshalText(text []byte) error {
	p, err := ParseAddrBytes(text)
	if err != nil {
		return err
	}
	*a = p
	return nil
}

func appendHexGroup(buf []byte, g uint16) []byte {
	started := false
	for shift := 12; shift >= 0; shift -= 4 {
		d := byte(g >> uint(shift) & 0xf)
		if d != 0 || started || shift == 0 {
			buf = append(buf, hexDigit(d))
			started = true
		}
	}
	return buf
}

func hexDigit(v byte) byte {
	if v < 10 {
		return '0' + v
	}
	return 'a' + v - 10
}

// ErrNotNybble is returned when a hexadecimal digit was expected.
var ErrNotNybble = errors.New("ip6: not a hexadecimal digit")

func hexValue(c byte) (byte, error) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', nil
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, nil
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, nil
	}
	return 0, ErrNotNybble
}
