package ip6

import (
	"bytes"
	"testing"
)

// TestAddrBinaryRoundTrip pins the raw 16-byte wire entry points against
// the existing byte accessors.
func TestAddrBinaryRoundTrip(t *testing.T) {
	for _, s := range []string{"::", "::1", "2001:db8::1", "ff02::fb", "::ffff:192.0.2.1"} {
		a := MustParseAddr(s)
		b := a.AppendBinary(nil)
		if len(b) != 16 {
			t.Fatalf("%s: AppendBinary wrote %d bytes", s, len(b))
		}
		raw := a.Bytes()
		if !bytes.Equal(b, raw[:]) {
			t.Fatalf("%s: AppendBinary = %x, want %x", s, b, raw)
		}
		got, ok := AddrFromBinary(b)
		if !ok || got != a {
			t.Fatalf("%s: AddrFromBinary = %v, %v", s, got, ok)
		}
		// Trailing bytes are the next record, not an error.
		got, ok = AddrFromBinary(append(b, 0xde, 0xad))
		if !ok || got != a {
			t.Fatalf("%s: AddrFromBinary with trailing bytes = %v, %v", s, got, ok)
		}
	}
	if _, ok := AddrFromBinary(make([]byte, 15)); ok {
		t.Error("AddrFromBinary accepted 15 bytes")
	}
	// AppendBinary must not allocate with spare capacity.
	a := MustParseAddr("2001:db8::1")
	dst := make([]byte, 0, 64)
	if allocs := testing.AllocsPerRun(100, func() { dst = a.AppendBinary(dst[:0]) }); allocs != 0 {
		t.Errorf("AppendBinary allocates %.1f/run", allocs)
	}
}

func TestPrefixBinaryRoundTrip(t *testing.T) {
	for _, s := range []string{"::/0", "2001:db8::/32", "2001:db8:1:2::/64", "::1/128"} {
		p := MustParsePrefix(s)
		b := p.AppendBinary(nil)
		if len(b) != 17 {
			t.Fatalf("%s: AppendBinary wrote %d bytes", s, len(b))
		}
		got, ok := PrefixFromBinary(b)
		if !ok || got != p {
			t.Fatalf("%s: PrefixFromBinary = %v, %v", s, got, ok)
		}
	}
	if _, ok := PrefixFromBinary(make([]byte, 16)); ok {
		t.Error("PrefixFromBinary accepted 16 bytes")
	}
	over := make([]byte, 17)
	over[16] = 129
	if _, ok := PrefixFromBinary(over); ok {
		t.Error("PrefixFromBinary accepted /129")
	}
	// Unmasked wire input canonicalizes instead of smuggling host bits.
	raw := MustParseAddr("2001:db8::1").AppendBinary(nil)
	raw = append(raw, 32)
	got, ok := PrefixFromBinary(raw)
	if !ok || got != MustParsePrefix("2001:db8::/32") {
		t.Errorf("unmasked input = %v, %v; want 2001:db8::/32", got, ok)
	}
}
