package ip6

import "fmt"

// This file contains "stateless" single-address classification helpers of
// the kind implemented by the addr6 tool referenced by the paper. The paper
// argues such rules are error-prone in isolation (context matters); we
// implement them anyway, both as utility for the synthetic plan generators
// and as ground truth oracles in tests and baseline generators.

// IsEUI64 reports whether the interface identifier (low 64 bits) looks like
// a Modified EUI-64 derived from a MAC address: the bytes 0xff, 0xfe appear
// in positions 11-12 (bits 88-104 of the address).
func IsEUI64(a Addr) bool {
	return a[11] == 0xff && a[12] == 0xfe
}

// IsGloballyUniqueEUI64 reports whether the address both has the ff:fe
// EUI-64 marker and has the "u" (universal/local) bit set, i.e. claims to
// be derived from a globally unique MAC address.
func IsGloballyUniqueEUI64(a Addr) bool {
	return IsEUI64(a) && a[8]&0x02 != 0
}

// EmbeddedIPv4 checks whether the low 32 bits of the address decode to a
// plausible embedded IPv4 address (dotted-quad packed in hexadecimal, as in
// ::ffff:a.b.c.d or provider transition schemes). It returns the packed
// IPv4 value. Plausibility here means only that the address is not
// overwhelmingly zero; semantic checks are left to callers.
func EmbeddedIPv4(a Addr) (uint32, bool) {
	v := uint32(a[12])<<24 | uint32(a[13])<<16 | uint32(a[14])<<8 | uint32(a[15])
	if v == 0 {
		return 0, false
	}
	return v, true
}

// EmbeddedDecimalIPv4 checks whether the interface identifier encodes an
// IPv4 address as base-10 octets across the four 16-bit aligned words of
// the IID (e.g. ...:192:0:2:33 for 192.0.2.33), the pattern the paper
// observes in router dataset R4. It returns the decoded IPv4 address.
func EmbeddedDecimalIPv4(a Addr) (uint32, bool) {
	var octets [4]uint32
	for i := 0; i < 4; i++ {
		word := uint32(a[8+2*i])<<8 | uint32(a[9+2*i])
		// Each word, read as hexadecimal text, must be a decimal number
		// 0-255. E.g. the word 0x0192 reads "192".
		dec, ok := hexWordAsDecimal(word)
		if !ok || dec > 255 {
			return 0, false
		}
		octets[i] = dec
	}
	v := octets[0]<<24 | octets[1]<<16 | octets[2]<<8 | octets[3]
	if v == 0 {
		return 0, false
	}
	return v, true
}

// hexWordAsDecimal interprets the hexadecimal textual form of word as a
// decimal integer, e.g. 0x0192 -> 192. It fails if any nybble is not a
// decimal digit.
func hexWordAsDecimal(word uint32) (uint32, bool) {
	var dec uint32
	started := false
	for shift := 12; shift >= 0; shift -= 4 {
		d := word >> uint(shift) & 0xf
		if d > 9 {
			return 0, false
		}
		if d != 0 {
			started = true
		}
		if started || shift == 0 {
			dec = dec*10 + d
		}
	}
	return dec, true
}

// IsLowByte reports whether the interface identifier is "low-byte": all of
// the IID is zero except for the lowest byte (and optionally the second
// lowest), a pattern common for routers and statically addressed servers.
func IsLowByte(a Addr) bool {
	for i := 8; i < 14; i++ {
		if a[i] != 0 {
			return false
		}
	}
	return a[14] != 0 || a[15] != 0 || isAllZeroIID(a)
}

func isAllZeroIID(a Addr) bool {
	for i := 8; i < 16; i++ {
		if a[i] != 0 {
			return false
		}
	}
	return true
}

// IIDLooksRandom applies the heuristic used by stateless classifiers: the
// interface identifier is considered pseudo-random when its nybbles take
// many distinct values and no well-known pattern (EUI-64, low-byte,
// embedded IPv4) matches. The paper shows this heuristic misclassifies
// structured addresses; Entropy/IP exists to do better. The function is
// still useful for constructing baselines.
func IIDLooksRandom(a Addr) bool {
	if IsEUI64(a) || IsLowByte(a) {
		return false
	}
	if _, ok := EmbeddedDecimalIPv4(a); ok {
		return false
	}
	// Count distinct nybble values in the IID.
	var seen [16]bool
	distinct := 0
	for i := 16; i < 32; i++ {
		v := a.Nybble(i)
		if !seen[v] {
			seen[v] = true
			distinct++
		}
	}
	return distinct >= 6
}

// AddrKind is a coarse stateless classification of a single address.
type AddrKind int

// Stateless classification outcomes.
const (
	KindUnknown AddrKind = iota
	KindEUI64
	KindLowByte
	KindEmbeddedIPv4
	KindRandomIID
)

// String returns a human-readable name for the kind.
func (k AddrKind) String() string {
	switch k {
	case KindEUI64:
		return "eui64"
	case KindLowByte:
		return "lowbyte"
	case KindEmbeddedIPv4:
		return "embedded-ipv4"
	case KindRandomIID:
		return "random-iid"
	default:
		return "unknown"
	}
}

// Classify applies the stateless heuristics in precedence order and returns
// the first match.
func Classify(a Addr) AddrKind {
	switch {
	case IsEUI64(a):
		return KindEUI64
	case IsLowByte(a):
		return KindLowByte
	default:
		if _, ok := EmbeddedDecimalIPv4(a); ok {
			return KindEmbeddedIPv4
		}
		if IIDLooksRandom(a) {
			return KindRandomIID
		}
		return KindUnknown
	}
}

// DocumentationPrefix is the IPv6 documentation prefix 2001:db8::/32 used
// by the paper when anonymizing results.
var DocumentationPrefix = MustParsePrefix("2001:db8::/32")

// Anonymize rewrites the first 32 bits of the address into the
// documentation prefix 2001:db8::/32, as done in the paper's presentation
// of results. The variant parameter increments the first nybble (mod 6,
// staying within 2..7) so that distinct real /32s remain distinguishable
// after anonymization, mirroring the paper's "incrementing the first nybble
// when necessary".
func Anonymize(a Addr, variant int) Addr {
	doc := DocumentationPrefix.Addr()
	for i := 0; i < 4; i++ {
		a[i] = doc[i]
	}
	if variant > 0 {
		first := byte(2 + variant%6)
		a = a.SetNybble(0, first)
	}
	return a
}

// AnonymizeSet anonymizes a set of addresses, assigning a distinct variant
// to each distinct original /32 prefix (in order of first appearance) so
// that prefix structure is preserved.
func AnonymizeSet(addrs []Addr) []Addr {
	variants := make(map[Prefix]int)
	out := make([]Addr, len(addrs))
	for i, a := range addrs {
		p := Prefix32(a)
		v, ok := variants[p]
		if !ok {
			v = len(variants)
			variants[p] = v
		}
		out[i] = Anonymize(a, v)
	}
	return out
}

// FormatFixedWidth renders a slice of addresses in the paper's fixed-width
// hexadecimal form (Fig. 3), one address per line.
func FormatFixedWidth(addrs []Addr) string {
	buf := make([]byte, 0, len(addrs)*(NybbleCount+1))
	for _, a := range addrs {
		buf = a.AppendHex(buf)
		buf = append(buf, '\n')
	}
	return string(buf)
}

// ValidateNybbles checks that every value in n is a valid nybble (0-15).
func ValidateNybbles(n Nybbles) error {
	for i, v := range n {
		if v > 0x0f {
			return fmt.Errorf("ip6: nybble %d out of range: %d", i, v)
		}
	}
	return nil
}
