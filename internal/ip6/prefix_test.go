package ip6

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if p.Bits() != 32 {
		t.Errorf("Bits() = %d", p.Bits())
	}
	if p.String() != "2001:db8::/32" {
		t.Errorf("String() = %q", p.String())
	}
	// Non-canonical input is masked.
	q := MustParsePrefix("2001:db8:ffff::1/32")
	if q != p {
		t.Errorf("masking failed: %v != %v", q, p)
	}
	for _, bad := range []string{"", "2001:db8::", "2001:db8::/129", "2001:db8::/-1", "2001:db8::/x", "nonsense/32"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q): expected error", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("2001:db8:40::/42")
	cases := []struct {
		addr string
		want bool
	}{
		{"2001:db8:40::1", true},
		{"2001:db8:7f:ffff::1", true},
		{"2001:db8:80::", false},
		{"2001:db8:3f:ffff::", false},
		{"2001:db9:40::", false},
	}
	for _, c := range cases {
		if got := p.Contains(MustParseAddr(c.addr)); got != c.want {
			t.Errorf("%v.Contains(%s) = %v, want %v", p, c.addr, got, c.want)
		}
	}
}

func TestPrefixContainsMatchesNetip(t *testing.T) {
	f := func(b [16]byte, c [16]byte, bits uint8) bool {
		n := int(bits) % 129
		p := PrefixFrom(AddrFrom16(b), n)
		np := netip.PrefixFrom(netip.AddrFrom16(b), n).Masked()
		a := AddrFrom16(c)
		na := netip.AddrFrom16(c)
		return p.Contains(a) == np.Contains(na)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPrefixContainsPrefixAndOverlaps(t *testing.T) {
	p32 := MustParsePrefix("2001:db8::/32")
	p48 := MustParsePrefix("2001:db8:1::/48")
	other := MustParsePrefix("2001:db9::/32")
	if !p32.ContainsPrefix(p48) {
		t.Error("/32 should contain /48")
	}
	if p48.ContainsPrefix(p32) {
		t.Error("/48 should not contain /32")
	}
	if !p32.Overlaps(p48) || !p48.Overlaps(p32) {
		t.Error("overlap expected")
	}
	if p32.Overlaps(other) {
		t.Error("no overlap expected")
	}
}

func TestPrefixFirstLast(t *testing.T) {
	p := MustParsePrefix("2001:db8::/64")
	if p.First() != MustParseAddr("2001:db8::") {
		t.Errorf("First() = %v", p.First())
	}
	if p.Last() != MustParseAddr("2001:db8::ffff:ffff:ffff:ffff") {
		t.Errorf("Last() = %v", p.Last())
	}
	all := MustParsePrefix("::/0")
	if all.Last() != MustParseAddr("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff") {
		t.Errorf("/0 Last() = %v", all.Last())
	}
	host := PrefixFrom(MustParseAddr("2001:db8::5"), 128)
	if host.First() != host.Last() {
		t.Error("/128 first != last")
	}
}

func TestMaskMatchesNetip(t *testing.T) {
	f := func(b [16]byte, bits uint8) bool {
		n := int(bits) % 129
		got := Mask(AddrFrom16(b), n)
		want := netip.PrefixFrom(netip.AddrFrom16(b), n).Masked().Addr().As16()
		return got.Bytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPrefixHelpers(t *testing.T) {
	a := MustParseAddr("2001:db8:1234:5678:9abc:def0:1122:3344")
	if Prefix64(a).String() != "2001:db8:1234:5678::/64" {
		t.Errorf("Prefix64 = %v", Prefix64(a))
	}
	if Prefix32(a).String() != "2001:db8::/32" {
		t.Errorf("Prefix32 = %v", Prefix32(a))
	}
}

func TestPrefixMarshalText(t *testing.T) {
	p := MustParsePrefix("2001:db8::/56")
	text, err := p.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Prefix
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Errorf("round trip: %v != %v", back, p)
	}
	if err := back.UnmarshalText([]byte("bad")); err == nil {
		t.Error("expected error")
	}
}

func TestPrefixFromPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PrefixFrom(Addr{}, 200)
}
