package ip6

import (
	"net/netip"
	"strings"
	"testing"
)

// FuzzParseAddr cross-checks the parser and the append formatters: any
// input either fails identically through both entry points, or parses to
// an address whose canonical form round-trips through every formatter and
// agrees with net/netip (the oracle for RFC 4291 parsing and RFC 5952
// formatting). The seeds under testdata/fuzz/FuzzParseAddr run on every
// plain `go test`; CI adds a short coverage-guided run.
func FuzzParseAddr(f *testing.F) {
	for _, seed := range []string{
		"::", "::1", "2001:db8::1", "1:2:3:4:5:6:7:8",
		"::ffff:192.0.2.1", "::ffff:255.255.255.255", "64:ff9b::192.0.2.33",
		"20010db8000000000000000000000001", "2001:DB8::A",
		"fe80::ff:fe00:1", "1::2::3", "1:2:", "::ffff:01.2.3.4", "%", "",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAddr(s)
		ba, berr := ParseAddrBytes([]byte(s))
		if a != ba || (err == nil) != (berr == nil) {
			t.Fatalf("ParseAddr(%q) = (%v, %v) but ParseAddrBytes = (%v, %v)", s, a, err, ba, berr)
		}
		if err != nil && berr != nil && err.Error() != berr.Error() {
			t.Fatalf("ParseAddr(%q) error %q but ParseAddrBytes error %q", s, err, berr)
		}
		if err != nil {
			// Rejected inputs: anything netip accepts as a plain (unzoned)
			// IPv6 address must parse here too — except netip's 4-in-6
			// forms we deliberately do not add (none currently).
			if na, nerr := netip.ParseAddr(s); nerr == nil && na.Is6() && !na.Is4In6() && na.Zone() == "" {
				t.Fatalf("ParseAddr(%q) = %v but netip accepts it as %v", s, err, na)
			}
			return
		}

		// Parse ↔ append round-trip identity through every formatter.
		canon := a.String()
		if string(a.AppendString(nil)) != canon {
			t.Fatalf("AppendString(%q) = %q, String = %q", s, a.AppendString(nil), canon)
		}
		for _, form := range []string{canon, a.Hex(), a.Expanded(), string(a.AppendHex(nil)), string(a.AppendExpanded(nil))} {
			got, err := ParseAddrBytes([]byte(form))
			if err != nil {
				t.Fatalf("round trip of %q via %q: %v", s, form, err)
			}
			if got != a {
				t.Fatalf("round trip of %q via %q = %v, want %v", s, form, got, a)
			}
		}

		// netip as formatting oracle, and as parsing oracle for the colon
		// forms (the fixed-width 32-hex form is ours, netip rejects it).
		if want := netip.AddrFrom16(a.Bytes()).String(); canon != want {
			t.Fatalf("String of %q = %q, netip formats %q", s, canon, want)
		}
		if strings.IndexByte(s, ':') >= 0 {
			na, nerr := netip.ParseAddr(s)
			if nerr != nil {
				t.Fatalf("ParseAddr(%q) = %v but netip rejects it: %v", s, a, nerr)
			}
			if na.As16() != a.Bytes() {
				t.Fatalf("ParseAddr(%q) = %x, netip parses %x", s, a.Bytes(), na.As16())
			}
		}
	})
}
