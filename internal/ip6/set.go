package ip6

import "sort"

// Set is an unordered collection of unique IPv6 addresses.
//
// The zero value is not ready for use; call NewSet.
type Set struct {
	m map[Addr]struct{}
}

// NewSet returns an empty address set with capacity hint n.
func NewSet(n int) *Set {
	return &Set{m: make(map[Addr]struct{}, n)}
}

// SetOf returns a set containing the given addresses (duplicates removed).
func SetOf(addrs ...Addr) *Set {
	s := NewSet(len(addrs))
	for _, a := range addrs {
		s.Add(a)
	}
	return s
}

// Add inserts the address and reports whether it was not already present.
func (s *Set) Add(a Addr) bool {
	if _, ok := s.m[a]; ok {
		return false
	}
	s.m[a] = struct{}{}
	return true
}

// AddAll inserts every address in the slice and returns the number of
// addresses that were newly added.
func (s *Set) AddAll(addrs []Addr) int {
	added := 0
	for _, a := range addrs {
		if s.Add(a) {
			added++
		}
	}
	return added
}

// Contains reports whether the address is in the set.
func (s *Set) Contains(a Addr) bool {
	_, ok := s.m[a]
	return ok
}

// Remove deletes the address and reports whether it was present.
func (s *Set) Remove(a Addr) bool {
	if _, ok := s.m[a]; !ok {
		return false
	}
	delete(s.m, a)
	return true
}

// Len returns the number of addresses in the set.
func (s *Set) Len() int { return len(s.m) }

// Slice returns the addresses in the set in unspecified order.
func (s *Set) Slice() []Addr {
	out := make([]Addr, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	return out
}

// Sorted returns the addresses in the set in ascending numeric order.
func (s *Set) Sorted() []Addr {
	out := s.Slice()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Prefixes returns the set of distinct prefixes of the given bit length
// covering the addresses in the set.
func (s *Set) Prefixes(bits int) *PrefixSet {
	ps := NewPrefixSet(len(s.m))
	for a := range s.m {
		ps.Add(PrefixFrom(a, bits))
	}
	return ps
}

// Dedup returns the unique addresses from the slice, preserving the order
// of first occurrence.
func Dedup(addrs []Addr) []Addr {
	seen := make(map[Addr]struct{}, len(addrs))
	out := make([]Addr, 0, len(addrs))
	for _, a := range addrs {
		if _, ok := seen[a]; ok {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	return out
}

// SortAddrs sorts the slice of addresses in ascending numeric order,
// in place, and returns it.
func SortAddrs(addrs []Addr) []Addr {
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	return addrs
}

// PrefixSet is an unordered collection of unique prefixes.
type PrefixSet struct {
	m map[Prefix]struct{}
}

// NewPrefixSet returns an empty prefix set with capacity hint n.
func NewPrefixSet(n int) *PrefixSet {
	return &PrefixSet{m: make(map[Prefix]struct{}, n)}
}

// Add inserts the prefix and reports whether it was not already present.
func (s *PrefixSet) Add(p Prefix) bool {
	if _, ok := s.m[p]; ok {
		return false
	}
	s.m[p] = struct{}{}
	return true
}

// Contains reports whether the prefix is in the set.
func (s *PrefixSet) Contains(p Prefix) bool {
	_, ok := s.m[p]
	return ok
}

// ContainsAddr reports whether any prefix in the set of the given length
// contains the address. It is a convenience for hit-testing candidate /64s.
func (s *PrefixSet) ContainsAddr(a Addr, bits int) bool {
	return s.Contains(PrefixFrom(a, bits))
}

// Len returns the number of prefixes in the set.
func (s *PrefixSet) Len() int { return len(s.m) }

// Slice returns the prefixes in unspecified order.
func (s *PrefixSet) Slice() []Prefix {
	out := make([]Prefix, 0, len(s.m))
	for p := range s.m {
		out = append(out, p)
	}
	return out
}

// Sorted returns the prefixes sorted by base address, then by length.
func (s *PrefixSet) Sorted() []Prefix {
	out := s.Slice()
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].addr.Compare(out[j].addr); c != 0 {
			return c < 0
		}
		return out[i].bits < out[j].bits
	})
	return out
}

// Diff returns the prefixes in s that are not in other.
func (s *PrefixSet) Diff(other *PrefixSet) *PrefixSet {
	out := NewPrefixSet(0)
	for p := range s.m {
		if !other.Contains(p) {
			out.Add(p)
		}
	}
	return out
}
