package ip6

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
)

// The pre-append-API formatting paths, kept verbatim as references: the
// append rewrites must be byte-identical drop-ins, and these pins make a
// formatting regression a test failure instead of a silent output change.

// refString is the old Addr.String: fmt.Sprintf on the 4-in-6 path and a
// freshly allocated buffer otherwise.
func refString(a Addr) string {
	if a.Is4In6() {
		return fmt.Sprintf("::ffff:%d.%d.%d.%d", a[12], a[13], a[14], a[15])
	}
	var groups [8]uint16
	for i := 0; i < 8; i++ {
		groups[i] = uint16(a[2*i])<<8 | uint16(a[2*i+1])
	}
	bestStart, bestLen := -1, 1
	runStart, runLen := -1, 0
	for i := 0; i < 8; i++ {
		if groups[i] == 0 {
			if runStart < 0 {
				runStart, runLen = i, 1
			} else {
				runLen++
			}
			if runLen > bestLen {
				bestStart, bestLen = runStart, runLen
			}
		} else {
			runStart, runLen = -1, 0
		}
	}
	buf := make([]byte, 0, 41)
	for i := 0; i < 8; i++ {
		if bestStart >= 0 && i == bestStart {
			buf = append(buf, ':', ':')
			i += bestLen - 1
			continue
		}
		if len(buf) > 0 && buf[len(buf)-1] != ':' {
			buf = append(buf, ':')
		}
		buf = appendHexGroup(buf, groups[i])
	}
	if len(buf) == 0 {
		return "::"
	}
	return string(buf)
}

// refExpanded is the old Addr.Expanded.
func refExpanded(a Addr) string {
	buf := make([]byte, 0, 39)
	for i := 0; i < 8; i++ {
		if i > 0 {
			buf = append(buf, ':')
		}
		g := uint16(a[2*i])<<8 | uint16(a[2*i+1])
		buf = append(buf, hexDigit(byte(g>>12)), hexDigit(byte(g>>8&0xf)),
			hexDigit(byte(g>>4&0xf)), hexDigit(byte(g&0xf)))
	}
	return string(buf)
}

// refNybblesString is the old byte-at-a-time Nybbles.String.
func refNybblesString(n Nybbles) string {
	var b [NybbleCount]byte
	for i, v := range n {
		b[i] = hexDigit(v & 0x0f)
	}
	return string(b[:])
}

// appendTestAddrs covers the formatting edge cases: full zero compression,
// leading/trailing runs, tied runs, single zero groups (no "::"), 4-in-6
// mixed notation at every octet-length boundary, and dense addresses.
func appendTestAddrs(t testing.TB) []Addr {
	t.Helper()
	addrs := []Addr{
		{}, // ::
		MustParseAddr("::1"),
		MustParseAddr("1::"),
		MustParseAddr("2001:db8::1"),
		MustParseAddr("2001:db8:0:1:1:1:1:1"), // single zero group: no "::"
		MustParseAddr("2001:0:0:1:0:0:0:1"),   // tie broken toward the first longer run
		MustParseAddr("1:0:0:2:0:0:0:3"),
		MustParseAddr("fe80::ff:fe00:1"),
		MustParseAddr("1:2:3:4:5:6:7:8"),
		MustParseAddr("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"),
		MustParseAddr("::ffff:0.0.0.0"),
		MustParseAddr("::ffff:9.9.9.9"),
		MustParseAddr("::ffff:10.0.0.1"),
		MustParseAddr("::ffff:99.100.101.200"),
		MustParseAddr("::ffff:255.255.255.255"),
		MustParseAddr("::fffe:255.255.255.255"), // NOT 4-in-6: hex form
		MustParseAddr("64:ff9b::192.0.2.33"),    // NAT64: hex form, not ::ffff
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		var a Addr
		rng.Read(a[:])
		// Sprinkle zero bytes so compression runs appear.
		for j := 0; j < 16; j += 2 {
			if rng.Intn(2) == 0 {
				a[j], a[j+1] = 0, 0
			}
		}
		addrs = append(addrs, a)
		if i%3 == 0 {
			addrs = append(addrs, Addr{10: 0xff, 11: 0xff, 12: a[12], 13: a[13], 14: a[14], 15: a[15]})
		}
	}
	return addrs
}

func TestAppendAPIsMatchOldFormatting(t *testing.T) {
	buf := make([]byte, 0, 64)
	for _, a := range appendTestAddrs(t) {
		if got, want := a.String(), refString(a); got != want {
			t.Fatalf("String(%v bytes %x) = %q, old path %q", a, a.Bytes(), got, want)
		}
		if got := string(a.AppendString(buf[:0])); got != a.String() {
			t.Fatalf("AppendString = %q, String = %q", got, a.String())
		}
		if got, want := a.Expanded(), refExpanded(a); got != want {
			t.Fatalf("Expanded(%x) = %q, old path %q", a.Bytes(), got, want)
		}
		if got := string(a.AppendExpanded(buf[:0])); got != a.Expanded() {
			t.Fatalf("AppendExpanded = %q, Expanded = %q", got, a.Expanded())
		}
		n := a.Nybbles()
		if got, want := n.String(), refNybblesString(n); got != want {
			t.Fatalf("Nybbles.String(%x) = %q, old path %q", a.Bytes(), got, want)
		}
		if got := string(a.AppendHex(buf[:0])); got != a.Hex() || got != n.String() {
			t.Fatalf("AppendHex = %q, Hex = %q, Nybbles = %q", got, a.Hex(), n.String())
		}
	}
}

func TestAppendStringMatchesNetip(t *testing.T) {
	for _, a := range appendTestAddrs(t) {
		want := netip.AddrFrom16(a.Bytes()).String()
		if got := a.String(); got != want {
			t.Fatalf("String(%x) = %q, netip says %q", a.Bytes(), got, want)
		}
	}
}

// TestAppendPreservesPrefix pins the non-empty-dst contract: appending
// after existing bytes must neither clobber them nor mis-detect the
// "first group" state from leftover content.
func TestAppendPreservesPrefix(t *testing.T) {
	for _, a := range appendTestAddrs(t) {
		for _, prefix := range []string{"", "x", `{"addr":"`, "1:2:"} {
			got := string(a.AppendString([]byte(prefix)))
			if want := prefix + a.String(); got != want {
				t.Fatalf("AppendString onto %q = %q, want %q", prefix, got, want)
			}
		}
	}
}

func TestAppendZeroAllocs(t *testing.T) {
	addrs := appendTestAddrs(t)
	buf := make([]byte, 0, maxStringLen)
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		a := addrs[i%len(addrs)]
		i++
		buf = a.AppendString(buf[:0])
		buf = a.AppendHex(buf[:0])
		buf = a.AppendExpanded(buf[:0])
	}); n != 0 {
		t.Fatalf("append formatting allocates %.1f times per address, want 0", n)
	}
	line := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(200, func() {
		a := addrs[i%len(addrs)]
		i++
		line = a.AppendString(line[:0])
		if _, err := ParseAddrBytes(line); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("format+parse round trip allocates %.1f times per address, want 0", n)
	}
}

func TestParseAddrBytesMatchesParseAddr(t *testing.T) {
	inputs := []string{
		"::", "::1", "2001:db8::1", "1:2:3:4:5:6:7:8",
		"20010db8000000000000000000000001",
		"::ffff:192.0.2.1", "64:ff9b::192.0.2.33",
		"2001:DB8::A", // uppercase
		// Malformed: the two entry points must agree on errors too.
		"", ":", ":::", "1:2:3", "1:2:3:4:5:6:7:8:9", "1::2::3",
		"12345::", "g::", "1:2:", ":1:2:3:4:5:6:7:8",
		"::ffff:1.2.3", "::ffff:1.2.3.4.5", "::ffff:256.1.1.1",
		"::ffff:01.2.3.4", "::ffff:1.2.3.", "::ffff:.1.2.3",
		"1.2.3.4", "2001:db8::1%eth0",
		"20010db800000000000000000000000", // 31 hex chars
		"zz010db8000000000000000000000001",
	}
	for _, a := range appendTestAddrs(t) {
		inputs = append(inputs, a.String(), a.Hex(), a.Expanded())
	}
	for _, in := range inputs {
		sa, serr := ParseAddr(in)
		ba, berr := ParseAddrBytes([]byte(in))
		if sa != ba {
			t.Fatalf("ParseAddr(%q) = %v, ParseAddrBytes = %v", in, sa, ba)
		}
		switch {
		case (serr == nil) != (berr == nil):
			t.Fatalf("ParseAddr(%q) err %v, ParseAddrBytes err %v", in, serr, berr)
		case serr != nil && serr.Error() != berr.Error():
			t.Fatalf("ParseAddr(%q) err %q, ParseAddrBytes err %q", in, serr, berr)
		}
	}
}

// BenchmarkParseFormat is the CI-gated hot-loop benchmark of the serving
// plane's per-address text work: canonical-format an address into a
// reused buffer and parse it back from the byte slice. Steady state must
// be 0 allocs/op (gated by scripts/check_bench.sh).
func BenchmarkParseFormat(b *testing.B) {
	addrs := appendTestAddrs(b)
	buf := make([]byte, 0, maxStringLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		buf = a.AppendString(buf[:0])
		got, err := ParseAddrBytes(buf)
		if err != nil {
			b.Fatal(err)
		}
		if got != a {
			b.Fatalf("round trip %v != %v", got, a)
		}
	}
}
