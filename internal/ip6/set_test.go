package ip6

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(4)
	a := MustParseAddr("2001:db8::1")
	b := MustParseAddr("2001:db8::2")
	if !s.Add(a) || !s.Add(b) {
		t.Error("Add of new addresses should return true")
	}
	if s.Add(a) {
		t.Error("Add of duplicate should return false")
	}
	if s.Len() != 2 {
		t.Errorf("Len() = %d", s.Len())
	}
	if !s.Contains(a) || s.Contains(MustParseAddr("2001:db8::3")) {
		t.Error("Contains wrong")
	}
	if !s.Remove(a) || s.Remove(a) {
		t.Error("Remove semantics wrong")
	}
	if s.Len() != 1 {
		t.Errorf("Len() after remove = %d", s.Len())
	}
}

func TestSetAddAllAndSorted(t *testing.T) {
	addrs := []Addr{
		MustParseAddr("2001:db8::3"),
		MustParseAddr("2001:db8::1"),
		MustParseAddr("2001:db8::2"),
		MustParseAddr("2001:db8::1"), // duplicate
	}
	s := NewSet(0)
	if got := s.AddAll(addrs); got != 3 {
		t.Errorf("AddAll = %d, want 3", got)
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if !sorted[i-1].Less(sorted[i]) {
			t.Errorf("Sorted not ascending at %d", i)
		}
	}
	if len(s.Slice()) != 3 {
		t.Error("Slice length wrong")
	}
}

func TestSetOfAndPrefixes(t *testing.T) {
	s := SetOf(
		MustParseAddr("2001:db8:1::1"),
		MustParseAddr("2001:db8:1::2"),
		MustParseAddr("2001:db8:2::1"),
	)
	ps := s.Prefixes(48)
	if ps.Len() != 2 {
		t.Errorf("distinct /48s = %d, want 2", ps.Len())
	}
	if !ps.Contains(MustParsePrefix("2001:db8:1::/48")) {
		t.Error("missing expected /48")
	}
}

func TestDedupPreservesOrder(t *testing.T) {
	a := MustParseAddr("2001:db8::a")
	b := MustParseAddr("2001:db8::b")
	in := []Addr{b, a, b, a, b}
	out := Dedup(in)
	if len(out) != 2 || out[0] != b || out[1] != a {
		t.Errorf("Dedup = %v", out)
	}
}

func TestSortAddrs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]Addr, 100)
	for i := range addrs {
		var b [16]byte
		rng.Read(b[:])
		addrs[i] = AddrFrom16(b)
	}
	SortAddrs(addrs)
	for i := 1; i < len(addrs); i++ {
		if addrs[i].Less(addrs[i-1]) {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestPrefixSetDiff(t *testing.T) {
	a := NewPrefixSet(0)
	b := NewPrefixSet(0)
	p1 := MustParsePrefix("2001:db8:1::/48")
	p2 := MustParsePrefix("2001:db8:2::/48")
	p3 := MustParsePrefix("2001:db8:3::/48")
	a.Add(p1)
	a.Add(p2)
	b.Add(p2)
	b.Add(p3)
	diff := a.Diff(b)
	if diff.Len() != 1 || !diff.Contains(p1) {
		t.Errorf("Diff = %v", diff.Slice())
	}
}

func TestPrefixSetSortedAndContainsAddr(t *testing.T) {
	s := NewPrefixSet(0)
	s.Add(MustParsePrefix("2001:db8:2::/48"))
	s.Add(MustParsePrefix("2001:db8:1::/48"))
	if s.Add(MustParsePrefix("2001:db8:1::/48")) {
		t.Error("duplicate Add should return false")
	}
	sorted := s.Sorted()
	if len(sorted) != 2 || sorted[0].String() != "2001:db8:1::/48" {
		t.Errorf("Sorted = %v", sorted)
	}
	if !s.ContainsAddr(MustParseAddr("2001:db8:1:2::3"), 48) {
		t.Error("ContainsAddr should be true")
	}
	if s.ContainsAddr(MustParseAddr("2001:db8:9::1"), 48) {
		t.Error("ContainsAddr should be false")
	}
}

func TestPrefixCounter(t *testing.T) {
	c := NewPrefixCounter()
	if c.Count(1) != 0 || c.Count(0) != 0 {
		t.Error("empty counter should have zero counts")
	}
	addrs := []Addr{
		MustParseAddr("2001:db8:1::1"),
		MustParseAddr("2001:db8:1::2"),
		MustParseAddr("2001:db8:2::1"),
		MustParseAddr("3001:db8::1"),
	}
	c.AddAll(addrs)
	if c.Addrs() != 4 {
		t.Errorf("Addrs() = %d", c.Addrs())
	}
	if got := c.Count(0); got != 1 {
		t.Errorf("Count(0) = %d, want 1", got)
	}
	// First nybble: "2" and "3" -> 2 distinct.
	if got := c.Count(1); got != 2 {
		t.Errorf("Count(1) = %d, want 2", got)
	}
	// 12 nybbles = 48 bits: 2001:db8:1, 2001:db8:2, 3001:db8:0 -> 3 distinct.
	if got := c.Count(12); got != 3 {
		t.Errorf("Count(12) = %d, want 3", got)
	}
	// Full length: 4 distinct addresses.
	if got := c.Count(32); got != 4 {
		t.Errorf("Count(32) = %d, want 4", got)
	}
	if c.Count(-1) != 0 || c.Count(33) != 0 {
		t.Error("out of range Count should be 0")
	}
	counts := c.Counts()
	if counts[32] != 4 {
		t.Error("Counts()[32] wrong")
	}
}

func TestPrefixCounterDuplicates(t *testing.T) {
	c := NewPrefixCounter()
	a := MustParseAddr("2001:db8::1")
	c.Add(a)
	c.Add(a)
	if c.Count(32) != 1 {
		t.Errorf("duplicate addresses should count once, got %d", c.Count(32))
	}
	if c.Addrs() != 2 {
		t.Errorf("Addrs() = %d, want 2", c.Addrs())
	}
}

func TestPrefixCounterZeroValue(t *testing.T) {
	var c PrefixCounter
	c.Add(MustParseAddr("2001:db8::1"))
	if c.Count(32) != 1 {
		t.Error("zero-value counter should work after Add")
	}
}
