package ip6

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is a CIDR prefix: an address and a prefix length in bits (0-128).
// The address is stored in masked (canonical) form: all bits beyond the
// prefix length are zero.
type Prefix struct {
	addr Addr
	bits int
}

// PrefixFrom returns the prefix of the given length containing addr. Bits
// beyond the prefix length are cleared. It panics if bits is outside 0-128.
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 128 {
		panic(fmt.Sprintf("ip6: invalid prefix length %d", bits))
	}
	return Prefix{addr: maskAddr(addr, bits), bits: bits}
}

// ParsePrefix parses a prefix in "addr/len" notation.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("ip6: prefix %q: missing '/'", s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > 128 {
		return Prefix{}, fmt.Errorf("ip6: prefix %q: invalid length", s)
	}
	return PrefixFrom(a, bits), nil
}

// MustParsePrefix is like ParsePrefix but panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the (masked) base address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length in bits.
func (p Prefix) Bits() int { return p.bits }

// AppendString appends the canonical "addr/len" notation of the prefix to
// dst and returns the extended slice. It never allocates when dst has
// maxStringLen bytes of spare capacity.
func (p Prefix) AppendString(dst []byte) []byte {
	dst = p.addr.AppendString(dst)
	dst = append(dst, '/')
	return strconv.AppendInt(dst, int64(p.bits), 10)
}

// String returns the prefix in canonical "addr/len" notation.
func (p Prefix) String() string {
	var b [maxStringLen]byte
	return string(p.AppendString(b[:0]))
}

// Contains reports whether the prefix contains the given address.
func (p Prefix) Contains(a Addr) bool {
	return maskAddr(a, p.bits) == p.addr
}

// ContainsPrefix reports whether p contains the whole prefix q, i.e. q is
// at least as long as p and q's base address falls within p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.bits >= p.bits && p.Contains(q.addr)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// First returns the first (lowest) address in the prefix, which is its
// masked base address.
func (p Prefix) First() Addr { return p.addr }

// Last returns the last (highest) address in the prefix.
func (p Prefix) Last() Addr {
	a := p.addr
	for bit := p.bits; bit < 128; bit++ {
		a[bit/8] |= 1 << (7 - uint(bit%8))
	}
	return a
}

// AppendBinary appends the raw 17-byte form of the prefix — the 16-byte
// network-order base address followed by one length byte — to dst and
// returns the extended slice; the record format of the binary wire
// protocol's prefix mode. It never allocates when dst has 17 bytes of
// spare capacity.
func (p Prefix) AppendBinary(dst []byte) []byte {
	dst = append(dst, p.addr[:]...)
	return append(dst, byte(p.bits))
}

// PrefixFromBinary decodes a prefix from the first 17 bytes of b, the
// inverse of AppendBinary. ok is false when b is shorter than 17 bytes or
// the length byte exceeds 128. Address bits beyond the prefix length are
// masked off, so untrusted wire input still yields a canonical prefix.
func PrefixFromBinary(b []byte) (p Prefix, ok bool) {
	if len(b) < 17 || b[16] > 128 {
		return Prefix{}, false
	}
	a, _ := AddrFromBinary(b)
	return PrefixFrom(a, int(b[16])), true
}

// MarshalText implements encoding.TextMarshaler.
func (p Prefix) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Prefix) UnmarshalText(text []byte) error {
	q, err := ParsePrefix(string(text))
	if err != nil {
		return err
	}
	*p = q
	return nil
}

// maskAddr clears all bits of a beyond the first bits bits.
func maskAddr(a Addr, bits int) Addr {
	if bits >= 128 {
		return a
	}
	fullBytes := bits / 8
	rem := bits % 8
	if rem != 0 {
		a[fullBytes] &= 0xff << (8 - uint(rem))
		fullBytes++
	}
	for i := fullBytes; i < 16; i++ {
		a[i] = 0
	}
	return a
}

// Mask returns addr restricted to its first bits bits (the rest zeroed).
func Mask(addr Addr, bits int) Addr {
	if bits < 0 || bits > 128 {
		panic(fmt.Sprintf("ip6: invalid mask length %d", bits))
	}
	return maskAddr(addr, bits)
}

// Prefix64 returns the /64 prefix ("subnet") containing the address. The
// /64 boundary conventionally separates the network identifier from the
// interface identifier (RFC 4291), and is the unit the paper uses when
// counting newly discovered subnets.
func Prefix64(a Addr) Prefix { return PrefixFrom(a, 64) }

// Prefix32 returns the /32 prefix containing the address; /32 is the
// smallest block Regional Internet Registries assign to operators and the
// paper's stratified-sampling unit.
func Prefix32(a Addr) Prefix { return PrefixFrom(a, 32) }
