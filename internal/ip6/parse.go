package ip6

import "fmt"

// ParseAddr parses an IPv6 address in any of the textual forms of RFC 4291
// §2.2: fully expanded groups, zero-compressed ("::"), and forms with an
// embedded dotted-quad IPv4 address in the low 32 bits. It also accepts the
// fixed-width 32-character hexadecimal form (no colons) used by the paper.
func ParseAddr(s string) (Addr, error) {
	return parseAddr(s)
}

// ParseAddrBytes is ParseAddr over a byte slice. It never converts the
// input to a string on the success path (errors quote the input and may
// copy it), so line-oriented readers can parse bufio slices directly. The
// input is not retained.
func ParseAddrBytes(b []byte) (Addr, error) {
	return parseAddr(b)
}

// parseAddr is the parser shared by ParseAddr and ParseAddrBytes: one
// implementation, generic over the input's byte representation, so the
// string and byte-slice entry points cannot drift apart and neither pays a
// conversion copy.
func parseAddr[T ~string | ~[]byte](s T) (Addr, error) {
	var a Addr
	if len(s) == 0 {
		return a, fmt.Errorf("ip6: empty address")
	}
	// Fixed-width hex form, e.g. "20010db8000000000000000000000001".
	if indexByte(s, ':') < 0 && indexByte(s, '.') < 0 {
		return parseHex(s)
	}
	orig := s

	// Leading "::".
	// groups is backed by a fixed stack array so the hot parse path does
	// not allocate: at most 8 groups parse before the too-many check
	// fires at 9, and the embedded-IPv4 tail adds two more at most.
	var groupsArr [10]uint16
	groups := groupsArr[:0]
	compressAt := -1 // index in groups where "::" appeared
	if len(s) >= 2 && s[0] == ':' && s[1] == ':' {
		compressAt = 0
		s = s[2:]
		if len(s) == 0 {
			return a, nil // "::"
		}
	} else if s[0] == ':' {
		return a, fmt.Errorf("ip6: %q: address cannot start with a single colon", orig)
	}

	for len(s) != 0 {
		// Embedded IPv4 must be the final piece.
		if i := indexByte(s, ':'); i < 0 && indexByte(s, '.') >= 0 {
			v4, err := parseIPv4(s)
			if err != nil {
				return a, fmt.Errorf("ip6: %q: %v", orig, err)
			}
			groups = append(groups, uint16(v4>>16), uint16(v4&0xffff))
			break
		}
		var piece T
		if i := indexByte(s, ':'); i >= 0 {
			piece, s = s[:i], s[i+1:]
			if len(s) == 0 && len(piece) != 0 {
				// trailing single colon, e.g. "1:2:"
				return a, fmt.Errorf("ip6: %q: trailing colon", orig)
			}
		} else {
			piece, s = s, s[len(s):]
		}
		if len(piece) == 0 {
			// "::" in the middle (or at the end).
			if compressAt >= 0 {
				return a, fmt.Errorf("ip6: %q: multiple \"::\"", orig)
			}
			compressAt = len(groups)
			continue
		}
		if len(piece) > 4 {
			// Could still be an embedded IPv4 in a middle position, which
			// is invalid; report group error.
			return a, fmt.Errorf("ip6: %q: group %q too long", orig, piece)
		}
		var g uint16
		for i := 0; i < len(piece); i++ {
			v, err := hexValue(piece[i])
			if err != nil {
				return a, fmt.Errorf("ip6: %q: invalid character %q", orig, piece[i])
			}
			g = g<<4 | uint16(v)
		}
		groups = append(groups, g)
		if len(groups) > 8 {
			return a, fmt.Errorf("ip6: %q: too many groups", orig)
		}
	}

	switch {
	case compressAt < 0 && len(groups) != 8:
		return a, fmt.Errorf("ip6: %q: expected 8 groups, got %d", orig, len(groups))
	case compressAt >= 0 && len(groups) >= 8:
		return a, fmt.Errorf("ip6: %q: \"::\" must compress at least one group", orig)
	}

	var out [8]uint16
	if compressAt < 0 {
		copy(out[:], groups)
	} else {
		copy(out[:], groups[:compressAt])
		tail := groups[compressAt:]
		copy(out[8-len(tail):], tail)
	}
	for i, g := range out {
		a[2*i] = byte(g >> 8)
		a[2*i+1] = byte(g)
	}
	return a, nil
}

// indexByte is bytes.IndexByte/strings.IndexByte over the parser's generic
// input. Addresses are at most ~45 bytes, so a plain scan is fine.
func indexByte[T ~string | ~[]byte](s T, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// MustParseAddr is like ParseAddr but panics on error. It is intended for
// tests and for package-level constants built from literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseHex parses the fixed-width 32-character hexadecimal form of an IPv6
// address (no colons), as used in the paper's Fig. 3 and by the dataset
// files in this repository. Shorter strings are rejected.
func ParseHex(s string) (Addr, error) {
	return parseHex(s)
}

// parseHex is ParseHex over the generic input representation.
func parseHex[T ~string | ~[]byte](s T) (Addr, error) {
	var a Addr
	if len(s) != NybbleCount {
		return a, fmt.Errorf("ip6: fixed-width form must have %d hex characters, got %d", NybbleCount, len(s))
	}
	var n Nybbles
	for i := 0; i < NybbleCount; i++ {
		v, err := hexValue(s[i])
		if err != nil {
			return a, fmt.Errorf("ip6: invalid hex character %q at position %d", s[i], i)
		}
		n[i] = v
	}
	return n.Addr(), nil
}

// MustParseHex is like ParseHex but panics on error.
func MustParseHex(s string) Addr {
	a, err := ParseHex(s)
	if err != nil {
		panic(err)
	}
	return a
}

// parseIPv4 parses a dotted-quad IPv4 address into a uint32.
func parseIPv4[T ~string | ~[]byte](s T) (uint32, error) {
	var v uint32
	octets := 0
	for len(s) > 0 {
		var p T
		if i := indexByte(s, '.'); i >= 0 {
			p, s = s[:i], s[i+1:]
			if len(s) == 0 {
				// trailing dot, e.g. "1.2.3.4."
				return 0, fmt.Errorf("embedded IPv4: expected 4 octets")
			}
		} else {
			p, s = s, s[len(s):]
		}
		octets++
		if octets > 4 {
			return 0, fmt.Errorf("embedded IPv4: expected 4 octets")
		}
		if len(p) == 0 || len(p) > 3 {
			return 0, fmt.Errorf("embedded IPv4: bad octet %q", p)
		}
		var o uint32
		for i := 0; i < len(p); i++ {
			c := p[i]
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("embedded IPv4: bad octet %q", p)
			}
			o = o*10 + uint32(c-'0')
		}
		if o > 255 {
			return 0, fmt.Errorf("embedded IPv4: octet %q out of range", p)
		}
		if len(p) > 1 && p[0] == '0' {
			return 0, fmt.Errorf("embedded IPv4: octet %q has leading zero", p)
		}
		v = v<<8 | o
	}
	if octets != 4 {
		return 0, fmt.Errorf("embedded IPv4: expected 4 octets")
	}
	return v, nil
}
