package ip6

import (
	"fmt"
	"strings"
)

// ParseAddr parses an IPv6 address in any of the textual forms of RFC 4291
// §2.2: fully expanded groups, zero-compressed ("::"), and forms with an
// embedded dotted-quad IPv4 address in the low 32 bits. It also accepts the
// fixed-width 32-character hexadecimal form (no colons) used by the paper.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	if s == "" {
		return a, fmt.Errorf("ip6: empty address")
	}
	// Fixed-width hex form, e.g. "20010db8000000000000000000000001".
	if !strings.ContainsAny(s, ":.") {
		return ParseHex(s)
	}
	orig := s

	// Leading "::".
	var groups []uint16
	compressAt := -1 // index in groups where "::" appeared
	if strings.HasPrefix(s, "::") {
		compressAt = 0
		s = s[2:]
		if s == "" {
			return a, nil // "::"
		}
	} else if strings.HasPrefix(s, ":") {
		return a, fmt.Errorf("ip6: %q: address cannot start with a single colon", orig)
	}

	for s != "" {
		// Embedded IPv4 must be the final piece.
		if i := strings.IndexByte(s, ':'); i < 0 && strings.Contains(s, ".") {
			v4, err := parseIPv4(s)
			if err != nil {
				return a, fmt.Errorf("ip6: %q: %v", orig, err)
			}
			groups = append(groups, uint16(v4>>16), uint16(v4&0xffff))
			s = ""
			break
		}
		var piece string
		if i := strings.IndexByte(s, ':'); i >= 0 {
			piece, s = s[:i], s[i+1:]
			if s == "" && piece != "" {
				// trailing single colon, e.g. "1:2:"
				return a, fmt.Errorf("ip6: %q: trailing colon", orig)
			}
		} else {
			piece, s = s, ""
		}
		if piece == "" {
			// "::" in the middle (or at the end).
			if compressAt >= 0 {
				return a, fmt.Errorf("ip6: %q: multiple \"::\"", orig)
			}
			compressAt = len(groups)
			continue
		}
		if len(piece) > 4 {
			// Could still be an embedded IPv4 in a middle position, which
			// is invalid; report group error.
			return a, fmt.Errorf("ip6: %q: group %q too long", orig, piece)
		}
		var g uint16
		for i := 0; i < len(piece); i++ {
			v, err := hexValue(piece[i])
			if err != nil {
				return a, fmt.Errorf("ip6: %q: invalid character %q", orig, piece[i])
			}
			g = g<<4 | uint16(v)
		}
		groups = append(groups, g)
		if len(groups) > 8 {
			return a, fmt.Errorf("ip6: %q: too many groups", orig)
		}
	}

	switch {
	case compressAt < 0 && len(groups) != 8:
		return a, fmt.Errorf("ip6: %q: expected 8 groups, got %d", orig, len(groups))
	case compressAt >= 0 && len(groups) >= 8:
		return a, fmt.Errorf("ip6: %q: \"::\" must compress at least one group", orig)
	}

	out := make([]uint16, 8)
	if compressAt < 0 {
		copy(out, groups)
	} else {
		copy(out, groups[:compressAt])
		tail := groups[compressAt:]
		copy(out[8-len(tail):], tail)
	}
	for i, g := range out {
		a[2*i] = byte(g >> 8)
		a[2*i+1] = byte(g)
	}
	return a, nil
}

// MustParseAddr is like ParseAddr but panics on error. It is intended for
// tests and for package-level constants built from literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseHex parses the fixed-width 32-character hexadecimal form of an IPv6
// address (no colons), as used in the paper's Fig. 3 and by the dataset
// files in this repository. Shorter strings are rejected.
func ParseHex(s string) (Addr, error) {
	var a Addr
	if len(s) != NybbleCount {
		return a, fmt.Errorf("ip6: fixed-width form must have %d hex characters, got %d", NybbleCount, len(s))
	}
	var n Nybbles
	for i := 0; i < NybbleCount; i++ {
		v, err := hexValue(s[i])
		if err != nil {
			return a, fmt.Errorf("ip6: invalid hex character %q at position %d", s[i], i)
		}
		n[i] = v
	}
	return n.Addr(), nil
}

// MustParseHex is like ParseHex but panics on error.
func MustParseHex(s string) Addr {
	a, err := ParseHex(s)
	if err != nil {
		panic(err)
	}
	return a
}

// parseIPv4 parses a dotted-quad IPv4 address into a uint32.
func parseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("embedded IPv4 %q: expected 4 octets", s)
	}
	var v uint32
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return 0, fmt.Errorf("embedded IPv4 %q: bad octet %q", s, p)
		}
		var o uint32
		for i := 0; i < len(p); i++ {
			c := p[i]
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("embedded IPv4 %q: bad octet %q", s, p)
			}
			o = o*10 + uint32(c-'0')
		}
		if o > 255 {
			return 0, fmt.Errorf("embedded IPv4 %q: octet %q out of range", s, p)
		}
		if len(p) > 1 && p[0] == '0' {
			return 0, fmt.Errorf("embedded IPv4 %q: octet %q has leading zero", s, p)
		}
		v = v<<8 | o
	}
	return v, nil
}
