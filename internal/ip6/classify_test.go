package ip6

import (
	"strings"
	"testing"
)

func TestIsEUI64(t *testing.T) {
	eui := MustParseAddr("2001:db8::0211:22ff:fe33:4455")
	if !IsEUI64(eui) {
		t.Error("expected EUI-64")
	}
	if !IsGloballyUniqueEUI64(eui) {
		t.Error("expected globally unique EUI-64 (u bit set)")
	}
	local := MustParseAddr("2001:db8::0011:22ff:fe33:4455")
	if IsGloballyUniqueEUI64(local) {
		t.Error("u bit clear should not be globally unique")
	}
	if IsEUI64(MustParseAddr("2001:db8::1")) {
		t.Error("::1 is not EUI-64")
	}
}

func TestEmbeddedIPv4(t *testing.T) {
	a := MustParseAddr("2001:db8::c000:0221") // 192.0.2.33 packed in hex
	v, ok := EmbeddedIPv4(a)
	if !ok || v != 0xc0000221 {
		t.Errorf("EmbeddedIPv4 = %x, %v", v, ok)
	}
	if _, ok := EmbeddedIPv4(MustParseAddr("2001:db8::")); ok {
		t.Error("all-zero low 32 bits should not report embedded IPv4")
	}
}

func TestEmbeddedDecimalIPv4(t *testing.T) {
	// 192.0.2.33 written as base-10 octets in 16-bit words: ...:192:0:2:33
	a := MustParseAddr("2001:db8::192:0:2:33")
	v, ok := EmbeddedDecimalIPv4(a)
	if !ok || v != (192<<24|0<<16|2<<8|33) {
		t.Errorf("EmbeddedDecimalIPv4 = %d.%d.%d.%d, ok=%v", v>>24, v>>16&0xff, v>>8&0xff, v&0xff, ok)
	}
	// Word with hex digit > 9 cannot be a decimal octet.
	if _, ok := EmbeddedDecimalIPv4(MustParseAddr("2001:db8::19a:0:2:33")); ok {
		t.Error("hex digits should not decode as decimal")
	}
	// Word exceeding 255 cannot be an octet.
	if _, ok := EmbeddedDecimalIPv4(MustParseAddr("2001:db8::999:0:2:33")); ok {
		t.Error("999 is not a valid octet")
	}
	if _, ok := EmbeddedDecimalIPv4(MustParseAddr("2001:db8::")); ok {
		t.Error("all zero should not decode")
	}
}

func TestHexWordAsDecimal(t *testing.T) {
	cases := []struct {
		word uint32
		want uint32
		ok   bool
	}{
		{0x0192, 192, true},
		{0x0000, 0, true},
		{0x0255, 255, true},
		{0x0256, 256, true}, // decodes but is >255; caller rejects
		{0x00ff, 0, false},
		{0x1a00, 0, false},
	}
	for _, c := range cases {
		got, ok := hexWordAsDecimal(c.word)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("hexWordAsDecimal(%#x) = %d, %v; want %d, %v", c.word, got, ok, c.want, c.ok)
		}
	}
}

func TestIsLowByte(t *testing.T) {
	if !IsLowByte(MustParseAddr("2001:db8::1")) {
		t.Error("::1 IID is low-byte")
	}
	if !IsLowByte(MustParseAddr("2001:db8:1:2::201")) {
		t.Error("::0201 IID is low-byte")
	}
	if IsLowByte(MustParseAddr("2001:db8::1:0:0:1")) {
		t.Error("high IID bytes set; not low-byte")
	}
}

func TestIIDLooksRandomAndClassify(t *testing.T) {
	random := MustParseAddr("2001:db8::17ec:d7eb:19b0:dfe4")
	if !IIDLooksRandom(random) {
		t.Error("expected random-looking IID")
	}
	if Classify(random) != KindRandomIID {
		t.Errorf("Classify = %v", Classify(random))
	}
	if Classify(MustParseAddr("2001:db8::0211:22ff:fe33:4455")) != KindEUI64 {
		t.Error("expected KindEUI64")
	}
	if Classify(MustParseAddr("2001:db8::1")) != KindLowByte {
		t.Error("expected KindLowByte")
	}
	if Classify(MustParseAddr("2001:db8::192:0:2:33")) != KindEmbeddedIPv4 {
		t.Error("expected KindEmbeddedIPv4")
	}
	// The paper's example of a misclassified address: structured but
	// random-looking to stateless rules.
	tricky := MustParseAddr("2001:db8:221:ffff:ffff:ffff:ffc0:122a")
	if !IIDLooksRandom(tricky) {
		t.Error("stateless heuristic should (mis)classify this as random; Entropy/IP fixes that with context")
	}
}

func TestAddrKindString(t *testing.T) {
	kinds := map[AddrKind]string{
		KindUnknown:      "unknown",
		KindEUI64:        "eui64",
		KindLowByte:      "lowbyte",
		KindEmbeddedIPv4: "embedded-ipv4",
		KindRandomIID:    "random-iid",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestAnonymize(t *testing.T) {
	a := MustParseAddr("2a02:1234:5678:9abc::1")
	anon := Anonymize(a, 0)
	if !DocumentationPrefix.Contains(anon) {
		t.Errorf("anonymized address %v not in documentation prefix", anon)
	}
	// Low bits preserved.
	if anon.Field(8, 16) != a.Field(8, 16) || anon.Field(24, 8) != a.Field(24, 8) {
		t.Error("anonymization should preserve bits beyond /32")
	}
	anon1 := Anonymize(a, 1)
	if anon1.Nybble(0) == anon.Nybble(0) {
		t.Error("variant should change the first nybble")
	}
}

func TestAnonymizeSet(t *testing.T) {
	addrs := []Addr{
		MustParseAddr("2a02:1:1::1"),
		MustParseAddr("2a02:1:1::2"),
		MustParseAddr("2a03:2:2::1"),
	}
	out := AnonymizeSet(addrs)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	// Addresses from the same original /32 share an anonymized /32; a
	// different original /32 gets a different one.
	if Prefix32(out[0]) != Prefix32(out[1]) {
		t.Error("same /32 should anonymize identically")
	}
	if Prefix32(out[0]) == Prefix32(out[2]) {
		t.Error("different /32s should anonymize differently")
	}
}

func TestFormatFixedWidth(t *testing.T) {
	addrs := []Addr{MustParseAddr("2001:db8::1"), MustParseAddr("2001:db8::2")}
	s := FormatFixedWidth(addrs)
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "20010db8000000000000000000000001" {
		t.Errorf("line 0 = %q", lines[0])
	}
	for _, l := range lines {
		if len(l) != NybbleCount {
			t.Errorf("line %q has length %d", l, len(l))
		}
	}
}

func TestValidateNybbles(t *testing.T) {
	var n Nybbles
	if err := ValidateNybbles(n); err != nil {
		t.Errorf("zero nybbles should be valid: %v", err)
	}
	n[5] = 0x1f
	if err := ValidateNybbles(n); err == nil {
		t.Error("expected error for out-of-range nybble")
	}
}
