package ip6

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestParseAddrCanonicalForms(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String() output
	}{
		{"::", "::"},
		{"::1", "::1"},
		{"1::", "1::"},
		{"2001:db8::1", "2001:db8::1"},
		{"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
		{"2001:DB8::A", "2001:db8::a"},
		{"fe80::1%", ""}, // zone not supported
		{"2001:db8:0:0:1:0:0:1", "2001:db8::1:0:0:1"},
		{"2001:db8::1:0:0:1", "2001:db8::1:0:0:1"},
		{"::ffff:192.0.2.33", "::ffff:192.0.2.33"},
		{"64:ff9b::192.0.2.1", "64:ff9b::c000:201"},
		{"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"},
		{"0:0:0:0:0:0:0:0", "::"},
		{"2001:db8::0:1", "2001:db8::1"},
		{"20010db8000000000000000000000001", "2001:db8::1"},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseAddr(%q): expected error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAddr(%q): unexpected error: %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("ParseAddr(%q).String() = %q, want %q", c.in, got.String(), c.want)
		}
	}
}

func TestParseAddrRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		":",
		":::",
		"1::2::3",
		"1:2:3:4:5:6:7",
		"1:2:3:4:5:6:7:8:9",
		"12345::",
		"g::1",
		"1:2:3:4:5:6:7:8::",
		"::1:2:3:4:5:6:7:8",
		"1:2:3:4:5:6:1.2.3.4.5",
		"1:2:3:4:5:6:1.2.3",
		"1:2:3:4:5:6:256.1.1.1",
		"1:2:3:4:5:6:01.1.1.1",
		"2001:db8::1:",
		"20010db80000000000000000000001",     // 30 chars
		"20010db8000000000000000000000001ff", // 34 chars
		"20010db800000000000000000000000g",   // bad hex
	}
	for _, s := range bad {
		if a, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q): expected error, got %v", s, a)
		}
	}
}

func TestParseAddrMatchesNetip(t *testing.T) {
	// Cross-check a variety of valid forms against the standard library.
	cases := []string{
		"::", "::1", "1::", "2001:db8::1", "fe80::dead:beef",
		"2001:db8:221:ffff:ffff:ffff:ffc0:122a",
		"::ffff:10.1.2.3", "1:2:3:4:5:6:7:8", "abcd:ef01:2345:6789:abcd:ef01:2345:6789",
		"2001:db8:0:0:8:800:200c:417a",
	}
	for _, s := range cases {
		got, err := ParseAddr(s)
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", s, err)
		}
		want := netip.MustParseAddr(s)
		if got.Bytes() != want.As16() {
			t.Errorf("ParseAddr(%q) = %x, netip = %x", s, got.Bytes(), want.As16())
		}
		if got.String() != want.String() {
			t.Errorf("String mismatch for %q: got %q, netip %q", s, got.String(), want.String())
		}
	}
}

func TestStringMatchesNetipProperty(t *testing.T) {
	// Property: for arbitrary 16-byte values, our canonical form equals
	// netip's canonical form and round-trips through ParseAddr.
	f := func(b [16]byte) bool {
		a := AddrFrom16(b)
		n := netip.AddrFrom16(b)
		if a.String() != n.String() {
			t.Logf("canonical mismatch: %q vs %q", a.String(), n.String())
			return false
		}
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHexRoundTripProperty(t *testing.T) {
	f := func(b [16]byte) bool {
		a := AddrFrom16(b)
		back, err := ParseHex(a.Hex())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestExpanded(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	if got, want := a.Expanded(), "2001:0db8:0000:0000:0000:0000:0000:0001"; got != want {
		t.Errorf("Expanded() = %q, want %q", got, want)
	}
	if len(a.Hex()) != 32 {
		t.Errorf("Hex() length = %d, want 32", len(a.Hex()))
	}
	if got, want := a.Hex(), "20010db8000000000000000000000001"; got != want {
		t.Errorf("Hex() = %q, want %q", got, want)
	}
}

func TestNybbleAccessors(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	wantFirst := []byte{2, 0, 0, 1, 0, 0xd, 0xb, 8}
	for i, w := range wantFirst {
		if got := a.Nybble(i); got != w {
			t.Errorf("Nybble(%d) = %x, want %x", i, got, w)
		}
	}
	if got := a.Nybble(31); got != 1 {
		t.Errorf("Nybble(31) = %x, want 1", got)
	}
	b := a.SetNybble(0, 3)
	if b.String() != "3001:db8::1" {
		t.Errorf("SetNybble(0,3) = %v", b)
	}
	if a.String() != "2001:db8::1" {
		t.Errorf("SetNybble mutated receiver: %v", a)
	}
}

func TestNybblesRoundTripProperty(t *testing.T) {
	f := func(b [16]byte) bool {
		a := AddrFrom16(b)
		return a.Nybbles().Addr() == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFieldAccessors(t *testing.T) {
	a := MustParseAddr("2001:db8:1234:5678:9abc:def0:1122:3344")
	if got := a.Field(0, 8); got != 0x20010db8 {
		t.Errorf("Field(0,8) = %x", got)
	}
	if got := a.Field(8, 4); got != 0x1234 {
		t.Errorf("Field(8,4) = %x", got)
	}
	if got := a.Field(16, 16); got != 0x9abcdef011223344 {
		t.Errorf("Field(16,16) = %x", got)
	}
	b := a.SetField(8, 4, 0xffff)
	if got := b.Field(8, 4); got != 0xffff {
		t.Errorf("SetField/Field = %x", got)
	}
	// Unchanged elsewhere.
	if b.Field(0, 8) != 0x20010db8 || b.Field(12, 4) != 0x5678 {
		t.Errorf("SetField modified other nybbles: %v", b)
	}
}

func TestFieldPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width > 16")
		}
	}()
	var a Addr
	a.Field(0, 17)
}

func TestFieldSetFieldRoundTripProperty(t *testing.T) {
	f := func(b [16]byte, start, width uint8, v uint64) bool {
		s := int(start) % 17
		w := int(width) % 17
		if s+w > NybbleCount {
			w = NybbleCount - s
		}
		a := AddrFrom16(b)
		mask := uint64(0)
		if w > 0 {
			if w == 16 {
				mask = ^uint64(0)
			} else {
				mask = (uint64(1) << (4 * uint(w))) - 1
			}
		}
		got := a.SetField(s, w, v).Field(s, w)
		return got == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUint64Halves(t *testing.T) {
	a := MustParseAddr("2001:db8:1234:5678:9abc:def0:1122:3344")
	hi, lo := a.Uint64s()
	if hi != 0x20010db812345678 || lo != 0x9abcdef011223344 {
		t.Errorf("Uint64s() = %x, %x", hi, lo)
	}
	if AddrFromUint64s(hi, lo) != a {
		t.Errorf("AddrFromUint64s round trip failed")
	}
}

func TestCompareAndLess(t *testing.T) {
	a := MustParseAddr("2001:db8::1")
	b := MustParseAddr("2001:db8::2")
	if !(a.Less(b) && !b.Less(a) && !a.Less(a)) {
		t.Error("Less ordering wrong")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare wrong")
	}
}

func TestMarshalText(t *testing.T) {
	a := MustParseAddr("2001:db8::42")
	text, err := a.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Addr
	if err := back.UnmarshalText(text); err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Errorf("text round trip: %v != %v", back, a)
	}
	if err := back.UnmarshalText([]byte("nonsense")); err == nil {
		t.Error("expected error unmarshaling nonsense")
	}
}

func TestAddrFromBytes(t *testing.T) {
	if _, err := AddrFromBytes(make([]byte, 15)); err == nil {
		t.Error("expected error for 15 bytes")
	}
	b := make([]byte, 16)
	b[15] = 1
	a, err := AddrFromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "::1" {
		t.Errorf("got %v", a)
	}
}

func TestIsZero(t *testing.T) {
	var a Addr
	if !a.IsZero() {
		t.Error("zero Addr should be IsZero")
	}
	if MustParseAddr("::1").IsZero() {
		t.Error("::1 should not be IsZero")
	}
}

func BenchmarkParseAddr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseAddr("2001:db8:221:ffff:ffff:ffff:ffc0:122a"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddrString(b *testing.B) {
	a := MustParseAddr("2001:db8:221:ffff:ffff:ffff:ffc0:122a")
	for i := 0; i < b.N; i++ {
		_ = a.String()
	}
}

func BenchmarkNybbles(b *testing.B) {
	a := MustParseAddr("2001:db8:221:ffff:ffff:ffff:ffc0:122a")
	for i := 0; i < b.N; i++ {
		_ = a.Nybbles()
	}
}
