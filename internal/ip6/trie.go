package ip6

// PrefixCounter counts the number of distinct prefixes observed at every
// 4-bit (nybble-aligned) prefix length. It is the data structure behind the
// Aggregate Count Ratio plots: inserting every address of a dataset yields,
// for each nybble depth d (1..32), the number of distinct 4·d-bit prefixes.
//
// The implementation is a 16-way (nybble) trie. Memory is proportional to
// the number of distinct prefixes at all depths, which for the datasets in
// this repository is far smaller than the number of addresses.
type PrefixCounter struct {
	root   *trieNode
	counts [NybbleCount + 1]int // counts[d] = distinct prefixes of d nybbles; counts[0] is 1 if any address was added
	addrs  int
}

type trieNode struct {
	children [16]*trieNode
}

// NewPrefixCounter returns an empty counter.
func NewPrefixCounter() *PrefixCounter {
	return &PrefixCounter{root: &trieNode{}}
}

// Add inserts an address into the counter.
func (c *PrefixCounter) Add(a Addr) {
	if c.root == nil {
		c.root = &trieNode{}
	}
	c.addrs++
	if c.addrs == 1 {
		c.counts[0] = 1
	}
	n := c.root
	nyb := a.Nybbles()
	for d := 0; d < NybbleCount; d++ {
		v := nyb[d]
		child := n.children[v]
		if child == nil {
			child = &trieNode{}
			n.children[v] = child
			c.counts[d+1]++
		}
		n = child
	}
}

// AddAll inserts every address in the slice.
func (c *PrefixCounter) AddAll(addrs []Addr) {
	for _, a := range addrs {
		c.Add(a)
	}
}

// Addrs returns the number of addresses added (with multiplicity).
func (c *PrefixCounter) Addrs() int { return c.addrs }

// Count returns the number of distinct prefixes of length d nybbles
// (4·d bits) observed. Count(0) is 1 when any address has been added.
func (c *PrefixCounter) Count(d int) int {
	if d < 0 || d > NybbleCount {
		return 0
	}
	return c.counts[d]
}

// Counts returns the distinct-prefix count for every nybble depth 0..32.
func (c *PrefixCounter) Counts() [NybbleCount + 1]int { return c.counts }
