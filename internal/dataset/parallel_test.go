package dataset

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"entropyip/internal/ip6"
)

// bigInput synthesizes a dataset file body with comments, blank lines,
// trailing annotations, prefix notation and duplicates — every shape Read
// accepts — spanning several parser chunks.
func bigInput(lines int) string {
	var sb strings.Builder
	sb.WriteString("# synthetic dataset\n\n")
	for i := 0; i < lines; i++ {
		switch i % 5 {
		case 0:
			fmt.Fprintf(&sb, "2001:db8:%x::%x\n", i%0xffff, i)
		case 1:
			fmt.Fprintf(&sb, "2001:db8:%x::%x  # trailing comment\n", i%0xffff, i)
		case 2:
			fmt.Fprintf(&sb, "2001:db8:%x::%x/64\n", i%0xffff, i)
		case 3:
			sb.WriteString("2001:db8::dead:beef\n") // duplicate every 5 lines
		default:
			fmt.Fprintf(&sb, "20010db8%024x\n", i)
		}
	}
	return sb.String()
}

// TestReadWorkersEquivalent asserts the parallel parser is observationally
// identical to the sequential one: same addresses, same order, same dedup.
func TestReadWorkersEquivalent(t *testing.T) {
	input := bigInput(20_000) // ~5 chunks of 4096 lines
	want, err := ReadWorkers("seq", strings.NewReader(input), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := ReadWorkers("par", strings.NewReader(input), workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: %d addresses, want %d", workers, got.Len(), want.Len())
		}
		for i := range want.Addrs {
			if got.Addrs[i] != want.Addrs[i] {
				t.Fatalf("workers=%d: address %d = %v, want %v", workers, i, got.Addrs[i], want.Addrs[i])
			}
		}
	}
}

// TestReadWorkersErrorLine asserts the parallel parser reports the same
// first malformed line a sequential parse reports, even when the bad line
// sits in a middle chunk and later chunks also contain errors.
func TestReadWorkersErrorLine(t *testing.T) {
	var sb strings.Builder
	badLine := 0
	lineNo := 0
	for i := 0; i < 15_000; i++ {
		lineNo++
		if i == 9000 {
			sb.WriteString("not-an-address\n")
			badLine = lineNo
			continue
		}
		if i == 14_000 {
			sb.WriteString("also!bad\n")
			continue
		}
		fmt.Fprintf(&sb, "2001:db8::%x\n", i)
	}
	wantFrag := fmt.Sprintf("line %d", badLine)
	for _, workers := range []int{1, 2, 8, 0} {
		_, err := ReadWorkers("bad", strings.NewReader(sb.String()), workers)
		if err == nil || !strings.Contains(err.Error(), wantFrag) {
			t.Fatalf("workers=%d: err = %v, want %s", workers, err, wantFrag)
		}
	}
}

func TestReadWorkersEmpty(t *testing.T) {
	d, err := ReadWorkers("empty", strings.NewReader("# only comments\n\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d, want 0", d.Len())
	}
}

// TestSplitAndStratifiedSampleConcurrent is the race regression test for
// the sampling entry points the serve training pool calls concurrently:
// each call must derive its own rand state from the seed, never touching
// shared state, and produce the same sample for the same seed.
func TestSplitAndStratifiedSampleConcurrent(t *testing.T) {
	addrs := make([]ip6.Addr, 0, 4000)
	for i := 0; i < 4000; i++ {
		addrs = append(addrs, ip6.MustParseAddr(fmt.Sprintf("2001:db8:%x::%x", i%7, i)))
	}
	d := New("conc", addrs)
	wantTrain, _ := d.Split(1000, 42)
	wantSample := d.StratifiedSample(100, 42)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			train, test := d.Split(1000, 42)
			if len(train) != len(wantTrain) || len(test) != d.Len()-len(wantTrain) {
				errs <- "Split sizes changed under concurrency"
				return
			}
			for i := range train {
				if train[i] != wantTrain[i] {
					errs <- "Split sample not reproducible for a fixed seed"
					return
				}
			}
			sample := d.StratifiedSample(100, 42)
			if len(sample) != len(wantSample) {
				errs <- "StratifiedSample size changed under concurrency"
				return
			}
			for i := range sample {
				if sample[i] != wantSample[i] {
					errs <- "StratifiedSample not reproducible for a fixed seed"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
