package dataset

import (
	"net/netip"
	"strings"
	"testing"

	"entropyip/internal/ip6"
)

// FuzzParseLineBytes pins three identities on the line parser: the byte
// and string entry points agree exactly; every parsed address survives a
// format→parse round trip through the append APIs; and net/netip agrees
// on the colon-form tokens. The seeds under
// testdata/fuzz/FuzzParseLineBytes run on every plain `go test`; CI adds
// a short coverage-guided run.
func FuzzParseLineBytes(f *testing.F) {
	for _, seed := range []string{
		"", "# comment", "   ", "2001:db8::1", "  2001:db8::1  ",
		"2001:db8::1 # trailing comment", "2001:db8::/32", "2001:db8::1/128",
		"20010db8000000000000000000000001", "::ffff:192.0.2.1",
		"2001:db8::1\ttab comment", "not-an-address", "/64", "#",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		a, ok, err := ParseLineBytes(raw)
		sa, sok, serr := ParseLine(string(raw))
		if a != sa || ok != sok || (err == nil) != (serr == nil) {
			t.Fatalf("ParseLineBytes(%q) = (%v, %v, %v) but ParseLine = (%v, %v, %v)",
				raw, a, ok, err, sa, sok, serr)
		}
		if err != nil && serr != nil && err.Error() != serr.Error() {
			t.Fatalf("ParseLineBytes(%q) error %q but ParseLine error %q", raw, err, serr)
		}
		if (err != nil) && ok {
			t.Fatalf("ParseLineBytes(%q) reported ok alongside error %v", raw, err)
		}
		if !ok {
			return
		}
		// Round trip: the canonical append form must parse back to the
		// same address, both as a bare line and with decorations the line
		// format strips.
		line := a.AppendString(make([]byte, 0, 64))
		got, gok, gerr := ParseLineBytes(line)
		if gerr != nil || !gok || got != a {
			t.Fatalf("round trip of %q via %q = (%v, %v, %v)", raw, line, got, gok, gerr)
		}
		decorated := append([]byte("  "), line...)
		decorated = append(decorated, []byte("/64 # seen live")...)
		got, gok, gerr = ParseLineBytes(decorated)
		if gerr != nil || !gok || got != a {
			t.Fatalf("decorated round trip of %q via %q = (%v, %v, %v)", raw, decorated, got, gok, gerr)
		}
		// netip as the oracle for colon-form tokens (the fixed-width
		// 32-hex dataset form is this repository's own).
		token := string(raw)
		token = strings.TrimSpace(token)
		if i := strings.IndexAny(token, " \t"); i >= 0 {
			token = token[:i]
		}
		if i := strings.IndexByte(token, '/'); i >= 0 {
			token = token[:i]
		}
		if strings.IndexByte(token, ':') >= 0 {
			na, nerr := netip.ParseAddr(token)
			if nerr != nil {
				t.Fatalf("ParseLineBytes(%q) accepted %q but netip rejects it: %v", raw, token, nerr)
			}
			if na.As16() != a.Bytes() {
				t.Fatalf("ParseLineBytes(%q) = %x, netip parses %x", raw, a.Bytes(), na.As16())
			}
		}
	})
}

// TestParseLineBytesZeroAlloc pins the ingest hot path's allocation
// contract: parsing a well-formed line from a reused buffer is
// allocation-free.
func TestParseLineBytesZeroAlloc(t *testing.T) {
	lines := [][]byte{
		[]byte("2001:db8::1"),
		[]byte("  2001:db8:0:1:1:1:1:1   # comment"),
		[]byte("20010db8000000000000000000000001"),
		[]byte("fe80::ff:fe00:1/64"),
		[]byte("# comment"),
		[]byte(""),
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := ParseLineBytes(lines[i%len(lines)]); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Fatalf("ParseLineBytes allocates %.1f times per line, want 0", n)
	}
}

// TestParseLineBytesMatchesOldSemantics spot-checks the exact cases the
// old string implementation defined (trim, comments, prefix notation,
// tabs) so the byte rewrite cannot drift.
func TestParseLineBytesMatchesOldSemantics(t *testing.T) {
	want := ip6.MustParseAddr("2001:db8::1")
	cases := []struct {
		in  string
		ok  bool
		err bool
	}{
		{"2001:db8::1", true, false},
		{"\t 2001:db8::1 \r", true, false},
		{"2001:db8::1 trailing junk ignored", true, false},
		{"2001:db8::1/48", true, false},
		{"2001:db8::1\t# tab comment", true, false},
		{"", false, false},
		{"   ", false, false},
		{"# 2001:db8::1", false, false},
		{"nonsense", false, true},
		{"2001:db8::1garbage", false, true},
	}
	for _, c := range cases {
		a, ok, err := ParseLineBytes([]byte(c.in))
		if ok != c.ok || (err != nil) != c.err {
			t.Fatalf("ParseLineBytes(%q) = (%v, %v, %v)", c.in, a, ok, err)
		}
		if ok && a != want {
			t.Fatalf("ParseLineBytes(%q) = %v, want %v", c.in, a, want)
		}
	}
}
