// Package dataset handles on-disk IPv6 address datasets and the sampling
// conventions of the paper: files with one address per line (any textual
// form, '#' comments allowed), deduplication, train/test splitting, and the
// stratified per-/32 sampling used to build the aggregate training sets
// (§3, §5.1).
package dataset

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"

	"entropyip/internal/ip6"
	"entropyip/internal/parallel"
	"entropyip/internal/stats"
)

// Dataset is a named collection of unique IPv6 addresses.
type Dataset struct {
	// Name identifies the dataset (e.g. "S1").
	Name string
	// Addrs holds the unique addresses in load or generation order.
	Addrs []ip6.Addr
}

// New builds a dataset from addresses, removing duplicates while keeping
// first-occurrence order.
func New(name string, addrs []ip6.Addr) *Dataset {
	return &Dataset{Name: name, Addrs: ip6.Dedup(addrs)}
}

// Len returns the number of unique addresses.
func (d *Dataset) Len() int { return len(d.Addrs) }

// Set returns the addresses as a membership set.
func (d *Dataset) Set() *ip6.Set {
	s := ip6.NewSet(len(d.Addrs))
	s.AddAll(d.Addrs)
	return s
}

// Prefixes returns the distinct prefixes of the given length covering the
// dataset.
func (d *Dataset) Prefixes(bits int) *ip6.PrefixSet {
	return d.Set().Prefixes(bits)
}

// Split partitions the dataset into a training sample of n addresses and
// the remaining test set, using the given seed (the paper's methodology:
// train on a random 1K sample, test on the rest).
//
// Every call derives a private *rand.Rand from the seed — never the
// package-global math/rand state — so concurrent Split and
// StratifiedSample calls (e.g. from eipserved's training worker pool) are
// race-free and each seed reproduces its sample exactly.
func (d *Dataset) Split(n int, seed int64) (train, test []ip6.Addr) {
	return stats.SplitTrainTest(stats.RNG(seed), d.Addrs, n)
}

// StratifiedSample selects up to perPrefix addresses from every /32 prefix,
// the paper's guard against over-representing large networks in aggregate
// datasets. Like Split, it uses a private seed-derived *rand.Rand, making
// concurrent calls race-free.
func (d *Dataset) StratifiedSample(perPrefix int, seed int64) []ip6.Addr {
	return stats.StratifiedSample(stats.RNG(seed), d.Addrs, func(a ip6.Addr) string {
		return ip6.Prefix32(a).String()
	}, perPrefix)
}

// Read parses addresses from r, one per line. Empty lines and lines
// starting with '#' are skipped. Lines may be in any form accepted by
// ip6.ParseAddr, including the fixed-width 32-hex-character form.
// Duplicates are removed.
//
// Reading streams: lines are scanned in chunks handed to parser workers
// (all cores by default), so input I/O overlaps address decoding. The
// resulting dataset — order, dedup, and the error reported for malformed
// input — is identical to a sequential line-by-line parse; use
// ReadWorkers to bound (or disable, with workers = 1) the concurrency.
func Read(name string, r io.Reader) (*Dataset, error) {
	return ReadWorkers(name, r, 0)
}

// readChunkLines is the number of input lines handed to a parser worker at
// a time: large enough to amortize scheduling, small enough to keep all
// workers busy on medium files.
const readChunkLines = 4096

// MaxLineBytes bounds the length of one input line everywhere NDJSON and
// dataset text flows into the system (dataset.Read, ingest.TailFile, the
// /observe handler): longer lines are an input error, never an unbounded
// buffer. It matches the historical bufio.Scanner cap.
const MaxLineBytes = 1 << 20

// readChunk is a batch of raw input lines starting at 1-based line number
// firstLine. The lines live concatenated in one chunk-owned buffer (line i
// is data[offs[i]:offs[i+1]]), so handing a chunk to a worker costs one
// buffer, not one string per line.
type readChunk struct {
	seq       int
	firstLine int
	data      []byte
	offs      []int
}

// readResult is the parse of one chunk: its addresses in input order, or
// the chunk's first error and the line it occurred on.
type readResult struct {
	addrs   []ip6.Addr
	err     error
	errLine int
}

// ReadWorkers is Read with bounded concurrency (<= 0 selects GOMAXPROCS;
// 1 parses sequentially on the calling goroutine).
func ReadWorkers(name string, r io.Reader, workers int) (*Dataset, error) {
	workers = parallel.Workers(workers)
	if workers <= 1 {
		return readSequential(name, r)
	}

	chunks := make(chan readChunk, workers)
	var (
		mu      sync.Mutex
		results []readResult
		failed  bool // any chunk failed: the scanner may stop early
		wg      sync.WaitGroup
	)
	store := func(seq int, res readResult) {
		mu.Lock()
		for len(results) <= seq {
			results = append(results, readResult{})
		}
		results[seq] = res
		if res.err != nil {
			failed = true
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range chunks {
				res := readResult{addrs: make([]ip6.Addr, 0, len(c.offs)-1)}
				for i := 0; i+1 < len(c.offs); i++ {
					a, ok, err := ParseLineBytes(c.data[c.offs[i]:c.offs[i+1]])
					if err != nil {
						res.err = err
						res.errLine = c.firstLine + i
						break
					}
					if ok {
						res.addrs = append(res.addrs, a)
					}
				}
				store(c.seq, res)
			}
		}()
	}

	// Scan lines into chunks on this goroutine while the workers decode.
	// The scanner's token buffer is reused per line, so each line is
	// copied once into the chunk's own buffer — one allocation per chunk
	// instead of one string per line. Chunks are produced in line order,
	// so once any chunk has failed, every unproduced line is beyond the
	// failure and scanning may stop: the earliest error among the
	// produced chunks is exactly the error a sequential parse would have
	// hit first.
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	var (
		data      = make([]byte, 0, 64*1024)
		offs      = make([]int, 1, readChunkLines+1)
		seq       = 0
		lineNo    = 0
		chunkFrom = 1
	)
	flush := func() {
		if len(offs) <= 1 {
			return
		}
		chunks <- readChunk{seq: seq, firstLine: chunkFrom, data: data, offs: offs}
		seq++
		data = make([]byte, 0, cap(data))
		offs = make([]int, 1, readChunkLines+1)
		chunkFrom = lineNo + 1
	}
	for scanner.Scan() {
		lineNo++
		data = append(data, scanner.Bytes()...)
		offs = append(offs, len(data))
		if len(offs) > readChunkLines {
			flush()
			mu.Lock()
			stop := failed
			mu.Unlock()
			if stop {
				break
			}
		}
	}
	flush()
	close(chunks)
	wg.Wait()

	// Parse errors come from lines scanned before any I/O failure, so they
	// take precedence over scanner.Err — the order a sequential parse
	// would report them in.
	var addrs []ip6.Addr
	for _, res := range results {
		if res.err != nil {
			return nil, fmt.Errorf("dataset %s: line %d: %w", name, res.errLine, res.err)
		}
		addrs = append(addrs, res.addrs...)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset %s: %w", name, err)
	}
	return New(name, addrs), nil
}

// ParseLine normalizes and parses one line of an address file; see
// ParseLineBytes, which it wraps. Callers scanning byte-oriented input
// should use ParseLineBytes directly and skip the string conversion.
func ParseLine(raw string) (a ip6.Addr, ok bool, err error) {
	return ParseLineBytes([]byte(raw))
}

// ParseLineBytes normalizes and parses one line of an address file:
// whitespace is trimmed, trailing comments and /len prefix notation are
// dropped, and the remainder is parsed with ip6.ParseAddrBytes. ok is
// false for blank and comment ('#') lines. It is the single line-format
// definition shared by Read, streaming ingest (tail mode) and the
// /observe handler; it does not allocate and does not retain raw, so
// bufio.Scanner/Reader slices can be passed straight in.
func ParseLineBytes(raw []byte) (a ip6.Addr, ok bool, err error) {
	line := bytes.TrimSpace(raw)
	if len(line) == 0 || line[0] == '#' {
		return ip6.Addr{}, false, nil
	}
	// Allow trailing comments and prefix notation (the /len is ignored).
	if i := bytes.IndexAny(line, " \t"); i >= 0 {
		line = line[:i]
	}
	if i := bytes.IndexByte(line, '/'); i >= 0 {
		line = line[:i]
	}
	a, err = ip6.ParseAddrBytes(line)
	if err != nil {
		return ip6.Addr{}, false, err
	}
	return a, true, nil
}

// readSequential is the single-goroutine parse path. It parses the
// scanner's reused token buffer in place, so steady state allocates only
// for the collected addresses.
func readSequential(name string, r io.Reader) (*Dataset, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	var addrs []ip6.Addr
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		a, ok, err := ParseLineBytes(scanner.Bytes())
		if err != nil {
			return nil, fmt.Errorf("dataset %s: line %d: %w", name, lineNo, err)
		}
		if ok {
			addrs = append(addrs, a)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset %s: %w", name, err)
	}
	return New(name, addrs), nil
}

// Write writes the dataset to w in canonical form, one address per line,
// preceded by a comment header.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dataset %s: %d unique IPv6 addresses\n", d.Name, len(d.Addrs)); err != nil {
		return err
	}
	line := make([]byte, 0, 64)
	for _, a := range d.Addrs {
		line = a.AppendString(line[:0])
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFile reads a dataset from the named file; the dataset name is the
// file path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(path, f)
}

// SaveFile writes the dataset to the named file, creating or truncating it.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Anonymized returns a copy of the dataset with every address rewritten
// into the documentation prefix, preserving per-/32 distinctions, as the
// paper does when presenting results.
func (d *Dataset) Anonymized() *Dataset {
	return New(d.Name+"-anon", ip6.AnonymizeSet(d.Addrs))
}
