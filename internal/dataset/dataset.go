// Package dataset handles on-disk IPv6 address datasets and the sampling
// conventions of the paper: files with one address per line (any textual
// form, '#' comments allowed), deduplication, train/test splitting, and the
// stratified per-/32 sampling used to build the aggregate training sets
// (§3, §5.1).
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"entropyip/internal/ip6"
	"entropyip/internal/stats"
)

// Dataset is a named collection of unique IPv6 addresses.
type Dataset struct {
	// Name identifies the dataset (e.g. "S1").
	Name string
	// Addrs holds the unique addresses in load or generation order.
	Addrs []ip6.Addr
}

// New builds a dataset from addresses, removing duplicates while keeping
// first-occurrence order.
func New(name string, addrs []ip6.Addr) *Dataset {
	return &Dataset{Name: name, Addrs: ip6.Dedup(addrs)}
}

// Len returns the number of unique addresses.
func (d *Dataset) Len() int { return len(d.Addrs) }

// Set returns the addresses as a membership set.
func (d *Dataset) Set() *ip6.Set {
	s := ip6.NewSet(len(d.Addrs))
	s.AddAll(d.Addrs)
	return s
}

// Prefixes returns the distinct prefixes of the given length covering the
// dataset.
func (d *Dataset) Prefixes(bits int) *ip6.PrefixSet {
	return d.Set().Prefixes(bits)
}

// Split partitions the dataset into a training sample of n addresses and
// the remaining test set, using the given seed (the paper's methodology:
// train on a random 1K sample, test on the rest).
func (d *Dataset) Split(n int, seed int64) (train, test []ip6.Addr) {
	return stats.SplitTrainTest(stats.RNG(seed), d.Addrs, n)
}

// StratifiedSample selects up to perPrefix addresses from every /32 prefix,
// the paper's guard against over-representing large networks in aggregate
// datasets.
func (d *Dataset) StratifiedSample(perPrefix int, seed int64) []ip6.Addr {
	return stats.StratifiedSample(stats.RNG(seed), d.Addrs, func(a ip6.Addr) string {
		return ip6.Prefix32(a).String()
	}, perPrefix)
}

// Read parses addresses from r, one per line. Empty lines and lines
// starting with '#' are skipped. Lines may be in any form accepted by
// ip6.ParseAddr, including the fixed-width 32-hex-character form.
// Duplicates are removed.
func Read(name string, r io.Reader) (*Dataset, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var addrs []ip6.Addr
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Allow trailing comments and prefix notation (the /len is ignored).
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		if i := strings.IndexByte(line, '/'); i >= 0 {
			line = line[:i]
		}
		a, err := ip6.ParseAddr(line)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: line %d: %w", name, lineNo, err)
		}
		addrs = append(addrs, a)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset %s: %w", name, err)
	}
	return New(name, addrs), nil
}

// Write writes the dataset to w in canonical form, one address per line,
// preceded by a comment header.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dataset %s: %d unique IPv6 addresses\n", d.Name, len(d.Addrs)); err != nil {
		return err
	}
	for _, a := range d.Addrs {
		if _, err := bw.WriteString(a.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFile reads a dataset from the named file; the dataset name is the
// file path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(path, f)
}

// SaveFile writes the dataset to the named file, creating or truncating it.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Anonymized returns a copy of the dataset with every address rewritten
// into the documentation prefix, preserving per-/32 distinctions, as the
// paper does when presenting results.
func (d *Dataset) Anonymized() *Dataset {
	return New(d.Name+"-anon", ip6.AnonymizeSet(d.Addrs))
}
