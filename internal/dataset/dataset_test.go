package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"entropyip/internal/ip6"
)

func TestNewDeduplicates(t *testing.T) {
	a := ip6.MustParseAddr("2001:db8::1")
	b := ip6.MustParseAddr("2001:db8::2")
	d := New("x", []ip6.Addr{a, b, a, a})
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if !d.Set().Contains(a) || !d.Set().Contains(b) {
		t.Error("Set membership wrong")
	}
	if d.Prefixes(64).Len() != 1 {
		t.Errorf("Prefixes(64) = %d", d.Prefixes(64).Len())
	}
}

func TestReadVariousForms(t *testing.T) {
	input := `
# comment
2001:db8::1
2001:0db8:0000:0000:0000:0000:0000:0002
20010db8000000000000000000000003
2001:db8::4/64
2001:db8::5    # trailing comment
2001:db8::1
`
	d, err := Read("test", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
	for i := 1; i <= 5; i++ {
		if !d.Set().Contains(ip6.MustParseAddr("2001:db8::" + string(rune('0'+i)))) {
			t.Errorf("missing ::%d", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read("bad", strings.NewReader("2001:db8::1\nnot-an-address\n")); err == nil {
		t.Error("expected parse error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig := New("rt", []ip6.Addr{
		ip6.MustParseAddr("2001:db8::1"),
		ip6.MustParseAddr("2001:db8:ffff::42"),
		ip6.MustParseAddr("::ffff:192.0.2.33"),
	})
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip lost addresses: %d vs %d", back.Len(), orig.Len())
	}
	for i := range orig.Addrs {
		if back.Addrs[i] != orig.Addrs[i] {
			t.Errorf("address %d changed: %v vs %v", i, back.Addrs[i], orig.Addrs[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "addrs.txt")
	d := New("file", []ip6.Addr{ip6.MustParseAddr("2001:db8::1"), ip6.MustParseAddr("2001:db8::2")})
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("Len = %d", back.Len())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file should error")
	}
	if err := d.SaveFile(filepath.Join(dir, "nodir", "x.txt")); err == nil {
		t.Error("unwritable path should error")
	}
	// Content is human-readable with a header.
	raw, _ := os.ReadFile(path)
	if !strings.HasPrefix(string(raw), "# dataset file: 2 unique") {
		t.Errorf("unexpected header: %q", string(raw[:40]))
	}
}

func TestSplit(t *testing.T) {
	addrs := make([]ip6.Addr, 100)
	base := ip6.MustParseAddr("2001:db8::")
	for i := range addrs {
		addrs[i] = base.SetField(24, 8, uint64(i+1))
	}
	d := New("split", addrs)
	train, test := d.Split(30, 1)
	if len(train) != 30 || len(test) != 70 {
		t.Fatalf("split sizes: %d/%d", len(train), len(test))
	}
	// Deterministic.
	train2, _ := d.Split(30, 1)
	for i := range train {
		if train[i] != train2[i] {
			t.Fatal("Split not deterministic")
		}
	}
	// Disjoint.
	ts := ip6.NewSet(len(train))
	ts.AddAll(train)
	for _, a := range test {
		if ts.Contains(a) {
			t.Fatal("train and test overlap")
		}
	}
}

func TestStratifiedSample(t *testing.T) {
	var addrs []ip6.Addr
	for p := 0; p < 3; p++ {
		base := ip6.MustParseAddr("2001:db8::").SetField(0, 4, uint64(0x2+p))
		count := []int{100, 5, 50}[p]
		for i := 0; i < count; i++ {
			addrs = append(addrs, base.SetField(24, 8, uint64(i+1)))
		}
	}
	d := New("strat", addrs)
	sample := d.StratifiedSample(20, 2)
	per := map[ip6.Prefix]int{}
	for _, a := range sample {
		per[ip6.Prefix32(a)]++
	}
	if len(per) != 3 {
		t.Fatalf("strata = %d", len(per))
	}
	for p, c := range per {
		if c > 20 {
			t.Errorf("stratum %v has %d > 20 samples", p, c)
		}
	}
	if len(sample) != 20+5+20 {
		t.Errorf("sample size = %d, want 45", len(sample))
	}
}

func TestAnonymized(t *testing.T) {
	d := New("real", []ip6.Addr{
		ip6.MustParseAddr("2a02:26f0:1:2::1"),
		ip6.MustParseAddr("2a02:26f0:1:2::2"),
		ip6.MustParseAddr("2600:1480:5::10"),
	})
	anon := d.Anonymized()
	if anon.Len() != d.Len() {
		t.Fatal("anonymization changed the count")
	}
	doc := ip6.MustParsePrefix("2001:db0::/20")
	for _, a := range anon.Addrs {
		_ = doc
		if a.Field(1, 3) != 0x001 && a.Field(4, 4) != 0x0db8 {
			// Anonymize keeps 001:db8 in nybbles 1-7 and varies nybble 0.
			t.Errorf("address %v does not look anonymized", a)
		}
	}
	// Distinct /32s remain distinct.
	if anon.Prefixes(32).Len() != 2 {
		t.Errorf("anonymized /32 count = %d, want 2", anon.Prefixes(32).Len())
	}
}
