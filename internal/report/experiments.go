package report

import (
	"context"
	"fmt"
	"sort"

	"entropyip/internal/baseline"
	"entropyip/internal/core"
	"entropyip/internal/entropy"
	"entropyip/internal/ip6"
	"entropyip/internal/scan"
	"entropyip/internal/stats"
	"entropyip/internal/synth"
)

// Sizes controls how large the experiments are. The defaults reproduce the
// paper's protocol at laptop scale (1K training addresses as in the paper,
// 100K candidates instead of 1M, synthetic universes at the catalog's
// default sizes). Every run is deterministic in Seed.
type Sizes struct {
	// TrainSize is the number of training addresses (paper: 1000).
	TrainSize int
	// Candidates is the number of generated candidates (paper: 1,000,000).
	Candidates int
	// UniverseSize is the synthetic population size per dataset; zero uses
	// each archetype's default.
	UniverseSize int
	// Seed drives every random choice.
	Seed int64
}

// DefaultSizes returns the laptop-scale defaults.
func DefaultSizes() Sizes {
	return Sizes{TrainSize: 1000, Candidates: 100_000, Seed: 1}
}

func (s Sizes) trainSize() int {
	if s.TrainSize <= 0 {
		return 1000
	}
	return s.TrainSize
}

func (s Sizes) candidates() int {
	if s.Candidates <= 0 {
		return 100_000
	}
	return s.Candidates
}

// Analysis bundles a trained model with the data it was trained and
// evaluated on; the figure-oriented experiments return it.
type Analysis struct {
	Dataset    string
	Model      *core.Model
	Population []ip6.Addr
	Train      []ip6.Addr
	Test       []ip6.Addr
}

// Analyze synthesizes the named dataset, splits it into train/test and
// builds an Entropy/IP model on the training sample. It is the shared entry
// point of the per-dataset figures (Figs. 1, 7, 9, 10).
func Analyze(name string, sizes Sizes, opts core.Options) (*Analysis, error) {
	pop, err := synth.Generate(name, sizes.UniverseSize, sizes.Seed)
	if err != nil {
		return nil, err
	}
	train, test := stats.SplitTrainTest(stats.Split(sizes.Seed, 17), pop, sizes.trainSize())
	m, err := core.Build(train, opts)
	if err != nil {
		return nil, fmt.Errorf("report: building model for %s: %w", name, err)
	}
	return &Analysis{Dataset: name, Model: m, Population: pop, Train: train, Test: test}, nil
}

// Table1 reproduces Table 1: the number of unique addresses per dataset,
// both as reported in the paper and as synthesized here.
func Table1(seed int64) (*Table, error) {
	t := &Table{
		Title:  "Table 1: unique IPv6 addresses per dataset (paper vs synthetic)",
		Header: []string{"Dataset", "Kind", "Paper", "Synthetic", "Description"},
	}
	for _, spec := range synth.Catalog() {
		addrs, err := synth.Generate(spec.Name, 0, seed)
		if err != nil {
			return nil, err
		}
		t.Add(spec.Name, spec.Kind.String(), Count(spec.PaperSize), Count(len(addrs)), spec.Description)
	}
	return t, nil
}

// Table2 reproduces Table 2 for an analyzed dataset: the probability that
// the chosen target segment takes its most popular exact value, conditioned
// on every value of its direct Bayesian-network parents.
func Table2(a *Analysis) (*Table, error) {
	m := a.Model
	// Target: the last segment with an exact value; value: its most popular
	// exact code (the paper uses J = 00000… of the C1-like dataset).
	var targetLabel, targetCode, targetDisplay string
	for i := len(m.Segments) - 1; i >= 0; i-- {
		sm := m.Segments[i]
		for _, v := range sm.Values {
			if v.IsExact() {
				targetLabel, targetCode, targetDisplay = sm.Seg.Label, v.Code, sm.FormatValue(v)
				break
			}
		}
		if targetLabel != "" {
			break
		}
	}
	if targetLabel == "" {
		return nil, fmt.Errorf("report: no exact segment value to condition on in %s", a.Dataset)
	}
	parents, err := m.DirectInfluences(targetLabel)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Table 2: P(%s = %s | parent value) for dataset %s", targetLabel, targetDisplay, a.Dataset),
		Header: []string{"Parent", "Parent value", "P(target)"},
	}
	base, err := m.ConditionalProb(targetLabel, targetCode, nil)
	if err != nil {
		return nil, err
	}
	t.Add("(none)", "(prior)", Percent(base))
	for _, parent := range parents {
		_, sm, ok := m.SegmentByLabel(parent)
		if !ok {
			continue
		}
		for _, v := range sm.Values {
			p, err := m.ConditionalProb(targetLabel, targetCode, core.Evidence{parent: v.Code})
			if err != nil {
				return nil, err
			}
			t.Add(parent, fmt.Sprintf("%s (%s)", v.Code, sm.FormatValue(v)), Percent(p))
		}
	}
	return t, nil
}

// Table3 reproduces Table 3: the full segment-mining result (codes, values,
// frequencies) of an analyzed dataset (the paper shows S1).
func Table3(a *Analysis) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table 3: segment mining results for dataset %s", a.Dataset),
		Header: []string{"Seg (bits)", "Code", "Value", "Freq"},
	}
	for _, sm := range a.Model.Segments {
		segName := fmt.Sprintf("%s (%d-%d)", sm.Seg.Label, sm.Seg.StartBit(), sm.Seg.EndBit())
		for _, v := range sm.Values {
			t.Add(segName, v.Code, sm.FormatValue(v), Percent(v.Freq))
			segName = ""
		}
	}
	return t
}

// ScanRow is one row of Table 4 (or Table 5), with the paper's accounting.
type ScanRow struct {
	Dataset       string
	TrainSize     int
	Candidates    int
	TestSet       int
	Ping          int
	RDNS          int
	Overall       int
	SuccessRate   float64
	NewPrefixes64 int
}

// ScanDataset runs the paper's §5.5 protocol on one dataset: train a model
// on a random sample, generate candidates, probe them against the synthetic
// universe, and count hits and newly discovered /64s.
func ScanDataset(name string, sizes Sizes) (ScanRow, error) {
	a, err := Analyze(name, sizes, core.Options{})
	if err != nil {
		return ScanRow{}, err
	}
	return scanWithModel(a, sizes)
}

func scanWithModel(a *Analysis, sizes Sizes) (ScanRow, error) {
	universe := scan.NewUniverse(a.Population, scan.UniverseConfig{Seed: sizes.Seed})
	exclude := ip6.NewSet(len(a.Train))
	exclude.AddAll(a.Train)
	cands, err := a.Model.Generate(core.GenerateOptions{
		Count:   sizes.candidates(),
		Seed:    sizes.Seed + 1,
		Exclude: exclude,
	})
	if err != nil {
		return ScanRow{}, err
	}
	res, err := scan.Run(context.Background(), &scan.MemProber{Universe: universe, Seed: sizes.Seed},
		cands, scan.Config{TrainingPrefixes: scan.TrainingPrefixSet(a.Train)})
	if err != nil {
		return ScanRow{}, err
	}
	return ScanRow{
		Dataset:       a.Dataset,
		TrainSize:     len(a.Train),
		Candidates:    res.Candidates,
		TestSet:       res.TestSet,
		Ping:          res.Ping,
		RDNS:          res.RDNS,
		Overall:       res.Overall,
		SuccessRate:   res.SuccessRate(),
		NewPrefixes64: res.NewPrefixes64,
	}, nil
}

// Table4 reproduces Table 4: scanning results for the server and router
// datasets.
func Table4(sizes Sizes) (*Table, []ScanRow, error) {
	datasets := []string{"S1", "S2", "S3", "S4", "S5", "R1", "R2", "R3", "R4", "R5"}
	t := &Table{
		Title: fmt.Sprintf("Table 4: scanning results (train %d, generate %d candidates)",
			sizes.trainSize(), sizes.candidates()),
		Header: []string{"Dataset", "Test set", "Ping", "rDNS", "Overall", "Success", "New /64s"},
	}
	rows := make([]ScanRow, 0, len(datasets))
	for _, name := range datasets {
		row, err := ScanDataset(name, sizes)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
		t.Add(name, Count(row.TestSet), Count(row.Ping), Count(row.RDNS), Count(row.Overall),
			Percent(row.SuccessRate), Count(row.NewPrefixes64))
	}
	return t, rows, nil
}

// Table5 reproduces Table 5: success rate as a function of the training-set
// size for a server, a router and a client dataset.
func Table5(datasets []string, trainSizes []int, sizes Sizes) (*Table, map[string][]float64, error) {
	if len(datasets) == 0 {
		datasets = []string{"S5", "R1", "C5"}
	}
	if len(trainSizes) == 0 {
		trainSizes = []int{100, 1000, 10_000}
	}
	t := &Table{Title: "Table 5: success rate vs training sample size",
		Header: append([]string{"Dataset"}, func() []string {
			out := make([]string, len(trainSizes))
			for i, n := range trainSizes {
				out[i] = Count(n)
			}
			return out
		}()...)}
	results := make(map[string][]float64, len(datasets))
	for _, name := range datasets {
		row := []interface{}{name}
		var rates []float64
		for _, ts := range trainSizes {
			s := sizes
			s.TrainSize = ts
			var rate float64
			if name[0] == 'C' {
				// Client datasets are evaluated on /64 prefix prediction,
				// as in §5.6.
				r, err := PredictPrefixes(name, s)
				if err != nil {
					return nil, nil, err
				}
				rate = r.SuccessRate7Day
			} else {
				r, err := ScanDataset(name, s)
				if err != nil {
					return nil, nil, err
				}
				rate = r.SuccessRate
			}
			rates = append(rates, rate)
			row = append(row, Percent(rate))
		}
		results[name] = rates
		t.Add(row...)
	}
	return t, results, nil
}

// PrefixRow is one row of Table 6.
type PrefixRow struct {
	Dataset         string
	Candidates      int
	PredictedDay1   int
	Predicted7Day   int
	SuccessRate7Day float64
}

// PredictPrefixes runs the §5.6 protocol on a client dataset: model only
// the top 64 bits, train on /64 prefixes seen on "day 1" (a subset of the
// population), generate candidate /64s, and count how many are active on
// day 1 and across the whole week (the full population).
func PredictPrefixes(name string, sizes Sizes) (PrefixRow, error) {
	pop, err := synth.Generate(name, sizes.UniverseSize, sizes.Seed)
	if err != nil {
		return PrefixRow{}, err
	}
	// Day 1 sees roughly 40% of the week's client addresses.
	day1, _ := stats.SplitTrainTest(stats.Split(sizes.Seed, 23), pop, len(pop)*2/5)
	weekUniverse := scan.NewUniverse(pop, scan.UniverseConfig{Seed: sizes.Seed})
	day1Universe := scan.NewUniverse(day1, scan.UniverseConfig{Seed: sizes.Seed})

	train, _ := stats.SplitTrainTest(stats.Split(sizes.Seed, 29), day1, sizes.trainSize())
	m, err := core.Build(train, core.Options{Prefix64Only: true})
	if err != nil {
		return PrefixRow{}, err
	}
	exclude := ip6.NewSet(len(train))
	exclude.AddAll(train)
	prefixes, err := m.GeneratePrefixes(core.GenerateOptions{
		Count:   sizes.candidates(),
		Seed:    sizes.Seed + 2,
		Exclude: exclude,
	})
	if err != nil {
		return PrefixRow{}, err
	}
	trainPrefixes := scan.TrainingPrefixSet(train)
	row := PrefixRow{Dataset: name, Candidates: len(prefixes)}
	for _, p := range prefixes {
		if trainPrefixes.Contains(p) {
			continue // only count prefixes not seen in training
		}
		addr := p.Addr()
		if day1Universe.ActivePrefix64(addr) {
			row.PredictedDay1++
		}
		if weekUniverse.ActivePrefix64(addr) {
			row.Predicted7Day++
		}
	}
	if row.Candidates > 0 {
		row.SuccessRate7Day = float64(row.Predicted7Day) / float64(row.Candidates)
	}
	return row, nil
}

// Table6 reproduces Table 6: /64-prefix prediction for the client datasets,
// against day-1 and 7-day activity.
func Table6(sizes Sizes) (*Table, []PrefixRow, error) {
	datasets := []string{"C1", "C2", "C3", "C4", "C5"}
	t := &Table{
		Title: fmt.Sprintf("Table 6: client /64 prefix prediction (train %d prefixes, %d candidates)",
			sizes.trainSize(), sizes.candidates()),
		Header: []string{"Dataset", "Predicted day-1", "Predicted 7-day", "Success (7-day)"},
	}
	rows := make([]PrefixRow, 0, len(datasets))
	for _, name := range datasets {
		row, err := PredictPrefixes(name, sizes)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
		t.Add(name, Count(row.PredictedDay1), Count(row.Predicted7Day), Percent(row.SuccessRate7Day))
	}
	return t, rows, nil
}

// EntropySeries is one dataset's per-nybble entropy (and total entropy),
// the data behind Figs. 6 and 8.
type EntropySeries struct {
	Dataset string
	H       []float64
	ACR     []float64
	Total   float64
}

// Figure6 reproduces Fig. 6: per-nybble entropy of the aggregate datasets,
// computed on a stratified per-/32 sample as the paper does.
func Figure6(sizes Sizes) ([]EntropySeries, error) {
	names := []string{"AS", "AR", "AC", "AT"}
	out := make([]EntropySeries, 0, len(names))
	for _, name := range names {
		pop, err := synth.Generate(name, sizes.UniverseSize, sizes.Seed)
		if err != nil {
			return nil, err
		}
		sample := stats.StratifiedSample(stats.Split(sizes.Seed, 31), pop, func(a ip6.Addr) string {
			return ip6.Prefix32(a).String()
		}, sizes.trainSize())
		p := entropy.NewProfile(sample)
		out = append(out, EntropySeries{Dataset: name, H: p.H[:], Total: p.Total()})
	}
	return out, nil
}

// Figure8 reproduces Fig. 8: brief entropy-vs-ACR series for the S2-S5,
// R2-R5 and C2-C5 datasets.
func Figure8(sizes Sizes) ([]EntropySeries, error) {
	names := []string{"S2", "S3", "S4", "S5", "R2", "R3", "R4", "R5", "C2", "C3", "C4", "C5"}
	out := make([]EntropySeries, 0, len(names))
	for _, name := range names {
		a, err := Analyze(name, sizes, core.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, EntropySeries{
			Dataset: name,
			H:       a.Model.Profile.H[:],
			ACR:     a.Model.ACR.ACR[:],
			Total:   a.Model.TotalEntropy(),
		})
	}
	return out, nil
}

// BaselineRow compares Entropy/IP against the published baselines on one
// dataset (the comparison discussed in §2 and §5.5).
type BaselineRow struct {
	Dataset     string
	Generator   string
	Overall     int
	SuccessRate float64
	NewPrefixes int
}

// CompareBaselines runs Entropy/IP and every baseline generator on the same
// training sample of one dataset and scans their candidates against the
// same universe.
func CompareBaselines(name string, sizes Sizes) ([]BaselineRow, error) {
	a, err := Analyze(name, sizes, core.Options{})
	if err != nil {
		return nil, err
	}
	universe := scan.NewUniverse(a.Population, scan.UniverseConfig{Seed: sizes.Seed})
	trainPrefixes := scan.TrainingPrefixSet(a.Train)
	exclude := ip6.NewSet(len(a.Train))
	exclude.AddAll(a.Train)

	var rows []BaselineRow
	evaluate := func(genName string, cands []ip6.Addr) error {
		res, err := scan.Run(context.Background(), &scan.MemProber{Universe: universe, Seed: sizes.Seed},
			cands, scan.Config{TrainingPrefixes: trainPrefixes})
		if err != nil {
			return err
		}
		rows = append(rows, BaselineRow{
			Dataset:     name,
			Generator:   genName,
			Overall:     res.Overall,
			SuccessRate: res.SuccessRate(),
			NewPrefixes: res.NewPrefixes64,
		})
		return nil
	}
	cands, err := a.Model.Generate(core.GenerateOptions{Count: sizes.candidates(), Seed: sizes.Seed + 1, Exclude: exclude})
	if err != nil {
		return nil, err
	}
	if err := evaluate("entropy-ip", cands); err != nil {
		return nil, err
	}
	for _, g := range baseline.All() {
		if err := evaluate(g.Name(), g.Generate(a.Train, sizes.candidates(), sizes.Seed+1)); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].SuccessRate > rows[j].SuccessRate })
	return rows, nil
}
