// Package report formats the tables of the paper's evaluation section and
// implements the experiment runners that regenerate every table and figure
// (Tables 1-6, Figures 1-10) on top of the synthetic dataset catalog. The
// bench harness (bench_test.go) and the eipreport command are thin wrappers
// around this package.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple text table with a title, a header and rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	update := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	update(t.Header)
	for _, r := range t.Rows {
		update(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Percent formats a ratio as a percentage with adaptive precision, like the
// paper's tables ("43%", "0.55%").
func Percent(x float64) string {
	p := x * 100
	switch {
	case p >= 10:
		return fmt.Sprintf("%.0f%%", p)
	case p >= 1:
		return fmt.Sprintf("%.1f%%", p)
	default:
		return fmt.Sprintf("%.2f%%", p)
	}
}

// Count formats a count the way the paper does: "6.4 K", "160 K", "1.2 M".
func Count(n int) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1f G", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1f M", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1f K", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
