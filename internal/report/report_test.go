package report

import (
	"strings"
	"testing"

	"entropyip/internal/core"
)

// smallSizes keeps unit tests fast; the full-scale runs live in the
// top-level benchmark harness.
func smallSizes() Sizes {
	return Sizes{TrainSize: 500, Candidates: 3000, UniverseSize: 8000, Seed: 3}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tbl.Add("x", 1)
	tbl.Add("longer", 2.5, "extra")
	s := tbl.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "longer") || !strings.Contains(s, "extra") {
		t.Errorf("table output:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), s)
	}
}

func TestPercentAndCount(t *testing.T) {
	if Percent(0.43) != "43%" || Percent(0.016) != "1.6%" || Percent(0.0055) != "0.55%" {
		t.Errorf("Percent formatting wrong: %s %s %s", Percent(0.43), Percent(0.016), Percent(0.0055))
	}
	if Count(42) != "42" || Count(6400) != "6.4 K" || Count(6_700_000) != "6.7 M" || Count(3_500_000_000) != "3.5 G" {
		t.Errorf("Count formatting wrong: %s %s %s %s", Count(42), Count(6400), Count(6_700_000), Count(3_500_000_000))
	}
}

func TestDefaultSizes(t *testing.T) {
	s := DefaultSizes()
	if s.trainSize() != 1000 || s.candidates() != 100_000 {
		t.Error("defaults wrong")
	}
	var zero Sizes
	if zero.trainSize() != 1000 || zero.candidates() != 100_000 {
		t.Error("zero-value sizes should fall back to defaults")
	}
}

func TestAnalyze(t *testing.T) {
	a, err := Analyze("R5", smallSizes(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Model == nil || len(a.Train) == 0 || len(a.Test) == 0 {
		t.Fatal("incomplete analysis")
	}
	if len(a.Train)+len(a.Test) != len(a.Population) {
		t.Error("train/test must partition the population")
	}
	if _, err := Analyze("NOPE", smallSizes(), core.Options{}); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestTable1(t *testing.T) {
	// Keep it cheap by relying on the catalog defaults only for the small
	// datasets; Table1 generates every dataset, so this is the slowest unit
	// test here but still bounded by the scaled-down defaults.
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 19 {
		t.Errorf("rows = %d, want 19", len(tbl.Rows))
	}
	if !strings.Contains(tbl.String(), "S1") || !strings.Contains(tbl.String(), "AT") {
		t.Error("table missing datasets")
	}
}

func TestTable2AndTable3(t *testing.T) {
	a, err := Analyze("C1", smallSizes(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) < 2 {
		t.Errorf("Table 2 should have a prior row plus parent rows:\n%s", t2)
	}
	t3 := Table3(a)
	if len(t3.Rows) < len(a.Model.Segments) {
		t.Errorf("Table 3 should have at least one row per segment")
	}
	if !strings.Contains(t3.String(), "A1") {
		t.Error("Table 3 missing code A1")
	}
}

func TestScanDatasetServerVsClient(t *testing.T) {
	sizes := smallSizes()
	// R1 (point-to-point routers) must be predictable; its success rate
	// must greatly exceed C3's (privacy addresses, essentially unguessable
	// at the full-address level). This is the paper's headline contrast.
	r1, err := ScanDataset("R1", sizes)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := ScanDataset("C3", sizes)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Overall == 0 {
		t.Error("R1 scanning should find active addresses")
	}
	if r1.SuccessRate <= c3.SuccessRate {
		t.Errorf("R1 success (%v) should exceed C3 (%v)", r1.SuccessRate, c3.SuccessRate)
	}
	if r1.NewPrefixes64 == 0 {
		t.Error("R1 scanning should discover /64s not seen in training")
	}
	if r1.TestSet == 0 || r1.Ping == 0 {
		t.Errorf("R1 oracle counts look wrong: %+v", r1)
	}
}

func TestPredictPrefixes(t *testing.T) {
	row, err := PredictPrefixes("C5", smallSizes())
	if err != nil {
		t.Fatal(err)
	}
	if row.Candidates == 0 {
		t.Fatal("no candidate prefixes generated")
	}
	if row.Predicted7Day == 0 {
		t.Error("C5 prefix prediction should find active /64s (the paper reports 20%)")
	}
	if row.Predicted7Day < row.PredictedDay1 {
		t.Error("7-day activity is a superset of day-1 activity")
	}
	if row.SuccessRate7Day <= 0 || row.SuccessRate7Day > 1 {
		t.Errorf("success rate = %v", row.SuccessRate7Day)
	}
}

func TestCompareBaselines(t *testing.T) {
	rows, err := CompareBaselines("R1", smallSizes())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected entropy-ip plus 3 baselines, got %d", len(rows))
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Generator] = r
	}
	eip := byName["entropy-ip"]
	if eip.NewPrefixes == 0 {
		t.Error("Entropy/IP should discover new /64s")
	}
	// The IID-only baselines cannot discover /64s outside training by
	// construction.
	for _, name := range []string{"random-iid", "scan6-heuristics", "iid-pattern"} {
		if byName[name].NewPrefixes != 0 {
			t.Errorf("%s should not discover new /64s", name)
		}
	}
}

func TestFigure6And8(t *testing.T) {
	sizes := smallSizes()
	sizes.UniverseSize = 6000
	f6, err := Figure6(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6) != 4 {
		t.Fatalf("Figure 6 series = %d", len(f6))
	}
	var hs, hc float64
	for _, s := range f6 {
		if len(s.H) != 32 {
			t.Errorf("series %s has %d nybbles", s.Dataset, len(s.H))
		}
		switch s.Dataset {
		case "AS":
			hs = s.Total
		case "AC":
			hc = s.Total
		}
	}
	if hs >= hc {
		t.Errorf("servers (%v) should have lower total entropy than clients (%v)", hs, hc)
	}
	f8, err := Figure8(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8) != 12 {
		t.Errorf("Figure 8 series = %d, want 12", len(f8))
	}
	for _, s := range f8 {
		if s.ACR == nil {
			t.Errorf("series %s missing ACR", s.Dataset)
		}
	}
}

func TestTable5SmallSweep(t *testing.T) {
	sizes := smallSizes()
	sizes.Candidates = 2000
	tbl, results, err := Table5([]string{"R5"}, []int{100, 400}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(results["R5"]) != 2 {
		t.Fatalf("results = %+v", results)
	}
	if !strings.Contains(tbl.String(), "R5") {
		t.Error("table missing dataset")
	}
}
