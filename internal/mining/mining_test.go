package mining

import (
	"math/rand"
	"testing"
	"testing/quick"

	"entropyip/internal/entropy"
	"entropyip/internal/ip6"
	"entropyip/internal/segment"
	"entropyip/internal/stats"
)

func seg(label string, start, width int) segment.Segment {
	return segment.Segment{Label: label, Start: start, Width: width}
}

func TestMineSingleConstantValue(t *testing.T) {
	s := seg("A", 0, 8)
	values := make([]uint64, 1000)
	for i := range values {
		values[i] = 0x20010db8
	}
	m := Mine(s, values, Config{})
	if m.Arity() != 1 {
		t.Fatalf("Arity = %d, want 1; values = %+v", m.Arity(), m.Values)
	}
	v := m.Values[0]
	if !v.IsExact() || v.Lo != 0x20010db8 || v.Count != 1000 || v.Freq != 1 {
		t.Errorf("value = %+v", v)
	}
	if v.Code != "A1" {
		t.Errorf("Code = %q", v.Code)
	}
	if m.CoveredFraction() != 1 {
		t.Errorf("CoveredFraction = %v", m.CoveredFraction())
	}
}

func TestMineTwoPrefixesLikePaperSegmentA(t *testing.T) {
	// The paper's S1 segment A: two /32 values at 63.5% / 36.5%.
	s := seg("A", 0, 8)
	var values []uint64
	for i := 0; i < 635; i++ {
		values = append(values, 0x20010db8)
	}
	for i := 0; i < 365; i++ {
		values = append(values, 0x30010db8)
	}
	m := Mine(s, values, Config{})
	if m.Arity() != 2 {
		t.Fatalf("Arity = %d, want 2; %+v", m.Arity(), m.Values)
	}
	// Mined by descending count: A1 is the 63.5% value.
	if m.Values[0].Lo != 0x20010db8 || m.Values[1].Lo != 0x30010db8 {
		t.Errorf("values = %+v", m.Values)
	}
	if m.Values[0].Code != "A1" || m.Values[1].Code != "A2" {
		t.Error("codes wrong")
	}
	if m.Values[0].Freq < 0.6 || m.Values[0].Freq > 0.67 {
		t.Errorf("Freq = %v", m.Values[0].Freq)
	}
}

func TestMineOutliersPlusUniformRange(t *testing.T) {
	// A 2-nybble segment like the paper's segment C (Fig. 4): a few very
	// popular values plus a uniform-ish range 0x02..0x5b.
	s := seg("C", 10, 2)
	rng := rand.New(rand.NewSource(1))
	var values []uint64
	for i := 0; i < 6700; i++ {
		values = append(values, 0x00)
	}
	for i := 0; i < 1100; i++ {
		values = append(values, 0x01)
	}
	for i := 0; i < 2000; i++ {
		values = append(values, 0x02+uint64(rng.Intn(0x5a)))
	}
	m := Mine(s, values, Config{})
	if m.Arity() < 2 {
		t.Fatalf("Arity = %d, want >= 2: %+v", m.Arity(), m.Values)
	}
	// The two popular values must be mined as exact outliers, in order.
	if !m.Values[0].IsExact() || m.Values[0].Lo != 0 {
		t.Errorf("first value = %+v, want exact 00", m.Values[0])
	}
	if idx, ok := m.Encode(0x01); !ok || !m.Values[idx].IsExact() {
		t.Errorf("0x01 should be an exact mined value")
	}
	// The uniform range must be covered by some range element.
	idx, ok := m.Encode(0x30)
	if !ok {
		t.Fatalf("0x30 not covered: %+v", m.Values)
	}
	if m.Values[idx].IsExact() {
		t.Errorf("0x30 should fall in a range, got %+v", m.Values[idx])
	}
	// Everything is covered.
	if m.CoveredFraction() < 0.999 {
		t.Errorf("CoveredFraction = %v", m.CoveredFraction())
	}
}

func TestMineSmallSetTakenVerbatim(t *testing.T) {
	s := seg("H", 29, 1)
	values := []uint64{0, 8, 1, 0, 8, 0}
	m := Mine(s, values, Config{})
	// At most 10 distinct remaining -> taken verbatim (possibly after the
	// outlier step); all three distinct values must be exact.
	for _, want := range []uint64{0, 8, 1} {
		idx, ok := m.Encode(want)
		if !ok || !m.Values[idx].IsExact() {
			t.Errorf("value %d should be mined exactly: %+v", want, m.Values)
		}
	}
}

func TestMineClosingRange(t *testing.T) {
	// Many distinct values, uniformly spread, too many for the verbatim
	// fallback: a closing range (or mined ranges) must cover everything.
	s := seg("J", 16, 11)
	rng := rand.New(rand.NewSource(2))
	values := make([]uint64, 5000)
	for i := range values {
		values[i] = rng.Uint64() % (1 << 44)
	}
	m := Mine(s, values, Config{})
	if m.Arity() == 0 {
		t.Fatal("no values mined")
	}
	if m.CoveredFraction() < 0.99 {
		t.Errorf("CoveredFraction = %v", m.CoveredFraction())
	}
	for _, v := range values[:100] {
		if _, ok := m.Encode(v); !ok {
			t.Errorf("training value %x not covered", v)
		}
	}
}

func TestMineEmptyAndStopFraction(t *testing.T) {
	m := Mine(seg("A", 0, 8), nil, Config{})
	if m.Arity() != 0 || m.CoveredFraction() != 0 {
		t.Error("empty mining should produce no values")
	}
	// With a very high stop fraction, mining stops after the outliers.
	values := make([]uint64, 0, 1000)
	for i := 0; i < 990; i++ {
		values = append(values, 7)
	}
	for i := 0; i < 10; i++ {
		values = append(values, uint64(100+i))
	}
	m = Mine(seg("B", 8, 2), values, Config{StopFraction: 0.05})
	if m.Arity() != 1 {
		t.Errorf("expected only the outlier to be mined, got %+v", m.Values)
	}
	if m.CoveredFraction() > 0.995 {
		t.Error("the tail should remain uncovered")
	}
}

func TestMineNominateLimit(t *testing.T) {
	// 30 equally popular values: the verbatim/closing fallback applies, but
	// with a small NominateLimit and SmallSetLimit the model stays compact.
	var values []uint64
	for v := 0; v < 30; v++ {
		for i := 0; i < 10; i++ {
			values = append(values, uint64(v)*8)
		}
	}
	m := Mine(seg("D", 12, 2), values, Config{NominateLimit: 5, SmallSetLimit: 5})
	if m.Arity() > 12 {
		t.Errorf("Arity = %d, expected a compact model", m.Arity())
	}
	if m.CoveredFraction() < 0.999 {
		t.Errorf("CoveredFraction = %v", m.CoveredFraction())
	}
}

func TestValueSampleWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := Value{Lo: 100, Hi: 200}
	for i := 0; i < 1000; i++ {
		x := v.Sample(rng)
		if x < 100 || x > 200 {
			t.Fatalf("sample %d out of bounds", x)
		}
	}
	exact := Value{Lo: 42, Hi: 42}
	if exact.Sample(rng) != 42 {
		t.Error("exact sample should return the value")
	}
	full := Value{Lo: 0, Hi: ^uint64(0)}
	_ = full.Sample(rng) // must not panic
	if full.Width() != ^uint64(0) {
		t.Errorf("Width of full range = %d", full.Width())
	}
}

func TestValueSamplePropertyBounds(t *testing.T) {
	f := func(a, b uint64, seed int64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		v := Value{Lo: lo, Hi: hi}
		rng := rand.New(rand.NewSource(seed))
		x := v.Sample(rng)
		return x >= lo && x <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeNearest(t *testing.T) {
	m := &SegmentModel{
		Seg: seg("B", 8, 2),
		Values: []Value{
			{Code: "B1", Lo: 0x10, Hi: 0x10},
			{Code: "B2", Lo: 0x20, Hi: 0x30},
		},
		Total: 10,
	}
	if idx, ok := m.Encode(0x25); !ok || idx != 1 {
		t.Error("0x25 should encode to B2")
	}
	if _, ok := m.Encode(0x50); ok {
		t.Error("0x50 is not covered")
	}
	if idx, ok := m.EncodeNearest(0x32); !ok || idx != 1 {
		t.Error("0x32 should clamp to B2")
	}
	if idx, ok := m.EncodeNearest(0x11); !ok || idx != 0 {
		t.Error("0x11 should clamp to B1")
	}
	empty := &SegmentModel{Seg: seg("Z", 0, 1)}
	if _, ok := empty.EncodeNearest(1); ok {
		t.Error("empty model cannot encode")
	}
}

func TestFindAndFormatValue(t *testing.T) {
	m := &SegmentModel{
		Seg: seg("G", 16, 13),
		Values: []Value{
			{Code: "G1", Lo: 0, Hi: 0},
			{Code: "G2", Lo: 0x0000000000001, Hi: 0x0000000000af0},
		},
	}
	if v, ok := m.Find("G2"); !ok || v.Lo != 1 {
		t.Error("Find(G2) failed")
	}
	if _, ok := m.Find("G9"); ok {
		t.Error("Find(G9) should fail")
	}
	if got := m.FormatValue(m.Values[0]); got != "0000000000000" {
		t.Errorf("FormatValue exact = %q", got)
	}
	if got := m.FormatValue(m.Values[1]); got != "0000000000001-0000000000af0" {
		t.Errorf("FormatValue range = %q", got)
	}
}

func TestStepString(t *testing.T) {
	names := map[Step]string{StepOutlier: "outlier", StepDense: "dense-range", StepUniform: "uniform-range", StepClosing: "closing", Step(99): "unknown"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

// buildTestSet builds a structured address population: two /32 prefixes, a
// subnet nybble, and either a low-byte or random IID.
func buildTestSet(n int, seed int64) []ip6.Addr {
	rng := rand.New(rand.NewSource(seed))
	prefixes := []ip6.Addr{ip6.MustParseAddr("2001:db8::"), ip6.MustParseAddr("3001:db8::")}
	out := make([]ip6.Addr, n)
	for i := range out {
		a := prefixes[0]
		if rng.Float64() < 0.35 {
			a = prefixes[1]
		}
		a = a.SetField(8, 2, uint64(rng.Intn(4)))   // variant nybbles
		a = a.SetField(10, 2, uint64(rng.Intn(64))) // subnet
		if rng.Float64() < 0.5 {
			a = a.SetField(28, 4, uint64(rng.Intn(256))+1) // low IID
		} else {
			a = a.SetField(16, 16, rng.Uint64()) // random IID
		}
		out[i] = a
	}
	return out
}

func TestMineAllAndEncoderRoundTrip(t *testing.T) {
	addrs := buildTestSet(3000, 5)
	prof := entropy.NewProfile(addrs)
	sg := segment.Segments(prof, segment.Config{})
	models := MineAll(addrs, sg, Config{})
	if len(models) != len(sg.Segments) {
		t.Fatalf("models = %d, segments = %d", len(models), len(sg.Segments))
	}
	enc := NewEncoder(models)
	arities := enc.Arities()
	for i, m := range models {
		if m.Arity() == 0 {
			t.Errorf("segment %s mined no values", m.Seg.Label)
		}
		if arities[i] != m.Arity() {
			t.Error("Arities mismatch")
		}
	}
	// Every training address encodes without clamping and the coded vector
	// has one entry per segment.
	clamped := 0
	for _, a := range addrs[:500] {
		vec, exact := enc.Encode(a)
		if len(vec) != len(models) {
			t.Fatalf("vector length %d", len(vec))
		}
		if !exact {
			clamped++
		}
		codes := enc.Codes(vec)
		for _, c := range codes {
			if c == "?" {
				t.Fatalf("unexpected code %v", codes)
			}
		}
	}
	if clamped > 0 {
		t.Errorf("%d training addresses required clamping", clamped)
	}
	// Decode produces addresses whose segment values fall inside the
	// selected elements (ranges sample within themselves). The re-encoded
	// vector may legitimately pick an earlier overlapping element, so the
	// invariant checked is containment, not equality.
	rng := rand.New(rand.NewSource(7))
	for _, a := range addrs[:100] {
		vec, _ := enc.Encode(a)
		gen, err := enc.Decode(vec, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range enc.Models {
			v := m.Values[vec[i]]
			if !v.Contains(m.Seg.Value(gen)) {
				t.Fatalf("segment %s: generated value %x outside selected element %+v",
					m.Seg.Label, m.Seg.Value(gen), v)
			}
		}
	}
}

func TestEncoderDecodeErrors(t *testing.T) {
	addrs := buildTestSet(500, 6)
	prof := entropy.NewProfile(addrs)
	sg := segment.Segments(prof, segment.Config{})
	enc := NewEncoder(MineAll(addrs, sg, Config{}))
	rng := rand.New(rand.NewSource(1))
	if _, err := enc.Decode([]int{0}, rng); err == nil {
		t.Error("expected length error")
	}
	vec := make([]int, len(enc.Models))
	vec[0] = 9999
	if _, err := enc.Decode(vec, rng); err == nil {
		t.Error("expected range error")
	}
	if got := enc.Codes([]int{-1}); got[0] != "?" {
		t.Error("out-of-range code should be ?")
	}
}

func TestEncodeAll(t *testing.T) {
	addrs := buildTestSet(200, 8)
	prof := entropy.NewProfile(addrs)
	sg := segment.Segments(prof, segment.Config{})
	enc := NewEncoder(MineAll(addrs, sg, Config{}))
	rows := enc.EncodeAll(addrs)
	if len(rows) != len(addrs) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r) != len(enc.Models) {
			t.Fatal("row width wrong")
		}
	}
}

func TestMineTrainingCoverageProperty(t *testing.T) {
	// Property: for arbitrary small training multisets, every training
	// value is covered by the mined model (Encode succeeds) as long as the
	// default stop fraction (0.1%) rounds to zero leftovers.
	f := func(raw []uint16, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 300 {
			raw = raw[:300]
		}
		values := make([]uint64, len(raw))
		for i, v := range raw {
			values[i] = uint64(v)
		}
		m := Mine(seg("X", 8, 4), values, Config{})
		for _, v := range values {
			if _, ok := m.Encode(v); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatsFreqIntegration(t *testing.T) {
	// Regression guard: mining must not mutate the caller's value slice.
	values := []uint64{5, 5, 5, 9, 9, 1}
	orig := append([]uint64(nil), values...)
	_ = Mine(seg("A", 0, 8), values, Config{})
	for i := range values {
		if values[i] != orig[i] {
			t.Fatal("Mine mutated its input")
		}
	}
	// And the pool helper used heavily here keeps totals consistent.
	pool := stats.FreqOf(values)
	pool.RemoveRange(0, 100)
	if pool.Total() != 0 {
		t.Error("pool not emptied")
	}
}

func BenchmarkMineAll1K(b *testing.B) {
	addrs := buildTestSet(1000, 9)
	prof := entropy.NewProfile(addrs)
	sg := segment.Segments(prof, segment.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MineAll(addrs, sg, Config{})
	}
}
