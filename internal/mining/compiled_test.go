package mining

import (
	"fmt"
	"math/rand"
	"testing"

	"entropyip/internal/ip6"
	"entropyip/internal/segment"
)

// mkModel builds a SegmentModel with the given elements over a segment of
// `width` nybbles starting at nybble 0, wiring codes/counts the way Mine
// would.
func mkModel(width int, values ...Value) *SegmentModel {
	seg := segment.Segment{Label: "T", Start: 0, Width: width}
	m := &SegmentModel{Seg: seg, Total: 1000}
	for i, v := range values {
		v.Code = fmt.Sprintf("T%d", i+1)
		v.Count = 1
		m.Values = append(m.Values, v)
	}
	return m
}

// compiledCases are adversarial value-set shapes: overlapping ranges,
// exact values inside ranges, duplicate and touching bounds, gaps whose
// nearest element switches mid-gap, ties broken by element order, the
// full domain, and a degenerate empty set.
func compiledCases(width int) []*SegmentModel {
	max := segment.Segment{Width: width}.MaxValue()
	return []*SegmentModel{
		mkModel(width), // no values: always (-1, false)
		mkModel(width, Value{Lo: 5, Hi: 5}),
		mkModel(width, Value{Lo: 0, Hi: max}),
		mkModel(width, Value{Lo: 10, Hi: 20}, Value{Lo: 15, Hi: 15}),         // exact inside range: range wins (first match)
		mkModel(width, Value{Lo: 15, Hi: 15}, Value{Lo: 10, Hi: 20}),         // exact first: exact wins at 15
		mkModel(width, Value{Lo: 10, Hi: 20}, Value{Lo: 18, Hi: 30}),         // overlap: earlier range wins
		mkModel(width, Value{Lo: 3, Hi: 3}, Value{Lo: 9, Hi: 9}),             // gap 4..8: nearest switches at 6
		mkModel(width, Value{Lo: 3, Hi: 3}, Value{Lo: 8, Hi: 8}),             // even gap: tie at 5..6? strict < keeps first
		mkModel(width, Value{Lo: 0, Hi: 0}, Value{Lo: max, Hi: max}),         // extreme gap
		mkModel(width, Value{Lo: 4, Hi: 7}, Value{Lo: 8, Hi: 11}),            // touching ranges, no gap
		mkModel(width, Value{Lo: 2, Hi: 2}, Value{Lo: 2, Hi: 2}),             // duplicate exacts: first wins
		mkModel(width, Value{Lo: 6, Hi: 9}, Value{Lo: 6, Hi: 9}),             // duplicate ranges
		mkModel(width, Value{Lo: 1, Hi: 2}, Value{Lo: 5, Hi: 5}, Value{Lo: 9, Hi: max}),
		mkModel(width, Value{Lo: max - 1, Hi: max}),
		mkModel(width, Value{Lo: 0, Hi: 1}, Value{Lo: max - 1, Hi: max}, Value{Lo: max / 2, Hi: max/2 + 2}),
	}
}

// refEncode is the uncompiled answer: Encode, else EncodeNearest.
func refEncode(m *SegmentModel, v uint64) (int, bool) {
	if idx, ok := m.Encode(v); ok {
		return idx, true
	}
	idx, ok := m.EncodeNearest(v)
	if !ok {
		return -1, false
	}
	return idx, false
}

func checkSegment(t *testing.T, m *SegmentModel, probe func(check func(v uint64))) {
	t.Helper()
	enc := NewEncoder([]*SegmentModel{m})
	c := enc.Compile()
	probe(func(v uint64) {
		wantIdx, wantCov := refEncode(m, v)
		gotIdx, gotCov := c.EncodeValue(0, v)
		if gotIdx != wantIdx || gotCov != wantCov {
			t.Fatalf("model %+v: value %d: compiled (%d, %v), reference (%d, %v)",
				m.Values, v, gotIdx, gotCov, wantIdx, wantCov)
		}
	})
}

// TestCompiledEncoderMatchesReferenceExhaustive checks the whole domain
// of narrow segments through BOTH compiled paths: the direct table
// (width <= directMaxNybbles) and the interval table, which is forced by
// checking the same value sets on a wide segment at the same small
// values.
func TestCompiledEncoderMatchesReferenceExhaustive(t *testing.T) {
	for _, m := range compiledCases(2) { // 256-value domain: exhaustive, direct path
		checkSegment(t, m, func(check func(uint64)) {
			for v := uint64(0); v <= m.Seg.MaxValue(); v++ {
				check(v)
			}
		})
	}
}

// TestCompiledEncoderMatchesReferenceIntervals drives the binary-search
// path (width > directMaxNybbles) over every element bound ±2, gap
// midpoints and random probes.
func TestCompiledEncoderMatchesReferenceIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []int{4, 8, 16} {
		max := segment.Segment{Width: width}.MaxValue()
		for _, m := range compiledCases(width) {
			checkSegment(t, m, func(check func(uint64)) {
				probe := func(v uint64) {
					check(v)
					for d := uint64(1); d <= 2; d++ {
						if v >= d {
							check(v - d)
						}
						if max-v >= d {
							check(v + d)
						}
					}
				}
				probe(0)
				probe(max)
				probe(max / 2)
				for _, v := range m.Values {
					probe(v.Lo)
					probe(v.Hi)
				}
				// Gap midpoints between consecutive elements, where the
				// nearest-element switch points live.
				for _, a := range m.Values {
					for _, b := range m.Values {
						if a.Hi < b.Lo {
							mid := a.Hi + (b.Lo-a.Hi)/2
							probe(mid)
						}
					}
				}
				for i := 0; i < 200; i++ {
					check(rng.Uint64() % (max/2*2 + 1))
				}
			})
		}
	}
}

// TestCompiledEncoderMatchesEncoderOnMinedModels runs real mined models
// (the shapes Mine actually produces) through both implementations over
// whole addresses, including EncodeAll's matrix.
func TestCompiledEncoderMatchesEncoderOnMinedModels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	addrs := make([]ip6.Addr, 4000)
	for i := range addrs {
		var a ip6.Addr
		rng.Read(a[:])
		// Skew: half the addresses share structure so mining finds values.
		if i%2 == 0 {
			a[0], a[1], a[2], a[3] = 0x20, 0x01, 0x0d, 0xb8
			a[4] = byte(rng.Intn(4))
		}
		addrs[i] = a
	}
	sg := &segment.Segmentation{Segments: []segment.Segment{
		{Label: "A", Start: 0, Width: 8},
		{Label: "B", Start: 8, Width: 2},
		{Label: "C", Start: 10, Width: 6},
		{Label: "D", Start: 16, Width: 16},
	}}
	models := MineAll(addrs, sg, Config{})
	enc := NewEncoder(models)
	c := enc.Compiled()

	vec := make([]int, len(models))
	for _, a := range addrs[:1000] {
		want, wantExact := enc.Encode(a)
		gotExact := c.EncodeInto(vec, a)
		if gotExact != wantExact {
			t.Fatalf("EncodeInto(%v) exact = %v, reference %v", a, gotExact, wantExact)
		}
		for i := range vec {
			if vec[i] != want[i] {
				t.Fatalf("EncodeInto(%v)[%d] = %d, reference %d", a, i, vec[i], want[i])
			}
		}
	}

	// EncodeAll must produce the matrix the reference scan produced
	// before the rewiring (regression pin for the byte-identity
	// acceptance criterion: identical encodings -> identical CPT counts
	// -> identical serialized models).
	got := enc.EncodeAll(addrs)
	for i, a := range addrs {
		want, _ := enc.Encode(a)
		for k := range want {
			if got[i][k] != want[k] {
				t.Fatalf("EncodeAll row %d col %d = %d, reference %d", i, k, got[i][k], want[k])
			}
		}
	}
}

// TestEncodeIntoZeroAlloc pins the serving-plane contract: encoding into
// a caller buffer does not allocate.
func TestEncodeIntoZeroAlloc(t *testing.T) {
	m := compiledCases(8)[12]
	enc := NewEncoder([]*SegmentModel{m})
	c := enc.Compiled()
	vec := make([]int, 1)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]ip6.Addr, 64)
	for i := range addrs {
		rng.Read(addrs[i][:])
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		c.EncodeInto(vec, addrs[i%len(addrs)])
		i++
	}); n != 0 {
		t.Fatalf("EncodeInto allocates %.1f times per address, want 0", n)
	}
}
