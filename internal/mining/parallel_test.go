package mining

import (
	"math/rand"
	"reflect"
	"testing"

	"entropyip/internal/entropy"
	"entropyip/internal/ip6"
	"entropyip/internal/segment"
	"entropyip/internal/stats"
)

// miningPopulation synthesizes addresses with popular exact values, dense
// ranges and random tails, so every mining step contributes values.
func miningPopulation(n int, seed int64) []ip6.Addr {
	rng := rand.New(rand.NewSource(seed))
	base := ip6.MustParseAddr("2001:db8::")
	addrs := make([]ip6.Addr, n)
	for i := range addrs {
		a := base
		switch rng.Intn(4) {
		case 0: // popular exact subnet
			a = a.SetField(12, 4, 0x0001)
		case 1: // dense low range
			a = a.SetField(12, 4, uint64(rng.Intn(64)))
		default: // spread
			a = a.SetField(12, 4, uint64(rng.Intn(1<<16)))
		}
		a = a.SetField(16, 16, rng.Uint64())
		addrs[i] = a
	}
	return addrs
}

func TestMineAllWorkersEquivalent(t *testing.T) {
	addrs := miningPopulation(4000, 1)
	profile := entropy.NewProfileWorkers(addrs, 1)
	sg := segment.Segments(profile, segment.Config{})
	want := MineAllWorkers(addrs, sg, Config{}, 1)
	for _, workers := range []int{2, 5, 0} {
		got := MineAllWorkers(addrs, sg, Config{}, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: mined models differ from sequential mining", workers)
		}
	}
}

func TestEncodeAllWorkersEquivalent(t *testing.T) {
	addrs := miningPopulation(4000, 2)
	profile := entropy.NewProfileWorkers(addrs, 1)
	sg := segment.Segments(profile, segment.Config{})
	enc := NewEncoder(MineAll(addrs, sg, Config{}))
	want := enc.EncodeAllWorkers(addrs, 1)
	for _, workers := range []int{3, 7, 0} {
		got := enc.EncodeAllWorkers(addrs, workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: encoded matrix differs from sequential encoding", workers)
		}
	}
}

// TestHistPointsSingletonsBelowLimit pins the invariant that keeps mining
// output unchanged for segments under the coarsening limit: every entry
// maps to its own point.
func TestHistPointsSingletonsBelowLimit(t *testing.T) {
	addrs := miningPopulation(500, 3)
	values := make([]uint64, len(addrs))
	for i, a := range addrs {
		values[i] = a.Field(12, 4)
	}
	entries := stats.FreqOf(values).Entries()
	hps := histPoints(entries, uniformDBSCANMaxPoints)
	if len(hps) != len(entries) {
		t.Fatalf("%d points for %d entries below limit", len(hps), len(entries))
	}
	for i, hp := range hps {
		if hp.lo != entries[i].Value || hp.hi != entries[i].Value || hp.count != entries[i].Count || hp.values != 1 {
			t.Fatalf("point %d is not a singleton of entry %d: %+v vs %+v", i, i, hp, entries[i])
		}
	}
}

// TestHistPointsCoarsensAboveLimit checks the coarse path: counts and
// distinct-value totals are preserved, runs are contiguous and ordered.
func TestHistPointsCoarsensAboveLimit(t *testing.T) {
	var entries []stats.Entry
	totalCount := 0
	for v := 0; v < 10_000; v++ {
		c := 1 + v%3
		entries = append(entries, stats.Entry{Value: uint64(v * 2), Count: c})
		totalCount += c
	}
	max := 512
	hps := histPoints(entries, max)
	if len(hps) > max {
		t.Fatalf("%d points, want <= %d", len(hps), max)
	}
	gotCount, gotValues := 0, 0
	prevHi := uint64(0)
	for i, hp := range hps {
		if hp.lo > hp.hi {
			t.Fatalf("point %d: lo > hi", i)
		}
		if i > 0 && hp.lo <= prevHi {
			t.Fatalf("point %d overlaps previous run", i)
		}
		prevHi = hp.hi
		gotCount += hp.count
		gotValues += hp.values
	}
	if gotCount != totalCount || gotValues != len(entries) {
		t.Fatalf("coarsening lost mass: count %d/%d values %d/%d", gotCount, totalCount, gotValues, len(entries))
	}
}
