// Package mining implements the segment mining step of Entropy/IP (§4.3 of
// the paper): for each address segment, it builds the ordered set V_k of
// popular values and ranges that cover the observed data, assigns them
// short codes (A1, B2, ...), and encodes addresses as categorical vectors
// over those codes — the representation consumed by the Bayesian network.
//
// The heuristic follows the paper's three steps, each nominating at most
// NominateLimit elements and removing them from the remaining pool:
//
//	(a) frequency outliers: values more common than Q3 + 1.5·IQR of the
//	    frequency distribution (Tukey's rule);
//	(b) DBSCAN over the remaining values (weighted by their counts) to
//	    find highly dense ranges;
//	(c) DBSCAN over the histogram (value, count) to find ranges of values
//	    that are both uniformly distributed and relatively continuous.
//
// Finally, whatever remains is closed with a (min, max) range, or — if at
// most SmallSetLimit distinct values remain — taken verbatim as exact
// values. Mining stops early when no more than StopFraction of the
// observations remain unexplained.
package mining

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"entropyip/internal/dbscan"
	"entropyip/internal/ip6"
	"entropyip/internal/parallel"
	"entropyip/internal/segment"
	"entropyip/internal/stats"
)

// Step identifies which mining step produced a value.
type Step int

// Mining steps, in execution order.
const (
	StepOutlier Step = iota + 1 // frequency outlier (a)
	StepDense                   // DBSCAN over values (b)
	StepUniform                 // DBSCAN over the histogram (c)
	StepClosing                 // closing range / small-set fallback
)

// String returns a short name for the step.
func (s Step) String() string {
	switch s {
	case StepOutlier:
		return "outlier"
	case StepDense:
		return "dense-range"
	case StepUniform:
		return "uniform-range"
	case StepClosing:
		return "closing"
	default:
		return "unknown"
	}
}

// Value is one element of a segment's mined value set V_k: either an exact
// value (Lo == Hi) or an inclusive range [Lo, Hi].
type Value struct {
	// Code is the short identifier, e.g. "C3": segment label plus 1-based
	// index in mined order.
	Code string
	// Lo and Hi bound the value (inclusive). Lo == Hi for exact values.
	Lo, Hi uint64
	// Count is the number of training observations covered by this element
	// at the time it was mined (observations are never counted twice).
	Count int
	// Freq is Count divided by the total number of observations.
	Freq float64
	// Step records which mining step produced the element.
	Step Step
}

// IsExact reports whether the element is a single exact value.
func (v Value) IsExact() bool { return v.Lo == v.Hi }

// Contains reports whether the segment value x falls within the element.
func (v Value) Contains(x uint64) bool { return x >= v.Lo && x <= v.Hi }

// Width returns the number of distinct segment values covered, saturating
// at the maximum uint64 for the full 64-bit range.
func (v Value) Width() uint64 {
	w := v.Hi - v.Lo
	if w == ^uint64(0) {
		return w
	}
	return w + 1
}

// Sample draws a concrete segment value covered by the element, uniformly
// at random for ranges and deterministically for exact values.
func (v Value) Sample(rng *rand.Rand) uint64 {
	if v.IsExact() {
		return v.Lo
	}
	span := v.Hi - v.Lo
	if span == ^uint64(0) {
		return rng.Uint64()
	}
	n := span + 1
	// Unbiased sampling of [0, n) via rejection on the top partial block.
	for {
		x := rng.Uint64()
		r := x % n
		if x-r <= ^uint64(0)-(n-1) {
			return v.Lo + r
		}
	}
}

// Config controls segment mining.
type Config struct {
	// NominateLimit is the maximum number of elements each step may add
	// (the paper uses 10). Zero means the default.
	NominateLimit int
	// StopFraction stops mining when no more than this fraction of
	// observations remains unexplained (the paper uses 0.001). Zero means
	// the default; negative means never stop early.
	StopFraction float64
	// SmallSetLimit is the |D_k| at or below which the remaining values are
	// taken verbatim instead of closed with a range (the paper uses 10).
	// Zero means the default.
	SmallSetLimit int
	// TukeyK is the outlier fence multiplier (default 1.5).
	TukeyK float64
	// MinRangePoints is the minimum number of distinct values for a DBSCAN
	// range to be nominated (default 3); smaller clusters are better
	// represented as exact values by later rounds.
	MinRangePoints int
}

// Defaults used when Config fields are zero.
const (
	DefaultNominateLimit  = 10
	DefaultStopFraction   = 0.001
	DefaultSmallSetLimit  = 10
	DefaultTukeyK         = 1.5
	DefaultMinRangePoints = 3
)

func (c Config) nominateLimit() int {
	if c.NominateLimit <= 0 {
		return DefaultNominateLimit
	}
	return c.NominateLimit
}

func (c Config) stopFraction() float64 {
	switch {
	case c.StopFraction == 0:
		return DefaultStopFraction
	case c.StopFraction < 0:
		return 0
	default:
		return c.StopFraction
	}
}

func (c Config) smallSetLimit() int {
	if c.SmallSetLimit <= 0 {
		return DefaultSmallSetLimit
	}
	return c.SmallSetLimit
}

func (c Config) tukeyK() float64 {
	if c.TukeyK <= 0 {
		return DefaultTukeyK
	}
	return c.TukeyK
}

func (c Config) minRangePoints() int {
	if c.MinRangePoints <= 0 {
		return DefaultMinRangePoints
	}
	return c.MinRangePoints
}

// SegmentModel is the mined value set of one segment.
type SegmentModel struct {
	Seg segment.Segment
	// Values is V_k in mined order. Codes are Seg.Label + 1-based index.
	Values []Value
	// Total is the number of observations the segment was mined from.
	Total int
}

// Mine builds the value set of one segment from the segment values of the
// training addresses.
func Mine(seg segment.Segment, values []uint64, cfg Config) *SegmentModel {
	total := len(values)
	m := &SegmentModel{Seg: seg, Total: total}
	if total == 0 {
		return m
	}
	pool := stats.FreqOf(values)
	stopAt := int(cfg.stopFraction() * float64(total))

	addValue := func(v Value) {
		v.Code = fmt.Sprintf("%s%d", seg.Label, len(m.Values)+1)
		v.Freq = float64(v.Count) / float64(total)
		m.Values = append(m.Values, v)
	}

	// Step (a): frequency outliers.
	if pool.Total() > stopAt {
		for _, e := range mineOutliers(pool, cfg) {
			addValue(e)
		}
	}
	// Steps (b) and (c) look for ranges; they only make sense when more
	// distinct values remain than the small-set fallback would keep
	// verbatim — otherwise a handful of individually meaningful values
	// (e.g. subnet selectors 0-7) would be collapsed into a single
	// uninformative range.
	if pool.Distinct() > cfg.smallSetLimit() {
		// Step (b): dense ranges of values.
		if pool.Total() > stopAt {
			for _, e := range mineDenseRanges(pool, seg, cfg) {
				addValue(e)
			}
		}
		// Step (c): uniform, continuous ranges in the histogram.
		if pool.Total() > stopAt {
			for _, e := range mineUniformRanges(pool, seg, cfg) {
				addValue(e)
			}
		}
	}
	// Closing step.
	if pool.Total() > stopAt && pool.Distinct() > 0 {
		if pool.Distinct() <= cfg.smallSetLimit() {
			for _, e := range pool.Entries() {
				addValue(Value{Lo: e.Value, Hi: e.Value, Count: e.Count, Step: StepClosing})
				pool.Remove(e.Value)
			}
		} else {
			lo, _ := pool.Min()
			hi, _ := pool.Max()
			count := pool.RemoveRange(lo, hi)
			addValue(Value{Lo: lo, Hi: hi, Count: count, Step: StepClosing})
		}
	}
	return m
}

// mineOutliers implements step (a): Tukey outliers of the frequency
// distribution, at most NominateLimit of them, by descending count.
func mineOutliers(pool *stats.Freq, cfg Config) []Value {
	entries := pool.Entries()
	if len(entries) == 0 {
		return nil
	}
	if len(entries) == 1 {
		// A single distinct value is trivially "unusually prevalent".
		e := entries[0]
		pool.Remove(e.Value)
		return []Value{{Lo: e.Value, Hi: e.Value, Count: e.Count, Step: StepOutlier}}
	}
	counts := make([]float64, len(entries))
	for i, e := range entries {
		counts[i] = float64(e.Count)
	}
	fence := stats.TukeyUpperFence(counts, cfg.tukeyK())
	var outliers []stats.Entry
	for _, e := range entries {
		if float64(e.Count) > fence {
			outliers = append(outliers, e)
		}
	}
	sort.SliceStable(outliers, func(i, j int) bool {
		if outliers[i].Count != outliers[j].Count {
			return outliers[i].Count > outliers[j].Count
		}
		return outliers[i].Value < outliers[j].Value
	})
	if len(outliers) > cfg.nominateLimit() {
		outliers = outliers[:cfg.nominateLimit()]
	}
	out := make([]Value, 0, len(outliers))
	for _, e := range outliers {
		pool.Remove(e.Value)
		out = append(out, Value{Lo: e.Value, Hi: e.Value, Count: e.Count, Step: StepOutlier})
	}
	return out
}

// mineDenseRanges implements step (b): weighted DBSCAN over the remaining
// values; each sufficiently large cluster becomes a [min, max] range.
func mineDenseRanges(pool *stats.Freq, seg segment.Segment, cfg Config) []Value {
	entries := pool.Entries()
	if len(entries) < cfg.minRangePoints() {
		return nil
	}
	points := make([]dbscan.WeightedPoint, len(entries))
	for i, e := range entries {
		points[i] = dbscan.WeightedPoint{Value: float64(e.Value), Weight: e.Count}
	}
	// eps: a small fraction of the segment's value range, but at least 1 so
	// adjacent integer values connect. minPts: a dense range must cover at
	// least ~1% of the remaining observations (and at least 4).
	eps := rangeEps(seg)
	minPts := pool.Total() / 100
	if minPts < 4 {
		minPts = 4
	}
	res := dbscan.Cluster1DWeighted(points, eps, minPts)
	ivs := dbscan.WeightedIntervals(points, res)
	return rangesFromIntervals(pool, ivs, cfg, StepDense)
}

// histPoint is one input point of the step-(c) DBSCAN: a run of adjacent
// histogram values with its total count. Below the coarsening limit every
// point is a single distinct value (lo == hi, values == 1).
type histPoint struct {
	lo, hi uint64
	count  int
	values int // distinct values covered
}

// uniformDBSCANMaxPoints bounds the input size of the 2-D DBSCAN of step
// (c). The textbook algorithm is quadratic, which is fine at the paper's
// 1K-training scale but turns a wide high-entropy segment of a
// 100K-address training set (tens of thousands of distinct values) into
// minutes of clustering. Above the limit, the histogram is coarsened
// first into fixed-size runs of adjacent distinct values (each run
// covering the same number of entries, not the same total count): the
// step looks for ranges that are uniformly distributed and relatively
// continuous, a property that survives this coarsening. Segments under
// the limit mine exactly as before.
const uniformDBSCANMaxPoints = 4096

// histPoints converts histogram entries (ascending value order) into
// DBSCAN input points, coarsening adjacent values into at most max runs
// when there are more entries than that.
func histPoints(entries []stats.Entry, max int) []histPoint {
	if len(entries) <= max {
		out := make([]histPoint, len(entries))
		for i, e := range entries {
			out[i] = histPoint{lo: e.Value, hi: e.Value, count: e.Count, values: 1}
		}
		return out
	}
	stride := (len(entries) + max - 1) / max
	out := make([]histPoint, 0, max)
	for start := 0; start < len(entries); start += stride {
		end := start + stride
		if end > len(entries) {
			end = len(entries)
		}
		hp := histPoint{lo: entries[start].Value, hi: entries[end-1].Value}
		for _, e := range entries[start:end] {
			hp.count += e.Count
			hp.values++
		}
		out = append(out, hp)
	}
	return out
}

// mineUniformRanges implements step (c): DBSCAN over the histogram —
// points are (value, count) pairs, normalized so that clusters are ranges
// of contiguous values with similar counts (uniformly distributed,
// relatively continuous).
func mineUniformRanges(pool *stats.Freq, seg segment.Segment, cfg Config) []Value {
	entries := pool.Entries()
	if len(entries) < cfg.minRangePoints() {
		return nil
	}
	hps := histPoints(entries, uniformDBSCANMaxPoints)
	maxCount := 0
	for _, hp := range hps {
		if hp.count > maxCount {
			maxCount = hp.count
		}
	}
	span := float64(seg.MaxValue())
	if span == 0 {
		span = 1
	}
	points := make([][]float64, len(hps))
	for i, hp := range hps {
		mid := hp.lo + (hp.hi-hp.lo)/2
		points[i] = []float64{
			// Value axis normalized to [0, 100]: continuity matters at the
			// scale of the whole segment.
			100 * float64(mid) / span,
			// Count axis normalized to [0, 100]: similar prevalence keeps
			// points close.
			100 * float64(hp.count) / float64(maxCount),
		}
	}
	res := dbscan.Cluster(points, 5, 4)
	// Convert clusters back to value intervals.
	ivs := make([]dbscan.WeightedInterval, res.NumClusters)
	init := make([]bool, res.NumClusters)
	for i, lbl := range res.Labels {
		if lbl == dbscan.Noise {
			continue
		}
		lo, hi := float64(hps[i].lo), float64(hps[i].hi)
		iv := &ivs[lbl]
		if !init[lbl] {
			iv.Lo, iv.Hi = lo, hi
			init[lbl] = true
		} else {
			if lo < iv.Lo {
				iv.Lo = lo
			}
			if hi > iv.Hi {
				iv.Hi = hi
			}
		}
		iv.Weight += hps[i].count
		iv.Points += hps[i].values
	}
	return rangesFromIntervals(pool, ivs, cfg, StepUniform)
}

// rangesFromIntervals turns DBSCAN intervals into mined range values,
// keeping the largest (by covered observations) first, at most
// NominateLimit of them, and removing the covered observations from the
// pool.
func rangesFromIntervals(pool *stats.Freq, ivs []dbscan.WeightedInterval, cfg Config, step Step) []Value {
	var candidates []dbscan.WeightedInterval
	for _, iv := range ivs {
		if iv.Points >= cfg.minRangePoints() {
			candidates = append(candidates, iv)
		}
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		if candidates[i].Weight != candidates[j].Weight {
			return candidates[i].Weight > candidates[j].Weight
		}
		return candidates[i].Lo < candidates[j].Lo
	})
	if len(candidates) > cfg.nominateLimit() {
		candidates = candidates[:cfg.nominateLimit()]
	}
	out := make([]Value, 0, len(candidates))
	for _, iv := range candidates {
		lo, hi := floatToUint64(iv.Lo), floatToUint64(iv.Hi)
		count := pool.RemoveRange(lo, hi)
		if count == 0 {
			continue // fully covered by an earlier (overlapping) range
		}
		out = append(out, Value{Lo: lo, Hi: hi, Count: count, Step: step})
	}
	return out
}

// floatToUint64 converts a non-negative float back to uint64, clamping at
// the extremes (cluster bounds pass through float64 and may round past the
// 64-bit range for the widest segments).
func floatToUint64(f float64) uint64 {
	if f <= 0 {
		return 0
	}
	if f >= 18446744073709551615.0 {
		return ^uint64(0)
	}
	return uint64(f)
}

// rangeEps returns the value-space DBSCAN radius for a segment: 1/256 of
// the segment's range, but at least 1.
func rangeEps(seg segment.Segment) float64 {
	span := float64(seg.MaxValue()) / 256
	if span < 1 {
		span = 1
	}
	return span
}

// MineAll mines every segment of a segmentation from the training
// addresses and returns the per-segment models in segment order, using all
// available cores. The result is identical for any worker count; use
// MineAllWorkers to bound concurrency.
func MineAll(addrs []ip6.Addr, sg *segment.Segmentation, cfg Config) []*SegmentModel {
	return MineAllWorkers(addrs, sg, cfg, 0)
}

// MineAllWorkers is MineAll with bounded concurrency (<= 0 selects
// GOMAXPROCS). Segments are independent by construction — each mines its
// own value multiset, including its weighted-DBSCAN passes — so they run
// concurrently, dispatched dynamically because per-segment cost is skewed
// (wide high-entropy segments dominate). Each result lands at its
// segment's index, so the output is identical for any worker count.
func MineAllWorkers(addrs []ip6.Addr, sg *segment.Segmentation, cfg Config, workers int) []*SegmentModel {
	out := make([]*SegmentModel, len(sg.Segments))
	parallel.ForEach(workers, len(sg.Segments), func(si int) {
		seg := sg.Segments[si]
		values := make([]uint64, len(addrs))
		for i, a := range addrs {
			values[i] = seg.Value(a)
		}
		out[si] = Mine(seg, values, cfg)
	})
	return out
}

// Encode maps a segment value to an element of V_k: an exact element if
// one matches, otherwise the first mined range that contains the value
// (ranges mined earlier take priority, as in the paper's ordered V_k).
// ok is false when no element covers the value, which can happen for
// addresses not seen in training.
func (m *SegmentModel) Encode(value uint64) (int, bool) {
	rangeMatch := -1
	for i, v := range m.Values {
		if !v.Contains(value) {
			continue
		}
		if v.IsExact() {
			return i, true
		}
		if rangeMatch < 0 {
			rangeMatch = i
		}
	}
	if rangeMatch >= 0 {
		return rangeMatch, true
	}
	return -1, false
}

// EncodeNearest is like Encode but falls back to the element whose bounds
// are numerically closest to the value, so that any address can be encoded.
// ok is false only when the model has no values at all.
func (m *SegmentModel) EncodeNearest(value uint64) (int, bool) {
	if i, ok := m.Encode(value); ok {
		return i, true
	}
	if len(m.Values) == 0 {
		return -1, false
	}
	best, bestDist := 0, ^uint64(0)
	for i, v := range m.Values {
		var d uint64
		switch {
		case value < v.Lo:
			d = v.Lo - value
		case value > v.Hi:
			d = value - v.Hi
		default:
			d = 0
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, true
}

// Arity returns the number of elements in V_k (the number of categories
// the segment contributes to the Bayesian network).
func (m *SegmentModel) Arity() int { return len(m.Values) }

// Find returns the element with the given code.
func (m *SegmentModel) Find(code string) (Value, bool) {
	for _, v := range m.Values {
		if v.Code == code {
			return v, true
		}
	}
	return Value{}, false
}

// CoveredFraction returns the fraction of training observations covered by
// the mined elements (normally 1.0 unless mining stopped early).
func (m *SegmentModel) CoveredFraction() float64 {
	if m.Total == 0 {
		return 0
	}
	covered := 0
	for _, v := range m.Values {
		covered += v.Count
	}
	return float64(covered) / float64(m.Total)
}

// FormatValue renders a mined element the way the paper's Table 3 does:
// exact values as fixed-width hex, ranges as "lo-hi".
func (m *SegmentModel) FormatValue(v Value) string {
	if v.IsExact() {
		return m.Seg.FormatValue(v.Lo)
	}
	return m.Seg.FormatValue(v.Lo) + "-" + m.Seg.FormatValue(v.Hi)
}

// Encoder encodes whole addresses into categorical vectors over the mined
// codes of every segment, the representation used to train and query the
// Bayesian network. Encode is the readable reference scan; the bulk and
// serving paths run on the compiled flat-table form (Compiled), which
// answers identically. An Encoder must not be copied after first use
// (the compiled form is cached behind a sync.Once).
type Encoder struct {
	Models []*SegmentModel

	compileOnce sync.Once
	compiled    *CompiledEncoder
}

// NewEncoder returns an encoder over the given per-segment models.
func NewEncoder(models []*SegmentModel) *Encoder { return &Encoder{Models: models} }

// Arities returns the number of categories of each segment, in order.
func (e *Encoder) Arities() []int {
	out := make([]int, len(e.Models))
	for i, m := range e.Models {
		out[i] = m.Arity()
	}
	return out
}

// Encode maps an address to its categorical vector. Values not covered by
// any mined element are clamped to the nearest element (EncodeNearest); the
// second return is false if any segment had to clamp.
//
// This is the readable reference implementation — one allocation and two
// scans per address. Bulk callers should use Compiled().EncodeInto (zero
// allocation, flat lookup); EncodeAll already does.
func (e *Encoder) Encode(a ip6.Addr) ([]int, bool) {
	vec := make([]int, len(e.Models))
	exact := true
	for i, m := range e.Models {
		value := m.Seg.Value(a)
		idx, ok := m.Encode(value)
		if !ok {
			exact = false
			idx, ok = m.EncodeNearest(value)
			if !ok {
				return nil, false
			}
		}
		vec[i] = idx
	}
	return vec, exact
}

// EncodeAll encodes a slice of addresses, dropping none; the returned
// matrix has one row per address. It uses all available cores; the result
// is identical for any worker count (use EncodeAllWorkers to bound
// concurrency).
func (e *Encoder) EncodeAll(addrs []ip6.Addr) [][]int {
	return e.EncodeAllWorkers(addrs, 0)
}

// EncodeAllWorkers is EncodeAll with bounded concurrency (<= 0 selects
// GOMAXPROCS). Rows run through the compiled flat tables shard by shard
// into one flat backing array (two allocations total instead of one per
// row), so the matrix is identical for any worker count.
//
// The matrix rows are only valid when every segment mined at least one
// value (a zero-arity segment writes -1, as EncodeInto documents);
// core.Build guarantees that for every trained model.
func (e *Encoder) EncodeAllWorkers(addrs []ip6.Addr, workers int) [][]int {
	c := e.Compiled()
	cols := len(e.Models)
	out := make([][]int, len(addrs))
	flat := make([]int, len(addrs)*cols)
	parallel.ForEachShard(workers, len(addrs), func(s parallel.Shard) {
		for i := s.Start; i < s.End; i++ {
			row := flat[i*cols : (i+1)*cols : (i+1)*cols]
			c.EncodeInto(row, addrs[i])
			out[i] = row
		}
	})
	return out
}

// Decode materializes a concrete address from a categorical vector by
// sampling a concrete value from every selected element (exact values are
// deterministic; ranges sample uniformly).
func (e *Encoder) Decode(vec []int, rng *rand.Rand) (ip6.Addr, error) {
	if len(vec) != len(e.Models) {
		return ip6.Addr{}, fmt.Errorf("mining: Decode needs %d categories, got %d", len(e.Models), len(vec))
	}
	var a ip6.Addr
	for i, m := range e.Models {
		if vec[i] < 0 || vec[i] >= m.Arity() {
			return ip6.Addr{}, fmt.Errorf("mining: category %d out of range for segment %s", vec[i], m.Seg.Label)
		}
		v := m.Values[vec[i]]
		a = m.Seg.Set(a, v.Sample(rng))
	}
	return a, nil
}

// Codes returns the vector of code strings for a categorical vector, e.g.
// ["A1", "B2", ...], the notation used in the paper.
func (e *Encoder) Codes(vec []int) []string {
	out := make([]string, len(vec))
	for i, idx := range vec {
		if i < len(e.Models) && idx >= 0 && idx < e.Models[i].Arity() {
			out[i] = e.Models[i].Values[idx].Code
		} else {
			out[i] = "?"
		}
	}
	return out
}
