package mining

import (
	"math"
	"sort"

	"entropyip/internal/ip6"
)

// CompiledEncoder is the flat-table form of Encoder: the serving-plane
// analogue of bayes.Sampler. Encoder.Encode resolves a segment value by
// linearly scanning the mined elements and, for values outside every
// element, re-scanning for the numerically nearest one — fine per query,
// but the encode path runs per address on ingest, drift scoring and
// likelihood evaluation. Compile resolves every possible outcome once:
// each segment's value axis is cut into elementary intervals on which the
// scan's answer is constant (element bounds plus the switch points of the
// nearest-element fallback), so one encode is a table lookup (narrow
// segments) or a short binary search (wide ones), with no fallback path
// and no per-address allocation.
//
// The compiled tables answer exactly what Encode/EncodeNearest answer —
// TestCompiledEncoderMatchesReference pins the equivalence exhaustively on
// narrow segments and adversarially on wide ones.
type CompiledEncoder struct {
	models []*SegmentModel
	segs   []compiledSegment
}

// directMaxNybbles is the widest segment compiled to a direct value→code
// table (16^3 = 4096 entries, 8 KiB as int16); wider segments use sorted
// elementary intervals with a binary search.
const directMaxNybbles = 3

// compiledSegment is one segment's resolved lookup structure. Codes are
// packed as idx<<1|1 for covered values and idx<<1 for clamped ones
// (nearest-element fallback), so coverage travels with the lookup for
// free; -1 marks a segment with no mined values at all.
type compiledSegment struct {
	start, width int
	// direct[v] is the packed code of value v (narrow segments only).
	direct []int16
	// bounds[i] is the first value of elementary interval i; the interval
	// ends where the next begins. bounds[0] is always 0 and the last
	// interval runs to the segment's maximum value. Empty for direct and
	// zero-arity segments.
	bounds []uint64
	codes  []int32
	// logWidth[k] is log(Width) of element k — the within-range density
	// term the likelihood path charges per covered value, precomputed so
	// scoring does not re-take math.Log per address.
	logWidth []float64
}

// packedCode builds the packed code for a segment value from the
// reference scan: Encode's answer when covered, EncodeNearest's otherwise.
func packedCode(m *SegmentModel, v uint64) int32 {
	if idx, ok := m.Encode(v); ok {
		return int32(idx)<<1 | 1
	}
	idx, ok := m.EncodeNearest(v)
	if !ok {
		return -1
	}
	return int32(idx) << 1
}

// Compile flattens the encoder's per-segment scans into lookup tables.
// The result is immutable and safe for concurrent use.
func (e *Encoder) Compile() *CompiledEncoder {
	c := &CompiledEncoder{
		models: e.Models,
		segs:   make([]compiledSegment, len(e.Models)),
	}
	for i, m := range e.Models {
		cs := compiledSegment{start: m.Seg.Start, width: m.Seg.Width}
		cs.logWidth = make([]float64, len(m.Values))
		for k, v := range m.Values {
			cs.logWidth[k] = math.Log(float64(v.Width()))
		}
		if len(m.Values) > 0 {
			if m.Seg.Width <= directMaxNybbles {
				cs.direct = compileDirect(m)
			} else {
				cs.bounds, cs.codes = compileIntervals(m)
			}
		}
		c.segs[i] = cs
	}
	return c
}

// compileDirect enumerates the whole (narrow) domain through the
// reference scan.
func compileDirect(m *SegmentModel) []int16 {
	max := m.Seg.MaxValue()
	direct := make([]int16, max+1)
	for v := uint64(0); ; v++ {
		direct[v] = int16(packedCode(m, v))
		if v == max {
			return direct
		}
	}
}

// compileIntervals cuts the segment's value axis into elementary
// intervals on which the reference scan's answer is constant:
//
//  1. every element's Lo and Hi+1 is a cut — inside one piece, the set of
//     containing elements (and hence Encode's first-match answer) cannot
//     change;
//  2. inside an uncovered piece, EncodeNearest's answer is monotone in
//     the value (distance to the left neighbor grows while the right
//     shrinks), so the one or two switch points are found by binary
//     search WITH THE REFERENCE ITSELF as the oracle — the compiled table
//     cannot disagree with the scan it replaces by construction.
func compileIntervals(m *SegmentModel) (bounds []uint64, codes []int32) {
	max := m.Seg.MaxValue()
	cutSet := map[uint64]struct{}{0: {}}
	for _, v := range m.Values {
		cutSet[v.Lo] = struct{}{}
		if v.Hi < max {
			cutSet[v.Hi+1] = struct{}{}
		}
	}
	cuts := make([]uint64, 0, len(cutSet))
	for v := range cutSet {
		cuts = append(cuts, v)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

	for ci, lo := range cuts {
		hi := max
		if ci+1 < len(cuts) {
			hi = cuts[ci+1] - 1
		}
		// Split the piece wherever the reference answer changes (at most
		// twice per uncovered piece; never for covered ones).
		for {
			code := packedCode(m, lo)
			bounds = append(bounds, lo)
			codes = append(codes, code)
			if packedCode(m, hi) == code {
				break
			}
			// Largest value in [lo, hi] still answering `code`.
			last := lo
			for l, h := lo+1, hi; l <= h; {
				mid := l + (h-l)/2
				if packedCode(m, mid) == code {
					last = mid
					l = mid + 1
				} else {
					h = mid - 1
				}
			}
			lo = last + 1
		}
	}
	return bounds, codes
}

// lookup returns the packed code of one segment value.
func (cs *compiledSegment) lookup(v uint64) int32 {
	if cs.direct != nil {
		return int32(cs.direct[v])
	}
	if cs.bounds == nil {
		return -1 // no mined values
	}
	lo, hi := 0, len(cs.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cs.bounds[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return cs.codes[lo-1]
}

// NumSegments returns the number of segments the encoder covers.
func (c *CompiledEncoder) NumSegments() int { return len(c.segs) }

// Models returns the per-segment models the encoder was compiled from.
func (c *CompiledEncoder) Models() []*SegmentModel { return c.models }

// EncodeValue resolves one segment value: the element index and whether
// the value was covered by a mined element (false means the nearest
// element was substituted, Encoder.Encode's clamping). idx is -1 only for
// a segment with no mined values.
func (c *CompiledEncoder) EncodeValue(seg int, value uint64) (idx int, covered bool) {
	p := c.segs[seg].lookup(value)
	if p < 0 {
		return -1, false
	}
	return int(p >> 1), p&1 == 1
}

// LogWidth returns log(Width) of element idx of segment seg — the
// within-range density term of the likelihood path.
func (c *CompiledEncoder) LogWidth(seg, idx int) float64 {
	return c.segs[seg].logWidth[idx]
}

// EncodeInto encodes an address into the caller's vector (len must be
// NumSegments) without allocating. exact reports whether every segment
// value was covered by a mined element; clamped segments hold the nearest
// element, as in Encoder.Encode. When any segment has no mined values at
// all its slot is -1 and exact is false.
func (c *CompiledEncoder) EncodeInto(dst []int, a ip6.Addr) (exact bool) {
	n := a.Nybbles()
	exact = true
	for i := range c.segs {
		cs := &c.segs[i]
		p := cs.lookup(n.Field(cs.start, cs.width))
		if p < 0 {
			dst[i] = -1
			exact = false
			continue
		}
		dst[i] = int(p >> 1)
		if p&1 == 0 {
			exact = false
		}
	}
	return exact
}

// Compiled returns the encoder's flat-table form, built once and cached;
// it is safe for concurrent use, like Encoder itself.
func (e *Encoder) Compiled() *CompiledEncoder {
	e.compileOnce.Do(func() { e.compiled = e.Compile() })
	return e.compiled
}
