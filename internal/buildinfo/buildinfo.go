// Package buildinfo derives a human-readable version string for the
// binaries and the serving API from the build's embedded module and VCS
// metadata (runtime/debug.ReadBuildInfo). No build-time ldflags are
// needed: `go build` stamps VCS info automatically inside a git checkout.
package buildinfo

import (
	"runtime/debug"
	"strings"
)

// Version returns "module-version (rev abcdef123456, 2026-07-28, dirty)"
// with the pieces that are actually known; "devel" when built without
// module or VCS metadata (e.g. plain `go run` of a file outside a
// checkout).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	var rev, at string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.time":
			at = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return version
	}
	var b strings.Builder
	b.WriteString(version)
	b.WriteString(" (rev ")
	b.WriteString(rev)
	if at != "" {
		b.WriteString(", ")
		b.WriteString(at)
	}
	if dirty {
		b.WriteString(", dirty")
	}
	b.WriteString(")")
	return b.String()
}
