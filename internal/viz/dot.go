package viz

import (
	"fmt"
	"sort"
	"strings"

	"entropyip/internal/core"
)

// DOTNetwork renders the Bayesian-network structure as a Graphviz DOT
// graph, mirroring Fig. 2 of the paper: one node per segment (laid out left
// to right), one edge per direct dependency, with the edges touching the
// highlighted segment drawn in red.
func DOTNetwork(m *core.Model, highlight string) string {
	var b strings.Builder
	b.WriteString("digraph entropyip {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, fontname=\"sans-serif\"];\n")
	for _, sm := range m.Segments {
		attrs := ""
		if sm.Seg.Label == highlight {
			attrs = ", style=filled, fillcolor=\"#ffdddd\""
		}
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%d-%d\"%s];\n", sm.Seg.Label, sm.Seg.Label, sm.Seg.StartBit(), sm.Seg.EndBit(), attrs)
	}
	deps := m.Dependencies()
	sort.Slice(deps, func(i, j int) bool {
		if deps[i].Parent != deps[j].Parent {
			return deps[i].Parent < deps[j].Parent
		}
		return deps[i].Child < deps[j].Child
	})
	for _, d := range deps {
		color := "black"
		if highlight != "" && (d.Parent == highlight || d.Child == highlight) {
			color = "red"
		}
		fmt.Fprintf(&b, "  %q -> %q [color=%s, label=\"%.2f\"];\n", d.Parent, d.Child, color, d.MI)
	}
	b.WriteString("}\n")
	return b.String()
}
