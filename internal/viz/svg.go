package viz

import (
	"fmt"
	"strings"

	"entropyip/internal/ip6"
)

// SVGEntropyPlot renders the entropy-vs-ACR panel of the paper's figures
// (Figs. 1a, 6, 7a, 8, 9a, 10a): a blue per-nybble entropy line, a dashed
// red ACR line, dashed vertical segment boundaries and segment letters.
// segments holds "label at nybble" pairs as returned by SegmentMarkers.
func SVGEntropyPlot(title string, h []float64, acr []float64, segments []SegmentMarker) string {
	const (
		width    = 760
		height   = 300
		marginL  = 50
		marginB  = 40
		marginT  = 30
		plotW    = width - marginL - 20
		plotH    = height - marginT - marginB
		nNybbles = ip6.NybbleCount
	)
	x := func(nybble float64) float64 { return marginL + nybble/nNybbles*plotW }
	y := func(v float64) float64 { return marginT + (1-clamp01(v))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-family="sans-serif" font-size="14">%s</text>`+"\n", marginL, escape(title))

	// Axes and gridlines.
	for _, v := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", x(0), y(v), x(nNybbles), y(v))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%.1f</text>`+"\n", marginL-5, y(v)+3, v)
	}
	for bits := 0; bits <= 128; bits += 16 {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" text-anchor="middle">%d</text>`+"\n",
			x(float64(bits)/4), height-marginB+14, bits)
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">Prefix length / hex char location (bits)</text>`+"\n",
		x(16), height-8)

	// Segment boundaries and labels.
	for _, m := range segments {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#999" stroke-dasharray="4,3"/>`+"\n",
			x(float64(m.StartNybble)), y(1), x(float64(m.StartNybble)), y(0))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x(float64(m.StartNybble)+float64(m.WidthNybbles)/2), float64(marginT)-4, escape(m.Label))
	}

	// ACR (dashed red), drawn first so entropy overlays it.
	if acr != nil {
		fmt.Fprintf(&b, `<polyline fill="none" stroke="#cc3333" stroke-width="1.5" stroke-dasharray="6,4" points="%s"/>`+"\n",
			polyline(acr, x, y))
	}
	// Entropy (solid blue).
	fmt.Fprintf(&b, `<polyline fill="none" stroke="#2255cc" stroke-width="2" points="%s"/>`+"\n", polyline(h, x, y))
	b.WriteString(`</svg>` + "\n")
	return b.String()
}

// SegmentMarker places a segment label on the entropy plot.
type SegmentMarker struct {
	Label        string
	StartNybble  int
	WidthNybbles int
}

func polyline(values []float64, x func(float64) float64, y func(float64) float64) string {
	var parts []string
	for i, v := range values {
		// Plot each nybble at the center of its column.
		parts = append(parts, fmt.Sprintf("%.1f,%.1f", x(float64(i)+0.5), y(v)))
	}
	return strings.Join(parts, " ")
}

// SVGWindowedHeatmap renders the windowed-entropy matrix (Fig. 5) as an SVG
// heat map: window length on the X axis, window position on the Y axis.
func SVGWindowedHeatmap(title string, w [][]float64) string {
	const cell = 16
	const marginL, marginT = 60, 40
	n := len(w)
	width := marginL + n*cell + 80
	height := marginT + n*cell + 40
	max := 0.0
	for _, row := range w {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14">%s</text>`+"\n", marginL, escape(title))
	for pos, row := range w {
		for li, v := range row {
			r, g, bb := heatColor(v / max)
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)"/>`+"\n",
				marginL+li*cell, marginT+pos*cell, cell, cell, r, g, bb)
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">window length (nybbles) →</text>`+"\n", marginL, height-10)
	fmt.Fprintf(&b, `<text x="10" y="%d" font-family="sans-serif" font-size="11">pos ↓</text>`+"\n", marginT+12)
	b.WriteString(`</svg>` + "\n")
	return b.String()
}

// heatColor maps a normalized value to a blue→red ramp.
func heatColor(v float64) (r, g, b int) {
	v = clamp01(v)
	return int(40 + 215*v), int(60 + 80*(1-v)), int(220 * (1 - v))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
