package viz

import (
	"fmt"
	"html/template"
	"io"

	"entropyip/internal/core"
	"entropyip/internal/ip6"
)

// BrowserPage renders the "graphical web page" of the paper (§1, Fig. 1):
// the entropy/ACR plot, the Bayesian-network dependency list, and the
// conditional probability browser as a heat-mapped HTML table, optionally
// conditioned on evidence.
type BrowserPage struct {
	// Title identifies the analyzed dataset.
	Title string
	// Model is the trained Entropy/IP model.
	Model *core.Model
	// Evidence conditions the browser (may be nil for the prior view).
	Evidence core.Evidence
}

type browserData struct {
	Title        string
	TrainCount   int
	TotalEntropy string
	EvidenceDesc string
	EntropySVG   template.HTML
	Segments     []browserSegment
	Dependencies []core.Dependency
}

type browserSegment struct {
	Label   string
	Bits    string
	Entries []browserEntry
}

type browserEntry struct {
	Code    string
	Display string
	Percent string
	Color   template.CSS
	IsRange bool
}

var browserTemplate = template.Must(template.New("browser").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>Entropy/IP — {{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; }
h1 { font-size: 1.4em; }
table.browser { border-collapse: collapse; }
table.browser th { padding: 4px 8px; text-align: left; background: #eee; }
table.browser td { padding: 2px 8px; font-family: monospace; font-size: 0.85em; }
.dep { color: #555; }
</style>
</head>
<body>
<h1>Entropy/IP analysis — {{.Title}}</h1>
<p>{{.TrainCount}} training addresses, total entropy H<sub>S</sub> = {{.TotalEntropy}}.
{{if .EvidenceDesc}}Conditioned on: <b>{{.EvidenceDesc}}</b>.{{end}}</p>
{{.EntropySVG}}
<h2>Segment dependencies (Bayesian network)</h2>
<ul>
{{range .Dependencies}}<li class="dep">{{.Parent}} &rarr; {{.Child}} (mutual information {{printf "%.2f" .MI}} bits)</li>
{{end}}</ul>
<h2>Conditional probability browser</h2>
<table class="browser">
<tr>{{range .Segments}}<th>{{.Label}}<br><small>{{.Bits}}</small></th>{{end}}</tr>
<tr>
{{range .Segments}}<td valign="top">
{{range .Entries}}<div style="background: {{.Color}}" title="{{.Code}}">{{.Display}} <b>{{.Percent}}</b></div>
{{end}}</td>
{{end}}</tr>
</table>
</body>
</html>
`))

// Render writes the page as HTML to w.
func (p *BrowserPage) Render(w io.Writer) error {
	m := p.Model
	dists, err := m.Browse(p.Evidence)
	if err != nil {
		return err
	}
	markers := SegmentMarkers(m)
	data := browserData{
		Title:        p.Title,
		TrainCount:   m.TrainCount,
		TotalEntropy: fmt.Sprintf("%.1f", m.TotalEntropy()),
		EvidenceDesc: evidenceDesc(p.Evidence),
		EntropySVG:   template.HTML(SVGEntropyPlot("Entropy and 4-bit ACR per nybble", m.Profile.H[:], m.ACR.ACR[:], markers)),
		Dependencies: m.Dependencies(),
	}
	for i, sm := range m.Segments {
		seg := browserSegment{
			Label: sm.Seg.Label,
			Bits:  fmt.Sprintf("bits %d-%d", sm.Seg.StartBit(), sm.Seg.EndBit()),
		}
		for _, e := range dists[i].Entries {
			seg.Entries = append(seg.Entries, browserEntry{
				Code:    e.Code,
				Display: e.Display,
				Percent: fmt.Sprintf("%.0f%%", e.Prob*100),
				Color:   template.CSS(probColor(e.Prob)),
				IsRange: e.IsRange,
			})
		}
		data.Segments = append(data.Segments, seg)
	}
	return browserTemplate.Execute(w, data)
}

// SegmentMarkers converts a model's segmentation into plot markers.
func SegmentMarkers(m *core.Model) []SegmentMarker {
	out := make([]SegmentMarker, 0, len(m.Segments))
	for _, sm := range m.Segments {
		out = append(out, SegmentMarker{
			Label:        sm.Seg.Label,
			StartNybble:  sm.Seg.Start,
			WidthNybbles: sm.Seg.Width,
		})
	}
	// Markers past the model's coverage (e.g. /64-only models) are fine;
	// the plot is always 32 nybbles wide.
	if len(out) > ip6.NybbleCount {
		out = out[:ip6.NybbleCount]
	}
	return out
}

func evidenceDesc(ev core.Evidence) string {
	if len(ev) == 0 {
		return ""
	}
	s := ""
	for label, code := range ev {
		if s != "" {
			s += ", "
		}
		s += label + "=" + code
	}
	return s
}

// probColor maps a probability to the heat-map color ramp used by the
// paper's interface (white → yellow → red).
func probColor(p float64) string {
	p = clamp01(p)
	r := 255
	g := int(255 - 160*p)
	b := int(255 - 255*p)
	return fmt.Sprintf("rgb(%d,%d,%d)", r, g, b)
}
