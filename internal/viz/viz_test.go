package viz

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"entropyip/internal/core"
	"entropyip/internal/entropy"
	"entropyip/internal/ip6"
)

// vizModel builds a small model for rendering tests.
func vizModel(t *testing.T) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	base := ip6.MustParseAddr("2001:db8::")
	addrs := make([]ip6.Addr, 3000)
	for i := range addrs {
		a := base.SetField(12, 4, uint64(rng.Intn(64)))
		if rng.Float64() < 0.5 {
			a = a.SetField(31, 1, 1)
		} else {
			a = a.SetField(16, 16, rng.Uint64())
		}
		addrs[i] = a
	}
	m, err := core.Build(addrs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestASCIIEntropy(t *testing.T) {
	h := make([]float64, 32)
	acr := make([]float64, 32)
	for i := 16; i < 32; i++ {
		h[i] = 1
		acr[i] = 0.5
	}
	out := ASCIIEntropy(h, acr, []string{"A", "", "", "", "", "", "", "", "B"})
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Error("plot should contain entropy and ACR marks")
	}
	if !strings.Contains(out, "legend") {
		t.Error("missing legend")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("too few lines: %d", len(lines))
	}
	// Without segments and ACR it still renders.
	out = ASCIIEntropy(h, nil, nil)
	if !strings.Contains(out, "#") {
		t.Error("entropy marks missing")
	}
	// Oversized input is clamped.
	_ = ASCIIEntropy(make([]float64, 64), nil, nil)
}

func TestASCIIWindowed(t *testing.T) {
	w := [][]float64{{0, 1, 2}, {3, 4}, {5}}
	out := ASCIIWindowed(w)
	if !strings.Contains(out, "windowed entropy") {
		t.Error("missing title")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Error("expected one line per position plus title")
	}
	// All-zero matrix must not divide by zero.
	_ = ASCIIWindowed([][]float64{{0, 0}})
}

func TestASCIIBrowser(t *testing.T) {
	m := vizModel(t)
	dists, err := m.Browse(nil)
	if err != nil {
		t.Fatal(err)
	}
	out := ASCIIBrowser(dists)
	if !strings.Contains(out, "segment A") || !strings.Contains(out, "A1") {
		t.Errorf("browser output missing segment A: %s", out[:200])
	}
	if !strings.Contains(out, "%") {
		t.Error("browser output missing probabilities")
	}
}

func TestSVGEntropyPlot(t *testing.T) {
	m := vizModel(t)
	svg := SVGEntropyPlot("test & title", m.Profile.H[:], m.ACR.ACR[:], SegmentMarkers(m))
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	if !strings.Contains(svg, "polyline") {
		t.Error("missing data lines")
	}
	if !strings.Contains(svg, "test &amp; title") {
		t.Error("title not escaped")
	}
	// One dashed vertical line per segment.
	if strings.Count(svg, "stroke-dasharray=\"4,3\"") != len(m.Segments) {
		t.Error("segment boundary count mismatch")
	}
	// Without ACR.
	svg = SVGEntropyPlot("no acr", m.Profile.H[:], nil, nil)
	if strings.Count(svg, "polyline") != 1 {
		t.Error("expected a single polyline without ACR")
	}
}

func TestSVGWindowedHeatmap(t *testing.T) {
	addrs := []ip6.Addr{ip6.MustParseAddr("2001:db8::1"), ip6.MustParseAddr("2001:db8::2")}
	w := entropy.NewWindowed(addrs)
	svg := SVGWindowedHeatmap("fig5", w)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "rect") {
		t.Error("heatmap not rendered")
	}
	// Degenerate all-zero matrix.
	_ = SVGWindowedHeatmap("zero", [][]float64{{0}})
}

func TestHeatAndProbColors(t *testing.T) {
	for _, v := range []float64{-1, 0, 0.5, 1, 2} {
		r, g, b := heatColor(v)
		if r < 0 || r > 255 || g < 0 || g > 255 || b < 0 || b > 255 {
			t.Errorf("heatColor(%v) out of range", v)
		}
		c := probColor(v)
		if !strings.HasPrefix(c, "rgb(") {
			t.Errorf("probColor(%v) = %q", v, c)
		}
	}
}

func TestDOTNetwork(t *testing.T) {
	m := vizModel(t)
	dot := DOTNetwork(m, "")
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "rankdir=LR") {
		t.Error("not a DOT digraph")
	}
	for _, sm := range m.Segments {
		if !strings.Contains(dot, "\""+sm.Seg.Label+"\"") {
			t.Errorf("missing node %s", sm.Seg.Label)
		}
	}
	deps := m.Dependencies()
	if len(deps) > 0 {
		hl := DOTNetwork(m, deps[0].Child)
		if !strings.Contains(hl, "color=red") {
			t.Error("highlighted edges should be red")
		}
		if !strings.Contains(hl, "fillcolor") {
			t.Error("highlighted node should be filled")
		}
	}
}

func TestBrowserPage(t *testing.T) {
	m := vizModel(t)
	var buf bytes.Buffer
	page := &BrowserPage{Title: "unit <test>", Model: m}
	if err := page.Render(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	if !strings.Contains(html, "<!DOCTYPE html>") || !strings.Contains(html, "Entropy/IP") {
		t.Error("not an HTML page")
	}
	if !strings.Contains(html, "unit &lt;test&gt;") {
		t.Error("title not escaped")
	}
	if !strings.Contains(html, "Conditional probability browser") {
		t.Error("missing browser table")
	}
	// Conditioned page mentions the evidence.
	var seg string
	var code string
	for _, sm := range m.Segments {
		if sm.Arity() > 1 {
			seg, code = sm.Seg.Label, sm.Values[0].Code
			break
		}
	}
	if seg != "" {
		buf.Reset()
		page = &BrowserPage{Title: "cond", Model: m, Evidence: core.Evidence{seg: code}}
		if err := page.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "Conditioned on") {
			t.Error("conditioned page should mention the evidence")
		}
	}
	// Invalid evidence propagates an error.
	page = &BrowserPage{Title: "bad", Model: m, Evidence: core.Evidence{"ZZ": "Z1"}}
	if err := page.Render(&buf); err == nil {
		t.Error("expected error for invalid evidence")
	}
}
