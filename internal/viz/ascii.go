// Package viz renders Entropy/IP analysis results for humans: ASCII plots
// for terminals, SVG plots of entropy and ACR per nybble (the panels of
// Figs. 1, 6, 7-10 of the paper), the Bayesian-network structure as
// Graphviz DOT (Fig. 2), the windowed-entropy heat map (Fig. 5), and the
// conditional probability browser as a standalone HTML page (Figs. 1b/c).
package viz

import (
	"fmt"
	"strings"

	"entropyip/internal/core"
	"entropyip/internal/ip6"
)

// ASCIIEntropy renders the per-nybble entropy (and, when acr is non-nil,
// the 4-bit ACR) as a fixed-width text chart with one column per nybble,
// suitable for terminals and logs.
func ASCIIEntropy(h []float64, acr []float64, segments []string) string {
	const rows = 10
	var b strings.Builder
	n := len(h)
	if n > ip6.NybbleCount {
		n = ip6.NybbleCount
	}
	// Segment header line (letters aligned to their starting nybble).
	if len(segments) > 0 {
		line := make([]byte, n)
		for i := range line {
			line[i] = ' '
		}
		for i, lbl := range segments {
			if i < n && len(lbl) > 0 {
				line[i] = lbl[0]
			}
		}
		b.WriteString("      ")
		b.Write(line)
		b.WriteByte('\n')
	}
	for row := rows; row >= 1; row-- {
		threshold := float64(row) / rows
		fmt.Fprintf(&b, "%4.1f |", threshold)
		for i := 0; i < n; i++ {
			ch := byte(' ')
			if h[i] >= threshold-1e-9 {
				ch = '#'
			} else if acr != nil && i < len(acr) && acr[i] >= threshold-1e-9 {
				ch = '.'
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	b.WriteString("     +")
	b.WriteString(strings.Repeat("-", n))
	b.WriteString("\n      bits 0")
	b.WriteString(strings.Repeat(" ", n-12))
	b.WriteString("bits 128\n")
	b.WriteString("      legend: # entropy, . 4-bit ACR\n")
	return b.String()
}

// ASCIIWindowed renders the windowed-entropy matrix (Fig. 5) as a
// heat map using a coarse character ramp.
func ASCIIWindowed(w [][]float64) string {
	ramp := []byte(" .:-=+*#%@")
	max := 0.0
	for _, row := range w {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	b.WriteString("windowed entropy (rows: window position, cols: window length)\n")
	for pos, row := range w {
		fmt.Fprintf(&b, "%2d |", pos)
		for _, v := range row {
			idx := int(v / max * float64(len(ramp)-1))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCIIBrowser renders the conditional probability browser (the per-segment
// value distributions) as a text table: one block per segment, one line per
// mined value with a probability bar.
func ASCIIBrowser(dists []core.SegmentDistribution) string {
	var b strings.Builder
	for _, d := range dists {
		fmt.Fprintf(&b, "segment %s\n", d.Label)
		for _, e := range d.Entries {
			bar := strings.Repeat("█", int(e.Prob*30+0.5))
			fmt.Fprintf(&b, "  %-6s %-36s %6.2f%% %s\n", e.Code, e.Display, e.Prob*100, bar)
		}
	}
	return b.String()
}
