package segment

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"entropyip/internal/entropy"
	"entropyip/internal/ip6"
)

// profileFor builds an entropy profile directly from synthetic per-nybble
// entropies by constructing the smallest Profile that works for Segments:
// only H is consulted by the segmentation algorithm.
func profileFor(h []float64) *entropy.Profile {
	p := &entropy.Profile{N: 1}
	copy(p.H[:], h)
	return p
}

func flatProfile(v float64) *entropy.Profile {
	h := make([]float64, ip6.NybbleCount)
	for i := range h {
		h[i] = v
	}
	return profileFor(h)
}

func TestSegmentsForcedBoundariesOnly(t *testing.T) {
	// Flat entropy: only the forced cuts at bits 32 and 64 apply.
	sg := Segments(flatProfile(0.4), Config{})
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sg.Segments) != 3 {
		t.Fatalf("segments = %v", sg)
	}
	want := []struct{ start, width int }{{0, 8}, {8, 8}, {16, 16}}
	for i, w := range want {
		s := sg.Segments[i]
		if s.Start != w.start || s.Width != w.width {
			t.Errorf("segment %d = %v, want start %d width %d", i, s, w.start, w.width)
		}
	}
	if sg.Segments[0].Label != "A" || sg.Segments[2].Label != "C" {
		t.Error("labels wrong")
	}
	if sg.Covered() != 32 {
		t.Errorf("Covered = %d", sg.Covered())
	}
}

func TestSegmentsThresholdCrossing(t *testing.T) {
	// Entropy jumps from 0 to 0.8 at nybble 20 -> expect a cut there.
	h := make([]float64, ip6.NybbleCount)
	for i := 20; i < 32; i++ {
		h[i] = 0.8
	}
	sg := Segments(profileFor(h), Config{})
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range sg.Segments {
		if s.Start == 20 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a segment starting at nybble 20: %v", sg)
	}
}

func TestSegmentsHysteresisSuppressesSmallChanges(t *testing.T) {
	// A small wiggle around a threshold must not create a new segment:
	// 0.49 -> 0.52 crosses 0.5 but |diff| = 0.03 < Th.
	h := make([]float64, ip6.NybbleCount)
	for i := range h {
		h[i] = 0.49
	}
	for i := 20; i < 32; i++ {
		h[i] = 0.52
	}
	sg := Segments(profileFor(h), Config{})
	for _, s := range sg.Segments {
		if s.Start == 20 {
			t.Errorf("hysteresis should suppress cut at 20: %v", sg)
		}
	}
	// The paper's example: 0.49 -> 0.55 (crosses 0.5 and exceeds Th).
	for i := 20; i < 32; i++ {
		h[i] = 0.55
	}
	sg = Segments(profileFor(h), Config{})
	if _, ok := findStart(sg, 20); !ok {
		t.Errorf("expected cut at 20 for 0.49->0.55: %v", sg)
	}
	// And 0.49 -> 0.29 (crosses 0.3 downward).
	for i := 20; i < 32; i++ {
		h[i] = 0.29
	}
	sg = Segments(profileFor(h), Config{})
	if _, ok := findStart(sg, 20); !ok {
		t.Errorf("expected cut at 20 for 0.49->0.29: %v", sg)
	}
}

func findStart(sg *Segmentation, start int) (Segment, bool) {
	for _, s := range sg.Segments {
		if s.Start == start {
			return s, true
		}
	}
	return Segment{}, false
}

func TestSegmentsNoCrossingWithoutThreshold(t *testing.T) {
	// 0.6 -> 0.8 crosses no threshold (none between 0.6 and 0.8), so no cut
	// even though the change is large.
	h := make([]float64, ip6.NybbleCount)
	for i := range h {
		h[i] = 0.6
	}
	for i := 24; i < 32; i++ {
		h[i] = 0.8
	}
	sg := Segments(profileFor(h), Config{})
	if _, ok := findStart(sg, 24); ok {
		t.Errorf("no threshold between 0.6 and 0.8; cut unexpected: %v", sg)
	}
}

func TestSegmentsMaxNybble(t *testing.T) {
	sg := Segments(flatProfile(0.2), Config{MaxNybble: 16})
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	if sg.Covered() != 16 {
		t.Errorf("Covered = %d, want 16", sg.Covered())
	}
	for _, s := range sg.Segments {
		if s.End() > 16 {
			t.Errorf("segment %v extends past nybble 16", s)
		}
	}
}

func TestSegmentsCustomConfig(t *testing.T) {
	// Disable hysteresis and use a single threshold.
	h := make([]float64, ip6.NybbleCount)
	for i := 10; i < 32; i++ {
		h[i] = 0.06
	}
	sg := Segments(profileFor(h), Config{Thresholds: []float64{0.05}, Hysteresis: -1, ForcedBoundaries: []int{64}})
	if _, ok := findStart(sg, 10); !ok {
		t.Errorf("expected cut at 10: %v", sg)
	}
	if _, ok := findStart(sg, 8); ok {
		t.Errorf("boundary at 32 bits should not be forced here: %v", sg)
	}
	if _, ok := findStart(sg, 16); !ok {
		t.Errorf("boundary at 64 bits should be forced: %v", sg)
	}
	// Invalid forced boundaries are ignored.
	sg = Segments(flatProfile(0.1), Config{ForcedBoundaries: []int{30, 0, 128, -4}})
	if len(sg.Segments) != 2 {
		// Only the 16-nybble cap splits the address (at nybble 16).
		t.Errorf("unexpected segmentation %v", sg)
	}
}

func TestSegmentsNeverWiderThan16(t *testing.T) {
	f := func(raw [32]uint8, seed int64) bool {
		h := make([]float64, ip6.NybbleCount)
		for i, v := range raw {
			h[i] = float64(v) / 255
		}
		sg := Segments(profileFor(h), Config{})
		if err := sg.Validate(); err != nil {
			return false
		}
		return sg.Covered() == ip6.NybbleCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSegmentValueRoundTrip(t *testing.T) {
	sg := Segments(flatProfile(0.4), Config{})
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var b [16]byte
		rng.Read(b[:])
		a := ip6.AddrFrom16(b)
		vals := sg.Values(a)
		back, err := sg.Assemble(vals)
		if err != nil {
			t.Fatal(err)
		}
		if back != a {
			t.Fatalf("round trip failed: %v != %v", back, a)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	sg := Segments(flatProfile(0.4), Config{})
	if _, err := sg.Assemble([]uint64{1}); err == nil {
		t.Error("expected length mismatch error")
	}
	vals := make([]uint64, len(sg.Segments))
	vals[0] = 1 << 60 // segment 0 has width 8 nybbles = 32 bits
	if _, err := sg.Assemble(vals); err == nil {
		t.Error("expected overflow error")
	}
}

func TestSegmentAccessors(t *testing.T) {
	s := Segment{Label: "B", Start: 8, Width: 2}
	if s.StartBit() != 32 || s.EndBit() != 40 || s.End() != 10 {
		t.Error("bit accessors wrong")
	}
	if s.String() != "B(32-40)" {
		t.Errorf("String = %q", s.String())
	}
	a := ip6.MustParseAddr("2001:db8:42ff::1")
	if s.Value(a) != 0x42 {
		t.Errorf("Value = %x", s.Value(a))
	}
	if s.MaxValue() != 0xff {
		t.Errorf("MaxValue = %x", s.MaxValue())
	}
	if s.FormatValue(0x7) != "07" {
		t.Errorf("FormatValue = %q", s.FormatValue(7))
	}
	full := Segment{Start: 16, Width: 16}
	if full.MaxValue() != ^uint64(0) {
		t.Error("full-width MaxValue should be all ones")
	}
}

func TestLabel(t *testing.T) {
	cases := map[int]string{0: "A", 1: "B", 25: "Z", 26: "AA", 27: "AB", 51: "AZ", 52: "BA", -1: "?"}
	for i, want := range cases {
		if got := Label(i); got != want {
			t.Errorf("Label(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestFindAndAt(t *testing.T) {
	sg := Segments(flatProfile(0.4), Config{})
	if s, ok := sg.Find("B"); !ok || s.Start != 8 {
		t.Errorf("Find(B) = %v, %v", s, ok)
	}
	if _, ok := sg.Find("Z"); ok {
		t.Error("Find(Z) should fail")
	}
	if s, ok := sg.At(20); !ok || s.Label != "C" {
		t.Errorf("At(20) = %v, %v", s, ok)
	}
	if _, ok := sg.At(99); ok {
		t.Error("At(99) should fail")
	}
}

func TestSegmentationString(t *testing.T) {
	sg := Segments(flatProfile(0.4), Config{})
	s := sg.String()
	if !strings.HasPrefix(s, "A(0-32) B(32-64)") && !strings.Contains(s, "A(0-32)") {
		t.Errorf("String = %q", s)
	}
}

func TestFixedWidth(t *testing.T) {
	sg := FixedWidth(4, 0)
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sg.Segments) != 8 || sg.Covered() != 32 {
		t.Errorf("FixedWidth(4) = %v", sg)
	}
	sg = FixedWidth(5, 16)
	if sg.Covered() != 16 {
		t.Errorf("Covered = %d", sg.Covered())
	}
	last := sg.Segments[len(sg.Segments)-1]
	if last.Width != 1 {
		t.Errorf("last width = %d", last.Width)
	}
	// Degenerate widths clamp.
	if got := FixedWidth(0, 0); got.Segments[0].Width != 1 {
		t.Error("width 0 should clamp to 1")
	}
	if got := FixedWidth(99, 0); got.Segments[0].Width != 16 {
		t.Error("width 99 should clamp to 16")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	sg := Segments(flatProfile(0.4), Config{})
	bad := &Segmentation{Segments: append([]Segment(nil), sg.Segments...)}
	bad.Segments[1].Start = 9
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error for gap")
	}
	bad2 := &Segmentation{Segments: []Segment{{Label: "A", Start: 0, Width: 20}}}
	if err := bad2.Validate(); err == nil {
		t.Error("expected validation error for width > 16")
	}
	bad3 := &Segmentation{Segments: []Segment{{Label: "X", Start: 0, Width: 4}}}
	if err := bad3.Validate(); err == nil {
		t.Error("expected validation error for wrong label")
	}
}

func TestSegmentsOnRealProfile(t *testing.T) {
	// End-to-end: constant /64 prefix with random IIDs must produce a
	// segmentation with a boundary at nybble 16 and high-entropy segments
	// only below it.
	rng := rand.New(rand.NewSource(9))
	base := ip6.MustParseAddr("2001:db8:10:13::")
	addrs := make([]ip6.Addr, 5000)
	for i := range addrs {
		addrs[i] = base.SetField(16, 16, rng.Uint64())
	}
	p := entropy.NewProfile(addrs)
	sg := Segments(p, Config{})
	if err := sg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := findStart(sg, 16); !ok {
		t.Errorf("expected forced boundary at nybble 16: %v", sg)
	}
	for _, s := range sg.Segments {
		if s.End() <= 16 && s.MeanEntropy > 0.3 {
			t.Errorf("network segment %v should have low entropy (%v)", s, s.MeanEntropy)
		}
		if s.Start >= 16 && s.MeanEntropy < 0.9 {
			t.Errorf("IID segment %v should have high entropy (%v)", s, s.MeanEntropy)
		}
	}
}
