// Package segment implements the address segmentation step of Entropy/IP
// (§4.2 of the paper): grouping adjacent nybbles of similar entropy into
// contiguous segments, using a threshold set with hysteresis, plus two
// hard-wired boundaries at bit 32 (the smallest RIR allocation) and bit 64
// (the conventional network/interface identifier split).
package segment

import (
	"fmt"
	"strings"

	"entropyip/internal/entropy"
	"entropyip/internal/ip6"
)

// DefaultThresholds is the threshold set T from the paper. A new segment
// starts at nybble i whenever the entropy of nybble i compared with nybble
// i−1 crosses any of these values (subject to the hysteresis).
var DefaultThresholds = []float64{0.025, 0.1, 0.3, 0.5, 0.9}

// DefaultHysteresis is the hysteresis Th from the paper: the entropy of two
// adjacent nybbles must also differ by more than this amount before a new
// segment is started.
const DefaultHysteresis = 0.05

// Config controls segmentation.
type Config struct {
	// Thresholds is the ordered list of entropy thresholds T. If nil,
	// DefaultThresholds is used.
	Thresholds []float64
	// Hysteresis is Th. If zero, DefaultHysteresis is used. Set to a
	// negative value for no hysteresis.
	Hysteresis float64
	// ForcedBoundaries lists bit positions at which a segment boundary is
	// always placed (in addition to threshold crossings). If nil, the
	// paper's defaults {32, 64} are used. Positions must be multiples of 4
	// within 4..124; others are ignored.
	ForcedBoundaries []int
	// MaxNybble restricts segmentation to the first MaxNybble nybbles of
	// the address (the rest are not assigned to any segment). Zero means
	// all 32 nybbles. The paper uses 16 for client /64-prefix prediction
	// (§5.6).
	MaxNybble int
}

func (c Config) thresholds() []float64 {
	if c.Thresholds == nil {
		return DefaultThresholds
	}
	return c.Thresholds
}

func (c Config) hysteresis() float64 {
	switch {
	case c.Hysteresis == 0:
		return DefaultHysteresis
	case c.Hysteresis < 0:
		return 0
	default:
		return c.Hysteresis
	}
}

func (c Config) maxNybble() int {
	if c.MaxNybble <= 0 || c.MaxNybble > ip6.NybbleCount {
		return ip6.NybbleCount
	}
	return c.MaxNybble
}

func (c Config) forcedBoundaries() map[int]bool {
	bits := c.ForcedBoundaries
	if bits == nil {
		bits = []int{32, 64}
	}
	out := make(map[int]bool, len(bits))
	for _, b := range bits {
		if b%4 == 0 && b >= 4 && b < 4*ip6.NybbleCount {
			out[b/4] = true // nybble index at which a new segment must start
		}
	}
	return out
}

// Segment is a contiguous block of nybbles with similar entropy.
type Segment struct {
	// Label is the segment's letter: "A", "B", ..., "Z", "AA", ... in
	// left-to-right order.
	Label string
	// Start is the first nybble index of the segment (0-based).
	Start int
	// Width is the number of nybbles in the segment (1..16).
	Width int
	// MeanEntropy is the mean normalized entropy of the segment's nybbles.
	MeanEntropy float64
}

// End returns the nybble index one past the end of the segment.
func (s Segment) End() int { return s.Start + s.Width }

// StartBit returns the first bit of the segment (0-based).
func (s Segment) StartBit() int { return 4 * s.Start }

// EndBit returns the bit one past the end of the segment.
func (s Segment) EndBit() int { return 4 * s.End() }

// String describes the segment, e.g. "B(32-40)".
func (s Segment) String() string {
	return fmt.Sprintf("%s(%d-%d)", s.Label, s.StartBit(), s.EndBit())
}

// Value extracts the segment's value from an address as an unsigned
// integer (most significant nybble first).
func (s Segment) Value(a ip6.Addr) uint64 {
	return a.Field(s.Start, s.Width)
}

// Set writes the value v into the segment's nybbles of a and returns the
// result.
func (s Segment) Set(a ip6.Addr, v uint64) ip6.Addr {
	return a.SetField(s.Start, s.Width, v)
}

// MaxValue returns the largest value representable in the segment
// (16^Width − 1).
func (s Segment) MaxValue() uint64 {
	if s.Width >= 16 {
		return ^uint64(0)
	}
	return uint64(1)<<(4*uint(s.Width)) - 1
}

// FormatValue renders a segment value as a fixed-width hexadecimal string
// of the segment's width, as the paper's tables do.
func (s Segment) FormatValue(v uint64) string {
	return fmt.Sprintf("%0*x", s.Width, v)
}

// Segmentation is an ordered list of segments covering nybbles
// [0, MaxNybble) of the address.
type Segmentation struct {
	Segments []Segment
}

// Segments computes the segmentation of an address set from its per-nybble
// entropy profile, using the paper's threshold algorithm:
//
//	start a new segment at nybble i when H(Xi) compared with H(Xi−1)
//	passes through any threshold in T and |H(Xi) − H(Xi−1)| > Th.
//
// Boundaries are additionally forced at the configured bit positions
// (default bits 32 and 64). No segment is ever wider than 16 nybbles, so
// segment values always fit in a uint64.
func Segments(profile *entropy.Profile, cfg Config) *Segmentation {
	maxN := cfg.maxNybble()
	thresholds := cfg.thresholds()
	th := cfg.hysteresis()
	forced := cfg.forcedBoundaries()

	var cuts []int // nybble indices at which a new segment starts (excluding 0)
	for i := 1; i < maxN; i++ {
		if forced[i] {
			cuts = append(cuts, i)
			continue
		}
		// The paper always makes bits 1-32 a single segment A (the smallest
		// RIR allocation); threshold crossings within the first 8 nybbles
		// therefore never start a new segment. Explicit forced boundaries
		// placed there still apply (handled above).
		if i < 8 && cfg.ForcedBoundaries == nil {
			continue
		}
		prev, cur := profile.H[i-1], profile.H[i]
		if crossesThreshold(prev, cur, thresholds) && abs(cur-prev) > th {
			cuts = append(cuts, i)
		}
	}

	// Build segments from cut positions, enforcing the 16-nybble cap.
	starts := append([]int{0}, cuts...)
	var segs []Segment
	for idx, start := range starts {
		end := maxN
		if idx+1 < len(starts) {
			end = starts[idx+1]
		}
		for start < end {
			width := end - start
			if width > 16 {
				width = 16
			}
			segs = append(segs, Segment{Start: start, Width: width})
			start += width
		}
	}
	for i := range segs {
		segs[i].Label = Label(i)
		segs[i].MeanEntropy = meanEntropy(profile, segs[i])
	}
	return &Segmentation{Segments: segs}
}

// crossesThreshold reports whether moving from entropy a to entropy b
// passes through any of the thresholds: some t lies strictly between them
// (or equals one bound while the values differ across it).
func crossesThreshold(a, b float64, thresholds []float64) bool {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	for _, t := range thresholds {
		if lo < t && hi >= t {
			return true
		}
		if lo <= t && hi > t {
			return true
		}
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func meanEntropy(p *entropy.Profile, s Segment) float64 {
	sum := 0.0
	for i := s.Start; i < s.End(); i++ {
		sum += p.H[i]
	}
	return sum / float64(s.Width)
}

// Label returns the letter label of the i-th segment: A..Z, then AA, AB...
func Label(i int) string {
	if i < 0 {
		return "?"
	}
	if i < 26 {
		return string(rune('A' + i))
	}
	return Label(i/26-1) + string(rune('A'+i%26))
}

// Find returns the segment with the given label, if present.
func (sg *Segmentation) Find(label string) (Segment, bool) {
	for _, s := range sg.Segments {
		if s.Label == label {
			return s, true
		}
	}
	return Segment{}, false
}

// At returns the segment containing the given nybble index, if any.
func (sg *Segmentation) At(nybble int) (Segment, bool) {
	for _, s := range sg.Segments {
		if nybble >= s.Start && nybble < s.End() {
			return s, true
		}
	}
	return Segment{}, false
}

// Covered returns the number of nybbles covered by the segmentation.
func (sg *Segmentation) Covered() int {
	n := 0
	for _, s := range sg.Segments {
		n += s.Width
	}
	return n
}

// Values extracts the value of every segment from the address, in segment
// order.
func (sg *Segmentation) Values(a ip6.Addr) []uint64 {
	out := make([]uint64, len(sg.Segments))
	for i, s := range sg.Segments {
		out[i] = s.Value(a)
	}
	return out
}

// Assemble builds an address from per-segment values (the inverse of
// Values). Nybbles not covered by any segment are zero.
func (sg *Segmentation) Assemble(values []uint64) (ip6.Addr, error) {
	if len(values) != len(sg.Segments) {
		return ip6.Addr{}, fmt.Errorf("segment: Assemble needs %d values, got %d", len(sg.Segments), len(values))
	}
	var a ip6.Addr
	for i, s := range sg.Segments {
		if values[i] > s.MaxValue() {
			return ip6.Addr{}, fmt.Errorf("segment: value %#x does not fit in segment %s", values[i], s)
		}
		a = s.Set(a, values[i])
	}
	return a, nil
}

// String renders the segmentation compactly, e.g.
// "A(0-32) B(32-40) C(40-48) ...".
func (sg *Segmentation) String() string {
	parts := make([]string, len(sg.Segments))
	for i, s := range sg.Segments {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Validate checks the internal consistency of the segmentation: segments
// are ordered, contiguous from nybble 0, non-empty and at most 16 nybbles
// wide.
func (sg *Segmentation) Validate() error {
	next := 0
	for i, s := range sg.Segments {
		if s.Start != next {
			return fmt.Errorf("segment: segment %d starts at %d, want %d", i, s.Start, next)
		}
		if s.Width < 1 || s.Width > 16 {
			return fmt.Errorf("segment: segment %d has invalid width %d", i, s.Width)
		}
		if s.Label != Label(i) {
			return fmt.Errorf("segment: segment %d has label %q, want %q", i, s.Label, Label(i))
		}
		next = s.End()
	}
	if next > ip6.NybbleCount {
		return fmt.Errorf("segment: segmentation extends past the address (%d nybbles)", next)
	}
	return nil
}

// FixedWidth returns a segmentation that ignores entropy and simply cuts
// the address into fixed-width segments of the given number of nybbles
// (the last segment may be shorter). It is used as an ablation baseline.
func FixedWidth(width, maxNybble int) *Segmentation {
	if width < 1 {
		width = 1
	}
	if width > 16 {
		width = 16
	}
	if maxNybble <= 0 || maxNybble > ip6.NybbleCount {
		maxNybble = ip6.NybbleCount
	}
	var segs []Segment
	for start := 0; start < maxNybble; start += width {
		w := width
		if start+w > maxNybble {
			w = maxNybble - start
		}
		segs = append(segs, Segment{Label: Label(len(segs)), Start: start, Width: w})
	}
	return &Segmentation{Segments: segs}
}
