package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"sync/atomic"
	"time"
)

// NewLogger builds a structured logger writing to w. format is "json"
// (one JSON object per line, for log shippers) or "text" (logfmt-style,
// for humans); level is the minimum level emitted.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(h)
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// nopHandler drops everything before attribute formatting happens.
// (slog.DiscardHandler exists only since Go 1.24; this repo targets 1.22.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

var nopLogger = slog.New(nopHandler{})

// NopLogger returns a logger that discards every record without
// formatting it. It is the default wherever no logger was configured, so
// instrumented code never needs a nil check.
func NopLogger() *slog.Logger { return nopLogger }

// Request IDs: a per-process random prefix plus an atomic sequence
// number. Unique within a process lifetime and almost certainly across
// restarts, which is all log correlation needs — this is not a security
// token.
var (
	reqSeq    atomic.Uint64
	reqPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Degrade to a time-derived prefix; uniqueness within the
			// process still holds via the sequence number.
			v := uint32(time.Now().UnixNano())
			b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		}
		return hex.EncodeToString(b[:])
	}()
)

// NextRequestID returns a process-unique request ID like "9f3a1c08-2a".
func NextRequestID() string {
	return reqPrefix + "-" + strconv.FormatUint(reqSeq.Add(1), 16)
}
