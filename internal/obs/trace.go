package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Stage is one timed step of a pipeline run.
type Stage struct {
	Name     string
	Duration time.Duration
}

// StageTrace accumulates named stage durations from one pipeline run
// (core.Build reports entropy → segment → mine → compile → encode →
// learn through Options.OnStage). Record matches the OnStage signature,
// so a trace wires up as `opts.OnStage = tr.Record`. Safe for concurrent
// use, though a single Build reports sequentially.
type StageTrace struct {
	mu     sync.Mutex
	stages []Stage
}

// NewStageTrace returns an empty trace.
func NewStageTrace() *StageTrace { return &StageTrace{} }

// Record appends one stage observation.
func (t *StageTrace) Record(name string, d time.Duration) {
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Duration: d})
	t.mu.Unlock()
}

// Stages returns a copy of the recorded stages in order.
func (t *StageTrace) Stages() []Stage {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stage, len(t.stages))
	copy(out, t.stages)
	return out
}

// Total returns the sum of all recorded durations.
func (t *StageTrace) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total time.Duration
	for _, s := range t.stages {
		total += s.Duration
	}
	return total
}

// Report writes an aligned per-stage timing table with each stage's
// share of the total, ending with a total line.
func (t *StageTrace) Report(w io.Writer) error {
	stages := t.Stages()
	var total time.Duration
	width := len("total")
	for _, s := range stages {
		total += s.Duration
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range stages {
		share := 0.0
		if total > 0 {
			share = 100 * float64(s.Duration) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "  %-*s %12v %6.1f%%\n", width, s.Name, s.Duration.Round(time.Microsecond), share); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  %-*s %12v\n", width, "total", total.Round(time.Microsecond))
	return err
}
