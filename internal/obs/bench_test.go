package obs

import "testing"

// BenchmarkMetricsHotPath is the CI-gated cost of instrumenting one
// request: a counter increment plus a histogram observation, the exact
// pair every instrumented hot path pays. Must stay 0 allocs/op (gated
// strictly by scripts/check_bench.sh) — the zero-allocation serving
// plane's contract extends to its instrumentation.
func BenchmarkMetricsHotPath(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_requests_total", "help", "route", "GET /bench")
	h := r.Histogram("bench_request_seconds", "help", nil, "route", "GET /bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(0.0123)
	}
}

// BenchmarkRender is the scrape-side cost over a realistic family count,
// rendering into a reused buffer. Informational.
func BenchmarkRender(b *testing.B) {
	r := NewRegistry()
	routes := []string{"GET /v1/models", "PUT /v1/models/{name}", "POST /v1/models/{name}/generate", "POST /v1/models/{name}/observe"}
	for _, rt := range routes {
		r.Counter("eip_http_requests_total", "Requests.", "route", rt).Add(12345)
		r.Histogram("eip_http_request_seconds", "Latency.", nil, "route", rt).Observe(0.01)
	}
	r.Collect(func(e *Expo) {
		for _, m := range []string{"web", "dns", "cdn"} {
			e.Gauge("eip_ingest_window", "Window.", 4096, "model", m)
			e.Gauge("eip_drift_score", "Score.", 0.12, "model", m)
		}
	})
	buf := make([]byte, 0, 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.Render(buf[:0])
	}
}
