package trace

import (
	"testing"
	"time"
)

// BenchmarkSpanHotPath is the request hot path's zero-allocation
// contract, gated in scripts/check_bench.sh ZERO_ALLOC: open a root
// span, set the attributes the serve middleware sets, open and finish a
// child, finish the root. SampleEvery is huge and the threshold high so
// every arena is discarded and recycled — the steady state under normal
// traffic, where tracing must be free.
func BenchmarkSpanHotPath(b *testing.B) {
	rec := NewRecorder(Policy{SampleEvery: 1 << 30, SlowThreshold: time.Hour})
	tr := NewTracer(rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.StartRoot("GET /v1/models/{model}/generate", SpanContext{})
		root.SetAttr("encoding", "binary")
		root.SetInt("status", 200)
		c := root.StartChild("generate.stream")
		c.SetInt("produced", 100000)
		c.Finish()
		root.Finish()
	}
}

// BenchmarkSpanHotPathJoined is the same path joining an inbound
// traceparent — the forced keep means the arena is retained (ring
// eviction recycles), so this is informational, not zero-alloc gated.
func BenchmarkSpanHotPathJoined(b *testing.B) {
	rec := NewRecorder(Policy{SampleEvery: 1 << 30, SlowThreshold: time.Hour, Capacity: 64})
	tr := NewTracer(rec)
	sc := NewSpanContext()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := tr.StartRoot("GET /v1/models/{model}/generate", sc)
		root.SetInt("status", 200)
		root.Finish()
	}
}

func BenchmarkTraceparentParse(b *testing.B) {
	h := Traceparent(NewSpanContext())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseTraceparent(h); err != nil {
			b.Fatal(err)
		}
	}
}
