// Package trace is a dependency-free, in-process tracing layer for the
// serving plane. It grows the PR 6 StageTrace stopwatch into real spans:
//
//   - W3C Trace Context (traceparent) parse/format for propagation across
//     the wire, so eipgen/eipscan rounds connect to server-side traces.
//   - Zero-allocation span creation on the request hot path: spans live in
//     a pooled per-trace arena with fixed attribute slots, claimed by
//     atomic index (see span.go).
//   - An always-on flight recorder: a lock-sharded ring buffer retaining
//     completed traces under a tail-sampling policy (see recorder.go).
//
// The package deliberately implements only what the serving plane needs;
// it is not an OpenTelemetry SDK. IDs are correlation identifiers, not
// security tokens — same stance as obs.NextRequestID.
package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"sync/atomic"
)

// TraceID is a 16-byte W3C trace identifier. The all-zero value is invalid.
type TraceID [16]byte

// SpanID is an 8-byte W3C span identifier. The all-zero value is invalid.
type SpanID [8]byte

// IsValid reports whether the trace ID is non-zero.
func (t TraceID) IsValid() bool { return t != TraceID{} }

// IsValid reports whether the span ID is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

const hexDigits = "0123456789abcdef"

// AppendHex appends the lowercase hex encoding of the trace ID to dst.
func (t TraceID) AppendHex(dst []byte) []byte {
	for _, b := range t {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0xf])
	}
	return dst
}

// AppendHex appends the lowercase hex encoding of the span ID to dst.
func (s SpanID) AppendHex(dst []byte) []byte {
	for _, b := range s {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0xf])
	}
	return dst
}

// String returns the 32-char lowercase hex form.
func (t TraceID) String() string {
	var buf [32]byte
	return string(t.AppendHex(buf[:0]))
}

// String returns the 16-char lowercase hex form.
func (s SpanID) String() string {
	var buf [16]byte
	return string(s.AppendHex(buf[:0]))
}

var errBadHex = errors.New("trace: invalid hex")

// hexNibble decodes one lowercase-or-uppercase hex digit. Returns 0xff on
// a non-hex byte.
func hexNibble(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10
	}
	return 0xff
}

func decodeHex(dst, src []byte) error {
	for i := 0; i < len(dst); i++ {
		hi := hexNibble(src[2*i])
		lo := hexNibble(src[2*i+1])
		if hi == 0xff || lo == 0xff {
			return errBadHex
		}
		dst[i] = hi<<4 | lo
	}
	return nil
}

// ParseTraceID parses a 32-char hex trace ID. The all-zero ID is rejected.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, errors.New("trace: trace-id must be 32 hex chars")
	}
	if err := decodeHex(t[:], []byte(s)); err != nil {
		return TraceID{}, err
	}
	if !t.IsValid() {
		return TraceID{}, errors.New("trace: all-zero trace-id")
	}
	return t, nil
}

// SpanContext is the propagated identity of a span: enough to parent a
// remote child and to honor an upstream sampling decision.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	Sampled bool // traceparent flags bit 0: upstream asked to keep this trace
}

// IsValid reports whether both IDs are non-zero.
func (sc SpanContext) IsValid() bool { return sc.TraceID.IsValid() && sc.SpanID.IsValid() }

// traceparent is `version "-" trace-id "-" parent-id "-" flags`, where for
// version 00 each field is fixed-width lowercase hex:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// ErrBadTraceparent is returned by ParseTraceparent for any malformed or
// invalid header value.
var ErrBadTraceparent = errors.New("trace: invalid traceparent")

// ParseTraceparent parses a W3C traceparent header value. Per the spec:
// version 0xff is invalid; for version 00 the value must be exactly 55
// chars; all-zero trace or span IDs are invalid; future versions are
// accepted if their first four fields parse (trailing data ignored).
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	if len(h) < traceparentLen {
		return sc, ErrBadTraceparent
	}
	vh := hexNibble(h[0])
	vl := hexNibble(h[1])
	if vh == 0xff || vl == 0xff {
		return sc, ErrBadTraceparent
	}
	version := vh<<4 | vl
	if version == 0xff {
		return sc, ErrBadTraceparent
	}
	if version == 0 && len(h) != traceparentLen {
		return sc, ErrBadTraceparent
	}
	if len(h) > traceparentLen && h[traceparentLen] != '-' {
		return sc, ErrBadTraceparent
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, ErrBadTraceparent
	}
	if err := decodeHex(sc.TraceID[:], []byte(h[3:35])); err != nil {
		return SpanContext{}, ErrBadTraceparent
	}
	if err := decodeHex(sc.SpanID[:], []byte(h[36:52])); err != nil {
		return SpanContext{}, ErrBadTraceparent
	}
	fh := hexNibble(h[53])
	fl := hexNibble(h[54])
	if fh == 0xff || fl == 0xff {
		return SpanContext{}, ErrBadTraceparent
	}
	if !sc.IsValid() {
		return SpanContext{}, ErrBadTraceparent
	}
	sc.Sampled = (fh<<4|fl)&0x01 != 0
	return sc, nil
}

// AppendTraceparent appends the version-00 traceparent form of sc to dst.
func AppendTraceparent(dst []byte, sc SpanContext) []byte {
	dst = append(dst, '0', '0', '-')
	dst = sc.TraceID.AppendHex(dst)
	dst = append(dst, '-')
	dst = sc.SpanID.AppendHex(dst)
	if sc.Sampled {
		return append(dst, '-', '0', '1')
	}
	return append(dst, '-', '0', '0')
}

// Traceparent returns the version-00 traceparent header value for sc.
func Traceparent(sc SpanContext) string {
	var buf [traceparentLen]byte
	return string(AppendTraceparent(buf[:0], sc))
}

// ID generation: a splitmix64 stream over an atomic counter, gamma-stepped,
// seeded once from crypto/rand. Fast (one atomic add + a few multiplies,
// no locks, no allocation) and collision-resistant enough for correlation
// IDs. Deliberately not cryptographically unpredictable.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idState.Store(0x9e3779b97f4a7c15) // deterministic fallback; still unique per step
	}
}

// nextID returns the next non-zero 64-bit ID from the splitmix64 stream.
func nextID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15) // golden-ratio gamma
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// NewTraceID mints a random-looking non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], nextID())
	binary.BigEndian.PutUint64(t[8:], nextID())
	return t
}

// NewSpanID mints a random-looking non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}

// NewSpanContext mints a fresh sampled root context — what a client uses
// to start a new distributed trace before the first outbound request.
func NewSpanContext() SpanContext {
	return SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
}
