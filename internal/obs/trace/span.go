package trace

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpanAttrs is the number of fixed attribute slots per span. Setting
// an attribute past the limit silently drops it (the hot path must not
// allocate or error).
const MaxSpanAttrs = 8

type attrKind uint8

const (
	attrNone attrKind = iota
	attrString
	attrInt
	attrFloat
	attrBool
)

// Attr is one fixed attribute slot. Numeric values share the num field
// (int64 / float64 bits / bool) so a slot stays flat — no interface
// boxing on the hot path.
type Attr struct {
	key  string
	kind attrKind
	str  string
	num  uint64
}

// Key returns the attribute key, or "" for an empty slot.
func (a Attr) Key() string { return a.key }

// Value returns the attribute value as an any (for JSON serialization;
// this boxes, but only runs when a kept trace is read back).
func (a Attr) Value() any {
	switch a.kind {
	case attrString:
		return a.str
	case attrInt:
		return int64(a.num)
	case attrFloat:
		return math.Float64frombits(a.num)
	case attrBool:
		return a.num != 0
	}
	return nil
}

const (
	statusUnset int32 = iota
	statusError
)

// Span is one timed operation inside a trace. Spans live in their trace's
// arena (traceData.spans); pointers stay valid until the trace is either
// retained by the recorder or released back to the pool, both of which
// happen only after the root finishes. All methods are nil-safe so
// instrumented code never branches on "is tracing on".
//
// Ownership rule: a span is written by exactly one goroutine. Start a
// child BEFORE handing work to another goroutine and let that goroutine
// own the child; finish children before finishing the root.
type Span struct {
	td     *traceData
	name   string
	id     SpanID
	parent SpanID
	start  time.Time
	end    time.Time
	status int32
	nattrs int32
	errMsg string
	attrs  [MaxSpanAttrs]Attr
}

// traceData is the per-trace arena: a fixed slab of spans claimed by
// atomic index, pooled by the Tracer. The recorder either retains it
// (keep) or returns it to the pool (discard). spans[0] is the root.
type traceData struct {
	tracer       *Tracer
	traceID      TraceID
	remoteParent SpanID // inbound traceparent's span ID, zero if locally minted
	forcedKeep   atomic.Bool
	next         atomic.Int32 // arena high-water mark
	dropped      atomic.Int32 // spans that did not fit the arena
	keptBecause  string       // set by the recorder at completion
	seq          uint64       // recorder completion sequence, for ordering
	spans        []Span
}

// claim reserves the next span slot. Returns nil when the arena is full;
// the caller's span becomes a no-op (still nil-safe).
func (td *traceData) claim(name string, parent SpanID, start time.Time) *Span {
	i := td.next.Add(1) - 1
	if int(i) >= len(td.spans) {
		td.dropped.Add(1)
		return nil
	}
	s := &td.spans[i]
	s.td = td
	s.name = name
	putSpanID(&s.id, nextID())
	s.parent = parent
	s.start = start
	s.end = time.Time{}
	s.status = statusUnset
	s.nattrs = 0
	s.errMsg = ""
	return s
}

// putSpanID writes v big-endian into dst, nudging the all-zero value to
// valid (nextID never returns 0, so this is belt-and-braces).
func putSpanID(dst *SpanID, v uint64) {
	dst[0] = byte(v >> 56)
	dst[1] = byte(v >> 48)
	dst[2] = byte(v >> 40)
	dst[3] = byte(v >> 32)
	dst[4] = byte(v >> 24)
	dst[5] = byte(v >> 16)
	dst[6] = byte(v >> 8)
	dst[7] = byte(v)
	if !dst.IsValid() {
		dst[7] = 1
	}
}

// Tracer mints traces and recycles their arenas. A nil *Tracer is a valid
// no-op tracer: StartRoot returns nil and every span method on a nil span
// is a no-op, so instrumentation costs nothing when tracing is off.
type Tracer struct {
	rec      *Recorder
	maxSpans int
	pool     sync.Pool
}

// NewTracer returns a tracer feeding completed traces into rec. The
// per-trace arena size comes from rec's policy (MaxSpans).
func NewTracer(rec *Recorder) *Tracer {
	maxSpans := defaultMaxSpans
	if rec != nil && rec.policy.MaxSpans > 0 {
		maxSpans = rec.policy.MaxSpans
	}
	t := &Tracer{rec: rec, maxSpans: maxSpans}
	t.pool.New = func() any {
		return &traceData{spans: make([]Span, maxSpans)}
	}
	return t
}

// StartRoot opens the root span of a new trace. When parent is a valid
// inbound SpanContext the trace joins it (same trace ID, root parented to
// the remote span, upstream Sampled honored as a forced keep); otherwise
// a fresh trace ID is minted. Returns nil on a nil tracer.
func (t *Tracer) StartRoot(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	//eip:pool-ok arena ownership moves to the returned Span; release() puts it back on Finish or drop
	td := t.pool.Get().(*traceData)
	td.tracer = t
	td.next.Store(0)
	td.dropped.Store(0)
	td.keptBecause = ""
	if parent.IsValid() {
		td.traceID = parent.TraceID
		td.remoteParent = parent.SpanID
		td.forcedKeep.Store(parent.Sampled)
	} else {
		td.traceID = NewTraceID()
		td.remoteParent = SpanID{}
		td.forcedKeep.Store(false)
	}
	return td.claim(name, td.remoteParent, time.Now())
}

// release returns a discarded trace arena to the pool.
func (t *Tracer) release(td *traceData) { t.pool.Put(td) }

// Context returns the span's propagation context. Safe on nil (returns
// the invalid zero SpanContext, which propagates as "no traceparent").
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.td.traceID, SpanID: s.id, Sampled: true}
}

// TraceID returns the span's trace ID (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.td.traceID
}

// StartChild opens a child span. Nil-safe; returns nil when the arena is
// full (the child then becomes a no-op).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.td.claim(name, s.id, time.Now())
}

// RecordChild records an already-measured operation as a child span that
// ended now and started d ago — for retroactive stage timings
// (core.Options.OnStage fires after each stage with its duration).
func (s *Span) RecordChild(name string, d time.Duration) {
	if s == nil {
		return
	}
	now := time.Now()
	c := s.td.claim(name, s.id, now.Add(-d))
	if c != nil {
		c.end = now
	}
}

func (s *Span) setAttr(key string, kind attrKind, str string, num uint64) {
	if s == nil {
		return
	}
	n := s.nattrs
	if int(n) >= MaxSpanAttrs {
		return
	}
	s.attrs[n] = Attr{key: key, kind: kind, str: str, num: num}
	s.nattrs = n + 1
}

// SetAttr sets a string attribute (silently dropped past MaxSpanAttrs).
func (s *Span) SetAttr(key, value string) { s.setAttr(key, attrString, value, 0) }

// SetInt sets an integer attribute.
func (s *Span) SetInt(key string, value int64) { s.setAttr(key, attrInt, "", uint64(value)) }

// SetFloat sets a float attribute.
func (s *Span) SetFloat(key string, value float64) {
	s.setAttr(key, attrFloat, "", math.Float64bits(value))
}

// SetBool sets a boolean attribute.
func (s *Span) SetBool(key string, value bool) {
	var n uint64
	if value {
		n = 1
	}
	s.setAttr(key, attrBool, "", n)
}

// SetError marks the span failed with msg (first error wins) and forces
// the trace to be kept by the recorder.
func (s *Span) SetError(msg string) {
	if s == nil {
		return
	}
	if s.status == statusUnset {
		s.status = statusError
		s.errMsg = msg
	}
	s.td.forcedKeep.Store(true)
}

// Failed reports whether SetError was called on this span.
func (s *Span) Failed() bool { return s != nil && s.status == statusError }

// ForceKeep marks the whole trace for retention regardless of sampling —
// for rare events worth keeping even when fast and error-free (e.g.
// shadow-rejected rotations).
func (s *Span) ForceKeep() {
	if s == nil {
		return
	}
	s.td.forcedKeep.Store(true)
}

// Finish ends the span. Finishing the root span (the one StartRoot
// returned) completes the trace and hands it to the recorder for the
// keep/discard decision; on discard the arena is recycled. Nil-safe.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.end = time.Now()
	td := s.td
	if s != &td.spans[0] {
		return
	}
	// Root finished: complete the trace.
	switch {
	case td.tracer == nil:
	case td.tracer.rec == nil:
		td.tracer.release(td)
	default:
		td.tracer.rec.complete(td)
	}
}
