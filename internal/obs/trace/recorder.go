package trace

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Policy defaults. A full ring retains Capacity traces of up to MaxSpans
// spans each, so the memory bound is roughly
// Capacity x MaxSpans x sizeof(Span) (~512 x 64 x ~200B ≈ 6.5 MiB).
const (
	defaultCapacity      = 512
	defaultMaxSpans      = 64
	defaultSlowThreshold = 250 * time.Millisecond
	defaultSampleEvery   = 64
)

// Policy is the flight recorder's tail-sampling configuration. The keep
// decision happens when a trace COMPLETES (Dapper-style tail sampling),
// so the policy can look at outcome and latency, not just a coin flip at
// the start:
//
//   - error:   any span marked SetError (covers panics, 5xx, failed
//     retrains) — always kept.
//   - forced:  ForceKeep (shadow-rejected rotations) or an inbound
//     traceparent with the sampled flag — always kept.
//   - slow:    root latency over SlowThreshold — always kept.
//   - sampled: every SampleEvery-th remaining trace — kept so the ring
//     always holds a baseline of normal traffic to compare against.
type Policy struct {
	// Capacity is the total number of retained traces across all shards.
	Capacity int
	// MaxSpans bounds each trace's span arena; spans past it are counted
	// as dropped, not recorded.
	MaxSpans int
	// SlowThreshold marks a completed root span slow enough to keep.
	SlowThreshold time.Duration
	// SampleEvery keeps 1-in-N of traces not otherwise kept. <= 0
	// disables probabilistic keeps (errors/forced/slow still kept).
	SampleEvery int
}

func (p Policy) withDefaults() Policy {
	if p.Capacity <= 0 {
		p.Capacity = defaultCapacity
	}
	if p.MaxSpans <= 0 {
		p.MaxSpans = defaultMaxSpans
	}
	if p.SlowThreshold <= 0 {
		p.SlowThreshold = defaultSlowThreshold
	}
	if p.SampleEvery == 0 {
		p.SampleEvery = defaultSampleEvery
	}
	return p
}

const recShards = 8

// recShard is one lock-protected ring of retained traces. Sharding by
// trace-ID byte keeps completion under concurrent load from serializing
// on one mutex; readers (List/Get) take the same short locks.
type recShard struct {
	mu   sync.Mutex
	ring []*traceData // fixed capacity; idx wraps
	idx  int
}

// Recorder is the in-process flight recorder: completed traces land here
// and the tail-sampling policy decides keep vs discard. Kept traces are
// retained in a lock-sharded ring (evicting the oldest in that shard);
// discarded traces return their arenas to the tracer pool.
type Recorder struct {
	policy    Policy
	seq       atomic.Uint64
	sampleCtr atomic.Uint64
	kept      atomic.Uint64
	discarded atomic.Uint64
	shards    [recShards]recShard
}

// NewRecorder builds a recorder with p (zero fields take defaults).
func NewRecorder(p Policy) *Recorder {
	r := &Recorder{policy: p.withDefaults()}
	per := (r.policy.Capacity + recShards - 1) / recShards
	if per < 1 {
		per = 1
	}
	for i := range r.shards {
		r.shards[i].ring = make([]*traceData, per)
	}
	return r
}

// Policy returns the recorder's effective (defaulted) policy.
func (r *Recorder) Policy() Policy { return r.policy }

// complete applies the tail-sampling policy to a finished trace. Called
// from Span.Finish on the root span's goroutine.
func (r *Recorder) complete(td *traceData) {
	root := &td.spans[0]
	reason := ""
	for i := int32(0); i < td.next.Load() && int(i) < len(td.spans); i++ {
		if td.spans[i].status == statusError {
			reason = "error"
			break
		}
	}
	if reason == "" && td.forcedKeep.Load() {
		reason = "forced"
	}
	if reason == "" && root.end.Sub(root.start) >= r.policy.SlowThreshold {
		reason = "slow"
	}
	if reason == "" && r.policy.SampleEvery > 0 &&
		r.sampleCtr.Add(1)%uint64(r.policy.SampleEvery) == 0 {
		reason = "sampled"
	}
	if reason == "" {
		r.discarded.Add(1)
		if td.tracer != nil {
			td.tracer.release(td)
		}
		return
	}

	// Keeping: freeze the arena. Any child span the owner goroutine
	// failed to finish before the root (an ownership-rule violation) is
	// closed at the root's end time so readers never observe a zero end
	// time or race a late write.
	n := int(td.next.Load())
	if n > len(td.spans) {
		n = len(td.spans)
	}
	for i := 1; i < n; i++ {
		if td.spans[i].end.IsZero() {
			td.spans[i].end = root.end
		}
	}
	td.keptBecause = reason
	td.seq = r.seq.Add(1)
	r.kept.Add(1)

	sh := &r.shards[td.traceID[0]%recShards]
	sh.mu.Lock()
	old := sh.ring[sh.idx]
	sh.ring[sh.idx] = td
	sh.idx = (sh.idx + 1) % len(sh.ring)
	sh.mu.Unlock()
	if old != nil && old.tracer != nil {
		old.tracer.release(old)
	}
}

// Summary is the list-view of one retained trace.
type Summary struct {
	TraceID    string  `json:"trace_id"`
	Root       string  `json:"root"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
	Dropped    int     `json:"dropped_spans,omitempty"`
	Error      bool    `json:"error,omitempty"`
	Kept       string  `json:"kept"`
}

// Node is one span in a fetched trace tree.
type Node struct {
	SpanID     string         `json:"span_id"`
	Name       string         `json:"name"`
	StartUS    int64          `json:"start_us"` // offset from trace start
	DurationUS int64          `json:"duration_us"`
	Error      string         `json:"error,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*Node        `json:"children,omitempty"`
}

// Tree is one fully fetched trace.
type Tree struct {
	TraceID      string `json:"trace_id"`
	RemoteParent string `json:"remote_parent,omitempty"`
	Start        string `json:"start"`
	Kept         string `json:"kept"`
	Dropped      int    `json:"dropped_spans,omitempty"`
	Root         *Node  `json:"root"`
}

// RecorderStats reports keep/discard counters and current retention.
type RecorderStats struct {
	Kept      uint64 `json:"kept"`
	Discarded uint64 `json:"discarded"`
	Retained  int    `json:"retained"`
	Capacity  int    `json:"capacity"`
}

// Stats returns the recorder's counters. Retained walks the shards under
// their locks.
func (r *Recorder) Stats() RecorderStats {
	st := RecorderStats{
		Kept:      r.kept.Load(),
		Discarded: r.discarded.Load(),
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		st.Capacity += len(sh.ring)
		for _, td := range sh.ring {
			if td != nil {
				st.Retained++
			}
		}
		sh.mu.Unlock()
	}
	return st
}

// snapshotSummary builds a Summary under the shard lock (td is immutable
// once retained, but the ring slot itself must be read under the lock).
func snapshotSummary(td *traceData) Summary {
	root := &td.spans[0]
	n := int(td.next.Load())
	if n > len(td.spans) {
		n = len(td.spans)
	}
	s := Summary{
		TraceID:    td.traceID.String(),
		Root:       root.name,
		Start:      root.start.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(root.end.Sub(root.start).Microseconds()) / 1000,
		Spans:      n,
		Dropped:    int(td.dropped.Load()),
		Kept:       td.keptBecause,
	}
	for i := 0; i < n; i++ {
		if td.spans[i].status == statusError {
			s.Error = true
			break
		}
	}
	return s
}

// List returns summaries of retained traces, newest first, up to max
// (<= 0 means all).
func (r *Recorder) List(max int) []Summary {
	type seqSum struct {
		seq uint64
		s   Summary
	}
	var all []seqSum
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, td := range sh.ring {
			if td != nil {
				all = append(all, seqSum{td.seq, snapshotSummary(td)})
			}
		}
		sh.mu.Unlock()
	}
	// Insertion sort by completion sequence, newest first: the ring is
	// small (hundreds) and mostly ordered per shard.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].seq > all[j-1].seq; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if max > 0 && len(all) > max {
		all = all[:max]
	}
	out := make([]Summary, len(all))
	for i := range all {
		out[i] = all[i].s
	}
	return out
}

// Get fetches one retained trace as a span tree, or false. A client that
// propagates one traceparent across several requests (eipscan's pull +
// feedback round) produces one retained arena per request, all under the
// same trace ID; Get merges those onto one timeline beneath a synthetic
// "trace" root so the round reads as a single connected trace.
func (r *Recorder) Get(id TraceID) (Tree, bool) {
	sh := &r.shards[id[0]%recShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var matches []*traceData
	for _, td := range sh.ring {
		if td != nil && td.traceID == id {
			matches = append(matches, td)
		}
	}
	switch len(matches) {
	case 0:
		return Tree{}, false
	case 1:
		return buildTree(matches[0]), true
	}
	sort.Slice(matches, func(i, j int) bool {
		return matches[i].spans[0].start.Before(matches[j].spans[0].start)
	})
	earliest := matches[0].spans[0].start
	root := &Node{Name: "trace"}
	merged := Tree{
		TraceID: id.String(),
		Start:   earliest.UTC().Format(time.RFC3339Nano),
		Root:    root,
	}
	var end time.Time
	for _, td := range matches {
		sub := buildTree(td)
		shiftNode(sub.Root, td.spans[0].start.Sub(earliest).Microseconds())
		root.Children = append(root.Children, sub.Root)
		merged.Dropped += sub.Dropped
		if sub.RemoteParent != "" {
			merged.RemoteParent = sub.RemoteParent
		}
		if !strings.Contains(merged.Kept, sub.Kept) {
			if merged.Kept != "" {
				merged.Kept += "+"
			}
			merged.Kept += sub.Kept
		}
		if e := td.spans[0].end; e.After(end) {
			end = e
		}
	}
	root.DurationUS = end.Sub(earliest).Microseconds()
	return merged, true
}

// shiftNode moves a subtree's start offsets forward by us microseconds,
// re-basing per-request offsets onto the merged trace's timeline.
func shiftNode(n *Node, us int64) {
	n.StartUS += us
	for _, c := range n.Children {
		shiftNode(c, us)
	}
}

// buildTree assembles the parent/child structure. Runs under the shard
// lock; the retained arena is immutable so this only reads.
func buildTree(td *traceData) Tree {
	root := &td.spans[0]
	n := int(td.next.Load())
	if n > len(td.spans) {
		n = len(td.spans)
	}
	nodes := make([]*Node, n)
	byID := make(map[SpanID]*Node, n)
	for i := 0; i < n; i++ {
		sp := &td.spans[i]
		node := &Node{
			SpanID:     sp.id.String(),
			Name:       sp.name,
			StartUS:    sp.start.Sub(root.start).Microseconds(),
			DurationUS: sp.end.Sub(sp.start).Microseconds(),
			Error:      sp.errMsg,
		}
		if sp.status == statusError && node.Error == "" {
			node.Error = "error"
		}
		if sp.nattrs > 0 {
			node.Attrs = make(map[string]any, sp.nattrs)
			for a := int32(0); a < sp.nattrs; a++ {
				node.Attrs[sp.attrs[a].Key()] = sp.attrs[a].Value()
			}
		}
		nodes[i] = node
		byID[sp.id] = node
	}
	for i := 1; i < n; i++ {
		parent := byID[td.spans[i].parent]
		if parent == nil || parent == nodes[i] {
			parent = nodes[0] // orphan (shouldn't happen): hang off root
		}
		parent.Children = append(parent.Children, nodes[i])
	}
	t := Tree{
		TraceID: td.traceID.String(),
		Start:   root.start.UTC().Format(time.RFC3339Nano),
		Kept:    td.keptBecause,
		Dropped: int(td.dropped.Load()),
		Root:    nodes[0],
	}
	if td.remoteParent.IsValid() {
		t.RemoteParent = td.remoteParent.String()
	}
	return t
}
