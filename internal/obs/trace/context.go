package trace

import "context"

type ctxKey int

const (
	spanKey ctxKey = iota
	remoteKey
)

// ContextWithSpan returns ctx carrying the span. SpanFromContext retrieves
// it. A nil span is stored as-is; all *Span methods are nil-safe, so
// callers never need to check.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// ContextWithRemote returns ctx carrying a remote span context for
// outbound propagation — used by clients that have no local tracer but
// want their requests to join (or start) a distributed trace.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteKey, sc)
}

// Outbound returns the span context that should be propagated on an
// outgoing request from ctx: the local span's context if one is active,
// else a remote context installed by ContextWithRemote, else the invalid
// zero SpanContext (meaning: send no traceparent).
func Outbound(ctx context.Context) SpanContext {
	if s := SpanFromContext(ctx); s != nil {
		return s.Context()
	}
	sc, _ := ctx.Value(remoteKey).(SpanContext)
	return sc
}
