package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	h := Traceparent(sc)
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("unexpected traceparent form: %q", h)
	}
	got, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if got != sc {
		t.Fatalf("round trip mismatch: sent %+v got %+v", sc, got)
	}
}

func TestTraceparentUnsampledFlag(t *testing.T) {
	sc := NewSpanContext()
	sc.Sampled = false
	got, err := ParseTraceparent(Traceparent(sc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sampled {
		t.Fatal("flags 00 parsed as sampled")
	}
}

func TestParseTraceparentRejectsInvalid(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("spec example rejected: %v", err)
	}
	bad := []string{
		"",
		"00",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace-id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span-id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // version ff
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // v00 must be exactly 55
		"0x-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // non-hex version
		"00-4bf92f3577b34da6a3ce929d0eze4736-00f067aa0ba902b7-01",  // non-hex trace-id
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // wrong delimiter
	}
	for _, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted invalid value", h)
		}
	}
	// Future versions: parse the known prefix, tolerate trailing fields.
	future := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	sc, err := ParseTraceparent(future)
	if err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
	if !sc.IsValid() || !sc.Sampled {
		t.Fatalf("future version parsed wrong: %+v", sc)
	}
}

func TestIDsNonZeroAndDistinct(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if !id.IsValid() {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatal("duplicate trace id within 1000 draws")
		}
		seen[id] = true
	}
	if ParseMustFail := func() bool { _, err := ParseTraceID(strings.Repeat("0", 32)); return err == nil }(); ParseMustFail {
		t.Fatal("ParseTraceID accepted the all-zero id")
	}
	id := NewTraceID()
	back, err := ParseTraceID(id.String())
	if err != nil || back != id {
		t.Fatalf("ParseTraceID round trip: %v %v", back, err)
	}
}

// newTestSetup returns a tracer whose recorder keeps nothing
// probabilistically unless cfg overrides.
func newTestSetup(p Policy) (*Tracer, *Recorder) {
	rec := NewRecorder(p)
	return NewTracer(rec), rec
}

func TestTailSamplingReasons(t *testing.T) {
	tr, rec := newTestSetup(Policy{SampleEvery: -1, SlowThreshold: time.Hour})

	// Fast, clean, unforced: discarded.
	root := tr.StartRoot("clean", SpanContext{})
	root.Finish()
	if st := rec.Stats(); st.Kept != 0 || st.Discarded != 1 {
		t.Fatalf("clean trace not discarded: %+v", st)
	}

	// Error: kept with reason "error".
	root = tr.StartRoot("boom", SpanContext{})
	id := root.TraceID()
	c := root.StartChild("inner")
	c.SetError("kaput")
	c.Finish()
	root.Finish()
	tree, ok := rec.Get(id)
	if !ok {
		t.Fatal("error trace not retained")
	}
	if tree.Kept != "error" {
		t.Fatalf("kept reason = %q, want error", tree.Kept)
	}
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Error != "kaput" {
		t.Fatalf("tree shape wrong: %+v", tree.Root)
	}

	// ForceKeep: kept with reason "forced".
	root = tr.StartRoot("rare", SpanContext{})
	id = root.TraceID()
	root.ForceKeep()
	root.Finish()
	if tree, ok = rec.Get(id); !ok || tree.Kept != "forced" {
		t.Fatalf("forced trace: ok=%v kept=%q", ok, tree.Kept)
	}

	// Inbound sampled traceparent: forced keep too.
	up := NewSpanContext()
	root = tr.StartRoot("joined", up)
	root.Finish()
	if tree, ok = rec.Get(up.TraceID); !ok || tree.Kept != "forced" {
		t.Fatalf("upstream-sampled trace: ok=%v kept=%q", ok, tree.Kept)
	}
	if tree.RemoteParent != up.SpanID.String() {
		t.Fatalf("remote parent = %q, want %q", tree.RemoteParent, up.SpanID.String())
	}
}

// TestGetMergesSameTraceID pins the connected-trace contract: two request
// traces joined from the same upstream traceparent (a client round of pull
// then feedback) come back from Get as one tree under a synthetic root,
// children ordered by start time on a shared timeline.
func TestGetMergesSameTraceID(t *testing.T) {
	tr, rec := newTestSetup(Policy{SampleEvery: -1, SlowThreshold: time.Hour})
	up := NewSpanContext()

	first := tr.StartRoot("POST /v1/models/{name}/generate", up)
	first.Finish()
	time.Sleep(2 * time.Millisecond)
	second := tr.StartRoot("POST /v1/models/{name}/observe", up)
	c := second.StartChild("observe.ingest")
	c.Finish()
	second.Finish()

	tree, ok := rec.Get(up.TraceID)
	if !ok {
		t.Fatal("merged trace not retained")
	}
	if tree.Root.Name != "trace" {
		t.Fatalf("merged root name = %q, want synthetic \"trace\"", tree.Root.Name)
	}
	if len(tree.Root.Children) != 2 {
		t.Fatalf("merged children = %d, want 2", len(tree.Root.Children))
	}
	gen, obs := tree.Root.Children[0], tree.Root.Children[1]
	if gen.Name != "POST /v1/models/{name}/generate" || obs.Name != "POST /v1/models/{name}/observe" {
		t.Fatalf("children out of start order: %q, %q", gen.Name, obs.Name)
	}
	if obs.StartUS <= gen.StartUS {
		t.Errorf("second request not re-based onto merged timeline: %d <= %d", obs.StartUS, gen.StartUS)
	}
	if len(obs.Children) != 1 || obs.Children[0].Name != "observe.ingest" {
		t.Errorf("nested child lost in merge: %+v", obs.Children)
	}
	if obs.Children[0].StartUS < obs.StartUS {
		t.Errorf("nested child start %d precedes its request start %d", obs.Children[0].StartUS, obs.StartUS)
	}
	if tree.Kept != "forced" {
		t.Errorf("merged kept = %q, want deduplicated \"forced\"", tree.Kept)
	}
	if tree.RemoteParent != up.SpanID.String() {
		t.Errorf("merged remote parent = %q, want %q", tree.RemoteParent, up.SpanID.String())
	}
	if tree.Root.DurationUS <= 0 {
		t.Errorf("merged root duration = %d, want > 0", tree.Root.DurationUS)
	}
}

func TestTailSamplingSlowAndProbabilistic(t *testing.T) {
	tr, rec := newTestSetup(Policy{SampleEvery: 3, SlowThreshold: time.Nanosecond})
	root := tr.StartRoot("slow", SpanContext{})
	id := root.TraceID()
	time.Sleep(time.Millisecond)
	root.Finish()
	if tree, ok := rec.Get(id); !ok || tree.Kept != "slow" {
		t.Fatalf("slow trace: ok=%v", ok)
	}

	tr2, rec2 := newTestSetup(Policy{SampleEvery: 3, SlowThreshold: time.Hour})
	for i := 0; i < 9; i++ {
		tr2.StartRoot("t", SpanContext{}).Finish()
	}
	if st := rec2.Stats(); st.Kept != 3 || st.Discarded != 6 {
		t.Fatalf("1-in-3 sampling over 9 traces: %+v", st)
	}
	for _, s := range rec2.List(0) {
		if s.Kept != "sampled" {
			t.Fatalf("kept reason %q, want sampled", s.Kept)
		}
	}
}

func TestRingEvictionBounded(t *testing.T) {
	tr, rec := newTestSetup(Policy{Capacity: 16, SampleEvery: 1})
	for i := 0; i < 500; i++ {
		tr.StartRoot("t", SpanContext{}).Finish()
	}
	st := rec.Stats()
	if st.Retained > st.Capacity {
		t.Fatalf("retained %d > capacity %d", st.Retained, st.Capacity)
	}
	if st.Kept != 500 {
		t.Fatalf("kept = %d, want 500", st.Kept)
	}
	if got := len(rec.List(0)); got != st.Retained {
		t.Fatalf("List returned %d, stats say %d", got, st.Retained)
	}
	// Newest first.
	l := rec.List(5)
	if len(l) != 5 {
		t.Fatalf("List(5) returned %d", len(l))
	}
}

func TestArenaOverflowDropsSpans(t *testing.T) {
	tr, rec := newTestSetup(Policy{MaxSpans: 4, SampleEvery: 1})
	root := tr.StartRoot("r", SpanContext{})
	id := root.TraceID()
	for i := 0; i < 10; i++ {
		c := root.StartChild("c") // nil past slot 3; must stay safe
		c.SetInt("i", int64(i))
		c.Finish()
	}
	root.Finish()
	tree, ok := rec.Get(id)
	if !ok {
		t.Fatal("trace not kept")
	}
	if len(tree.Root.Children) != 3 {
		t.Fatalf("children = %d, want 3 (arena of 4 incl root)", len(tree.Root.Children))
	}
	if tree.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", tree.Dropped)
	}
}

func TestNilTracerAndSpanSafe(t *testing.T) {
	var tr *Tracer
	s := tr.StartRoot("x", SpanContext{})
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	// Every method must be a no-op, not a panic.
	s.SetAttr("k", "v")
	s.SetInt("k", 1)
	s.SetFloat("k", 1.5)
	s.SetBool("k", true)
	s.SetError("e")
	s.ForceKeep()
	s.RecordChild("c", time.Second)
	c := s.StartChild("c")
	c.Finish()
	s.Finish()
	if s.Failed() {
		t.Fatal("nil span reports failed")
	}
	if s.TraceID().IsValid() || s.Context().IsValid() {
		t.Fatal("nil span has identity")
	}
	ctx := ContextWithSpan(context.Background(), s)
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span came back non-nil")
	}
	if Outbound(context.Background()).IsValid() {
		t.Fatal("empty context produced an outbound identity")
	}
}

func TestContextPropagation(t *testing.T) {
	tr, _ := newTestSetup(Policy{})
	root := tr.StartRoot("r", SpanContext{})
	ctx := ContextWithSpan(context.Background(), root)
	if SpanFromContext(ctx) != root {
		t.Fatal("span lost in context")
	}
	out := Outbound(ctx)
	if out.TraceID != root.TraceID() || !out.Sampled {
		t.Fatalf("outbound context wrong: %+v", out)
	}
	root.Finish()

	sc := NewSpanContext()
	rctx := ContextWithRemote(context.Background(), sc)
	if got := Outbound(rctx); got != sc {
		t.Fatalf("remote outbound = %+v, want %+v", got, sc)
	}
}

func TestRecordChildBackdatesStart(t *testing.T) {
	tr, rec := newTestSetup(Policy{SampleEvery: 1})
	root := tr.StartRoot("r", SpanContext{})
	id := root.TraceID()
	root.RecordChild("stage", 40*time.Millisecond)
	root.Finish()
	tree, ok := rec.Get(id)
	if !ok || len(tree.Root.Children) != 1 {
		t.Fatal("recorded child missing")
	}
	d := tree.Root.Children[0].DurationUS
	if d < 39_000 || d > 120_000 {
		t.Fatalf("recorded child duration %dus, want ~40ms", d)
	}
}

func TestAttrLimitAndKinds(t *testing.T) {
	tr, rec := newTestSetup(Policy{SampleEvery: 1})
	root := tr.StartRoot("r", SpanContext{})
	id := root.TraceID()
	root.SetAttr("s", "str")
	root.SetInt("i", -7)
	root.SetFloat("f", 2.5)
	root.SetBool("b", true)
	for i := 0; i < 2*MaxSpanAttrs; i++ {
		root.SetInt("overflow", int64(i))
	}
	root.Finish()
	tree, _ := rec.Get(id)
	a := tree.Root.Attrs
	if a["s"] != "str" || a["i"] != int64(-7) || a["f"] != 2.5 || a["b"] != true {
		t.Fatalf("attr values wrong: %+v", a)
	}
	if len(a) > MaxSpanAttrs {
		t.Fatalf("attrs exceeded limit: %d", len(a))
	}
}

// TestRecorderRace hammers the ring from 8 goroutines: each produces
// traces with children (all kept), while two more list and fetch
// concurrently. Run under -race this pins the lock discipline.
func TestRecorderRace(t *testing.T) {
	tr, rec := newTestSetup(Policy{Capacity: 64, SampleEvery: 1})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				root := tr.StartRoot("req", SpanContext{})
				root.SetInt("g", int64(g))
				c := root.StartChild("child")
				c.SetAttr("k", "v")
				if i%7 == 0 {
					c.SetError("induced")
				}
				c.Finish()
				root.Finish()
			}
		}(g)
	}
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range rec.List(32) {
					id, err := ParseTraceID(s.TraceID)
					if err != nil {
						t.Errorf("bad listed trace id %q", s.TraceID)
						return
					}
					rec.Get(id) // miss ok (evicted); must not race
				}
				rec.Stats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	st := rec.Stats()
	if st.Kept != 8*300 {
		t.Fatalf("kept = %d, want %d", st.Kept, 8*300)
	}
	if st.Retained > st.Capacity {
		t.Fatalf("retained %d > capacity %d", st.Retained, st.Capacity)
	}
}

func TestStragglerChildClosedAtRootEnd(t *testing.T) {
	tr, rec := newTestSetup(Policy{SampleEvery: 1})
	root := tr.StartRoot("r", SpanContext{})
	id := root.TraceID()
	_ = root.StartChild("never-finished")
	root.Finish()
	tree, ok := rec.Get(id)
	if !ok {
		t.Fatal("trace not kept")
	}
	c := tree.Root.Children[0]
	if c.DurationUS < 0 {
		t.Fatalf("straggler child has negative duration %d", c.DurationUS)
	}
	if c.StartUS+c.DurationUS > tree.Root.DurationUS+1000 {
		t.Fatalf("straggler child extends past root end")
	}
}
