package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("g", "help")
	g.Inc()
	g.Add(10)
	g.Dec()
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

// TestHistogramInvariants pins the Prometheus histogram contract:
// cumulative buckets are non-decreasing, the +Inf bucket equals _count,
// and _sum matches the observations.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{0.1, 1, 10})
	obsValues := []float64{0.05, 0.1, 0.5, 1.0, 5, 100}
	var wantSum float64
	for _, v := range obsValues {
		h.Observe(v)
		wantSum += v
	}
	if got := h.Count(); got != uint64(len(obsValues)) {
		t.Fatalf("count = %d, want %d", got, len(obsValues))
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	// Upper bounds are inclusive: 0.1 lands in le="0.1", 1.0 in le="1".
	wantCum := []uint64{2, 4, 5, 6} // le=0.1, le=1, le=10, le=+Inf
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum != wantCum[i] {
			t.Fatalf("cumulative bucket %d = %d, want %d", i, cum, wantCum[i])
		}
	}

	out := string(r.Render(nil))
	for _, want := range []string{
		`h_seconds_bucket{le="0.1"} 2`,
		`h_seconds_bucket{le="1"} 4`,
		`h_seconds_bucket{le="10"} 5`,
		`h_seconds_bucket{le="+Inf"} 6`,
		`h_seconds_sum 106.65`,
		`h_seconds_count 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBadBucketsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing buckets did not panic")
		}
	}()
	newHistogram([]float64{1, 1})
}

func TestRegistryMisusePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "help")
	t.Run("type clash", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("re-registering a counter name as gauge did not panic")
			}
		}()
		r.Gauge("m_total", "help")
	})
	t.Run("duplicate series", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate label set did not panic")
			}
		}()
		r.Counter("m_total", "help")
	})
	t.Run("odd labels", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("odd label list did not panic")
			}
		}()
		r.Counter("n_total", "help", "key-without-value")
	})
}

// TestMetricsRace hammers one counter, one gauge and one histogram from 8
// goroutines while a scraper renders concurrently, then checks exact
// totals. Run under -race this doubles as the data-race proof for the
// lock-free hot path.
func TestMetricsRace(t *testing.T) {
	const (
		goroutines = 8
		iters      = 10_000
	)
	r := NewRegistry()
	c := r.Counter("race_total", "help")
	g := r.Gauge("race_inflight", "help")
	h := r.Histogram("race_seconds", "help", nil)

	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		buf := make([]byte, 0, 4096)
		for {
			select {
			case <-stop:
				return
			default:
				buf = r.Render(buf[:0])
			}
		}
	}()
	var workers sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		workers.Add(1)
		go func(i int) {
			defer workers.Done()
			for j := 0; j < iters; j++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%4) * 0.01)
				g.Dec()
			}
		}(i)
	}
	workers.Wait()
	close(stop)
	scraper.Wait()

	if got := c.Value(); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
	var wantSum float64
	for i := 0; i < goroutines; i++ {
		wantSum += float64(i%4) * 0.01 * iters
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
}
