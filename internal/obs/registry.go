package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricType selects the TYPE line a family renders.
type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (label set, value source) pair inside a family. Exactly
// one of c/g/h/fn is set, matching the family's type.
type series struct {
	labels string // rendered inner label list: `k="v",k2="v2"`, "" if unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups every series sharing a metric name, so HELP/TYPE render
// once per name as the exposition format requires.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
}

// Registry holds registered metric families and scrape-time collectors
// and renders them all in the Prometheus text exposition format v0.0.4.
//
// Registration is for metrics whose lifetime matches the process: the
// returned Counter/Gauge/Histogram is written on the hot path and read at
// scrape time. Dynamic series — anything keyed by data that appears at
// runtime, like per-model gauges — go through Collect callbacks instead,
// which emit fresh samples on every scrape and so can never leak series
// for models that have been deleted.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []CollectorFunc
}

// CollectorFunc emits dynamic samples into e at scrape time.
type CollectorFunc func(e *Expo)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and stores one series. Misuse (type clash on a name,
// duplicate label set) is a programming error, so it panics.
func (r *Registry) register(name, help string, typ metricType, sr *series) {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	for _, ex := range f.series {
		if ex.labels == sr.labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, sr.labels))
		}
	}
	f.series = append(f.series, sr)
}

// Counter registers and returns a counter. labels are alternating
// key/value pairs fixed at registration time.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, typeCounter, &series{labels: renderLabels(labels), c: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time (for totals already maintained elsewhere).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, typeCounter, &series{labels: renderLabels(labels), fn: fn})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, typeGauge, &series{labels: renderLabels(labels), g: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, typeGauge, &series{labels: renderLabels(labels), fn: fn})
}

// Histogram registers and returns a histogram over the given bucket
// upper bounds (nil selects DefBuckets). Every series of one histogram
// family should use the same buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	h := newHistogram(buckets)
	r.register(name, help, typeHistogram, &series{labels: renderLabels(labels), h: h})
	return h
}

// Collect adds a scrape-time collector. Dynamic family names must not
// collide with registered ones; colliding samples are dropped at render.
func (r *Registry) Collect(fn CollectorFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Render appends the full exposition to buf and returns the extended
// slice. Families render in lexicographic name order, so output is
// deterministic given deterministic values. Serve it with content type
// "text/plain; version=0.0.4; charset=utf-8" (the ContentType constant).
func (r *Registry) Render(buf []byte) []byte {
	return r.render(buf, false)
}

// RenderOpenMetrics appends the OpenMetrics 1.0 exposition to buf: the
// same families as Render, plus bucket exemplars recorded via
// ObserveExemplar (`# {trace_id="..."} value`) and the mandatory
// terminating `# EOF`. Counter families advertise their name without the
// `_total` suffix in HELP/TYPE as the spec requires, while samples keep
// it. Serve it with ContentTypeOpenMetrics, and only to scrapers that
// asked for it via Accept — text-format v0.0.4 parsers reject exemplar
// syntax.
func (r *Registry) RenderOpenMetrics(buf []byte) []byte {
	buf = r.render(buf, true)
	return append(buf, "# EOF\n"...)
}

func (r *Registry) render(buf []byte, om bool) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := newExpo()
	for _, fn := range r.collectors {
		fn(e)
	}
	names := make([]string, 0, len(r.families)+len(e.fams))
	for n := range r.families {
		names = append(names, n)
	}
	for _, f := range e.fams {
		if _, taken := r.families[f.name]; !taken {
			names = append(names, f.name)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if f := r.families[n]; f != nil {
			buf = f.render(buf, om)
			continue
		}
		buf = e.byName[n].render(buf, om)
	}
	return buf
}

// ContentType is the Content-Type header value for Render's output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ContentTypeOpenMetrics is the Content-Type header value for
// RenderOpenMetrics's output.
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

func (f *family) render(buf []byte, om bool) []byte {
	buf = appendHeader(buf, f.name, f.help, f.typ, om)
	for _, s := range f.series {
		switch f.typ {
		case typeCounter:
			buf = appendSamplePrefix(buf, f.name, "", s.labels, "")
			if s.c != nil {
				buf = strconv.AppendUint(buf, s.c.Value(), 10)
			} else {
				buf = appendFloat(buf, s.fn())
			}
			buf = append(buf, '\n')
		case typeGauge:
			buf = appendSamplePrefix(buf, f.name, "", s.labels, "")
			if s.g != nil {
				buf = strconv.AppendInt(buf, s.g.Value(), 10)
			} else {
				buf = appendFloat(buf, s.fn())
			}
			buf = append(buf, '\n')
		case typeHistogram:
			buf = s.h.renderSeries(buf, f.name, s.labels, om)
		}
	}
	return buf
}

// renderSeries emits the _bucket/_sum/_count triplet for one histogram
// series. Cumulative counts accumulate over a single pass of the bucket
// array, and _count is that same accumulated total, so the
// `+Inf bucket == count` invariant holds by construction even while
// observations land concurrently.
func (h *Histogram) renderSeries(buf []byte, name, labels string, om bool) []byte {
	var le [32]byte
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b := strconv.AppendFloat(le[:0], bound, 'g', -1, 64)
		buf = appendSamplePrefix(buf, name, "_bucket", labels, string(b))
		buf = strconv.AppendUint(buf, cum, 10)
		if om {
			buf = h.appendExemplar(buf, i)
		}
		buf = append(buf, '\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	buf = appendSamplePrefix(buf, name, "_bucket", labels, "+Inf")
	buf = strconv.AppendUint(buf, cum, 10)
	if om {
		buf = h.appendExemplar(buf, len(h.bounds))
	}
	buf = append(buf, '\n')
	buf = appendSamplePrefix(buf, name, "_sum", labels, "")
	buf = appendFloat(buf, h.Sum())
	buf = append(buf, '\n')
	buf = appendSamplePrefix(buf, name, "_count", labels, "")
	buf = strconv.AppendUint(buf, cum, 10)
	return append(buf, '\n')
}

// Expo collects dynamic samples during one scrape. Repeated calls with
// the same name accumulate series under one family; help and type come
// from the first call.
type Expo struct {
	fams   []*expoFamily
	byName map[string]*expoFamily
}

type expoFamily struct {
	name    string
	help    string
	typ     metricType
	samples []expoSample
}

type expoSample struct {
	labels string
	value  float64
}

func newExpo() *Expo {
	return &Expo{byName: make(map[string]*expoFamily)}
}

// Counter emits one counter sample.
func (e *Expo) Counter(name, help string, v float64, labels ...string) {
	e.add(name, help, typeCounter, v, labels)
}

// Gauge emits one gauge sample.
func (e *Expo) Gauge(name, help string, v float64, labels ...string) {
	e.add(name, help, typeGauge, v, labels)
}

func (e *Expo) add(name, help string, typ metricType, v float64, labels []string) {
	f := e.byName[name]
	if f == nil {
		f = &expoFamily{name: name, help: help, typ: typ}
		e.byName[name] = f
		e.fams = append(e.fams, f)
	}
	f.samples = append(f.samples, expoSample{labels: renderLabels(labels), value: v})
}

func (f *expoFamily) render(buf []byte, om bool) []byte {
	buf = appendHeader(buf, f.name, f.help, f.typ, om)
	for _, s := range f.samples {
		buf = appendSamplePrefix(buf, f.name, "", s.labels, "")
		buf = appendFloat(buf, s.value)
		buf = append(buf, '\n')
	}
	return buf
}

// appendExemplar appends ` # {trace_id="..."} value` when bucket i's
// exemplar slot holds one (and is not being written this instant).
func (h *Histogram) appendExemplar(buf []byte, i int) []byte {
	var id [exemplarIDLen]byte
	var v float64
	if !h.exemplars[i].tryLoad(&id, &v) {
		return buf
	}
	n := 0
	for n < len(id) && id[n] != 0 {
		n++
	}
	buf = append(buf, ` # {trace_id="`...)
	buf = append(buf, id[:n]...)
	buf = append(buf, `"} `...)
	return appendFloat(buf, v)
}

// appendHeader renders the # HELP and # TYPE comment lines. In
// OpenMetrics mode a counter's MetricFamily name drops the `_total`
// suffix (samples keep it), per the OpenMetrics 1.0 spec.
func appendHeader(buf []byte, name, help string, typ metricType, om bool) []byte {
	famName := name
	if om && typ == typeCounter {
		famName = strings.TrimSuffix(name, "_total")
	}
	buf = append(buf, "# HELP "...)
	buf = append(buf, famName...)
	buf = append(buf, ' ')
	buf = appendEscapedHelp(buf, help)
	buf = append(buf, "\n# TYPE "...)
	buf = append(buf, famName...)
	buf = append(buf, ' ')
	buf = append(buf, typ.String()...)
	return append(buf, '\n')
}

// appendSamplePrefix renders `name[suffix]{labels,le="x"} ` up to and
// including the separating space. le is the pre-rendered extra `le`
// label value for histogram buckets, "" for none.
func appendSamplePrefix(buf []byte, name, suffix, labels, le string) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if labels != "" || le != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		if le != "" {
			if labels != "" {
				buf = append(buf, ',')
			}
			buf = append(buf, `le="`...)
			buf = append(buf, le...)
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	return append(buf, ' ')
}

// appendFloat renders a sample value. strconv's 'g' format yields
// shortest-round-trip decimals plus the NaN/+Inf/-Inf spellings the
// text format specifies.
func appendFloat(buf []byte, v float64) []byte {
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// renderLabels turns alternating key/value pairs into the inner label
// list `k1="v1",k2="v2"`. Values are escaped per the exposition format
// (backslash, double-quote, newline); keys are caller-controlled
// identifiers and rendered verbatim.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be alternating key/value pairs")
	}
	var b []byte
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, kv[i]...)
		b = append(b, '=', '"')
		b = appendEscapedLabel(b, kv[i+1])
		b = append(b, '"')
	}
	return string(b)
}

// appendEscapedLabel escapes a label value: \ → \\, " → \", newline → \n.
func appendEscapedLabel(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// appendEscapedHelp escapes a HELP text: \ → \\, newline → \n.
func appendEscapedHelp(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}
