package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with this run's output")

// TestRenderGolden pins the full exposition byte-for-byte: HELP/TYPE
// ordering, label rendering and escaping, histogram triplets, collector
// output, and the lexicographic family sort. Regenerate after deliberate
// format changes with: go test ./internal/obs -run RenderGolden -update
func TestRenderGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("demo_requests_total", "Requests served.", "route", "GET /v1/models")
	reqs.Add(17)
	r.Counter("demo_requests_total", "Requests served.", "route", "POST /v1/models/{name}/generate").Add(3)
	plain := r.Counter("demo_restarts_total", "Restarts (unlabeled counter).")
	plain.Inc()
	g := r.Gauge("demo_in_flight", "In-flight requests.")
	g.Set(2)
	r.GaugeFunc("demo_uptime_seconds", "Uptime (gauge func).", func() float64 { return 12.5 })
	r.CounterFunc("demo_ticks_total", "Ticks (counter func).", func() float64 { return 99 })
	h := r.Histogram("demo_request_seconds", "Request latency.", []float64{0.025, 0.25, 2.5}, "route", "GET /v1/models")
	for _, v := range []float64{0.01, 0.02, 0.2, 1, 30} {
		h.Observe(v)
	}
	// Label escaping: backslash, quote, newline in a value.
	r.Counter("demo_weird_total", "Escaping check.", "path", "a\\b\"c\nd").Add(7)
	// Help escaping: backslash and newline.
	r.Gauge("demo_helptext", "line one\nline \\ two").Set(1)
	// Dynamic per-entity series via a collector.
	r.Collect(func(e *Expo) {
		e.Gauge("demo_model_window", "Per-model ingest window.", 4096, "model", "web")
		e.Gauge("demo_model_window", "Per-model ingest window.", 512, "model", "dns")
		e.Counter("demo_model_rotations_total", "Per-model rotations.", 2, "model", "web")
	})

	got := r.Render(nil)
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("exposition mismatch\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

func TestRenderAppendsToCallerBuffer(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	buf := append(make([]byte, 0, 512), "PREFIX"...)
	out := r.Render(buf)
	if !strings.HasPrefix(string(out), "PREFIX# HELP x_total") {
		t.Fatalf("Render did not append to the caller's buffer: %q", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := renderLabels([]string{"k", `back\slash "quote"` + "\nnewline"})
	want := `k="back\\slash \"quote\"\nnewline"`
	if got != want {
		t.Fatalf("renderLabels = %s, want %s", got, want)
	}
}

func TestExpoGroupsFamilies(t *testing.T) {
	e := newExpo()
	e.Gauge("a", "help a", 1, "m", "x")
	e.Gauge("a", "help a", 2, "m", "y")
	if len(e.fams) != 1 || len(e.fams[0].samples) != 2 {
		t.Fatalf("expo grouping broken: %+v", e.fams)
	}
	out := string(e.fams[0].render(nil, false))
	if strings.Count(out, "# TYPE a gauge") != 1 {
		t.Fatalf("TYPE line not emitted exactly once:\n%s", out)
	}
}

func TestDynamicNameCollisionDropped(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "static").Add(5)
	r.Collect(func(e *Expo) {
		e.Counter("c_total", "dynamic", 999) // collides with static: dropped
		e.Gauge("d", "dynamic ok", 1)
	})
	out := string(r.Render(nil))
	if strings.Contains(out, "999") {
		t.Fatalf("colliding dynamic sample leaked into output:\n%s", out)
	}
	if !strings.Contains(out, "c_total 5\n") || !strings.Contains(out, "d 1\n") {
		t.Fatalf("expected samples missing:\n%s", out)
	}
}

func TestRenderOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("eip_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05) // no exemplar on this bucket
	h.ObserveExemplar(0.5, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveExemplar(5, "deadbeefdeadbeefdeadbeefdeadbeef")
	r.Counter("eip_reqs_total", "requests").Add(3)

	text := string(r.Render(nil))
	if strings.Contains(text, "# {") || strings.Contains(text, "# EOF") {
		t.Fatalf("text v0.0.4 output must not carry exemplars or EOF:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE eip_reqs_total counter") {
		t.Fatalf("text counter TYPE keeps _total:\n%s", text)
	}

	om := string(r.RenderOpenMetrics(nil))
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("OpenMetrics output must end with # EOF:\n%s", om)
	}
	if !strings.Contains(om, "# TYPE eip_reqs counter") {
		t.Fatalf("OM counter family name must drop _total:\n%s", om)
	}
	if !strings.Contains(om, "eip_reqs_total 3") {
		t.Fatalf("OM counter sample keeps _total:\n%s", om)
	}
	want := `eip_lat_seconds_bucket{le="1"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.5`
	if !strings.Contains(om, want) {
		t.Fatalf("missing exemplar line %q in:\n%s", want, om)
	}
	wantInf := `eip_lat_seconds_bucket{le="+Inf"} 3 # {trace_id="deadbeefdeadbeefdeadbeefdeadbeef"} 5`
	if !strings.Contains(om, wantInf) {
		t.Fatalf("missing +Inf exemplar line %q in:\n%s", wantInf, om)
	}
	// Bucket without an exemplar renders bare.
	if !strings.Contains(om, "eip_lat_seconds_bucket{le=\"0.1\"} 1\n") {
		t.Fatalf("exemplar-free bucket changed:\n%s", om)
	}
}

func TestExemplarLatestWinsAndBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("eip_x_seconds", "x", []float64{1})
	h.ObserveExemplar(0.5, "aaaa")
	h.ObserveExemplar(0.7, "bbbb")
	h.ObserveExemplar(0.9, strings.Repeat("c", 64)) // over cap: count, skip exemplar
	h.ObserveExemplar(0.9, "")                      // empty: count, skip exemplar
	om := string(r.RenderOpenMetrics(nil))
	if !strings.Contains(om, `# {trace_id="bbbb"} 0.7`) {
		t.Fatalf("latest exemplar did not win:\n%s", om)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
}

func TestExemplarRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("eip_r_seconds", "r", []float64{1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			h.ObserveExemplar(0.5, "0123456789abcdef0123456789abcdef")
		}
	}()
	for i := 0; i < 200; i++ {
		r.RenderOpenMetrics(nil)
	}
	<-done
	if h.Count() != 5000 {
		t.Fatalf("count = %d", h.Count())
	}
}
