package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with this run's output")

// TestRenderGolden pins the full exposition byte-for-byte: HELP/TYPE
// ordering, label rendering and escaping, histogram triplets, collector
// output, and the lexicographic family sort. Regenerate after deliberate
// format changes with: go test ./internal/obs -run RenderGolden -update
func TestRenderGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("demo_requests_total", "Requests served.", "route", "GET /v1/models")
	reqs.Add(17)
	r.Counter("demo_requests_total", "Requests served.", "route", "POST /v1/models/{name}/generate").Add(3)
	plain := r.Counter("demo_restarts_total", "Restarts (unlabeled counter).")
	plain.Inc()
	g := r.Gauge("demo_in_flight", "In-flight requests.")
	g.Set(2)
	r.GaugeFunc("demo_uptime_seconds", "Uptime (gauge func).", func() float64 { return 12.5 })
	r.CounterFunc("demo_ticks_total", "Ticks (counter func).", func() float64 { return 99 })
	h := r.Histogram("demo_request_seconds", "Request latency.", []float64{0.025, 0.25, 2.5}, "route", "GET /v1/models")
	for _, v := range []float64{0.01, 0.02, 0.2, 1, 30} {
		h.Observe(v)
	}
	// Label escaping: backslash, quote, newline in a value.
	r.Counter("demo_weird_total", "Escaping check.", "path", "a\\b\"c\nd").Add(7)
	// Help escaping: backslash and newline.
	r.Gauge("demo_helptext", "line one\nline \\ two").Set(1)
	// Dynamic per-entity series via a collector.
	r.Collect(func(e *Expo) {
		e.Gauge("demo_model_window", "Per-model ingest window.", 4096, "model", "web")
		e.Gauge("demo_model_window", "Per-model ingest window.", 512, "model", "dns")
		e.Counter("demo_model_rotations_total", "Per-model rotations.", 2, "model", "web")
	})

	got := r.Render(nil)
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("exposition mismatch\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

func TestRenderAppendsToCallerBuffer(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	buf := append(make([]byte, 0, 512), "PREFIX"...)
	out := r.Render(buf)
	if !strings.HasPrefix(string(out), "PREFIX# HELP x_total") {
		t.Fatalf("Render did not append to the caller's buffer: %q", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := renderLabels([]string{"k", `back\slash "quote"` + "\nnewline"})
	want := `k="back\\slash \"quote\"\nnewline"`
	if got != want {
		t.Fatalf("renderLabels = %s, want %s", got, want)
	}
}

func TestExpoGroupsFamilies(t *testing.T) {
	e := newExpo()
	e.Gauge("a", "help a", 1, "m", "x")
	e.Gauge("a", "help a", 2, "m", "y")
	if len(e.fams) != 1 || len(e.fams[0].samples) != 2 {
		t.Fatalf("expo grouping broken: %+v", e.fams)
	}
	out := string(e.fams[0].render(nil))
	if strings.Count(out, "# TYPE a gauge") != 1 {
		t.Fatalf("TYPE line not emitted exactly once:\n%s", out)
	}
}

func TestDynamicNameCollisionDropped(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "static").Add(5)
	r.Collect(func(e *Expo) {
		e.Counter("c_total", "dynamic", 999) // collides with static: dropped
		e.Gauge("d", "dynamic ok", 1)
	})
	out := string(r.Render(nil))
	if strings.Contains(out, "999") {
		t.Fatalf("colliding dynamic sample leaked into output:\n%s", out)
	}
	if !strings.Contains(out, "c_total 5\n") || !strings.Contains(out, "d 1\n") {
		t.Fatalf("expected samples missing:\n%s", out)
	}
}
