package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":   slog.LevelDebug,
		"info":    slog.LevelInfo,
		"":        slog.LevelInfo,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"error":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not error")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "json", slog.LevelInfo)
	l.Debug("hidden")
	l.Info("served", "route", "GET /v1/models", "status", 200)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("output is not one JSON object: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "served" || rec["route"] != "GET /v1/models" || rec["status"] != float64(200) {
		t.Fatalf("unexpected record: %v", rec)
	}
}

func TestNewLoggerTextLevel(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "text", slog.LevelWarn)
	l.Info("hidden")
	l.Warn("shown")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("level filtering broken:\n%s", out)
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	l := NopLogger()
	if l.Enabled(nil, slog.LevelError) { //nolint:staticcheck // nil ctx fine for Enabled
		t.Fatal("NopLogger claims to be enabled")
	}
	l.Error("nothing happens")
}

func TestNextRequestIDUnique(t *testing.T) {
	a, b := NextRequestID(), NextRequestID()
	if a == b {
		t.Fatalf("request IDs collide: %s", a)
	}
	if !strings.Contains(a, "-") {
		t.Fatalf("unexpected ID shape: %s", a)
	}
}

func TestStageTrace(t *testing.T) {
	tr := NewStageTrace()
	tr.Record("entropy", 100*time.Millisecond)
	tr.Record("learn", 300*time.Millisecond)
	if got := tr.Total(); got != 400*time.Millisecond {
		t.Fatalf("total = %v, want 400ms", got)
	}
	st := tr.Stages()
	if len(st) != 2 || st[0].Name != "entropy" || st[1].Name != "learn" {
		t.Fatalf("stages = %+v", st)
	}
	var buf bytes.Buffer
	if err := tr.Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"entropy", "25.0%", "learn", "75.0%", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
