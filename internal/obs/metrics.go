// Package obs is the observability plane of the Entropy/IP serving
// system: a dependency-free metrics library — atomic counters, gauges and
// fixed-bucket latency histograms with a lock-free, zero-allocation hot
// path, plus a Registry that renders the Prometheus text exposition
// format (v0.0.4) into a caller-provided buffer — together with a
// log/slog-based structured-logger factory, process-unique request IDs,
// and a lightweight stage tracer for the training pipeline.
//
// Hot-path contract: Counter.Inc/Add, Gauge.Inc/Dec/Add/Set and
// Histogram.Observe never allocate and never take a lock
// (BenchmarkMetricsHotPath is CI-gated at 0 allocs/op, the same gate the
// serving-plane I/O paths live under). Registration and rendering are
// scrape-rate paths, not request-rate paths; they may lock and allocate.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use, but counters that should be exported are normally created
// through Registry.Counter so they carry a name and labels.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (in-flight requests, queue
// depth). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds d (which may be negative) to the gauge.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency buckets (seconds), covering the
// sub-millisecond cache-hit path through multi-second training queues —
// the same spread Prometheus client libraries default to.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram of float64 observations
// (typically latencies in seconds). Buckets are cumulative in the
// exposition output, with upper bounds inclusive (`le`), exactly like
// Prometheus client histograms. Observe is lock-free and allocation-free.
type Histogram struct {
	// bounds are the inclusive upper bounds, sorted ascending. counts has
	// one slot per bound plus a final +Inf slot.
	bounds []float64
	counts []atomic.Uint64
	// sum holds the math.Float64bits of the running sum, advanced by CAS.
	sum atomic.Uint64
}

// newHistogram builds a histogram over the given bucket upper bounds
// (nil selects DefBuckets). Bounds must be strictly increasing.
func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic("obs: histogram buckets must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: own,
		counts: make([]atomic.Uint64, len(own)+1),
	}
}

// Observe records one value. Buckets are few (≈10), so a linear scan
// beats binary search on branch prediction and stays allocation-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}
