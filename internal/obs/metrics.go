// Package obs is the observability plane of the Entropy/IP serving
// system: a dependency-free metrics library — atomic counters, gauges and
// fixed-bucket latency histograms with a lock-free, zero-allocation hot
// path, plus a Registry that renders the Prometheus text exposition
// format (v0.0.4) into a caller-provided buffer — together with a
// log/slog-based structured-logger factory, process-unique request IDs,
// and a lightweight stage tracer for the training pipeline.
//
// Hot-path contract: Counter.Inc/Add, Gauge.Inc/Dec/Add/Set,
// Histogram.Observe and Histogram.ObserveExemplar never allocate and
// never take a lock (BenchmarkMetricsHotPath is CI-gated at 0 allocs/op,
// the same gate the serving-plane I/O paths live under). Registration and
// rendering are scrape-rate paths, not request-rate paths; they may lock
// and allocate.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use, but counters that should be exported are normally created
// through Registry.Counter so they carry a name and labels.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (in-flight requests, queue
// depth). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds d (which may be negative) to the gauge.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency buckets (seconds), covering the
// sub-millisecond cache-hit path through multi-second training queues —
// the same spread Prometheus client libraries default to.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram of float64 observations
// (typically latencies in seconds). Buckets are cumulative in the
// exposition output, with upper bounds inclusive (`le`), exactly like
// Prometheus client histograms. Observe is lock-free and allocation-free.
type Histogram struct {
	// bounds are the inclusive upper bounds, sorted ascending. counts has
	// one slot per bound plus a final +Inf slot.
	bounds []float64
	counts []atomic.Uint64
	// sum holds the math.Float64bits of the running sum, advanced by CAS.
	sum atomic.Uint64
	// exemplars holds one best-effort exemplar slot per bucket, filled by
	// ObserveExemplar and rendered only in the OpenMetrics exposition.
	exemplars []exemplar
}

// exemplarIDLen bounds a stored exemplar ID; 32 fits a hex W3C trace ID
// exactly.
const exemplarIDLen = 32

// exemplar is one lock-free bucket exemplar slot. state is a 3-state
// latch: 0 empty, 1 busy (one goroutine holds exclusive access to the
// plain fields), 2 valid. Writers and readers both acquire via CAS to 1
// and release via Store, so field access is exclusive and the CAS/Store
// pair provides the happens-before edge; contenders skip instead of
// spinning (exemplars are best-effort samples, not ledger data).
type exemplar struct {
	state atomic.Int32
	value float64
	idLen int
	id    [exemplarIDLen]byte
}

// tryStore records (id, v) in the slot unless another goroutine holds it.
func (e *exemplar) tryStore(id string, v float64) {
	st := e.state.Load()
	if st == 1 || !e.state.CompareAndSwap(st, 1) {
		return
	}
	e.idLen = copy(e.id[:], id)
	e.value = v
	e.state.Store(2)
}

// tryLoad copies the slot's exemplar out, or reports false when the slot
// is empty or busy.
func (e *exemplar) tryLoad(id *[exemplarIDLen]byte, v *float64) bool {
	if e.state.Load() != 2 || !e.state.CompareAndSwap(2, 1) {
		return false
	}
	n := copy(id[:], e.id[:e.idLen])
	*v = e.value
	e.state.Store(2)
	return n > 0
}

// newHistogram builds a histogram over the given bucket upper bounds
// (nil selects DefBuckets). Bounds must be strictly increasing.
func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	own := make([]float64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic("obs: histogram buckets must be strictly increasing")
		}
	}
	return &Histogram{
		bounds:    own,
		counts:    make([]atomic.Uint64, len(own)+1),
		exemplars: make([]exemplar, len(own)+1),
	}
}

// Observe records one value. Buckets are few (≈10), so a linear scan
// beats binary search on branch prediction and stays allocation-free.
func (h *Histogram) Observe(v float64) {
	h.observe(v, "")
}

// ObserveExemplar records one value and attaches exemplarID (typically a
// hex trace ID) to the bucket the value lands in, best-effort: the slot
// holds the latest uncontended store and is only rendered in the
// OpenMetrics exposition (`# {trace_id="..."} value`). IDs over 32 bytes
// or empty are recorded without an exemplar. Lock-free, 0 allocs/op.
func (h *Histogram) ObserveExemplar(v float64, exemplarID string) {
	h.observe(v, exemplarID)
}

func (h *Histogram) observe(v float64, exemplarID string) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			break
		}
	}
	if exemplarID != "" && len(exemplarID) <= exemplarIDLen {
		h.exemplars[i].tryStore(exemplarID, v)
	}
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}
