// Package layers checks the package import DAG against a checked-in
// rule file (docs/layers.json), turning the repo's layering conventions
// — "no obs import below serve", "core never sees the serving plane",
// "pkg/client speaks only public surfaces" — into merge-blocking
// diagnostics at the offending import line.
//
// Rule semantics: a rule fires for a package P when P matches `from`,
// does not match `allow`, and imports a path matching `deny`. Patterns
// use the go tool's convention ("path", "path/...", "...").
package layers

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"entropyip/internal/analysis"
)

// Rule is one import prohibition.
type Rule struct {
	// Name labels the rule in diagnostics.
	Name string `json:"name"`
	// From are the packages the rule constrains.
	From []string `json:"from"`
	// Allow exempts packages that would otherwise match From.
	Allow []string `json:"allow"`
	// Deny are the import paths the constrained packages must not import.
	Deny []string `json:"deny"`
	// Only, when non-empty, turns Deny into a universe filter: imports
	// matching Deny are legal only if they also match Only ("pkg/client
	// may import internal packages only from this allow-list").
	Only []string `json:"only"`
	// Why is the rationale, echoed in the diagnostic.
	Why string `json:"why"`
}

// Config is the parsed rule file.
type Config struct {
	Rules []Rule `json:"rules"`
}

// LoadConfig reads and validates a layers.json file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	for i, r := range cfg.Rules {
		if r.Name == "" {
			return Config{}, fmt.Errorf("%s: rule %d has no name", path, i)
		}
		if len(r.From) == 0 || len(r.Deny) == 0 {
			return Config{}, fmt.Errorf("%s: rule %q needs non-empty from and deny", path, r.Name)
		}
	}
	return cfg, nil
}

// New returns the analyzer for a rule set.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "layers",
		Doc:  "checks the package import DAG against the checked-in layering rules (docs/layers.json)",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

func run(pass *analysis.Pass, cfg Config) {
	path := pass.Pkg.Path()
	var active []Rule
	for _, r := range cfg.Rules {
		if analysis.MatchAnyPath(r.From, path) && !analysis.MatchAnyPath(r.Allow, path) {
			active = append(active, r)
		}
	}
	if len(active) == 0 {
		return
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, imp := range f.Imports {
			target, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, r := range active {
				if !analysis.MatchAnyPath(r.Deny, target) {
					continue
				}
				if len(r.Only) > 0 && analysis.MatchAnyPath(r.Only, target) {
					continue
				}
				why := ""
				if r.Why != "" {
					why = ": " + r.Why
				}
				pass.Reportf(imp.Pos(),
					"%s must not import %s (rule %q%s)", path, target, r.Name, why)
			}
		}
	}
}
