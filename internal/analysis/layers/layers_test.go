package layers_test

import (
	"os"
	"path/filepath"
	"testing"

	"entropyip/internal/analysis/analysistest"
	"entropyip/internal/analysis/layers"
)

const fixtureTree = "entropyip/internal/analysis/testdata/src/layers"

func testConfig() layers.Config {
	return layers.Config{Rules: []layers.Rule{
		{
			Name: "no-depbad",
			From: []string{fixtureTree + "/app"},
			Deny: []string{fixtureTree + "/depbad"},
			Why:  "fixture: app must stay off depbad",
		},
		{
			Name: "deps-allowlist",
			From: []string{fixtureTree + "/app"},
			Deny: []string{fixtureTree + "/..."},
			Only: []string{fixtureTree + "/depgood"},
		},
	}}
}

func TestLayers(t *testing.T) {
	analysistest.Run(t, "../testdata/src/layers/app", layers.New(testConfig()))
}

// TestLayersDependenciesClean checks that the dependency packages
// themselves (not matched by any rule's from) are never flagged.
func TestLayersDependenciesClean(t *testing.T) {
	a := layers.New(testConfig())
	analysistest.RunExpectClean(t, "../testdata/src/layers/depgood", a)
	analysistest.RunExpectClean(t, "../testdata/src/layers/depbad", a)
}

func TestLoadConfigValidates(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := layers.LoadConfig(write("ok.json",
		`{"rules":[{"name":"r","from":["a"],"deny":["b"]}]}`)); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := layers.LoadConfig(write("noname.json",
		`{"rules":[{"from":["a"],"deny":["b"]}]}`)); err == nil {
		t.Error("rule without name accepted")
	}
	if _, err := layers.LoadConfig(write("nodeny.json",
		`{"rules":[{"name":"r","from":["a"]}]}`)); err == nil {
		t.Error("rule without deny accepted")
	}
}
