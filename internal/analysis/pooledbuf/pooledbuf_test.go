package pooledbuf_test

import (
	"testing"

	"entropyip/internal/analysis/analysistest"
	"entropyip/internal/analysis/pooledbuf"
)

func TestPooledbuf(t *testing.T) {
	analysistest.Run(t, "../testdata/src/pooledbuf", pooledbuf.New())
}
