// Package pooledbuf enforces the sync.Pool ownership rules of
// DESIGN.md §7: a value taken out of a pool is either returned by the
// same function (a get-wrapper that hands ownership to its caller) or
// put back by that function — and it must not escape through a struct
// field, package variable or channel while pooled.
//
// The check is intentionally syntactic, not a full escape analysis:
//
//   - a (*sync.Pool).Get call whose enclosing function contains no Put
//     on the same pool expression (anywhere, including inside defers and
//     closures) and does not return the gotten value is flagged;
//   - an identifier bound to a Get result that is later assigned into a
//     selector (x.f = buf) or sent on a channel is flagged as a retained
//     alias.
//
// Ownership handoffs the analyzer cannot see (a put that happens in a
// callee, a batch whose consumer copies before return) are annotated:
//
//	buf := p.Get().(*[]byte) //eip:pool-ok consumer copies before return; put happens in flush
package pooledbuf

import (
	"go/ast"
	"go/types"

	"entropyip/internal/analysis"
)

// New returns the analyzer. It is configured entirely by source
// directives — the sync.Pool contract is global, not per-package.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "pooledbuf",
		Doc:         "flags sync.Pool Gets without a matching Put in the same function and pooled values escaping via retained aliases",
		SuppressKey: "pool-ok",
		Run: func(pass *analysis.Pass) error {
			run(pass)
			return nil
		},
	}
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
}

// poolMethodCall returns the receiver expression of a (*sync.Pool).Get
// or Put call, or nil.
func poolMethodCall(pass *analysis.Pass, call *ast.CallExpr, name string) ast.Expr {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sel.X
}

// exprKey renders a pool expression for identity comparison
// ("lineBufPool", "s.pool"). types.ExprString is stable for the
// selector/ident shapes pools are stored in.
func exprKey(e ast.Expr) string {
	return types.ExprString(analysis.Unparen(e))
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// First pass: collect the pools Put anywhere in this function
	// (defers and closures included).
	puts := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if recv := poolMethodCall(pass, call, "Put"); recv != nil {
				puts[exprKey(recv)] = true
			}
		}
		return true
	})

	// Second pass: audit every Get.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv := poolMethodCall(pass, call, "Get")
		if recv == nil {
			return true
		}
		if returnsValue(fd, call) {
			return true // get-wrapper: ownership moves to the caller
		}
		pool := exprKey(recv)
		if !puts[pool] {
			pass.Reportf(call.Pos(),
				"%s.Get has no matching %s.Put in this function; balance it (defer works) or annotate //eip:pool-ok <why>",
				pool, pool)
		}
		if obj := boundIdent(pass, fd, call); obj != nil {
			reportEscapes(pass, fd, obj, pool)
		}
		return true
	})
}

// returnsValue reports whether the Get call's value is produced by a
// return statement of the function (possibly through a type assertion
// or pointer indirection).
func returnsValue(fd *ast.FuncDecl, get *ast.CallExpr) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, res := range ret.Results {
			if containsNode(res, get) {
				found = true
			}
		}
		return !found
	})
	return found
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// boundIdent returns the object of the single identifier the Get result
// is assigned to (v := pool.Get().(*T) and variants), or nil.
func boundIdent(pass *analysis.Pass, fd *ast.FuncDecl, get *ast.CallExpr) types.Object {
	var obj types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || obj != nil {
			return obj == nil
		}
		if len(as.Lhs) < 1 || len(as.Rhs) != 1 || !containsNode(as.Rhs[0], get) {
			return true
		}
		id, ok := analysis.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if o := pass.TypesInfo.Defs[id]; o != nil {
			obj = o
		} else if o := pass.TypesInfo.Uses[id]; o != nil {
			obj = o
		}
		return true
	})
	return obj
}

// reportEscapes flags stores of the pooled value into selectors (struct
// fields, including fields of captured structs) and channel sends.
func reportEscapes(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object, pool string) {
	usesObj := func(e ast.Expr) bool {
		used := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				used = true
			}
			return !used
		})
		return used
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if _, isSel := analysis.Unparen(lhs).(*ast.SelectorExpr); isSel && usesObj(n.Rhs[i]) {
					pass.Reportf(n.Pos(),
						"pooled value from %s is retained through a field assignment; pooled buffers must not outlive the function (DESIGN.md §7), or annotate //eip:pool-ok <why>",
						pool)
				}
			}
		case *ast.SendStmt:
			if usesObj(n.Value) {
				pass.Reportf(n.Pos(),
					"pooled value from %s is sent on a channel; pooled buffers must not outlive the function (DESIGN.md §7), or annotate //eip:pool-ok <why>",
					pool)
			}
		}
		return true
	})
}
