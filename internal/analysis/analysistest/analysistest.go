// Package analysistest runs an analyzer over a checked-in fixture
// package and compares its diagnostics against `// want` comments, the
// same golden convention as golang.org/x/tools/go/analysis/analysistest:
//
//	counts[k]++ // want `map iteration`
//
// Each backquoted segment after "want" is a regular expression; every
// expectation on a line must be matched by a diagnostic reported on that
// line of that file, and every diagnostic must match an expectation.
// Fixtures live under internal/analysis/testdata/src/<name> and are
// ordinary buildable packages inside this module (wildcard patterns like
// ./... never descend into testdata, so their deliberate violations are
// invisible to the real lint runs).
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"entropyip/internal/analysis"
	"entropyip/internal/analysis/load"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture package at dir (relative paths are resolved
// against the caller's source directory, like x/tools analysistest) and
// checks the analyzer's diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	run(t, resolveDir(t, dir), a, false)
}

// RunExpectClean loads the fixture like Run but asserts the analyzer
// reports nothing, ignoring the fixture's want comments. It exercises
// configuration scoping: the same fixture that produces diagnostics
// under the test config must stay silent when the analyzer is
// configured for other packages. Directive-hygiene reports (a bare
// //eip: directive with no justification) are exempt — the framework
// checks those wherever the directive appears, independent of any
// analyzer configuration.
func RunExpectClean(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	run(t, resolveDir(t, dir), a, true)
}

func resolveDir(t *testing.T, dir string) string {
	t.Helper()
	if !filepath.IsAbs(dir) {
		_, caller, _, ok := runtime.Caller(2)
		if !ok {
			t.Fatal("analysistest: cannot locate caller to resolve relative dir")
		}
		dir = filepath.Join(filepath.Dir(caller), dir)
	}
	return dir
}

func run(t *testing.T, dir string, a *analysis.Analyzer, expectClean bool) {
	t.Helper()
	pkgs, err := load.Load(dir, []string{"."})
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		fset = pkg.Fset
		pass := &analysis.Pass{
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			ModulePath: pkg.ModulePath,
			ModuleDir:  pkg.ModuleDir,
		}
		ds, err := analysis.RunAnalyzers(pass, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		diags = append(diags, ds...)
	}

	if expectClean {
		for _, d := range diags {
			if strings.Contains(d.Message, "directive requires a justification") {
				continue
			}
			posn := fset.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(posn.Filename), posn.Line, d.Message)
		}
		return
	}

	expects := collectWants(t, pkgs)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		file, line := filepath.Base(posn.Filename), posn.Line
		ok := false
		for _, e := range expects {
			if e.file == file && e.line == line && e.re.MatchString(d.Message) {
				e.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", file, line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

// collectWants scans fixture comments for want expectations.
func collectWants(t *testing.T, pkgs []*load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// Both comment forms carry expectations; the block form
					// exists for lines whose trailing comment slot is taken
					// by the directive under test:
					//	x() /* want `...` */ //eip:alloc-ok
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSuffix(text, "*/")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") && text != "want" {
						continue
					}
					posn := pkg.Fset.Position(c.Pos())
					ms := wantRE.FindAllStringSubmatch(text, -1)
					if len(ms) == 0 {
						t.Fatalf("%s:%d: want comment without a backquoted pattern", posn.Filename, posn.Line)
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", posn.Filename, posn.Line, m[1], err)
						}
						out = append(out, &expectation{
							file: filepath.Base(posn.Filename),
							line: posn.Line,
							re:   re,
							raw:  m[1],
						})
					}
				}
			}
		}
	}
	return out
}
