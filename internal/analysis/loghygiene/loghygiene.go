// Package loghygiene keeps the serving plane on the structured slog
// logger (replacing the grep-based CI step that banned log.Printf /
// fmt.Printf there), and checks that slog attribute keys are snake_case
// string constants so the log stream stays machine-parseable and
// greppable.
//
// In the configured packages (non-test files):
//
//   - the print families of "log" (Print*, Fatal*, Panic*) and "fmt"
//     (Print, Printf, Println) are banned: they bypass -log-format and
//     lose the request-ID correlation;
//   - every slog attribute key — in Logger.Debug/Info/Warn/Error/Log/
//     With, the slog package-level equivalents, and the slog.String/Int/
//     …/Group attr constructors — must be a constant string matching
//     ^[a-z][a-z0-9]*(_[a-z0-9]+)*$. Dynamic keys are flagged too: a key
//     the reader cannot grep for is a key that may as well not exist.
//
// Suppression: //eip:log-ok <why> (e.g. a deliberate stdout banner in a
// CLI entry point).
package loghygiene

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"

	"entropyip/internal/analysis"
)

// Config declares where the logging contract applies.
type Config struct {
	Packages []string `json:"packages"`
}

// DefaultConfig covers the serving plane (the packages the old grep
// step guarded).
var DefaultConfig = Config{
	Packages: []string{
		"entropyip/internal/serve",
		"entropyip/internal/registry",
	},
}

// New returns the analyzer for a configuration.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "loghygiene",
		Doc:         "bans unstructured logging in the serving plane and checks slog attribute keys are snake_case constants",
		SuppressKey: "log-ok",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

var keyRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// bannedPrint maps package path to its banned function names.
var bannedPrint = map[string]map[string]bool{
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
	},
}

// attrCtors are slog package-level Attr constructors whose first
// argument is the key.
var attrCtors = map[string]bool{
	"String": true, "Int": true, "Int64": true, "Uint64": true,
	"Float64": true, "Bool": true, "Duration": true, "Time": true,
	"Any": true, "Group": true,
}

// logMethods maps slog logging entry points to the index of their first
// key/value argument.
var logMethods = map[string]int{
	"Debug": 1, "Info": 1, "Warn": 1, "Error": 1,
	"DebugContext": 2, "InfoContext": 2, "WarnContext": 2, "ErrorContext": 2,
	"Log":  3, // (ctx, level, msg, args...)
	"With": 0,
}

func run(pass *analysis.Pass, cfg Config) {
	if !analysis.MatchAnyPath(cfg.Packages, pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	if !isMethod {
		if banned := bannedPrint[pkg]; banned != nil && banned[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s bypasses the structured slog logger (-log-format, request-ID correlation); log through *slog.Logger, or annotate //eip:log-ok <why>",
				pkg, fn.Name())
			return
		}
	}

	if pkg != "log/slog" {
		return
	}
	// Attr constructors: key is the first argument.
	if !isMethod && attrCtors[fn.Name()] && len(call.Args) > 0 {
		checkKey(pass, call.Args[0])
		return
	}
	// Logging entry points: package-level functions and *Logger methods
	// share names; the key/value tail starts after msg (and ctx/level
	// where present).
	start, ok := logMethods[fn.Name()]
	if !ok {
		return
	}
	if isMethod {
		recv := sig.Recv().Type()
		if ptr, okp := recv.(*types.Pointer); okp {
			recv = ptr.Elem()
		}
		named, okn := recv.(*types.Named)
		if !okn || named.Obj().Name() != "Logger" {
			return
		}
	}
	args := call.Args
	if call.Ellipsis.IsValid() && len(args) > 0 {
		// logger.Info(msg, attrs...) forwards a built slice; its contents
		// are out of static reach.
		args = args[:len(args)-1]
	}
	checkKeyValueTail(pass, args, start)
}

// checkKeyValueTail walks slog's mixed ...any tail: a slog.Attr consumes
// one slot, anything else is a key consuming two.
func checkKeyValueTail(pass *analysis.Pass, args []ast.Expr, start int) {
	for i := start; i < len(args); {
		arg := args[i]
		if isSlogAttr(pass, arg) {
			i++
			continue
		}
		checkKey(pass, arg)
		i += 2
	}
}

func isSlogAttr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		return obj.Name() == "Attr" && obj.Pkg() != nil && obj.Pkg().Path() == "log/slog"
	}
	return false
}

func checkKey(pass *analysis.Pass, arg ast.Expr) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"slog attribute key must be a string constant (a dynamic key cannot be grepped or indexed); hoist it to a const, or annotate //eip:log-ok <why>")
		return
	}
	key := constant.StringVal(tv.Value)
	if !keyRE.MatchString(key) {
		pass.Reportf(arg.Pos(),
			"slog attribute key %q is not snake_case ([a-z0-9_], starting with a letter); rename it, or annotate //eip:log-ok <why>", key)
	}
}
