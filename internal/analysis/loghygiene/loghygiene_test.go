package loghygiene_test

import (
	"testing"

	"entropyip/internal/analysis/analysistest"
	"entropyip/internal/analysis/loghygiene"
)

func TestLoghygiene(t *testing.T) {
	a := loghygiene.New(loghygiene.Config{Packages: []string{
		"entropyip/internal/analysis/testdata/src/loghygiene",
	}})
	analysistest.Run(t, "../testdata/src/loghygiene", a)
}

// TestLoghygieneUnconfigured checks that packages outside the declared
// set keep their printing habits unflagged.
func TestLoghygieneUnconfigured(t *testing.T) {
	a := loghygiene.New(loghygiene.Config{Packages: []string{
		"entropyip/internal/some/other/pkg",
	}})
	analysistest.RunExpectClean(t, "../testdata/src/loghygiene", a)
}
