package detrand_test

import (
	"testing"

	"entropyip/internal/analysis/analysistest"
	"entropyip/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	a := detrand.New(detrand.Config{Packages: []string{
		"entropyip/internal/analysis/testdata/src/detrand",
	}})
	analysistest.Run(t, "../testdata/src/detrand", a)
}

// TestDetrandUnconfigured checks that packages outside the declared
// deterministic set are never flagged.
func TestDetrandUnconfigured(t *testing.T) {
	a := detrand.New(detrand.Config{Packages: []string{
		"entropyip/internal/some/other/pkg",
	}})
	analysistest.RunExpectClean(t, "../testdata/src/detrand", a)
}
