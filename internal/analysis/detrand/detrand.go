// Package detrand flags sources of run-to-run nondeterminism inside the
// packages whose outputs must be bit-identical across runs and worker
// counts (the training/generation pipeline: entropy profiling, segment
// mining, structure learning, model serialization — see DESIGN.md
// "Determinism").
//
// Three constructs are flagged:
//
//   - ranging over a map, whose iteration order is randomized. The one
//     recognized safe shape is append-then-sort: a loop that appends map
//     keys/values to a slice that is later passed to a sort.* or
//     slices.Sort* call in the same function (the ShannonMap idiom).
//     Writing map entries into another map commutes too, but the
//     idiomatic deterministic spelling is maps.Copy, which contains no
//     range statement at all.
//   - calls to math/rand's (or math/rand/v2's) package-level functions,
//     which draw from the shared global source. Constructing explicit
//     sources (rand.New, rand.NewSource, …) is fine: seeded *rand.Rand
//     values are how the pipeline injects reproducible randomness.
//   - time.Now / time.Since / time.Until, which leak the wall clock.
//
// Intentional nondeterminism is annotated in place:
//
//	now := time.Now() //eip:nondeterministic-ok model metadata, not in the determinism contract
//
// The justification string is mandatory.
package detrand

import (
	"go/ast"
	"go/types"

	"entropyip/internal/analysis"
)

// Config declares where the determinism contract applies.
type Config struct {
	// Packages are import-path patterns ("entropyip/internal/bayes",
	// "entropyip/internal/core/...") the analyzer runs on. Packages not
	// matching any pattern are skipped entirely.
	Packages []string `json:"packages"`
}

// DefaultConfig covers the repo's declared deterministic packages.
var DefaultConfig = Config{
	Packages: []string{
		"entropyip/internal/bayes",
		"entropyip/internal/entropy",
		"entropyip/internal/mining",
		"entropyip/internal/core",
	},
}

// New returns the analyzer for a configuration.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "detrand",
		Doc:         "flags map-range iteration, global math/rand and wall-clock reads in packages whose output must be bit-deterministic",
		SuppressKey: "nondeterministic-ok",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

func run(pass *analysis.Pass, cfg Config) {
	if !analysis.MatchAnyPath(cfg.Packages, pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkMapRange(pass, fd, n)
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if feedsSortedSink(pass, fd, rng) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order is nondeterministic and can reach the output; iterate sorted keys (or append-then-sort), or annotate //eip:nondeterministic-ok <why>")
}

// feedsSortedSink recognizes the append-then-sort idiom: every slice the
// range body appends to is passed to a sort.*/slices.Sort* call later in
// the same function, and the body performs nothing but those appends
// (assignments whose right side is an append call, plus trivial
// filtering around them).
func feedsSortedSink(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	appended := make(map[types.Object]bool)
	pure := true
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				pure = false
				return false
			}
			for i, rhs := range n.Rhs {
				call, ok := analysis.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pass, call.Fun, "append") {
					pure = false
					return false
				}
				lhs, ok := analysis.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					pure = false
					return false
				}
				if obj := pass.TypesInfo.Uses[lhs]; obj != nil {
					appended[obj] = true
				} else if obj := pass.TypesInfo.Defs[lhs]; obj != nil {
					appended[obj] = true
				}
			}
		case *ast.CallExpr:
			// Only side-effect-free builtins and type conversions keep
			// the body "append-only".
			if isBuiltin(pass, n.Fun, "append") || isBuiltin(pass, n.Fun, "len") ||
				isBuiltin(pass, n.Fun, "cap") {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true
			}
			pure = false
			return false
		}
		return true
	})
	if !pure || len(appended) == 0 {
		return false
	}
	// Every appended slice must hit a sort call after the loop.
	sorted := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := analysis.Unparen(arg).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					sorted[obj] = true
				}
			}
		}
		return true
	})
	for obj := range appended {
		if !sorted[obj] {
			return false
		}
	}
	return true
}

// isBuiltin reports whether fun is a use of the named predeclared
// builtin (not shadowed by a local declaration).
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := analysis.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// randConstructors are math/rand package-level functions that build
// explicit sources or generators rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are explicit-source
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global random source; use a seeded *rand.Rand, or annotate //eip:nondeterministic-ok <why>",
				fn.Pkg().Path(), fn.Name())
		}
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock inside a deterministic package; thread timestamps in from the caller, or annotate //eip:nondeterministic-ok <why>",
				fn.Name())
		}
	}
}
