package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Unparen strips any enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Callee resolves the static callee of a call, or nil for calls through
// function values, builtins and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgCall reports whether call is a call of the named package-level
// function (pkgPath.name), e.g. IsPkgCall(info, call, "fmt", "Sprintf").
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := Callee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && !isMethod(fn)
}

func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// MatchPath reports whether an import-path pattern matches a package
// path. Patterns follow the go tool's convention: "..." matches
// everything, a trailing "/..." matches the named package and its
// subtree, anything else matches exactly.
func MatchPath(pattern, path string) bool {
	if pattern == "..." {
		return true
	}
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return pattern == path
}

// MatchAnyPath reports whether any pattern matches the path.
func MatchAnyPath(patterns []string, path string) bool {
	for _, p := range patterns {
		if MatchPath(p, path) {
			return true
		}
	}
	return false
}

// FuncKey returns the config-file identifier of a function declaration:
// "Func" for a plain function, "Type.Method" for a method (pointer
// receivers spelled without the star). It is matched against the part of
// a "pkgpath.Func" / "pkgpath.Type.Method" config entry after the
// package path.
func FuncKey(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (Type[T]) reduce to the base type name.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + decl.Name.Name
	}
	return decl.Name.Name
}
