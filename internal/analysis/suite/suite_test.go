package suite_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"entropyip/internal/analysis/suite"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "..", "..", "..")
}

func names(t *testing.T, moduleDir, configPath, layersPath string) []string {
	t.Helper()
	as, err := suite.Analyzers(moduleDir, configPath, layersPath)
	if err != nil {
		t.Fatalf("Analyzers: %v", err)
	}
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestAnalyzersFromRepoConfig(t *testing.T) {
	got := names(t, repoRoot(t), "", "")
	want := []string{"detrand", "hotpath", "pooledbuf", "loghygiene", "layers"}
	if len(got) != len(want) {
		t.Fatalf("analyzers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("analyzers = %v, want %v", got, want)
		}
	}
}

// TestAnalyzersWithoutConfigFiles checks the ad-hoc module path: missing
// eipvet.json falls back to compiled-in defaults and a missing
// layers.json just drops the layers analyzer.
func TestAnalyzersWithoutConfigFiles(t *testing.T) {
	got := names(t, t.TempDir(), "", "")
	want := []string{"detrand", "hotpath", "pooledbuf", "loghygiene"}
	if len(got) != len(want) {
		t.Fatalf("analyzers = %v, want %v", got, want)
	}
}

// TestExplicitMissingConfigFails checks that an explicitly named config
// file that does not exist is an error, not a silent fallback.
func TestExplicitMissingConfigFails(t *testing.T) {
	dir := t.TempDir()
	if _, err := suite.Analyzers(dir, filepath.Join(dir, "nope.json"), ""); err == nil {
		t.Error("missing explicit config accepted")
	}
	if _, err := suite.Analyzers(dir, "", filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing explicit layers file accepted")
	}
}
