// Package suite assembles the repo's analyzer set from its checked-in
// configuration (docs/eipvet.json + docs/layers.json), for use by the
// cmd/eipvet driver in both its standalone and go vet -vettool modes.
package suite

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"entropyip/internal/analysis"
	"entropyip/internal/analysis/detrand"
	"entropyip/internal/analysis/hotpath"
	"entropyip/internal/analysis/layers"
	"entropyip/internal/analysis/loghygiene"
	"entropyip/internal/analysis/pooledbuf"
)

// Config is the docs/eipvet.json schema.
type Config struct {
	Detrand    detrand.Config    `json:"detrand"`
	Hotpath    hotpath.Config    `json:"hotpath"`
	Loghygiene loghygiene.Config `json:"loghygiene"`
}

// ConfigFile and LayersFile are the default config locations, relative
// to the module root.
const (
	ConfigFile = "docs/eipvet.json"
	LayersFile = "docs/layers.json"
)

// LoadConfig reads an eipvet.json file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// Analyzers builds the full suite. configPath and layersPath may be ""
// to resolve the defaults under moduleDir; a missing eipvet.json falls
// back to the compiled-in defaults, a missing layers.json simply
// disables the layers analyzer (ad-hoc modules have no layer contract).
func Analyzers(moduleDir, configPath, layersPath string) ([]*analysis.Analyzer, error) {
	cfg := Config{
		Detrand:    detrand.DefaultConfig,
		Loghygiene: loghygiene.DefaultConfig,
	}
	explicit := configPath != ""
	if !explicit && moduleDir != "" {
		configPath = filepath.Join(moduleDir, ConfigFile)
	}
	if configPath != "" {
		c, err := LoadConfig(configPath)
		switch {
		case err == nil:
			cfg = c
		case explicit || !os.IsNotExist(err):
			return nil, err
		}
	}

	out := []*analysis.Analyzer{
		detrand.New(cfg.Detrand),
		hotpath.New(cfg.Hotpath),
		pooledbuf.New(),
		loghygiene.New(cfg.Loghygiene),
	}

	explicitLayers := layersPath != ""
	if !explicitLayers && moduleDir != "" {
		layersPath = filepath.Join(moduleDir, LayersFile)
	}
	if layersPath != "" {
		lcfg, err := layers.LoadConfig(layersPath)
		switch {
		case err == nil:
			out = append(out, layers.New(lcfg))
		case explicitLayers || !os.IsNotExist(err):
			return nil, err
		}
	}
	return out, nil
}
