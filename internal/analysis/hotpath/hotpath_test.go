package hotpath_test

import (
	"testing"

	"entropyip/internal/analysis/analysistest"
	"entropyip/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	const pkg = "entropyip/internal/analysis/testdata/src/hotpath"
	a := hotpath.New(hotpath.Config{
		EntryPoints: []string{pkg + ".AppendRecord"},
		WarmFuncs:   []string{pkg + ".Handle", pkg + ".HandleJustified"},
	})
	analysistest.Run(t, "../testdata/src/hotpath", a)
}

// TestHotpathUnconfigured checks that with no declared functions in the
// package nothing is flagged.
func TestHotpathUnconfigured(t *testing.T) {
	a := hotpath.New(hotpath.Config{})
	analysistest.RunExpectClean(t, "../testdata/src/hotpath", a)
}
