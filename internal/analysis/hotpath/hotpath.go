// Package hotpath enforces the allocation discipline of DESIGN.md §7:
// the per-record serving paths (address formatting, wire framing,
// metrics observation, span recording, NDJSON line building) stay
// allocation-free, and the per-request handler bodies stay free of
// fmt-family formatting and of reflection-based encoding inside loops.
//
// Two tiers, both declared in docs/eipvet.json:
//
//   - entry_points — the zero-alloc contract. Every function reachable
//     from an entry point through static intra-package calls (including
//     calls made inside closures of those functions) must not call
//     fmt.Sprintf/Errorf/… or encoding/json, must not concatenate
//     strings inside a loop, and must not `make` inside a loop.
//     fmt calls whose result feeds directly into panic(...) are exempt:
//     a panicking path is terminal, not steady state.
//
//   - warm_funcs — the per-request tier (HTTP stream handlers). Only the
//     listed function's own body (closures included, callees excluded)
//     is checked, and the rules relax to: no fmt print/format calls
//     anywhere, no encoding/json and no make/concat inside loops. A
//     one-off json.NewDecoder of a request body is per-request, not
//     per-record, and stays legal.
//
// Deliberate allocations are annotated in place with a justification:
//
//	if err := json.Unmarshal(line, &ol); … //eip:alloc-ok JSON-framed lines are the documented slow path
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"entropyip/internal/analysis"
)

// Config declares the checked functions as "pkgpath.Func" or
// "pkgpath.Type.Method" (pointer receivers spelled without the star).
type Config struct {
	EntryPoints []string `json:"entry_points"`
	WarmFuncs   []string `json:"warm_funcs"`
}

// New returns the analyzer for a configuration.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:        "hotpath",
		Doc:         "forbids allocation-heavy calls in functions reachable from the declared zero-alloc entry points, and fmt/json use in the declared warm handlers",
		SuppressKey: "alloc-ok",
		Run: func(pass *analysis.Pass) error {
			run(pass, cfg)
			return nil
		},
	}
}

// splitEntry splits "pkgpath.Func" / "pkgpath.Type.Method" around the
// package path boundary: the path is everything before the first dot
// that follows the final slash.
func splitEntry(entry string) (pkg, fn string) {
	slash := strings.LastIndex(entry, "/")
	dot := strings.Index(entry[slash+1:], ".")
	if dot < 0 {
		return entry, ""
	}
	dot += slash + 1
	return entry[:dot], entry[dot+1:]
}

func run(pass *analysis.Pass, cfg Config) {
	entries := make(map[string]bool) // FuncKey within this package
	warm := make(map[string]bool)
	for _, e := range cfg.EntryPoints {
		if pkg, fn := splitEntry(e); pkg == pass.Pkg.Path() && fn != "" {
			entries[fn] = true
		}
	}
	for _, e := range cfg.WarmFuncs {
		if pkg, fn := splitEntry(e); pkg == pass.Pkg.Path() && fn != "" {
			warm[fn] = true
		}
	}
	if len(entries) == 0 && len(warm) == 0 {
		return
	}

	// Index this package's function declarations by their defining
	// object, and resolve the configured names.
	decls := make(map[types.Object]*ast.FuncDecl)
	keys := make(map[types.Object]string)
	var entryObjs, warmObjs []types.Object
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			key := analysis.FuncKey(fd)
			keys[obj] = key
			if entries[key] {
				entryObjs = append(entryObjs, obj)
			}
			if warm[key] {
				warmObjs = append(warmObjs, obj)
			}
		}
	}

	// BFS over static intra-package calls from the entry points.
	reached := make(map[types.Object]bool)
	queue := append([]types.Object(nil), entryObjs...)
	for _, o := range queue {
		reached[o] = true
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		fd := decls[obj]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path() {
				return true
			}
			callee := types.Object(fn)
			if _, local := decls[callee]; local && !reached[callee] {
				reached[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}

	for obj := range reached {
		checkBody(pass, decls[obj], keys[obj], true)
	}
	for _, obj := range warmObjs {
		if !reached[obj] { // strict tier subsumes the warm rules
			checkBody(pass, decls[obj], keys[obj], false)
		}
	}
}

// fmtAllocFuncs are the fmt package-level functions whose call implies
// formatting machinery and allocation.
var fmtAllocFuncs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true,
	"Errorf":  true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, key string, strict bool) {
	tier := "warm handler"
	if strict {
		tier = "zero-alloc path"
	}
	// panicArgs holds fmt calls that are the direct argument of a
	// panic(...): terminal, exempt in both tiers.
	panicArgs := make(map[*ast.CallExpr]bool)
	var loopDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init != nil {
					ast.Inspect(n.Init, walk)
				}
				if n.Cond != nil {
					ast.Inspect(n.Cond, walk)
				}
				if n.Post != nil {
					ast.Inspect(n.Post, walk)
				}
				ast.Inspect(n.Body, walk)
			case *ast.RangeStmt:
				if n.X != nil {
					// The ranged expression is evaluated once, outside
					// the loop.
					loopDepth--
					ast.Inspect(n.X, walk)
					loopDepth++
				}
				ast.Inspect(n.Body, walk)
			}
			loopDepth--
			return false
		case *ast.CallExpr:
			if isBuiltinCall(pass, n, "panic") && len(n.Args) == 1 {
				if inner, ok := analysis.Unparen(n.Args[0]).(*ast.CallExpr); ok {
					panicArgs[inner] = true
				}
			}
			checkCall(pass, n, key, tier, strict, loopDepth, panicArgs)
			if isBuiltinCall(pass, n, "make") && loopDepth > 0 {
				pass.Reportf(n.Pos(),
					"make inside a loop on the %s %s allocates per iteration; hoist it or use a pooled/reused buffer, or annotate //eip:alloc-ok <why>",
					tier, key)
			}
		case *ast.BinaryExpr:
			if loopDepth > 0 && n.Op.String() == "+" && isStringType(pass, n) {
				pass.Reportf(n.Pos(),
					"string concatenation inside a loop on the %s %s; use append on a byte slice or strings.Builder, or annotate //eip:alloc-ok <why>",
					tier, key)
			}
		case *ast.AssignStmt:
			if loopDepth > 0 && n.Tok.String() == "+=" && len(n.Lhs) == 1 && isStringType(pass, n.Lhs[0]) {
				pass.Reportf(n.Pos(),
					"string concatenation inside a loop on the %s %s; use append on a byte slice or strings.Builder, or annotate //eip:alloc-ok <why>",
					tier, key)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, key, tier string, strict bool, loopDepth int, panicArgs map[*ast.CallExpr]bool) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if panicArgs[call] {
		return
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if fmtAllocFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"fmt.%s on the %s %s allocates and reflects; use strconv/append formatting, or annotate //eip:alloc-ok <why>",
				fn.Name(), tier, key)
		}
	case "encoding/json":
		if strict || loopDepth > 0 {
			where := "on the zero-alloc path"
			if !strict {
				where = "inside a loop on the warm handler"
			}
			pass.Reportf(call.Pos(),
				"encoding/json %s %s runs reflection per record; use the append-style encoders (DESIGN.md §7), or annotate //eip:alloc-ok <why>",
				where, key)
		}
	}
}

func isBuiltinCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := analysis.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func isStringType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
