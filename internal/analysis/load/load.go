// Package load turns package patterns into parsed, type-checked
// packages for the analysis suite, using only the standard library.
//
// Discovery and dependency resolution are delegated to `go list -e
// -deps -export -json`, which compiles (or reuses from the build cache)
// export data for every dependency. Only the packages named by the
// patterns are parsed and type-checked from source; every import is
// satisfied from compiler export data through go/importer's gc support,
// so loading the whole repository costs roughly one `go build ./...`
// that is usually already cached.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	ModulePath string
	ModuleDir  string
}

type listModule struct {
	Path string
	Dir  string
}

type listError struct {
	Err string
}

type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *listModule
	Error      *listError
}

// Load lists patterns relative to dir and returns the matched packages
// parsed and type-checked. Test files are not part of `go list`'s
// GoFiles and are therefore never loaded here.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,Export,DepOnly,Standard,Module,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	index := make(map[string]*listPkg)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("go list output: %w", err)
		}
		index[p.ImportPath] = p
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, index, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func check(fset *token.FileSet, index map[string]*listPkg, t *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("package %s: %w", t.ImportPath, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := t.ImportMap[path]; ok && mapped != "" {
			path = mapped
		}
		lp := index[path]
		if lp == nil || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q (imported by %s)", path, t.ImportPath)
		}
		return os.Open(lp.Export)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("package %s: %w", t.ImportPath, err)
	}
	out := &Package{
		ImportPath: t.ImportPath,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	if t.Module != nil {
		out.ModulePath = t.Module.Path
		out.ModuleDir = t.Module.Dir
	}
	return out, nil
}
