// Package loghygienetest is the golden fixture for the loghygiene
// analyzer: no unstructured printing, snake_case constant slog keys.
package loghygienetest

import (
	"context"
	"fmt"
	"log"
	"log/slog"
)

const keyRequestID = "request_id"

func serveOnce(logger *slog.Logger, n int) {
	log.Printf("served %d", n) // want `log\.Printf bypasses the structured slog logger`
	fmt.Println("served", n)   // want `fmt\.Println bypasses the structured slog logger`

	logger.Info("served", keyRequestID, n)
	logger.Info("served", "batch_size", n)
	logger.Info("served", slog.Int("queue_depth", n))

	logger.Info("served", "requestCount", n)     // want `"requestCount" is not snake_case`
	logger.Info("served", dynamicKey(), n)       // want `must be a string constant`
	logger.Info("served", slog.Int("badKey", n)) // want `"badKey" is not snake_case`
	logger.Log(context.Background(), slog.LevelWarn, "served",
		"Mixed_Case", n) // want `"Mixed_Case" is not snake_case`
}

func dynamicKey() string { return "computed" }

// forwarded attrs arrive as a spread slice; their keys are the caller's
// responsibility, not this call site's.
func forward(logger *slog.Logger, attrs []any) {
	logger.Log(context.Background(), slog.LevelInfo, "forwarded", attrs...)
}

// banner runs before the logger exists; the escape hatch documents it.
func banner(version string) {
	//eip:log-ok fixture: startup banner predates logger construction
	fmt.Println("entropyip", version)
}
