// Package depbad is the forbidden dependency in the layers fixture.
package depbad

// Marker anchors the import.
func Marker() {}
