// Package app is the constrained package in the layers fixture: the
// test's rule set denies depbad outright and allow-lists only depgood
// from the fixture subtree.
package app

import (
	"entropyip/internal/analysis/testdata/src/layers/depbad" // want `must not import .*depbad \(rule "no-depbad"` `\(rule "deps-allowlist"\)`
	"entropyip/internal/analysis/testdata/src/layers/depgood"
)

// Use anchors both imports.
func Use() {
	depbad.Marker()
	depgood.Marker()
}
