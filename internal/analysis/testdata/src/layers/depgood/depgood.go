// Package depgood is an allow-listed dependency in the layers fixture.
package depgood

// Marker anchors the import.
func Marker() {}
