// Package hotpathtest is the golden fixture for the hotpath analyzer.
// The test config declares AppendRecord a zero-alloc entry point and
// Handle a warm handler.
package hotpathtest

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// AppendRecord is the declared entry point; the strict contract follows
// every intra-package call made from it.
func AppendRecord(dst []byte, v int) []byte {
	dst = strconv.AppendInt(dst, int64(v), 10)
	dst = append(dst, mustEncode(v)...)
	return helper(dst, v)
}

func helper(dst []byte, v int) []byte {
	s := fmt.Sprintf("%04d", v) // want `fmt\.Sprintf on the zero-alloc path helper`
	for i := 0; i < 2; i++ {
		scratch := make([]byte, 8) // want `make inside a loop on the zero-alloc path helper`
		_ = scratch
	}
	return append(dst, s...)
}

func mustEncode(v int) []byte {
	b, err := json.Marshal(v) // want `encoding/json on the zero-alloc path mustEncode`
	if err != nil {
		// A fmt call consumed directly by panic is terminal, not steady
		// state, and stays legal even on the strict tier.
		panic(fmt.Sprintf("encode %d: %v", v, err))
	}
	return b
}

// Handle is the declared warm handler; only its own body is checked.
func Handle(lines [][]byte) string {
	out := ""
	dec := json.NewDecoder(nil)
	_ = dec // a per-request decoder outside any loop is legal here
	for _, line := range lines {
		var v struct{ A string }
		if err := json.Unmarshal(line, &v); err != nil { // want `encoding/json inside a loop on the warm handler Handle`
			continue
		}
		out += v.A // want `string concatenation inside a loop on the warm handler Handle`
	}
	summarize(lines)
	return fmt.Sprint(len(lines), out) // want `fmt\.Sprint on the warm handler Handle`
}

// summarize is called from Handle but is neither an entry point nor a
// warm handler: the warm tier does not follow calls.
func summarize(lines [][]byte) string {
	return fmt.Sprintf("%d lines", len(lines))
}

// HandleJustified shows the escape hatch on a warm handler.
func HandleJustified(n int) string {
	return fmt.Sprintf("%d", n) //eip:alloc-ok fixture: one-off summary line per request
}
