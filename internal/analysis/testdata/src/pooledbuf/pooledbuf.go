// Package pooledbuftest is the golden fixture for the pooledbuf
// analyzer: sync.Pool Get/Put balance and escaping pooled values.
package pooledbuftest

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

type server struct {
	pool sync.Pool
	held *[]byte
	ch   chan *[]byte
}

// balanced gets and puts back, via defer.
func balanced() int {
	buf := bufPool.Get().(*[]byte)
	defer bufPool.Put(buf)
	return cap(*buf)
}

// wrapper returns the pooled value: ownership moves to the caller, no
// local Put required.
func wrapper() *[]byte {
	return bufPool.Get().(*[]byte)
}

// leak neither puts the value back nor returns it.
func leak() {
	buf := bufPool.Get().(*[]byte) // want `bufPool\.Get has no matching bufPool\.Put`
	_ = buf
}

// retain parks the pooled value in a field, outliving the function.
func (s *server) retain() {
	buf := s.pool.Get().(*[]byte)
	defer s.pool.Put(buf)
	s.held = buf // want `retained through a field assignment`
}

// send ships the pooled value over a channel.
func (s *server) send() {
	buf := s.pool.Get().(*[]byte)
	defer s.pool.Put(buf)
	s.ch <- buf // want `sent on a channel`
}

// handoff documents an ownership transfer the analyzer cannot see.
func handoff(sink func(*[]byte)) {
	buf := bufPool.Get().(*[]byte) //eip:pool-ok fixture: sink puts the buffer back after use
	sink(buf)
}
