// Package detrandtest is the golden fixture for the detrand analyzer.
// It is a buildable package; the `// want` comments are the expected
// diagnostics (see internal/analysis/analysistest).
package detrandtest

import (
	"math/rand"
	"sort"
	"time"
)

// Keys leaks map iteration order into its result.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

// SortedKeys is the blessed append-then-sort shape: the ranged body only
// appends, and the slice is sorted before use.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Draw uses the global random source.
func Draw() int {
	return rand.Intn(10) // want `math/rand\.Intn draws from the global random source`
}

// DrawSeeded threads an explicit source; methods on *rand.Rand are fine.
func DrawSeeded(r *rand.Rand) int {
	return r.Intn(10)
}

// NewSeeded may construct generators; only draws from the global source
// are flagged.
func NewSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Stamp reads the wall clock.
func Stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// StampJustified carries an annotate-above escape hatch.
func StampJustified() time.Time {
	//eip:nondeterministic-ok fixture: timestamps here never reach the model
	return time.Now()
}

// StampTrailing carries a trailing escape hatch on the flagged line.
func StampTrailing() time.Time {
	return time.Now() //eip:nondeterministic-ok fixture: advisory timestamp only
}

// StampBare shows that a directive without a justification suppresses
// nothing and is itself reported.
func StampBare() time.Time {
	return time.Now() /* want `requires a justification` `time\.Now reads the wall clock` */ //eip:nondeterministic-ok
}

// MaxValue is order-dependent in its intermediate state only; the
// analyzer cannot prove that, so the justified directive documents it.
func MaxValue(m map[string]int) int {
	max := 0
	//eip:nondeterministic-ok integer max over the values is order-independent
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}
