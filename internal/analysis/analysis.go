// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface this repo needs: an Analyzer
// runs over one type-checked package at a time and reports position-
// anchored diagnostics. The build environment pins the module to the
// standard library (see DESIGN.md "Static analysis"), so instead of
// importing x/tools the repo carries this ~200-line core plus a
// go-list-based loader (internal/analysis/load) and a `// want`-comment
// test harness (internal/analysis/analysistest). The analyzer packages
// themselves (detrand, hotpath, layers, pooledbuf, loghygiene) are
// written against this API exactly as they would be against the real
// one, so a future switch to x/tools is mechanical.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test output.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// SuppressKey, when non-empty, names the //eip: directive that
	// suppresses this analyzer's diagnostics on the annotated line (for
	// example "nondeterministic-ok"). The directive requires a non-empty
	// justification; a bare directive suppresses nothing and is itself
	// reported.
	SuppressKey string

	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ModulePath and ModuleDir locate the module the package belongs to
	// ("" when unknown, e.g. ad-hoc file sets in tests).
	ModulePath string
	ModuleDir  string

	// Report receives each diagnostic. The framework wraps it with
	// directive-based suppression before the analyzer runs.
	Report func(Diagnostic)

	suppressions map[string]map[int]*Directive // filename -> line -> directive
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Directive is one parsed //eip:<key> comment.
type Directive struct {
	Pos           token.Pos
	Key           string // e.g. "nondeterministic-ok"
	Justification string // text after the key; required for suppression
}

const directivePrefix = "//eip:"

// parseDirectives extracts //eip: directives from a file. A directive
// suppresses matching diagnostics on its own line (trailing-comment
// style) and on the line directly below it (annotate-above style).
func parseDirectives(fset *token.FileSet, f *ast.File) []*Directive {
	var out []*Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, directivePrefix)
			key := rest
			just := ""
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				key, just = rest[:i], strings.TrimSpace(rest[i+1:])
			}
			out = append(out, &Directive{
				Pos:           c.Pos(),
				Key:           key,
				Justification: just,
			})
		}
	}
	return out
}

// prepare builds the per-file suppression index and wraps report with
// suppression and directive-hygiene checks.
func (p *Pass) prepare(report func(Diagnostic)) {
	p.suppressions = make(map[string]map[int]*Directive)
	key := p.Analyzer.SuppressKey
	for _, f := range p.Files {
		for _, d := range parseDirectives(p.Fset, f) {
			if d.Key != key || key == "" {
				continue
			}
			posn := p.Fset.Position(d.Pos)
			m := p.suppressions[posn.Filename]
			if m == nil {
				m = make(map[int]*Directive)
				p.suppressions[posn.Filename] = m
			}
			m[posn.Line] = d
			if d.Justification == "" {
				report(Diagnostic{
					Pos: d.Pos,
					Message: fmt.Sprintf(
						"//eip:%s directive requires a justification (//eip:%s <why>)",
						key, key),
				})
			}
		}
	}
	p.Report = func(d Diagnostic) {
		posn := p.Fset.Position(d.Pos)
		if m := p.suppressions[posn.Filename]; m != nil {
			// Same line, or a directive alone on the line above.
			if dir := m[posn.Line]; dir != nil && dir.Justification != "" {
				return
			}
			if dir := m[posn.Line-1]; dir != nil && dir.Justification != "" {
				return
			}
		}
		report(d)
	}
}

// RunAnalyzers applies each analyzer to the package described by tmpl
// (a Pass with every field but Analyzer/Report populated) and returns
// the diagnostics sorted by position.
func RunAnalyzers(tmpl *Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := *tmpl
		pass.Analyzer = a
		name := a.Name
		collect := func(d Diagnostic) {
			d.Message = name + ": " + d.Message
			diags = append(diags, d)
		}
		pass.prepare(collect)
		if err := a.Run(&pass); err != nil {
			return diags, fmt.Errorf("analyzer %s on %s: %w", a.Name, tmpl.Pkg.Path(), err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// IsTestFile reports whether the file's name has the _test.go suffix.
// The suite's invariants target production code: the loader's standalone
// mode never feeds test files, but the go vet -vettool path does, and
// analyzers skip them to match the CI contract the suite replaces.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
