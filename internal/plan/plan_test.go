package plan

import (
	"math"
	"math/rand"
	"testing"

	"entropyip/internal/ip6"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestPlanValidate(t *testing.T) {
	good := &Plan{Name: "g", Fields: []Field{{Name: "p", Start: 0, Width: 8, Gen: Const(0x20010db8)}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Plan{
		{Name: "w0", Fields: []Field{{Start: 0, Width: 0, Gen: Const(1)}}},
		{Name: "w17", Fields: []Field{{Start: 0, Width: 17, Gen: Const(1)}}},
		{Name: "over", Fields: []Field{{Start: 30, Width: 4, Gen: Const(1)}}},
		{Name: "nogen", Fields: []Field{{Start: 0, Width: 4}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %q should fail validation", p.Name)
		}
	}
}

func TestPlanGenerate(t *testing.T) {
	p := &Plan{Name: "test", Fields: []Field{
		{Name: "prefix", Start: 0, Width: 8, Gen: Const(0x20010db8)},
		{Name: "subnet", Start: 8, Width: 8, Gen: Uniform(0, 15)},
		{Name: "iid", Start: 16, Width: 16, Gen: Const(1)},
	}}
	addrs := p.Generate(rng(1), 500)
	if len(addrs) != 500 {
		t.Fatalf("len = %d", len(addrs))
	}
	p32 := ip6.MustParsePrefix("2001:db8::/32")
	for _, a := range addrs {
		if !p32.Contains(a) {
			t.Fatalf("address %v outside the plan's prefix", a)
		}
		if a.Field(16, 16) != 1 {
			t.Fatalf("IID of %v is not ::1", a)
		}
		if a.Field(8, 8) > 15 {
			t.Fatalf("subnet out of range in %v", a)
		}
	}
}

func TestPlanGenerateUnique(t *testing.T) {
	p := &Plan{Name: "small", Fields: []Field{
		{Name: "prefix", Start: 0, Width: 8, Gen: Const(0x20010db8)},
		{Name: "host", Start: 31, Width: 1, Gen: Uniform(0, 7)},
	}}
	got := p.GenerateUnique(rng(2), 100)
	if len(got) != 8 {
		t.Errorf("unique addresses = %d, want 8 (the whole plan space)", len(got))
	}
	set := ip6.NewSet(8)
	for _, a := range got {
		if !set.Add(a) {
			t.Error("duplicate in GenerateUnique")
		}
	}
}

func TestMixtureWeights(t *testing.T) {
	a := &Plan{Name: "a", Fields: []Field{{Name: "x", Start: 0, Width: 8, Gen: Const(0x20010db8)}}}
	b := &Plan{Name: "b", Fields: []Field{{Name: "x", Start: 0, Width: 8, Gen: Const(0x30010db8)}}}
	m := &Mixture{Name: "mix", Components: []Component{{Weight: 0.635, Plan: a}, {Weight: 0.365, Plan: b}}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	addrs := m.Generate(rng(3), 20000)
	countA := 0
	for _, addr := range addrs {
		if addr.Field(0, 8) == 0x20010db8 {
			countA++
		}
	}
	got := float64(countA) / float64(len(addrs))
	if math.Abs(got-0.635) > 0.02 {
		t.Errorf("variant A fraction = %v, want ~0.635", got)
	}
	// Unique generation across a mixture.
	u := m.GenerateUnique(rng(4), 10)
	if len(u) != 2 {
		t.Errorf("unique = %d, want 2 (each variant has one address)", len(u))
	}
}

func TestMixtureValidateErrors(t *testing.T) {
	good := &Plan{Name: "g", Fields: []Field{{Name: "x", Start: 0, Width: 4, Gen: Const(1)}}}
	cases := []*Mixture{
		{Name: "empty"},
		{Name: "zero", Components: []Component{{Weight: 0, Plan: good}}},
		{Name: "nil", Components: []Component{{Weight: 1, Plan: nil}}},
		{Name: "badplan", Components: []Component{{Weight: 1, Plan: &Plan{Name: "bad", Fields: []Field{{Start: 0, Width: 99, Gen: Const(1)}}}}}},
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("mixture %q should fail validation", m.Name)
		}
	}
}

func TestConstAndZero(t *testing.T) {
	if Const(42).Value(rng(1), ip6.Addr{}, 4) != 42 {
		t.Error("Const wrong")
	}
	if Zero().Value(rng(1), ip6.Addr{}, 4) != 0 {
		t.Error("Zero wrong")
	}
}

func TestChoiceDistribution(t *testing.T) {
	g := Choice([]uint64{1, 2, 3}, []float64{0.7, 0.2, 0.1})
	r := rng(5)
	counts := map[uint64]int{}
	for i := 0; i < 30000; i++ {
		counts[g.Value(r, ip6.Addr{}, 4)]++
	}
	if math.Abs(float64(counts[1])/30000-0.7) > 0.02 {
		t.Errorf("P(1) = %v", float64(counts[1])/30000)
	}
	if counts[1]+counts[2]+counts[3] != 30000 {
		t.Error("Choice produced an unexpected value")
	}
	// UniformChoice.
	u := UniformChoice(7, 9)
	c7 := 0
	for i := 0; i < 10000; i++ {
		if u.Value(r, ip6.Addr{}, 4) == 7 {
			c7++
		}
	}
	if math.Abs(float64(c7)/10000-0.5) > 0.03 {
		t.Errorf("UniformChoice P(7) = %v", float64(c7)/10000)
	}
}

func TestChoicePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { Choice(nil, nil) },
		"mismatch": func() { Choice([]uint64{1}, []float64{1, 2}) },
		"negative": func() { Choice([]uint64{1}, []float64{-1}) },
		"zero":     func() { Choice([]uint64{1, 2}, []float64{0, 0}) },
		"eui64":    func() { EUI64() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUniformBounds(t *testing.T) {
	g := Uniform(100, 200)
	r := rng(6)
	for i := 0; i < 2000; i++ {
		v := g.Value(r, ip6.Addr{}, 4)
		if v < 100 || v > 200 {
			t.Fatalf("value %d out of range", v)
		}
	}
	// Swapped bounds are normalized.
	g2 := Uniform(50, 10)
	for i := 0; i < 100; i++ {
		v := g2.Value(r, ip6.Addr{}, 4)
		if v < 10 || v > 50 {
			t.Fatalf("value %d out of swapped range", v)
		}
	}
	// Full 64-bit range does not hang.
	_ = Uniform(0, ^uint64(0)).Value(r, ip6.Addr{}, 16)
}

func TestRandomRespectsWidth(t *testing.T) {
	g := Random()
	r := rng(7)
	for i := 0; i < 1000; i++ {
		if v := g.Value(r, ip6.Addr{}, 2); v > 0xff {
			t.Fatalf("2-nybble random value %x out of range", v)
		}
	}
	_ = g.Value(r, ip6.Addr{}, 16) // full width must not mask
}

func TestSequential(t *testing.T) {
	g := Sequential(5)
	r := rng(8)
	if g.Value(r, ip6.Addr{}, 4) != 5 || g.Value(r, ip6.Addr{}, 4) != 6 {
		t.Error("Sequential should count up")
	}
	// Wraps at the field width.
	g2 := Sequential(0xe)
	if g2.Value(r, ip6.Addr{}, 1) != 0xe || g2.Value(r, ip6.Addr{}, 1) != 0xf || g2.Value(r, ip6.Addr{}, 1) != 0 {
		t.Error("Sequential should wrap at the field width")
	}
}

func TestSLAACPrivacyClearsUBit(t *testing.T) {
	g := SLAACPrivacy()
	r := rng(9)
	for i := 0; i < 1000; i++ {
		iid := g.Value(r, ip6.Addr{}, 16)
		if iid&(1<<57) != 0 {
			t.Fatal("u bit must be cleared in privacy IIDs")
		}
	}
	// Entropy dip check: build addresses and verify the u-bit nybble has
	// lower entropy than its neighbours (the Fig. 6 signature).
	p := &Plan{Name: "priv", Fields: []Field{
		{Name: "net", Start: 0, Width: 16, Gen: Const(0x20010db800000001)},
		{Name: "iid", Start: 16, Width: 16, Gen: SLAACPrivacy()},
	}}
	addrs := p.Generate(r, 5000)
	counts := map[byte]int{}
	for _, a := range addrs {
		counts[a.Nybble(17)]++ // bits 68-72
	}
	if len(counts) > 8 {
		t.Errorf("u-bit nybble takes %d distinct values, want at most 8", len(counts))
	}
}

func TestEUI64Generator(t *testing.T) {
	// OUIs with the u/l bit clear, as real vendor OUIs have.
	g := EUI64(0x001122, 0xa4bbcc)
	r := rng(10)
	p := &Plan{Name: "eui", Fields: []Field{
		{Name: "net", Start: 0, Width: 16, Gen: Const(0x20010db800000001)},
		{Name: "iid", Start: 16, Width: 16, Gen: g},
	}}
	for i := 0; i < 500; i++ {
		a := p.One(r)
		if !ip6.IsEUI64(a) {
			t.Fatalf("address %v is not EUI-64", a)
		}
		if !ip6.IsGloballyUniqueEUI64(a) {
			t.Fatalf("address %v should have the u bit set", a)
		}
		oui := a.Field(16, 6) &^ (1 << 17) // undo u-bit inversion within the first 24 bits
		if oui != 0x001122 && oui != 0xa4bbcc {
			t.Fatalf("unexpected OUI %06x", oui)
		}
	}
}

func TestEmbeddedIPv4Hex(t *testing.T) {
	g := EmbeddedIPv4Hex(127)
	r := rng(11)
	for i := 0; i < 200; i++ {
		v := g.Value(r, ip6.Addr{}, 8)
		if v>>24 != 127 {
			t.Fatalf("first octet = %d, want 127", v>>24)
		}
		if v > 0xffffffff {
			t.Fatal("embedded IPv4 must fit 32 bits")
		}
	}
}

func TestEmbeddedIPv4Decimal(t *testing.T) {
	g := EmbeddedIPv4Decimal(192)
	r := rng(12)
	p := &Plan{Name: "r4", Fields: []Field{
		{Name: "net", Start: 0, Width: 16, Gen: Const(0x20010db800000001)},
		{Name: "iid", Start: 16, Width: 16, Gen: g},
	}}
	for i := 0; i < 500; i++ {
		a := p.One(r)
		v4, ok := ip6.EmbeddedDecimalIPv4(a)
		if !ok {
			t.Fatalf("address %v does not decode as decimal-embedded IPv4", a)
		}
		if v4>>24 != 192 {
			t.Fatalf("first octet = %d", v4>>24)
		}
	}
}

func TestDecimalAsHexWord(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 7: 7, 33: 0x33, 192: 0x192, 255: 0x255}
	for in, want := range cases {
		if got := decimalAsHexWord(in); got != want {
			t.Errorf("decimalAsHexWord(%d) = %x, want %x", in, got, want)
		}
	}
}

func TestDependentOnField(t *testing.T) {
	// IID depends on the subnet: even subnets get ::1, odd subnets get
	// random IIDs.
	p := &Plan{Name: "dep", Fields: []Field{
		{Name: "net", Start: 0, Width: 8, Gen: Const(0x20010db8)},
		{Name: "subnet", Start: 15, Width: 1, Gen: Uniform(0, 15)},
		{Name: "iid", Start: 16, Width: 16, Gen: DependentOnField(15, 1, func(v uint64) Generator {
			if v%2 == 0 {
				return Const(1)
			}
			return Random()
		})},
	}}
	r := rng(13)
	for i := 0; i < 1000; i++ {
		a := p.One(r)
		if a.Field(15, 1)%2 == 0 && a.Field(16, 16) != 1 {
			t.Fatalf("even subnet must have IID ::1: %v", a)
		}
	}
}

func TestFuncGenerator(t *testing.T) {
	g := Func(func(_ *rand.Rand, partial ip6.Addr, _ int) uint64 {
		return partial.Field(0, 4) + 1
	})
	p := &Plan{Name: "f", Fields: []Field{
		{Name: "a", Start: 0, Width: 4, Gen: Const(7)},
		{Name: "b", Start: 4, Width: 4, Gen: g},
	}}
	a := p.One(rng(14))
	if a.Field(4, 4) != 8 {
		t.Errorf("Func generator did not see the partial address: %v", a)
	}
}

func BenchmarkMixtureGenerate(b *testing.B) {
	p := &Plan{Name: "bench", Fields: []Field{
		{Name: "net", Start: 0, Width: 8, Gen: Const(0x20010db8)},
		{Name: "subnet", Start: 8, Width: 8, Gen: Uniform(0, 1<<20)},
		{Name: "iid", Start: 16, Width: 16, Gen: SLAACPrivacy()},
	}}
	m := &Mixture{Name: "b", Components: []Component{{Weight: 1, Plan: p}}}
	r := rng(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate(r, 1000)
	}
}
