// Package plan provides a small composable language for describing IPv6
// addressing plans — the ground truth that the paper's real-world datasets
// embody and that we must synthesize in their place (see DESIGN.md,
// "Substitutions"). A Plan is an ordered list of fields, each covering a
// nybble range of the address and drawing its value from a generator; a
// Mixture combines several plans with weights (the "addressing variants"
// the paper discovers inside real operators, e.g. S1's four variants).
//
// Plans serve two roles: they synthesize datasets for training and they
// define the target universes that the scanning experiments probe.
package plan

import (
	"fmt"
	"math/rand"
	"sort"

	"entropyip/internal/ip6"
)

// Generator produces the value of one field. Generators may inspect the
// partially built address (fields are applied in order), which is how
// cross-field couplings such as "this IID style only appears under these
// subnets" are expressed.
type Generator interface {
	// Value returns the field value for the address built so far. width is
	// the field width in nybbles; the value must fit in it.
	Value(rng *rand.Rand, partial ip6.Addr, width int) uint64
}

// Field is one nybble-aligned region of the address with its generator.
type Field struct {
	// Name documents the field ("subnet", "iid", ...).
	Name string
	// Start and Width give the nybble range [Start, Start+Width).
	Start, Width int
	// Gen draws the field's value.
	Gen Generator
}

// Plan is an ordered list of fields describing one addressing variant.
// Fields are applied in order; nybbles not covered by any field are zero.
type Plan struct {
	// Name identifies the plan (e.g. "s1-embedded-v4").
	Name string
	// Fields in application order.
	Fields []Field
}

// Validate checks that fields are within the address, non-overlapping in
// nybble coverage is NOT required (later fields may deliberately overwrite
// earlier ones), but each field must fit in a uint64.
func (p *Plan) Validate() error {
	for _, f := range p.Fields {
		if f.Width < 1 || f.Width > 16 || f.Start < 0 || f.Start+f.Width > ip6.NybbleCount {
			return fmt.Errorf("plan %q: field %q has invalid range [%d,%d)", p.Name, f.Name, f.Start, f.Start+f.Width)
		}
		if f.Gen == nil {
			return fmt.Errorf("plan %q: field %q has no generator", p.Name, f.Name)
		}
	}
	return nil
}

// One draws a single address from the plan.
func (p *Plan) One(rng *rand.Rand) ip6.Addr {
	var a ip6.Addr
	for _, f := range p.Fields {
		v := f.Gen.Value(rng, a, f.Width)
		a = a.SetField(f.Start, f.Width, v)
	}
	return a
}

// Generate draws n addresses (duplicates possible, as in real traffic).
func (p *Plan) Generate(rng *rand.Rand, n int) []ip6.Addr {
	out := make([]ip6.Addr, n)
	for i := range out {
		out[i] = p.One(rng)
	}
	return out
}

// GenerateUnique draws addresses until n unique ones have been produced or
// the attempt budget (n×20) is exhausted, whichever comes first.
func (p *Plan) GenerateUnique(rng *rand.Rand, n int) []ip6.Addr {
	seen := ip6.NewSet(n)
	out := make([]ip6.Addr, 0, n)
	for attempts := 0; len(out) < n && attempts < n*20; attempts++ {
		a := p.One(rng)
		if seen.Add(a) {
			out = append(out, a)
		}
	}
	return out
}

// Component is one weighted variant of a mixture.
type Component struct {
	Weight float64
	Plan   *Plan
}

// Mixture is a weighted combination of addressing variants.
type Mixture struct {
	Name       string
	Components []Component
}

// Validate checks the mixture and all of its component plans.
func (m *Mixture) Validate() error {
	if len(m.Components) == 0 {
		return fmt.Errorf("mixture %q has no components", m.Name)
	}
	total := 0.0
	for _, c := range m.Components {
		if c.Weight <= 0 {
			return fmt.Errorf("mixture %q: non-positive weight", m.Name)
		}
		if c.Plan == nil {
			return fmt.Errorf("mixture %q: nil plan", m.Name)
		}
		if err := c.Plan.Validate(); err != nil {
			return err
		}
		total += c.Weight
	}
	if total <= 0 {
		return fmt.Errorf("mixture %q: zero total weight", m.Name)
	}
	return nil
}

// One draws a single address: first a variant by weight, then an address
// from it.
func (m *Mixture) One(rng *rand.Rand) ip6.Addr {
	total := 0.0
	for _, c := range m.Components {
		total += c.Weight
	}
	x := rng.Float64() * total
	for _, c := range m.Components {
		x -= c.Weight
		if x < 0 {
			return c.Plan.One(rng)
		}
	}
	return m.Components[len(m.Components)-1].Plan.One(rng)
}

// Generate draws n addresses from the mixture (duplicates possible).
func (m *Mixture) Generate(rng *rand.Rand, n int) []ip6.Addr {
	out := make([]ip6.Addr, n)
	for i := range out {
		out[i] = m.One(rng)
	}
	return out
}

// GenerateUnique draws until n unique addresses are produced or the attempt
// budget (n×20) is exhausted.
func (m *Mixture) GenerateUnique(rng *rand.Rand, n int) []ip6.Addr {
	seen := ip6.NewSet(n)
	out := make([]ip6.Addr, 0, n)
	for attempts := 0; len(out) < n && attempts < n*20; attempts++ {
		a := m.One(rng)
		if seen.Add(a) {
			out = append(out, a)
		}
	}
	return out
}

// ---- Generators ----

// constGen returns a fixed value.
type constGen uint64

func (c constGen) Value(*rand.Rand, ip6.Addr, int) uint64 { return uint64(c) }

// Const returns a generator that always produces v.
func Const(v uint64) Generator { return constGen(v) }

// Zero returns a generator producing 0 (useful to overwrite regions).
func Zero() Generator { return constGen(0) }

// weightedGen draws from a fixed set of values with weights.
type weightedGen struct {
	values  []uint64
	cum     []float64
	totalWt float64
}

// Choice returns a generator that picks among the given values with the
// given weights (weights need not sum to one). It panics on mismatched or
// empty inputs.
func Choice(values []uint64, weights []float64) Generator {
	if len(values) == 0 || len(values) != len(weights) {
		panic("plan: Choice needs matching non-empty values and weights")
	}
	g := &weightedGen{values: append([]uint64(nil), values...)}
	cum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("plan: Choice weight must be non-negative")
		}
		cum += w
		g.cum = append(g.cum, cum)
	}
	if cum <= 0 {
		panic("plan: Choice needs a positive total weight")
	}
	g.totalWt = cum
	return g
}

// UniformChoice picks uniformly among the given values.
func UniformChoice(values ...uint64) Generator {
	w := make([]float64, len(values))
	for i := range w {
		w[i] = 1
	}
	return Choice(values, w)
}

func (g *weightedGen) Value(rng *rand.Rand, _ ip6.Addr, _ int) uint64 {
	x := rng.Float64() * g.totalWt
	i := sort.SearchFloat64s(g.cum, x)
	if i >= len(g.values) {
		i = len(g.values) - 1
	}
	return g.values[i]
}

// uniformGen draws uniformly from [lo, hi].
type uniformGen struct{ lo, hi uint64 }

// Uniform returns a generator drawing uniformly from the inclusive range
// [lo, hi].
func Uniform(lo, hi uint64) Generator {
	if lo > hi {
		lo, hi = hi, lo
	}
	return uniformGen{lo: lo, hi: hi}
}

func (g uniformGen) Value(rng *rand.Rand, _ ip6.Addr, _ int) uint64 {
	span := g.hi - g.lo
	if span == ^uint64(0) {
		return rng.Uint64()
	}
	n := span + 1
	for {
		x := rng.Uint64()
		r := x % n
		if x-r <= ^uint64(0)-(n-1) {
			return g.lo + r
		}
	}
}

// randomGen draws uniformly over the field's full width.
type randomGen struct{}

// Random returns a generator drawing uniformly over all values that fit in
// the field (pseudo-random segments such as SLAAC privacy IIDs).
func Random() Generator { return randomGen{} }

func (randomGen) Value(rng *rand.Rand, _ ip6.Addr, width int) uint64 {
	v := rng.Uint64()
	if width >= 16 {
		return v
	}
	return v & (uint64(1)<<(4*uint(width)) - 1)
}

// seqGen produces consecutive values starting from start, wrapping at the
// field width (sequential assignment from a pool, as in some client
// networks).
type seqGen struct {
	next uint64
}

// Sequential returns a generator producing start, start+1, start+2, ...
// (shared state: every address drawn advances the counter).
func Sequential(start uint64) Generator { return &seqGen{next: start} }

func (g *seqGen) Value(_ *rand.Rand, _ ip6.Addr, width int) uint64 {
	v := g.next
	g.next++
	if width < 16 {
		v &= uint64(1)<<(4*uint(width)) - 1
	}
	return v
}

// funcGen wraps an arbitrary function.
type funcGen func(rng *rand.Rand, partial ip6.Addr, width int) uint64

// Func returns a generator backed by the given function; it is the escape
// hatch for couplings that the other combinators cannot express.
func Func(f func(rng *rand.Rand, partial ip6.Addr, width int) uint64) Generator {
	return funcGen(f)
}

func (f funcGen) Value(rng *rand.Rand, partial ip6.Addr, width int) uint64 {
	return f(rng, partial, width)
}

// SLAACPrivacy returns a generator for pseudo-random interface identifiers
// as produced by RFC 4941 privacy extensions: 64 random bits with the
// universal/local ("u") bit forced to zero. The forced bit is what produces
// the paper's characteristic entropy dip at bits 68-72 (Fig. 6).
func SLAACPrivacy() Generator {
	return Func(func(rng *rand.Rand, _ ip6.Addr, width int) uint64 {
		v := rng.Uint64()
		if width >= 16 {
			// Clear the u bit: bit 6 of the first IID byte, i.e. bit 57 of
			// the 64-bit IID value counting from the most significant.
			return v &^ (uint64(1) << 57)
		}
		return v & (uint64(1)<<(4*uint(width)) - 1)
	})
}

// EUI64 returns a generator for Modified EUI-64 interface identifiers
// derived from MAC addresses with one of the given 24-bit OUIs (vendor
// prefixes): OUI || ff:fe || random NIC bits, with the u bit inverted.
func EUI64(ouis ...uint32) Generator {
	if len(ouis) == 0 {
		panic("plan: EUI64 needs at least one OUI")
	}
	return Func(func(rng *rand.Rand, _ ip6.Addr, _ int) uint64 {
		oui := uint64(ouis[rng.Intn(len(ouis))]) & 0xffffff
		nic := rng.Uint64() & 0xffffff
		iid := oui<<40 | 0xfffe<<24 | nic
		// Modified EUI-64 inverts the u bit (bit 57 from the MSB of the
		// IID), marking globally unique MACs.
		return iid ^ (uint64(1) << 57)
	})
}

// EmbeddedIPv4Hex returns a generator that packs a random IPv4 address from
// the given /8-style pool (first octet fixed, rest random) into the low 32
// bits of the field in hexadecimal form — the dual-stack aliasing pattern
// the paper finds in S1.
func EmbeddedIPv4Hex(firstOctet byte) Generator {
	return Func(func(rng *rand.Rand, _ ip6.Addr, _ int) uint64 {
		v4 := uint64(firstOctet)<<24 | uint64(rng.Uint32()&0x00ffffff)
		return v4
	})
}

// EmbeddedIPv4Decimal returns a generator that writes a random IPv4 address
// as base-10 octets across the four 16-bit words of the IID (the R4
// pattern: ...:192:0:2:33).
func EmbeddedIPv4Decimal(firstOctet byte) Generator {
	return EmbeddedIPv4DecimalPool(uint32(firstOctet)<<24, 24)
}

// EmbeddedIPv4DecimalPool is like EmbeddedIPv4Decimal but draws the IPv4
// address from the pool base | random(2^hostBits), modelling an operator
// whose router loopbacks come from one internal block.
func EmbeddedIPv4DecimalPool(base uint32, hostBits int) Generator {
	if hostBits < 0 || hostBits > 32 {
		panic("plan: EmbeddedIPv4DecimalPool hostBits out of range")
	}
	mask := uint32(0)
	if hostBits > 0 {
		mask = uint32(1)<<uint(hostBits) - 1
	}
	return Func(func(rng *rand.Rand, _ ip6.Addr, _ int) uint64 {
		v4 := base&^mask | rng.Uint32()&mask
		var iid uint64
		for shift := 24; shift >= 0; shift -= 8 {
			iid = iid<<16 | decimalAsHexWord(uint64(v4>>uint(shift)&0xff))
		}
		return iid
	})
}

// decimalAsHexWord writes the decimal digits of v (0-255) as a hexadecimal
// word, e.g. 192 -> 0x0192.
func decimalAsHexWord(v uint64) uint64 {
	var w uint64
	shift := 0
	if v == 0 {
		return 0
	}
	for v > 0 {
		w |= (v % 10) << uint(shift)
		v /= 10
		shift += 4
	}
	return w
}

// DependentOnField returns a generator whose output is chosen by inspecting
// an earlier field of the partially built address: chooser receives that
// field's value and must return the generator to delegate to. It expresses
// plans where, e.g., the IID style depends on the subnet.
func DependentOnField(start, width int, chooser func(value uint64) Generator) Generator {
	return Func(func(rng *rand.Rand, partial ip6.Addr, w int) uint64 {
		g := chooser(partial.Field(start, width))
		return g.Value(rng, partial, w)
	})
}
