package scan

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"entropyip/internal/ip6"
)

// The UDP prober/responder pair simulates ICMPv6 echo scanning over real
// sockets on the loopback interface: the responder stands in for the
// target network (it knows the ground-truth universe and answers probes
// only for pingable addresses), and the prober sends one datagram per
// candidate and waits for a reply with a deadline and retries. This
// exercises a genuine network code path — sockets, timeouts, packet loss
// handling, concurrent probing — without sending a single packet beyond
// the loopback interface.

// probeMagic distinguishes probe datagrams from stray traffic.
var probeMagic = [4]byte{'e', 'i', 'p', '1'}

// Responder answers UDP probe datagrams for the active addresses of a
// universe. Start it with ListenAndServe and stop it by closing it or
// cancelling the context.
type Responder struct {
	Universe *Universe
	// DropRate silently ignores this fraction of valid probes (simulated
	// loss); retries at the prober usually recover them.
	DropRate float64

	mu     sync.Mutex
	conn   *net.UDPConn
	closed bool
	drop   func() bool
}

// Start binds the responder to an ephemeral UDP port on the loopback
// interface and begins serving in a background goroutine. It returns the
// bound address for probers to target.
func (r *Responder) Start(ctx context.Context) (*net.UDPAddr, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv6loopback, Port: 0})
	if err != nil {
		// Fall back to IPv4 loopback for environments without ::1.
		conn, err = net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			return nil, fmt.Errorf("scan: responder listen: %w", err)
		}
	}
	r.mu.Lock()
	r.conn = conn
	r.mu.Unlock()
	go r.serve(ctx, conn)
	return conn.LocalAddr().(*net.UDPAddr), nil
}

// Close shuts the responder down.
func (r *Responder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.conn == nil {
		return nil
	}
	r.closed = true
	return r.conn.Close()
}

func (r *Responder) serve(ctx context.Context, conn *net.UDPConn) {
	defer r.Close()
	buf := make([]byte, 64)
	var lossCounter int
	for {
		if ctx.Err() != nil {
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		n, peer, err := conn.ReadFromUDP(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return // closed or fatal
		}
		if n != len(probeMagic)+16 {
			continue
		}
		if [4]byte(buf[:4]) != probeMagic {
			continue
		}
		addr, err := ip6.AddrFromBytes(buf[4 : 4+16])
		if err != nil {
			continue
		}
		if !r.Universe.Pingable(addr) {
			continue // unreachable hosts stay silent, like real scanning
		}
		if r.DropRate > 0 {
			// Deterministic but interleaved drop pattern (61 is coprime
			// with 100, so drops spread evenly rather than clustering).
			lossCounter++
			if float64(lossCounter*61%100) < r.DropRate*100 {
				continue
			}
		}
		reply := append(append([]byte{}, probeMagic[:]...), buf[4:4+16]...)
		_, _ = conn.WriteToUDP(reply, peer)
	}
}

// UDPProber probes candidates by sending them to a Responder over UDP.
type UDPProber struct {
	// Target is the responder's address.
	Target *net.UDPAddr
	// Timeout is the per-attempt reply deadline (default 50ms).
	Timeout time.Duration
	// Retries is the number of additional attempts after a timeout
	// (default 1).
	Retries int
}

func (p *UDPProber) timeout() time.Duration {
	if p.Timeout <= 0 {
		return 50 * time.Millisecond
	}
	return p.Timeout
}

func (p *UDPProber) retries() int {
	if p.Retries < 0 {
		return 0
	}
	if p.Retries == 0 {
		return 1
	}
	return p.Retries
}

// Probe implements Prober. A candidate whose probe receives a matching
// reply within the deadline (after retries) is reported as Ping-positive;
// silence means a miss, exactly as with real echo scanning.
func (p *UDPProber) Probe(ctx context.Context, addr ip6.Addr) (Outcome, error) {
	if p.Target == nil {
		return Outcome{}, fmt.Errorf("scan: UDPProber has no target")
	}
	conn, err := net.DialUDP("udp", nil, p.Target)
	if err != nil {
		return Outcome{}, fmt.Errorf("scan: dial responder: %w", err)
	}
	defer conn.Close()

	payload := append(append([]byte{}, probeMagic[:]...), addrBytes(addr)...)
	buf := make([]byte, 64)
	attempts := 1 + p.retries()
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return Outcome{}, err
		}
		if _, err := conn.Write(payload); err != nil {
			return Outcome{}, fmt.Errorf("scan: send probe: %w", err)
		}
		deadline := time.Now().Add(p.timeout())
		if ctxDeadline, ok := ctx.Deadline(); ok && ctxDeadline.Before(deadline) {
			deadline = ctxDeadline
		}
		_ = conn.SetReadDeadline(deadline)
		n, err := conn.Read(buf)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue // retry or give up: host did not answer
			}
			return Outcome{}, fmt.Errorf("scan: read reply: %w", err)
		}
		if n == len(payload) && [4]byte(buf[:4]) == probeMagic && bytes.Equal(buf[4:4+16], addrBytes(addr)) {
			return Outcome{Ping: true}, nil
		}
	}
	return Outcome{Ping: false}, nil
}

func addrBytes(a ip6.Addr) []byte {
	b := a.Bytes()
	return b[:]
}
