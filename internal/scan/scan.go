package scan

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"entropyip/internal/ip6"
)

// Config controls a scanning campaign.
type Config struct {
	// Workers is the number of concurrent probing goroutines (default:
	// GOMAXPROCS, minimum 1).
	Workers int
	// TrainingPrefixes, if set, is used to decide which hit /64s count as
	// "new" — prefixes not seen in the training data (the paper's last
	// column of Table 4).
	TrainingPrefixes *ip6.PrefixSet
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Result summarizes a scanning campaign, with the same accounting as the
// paper's Table 4.
type Result struct {
	// Candidates is the number of candidates probed.
	Candidates int
	// TestSet is the number of candidates found in the held-out test set.
	TestSet int
	// Ping is the number of candidates that answered echo probes.
	Ping int
	// RDNS is the number of candidates with reverse DNS records.
	RDNS int
	// Overall is the number of candidates that passed at least one test.
	Overall int
	// NewPrefixes64 is the number of distinct /64 prefixes among positive
	// candidates that were not present in the training data.
	NewPrefixes64 int
	// Hits holds the positive candidate addresses.
	Hits []ip6.Addr
	// Errors counts probe errors (timeouts, socket failures).
	Errors int
}

// SuccessRate returns Overall divided by Candidates.
func (r Result) SuccessRate() float64 {
	if r.Candidates == 0 {
		return 0
	}
	return float64(r.Overall) / float64(r.Candidates)
}

// String renders the result as a compact one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("candidates=%d testset=%d ping=%d rdns=%d overall=%d (%.2f%%) new/64s=%d errors=%d",
		r.Candidates, r.TestSet, r.Ping, r.RDNS, r.Overall, 100*r.SuccessRate(), r.NewPrefixes64, r.Errors)
}

// Run probes every candidate with the given prober using a worker pool and
// aggregates the outcome. The context cancels the whole campaign.
func Run(ctx context.Context, prober Prober, candidates []ip6.Addr, cfg Config) (Result, error) {
	if prober == nil {
		return Result{}, fmt.Errorf("scan: nil prober")
	}
	type indexed struct {
		addr    ip6.Addr
		outcome Outcome
		err     error
	}
	jobs := make(chan ip6.Addr)
	results := make(chan indexed)
	var wg sync.WaitGroup
	workers := cfg.workers()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for addr := range jobs {
				out, err := prober.Probe(ctx, addr)
				select {
				case results <- indexed{addr: addr, outcome: out, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, a := range candidates {
			select {
			case jobs <- a:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	res := Result{}
	newPrefixes := ip6.NewPrefixSet(0)
	for r := range results {
		res.Candidates++
		if r.err != nil {
			res.Errors++
			continue
		}
		o := r.outcome
		if o.InTestSet {
			res.TestSet++
		}
		if o.Ping {
			res.Ping++
		}
		if o.RDNS {
			res.RDNS++
		}
		if o.Positive() {
			res.Overall++
			res.Hits = append(res.Hits, r.addr)
			p64 := ip6.Prefix64(r.addr)
			if cfg.TrainingPrefixes == nil || !cfg.TrainingPrefixes.Contains(p64) {
				newPrefixes.Add(p64)
			}
		}
	}
	res.NewPrefixes64 = newPrefixes.Len()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// TrainingPrefixSet is a convenience that builds the /64 prefix set of a
// training sample for Config.TrainingPrefixes.
func TrainingPrefixSet(train []ip6.Addr) *ip6.PrefixSet {
	ps := ip6.NewPrefixSet(len(train))
	for _, a := range train {
		ps.Add(ip6.Prefix64(a))
	}
	return ps
}
