package scan

import (
	"context"
	"testing"
	"time"

	"entropyip/internal/ip6"
)

func TestUDPProberAgainstResponder(t *testing.T) {
	u, pop := smallUniverse(40, UniverseConfig{PingFraction: 1, RDNSFraction: 1, Seed: 20})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	responder := &Responder{Universe: u}
	target, err := responder.Start(ctx)
	if err != nil {
		t.Skipf("cannot bind loopback UDP socket: %v", err)
	}
	defer responder.Close()

	prober := &UDPProber{Target: target, Timeout: 100 * time.Millisecond, Retries: 2}
	// Active addresses answer.
	for _, a := range pop[:10] {
		out, err := prober.Probe(ctx, a)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Ping {
			t.Fatalf("active address %v did not answer", a)
		}
	}
	// Inactive addresses stay silent (miss after timeout, no error).
	miss, err := prober.Probe(ctx, ip6.MustParseAddr("2001:db9::1"))
	if err != nil {
		t.Fatal(err)
	}
	if miss.Ping {
		t.Error("inactive address should not answer")
	}
}

func TestUDPScanEndToEnd(t *testing.T) {
	u, pop := smallUniverse(30, UniverseConfig{PingFraction: 1, RDNSFraction: 1, Seed: 21})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	responder := &Responder{Universe: u}
	target, err := responder.Start(ctx)
	if err != nil {
		t.Skipf("cannot bind loopback UDP socket: %v", err)
	}
	defer responder.Close()

	candidates := append([]ip6.Addr{}, pop[:20]...)
	for i := 0; i < 10; i++ {
		candidates = append(candidates, ip6.MustParseAddr("2001:db9::").SetField(28, 4, uint64(i+1)))
	}
	prober := &UDPProber{Target: target, Timeout: 60 * time.Millisecond, Retries: 1}
	res, err := Run(ctx, prober, candidates, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ping != 20 {
		t.Errorf("Ping = %d, want 20 (got %+v)", res.Ping, res)
	}
	if res.Overall != 20 || res.Errors != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestUDPResponderDropsAndRetries(t *testing.T) {
	u, pop := smallUniverse(10, UniverseConfig{PingFraction: 1, RDNSFraction: 1, Seed: 22})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	responder := &Responder{Universe: u, DropRate: 0.5}
	target, err := responder.Start(ctx)
	if err != nil {
		t.Skipf("cannot bind loopback UDP socket: %v", err)
	}
	defer responder.Close()
	// With generous retries, drops are recovered.
	prober := &UDPProber{Target: target, Timeout: 80 * time.Millisecond, Retries: 5}
	answered := 0
	for _, a := range pop {
		out, err := prober.Probe(ctx, a)
		if err != nil {
			t.Fatal(err)
		}
		if out.Ping {
			answered++
		}
	}
	if answered < 8 {
		t.Errorf("only %d/10 answered despite retries", answered)
	}
}

func TestUDPProberErrors(t *testing.T) {
	p := &UDPProber{}
	if _, err := p.Probe(context.Background(), ip6.MustParseAddr("2001:db8::1")); err == nil {
		t.Error("prober without target should error")
	}
}

func TestResponderCloseIdempotent(t *testing.T) {
	u, _ := smallUniverse(1, UniverseConfig{Seed: 23})
	r := &Responder{Universe: u}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := r.Start(ctx); err != nil {
		t.Skipf("cannot bind loopback UDP socket: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal("second Close should be a no-op")
	}
}
