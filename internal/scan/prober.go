package scan

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"entropyip/internal/ip6"
)

// Outcome is the result of probing one candidate address.
type Outcome struct {
	// InTestSet reports whether the candidate is an active address of the
	// universe (membership in the held-out test set, the paper's first
	// column).
	InTestSet bool
	// Ping reports whether the candidate answered an echo probe.
	Ping bool
	// RDNS reports whether the candidate has a reverse DNS record.
	RDNS bool
}

// Positive reports whether any oracle succeeded (the paper's "Overall"
// column counts candidates that passed at least one test).
func (o Outcome) Positive() bool { return o.InTestSet || o.Ping || o.RDNS }

// Prober probes one candidate address against a target network.
type Prober interface {
	Probe(ctx context.Context, addr ip6.Addr) (Outcome, error)
}

// MemProber probes a Universe directly in memory. It can optionally drop a
// fraction of echo responses (transient loss) and inject per-probe latency,
// which is useful to exercise the scanner's concurrency under realistic
// conditions.
type MemProber struct {
	Universe *Universe
	// LossRate is the probability that a ping to a pingable host goes
	// unanswered (false negatives), as the paper acknowledges can happen.
	LossRate float64
	// Latency, if positive, is the simulated per-probe round-trip time.
	Latency time.Duration
	// Seed seeds the loss process.
	Seed int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

// Probe implements Prober.
func (p *MemProber) Probe(ctx context.Context, addr ip6.Addr) (Outcome, error) {
	p.once.Do(func() { p.rng = rand.New(rand.NewSource(p.Seed)) })
	if p.Latency > 0 {
		select {
		case <-time.After(p.Latency):
		case <-ctx.Done():
			return Outcome{}, ctx.Err()
		}
	} else if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	out := Outcome{
		InTestSet: p.Universe.Active(addr),
		RDNS:      p.Universe.HasRDNS(addr),
	}
	if p.Universe.Pingable(addr) {
		lost := false
		if p.LossRate > 0 {
			p.mu.Lock()
			lost = p.rng.Float64() < p.LossRate
			p.mu.Unlock()
		}
		out.Ping = !lost
	}
	return out, nil
}

// PrefixProber evaluates candidate /64 prefixes instead of full addresses:
// a candidate counts as a hit when its /64 holds at least one active host
// (§5.6 of the paper). It reports the hit through the InTestSet field.
type PrefixProber struct {
	Universe *Universe
}

// Probe implements Prober for /64 candidates; the address is truncated to
// its /64 before the lookup.
func (p *PrefixProber) Probe(ctx context.Context, addr ip6.Addr) (Outcome, error) {
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	return Outcome{InTestSet: p.Universe.ActivePrefix64(addr)}, nil
}
