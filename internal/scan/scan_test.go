package scan

import (
	"context"
	"testing"
	"time"

	"entropyip/internal/ip6"
)

// smallUniverse builds a universe of n active addresses ::1, ::2, ... under
// distinct /64s (one host per /64 for the first half, shared /64s after).
func smallUniverse(n int, cfg UniverseConfig) (*Universe, []ip6.Addr) {
	base := ip6.MustParseAddr("2001:db8::")
	pop := make([]ip6.Addr, n)
	for i := range pop {
		a := base.SetField(12, 4, uint64(i/2)) // two hosts per /64
		a = a.SetField(31, 1, uint64(i%2)+1)
		pop[i] = a
	}
	return NewUniverse(pop, cfg), pop
}

func TestUniverseBasics(t *testing.T) {
	u, pop := smallUniverse(100, UniverseConfig{PingFraction: 1, RDNSFraction: 1, Seed: 1})
	if u.Size() != 100 {
		t.Errorf("Size = %d", u.Size())
	}
	if u.Prefixes64() != 50 {
		t.Errorf("Prefixes64 = %d", u.Prefixes64())
	}
	for _, a := range pop {
		if !u.Active(a) || !u.Pingable(a) || !u.HasRDNS(a) || !u.ActivePrefix64(a) {
			t.Fatalf("address %v should be fully active", a)
		}
	}
	outside := ip6.MustParseAddr("2001:db9::1")
	if u.Active(outside) || u.ActivePrefix64(outside) {
		t.Error("outside address should not be active")
	}
}

func TestUniverseFractions(t *testing.T) {
	u, pop := smallUniverse(4000, UniverseConfig{PingFraction: 0.8, RDNSFraction: 0.5, Seed: 2})
	ping, rdns := 0, 0
	for _, a := range pop {
		if u.Pingable(a) {
			ping++
		}
		if u.HasRDNS(a) {
			rdns++
		}
	}
	if f := float64(ping) / 4000; f < 0.75 || f > 0.85 {
		t.Errorf("ping fraction = %v", f)
	}
	if f := float64(rdns) / 4000; f < 0.45 || f > 0.55 {
		t.Errorf("rdns fraction = %v", f)
	}
	// Duplicate population entries are deduplicated.
	u2 := NewUniverse(append(pop, pop...), UniverseConfig{Seed: 3})
	if u2.Size() != 4000 {
		t.Errorf("duplicates should not inflate the universe: %d", u2.Size())
	}
}

func TestMemProberOutcomes(t *testing.T) {
	u, pop := smallUniverse(50, UniverseConfig{PingFraction: 1, RDNSFraction: 1, Seed: 4})
	p := &MemProber{Universe: u}
	ctx := context.Background()
	out, err := p.Probe(ctx, pop[0])
	if err != nil {
		t.Fatal(err)
	}
	if !out.InTestSet || !out.Ping || !out.RDNS || !out.Positive() {
		t.Errorf("outcome = %+v", out)
	}
	miss, err := p.Probe(ctx, ip6.MustParseAddr("2001:db9::1"))
	if err != nil {
		t.Fatal(err)
	}
	if miss.Positive() {
		t.Errorf("miss outcome = %+v", miss)
	}
	// Cancelled context.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.Probe(cancelled, pop[0]); err == nil {
		t.Error("expected context error")
	}
	// Latency path respects cancellation.
	slow := &MemProber{Universe: u, Latency: time.Second}
	start := time.Now()
	if _, err := slow.Probe(cancelled, pop[0]); err == nil {
		t.Error("expected context error on latency path")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("cancelled probe should return promptly")
	}
}

func TestMemProberLoss(t *testing.T) {
	u, pop := smallUniverse(2000, UniverseConfig{PingFraction: 1, RDNSFraction: 0.0001, Seed: 5})
	p := &MemProber{Universe: u, LossRate: 0.5, Seed: 6}
	ctx := context.Background()
	answered := 0
	for _, a := range pop {
		out, err := p.Probe(ctx, a)
		if err != nil {
			t.Fatal(err)
		}
		if out.Ping {
			answered++
		}
	}
	if f := float64(answered) / float64(len(pop)); f < 0.4 || f > 0.6 {
		t.Errorf("answered fraction = %v, want ~0.5", f)
	}
}

func TestPrefixProber(t *testing.T) {
	u, pop := smallUniverse(10, UniverseConfig{Seed: 7})
	p := &PrefixProber{Universe: u}
	ctx := context.Background()
	// Any address inside an active /64 counts, even if the host itself is
	// not active.
	candidate := ip6.Prefix64(pop[0]).Addr().SetField(28, 4, 0xdead)
	out, err := p.Probe(ctx, candidate)
	if err != nil {
		t.Fatal(err)
	}
	if !out.InTestSet {
		t.Error("candidate inside an active /64 should hit")
	}
	out, _ = p.Probe(ctx, ip6.MustParseAddr("2001:db9::1"))
	if out.InTestSet {
		t.Error("candidate outside active /64s should miss")
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := p.Probe(cancelled, pop[0]); err == nil {
		t.Error("expected context error")
	}
}

func TestRunAggregation(t *testing.T) {
	u, pop := smallUniverse(200, UniverseConfig{PingFraction: 1, RDNSFraction: 1, Seed: 8})
	// Candidates: the first 100 actives (in training /64s for the first
	// 50), 100 misses.
	train := pop[:50]
	candidates := append([]ip6.Addr{}, pop[:100]...)
	for i := 0; i < 100; i++ {
		candidates = append(candidates, ip6.MustParseAddr("2001:db9::").SetField(24, 8, uint64(i+1)))
	}
	res, err := Run(context.Background(), &MemProber{Universe: u}, candidates, Config{
		Workers:          4,
		TrainingPrefixes: TrainingPrefixSet(train),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 200 {
		t.Errorf("Candidates = %d", res.Candidates)
	}
	if res.TestSet != 100 || res.Ping != 100 || res.RDNS != 100 || res.Overall != 100 {
		t.Errorf("counts = %+v", res)
	}
	if len(res.Hits) != 100 {
		t.Errorf("hits = %d", len(res.Hits))
	}
	// Hits 0..99 live in /64s 0..49; training covered /64s 0..24 (first 50
	// addresses = two per /64), so 25 new /64s.
	if res.NewPrefixes64 != 25 {
		t.Errorf("NewPrefixes64 = %d, want 25", res.NewPrefixes64)
	}
	if res.SuccessRate() != 0.5 {
		t.Errorf("SuccessRate = %v", res.SuccessRate())
	}
	if res.String() == "" {
		t.Error("String should not be empty")
	}
}

func TestRunWithoutTrainingPrefixes(t *testing.T) {
	u, pop := smallUniverse(20, UniverseConfig{PingFraction: 1, RDNSFraction: 1, Seed: 9})
	res, err := Run(context.Background(), &MemProber{Universe: u}, pop, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewPrefixes64 != 10 {
		t.Errorf("all hit /64s count as new without training prefixes: %d", res.NewPrefixes64)
	}
}

func TestRunNilProberAndEmpty(t *testing.T) {
	if _, err := Run(context.Background(), nil, nil, Config{}); err == nil {
		t.Error("nil prober should error")
	}
	res, err := Run(context.Background(), &MemProber{Universe: NewUniverse(nil, UniverseConfig{})}, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates != 0 || res.SuccessRate() != 0 {
		t.Errorf("empty scan result = %+v", res)
	}
}

func TestRunCancellation(t *testing.T) {
	u, pop := smallUniverse(50, UniverseConfig{Seed: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, &MemProber{Universe: u, Latency: 10 * time.Millisecond}, pop, Config{Workers: 2})
	if err == nil {
		t.Error("cancelled run should report the context error")
	}
}

func TestZeroValueOutcome(t *testing.T) {
	var o Outcome
	if o.Positive() {
		t.Error("zero outcome should not be positive")
	}
}
