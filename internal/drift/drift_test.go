package drift

import (
	"math/rand"
	"reflect"
	"testing"

	"entropyip/internal/core"
	"entropyip/internal/entropy"
	"entropyip/internal/ip6"
	"entropyip/internal/plan"
)

// testPlan builds a simple addressing plan: fixed /32, a weighted subnet
// nybble group, zeros, and a bounded host field.
func testPlan(subnets []uint64, weights []float64) *plan.Plan {
	return &plan.Plan{Name: "test", Fields: []plan.Field{
		{Name: "prefix", Start: 0, Width: 8, Gen: plan.Const(0x20010db8)},
		{Name: "subnet", Start: 8, Width: 4, Gen: plan.Choice(subnets, weights)},
		{Name: "host", Start: 28, Width: 4, Gen: plan.Uniform(1, 0x3ff)},
	}}
}

func trainModel(t *testing.T, p *plan.Plan, n int, seed int64) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, err := core.Build(p.GenerateUnique(rng, n), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestScoreSameDistributionIsLow(t *testing.T) {
	p := testPlan([]uint64{0x0001, 0x0002}, []float64{0.7, 0.3})
	m := trainModel(t, p, 3000, 1)
	window := p.Generate(rand.New(rand.NewSource(99)), 2000)
	rep, err := Score(m, window)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Window != 2000 {
		t.Errorf("window = %d", rep.Window)
	}
	if rep.Score > 0.1 {
		t.Errorf("in-distribution score = %.3f, want <= 0.1\n%s", rep.Score, rep)
	}
	if rep.MeanLogLikelihood >= 0 {
		t.Errorf("mean LL = %v, want negative", rep.MeanLogLikelihood)
	}
}

func TestScoreShiftedDistributionIsHigh(t *testing.T) {
	a := testPlan([]uint64{0x0001, 0x0002}, []float64{0.7, 0.3})
	m := trainModel(t, a, 3000, 1)
	// The operator rolled out new subnets: the live window comes from a
	// disjoint subnet set.
	b := testPlan([]uint64{0x00a1, 0x00a2}, []float64{0.5, 0.5})
	window := b.Generate(rand.New(rand.NewSource(99)), 2000)

	repA, err := Score(m, a.Generate(rand.New(rand.NewSource(5)), 2000))
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Score(m, window)
	if err != nil {
		t.Fatal(err)
	}
	if repB.Score <= repA.Score+0.2 {
		t.Errorf("shifted score %.3f not clearly above in-distribution %.3f", repB.Score, repA.Score)
	}
	if repB.MeanLogLikelihood >= repA.MeanLogLikelihood {
		t.Errorf("shifted mean LL %.2f not below in-distribution %.2f",
			repB.MeanLogLikelihood, repA.MeanLogLikelihood)
	}
	// The shifted segment must carry clamp evidence: subnet values the
	// model never mined.
	anyClamped := false
	for _, s := range repB.Segments {
		if s.Clamped > 0 {
			anyClamped = true
		}
	}
	if !anyClamped {
		t.Error("no segment reports clamped values for a disjoint subnet set")
	}
}

func TestScoreIsDeterministic(t *testing.T) {
	p := testPlan([]uint64{0x0001, 0x0002}, []float64{0.7, 0.3})
	m := trainModel(t, p, 2000, 1)
	window := p.Generate(rand.New(rand.NewSource(3)), 1500)
	r1, err := Score(m, window)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Score(m, window)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("scoring is not deterministic:\n%+v\n%+v", r1, r2)
	}
}

func TestScoreEmptyWindow(t *testing.T) {
	p := testPlan([]uint64{0x0001}, []float64{1})
	m := trainModel(t, p, 1000, 1)
	rep, err := Score(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Window != 0 || rep.Score != 0 {
		t.Errorf("empty window report = %+v", rep)
	}
}

func TestScoreLegacyModelWithoutNybbleCounts(t *testing.T) {
	p := testPlan([]uint64{0x0001, 0x0002}, []float64{0.7, 0.3})
	m := trainModel(t, p, 2000, 1)
	// Simulate a model file from before entropy_counts were persisted.
	m.Profile = &entropy.Profile{N: m.Profile.N, H: m.Profile.H, Raw: m.Profile.Raw}
	rep, err := Score(m, p.Generate(rand.New(rand.NewSource(9)), 1000))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Segments {
		if s.HasNybble {
			t.Fatalf("segment %s claims nybble scores without training counts", s.Label)
		}
	}
	if rep.Score < 0 || rep.Score > 1 {
		t.Errorf("score = %v", rep.Score)
	}
}

func TestScorePrefix64OnlyMasksWindow(t *testing.T) {
	p := testPlan([]uint64{0x0001, 0x0002}, []float64{0.6, 0.4})
	rng := rand.New(rand.NewSource(1))
	m, err := core.Build(p.GenerateUnique(rng, 3000), core.Options{Prefix64Only: true})
	if err != nil {
		t.Fatal(err)
	}
	window := p.Generate(rand.New(rand.NewSource(7)), 1500)
	rep, err := Score(m, window)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Score > 0.1 {
		t.Errorf("prefix64 in-distribution score = %.3f, want <= 0.1", rep.Score)
	}
	// Masked and unmasked windows must score identically.
	masked := make([]ip6.Addr, len(window))
	for i, a := range window {
		masked[i] = ip6.Mask(a, 64)
	}
	rep2, err := Score(m, masked)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Error("masking the window changed the prefix64 score")
	}
}

func reportWithScore(score float64, window int, ll float64) Report {
	return Report{Window: window, Score: score, MeanLogLikelihood: ll}
}

func TestDetectorHysteresis(t *testing.T) {
	d := NewDetector(Config{Enter: 0.2, Exit: 0.1, Consecutive: 2, MinWindow: -1})

	// One spike does not trip it.
	v := d.Observe(reportWithScore(0.5, 100, -10))
	if v.Drifting || v.Entered {
		t.Fatalf("one spike tripped the detector: %+v", v)
	}
	// A calm window resets the streak.
	if v := d.Observe(reportWithScore(0.05, 100, -10)); v.Drifting {
		t.Fatalf("calm window left it drifting: %+v", v)
	}
	// Two consecutive spikes trip it.
	d.Observe(reportWithScore(0.3, 100, -10))
	v = d.Observe(reportWithScore(0.3, 100, -10))
	if !v.Drifting || !v.Entered {
		t.Fatalf("two spikes did not trip: %+v", v)
	}
	// Between exit and enter: stays drifting (hysteresis).
	if v := d.Observe(reportWithScore(0.15, 100, -10)); !v.Drifting || v.Exited {
		t.Fatalf("mid-band score cleared the detector: %+v", v)
	}
	// At or below exit: recovers.
	v = d.Observe(reportWithScore(0.1, 100, -10))
	if v.Drifting || !v.Exited {
		t.Fatalf("exit score did not clear: %+v", v)
	}
}

func TestDetectorMinWindowSkips(t *testing.T) {
	d := NewDetector(Config{Enter: 0.2, Consecutive: 1, MinWindow: 500})
	v := d.Observe(reportWithScore(0.9, 100, -10))
	if !v.Skipped || v.Drifting {
		t.Fatalf("small window was judged: %+v", v)
	}
	if _, evals := d.State(); evals != 0 {
		t.Errorf("skipped window counted as evaluation")
	}
}

func TestDetectorLikelihoodTrigger(t *testing.T) {
	d := NewDetector(Config{Enter: 0.9, Consecutive: 1, MaxLLDrop: 2, MinWindow: -1})
	// First window records the baseline LL (-10).
	if v := d.Observe(reportWithScore(0.01, 100, -10)); v.Drifting {
		t.Fatalf("baseline window tripped: %+v", v)
	}
	// Score stays calm but the likelihood collapses: trips anyway.
	v := d.Observe(reportWithScore(0.01, 100, -15))
	if !v.Drifting || !v.Entered {
		t.Fatalf("likelihood collapse did not trip: %+v", v)
	}
	// Reset with a new baseline clears the state.
	d.Reset(-15)
	if drifting, _ := d.State(); drifting {
		t.Error("Reset left the detector drifting")
	}
	if v := d.Observe(reportWithScore(0.01, 100, -15.5)); v.Drifting {
		t.Fatalf("small drop below new baseline tripped: %+v", v)
	}
}

func TestDetectorDefaults(t *testing.T) {
	cfg := Config{}
	if cfg.enter() != DefaultEnter || cfg.exit() != DefaultEnter/2 {
		t.Errorf("default thresholds = %v/%v", cfg.enter(), cfg.exit())
	}
	if cfg.consecutive() != DefaultConsecutive || cfg.minWindow() != DefaultMinWindow {
		t.Errorf("default consecutive/minWindow = %v/%v", cfg.consecutive(), cfg.minWindow())
	}
	// Exit above Enter is clamped down to Enter.
	bad := Config{Enter: 0.2, Exit: 0.5}
	if bad.exit() != 0.2 {
		t.Errorf("exit not clamped: %v", bad.exit())
	}
}
