// Package drift scores how far a live window of observed IPv6 addresses
// has diverged from the distribution a trained Entropy/IP model encodes,
// and turns the scores into rotate/keep verdicts with hysteresis.
//
// The paper models a snapshot of an operator's addressing plan and itself
// observes that operators run several plan variants that change over time
// (§5.2): a served model goes stale. Scoring compares three views of the
// same window, all deterministic for a fixed window:
//
//   - per-segment Jensen–Shannon (and smoothed KL) divergence between the
//     window's mined-value-code distribution and the model's own BN
//     marginals — the distribution candidate generation actually samples;
//   - per-segment Jensen–Shannon divergence between the window's
//     per-nybble value histograms (entropy.Profile counts) and the
//     training set's, aggregated over each segment's nybble range — a
//     model-structure-free view that catches shifts the mined codes
//     absorb (e.g. a range value whose interior distribution moved);
//   - the mean per-address Bayesian-network log-likelihood of the window
//     under the model, the fit score shadow evaluation compares across
//     model versions.
//
// The top-level Score is the maximum per-segment divergence: one shifted
// segment (a new subnet block, a changed IID style) is a stale model even
// when the other segments still fit.
package drift

import (
	"fmt"
	"math"

	"entropyip/internal/core"
	"entropyip/internal/entropy"
	"entropyip/internal/ip6"
)

// SegmentScore is the divergence of one model segment.
type SegmentScore struct {
	// Label is the segment letter (A, B, ...).
	Label string `json:"label"`
	// Start and Width give the segment's nybble range.
	Start int `json:"start"`
	Width int `json:"width"`
	// CodeJS is the Jensen–Shannon divergence (bits, in [0,1]) between
	// the window's value-code distribution and the model's BN marginal.
	CodeJS float64 `json:"code_js"`
	// CodeKL is the smoothed KL divergence D(window ‖ model) in bits.
	CodeKL float64 `json:"code_kl"`
	// NybbleJS is the mean Jensen–Shannon divergence over the segment's
	// nybble-value histograms (window vs training set), or 0 when the
	// model predates persisted training histograms (HasNybble false).
	NybbleJS float64 `json:"nybble_js"`
	// HasNybble reports whether NybbleJS could be computed.
	HasNybble bool `json:"has_nybble"`
	// Clamped is the fraction of window addresses whose value in this
	// segment fell outside every mined value and had to be clamped to the
	// nearest one — direct evidence of novel values.
	Clamped float64 `json:"clamped"`
}

// Max returns the segment's strongest divergence signal.
func (s SegmentScore) Max() float64 {
	m := s.CodeJS
	if s.HasNybble && s.NybbleJS > m {
		m = s.NybbleJS
	}
	return m
}

// Report is the drift score of one window against one model. It is a pure
// function of (model, window): scoring the same window twice yields an
// identical report.
type Report struct {
	// Window is the number of addresses scored.
	Window int `json:"window"`
	// Segments holds one score per model segment, in address order.
	Segments []SegmentScore `json:"segments"`
	// Score is the maximum per-segment divergence — the number the
	// detector thresholds. In [0, 1].
	Score float64 `json:"score"`
	// MeanCodeJS is the mean per-segment code divergence, a smoother
	// companion to the max.
	MeanCodeJS float64 `json:"mean_code_js"`
	// MeanLogLikelihood is the per-address log-likelihood (nats) of the
	// window under the model, at address level: BN likelihood of the
	// segment codes plus within-value density, with a floor penalty for
	// values outside the mined support (core.AddressLogLikelihood) — so a
	// model that cannot generate the window's values scores visibly
	// worse, not silently the same via clamping.
	MeanLogLikelihood float64 `json:"mean_log_likelihood"`
}

// Score computes the drift report of a window of observed addresses
// against a model. An empty window yields a zero report. For Prefix64Only
// models the window is masked to /64 network identifiers and deduplicated
// first — exactly the transform core.Build applies to its training set —
// so the observed distribution is per-prefix like the model's marginals,
// not weighted by each prefix's traffic volume (Report.Window then counts
// unique prefixes).
func Score(m *core.Model, window []ip6.Addr) (Report, error) {
	window = maskWindow(m, window)
	rep := Report{Window: len(window)}
	if len(window) == 0 {
		return rep, nil
	}

	marginals, err := m.Marginals()
	if err != nil {
		return rep, fmt.Errorf("drift: model marginals: %w", err)
	}

	// One pass over the window collects the code histograms, the clamp
	// counts AND the address-level likelihood terms — scoring runs on the
	// ingest request path, so the window is encoded exactly once.
	enc := m.EncodeWindow(window)
	codeCounts := enc.CodeCounts
	clamped := enc.Clamped

	// Per-nybble histograms of the window vs the training set, when the
	// model carries them (models saved before entropy_counts load without).
	var windowProfile *entropy.Profile
	hasNybble := m.Profile != nil && m.Profile.N > 0 && profileHasCounts(m.Profile)
	if hasNybble {
		windowProfile = entropy.NewProfile(window)
	}

	sumJS := 0.0
	rep.Segments = make([]SegmentScore, len(m.Segments))
	for i, sm := range m.Segments {
		obs := entropy.Distribution(codeCounts[i])
		ss := SegmentScore{
			Label:  sm.Seg.Label,
			Start:  sm.Seg.Start,
			Width:  sm.Seg.Width,
			CodeJS: entropy.JensenShannon(obs, marginals[i]),
			CodeKL: entropy.KLDivergence(obs, marginals[i], 0),
		}
		ss.Clamped = float64(clamped[i]) / float64(len(window))
		if hasNybble {
			ss.HasNybble = true
			js := 0.0
			for n := sm.Seg.Start; n < sm.Seg.Start+sm.Seg.Width && n < ip6.NybbleCount; n++ {
				js += entropy.JensenShannon(
					entropy.Distribution(windowProfile.Counts[n][:]),
					entropy.Distribution(m.Profile.Counts[n][:]),
				)
			}
			ss.NybbleJS = js / float64(sm.Seg.Width)
		}
		rep.Segments[i] = ss
		sumJS += ss.CodeJS
		if s := ss.Max(); s > rep.Score {
			rep.Score = s
		}
	}
	if len(rep.Segments) > 0 {
		rep.MeanCodeJS = sumJS / float64(len(rep.Segments))
	}
	rep.MeanLogLikelihood = enc.LogLikelihood(m) / float64(len(window))
	return rep, nil
}

// maskWindow applies the model's training-set transform to an observation
// window: for Prefix64Only models, mask to /64 network identifiers and
// deduplicate (core.Build does the same before training); full models
// score the window as-is.
func maskWindow(m *core.Model, window []ip6.Addr) []ip6.Addr {
	if !m.Opts.Prefix64Only {
		return window
	}
	masked := make([]ip6.Addr, 0, len(window))
	seen := ip6.NewSet(len(window))
	for _, a := range window {
		p := ip6.Mask(a, 64)
		if seen.Add(p) {
			masked = append(masked, p)
		}
	}
	return masked
}

// MeanLogLikelihood returns the mean address-level log-likelihood of the
// window under the model after the same Prefix64Only masking/dedup Score
// applies — the number Report.MeanLogLikelihood holds. Shadow evaluation
// and detector baselines must use this (not core.MeanAddressLogLikelihood
// directly) so rotation-time baselines are on the same scale as every
// later evaluation.
func MeanLogLikelihood(m *core.Model, window []ip6.Addr) float64 {
	return m.MeanAddressLogLikelihood(maskWindow(m, window))
}

// profileHasCounts reports whether the profile carries per-nybble value
// histograms (false for models loaded from files that predate them).
func profileHasCounts(p *entropy.Profile) bool {
	for i := range p.Counts {
		for _, c := range p.Counts[i] {
			if c > 0 {
				return true
			}
		}
	}
	return false
}

// String renders the report compactly for logs.
func (r Report) String() string {
	worst := ""
	best := 0.0
	for _, s := range r.Segments {
		if m := s.Max(); m >= best {
			best, worst = m, s.Label
		}
	}
	return fmt.Sprintf("drift score=%.3f (worst segment %s) meanJS=%.3f meanLL=%.2f window=%d",
		r.Score, worst, r.MeanCodeJS, r.MeanLogLikelihood, r.Window)
}

// llDelta is a small helper: how far b has fallen below a (0 when not
// below).
func llDelta(a, b float64) float64 {
	if d := a - b; d > 0 && !math.IsInf(d, 0) && !math.IsNaN(d) {
		return d
	}
	return 0
}
