package drift

import (
	"fmt"
	"sync"
)

// Defaults used when Config fields are zero.
const (
	DefaultEnter       = 0.15
	DefaultConsecutive = 2
	DefaultMinWindow   = 256
)

// Config configures a Detector. The thresholds implement hysteresis: a
// model enters the drifting state only after Consecutive evaluations at or
// above Enter, and leaves it only when the score falls to Exit or below —
// so a score oscillating around one threshold cannot flap the verdict (and
// with it, retraining) on and off.
type Config struct {
	// Enter is the score at or above which an evaluation counts toward
	// drift. Zero means DefaultEnter.
	Enter float64
	// Exit is the score at or below which a drifting model recovers.
	// Zero means Enter/2. Exit must not exceed Enter.
	Exit float64
	// Consecutive is how many successive evaluations must reach Enter
	// before the detector trips. Zero means DefaultConsecutive.
	Consecutive int
	// MaxLLDrop additionally trips the detector when the window's mean
	// per-address log-likelihood falls more than this many nats below the
	// baseline recorded at the last Reset (or first evaluation). Zero
	// disables the likelihood trigger.
	MaxLLDrop float64
	// MinWindow is the smallest window the detector will judge; smaller
	// windows are ignored (their noise would defeat the thresholds).
	// Zero means DefaultMinWindow; negative means no minimum.
	MinWindow int
}

func (c Config) enter() float64 {
	if c.Enter <= 0 {
		return DefaultEnter
	}
	return c.Enter
}

func (c Config) exit() float64 {
	if c.Exit <= 0 {
		return c.enter() / 2
	}
	if c.Exit > c.enter() {
		return c.enter()
	}
	return c.Exit
}

func (c Config) consecutive() int {
	if c.Consecutive <= 0 {
		return DefaultConsecutive
	}
	return c.Consecutive
}

func (c Config) minWindow() int {
	if c.MinWindow == 0 {
		return DefaultMinWindow
	}
	if c.MinWindow < 0 {
		return 0
	}
	return c.MinWindow
}

// Verdict is the detector's judgement of one evaluation.
type Verdict struct {
	// Drifting is the detector's state after this evaluation.
	Drifting bool `json:"drifting"`
	// Entered is true exactly when this evaluation tripped the detector.
	Entered bool `json:"entered"`
	// Exited is true exactly when this evaluation cleared it.
	Exited bool `json:"exited"`
	// Skipped is true when the window was below MinWindow and the
	// evaluation changed nothing.
	Skipped bool `json:"skipped"`
	// Reason says what drove the verdict, for logs and status endpoints.
	Reason string `json:"reason,omitempty"`
	// Report is the score this verdict judged.
	Report Report `json:"report"`
}

// Detector folds a stream of drift reports into a drifting/healthy state
// with hysteresis. It is safe for concurrent use.
type Detector struct {
	cfg Config

	mu          sync.Mutex
	drifting    bool
	hot         int // consecutive evaluations at or above Enter
	baselineLL  float64
	hasBaseline bool
	evals       int
}

// NewDetector returns a Detector with the given configuration.
func NewDetector(cfg Config) *Detector { return &Detector{cfg: cfg} }

// Observe judges one drift report. The first adequately sized window also
// records the likelihood baseline when none has been set via Reset.
func (d *Detector) Observe(rep Report) Verdict {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := Verdict{Drifting: d.drifting, Report: rep}
	if rep.Window < d.cfg.minWindow() {
		v.Skipped = true
		v.Reason = fmt.Sprintf("window %d below minimum %d", rep.Window, d.cfg.minWindow())
		return v
	}
	d.evals++
	if !d.hasBaseline {
		d.baselineLL = rep.MeanLogLikelihood
		d.hasBaseline = true
	}

	enter, exit := d.cfg.enter(), d.cfg.exit()
	llDrop := 0.0
	if d.cfg.MaxLLDrop > 0 {
		llDrop = llDelta(d.baselineLL, rep.MeanLogLikelihood)
	}
	over := rep.Score >= enter || (d.cfg.MaxLLDrop > 0 && llDrop > d.cfg.MaxLLDrop)

	switch {
	case over:
		d.hot++
		if !d.drifting && d.hot >= d.cfg.consecutive() {
			d.drifting = true
			v.Entered = true
		}
		if rep.Score >= enter {
			v.Reason = fmt.Sprintf("score %.3f >= enter %.3f (%d/%d)", rep.Score, enter, d.hot, d.cfg.consecutive())
		} else {
			v.Reason = fmt.Sprintf("mean log-likelihood dropped %.2f nats below baseline (limit %.2f)", llDrop, d.cfg.MaxLLDrop)
		}
	case d.drifting && rep.Score <= exit && llDrop <= d.cfg.MaxLLDrop:
		d.drifting = false
		d.hot = 0
		v.Exited = true
		v.Reason = fmt.Sprintf("score %.3f <= exit %.3f", rep.Score, exit)
	default:
		d.hot = 0
		if d.drifting {
			v.Reason = fmt.Sprintf("score %.3f between exit %.3f and enter %.3f: still drifting", rep.Score, exit, enter)
		} else {
			v.Reason = fmt.Sprintf("score %.3f below enter %.3f", rep.Score, enter)
		}
	}
	v.Drifting = d.drifting
	return v
}

// Reset clears the drifting state and records a new likelihood baseline —
// called after a model rotation with the fresh model's fit on the live
// window.
func (d *Detector) Reset(baselineLL float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drifting = false
	d.hot = 0
	d.baselineLL = baselineLL
	d.hasBaseline = true
}

// State reports the current drifting flag and how many windows have been
// evaluated.
func (d *Detector) State() (drifting bool, evals int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.drifting, d.evals
}
