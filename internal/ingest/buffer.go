// Package ingest implements the streaming observation side of a
// long-running Entropy/IP deployment: a bounded, concurrent buffer of
// recently observed addresses that drift detection scores against the
// active model and retraining consumes as its training window.
//
// The paper models a snapshot of an operator's addressing plan; live
// address populations shift as operators roll out new variants. The
// Buffer is the bridge between the two worlds: writers (the /observe
// endpoint, the -ingest-file tail) push addresses at traffic rate, and
// readers take consistent snapshots for scoring and retraining without
// stopping the writers for more than a per-shard copy.
//
// Memory is bounded three ways: a sliding window of the last W accepted
// addresses (old observations are overwritten in ring order), an optional
// per-/64 cap so that one chatty prefix cannot monopolize the window, and
// a fixed-size uniform reservoir sample over everything ever observed
// (Vitter's algorithm R) for a long-horizon view.
package ingest

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"entropyip/internal/ip6"
)

// Defaults used when Config fields are zero.
const (
	DefaultWindowSize    = 16384
	DefaultReservoirSize = 2048
)

// Config configures a Buffer.
type Config struct {
	// WindowSize is the total number of addresses kept in the sliding
	// window across all shards. Zero means DefaultWindowSize.
	WindowSize int
	// MaxPer64 caps how many window slots addresses from one /64 prefix
	// may hold at a time; an observation beyond the cap replaces the
	// prefix's OLDEST window entry (counted in Stats.Deduped), so the
	// capped prefix's slots stay fresh instead of freezing on its first
	// MaxPer64 addresses. Zero disables the cap. The cap is what keeps a
	// single heavy-hitter /64 (one busy server, one NAT) from displacing
	// the rest of the live distribution.
	MaxPer64 int
	// Shards is the number of independently locked ring segments. Zero
	// picks min(GOMAXPROCS, 8). Addresses shard by /64 prefix hash, so the
	// per-/64 accounting stays shard-local.
	Shards int
	// ReservoirSize is the size of the sample kept over all observations
	// ever seen (not just the window). The reservoir is sharded with the
	// window (algorithm R per shard, capacity split evenly), so sampling
	// adds no cross-shard lock; each shard's sample is exactly uniform
	// over its own /64-partitioned substream, making the merged sample
	// approximately uniform overall (exactly, when shards see equal
	// traffic). Zero means DefaultReservoirSize; negative disables the
	// reservoir.
	ReservoirSize int
	// Seed seeds the reservoir's RNG. The window itself is deterministic;
	// only the reservoir is randomized.
	Seed int64
}

func (c Config) windowSize() int {
	if c.WindowSize <= 0 {
		return DefaultWindowSize
	}
	return c.WindowSize
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) reservoirSize() int {
	if c.ReservoirSize == 0 {
		return DefaultReservoirSize
	}
	if c.ReservoirSize < 0 {
		return 0
	}
	return c.ReservoirSize
}

// Stats is a snapshot of buffer counters.
type Stats struct {
	// Observed counts every address offered to Add.
	Observed uint64 `json:"observed"`
	// Accepted counts addresses that entered the window.
	Accepted uint64 `json:"accepted"`
	// Deduped counts same-/64 window entries displaced early by the
	// per-/64 cap (a newer observation of the prefix replaced its
	// oldest).
	Deduped uint64 `json:"deduped"`
	// Evicted counts window slots overwritten by newer observations.
	Evicted uint64 `json:"evicted"`
	// Window is the number of addresses currently in the window.
	Window int `json:"window"`
	// WindowCapacity is the window's configured total size.
	WindowCapacity int `json:"window_capacity"`
	// Prefixes64 is the number of distinct /64 prefixes in the window.
	Prefixes64 int `json:"prefixes_64"`
	// ReservoirReplaced counts long-horizon reservoir slots overwritten by
	// algorithm R after the reservoir filled — the churn rate of the
	// retraining sample.
	ReservoirReplaced uint64 `json:"reservoir_replaced"`
}

// shard is one independently locked ring segment of the window.
type shard struct {
	mu    sync.Mutex
	ring  []ip6.Addr // fixed capacity, len == filled slots
	next  int        // ring write position once full
	per64 map[ip6.Prefix]int
	// slots tracks each /64's ring indices oldest-first, maintained only
	// when the per-/64 cap is on: a capped add replaces the prefix's
	// oldest slot in place so the window never freezes on stale entries.
	slots map[ip6.Prefix][]int
	// res is this shard's slice of the long-horizon reservoir (algorithm
	// R over the shard's substream); nil when the reservoir is disabled.
	res []ip6.Addr
	// rreplaced counts reservoir slots overwritten by algorithm R once the
	// reservoir filled (summed into Stats.ReservoirReplaced).
	rreplaced uint64
	rseen     uint64
	rng       *rand.Rand
}

// removeSlot deletes the first occurrence of idx from s, preserving order.
func removeSlot(s []int, idx int) []int {
	for i, v := range s {
		if v == idx {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Buffer is a bounded concurrent observation buffer. All methods are safe
// for concurrent use.
type Buffer struct {
	cfg      Config
	shards   []*shard
	observed atomic.Uint64
	accepted atomic.Uint64
	deduped  atomic.Uint64
	evicted  atomic.Uint64
}

// New returns a Buffer with the given configuration.
func New(cfg Config) *Buffer {
	n := cfg.shards()
	total := cfg.windowSize()
	rs := cfg.reservoirSize()
	b := &Buffer{cfg: cfg, shards: make([]*shard, n)}
	for i := range b.shards {
		// Distribute capacities as evenly as possible; every shard holds
		// at least one slot so no /64 hash bucket is unbuffered.
		cap := total / n
		if i < total%n {
			cap++
		}
		if cap < 1 {
			cap = 1
		}
		b.shards[i] = &shard{
			ring:  make([]ip6.Addr, 0, cap),
			per64: make(map[ip6.Prefix]int),
		}
		if cfg.MaxPer64 > 0 {
			b.shards[i].slots = make(map[ip6.Prefix][]int)
		}
		if rs > 0 {
			rcap := rs / n
			if i < rs%n {
				rcap++
			}
			if rcap < 1 {
				rcap = 1
			}
			b.shards[i].res = make([]ip6.Addr, 0, rcap)
			b.shards[i].rng = rand.New(rand.NewSource(cfg.Seed + int64(i)))
		}
	}
	return b
}

// shardFor picks the shard of an address by its /64 prefix, so all
// addresses of one /64 share a shard and the per-/64 cap needs no global
// lock. The hash folds the top 64 bits (FNV-1a over the 8 prefix bytes).
func (b *Buffer) shardFor(a ip6.Addr) *shard {
	bs := a.Bytes()
	h := uint64(14695981039346656037)
	for _, c := range bs[:8] {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return b.shards[h%uint64(len(b.shards))]
}

// Add offers one observed address to the buffer. It returns true when the
// address entered the window — which, with the per-/64 cap, it always
// does: a capped prefix's newest observation replaces its oldest window
// entry rather than being dropped, so the window tracks the live
// distribution even for heavy-hitter prefixes. Add never blocks beyond
// its shard's mutex.
func (b *Buffer) Add(a ip6.Addr) bool {
	b.observed.Add(1)
	p := ip6.Prefix64(a)
	s := b.shardFor(a)

	s.mu.Lock()
	s.sample(a)
	if b.cfg.MaxPer64 > 0 {
		if idxs := s.slots[p]; len(idxs) >= b.cfg.MaxPer64 {
			// At the cap: replace this prefix's oldest entry in place and
			// rotate it to the back of the prefix's slot queue.
			oldest := idxs[0]
			s.ring[oldest] = a
			s.slots[p] = append(idxs[1:], oldest)
			s.mu.Unlock()
			b.deduped.Add(1)
			b.accepted.Add(1)
			return true
		}
	}
	var idx int
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, a)
		idx = len(s.ring) - 1
	} else {
		old := s.ring[s.next]
		op := ip6.Prefix64(old)
		if s.per64[op] <= 1 {
			delete(s.per64, op)
		} else {
			s.per64[op]--
		}
		if s.slots != nil {
			if rest := removeSlot(s.slots[op], s.next); len(rest) == 0 {
				delete(s.slots, op)
			} else {
				s.slots[op] = rest
			}
		}
		s.ring[s.next] = a
		idx = s.next
		s.next = (s.next + 1) % len(s.ring)
		b.evicted.Add(1)
	}
	s.per64[p]++
	if s.slots != nil {
		s.slots[p] = append(s.slots[p], idx)
	}
	s.mu.Unlock()
	b.accepted.Add(1)
	return true
}

// AddBatch offers a batch of addresses and returns how many were accepted.
func (b *Buffer) AddBatch(addrs []ip6.Addr) int {
	n := 0
	for _, a := range addrs {
		if b.Add(a) {
			n++
		}
	}
	return n
}

// sample feeds the shard's slice of the long-horizon reservoir
// (algorithm R); caller holds the shard mutex.
func (s *shard) sample(a ip6.Addr) {
	if s.rng == nil {
		return
	}
	s.rseen++
	if len(s.res) < cap(s.res) {
		s.res = append(s.res, a)
	} else if j := s.rng.Uint64() % s.rseen; j < uint64(cap(s.res)) {
		s.res[j] = a
		s.rreplaced++
	}
}

// Snapshot returns a copy of the current window contents. Writers are only
// blocked shard by shard for the duration of one memcpy, never for the
// whole snapshot; the result is therefore consistent per shard but may
// interleave concurrent writes across shards — exactly the semantics a
// drift scorer over a traffic window needs. The returned slice is owned by
// the caller.
func (b *Buffer) Snapshot() []ip6.Addr {
	out := make([]ip6.Addr, 0, b.cfg.windowSize())
	for _, s := range b.shards {
		s.mu.Lock()
		out = append(out, s.ring...)
		s.mu.Unlock()
	}
	return out
}

// Reservoir returns a copy of the long-horizon sample over all
// observations ever offered, merged across shards (nil when the
// reservoir is disabled).
func (b *Buffer) Reservoir() []ip6.Addr {
	if b.cfg.reservoirSize() == 0 {
		return nil
	}
	out := make([]ip6.Addr, 0, b.cfg.reservoirSize())
	for _, s := range b.shards {
		s.mu.Lock()
		out = append(out, s.res...)
		s.mu.Unlock()
	}
	return out
}

// Len returns the number of addresses currently in the window.
func (b *Buffer) Len() int {
	n := 0
	for _, s := range b.shards {
		s.mu.Lock()
		n += len(s.ring)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the buffer's counters.
func (b *Buffer) Stats() Stats {
	st := Stats{
		Observed:       b.observed.Load(),
		Accepted:       b.accepted.Load(),
		Deduped:        b.deduped.Load(),
		Evicted:        b.evicted.Load(),
		WindowCapacity: b.cfg.windowSize(),
	}
	for _, s := range b.shards {
		s.mu.Lock()
		st.Window += len(s.ring)
		st.Prefixes64 += len(s.per64)
		st.ReservoirReplaced += s.rreplaced
		s.mu.Unlock()
	}
	return st
}
