package ingest

import (
	"fmt"
	"sync"
	"testing"

	"entropyip/internal/ip6"
)

func addr(t *testing.T, s string) ip6.Addr {
	t.Helper()
	a, err := ip6.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBufferWindowSlides(t *testing.T) {
	// One shard so ring order is fully deterministic.
	b := New(Config{WindowSize: 4, Shards: 1, ReservoirSize: -1})
	for i := 0; i < 10; i++ {
		if !b.Add(addr(t, fmt.Sprintf("2001:db8::%d", i+1))) {
			t.Fatalf("Add %d rejected", i)
		}
	}
	snap := b.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("window = %d addresses, want 4", len(snap))
	}
	seen := ip6.SetOf(snap...)
	for i := 7; i <= 10; i++ {
		if !seen.Contains(addr(t, fmt.Sprintf("2001:db8::%d", i))) {
			t.Errorf("window lost recent address ::%d", i)
		}
	}
	st := b.Stats()
	if st.Observed != 10 || st.Accepted != 10 || st.Evicted != 6 {
		t.Errorf("stats = %+v, want observed=10 accepted=10 evicted=6", st)
	}
}

func TestBufferPer64CapKeepsNewest(t *testing.T) {
	b := New(Config{WindowSize: 100, MaxPer64: 2, Shards: 1, ReservoirSize: -1})
	// 5 addresses in one /64: only 2 window slots, holding the NEWEST two
	// (a capped prefix's slots must not freeze on its first addresses).
	for i := 0; i < 5; i++ {
		if !b.Add(addr(t, fmt.Sprintf("2001:db8:0:1::%d", i+1))) {
			t.Fatalf("Add %d rejected", i)
		}
	}
	// Another /64 is unaffected.
	b.Add(addr(t, "2001:db8:0:2::1"))
	st := b.Stats()
	if st.Accepted != 6 || st.Deduped != 3 {
		t.Errorf("stats = %+v, want accepted=6 deduped=3", st)
	}
	if st.Window != 3 {
		t.Errorf("window = %d, want 3 (2 capped + 1 other)", st.Window)
	}
	if st.Prefixes64 != 2 {
		t.Errorf("prefixes64 = %d, want 2", st.Prefixes64)
	}
	seen := ip6.SetOf(b.Snapshot()...)
	for _, want := range []string{"2001:db8:0:1::4", "2001:db8:0:1::5", "2001:db8:0:2::1"} {
		if !seen.Contains(addr(t, want)) {
			t.Errorf("window lost %s", want)
		}
	}
	if seen.Contains(addr(t, "2001:db8:0:1::1")) {
		t.Error("capped prefix kept its oldest entry instead of the newest")
	}
}

func TestBufferPer64CapSlotsReleasedOnEviction(t *testing.T) {
	b := New(Config{WindowSize: 2, MaxPer64: 2, Shards: 1, ReservoirSize: -1})
	b.Add(addr(t, "2001:db8:0:1::1"))
	b.Add(addr(t, "2001:db8:0:1::2"))
	// Capped: replaces ::1 in place.
	if !b.Add(addr(t, "2001:db8:0:1::3")) {
		t.Fatal("capped add should replace, not reject")
	}
	// Ring eviction by another /64 must release the first prefix's slot
	// accounting so later adds of that prefix take normal slots again.
	b.Add(addr(t, "2001:db8:0:2::1"))
	b.Add(addr(t, "2001:db8:0:2::2"))
	b.Add(addr(t, "2001:db8:0:1::4"))
	st := b.Stats()
	if st.Window != 2 {
		t.Fatalf("window = %d, want 2", st.Window)
	}
	if st.Deduped != 1 {
		t.Errorf("deduped = %d, want 1 (only the in-place replacement)", st.Deduped)
	}
	if !ip6.SetOf(b.Snapshot()...).Contains(addr(t, "2001:db8:0:1::4")) {
		t.Error("window lost the newest address")
	}
}

func TestBufferReservoirIsUniformSizeBounded(t *testing.T) {
	b := New(Config{WindowSize: 8, Shards: 1, ReservoirSize: 16, Seed: 1})
	for i := 0; i < 1000; i++ {
		b.Add(addr(t, fmt.Sprintf("2001:db8::%x", i+1)))
	}
	res := b.Reservoir()
	if len(res) != 16 {
		t.Fatalf("reservoir = %d addresses, want 16", len(res))
	}
	// The reservoir spans all observations, not just the tiny window: with
	// 1000 observed and a window of 8, at least one sampled address must
	// predate the final window.
	window := ip6.SetOf(b.Snapshot()...)
	old := 0
	for _, a := range res {
		if !window.Contains(a) {
			old++
		}
	}
	if old == 0 {
		t.Error("reservoir holds only the current window; should span history")
	}
}

func TestBufferConcurrentAddSnapshot(t *testing.T) {
	b := New(Config{WindowSize: 1024, MaxPer64: 4, Shards: 4, ReservoirSize: 64, Seed: 7})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b.Add(addr(t, fmt.Sprintf("2001:db8:%x:%x::%x", w, i%32, i+1)))
				if i%64 == 0 {
					_ = b.Snapshot()
					_ = b.Stats()
					_ = b.Reservoir()
				}
			}
		}(w)
	}
	wg.Wait()
	st := b.Stats()
	if st.Observed != 16000 {
		t.Errorf("observed = %d, want 16000", st.Observed)
	}
	if st.Window > 1024 {
		t.Errorf("window = %d exceeds capacity 1024", st.Window)
	}
	if st.Accepted != st.Observed {
		t.Errorf("accepted %d != observed %d (capped adds replace, never drop)", st.Accepted, st.Observed)
	}
}

func TestBufferShardCapacityCoversWindowSize(t *testing.T) {
	// WindowSize not divisible by shards must still add up exactly.
	b := New(Config{WindowSize: 10, Shards: 3, ReservoirSize: -1})
	total := 0
	for _, s := range b.shards {
		total += cap(s.ring)
	}
	if total != 10 {
		t.Errorf("shard capacities sum to %d, want 10", total)
	}
}
