package ingest

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"entropyip/internal/dataset"
	"entropyip/internal/ip6"
)

// DefaultTailPoll is the file-polling interval used when TailConfig.Poll
// is zero.
const DefaultTailPoll = time.Second

// TailConfig configures TailFile.
type TailConfig struct {
	// Poll is how often the file is checked for appended data. Zero means
	// DefaultTailPoll.
	Poll time.Duration
	// FromStart makes the tail consume the file's existing contents before
	// following appends; by default only data appended after the tail
	// starts is consumed (like `tail -f` vs `tail -c +0 -f`).
	FromStart bool
	// OnError, if non-nil, receives malformed-line errors (which do not
	// stop the tail) so the caller can log them.
	OnError func(line int, err error)
}

func (c TailConfig) poll() time.Duration {
	if c.Poll <= 0 {
		return DefaultTailPoll
	}
	return c.Poll
}

// tailBatchSize bounds how many parsed addresses accumulate before being
// handed to emit, so a large backlog (FromStart over a big file) streams
// through bounded memory instead of materializing at once.
const tailBatchSize = 4096

// TailFile follows an address file the way an operator feeds a live log:
// it reads complete lines in dataset format (one address per line, '#'
// comments allowed) and hands the parsed addresses to emit in batches —
// at least one batch per poll cycle that saw data, at most tailBatchSize
// addresses each, the slice owned by the callee — polling for newly
// appended data. Batching matters: a consumer like serve.Refresher takes
// per-call locks, and per-address calls at traffic rate would contend
// where one call per poll cycle does not. Truncation (logrotate
// copytruncate) resets the read position to the new end of file.
// Malformed lines are reported to cfg.OnError and skipped — a streaming
// ingest must not die on one bad line. TailFile returns when ctx is
// cancelled (with nil error) or on an I/O failure.
func TailFile(ctx context.Context, path string, cfg TailConfig, emit func([]ip6.Addr)) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	defer f.Close()

	var offset int64
	if !cfg.FromStart {
		if offset, err = f.Seek(0, io.SeekEnd); err != nil {
			return fmt.Errorf("ingest: %w", err)
		}
	}

	// partial accumulates bytes of a line whose terminating newline has
	// not been written yet, capped at dataset.MaxLineBytes — a writer that
	// never emits a newline must not grow the tail's memory without bound
	// (oversized marks the line poisoned: it is reported once and its
	// remaining bytes discarded until the next newline). lineNo counts
	// completed lines for OnError.
	var partial []byte
	oversized := false
	lineNo := 0
	ticker := time.NewTicker(cfg.poll())
	defer ticker.Stop()

	for {
		st, err := f.Stat()
		if err != nil {
			return fmt.Errorf("ingest: %w", err)
		}
		if st.Size() < offset {
			// Truncated under us: skip to the new end, dropping the
			// partial line that can no longer complete.
			if offset, err = f.Seek(0, io.SeekEnd); err != nil {
				return fmt.Errorf("ingest: %w", err)
			}
			partial, oversized = partial[:0], false
		} else if st.Size() > offset {
			if _, err := f.Seek(offset, io.SeekStart); err != nil {
				return fmt.Errorf("ingest: %w", err)
			}
			r := bufio.NewReader(io.LimitReader(f, st.Size()-offset))
			batch := make([]ip6.Addr, 0, tailBatchSize)
			for {
				// ReadSlice hands out the reader's own buffer (valid until
				// the next read), so a complete line that was not split
				// across reads parses with zero copies; ErrBufferFull and
				// EOF leave a fragment that accumulates in partial.
				chunk, err := r.ReadSlice('\n')
				if len(chunk) > 0 && chunk[len(chunk)-1] == '\n' {
					lineNo++
					line := chunk[:len(chunk)-1]
					if len(partial) > 0 {
						partial = append(partial, line...)
						line = partial
					}
					switch a, ok, perr := dataset.ParseLineBytes(line); {
					case oversized:
						oversized = false // tail of a poisoned line: already reported
					case perr != nil:
						if cfg.OnError != nil {
							cfg.OnError(lineNo, perr)
						}
					case ok:
						batch = append(batch, a)
						if len(batch) >= tailBatchSize {
							emit(batch)
							batch = make([]ip6.Addr, 0, tailBatchSize)
						}
					}
					partial = partial[:0]
				} else if !oversized {
					partial = append(partial, chunk...)
					if len(partial) > dataset.MaxLineBytes {
						oversized = true
						partial = partial[:0]
						if cfg.OnError != nil {
							cfg.OnError(lineNo+1, fmt.Errorf("ingest: line exceeds %d bytes, discarded", dataset.MaxLineBytes))
						}
					}
				}
				if err != nil && err != bufio.ErrBufferFull {
					break // io.EOF: consumed everything available
				}
			}
			if len(batch) > 0 {
				emit(batch)
			}
			offset = st.Size()
		}

		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}
