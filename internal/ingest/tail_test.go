package ingest

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"entropyip/internal/ip6"
)

// collector gathers emitted addresses thread-safely and lets tests wait
// for a count.
type collector struct {
	mu    sync.Mutex
	addrs []ip6.Addr
}

func (c *collector) emit(batch []ip6.Addr) {
	c.mu.Lock()
	c.addrs = append(c.addrs, batch...)
	c.mu.Unlock()
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.addrs)
}

func (c *collector) waitFor(t *testing.T, n int) []ip6.Addr {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.len() >= n {
			c.mu.Lock()
			defer c.mu.Unlock()
			return append([]ip6.Addr(nil), c.addrs...)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d addresses (have %d)", n, c.len())
	return nil
}

func TestTailFileFollowsAppends(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "addrs.txt")
	if err := os.WriteFile(path, []byte("2001:db8::dead\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var c collector
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- TailFile(ctx, path, TailConfig{Poll: 10 * time.Millisecond, FromStart: true}, c.emit)
	}()

	// Existing content (FromStart) arrives first.
	got := c.waitFor(t, 1)
	if got[0] != ip6.MustParseAddr("2001:db8::dead") {
		t.Errorf("first address = %v", got[0])
	}

	// Appended lines, including comments, blanks, and a split write where
	// the newline lands in a later chunk.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("# comment\n2001:db8::1\n2001:db8::"); err != nil {
		t.Fatal(err)
	}
	got = c.waitFor(t, 2)
	if got[1] != ip6.MustParseAddr("2001:db8::1") {
		t.Errorf("second address = %v", got[1])
	}
	// Complete the partial line.
	if _, err := f.WriteString("2\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got = c.waitFor(t, 3)
	if got[2] != ip6.MustParseAddr("2001:db8::2") {
		t.Errorf("third address = %v (partial-line handling)", got[2])
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("TailFile: %v", err)
	}
}

func TestTailFileSkipsMalformedLinesAndReportsThem(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "addrs.txt")
	if err := os.WriteFile(path, []byte("not-an-address\n2001:db8::1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var c collector
	var mu sync.Mutex
	badLines := 0
	cfg := TailConfig{
		Poll:      5 * time.Millisecond,
		FromStart: true,
		OnError: func(line int, err error) {
			mu.Lock()
			badLines++
			mu.Unlock()
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- TailFile(ctx, path, cfg, c.emit) }()
	got := c.waitFor(t, 1)
	if got[0] != ip6.MustParseAddr("2001:db8::1") {
		t.Errorf("address = %v", got[0])
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if badLines != 1 {
		t.Errorf("badLines = %d, want 1", badLines)
	}
}

func TestTailFileHandlesTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "addrs.txt")
	if err := os.WriteFile(path, []byte("2001:db8::1\n2001:db8::2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var c collector
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- TailFile(ctx, path, TailConfig{Poll: 5 * time.Millisecond, FromStart: true}, c.emit)
	}()
	c.waitFor(t, 2)

	// copytruncate-style rotation: truncate, then write fresh content.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	// Give the tail a chance to notice the shrink before appending.
	time.Sleep(30 * time.Millisecond)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("2001:db8::3\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got := c.waitFor(t, 3)
	if got[2] != ip6.MustParseAddr("2001:db8::3") {
		t.Errorf("post-truncate address = %v", got[2])
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTailFileMissingFile(t *testing.T) {
	err := TailFile(context.Background(), filepath.Join(t.TempDir(), "nope"), TailConfig{}, func([]ip6.Addr) {})
	if err == nil {
		t.Fatal("want error for missing file")
	}
}

// TestTailFileBatchesPerPollCycle checks addresses written in one burst
// arrive in one emit call, not one call per address.
func TestTailFileBatchesPerPollCycle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "addrs.txt")
	var lines []byte
	for i := 0; i < 100; i++ {
		lines = append(lines, []byte(ip6.MustParseAddr("2001:db8::1").String())...)
		lines = append(lines, '\n')
	}
	if err := os.WriteFile(path, lines, 0o644); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	calls, total := 0, 0
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- TailFile(ctx, path, TailConfig{Poll: 5 * time.Millisecond, FromStart: true}, func(b []ip6.Addr) {
			mu.Lock()
			calls++
			total += len(b)
			mu.Unlock()
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := total
		mu.Unlock()
		if n >= 100 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
	if calls != 1 {
		t.Errorf("emit calls = %d, want 1 (one batch per poll cycle)", calls)
	}
}
