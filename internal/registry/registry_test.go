package registry

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"entropyip/internal/core"
	"entropyip/internal/ip6"
)

// testAddrs synthesizes a small structured network for training.
func testAddrs(n int, seed int64) []ip6.Addr {
	rng := rand.New(rand.NewSource(seed))
	base := ip6.MustParseAddr("2001:db8::")
	out := make([]ip6.Addr, n)
	for i := range out {
		a := base
		a = a.SetField(8, 2, uint64(rng.Intn(8)))
		a = a.SetField(16, 16, rng.Uint64())
		out[i] = a
	}
	return out
}

func testModel(t *testing.T, seed int64) *core.Model {
	t.Helper()
	m, err := core.Build(testAddrs(1500, seed), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPutGetVersioning(t *testing.T) {
	r, err := Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := testModel(t, 1), testModel(t, 2)

	info1, err := r.Put("web", m1)
	if err != nil {
		t.Fatal(err)
	}
	if info1.Version != 1 {
		t.Errorf("first version = %d, want 1", info1.Version)
	}
	if info1.TrainCount != m1.TrainCount || info1.Segments != len(m1.Segments) {
		t.Errorf("info = %+v", info1)
	}
	info2, err := r.Put("web", m2)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version != 2 {
		t.Errorf("second version = %d, want 2", info2.Version)
	}

	// Latest must be version 2; explicit version 1 must still resolve.
	got, info, err := r.Get("web")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || got.TrainCount != m2.TrainCount {
		t.Errorf("latest = v%d", info.Version)
	}
	_, info, err = r.GetVersion("web", 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Errorf("explicit version = v%d", info.Version)
	}

	if _, _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing model error = %v", err)
	}
	if _, _, err := r.GetVersion("web", 9); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing version error = %v", err)
	}
}

func TestRejectsInvalidNames(t *testing.T) {
	r, err := Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t, 1)
	for _, bad := range []string{"", ".", "../escape", "a/b", "has space", ".hidden"} {
		if _, err := r.Put(bad, m); err == nil {
			t.Errorf("Put(%q) accepted an invalid name", bad)
		}
	}
}

func TestReopenScansDisk(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t, 1)
	if _, err := r.Put("web", m); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("web", m); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("mail", m); err != nil {
		t.Fatal(err)
	}
	// Plant a corrupt file; reopen must skip it, not fail.
	if err := os.WriteFile(filepath.Join(dir, "web", "v000009.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	list := r2.List()
	if len(list) != 2 {
		t.Fatalf("List() = %d entries, want 2", len(list))
	}
	if list[0].Name != "mail" || list[1].Name != "web" {
		t.Errorf("List() order = %v, %v", list[0].Name, list[1].Name)
	}
	if list[1].Version != 2 {
		t.Errorf("web latest = v%d, want 2 (corrupt v9 must be skipped)", list[1].Version)
	}
	got, _, err := r2.Get("web")
	if err != nil {
		t.Fatal(err)
	}
	if got.TrainCount != m.TrainCount {
		t.Errorf("reloaded TrainCount = %d", got.TrainCount)
	}
	vs, err := r2.Versions("web")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Errorf("Versions(web) = %d", len(vs))
	}
}

func TestPutRawValidates(t *testing.T) {
	r, err := Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.PutRaw("web", []byte(`{"version": 99}`)); err == nil {
		t.Error("PutRaw accepted an invalid document")
	}
	m := testModel(t, 1)
	raw, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	info, err := r.PutRaw("web", raw)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.TrainCount != m.TrainCount {
		t.Errorf("info = %+v", info)
	}
}

func TestDelete(t *testing.T) {
	r, err := Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t, 1)
	if _, err := r.Put("web", m); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get("web"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("web"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get("web"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Delete = %v", err)
	}
	if err := r.Delete("web"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Delete = %v", err)
	}
}

// TestVersionsMonotonicAcrossDelete guards against version-number reuse:
// a Put after Delete must not hand out an old version number, or a stale
// in-flight load could be cached under the new version's key.
func TestVersionsMonotonicAcrossDelete(t *testing.T) {
	r, err := Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t, 1)
	if _, err := r.Put("web", m); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("web", m); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("web"); err != nil {
		t.Fatal(err)
	}
	info, err := r.Put("web", m)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 {
		t.Errorf("version after delete = %d, want 3 (no reuse)", info.Version)
	}
}

func TestLRUEviction(t *testing.T) {
	r, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t, 1)
	for _, name := range []string{"a", "b", "c"} {
		if _, err := r.Put(name, m); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.CacheEntries != 2 {
		t.Errorf("cache entries = %d, want 2", st.CacheEntries)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions")
	}
	// "a" was evicted; getting it again must be a miss that reloads from
	// disk, while "c" stays a hit.
	before := r.Stats()
	if _, _, err := r.Get("c"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	after := r.Stats()
	if after.Hits != before.Hits+1 {
		t.Errorf("hits %d -> %d, want +1", before.Hits, after.Hits)
	}
	if after.Misses != before.Misses+1 {
		t.Errorf("misses %d -> %d, want +1", before.Misses, after.Misses)
	}
}

// TestConcurrentAccess hammers the registry from many goroutines — mixed
// puts, gets, lists and deletes — and must pass under go test -race.
func TestConcurrentAccess(t *testing.T) {
	r, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	seedModel := testModel(t, 1)
	names := []string{"alpha", "beta", "gamma", "delta"}
	for _, name := range names {
		if _, err := r.Put(name, seedModel); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 16
	const iters = 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				name := names[rng.Intn(len(names))]
				switch rng.Intn(10) {
				case 0:
					if _, err := r.Put(name, seedModel); err != nil {
						t.Error(err)
					}
				case 1:
					r.List()
					r.Stats()
				default:
					m, _, err := r.Get(name)
					if err != nil {
						t.Error(err)
						continue
					}
					// Exercise shared read-only use of the decoded model.
					if _, err := m.Browse(nil); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := r.Stats()
	if st.Models != len(names) {
		t.Errorf("models = %d, want %d", st.Models, len(names))
	}
	if st.CacheEntries > 3 {
		t.Errorf("cache entries = %d, over capacity", st.CacheEntries)
	}
}

// TestSingleFlight checks a burst of concurrent cold Gets decodes once.
func TestSingleFlight(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	// Reopen so the cache is cold but the file is on disk.
	r2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	models := make([]*core.Model, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, _, err := r2.Get("web")
			if err != nil {
				t.Error(err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	st := r2.Stats()
	// All waiters must observe the same decoded instance; at most a couple
	// of decodes may race ahead of the single-flight registration.
	for i := 1; i < n; i++ {
		if models[i] != models[0] && models[i] == nil {
			t.Errorf("goroutine %d got a nil model", i)
		}
	}
	if st.Hits+st.Misses < n {
		t.Errorf("lookups = %d, want >= %d", st.Hits+st.Misses, n)
	}
}

// TestConcurrentPutGetDeleteWithEviction hammers one registry with
// concurrent Put, Get, GetVersion, List, Versions and Delete over a
// handful of model names, with a cache far smaller than the number of
// live versions so the LRU constantly evicts and reloads from disk. The
// invariant under test is atomic publication: a reader must never observe
// a partially-published version — every Get either fails with ErrNotFound
// (name deleted) or returns a fully valid, generation-capable model whose
// Info matches a version that a Put completed. Run with -race.
func TestConcurrentPutGetDeleteWithEviction(t *testing.T) {
	r, err := Open(t.TempDir(), 2) // tiny LRU: force eviction + reload
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta", "gamma"}
	// Two distinct prebuilt models (training is too slow to do per-Put in
	// the loop); which one a version holds is irrelevant to the invariant.
	models := []*core.Model{testModel(t, 1), testModel(t, 2)}

	const (
		writers        = 3
		readers        = 6
		putsPerWriter  = 8
		readsPerReader = 400
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers*putsPerWriter+readers*readsPerReader)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < putsPerWriter; i++ {
				name := names[(w+i)%len(names)]
				if _, err := r.Put(name, models[(w+i)%len(models)]); err != nil {
					errs <- err
					return
				}
				if i%4 == 3 {
					// Deleting concurrently with readers and writers: a
					// NotFound race with another goroutine's delete is fine.
					if err := r.Delete(name); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				name := names[(g+i)%len(names)]
				m, info, err := r.Get(name)
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue // deleted between resolve and now: legal
					}
					errs <- err
					return
				}
				// A published model must be complete and usable: a torn or
				// partially visible version would fail one of these.
				if m == nil || m.Net == nil || len(m.Segments) == 0 {
					errs <- errors.New("reader observed an incomplete model")
					return
				}
				if info.Name != name || info.Version < 1 || info.Segments != len(m.Segments) {
					errs <- errors.New("reader observed inconsistent info")
					return
				}
				if m.TrainCount != info.TrainCount {
					errs <- errors.New("info train count does not match model")
					return
				}
				if _, err := m.Generate(core.GenerateOptions{Count: 2, Seed: int64(i)}); err != nil {
					errs <- err
					return
				}
				// Exercise the version index paths under the same churn.
				if vs, err := r.Versions(name); err == nil {
					if len(vs) == 0 {
						errs <- errors.New("Versions returned empty without error")
						return
					}
					if _, _, err := r.GetVersion(name, vs[len(vs)-1].Version); err != nil && !errors.Is(err, ErrNotFound) {
						errs <- err
						return
					}
				}
				_ = r.List()
				_ = r.Stats()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Eviction must actually have happened for the test to mean anything.
	if st := r.Stats(); st.Evictions == 0 {
		t.Errorf("no LRU evictions under churn: stats = %+v", st)
	}
	// Version numbers never regress: whatever survives, each name's
	// versions are strictly increasing and unique.
	for _, name := range names {
		vs, err := r.Versions(name)
		if errors.Is(err, ErrNotFound) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(vs); i++ {
			if vs[i].Version <= vs[i-1].Version {
				t.Errorf("%s versions not strictly increasing: %v then %v", name, vs[i-1].Version, vs[i].Version)
			}
		}
	}
}
