// Package registry implements a named, versioned store of trained
// Entropy/IP models: the model-management layer behind the serving daemon.
//
// Models are persisted on disk in the core.Save JSON format, one directory
// per model name with one file per version, and decoded models are held in
// a bounded in-memory LRU cache so that repeated queries against the same
// model never touch the disk or re-decode JSON. The structure mirrors the
// memory-over-disk layered cache idiom of production serving systems: the
// disk directory is the durable source of truth, the LRU is the hot set.
//
// All methods are safe for concurrent use. Loads of a cold model are
// deduplicated (single-flight) so that a burst of requests for the same
// model decodes it once.
package registry

import (
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"entropyip/internal/core"
)

// DefaultCacheSize is the number of decoded models kept in memory when no
// explicit cache size is configured.
const DefaultCacheSize = 16

// ErrNotFound is returned when the requested model name or version does
// not exist in the registry.
var ErrNotFound = errors.New("registry: model not found")

// ErrInvalidModel is returned (wrapped) when an uploaded document does not
// decode as a model, as opposed to storage failures. HTTP layers use it to
// distinguish a client's bad request from a server-side fault.
var ErrInvalidModel = errors.New("registry: invalid model document")

// nameRE restricts model names to filesystem- and URL-safe identifiers.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidName reports whether s is an acceptable model name.
func ValidName(s string) bool { return nameRE.MatchString(s) }

// Info describes one stored model version.
type Info struct {
	// Name is the model's registry name.
	Name string `json:"name"`
	// Version is the 1-based version number; higher is newer.
	Version int `json:"version"`
	// TrainCount is the number of addresses the model was trained on.
	TrainCount int `json:"train_count"`
	// Segments is the number of segments (BN variables) in the model.
	Segments int `json:"segments"`
	// Prefix64Only reports whether the model covers only the top 64 bits.
	Prefix64Only bool `json:"prefix64_only"`
	// SizeBytes is the size of the serialized model on disk.
	SizeBytes int64 `json:"size_bytes"`
	// Created is the modification time of the version file.
	Created time.Time `json:"created"`
}

// Stats is a snapshot of registry cache behaviour.
type Stats struct {
	// Models is the number of distinct model names.
	Models int `json:"models"`
	// Versions is the total number of stored versions across all names.
	Versions int `json:"versions"`
	// CacheEntries is the number of decoded models currently in memory.
	CacheEntries int `json:"cache_entries"`
	// CacheCapacity is the maximum number of decoded models kept.
	CacheCapacity int `json:"cache_capacity"`
	// Hits and Misses count cache lookups since the registry was opened.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts models dropped from the cache to make room.
	Evictions int64 `json:"evictions"`
	// Coalesced counts lookups that joined another goroutine's in-flight
	// disk load instead of starting their own (single-flight hits).
	Coalesced int64 `json:"coalesced"`
}

// Registry is a named, versioned model store: a disk directory of
// core.Save JSON files under an in-memory LRU of decoded models.
type Registry struct {
	dir string

	// imu guards the name → versions index.
	imu   sync.RWMutex
	index map[string][]Info // versions sorted ascending
	// lastVersion remembers the highest version ever assigned to a name in
	// this process, surviving Delete. Without it, Delete+Put would reuse
	// version numbers and an in-flight load of a deleted version could be
	// installed under the new version's cache key.
	lastVersion map[string]int

	// cmu guards the LRU cache, the single-flight table and the counters.
	cmu       sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	loading   map[string]*inflight
	hits      int64
	misses    int64
	evictions int64
	coalesced int64

	// onLoad, when set, observes the wall-clock seconds of every
	// successful disk load (for a latency histogram). Set it with
	// SetLoadObserver before the registry sees concurrent traffic.
	onLoad func(seconds float64)
}

type cacheEntry struct {
	key   string
	model *core.Model
	info  Info
}

type inflight struct {
	done  chan struct{}
	model *core.Model
	info  Info
	err   error
}

// Open opens (creating if needed) a registry rooted at dir. cacheSize
// bounds the number of decoded models kept in memory; <= 0 selects
// DefaultCacheSize. Existing model files are indexed but not decoded.
func Open(dir string, cacheSize int) (*Registry, error) {
	if cacheSize <= 0 {
		cacheSize = DefaultCacheSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	r := &Registry{
		dir:         dir,
		index:       make(map[string][]Info),
		lastVersion: make(map[string]int),
		max:         cacheSize,
		ll:          list.New(),
		items:       make(map[string]*list.Element),
		loading:     make(map[string]*inflight),
	}
	if err := r.scan(); err != nil {
		return nil, err
	}
	return r, nil
}

// scan builds the name → versions index from the directory contents.
func (r *Registry) scan() error {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !ValidName(e.Name()) {
			continue
		}
		name := e.Name()
		files, err := os.ReadDir(filepath.Join(r.dir, name))
		if err != nil {
			return fmt.Errorf("registry: %w", err)
		}
		var infos []Info
		for _, f := range files {
			v, ok := parseVersionFile(f.Name())
			if !ok {
				continue
			}
			info, err := r.probe(name, v)
			if err != nil {
				// A corrupt or foreign file must not take the whole
				// registry down; skip it.
				continue
			}
			infos = append(infos, info)
		}
		sort.Slice(infos, func(i, j int) bool { return infos[i].Version < infos[j].Version })
		if len(infos) > 0 {
			r.index[name] = infos
			r.lastVersion[name] = infos[len(infos)-1].Version
		}
	}
	return nil
}

// versionFile returns the path of one version file.
func (r *Registry) versionFile(name string, version int) string {
	return filepath.Join(r.dir, name, fmt.Sprintf("v%06d.json", version))
}

func parseVersionFile(base string) (int, bool) {
	if len(base) != len("v000000.json") || base[0] != 'v' || filepath.Ext(base) != ".json" {
		return 0, false
	}
	v, err := strconv.Atoi(base[1:7])
	if err != nil || v <= 0 {
		return 0, false
	}
	return v, true
}

// metaProbe decodes only the summary fields of a model file.
type metaProbe struct {
	Version      int               `json:"version"`
	Prefix64Only bool              `json:"prefix64_only"`
	TrainCount   int               `json:"train_count"`
	Segments     []json.RawMessage `json:"segments"`
}

// probe derives Info from a version file without building the model. The
// file is decoded streaming off the descriptor rather than slurped, so
// startup cost stays one parse pass per file with no extra buffer.
func (r *Registry) probe(name string, version int) (Info, error) {
	path := r.versionFile(name, version)
	f, err := os.Open(path)
	if err != nil {
		return Info{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Info{}, err
	}
	var mp metaProbe
	if err := json.NewDecoder(f).Decode(&mp); err != nil {
		return Info{}, fmt.Errorf("registry: %s: %w", path, err)
	}
	if len(mp.Segments) == 0 {
		return Info{}, fmt.Errorf("registry: %s: no segments", path)
	}
	return Info{
		Name:         name,
		Version:      version,
		TrainCount:   mp.TrainCount,
		Segments:     len(mp.Segments),
		Prefix64Only: mp.Prefix64Only,
		SizeBytes:    st.Size(),
		Created:      st.ModTime(),
	}, nil
}

// Put stores a new version of the named model and returns its Info. The
// model is written atomically (temp file + rename) and becomes the
// latest version. The decoded model is installed in the cache.
func (r *Registry) Put(name string, m *core.Model) (Info, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return Info{}, fmt.Errorf("registry: encoding model: %w", err)
	}
	data = append(data, '\n')
	return r.putBytes(name, m, data)
}

// PutRaw stores serialized model bytes (the core.Save format) as a new
// version of the named model, validating that they decode first.
func (r *Registry) PutRaw(name string, data []byte) (Info, error) {
	m, err := core.Load(bytes.NewReader(data))
	if err != nil {
		return Info{}, fmt.Errorf("%w: %v", ErrInvalidModel, err)
	}
	return r.putBytes(name, m, data)
}

func (r *Registry) putBytes(name string, m *core.Model, data []byte) (Info, error) {
	if !ValidName(name) {
		return Info{}, fmt.Errorf("registry: invalid model name %q", name)
	}
	nameDir := filepath.Join(r.dir, name)
	if err := os.MkdirAll(nameDir, 0o755); err != nil {
		return Info{}, fmt.Errorf("registry: %w", err)
	}

	// Assign the next version and write atomically under the index lock so
	// concurrent Puts of the same name get distinct versions.
	r.imu.Lock()
	defer r.imu.Unlock()
	version := r.lastVersion[name] + 1
	if infos := r.index[name]; len(infos) > 0 && infos[len(infos)-1].Version >= version {
		version = infos[len(infos)-1].Version + 1
	}
	path := r.versionFile(name, version)
	tmp, err := os.CreateTemp(nameDir, ".put-*")
	if err != nil {
		return Info{}, fmt.Errorf("registry: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return Info{}, fmt.Errorf("registry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return Info{}, fmt.Errorf("registry: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return Info{}, fmt.Errorf("registry: %w", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		return Info{}, fmt.Errorf("registry: %w", err)
	}
	info := Info{
		Name:         name,
		Version:      version,
		TrainCount:   m.TrainCount,
		Segments:     len(m.Segments),
		Prefix64Only: m.Opts.Prefix64Only,
		SizeBytes:    st.Size(),
		Created:      st.ModTime(),
	}
	r.index[name] = append(r.index[name], info)
	r.lastVersion[name] = version

	r.cmu.Lock()
	r.install(cacheKey(name, version), m, info)
	r.cmu.Unlock()
	return info, nil
}

// Get returns the latest version of the named model.
func (r *Registry) Get(name string) (*core.Model, Info, error) {
	return r.GetVersion(name, 0)
}

// LoadSource says how GetVersionOutcome satisfied a lookup.
type LoadSource uint8

const (
	// LoadHit: served from the in-memory LRU.
	LoadHit LoadSource = iota
	// LoadMiss: decoded from disk by this caller.
	LoadMiss
	// LoadCoalesced: waited on another caller's in-flight decode.
	LoadCoalesced
)

func (s LoadSource) String() string {
	switch s {
	case LoadHit:
		return "hit"
	case LoadMiss:
		return "miss"
	default:
		return "coalesced"
	}
}

// LoadOutcome describes how one lookup was served — callers (the serving
// plane) turn it into span attributes without the registry knowing about
// tracing (the layering rule: registry depends on obs for nothing).
type LoadOutcome struct {
	Source LoadSource
	// LoadSeconds is the disk decode time; 0 unless Source is LoadMiss.
	LoadSeconds float64
	// Evicted counts models this lookup's install pushed out of the LRU.
	Evicted int
}

// GetVersion returns the given version of the named model; version 0 means
// the latest. The decoded model is shared between callers and must be
// treated as read-only.
func (r *Registry) GetVersion(name string, version int) (*core.Model, Info, error) {
	m, info, _, err := r.GetVersionOutcome(name, version)
	return m, info, err
}

// GetVersionOutcome is GetVersion plus a LoadOutcome describing how the
// lookup was served (cache hit, disk load, or coalesced onto another
// caller's load).
func (r *Registry) GetVersionOutcome(name string, version int) (*core.Model, Info, LoadOutcome, error) {
	info, err := r.resolve(name, version)
	if err != nil {
		return nil, Info{}, LoadOutcome{}, err
	}
	key := cacheKey(info.Name, info.Version)

	r.cmu.Lock()
	if el, ok := r.items[key]; ok {
		r.ll.MoveToFront(el)
		ce := el.Value.(*cacheEntry)
		r.hits++
		r.cmu.Unlock()
		return ce.model, ce.info, LoadOutcome{Source: LoadHit}, nil
	}
	r.misses++
	if fl, ok := r.loading[key]; ok {
		// Another goroutine is already decoding this model: wait for it.
		r.coalesced++
		r.cmu.Unlock()
		<-fl.done
		return fl.model, fl.info, LoadOutcome{Source: LoadCoalesced}, fl.err
	}
	fl := &inflight{done: make(chan struct{})}
	r.loading[key] = fl
	r.cmu.Unlock()

	loadStart := time.Now()
	m, lerr := r.loadFromDisk(info)
	loadSeconds := time.Since(loadStart).Seconds()
	if lerr == nil && r.onLoad != nil {
		r.onLoad(loadSeconds)
	}
	fl.model, fl.info, fl.err = m, info, lerr

	evicted := 0
	r.cmu.Lock()
	delete(r.loading, key)
	if lerr == nil {
		evicted = r.install(key, m, info)
	}
	r.cmu.Unlock()
	close(fl.done)
	return fl.model, fl.info, LoadOutcome{Source: LoadMiss, LoadSeconds: loadSeconds, Evicted: evicted}, fl.err
}

// OpenRaw opens the serialized bytes of a model version for reading (e.g.
// to stream a model download without decoding it). version 0 means latest.
func (r *Registry) OpenRaw(name string, version int) (io.ReadCloser, Info, error) {
	info, err := r.resolve(name, version)
	if err != nil {
		return nil, Info{}, err
	}
	f, err := os.Open(r.versionFile(info.Name, info.Version))
	if err != nil {
		return nil, Info{}, fmt.Errorf("registry: %w", err)
	}
	return f, info, nil
}

// resolve maps (name, version) to the Info of an existing version.
func (r *Registry) resolve(name string, version int) (Info, error) {
	r.imu.RLock()
	defer r.imu.RUnlock()
	infos := r.index[name]
	if len(infos) == 0 {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if version == 0 {
		return infos[len(infos)-1], nil
	}
	for _, info := range infos {
		if info.Version == version {
			return info, nil
		}
	}
	return Info{}, fmt.Errorf("%w: %q version %d", ErrNotFound, name, version)
}

func (r *Registry) loadFromDisk(info Info) (*core.Model, error) {
	f, err := os.Open(r.versionFile(info.Name, info.Version))
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	defer f.Close()
	m, err := core.Load(f)
	if err != nil {
		return nil, fmt.Errorf("registry: decoding %s v%d: %w", info.Name, info.Version, err)
	}
	return m, nil
}

// install inserts a decoded model into the LRU and returns how many
// entries it evicted; caller holds cmu.
func (r *Registry) install(key string, m *core.Model, info Info) int {
	if el, ok := r.items[key]; ok {
		r.ll.MoveToFront(el)
		el.Value.(*cacheEntry).model = m
		el.Value.(*cacheEntry).info = info
		return 0
	}
	el := r.ll.PushFront(&cacheEntry{key: key, model: m, info: info})
	r.items[key] = el
	evicted := 0
	for r.ll.Len() > r.max {
		oldest := r.ll.Back()
		r.ll.Remove(oldest)
		delete(r.items, oldest.Value.(*cacheEntry).key)
		r.evictions++
		evicted++
	}
	return evicted
}

func cacheKey(name string, version int) string {
	return name + "@" + strconv.Itoa(version)
}

// List returns the latest Info of every model name, sorted by name.
func (r *Registry) List() []Info {
	r.imu.RLock()
	defer r.imu.RUnlock()
	out := make([]Info, 0, len(r.index))
	for _, infos := range r.index {
		out = append(out, infos[len(infos)-1])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Versions returns every stored version of the named model, oldest first.
func (r *Registry) Versions(name string) ([]Info, error) {
	r.imu.RLock()
	defer r.imu.RUnlock()
	infos := r.index[name]
	if len(infos) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return append([]Info(nil), infos...), nil
}

// Delete removes the named model — all versions — from disk and memory.
func (r *Registry) Delete(name string) error {
	r.imu.Lock()
	defer r.imu.Unlock()
	infos := r.index[name]
	if len(infos) == 0 {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err := os.RemoveAll(filepath.Join(r.dir, name)); err != nil {
		return fmt.Errorf("registry: %w", err)
	}
	r.lastVersion[name] = infos[len(infos)-1].Version
	delete(r.index, name)
	r.cmu.Lock()
	for _, info := range infos {
		key := cacheKey(name, info.Version)
		if el, ok := r.items[key]; ok {
			r.ll.Remove(el)
			delete(r.items, key)
		}
	}
	r.cmu.Unlock()
	return nil
}

// Stats returns a snapshot of registry and cache state.
func (r *Registry) Stats() Stats {
	r.imu.RLock()
	models := len(r.index)
	versions := 0
	for _, infos := range r.index {
		versions += len(infos)
	}
	r.imu.RUnlock()
	r.cmu.Lock()
	defer r.cmu.Unlock()
	return Stats{
		Models:        models,
		Versions:      versions,
		CacheEntries:  r.ll.Len(),
		CacheCapacity: r.max,
		Hits:          r.hits,
		Misses:        r.misses,
		Evictions:     r.evictions,
		Coalesced:     r.coalesced,
	}
}

// SetLoadObserver installs a callback observing the duration (seconds) of
// every successful disk load. Call it once, before the registry serves
// concurrent traffic: the field is read without synchronization on the
// load path.
func (r *Registry) SetLoadObserver(fn func(seconds float64)) {
	r.onLoad = fn
}
