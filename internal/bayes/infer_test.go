package bayes

import (
	"math"
	"math/rand"
	"testing"
)

// sprinklerNetwork builds the classic rain/sprinkler/wet-grass network by
// hand (with the ordering Rain=0, Sprinkler=1, Wet=2) so inference results
// can be checked against hand-computed values.
func sprinklerNetwork() *Network {
	net := &Network{
		Vars: []Variable{{Name: "Rain", Arity: 2}, {Name: "Sprinkler", Arity: 2}, {Name: "Wet", Arity: 2}},
		Parents: [][]int{
			{},
			{0},
			{0, 1},
		},
	}
	// P(Rain=1) = 0.2
	net.CPTs = []*CPT{
		{ParentCard: nil, Arity: 2, Rows: [][]float64{{0.8, 0.2}}},
		// P(Sprinkler=1 | Rain): 0.4 if no rain, 0.01 if rain.
		{ParentCard: []int{2}, Arity: 2, Rows: [][]float64{{0.6, 0.4}, {0.99, 0.01}}},
		// P(Wet=1 | Rain, Sprinkler): rows ordered Rain slowest.
		{ParentCard: []int{2, 2}, Arity: 2, Rows: [][]float64{
			{1.0, 0.0},   // no rain, no sprinkler
			{0.1, 0.9},   // no rain, sprinkler
			{0.2, 0.8},   // rain, no sprinkler
			{0.01, 0.99}, // rain, sprinkler
		}},
	}
	return net
}

func TestSprinklerValidate(t *testing.T) {
	if err := sprinklerNetwork().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryPrior(t *testing.T) {
	net := sprinklerNetwork()
	dist, err := net.Query(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(dist[1], 0.2) {
		t.Errorf("P(Rain) = %v", dist)
	}
	// P(Wet=1) = sum over rain, sprinkler.
	// = 0.8*(0.6*0 + 0.4*0.9) + 0.2*(0.99*0.8 + 0.01*0.99)
	want := 0.8*(0.6*0+0.4*0.9) + 0.2*(0.99*0.8+0.01*0.99)
	dist, err = net.Query(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist[1]-want) > 1e-9 {
		t.Errorf("P(Wet=1) = %v, want %v", dist[1], want)
	}
}

func TestQueryEvidentialReasoning(t *testing.T) {
	// Conditioning on a downstream variable must update upstream beliefs:
	// P(Rain=1 | Wet=1) > P(Rain=1). This is the "probabilistic influence
	// can flow backwards" behaviour the paper's browser relies on.
	net := sprinklerNetwork()
	prior, _ := net.Query(0, nil)
	posterior, err := net.Query(0, map[int]int{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if posterior[1] <= prior[1] {
		t.Errorf("P(Rain|Wet) = %v should exceed prior %v", posterior[1], prior[1])
	}
	// Explaining away: adding Sprinkler=1 as evidence should reduce the
	// belief in rain compared with Wet alone.
	both, err := net.Query(0, map[int]int{2: 1, 1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if both[1] >= posterior[1] {
		t.Errorf("explaining away failed: %v vs %v", both[1], posterior[1])
	}
}

func TestQueryHandComputedPosterior(t *testing.T) {
	// P(Rain=1 | Wet=1) computed by hand:
	// joint(R, S, W=1) summed appropriately.
	net := sprinklerNetwork()
	num := 0.2 * (0.99*0.8 + 0.01*0.99)
	den := num + 0.8*(0.6*0+0.4*0.9)
	want := num / den
	got, err := net.Query(0, map[int]int{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[1]-want) > 1e-9 {
		t.Errorf("P(Rain=1|Wet=1) = %v, want %v", got[1], want)
	}
}

func TestQueryTargetObserved(t *testing.T) {
	net := sprinklerNetwork()
	dist, err := net.Query(1, map[int]int{1: 0})
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != 1 || dist[1] != 0 {
		t.Errorf("observed target should be a point mass: %v", dist)
	}
}

func TestQueryErrors(t *testing.T) {
	net := sprinklerNetwork()
	if _, err := net.Query(9, nil); err == nil {
		t.Error("expected error for bad target")
	}
	if _, err := net.Query(0, map[int]int{1: 9}); err == nil {
		t.Error("expected error for bad evidence value")
	}
	if _, err := net.Query(0, map[int]int{-1: 0}); err == nil {
		t.Error("expected error for bad evidence variable")
	}
	if _, err := net.Query(1, map[int]int{1: 9}); err == nil {
		t.Error("expected error for bad observed target value")
	}
	// Impossible evidence: Wet=1 with Rain=0, Sprinkler=0 has probability 0.
	if _, err := net.Query(0, map[int]int{1: 0, 2: 1, 0: 0}); err == nil {
		// Note: all variables observed; query of observed target returns
		// point mass, so use an unobservable-target query instead.
		t.Log("all-observed query returns point mass; acceptable")
	}
	zero := &Network{
		Vars:    []Variable{{Name: "A", Arity: 2}, {Name: "B", Arity: 2}},
		Parents: [][]int{{}, {0}},
		CPTs: []*CPT{
			{Arity: 2, Rows: [][]float64{{1, 0}}},
			{ParentCard: []int{2}, Arity: 2, Rows: [][]float64{{1, 0}, {0, 1}}},
		},
	}
	if _, err := zero.Query(0, map[int]int{1: 1}); err == nil {
		t.Error("expected zero-probability-evidence error")
	}
}

func TestPosteriors(t *testing.T) {
	net := sprinklerNetwork()
	posts, err := net.Posteriors(map[int]int{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 3 {
		t.Fatalf("posteriors = %d", len(posts))
	}
	for i, dist := range posts {
		sum := 0.0
		for _, p := range dist {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("posterior %d sums to %v", i, sum)
		}
	}
	if posts[2][1] != 1 {
		t.Error("observed variable posterior should be a point mass")
	}
}

func TestProbEvidence(t *testing.T) {
	net := sprinklerNetwork()
	p, err := net.ProbEvidence(map[int]int{0: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 0.2) {
		t.Errorf("P(Rain=1) = %v", p)
	}
	pw, err := net.ProbEvidence(map[int]int{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8*(0.6*0+0.4*0.9) + 0.2*(0.99*0.8+0.01*0.99)
	if math.Abs(pw-want) > 1e-9 {
		t.Errorf("P(Wet=1) = %v, want %v", pw, want)
	}
	if _, err := net.ProbEvidence(map[int]int{0: 7}); err == nil {
		t.Error("expected error for invalid evidence")
	}
	// Empty evidence has probability 1.
	p1, err := net.ProbEvidence(nil)
	if err != nil || math.Abs(p1-1) > 1e-9 {
		t.Errorf("P(nothing) = %v, %v", p1, err)
	}
}

func TestSampleConditionalRespectsEvidence(t *testing.T) {
	net := sprinklerNetwork()
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	rainCount := 0
	for i := 0; i < n; i++ {
		s, err := net.SampleConditional(rng, map[int]int{2: 1})
		if err != nil {
			t.Fatal(err)
		}
		if s[2] != 1 {
			t.Fatal("evidence not respected")
		}
		if s[0] == 1 {
			rainCount++
		}
	}
	want, _ := net.Query(0, map[int]int{2: 1})
	got := float64(rainCount) / n
	if math.Abs(got-want[1]) > 0.03 {
		t.Errorf("conditional sampling P(Rain=1|Wet=1) = %v, want %v", got, want[1])
	}
	if _, err := net.SampleConditional(rng, map[int]int{0: 9}); err == nil {
		t.Error("expected error for invalid evidence")
	}
}

func TestSampleConditionalNoEvidenceMatchesForward(t *testing.T) {
	net := sprinklerNetwork()
	rng := rand.New(rand.NewSource(2))
	const n = 8000
	wet := 0
	for i := 0; i < n; i++ {
		s, err := net.SampleConditional(rng, nil)
		if err != nil {
			t.Fatal(err)
		}
		if s[2] == 1 {
			wet++
		}
	}
	want := 0.8*(0.6*0+0.4*0.9) + 0.2*(0.99*0.8+0.01*0.99)
	if math.Abs(float64(wet)/n-want) > 0.03 {
		t.Errorf("P(Wet=1) sampled %v, want %v", float64(wet)/n, want)
	}
}

func TestMutualInformation(t *testing.T) {
	net := sprinklerNetwork()
	miRW, err := net.MutualInformation(0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if miRW <= 0 {
		t.Errorf("MI(Rain, Wet) = %v, want > 0", miRW)
	}
	// Symmetry (approximately, both computed through exact inference).
	miWR, err := net.MutualInformation(2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(miRW-miWR) > 1e-6 {
		t.Errorf("MI not symmetric: %v vs %v", miRW, miWR)
	}
	if _, err := net.MutualInformation(1, 1, nil); err == nil {
		t.Error("MI of a variable with itself should error")
	}
	// Independent variables have (near) zero MI.
	indep := &Network{
		Vars:    []Variable{{Name: "A", Arity: 2}, {Name: "B", Arity: 2}},
		Parents: [][]int{{}, {}},
		CPTs: []*CPT{
			{Arity: 2, Rows: [][]float64{{0.5, 0.5}}},
			{Arity: 2, Rows: [][]float64{{0.3, 0.7}}},
		},
	}
	mi, err := indep.MutualInformation(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mi > 1e-9 {
		t.Errorf("MI of independent variables = %v", mi)
	}
}

func TestQueryLearnedNetworkConsistency(t *testing.T) {
	// Learn from data and verify Query(node | nothing) approximates the
	// empirical marginals.
	data, vars := chainData(5000, 20)
	net, err := Learn(data, vars, LearnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for _, row := range data {
		counts[row[2]]++
	}
	dist, err := net.Query(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		emp := float64(counts[k]) / float64(len(data))
		if math.Abs(dist[k]-emp) > 0.02 {
			t.Errorf("marginal of C[%d]: %v vs empirical %v", k, dist[k], emp)
		}
	}
}

func BenchmarkQuery(b *testing.B) {
	data, vars := chainData(2000, 21)
	net, _ := Learn(data, vars, LearnConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Query(0, map[int]int{2: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleConditional(b *testing.B) {
	data, vars := chainData(2000, 22)
	net, _ := Learn(data, vars, LearnConfig{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.SampleConditional(rng, map[int]int{2: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
