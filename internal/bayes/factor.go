// Package bayes implements the Bayesian-network substrate Entropy/IP uses
// to model IPv6 addresses (§4.4 of the paper): categorical variables (the
// address segments), structure learning restricted to a fixed left-to-right
// ordering (a segment may depend only on earlier segments, as the paper
// constrains and as BNFinder exploits), conditional probability tables with
// Dirichlet smoothing, exact inference by variable elimination, and forward
// and conditional sampling for candidate-address generation.
package bayes

import (
	"fmt"
	"math"
)

// Factor is a non-negative function over a set of categorical variables,
// stored as a dense table. Variables are identified by their global index
// in the network; Card[i] is the cardinality of Vars[i]. Values are laid
// out with the first variable varying slowest (row-major over Vars).
type Factor struct {
	Vars   []int
	Card   []int
	Values []float64
}

// NewFactor allocates a zero-valued factor over the given variables.
func NewFactor(vars []int, card []int) *Factor {
	if len(vars) != len(card) {
		panic("bayes: NewFactor vars/card length mismatch")
	}
	size := 1
	for _, c := range card {
		if c <= 0 {
			panic("bayes: NewFactor cardinality must be positive")
		}
		size *= c
	}
	return &Factor{
		Vars:   append([]int(nil), vars...),
		Card:   append([]int(nil), card...),
		Values: make([]float64, size),
	}
}

// index converts an assignment (one value per factor variable, in factor
// order) to a flat index.
func (f *Factor) index(assign []int) int {
	idx := 0
	for i, v := range assign {
		if v < 0 || v >= f.Card[i] {
			panic(fmt.Sprintf("bayes: assignment %d out of range for variable %d", v, f.Vars[i]))
		}
		idx = idx*f.Card[i] + v
	}
	return idx
}

// assignment converts a flat index back to an assignment.
func (f *Factor) assignment(idx int, out []int) []int {
	if out == nil {
		out = make([]int, len(f.Vars))
	}
	for i := len(f.Vars) - 1; i >= 0; i-- {
		out[i] = idx % f.Card[i]
		idx /= f.Card[i]
	}
	return out
}

// At returns the factor value for the given assignment (in factor variable
// order).
func (f *Factor) At(assign []int) float64 { return f.Values[f.index(assign)] }

// Set sets the factor value for the given assignment.
func (f *Factor) Set(assign []int, v float64) { f.Values[f.index(assign)] = v }

// Clone returns a deep copy of the factor.
func (f *Factor) Clone() *Factor {
	return &Factor{
		Vars:   append([]int(nil), f.Vars...),
		Card:   append([]int(nil), f.Card...),
		Values: append([]float64(nil), f.Values...),
	}
}

// Product returns the factor product f·g, defined over the union of their
// variables.
func Product(f, g *Factor) *Factor {
	// Union of variables, preserving f's order then g's new ones.
	vars := append([]int(nil), f.Vars...)
	card := append([]int(nil), f.Card...)
	pos := make(map[int]int, len(vars))
	for i, v := range vars {
		pos[v] = i
	}
	for i, v := range g.Vars {
		if _, ok := pos[v]; !ok {
			pos[v] = len(vars)
			vars = append(vars, v)
			card = append(card, g.Card[i])
		}
	}
	out := NewFactor(vars, card)

	assign := make([]int, len(vars))
	fa := make([]int, len(f.Vars))
	ga := make([]int, len(g.Vars))
	for idx := range out.Values {
		out.assignment(idx, assign)
		for i, v := range f.Vars {
			fa[i] = assign[pos[v]]
		}
		for i, v := range g.Vars {
			ga[i] = assign[pos[v]]
		}
		out.Values[idx] = f.At(fa) * g.At(ga)
	}
	return out
}

// SumOut returns the factor with the given variable summed out
// (marginalized). If the factor does not mention the variable, a clone is
// returned.
func (f *Factor) SumOut(variable int) *Factor {
	vi := -1
	for i, v := range f.Vars {
		if v == variable {
			vi = i
			break
		}
	}
	if vi < 0 {
		return f.Clone()
	}
	vars := make([]int, 0, len(f.Vars)-1)
	card := make([]int, 0, len(f.Vars)-1)
	for i, v := range f.Vars {
		if i == vi {
			continue
		}
		vars = append(vars, v)
		card = append(card, f.Card[i])
	}
	out := NewFactor(vars, card)
	assign := make([]int, len(f.Vars))
	reduced := make([]int, len(vars))
	for idx, val := range f.Values {
		f.assignment(idx, assign)
		k := 0
		for i := range f.Vars {
			if i == vi {
				continue
			}
			reduced[k] = assign[i]
			k++
		}
		out.Values[out.index(reduced)] += val
	}
	return out
}

// Reduce returns the factor restricted to the given evidence: entries
// inconsistent with the evidence are dropped and the evidence variables are
// removed from the factor's scope. Evidence on variables the factor does
// not mention is ignored.
func (f *Factor) Reduce(evidence map[int]int) *Factor {
	keepIdx := make([]int, 0, len(f.Vars))
	for i, v := range f.Vars {
		if _, ok := evidence[v]; !ok {
			keepIdx = append(keepIdx, i)
		}
	}
	vars := make([]int, len(keepIdx))
	card := make([]int, len(keepIdx))
	for k, i := range keepIdx {
		vars[k] = f.Vars[i]
		card[k] = f.Card[i]
	}
	out := NewFactor(vars, card)
	assign := make([]int, len(f.Vars))
	reduced := make([]int, len(vars))
	for idx, val := range f.Values {
		f.assignment(idx, assign)
		consistent := true
		for i, v := range f.Vars {
			if ev, ok := evidence[v]; ok && assign[i] != ev {
				consistent = false
				break
			}
		}
		if !consistent {
			continue
		}
		for k, i := range keepIdx {
			reduced[k] = assign[i]
		}
		out.Values[out.index(reduced)] += val
	}
	return out
}

// Normalize scales the factor so its values sum to one; it reports whether
// the sum was positive (an all-zero factor cannot be normalized).
func (f *Factor) Normalize() bool {
	sum := 0.0
	for _, v := range f.Values {
		sum += v
	}
	if sum <= 0 || math.IsNaN(sum) {
		return false
	}
	for i := range f.Values {
		f.Values[i] /= sum
	}
	return true
}

// Sum returns the sum of all factor values.
func (f *Factor) Sum() float64 {
	sum := 0.0
	for _, v := range f.Values {
		sum += v
	}
	return sum
}
