package bayes

import (
	"math"
	"math/rand"
	"testing"
)

// chainData generates data from A -> B (deterministic-ish copy) with C
// independent and uniform.
func chainData(n int, seed int64) ([][]int, []Variable) {
	rng := rand.New(rand.NewSource(seed))
	vars := []Variable{{Name: "A", Arity: 2}, {Name: "B", Arity: 2}, {Name: "C", Arity: 3}}
	data := make([][]int, n)
	for i := range data {
		a := rng.Intn(2)
		b := a
		if rng.Float64() < 0.05 {
			b = 1 - a
		}
		c := rng.Intn(3)
		data[i] = []int{a, b, c}
	}
	return data, vars
}

func TestLearnRecoversDependency(t *testing.T) {
	data, vars := chainData(5000, 1)
	net, err := Learn(data, vars, LearnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	// B must depend on A; C must be independent.
	if len(net.Parents[1]) != 1 || net.Parents[1][0] != 0 {
		t.Errorf("Parents[B] = %v, want [0]", net.Parents[1])
	}
	if len(net.Parents[2]) != 0 {
		t.Errorf("Parents[C] = %v, want none", net.Parents[2])
	}
	// CPT of B given A: strongly diagonal.
	if net.Prob(1, 0, map[int]int{0: 0}) < 0.9 || net.Prob(1, 1, map[int]int{0: 1}) < 0.9 {
		t.Errorf("CPT of B|A looks wrong: %+v", net.CPTs[1].Rows)
	}
}

func TestLearnBICAlsoRecovers(t *testing.T) {
	data, vars := chainData(5000, 2)
	net, err := Learn(data, vars, LearnConfig{Score: ScoreBIC})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Parents[1]) != 1 || net.Parents[1][0] != 0 {
		t.Errorf("BIC: Parents[B] = %v, want [0]", net.Parents[1])
	}
	if len(net.Parents[2]) != 0 {
		t.Errorf("BIC: Parents[C] = %v, want none", net.Parents[2])
	}
}

func TestLearnOrderingConstraint(t *testing.T) {
	// Even though the dependency is A -> B, node A (index 0) can never have
	// a parent; only B may point back at A through inference.
	data, vars := chainData(2000, 3)
	net, err := Learn(data, vars, LearnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Parents[0]) != 0 {
		t.Error("first node must have no parents")
	}
	for i, parents := range net.Parents {
		for _, p := range parents {
			if p >= i {
				t.Errorf("node %d has parent %d violating the ordering", i, p)
			}
		}
	}
}

func TestLearnForcedStructures(t *testing.T) {
	data, vars := chainData(1000, 4)
	indep, err := Learn(data, vars, LearnConfig{Structure: StructureIndependent})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range indep.Parents {
		if len(p) != 0 {
			t.Errorf("independent structure: node %d has parents %v", i, p)
		}
	}
	chain, err := Learn(data, vars, LearnConfig{Structure: StructureChain})
	if err != nil {
		t.Fatal(err)
	}
	if len(chain.Parents[0]) != 0 || len(chain.Parents[1]) != 1 || chain.Parents[1][0] != 0 ||
		len(chain.Parents[2]) != 1 || chain.Parents[2][0] != 1 {
		t.Errorf("chain structure wrong: %v", chain.Parents)
	}
	// The learned structure should fit the data at least as well as the
	// independent one.
	learned, err := Learn(data, vars, LearnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if learned.LogLikelihood(data) < indep.LogLikelihood(data)-1e-6 {
		t.Error("learned structure should not fit worse than independent")
	}
}

func TestLearnThreeWayDependency(t *testing.T) {
	// C depends on both A and B (XOR with noise); with MaxParents=2 the
	// learner should pick both, and with MaxParents=1 only one.
	rng := rand.New(rand.NewSource(5))
	vars := []Variable{{Name: "A", Arity: 2}, {Name: "B", Arity: 2}, {Name: "C", Arity: 2}}
	data := make([][]int, 8000)
	for i := range data {
		a, b := rng.Intn(2), rng.Intn(2)
		c := a ^ b
		if rng.Float64() < 0.02 {
			c = 1 - c
		}
		data[i] = []int{a, b, c}
	}
	net, err := Learn(data, vars, LearnConfig{MaxParents: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Parents[2]) != 2 {
		t.Errorf("Parents[C] = %v, want both A and B (XOR is invisible to single parents)", net.Parents[2])
	}
	net1, err := Learn(data, vars, LearnConfig{MaxParents: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(net1.Parents[2]) > 1 {
		t.Errorf("MaxParents=1 violated: %v", net1.Parents[2])
	}
}

func TestLearnInputValidation(t *testing.T) {
	vars := []Variable{{Name: "A", Arity: 2}}
	if _, err := Learn([][]int{{0, 1}}, vars, LearnConfig{}); err == nil {
		t.Error("expected error for row width mismatch")
	}
	if _, err := Learn([][]int{{5}}, vars, LearnConfig{}); err == nil {
		t.Error("expected error for out-of-range value")
	}
	if _, err := Learn(nil, []Variable{{Name: "A", Arity: 0}}, LearnConfig{}); err == nil {
		t.Error("expected error for zero arity")
	}
	// Empty data is allowed: uniform CPTs from smoothing.
	net, err := Learn(nil, vars, LearnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(net.CPTs[0].Rows[0][0], 0.5) {
		t.Errorf("empty-data CPT = %v", net.CPTs[0].Rows)
	}
}

func TestCPTRowsAreDistributions(t *testing.T) {
	data, vars := chainData(500, 6)
	net, err := Learn(data, vars, LearnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, cpt := range net.CPTs {
		for j, row := range cpt.Rows {
			sum := 0.0
			for _, p := range row {
				if p <= 0 {
					t.Errorf("node %d row %d has non-positive probability (smoothing should prevent this)", i, j)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("node %d row %d sums to %v", i, j, sum)
			}
		}
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	data, vars := chainData(5000, 7)
	net, err := Learn(data, vars, LearnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	const n = 20000
	countA0 := 0
	agree := 0
	for i := 0; i < n; i++ {
		s := net.Sample(rng)
		if len(s) != 3 {
			t.Fatal("sample length wrong")
		}
		if s[0] == 0 {
			countA0++
		}
		if s[0] == s[1] {
			agree++
		}
	}
	if math.Abs(float64(countA0)/n-0.5) > 0.03 {
		t.Errorf("P(A=0) sampled as %v, want ~0.5", float64(countA0)/n)
	}
	if float64(agree)/n < 0.9 {
		t.Errorf("A and B agree only %v of the time, want ~0.95", float64(agree)/n)
	}
}

func TestLogLikelihoodPrefersTrueModel(t *testing.T) {
	data, vars := chainData(2000, 9)
	learned, _ := Learn(data, vars, LearnConfig{})
	indep, _ := Learn(data, vars, LearnConfig{Structure: StructureIndependent})
	if learned.LogLikelihood(data) <= indep.LogLikelihood(data) {
		t.Error("dependency-aware model should have higher likelihood")
	}
}

func TestEdgesAndNumVars(t *testing.T) {
	data, vars := chainData(1000, 10)
	net, _ := Learn(data, vars, LearnConfig{})
	if net.NumVars() != 3 {
		t.Errorf("NumVars = %d", net.NumVars())
	}
	edges := net.Edges()
	found := false
	for _, e := range edges {
		if e[0] == 0 && e[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("edge A->B missing: %v", edges)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	data, vars := chainData(500, 11)
	net, _ := Learn(data, vars, LearnConfig{})
	net.CPTs[0].Rows[0][0] = 5
	if err := net.Validate(); err == nil {
		t.Error("expected validation error for non-normalized row")
	}
	net2, _ := Learn(data, vars, LearnConfig{})
	net2.Parents[1] = []int{2}
	if err := net2.Validate(); err == nil {
		t.Error("expected validation error for ordering violation")
	}
}

func TestProbPanicsOnMissingParent(t *testing.T) {
	data, vars := chainData(500, 12)
	net, _ := Learn(data, vars, LearnConfig{})
	if len(net.Parents[1]) == 0 {
		t.Skip("no dependency learned")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing parent value")
		}
	}()
	net.Prob(1, 0, map[int]int{})
}

func TestMaxParentConfigsLimit(t *testing.T) {
	// With a tiny MaxParentConfigs, high-arity parents are rejected.
	rng := rand.New(rand.NewSource(13))
	vars := []Variable{{Name: "A", Arity: 50}, {Name: "B", Arity: 2}}
	data := make([][]int, 2000)
	for i := range data {
		a := rng.Intn(50)
		data[i] = []int{a, a % 2}
	}
	net, err := Learn(data, vars, LearnConfig{MaxParentConfigs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Parents[1]) != 0 {
		t.Errorf("parent set exceeding MaxParentConfigs should be rejected: %v", net.Parents[1])
	}
}

func BenchmarkLearn10Vars(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nvars := 10
	vars := make([]Variable, nvars)
	for i := range vars {
		vars[i] = Variable{Name: string(rune('A' + i)), Arity: 5}
	}
	data := make([][]int, 1000)
	for i := range data {
		row := make([]int, nvars)
		row[0] = rng.Intn(5)
		for j := 1; j < nvars; j++ {
			if rng.Float64() < 0.7 {
				row[j] = row[j-1]
			} else {
				row[j] = rng.Intn(5)
			}
		}
		data[i] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Learn(data, vars, LearnConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
