package bayes

import (
	"testing"

	"entropyip/internal/entropy"
	"entropyip/internal/mining"
	"entropyip/internal/segment"
	"entropyip/internal/synth"
)

// benchLearnData encodes a synthetic S1 population into the categorical
// matrix Learn consumes, exactly as core.Build does.
func benchLearnData(b *testing.B, n int) ([][]int, []Variable) {
	b.Helper()
	addrs, err := synth.Generate("S1", n, 1)
	if err != nil {
		b.Fatal(err)
	}
	profile := entropy.NewProfile(addrs)
	sg := segment.Segments(profile, segment.Config{})
	models := mining.MineAll(addrs, sg, mining.Config{})
	vars := make([]Variable, len(models))
	for i, m := range models {
		vars[i] = Variable{Name: m.Seg.Label, Arity: m.Arity()}
	}
	data := mining.NewEncoder(models).EncodeAll(addrs)
	return data, vars
}

func benchmarkLearn(b *testing.B, n int) {
	data, vars := benchLearnData(b, n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net, err := Learn(data, vars, LearnConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if net.NumVars() != len(vars) {
			b.Fatal("bad network")
		}
	}
}

func BenchmarkLearn10k(b *testing.B)  { benchmarkLearn(b, 10_000) }
func BenchmarkLearn100k(b *testing.B) { benchmarkLearn(b, 100_000) }

func BenchmarkLearnWorkers100k(b *testing.B) {
	data, vars := benchLearnData(b, 100_000)
	for _, w := range []int{1, 0} {
		name := "workers=1"
		if w == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Learn(data, vars, LearnConfig{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
