package bayes

import (
	"math"
	"math/rand"
	"testing"
)

// TestSamplerMatchesNetworkSample pins that the compiled sampler draws
// the exact sequence Network.SampleInto draws for the same rng: both
// consume one uniform per node from normalized rows.
func TestSamplerMatchesNetworkSample(t *testing.T) {
	net := sprinklerNetwork()
	s := net.NewSampler()
	r1 := rand.New(rand.NewSource(7))
	r2 := rand.New(rand.NewSource(7))
	buf1 := make([]int, net.NumVars())
	buf2 := make([]int, net.NumVars())
	for i := 0; i < 2000; i++ {
		a := net.SampleInto(r1, buf1)
		b := s.SampleInto(r2, buf2)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("draw %d differs at var %d: %v vs %v", i, k, a, b)
			}
		}
	}
}

// TestSamplerMarginals checks the compiled sampler reproduces the
// network's marginals empirically.
func TestSamplerMarginals(t *testing.T) {
	net := sprinklerNetwork()
	s := net.NewSampler()
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	wet := 0
	buf := make([]int, s.NumVars())
	for i := 0; i < n; i++ {
		s.SampleInto(rng, buf)
		if buf[2] == 1 {
			wet++
		}
	}
	want := 0.8*(0.6*0+0.4*0.9) + 0.2*(0.99*0.8+0.01*0.99)
	if got := float64(wet) / n; math.Abs(got-want) > 0.02 {
		t.Errorf("P(Wet=1) sampled %v, want %v", got, want)
	}
}

// TestCondSamplerMatchesQueryPosterior checks the compiled conditional
// sampler draws from the exact posterior: the empirical P(Rain | Wet=1)
// must match variable elimination's answer, for evidence on a DOWNSTREAM
// variable (influence flowing backwards).
func TestCondSamplerMatchesQueryPosterior(t *testing.T) {
	net := sprinklerNetwork()
	cs, err := net.NewCondSampler(map[int]int{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 20000
	rain := 0
	buf := make([]int, cs.NumVars())
	for i := 0; i < n; i++ {
		cs.SampleInto(rng, buf)
		if buf[2] != 1 {
			t.Fatal("evidence not respected")
		}
		if buf[0] == 1 {
			rain++
		}
	}
	want, err := net.Query(0, map[int]int{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(rain) / n; math.Abs(got-want[1]) > 0.02 {
		t.Errorf("P(Rain=1|Wet=1) sampled %v, want %v", got, want[1])
	}
}

// TestCondSamplerJointPosterior cross-checks a full joint configuration
// probability under evidence against hand-computed values, so the
// chain-factorized tables compose correctly rather than just matching
// per-variable marginals.
func TestCondSamplerJointPosterior(t *testing.T) {
	net := sprinklerNetwork()
	cs, err := net.NewCondSampler(map[int]int{2: 1})
	if err != nil {
		t.Fatal(err)
	}
	// P(R, S | W=1) for all four (R, S) configurations.
	joint := func(r, s int) float64 {
		pr := []float64{0.8, 0.2}[r]
		ps := net.CPTs[1].Rows[r][s]
		pw := net.CPTs[2].Rows[r*2+s][1]
		return pr * ps * pw
	}
	den := 0.0
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			den += joint(r, s)
		}
	}
	rng := rand.New(rand.NewSource(5))
	const n = 40000
	counts := map[[2]int]int{}
	buf := make([]int, cs.NumVars())
	for i := 0; i < n; i++ {
		cs.SampleInto(rng, buf)
		counts[[2]int{buf[0], buf[1]}]++
	}
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			want := joint(r, s) / den
			got := float64(counts[[2]int{r, s}]) / n
			if math.Abs(got-want) > 0.02 {
				t.Errorf("P(R=%d,S=%d|W=1) sampled %v, want %v", r, s, got, want)
			}
		}
	}
}

// TestCondSamplerErrors pins construction-time rejection of invalid and
// impossible evidence.
func TestCondSamplerErrors(t *testing.T) {
	net := sprinklerNetwork()
	if _, err := net.NewCondSampler(map[int]int{0: 9}); err == nil {
		t.Error("expected error for out-of-range evidence value")
	}
	if _, err := net.NewCondSampler(map[int]int{-1: 0}); err == nil {
		t.Error("expected error for out-of-range evidence variable")
	}
	// Wet=1 with Rain=0, Sprinkler=0 has probability zero.
	if _, err := net.NewCondSampler(map[int]int{0: 0, 1: 0, 2: 1}); err == nil {
		t.Error("expected zero-probability-evidence error")
	}
}

// TestCondSamplerAllObserved covers the degenerate case of every
// variable observed: sampling just copies the evidence.
func TestCondSamplerAllObserved(t *testing.T) {
	net := sprinklerNetwork()
	cs, err := net.NewCondSampler(map[int]int{0: 1, 1: 0, 2: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := cs.SampleInto(rand.New(rand.NewSource(1)), make([]int, 3))
	if got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Errorf("all-observed sample = %v", got)
	}
}

// TestSampleRowDegenerateUniform is the bias regression test: a row
// whose probabilities under-sum (all-zero, or float drift) must fall
// back to a UNIFORM draw over the categories, not silently return the
// last category. The old behaviour gave the last code all the missing
// mass: a {0.25, 0.25} row sampled category 1 75% of the time.
func TestSampleRowDegenerateUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 40000
	cases := []struct {
		name string
		row  []float64
	}{
		{"under-summing", []float64{0.25, 0.25}},
		{"all-zero", []float64{0, 0}},
	}
	for _, tc := range cases {
		last := 0
		for i := 0; i < n; i++ {
			if sampleRow(rng, tc.row) == 1 {
				last++
			}
		}
		if got := float64(last) / n; math.Abs(got-0.5) > 0.02 {
			t.Errorf("%s row: P(last category) = %v, want ~0.5 (uniform fallback)", tc.name, got)
		}
	}
	// Healthy rows are untouched by the fallback.
	zero := 0
	row := []float64{0.9, 0.1}
	for i := 0; i < n; i++ {
		if sampleRow(rng, row) == 0 {
			zero++
		}
	}
	if got := float64(zero) / n; math.Abs(got-0.9) > 0.02 {
		t.Errorf("healthy row: P(0) = %v, want ~0.9", got)
	}
}

// TestValidateRejectsAllZeroRow pins the Validate error for rows with no
// probability mass.
func TestValidateRejectsAllZeroRow(t *testing.T) {
	net := sprinklerNetwork()
	net.CPTs[1].Rows[1] = []float64{0, 0}
	err := net.Validate()
	if err == nil {
		t.Fatal("expected Validate to reject an all-zero CPT row")
	}
	if want := "all zero"; !contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

// TestRenormalize pins the load-time healing path: drifted rows are
// rescaled to sum to one, already-normalized rows are left bit-identical,
// and all-zero rows are rejected.
func TestRenormalize(t *testing.T) {
	net := sprinklerNetwork()
	net.CPTs[1].Rows[0] = []float64{0.3, 0.3} // sums to 0.6
	keep := append([]float64(nil), net.CPTs[0].Rows[0]...)
	if err := net.Renormalize(); err != nil {
		t.Fatal(err)
	}
	row := net.CPTs[1].Rows[0]
	if math.Abs(row[0]-0.5) > 1e-12 || math.Abs(row[1]-0.5) > 1e-12 {
		t.Errorf("renormalized row = %v, want {0.5, 0.5}", row)
	}
	for k, v := range net.CPTs[0].Rows[0] {
		if v != keep[k] {
			t.Errorf("already-normalized row changed: %v vs %v", net.CPTs[0].Rows[0], keep)
		}
	}
	if err := net.Validate(); err != nil {
		t.Errorf("renormalized network fails Validate: %v", err)
	}

	net.CPTs[2].Rows[3] = []float64{0, 0}
	if err := net.Renormalize(); err == nil {
		t.Error("expected Renormalize to reject an all-zero row")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
