package bayes

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// correlatedData draws from a 5-variable model with real dependencies so
// structure search has non-trivial work: B copies A with noise, D depends
// on (B, C), E is independent.
func correlatedData(n int, seed int64) ([][]int, []Variable) {
	rng := rand.New(rand.NewSource(seed))
	vars := []Variable{
		{Name: "A", Arity: 4},
		{Name: "B", Arity: 4},
		{Name: "C", Arity: 3},
		{Name: "D", Arity: 5},
		{Name: "E", Arity: 2},
	}
	data := make([][]int, n)
	for i := range data {
		a := rng.Intn(4)
		b := a
		if rng.Float64() < 0.15 {
			b = rng.Intn(4)
		}
		c := rng.Intn(3)
		d := (b + c) % 5
		if rng.Float64() < 0.1 {
			d = rng.Intn(5)
		}
		e := rng.Intn(2)
		data[i] = []int{a, b, c, d, e}
	}
	return data, vars
}

// TestLearnWorkersEquivalent asserts the central determinism guarantee:
// the learned network — structure AND every CPT probability, bit for bit —
// is independent of the worker count.
func TestLearnWorkersEquivalent(t *testing.T) {
	data, vars := correlatedData(5000, 1)
	want, err := Learn(data, vars, LearnConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		got, err := Learn(data, vars, LearnConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Parents, want.Parents) {
			t.Fatalf("workers=%d: learned structure differs: %v vs %v", workers, got.Parents, want.Parents)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: learned network differs from sequential result", workers)
		}
	}
}

// TestLearnWorkersEquivalentBIC repeats the check with the BIC score and a
// larger parent budget, exercising different tie-break paths.
func TestLearnWorkersEquivalentBIC(t *testing.T) {
	data, vars := correlatedData(2000, 2)
	cfgBase := LearnConfig{Score: ScoreBIC, MaxParents: 3}
	cfg1 := cfgBase
	cfg1.Workers = 1
	want, err := Learn(data, vars, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := cfgBase
	cfg8.Workers = 8
	got, err := Learn(data, vars, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("BIC: learned network differs across worker counts")
	}
}

// TestLearnValidationErrorMatchesSequential checks that sharded validation
// reports the same first-bad-row error a sequential scan would.
func TestLearnValidationErrorMatchesSequential(t *testing.T) {
	data, vars := correlatedData(3000, 3)
	data[1234][2] = 99 // first invalid row
	data[2500][0] = -1 // later invalid row must not win
	for _, workers := range []int{1, 4, 0} {
		_, err := Learn(data, vars, LearnConfig{Workers: workers})
		if err == nil || !strings.Contains(err.Error(), "row 1234") {
			t.Fatalf("workers=%d: err = %v, want first error at row 1234", workers, err)
		}
	}
}
