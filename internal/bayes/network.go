package bayes

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"entropyip/internal/parallel"
)

// Variable describes one categorical variable of the network (one address
// segment in Entropy/IP's use).
type Variable struct {
	// Name is a human-readable identifier (the segment label).
	Name string `json:"name"`
	// Arity is the number of categories the variable can take.
	Arity int `json:"arity"`
}

// CPT is the conditional probability table of one node: the distribution of
// the node given each configuration of its parents. Rows are indexed by the
// parent configuration (parents in the node's Parents order, first parent
// varying slowest); each row has Arity probabilities summing to one.
type CPT struct {
	// ParentCard holds the cardinalities of the node's parents, in order.
	ParentCard []int `json:"parent_card"`
	// Arity is the node's own cardinality.
	Arity int `json:"arity"`
	// Rows[r][k] = P(node = k | parent configuration r).
	Rows [][]float64 `json:"rows"`
}

// RowIndex converts parent values (in parent order) to a row index.
func (c *CPT) RowIndex(parentValues []int) int {
	idx := 0
	for i, v := range parentValues {
		if v < 0 || v >= c.ParentCard[i] {
			panic(fmt.Sprintf("bayes: parent value %d out of range (card %d)", v, c.ParentCard[i]))
		}
		idx = idx*c.ParentCard[i] + v
	}
	return idx
}

// NumRows returns the number of parent configurations.
func (c *CPT) NumRows() int {
	n := 1
	for _, card := range c.ParentCard {
		n *= card
	}
	return n
}

// Network is a Bayesian network over an ordered list of categorical
// variables where the parents of node i are a subset of nodes 0..i-1 (the
// ordering constraint Entropy/IP imposes: a segment can only depend on
// segments to its left).
type Network struct {
	Vars    []Variable `json:"vars"`
	Parents [][]int    `json:"parents"`
	CPTs    []*CPT     `json:"cpts"`
}

// Structure selects how the network structure is chosen during learning.
type Structure int

// Structure choices.
const (
	// StructureLearned performs score-based search over parent sets within
	// the ordering constraint (the system's default).
	StructureLearned Structure = iota
	// StructureIndependent forces every node to have no parents (segments
	// modeled independently) — an ablation baseline.
	StructureIndependent
	// StructureChain forces each node's only parent to be its immediate
	// predecessor (a first-order Markov chain over segments) — the MM
	// alternative discussed in §4.5 of the paper.
	StructureChain
)

// LearnConfig controls structure learning and parameter fitting.
type LearnConfig struct {
	// MaxParents bounds the number of parents per node (default 2).
	MaxParents int
	// EquivalentSampleSize is the BDeu prior strength (default 1.0).
	EquivalentSampleSize float64
	// Pseudocount is the Dirichlet smoothing added to every CPT cell when
	// fitting parameters (default 0.5). It keeps generation from assigning
	// exactly zero probability to configurations not seen in training.
	Pseudocount float64
	// MaxParentConfigs bounds the number of parent configurations (product
	// of parent arities) a candidate parent set may induce (default 4096);
	// larger sets would overfit and blow up CPT size.
	MaxParentConfigs int
	// Structure selects learned vs forced structures (default learned).
	Structure Structure
	// Score selects the structure score (default BDeu).
	Score Score
	// Workers bounds the number of goroutines used for candidate-family
	// scoring and CPT counting (0 = GOMAXPROCS). The learned network is
	// bit-identical regardless of the worker count, so Workers is a purely
	// operational knob and is never persisted with a model.
	Workers int
}

// Score selects the scoring function used for structure learning.
type Score int

// Available structure scores.
const (
	// ScoreBDeu is the Bayesian Dirichlet equivalent uniform score.
	ScoreBDeu Score = iota
	// ScoreBIC is the Bayesian information criterion.
	ScoreBIC
)

func (c LearnConfig) maxParents() int {
	if c.MaxParents <= 0 {
		return 2
	}
	return c.MaxParents
}

func (c LearnConfig) ess() float64 {
	if c.EquivalentSampleSize <= 0 {
		return 1.0
	}
	return c.EquivalentSampleSize
}

func (c LearnConfig) pseudocount() float64 {
	if c.Pseudocount <= 0 {
		return 0.5
	}
	return c.Pseudocount
}

func (c LearnConfig) maxParentConfigs() int {
	if c.MaxParentConfigs <= 0 {
		return 4096
	}
	return c.MaxParentConfigs
}

// Learn learns a Bayesian network from complete categorical data. data is a
// matrix with one row per observation and one column per variable; values
// must lie in [0, arity). vars supplies names and arities in column order.
//
// Learning runs on up to cfg.Workers goroutines (0 = GOMAXPROCS): data
// validation and CPT counting shard the rows, and structure search scores
// candidate parent sets concurrently. The learned network is bit-identical
// for any worker count — integer counts merge exactly, and the candidate
// selection replays the sequential visitation order.
func Learn(data [][]int, vars []Variable, cfg LearnConfig) (*Network, error) {
	n := len(vars)
	workers := parallel.Workers(cfg.Workers)
	for _, v := range vars {
		if v.Arity <= 0 {
			return nil, fmt.Errorf("bayes: variable %q has non-positive arity", v.Name)
		}
	}
	// Validate rows in contiguous shards; each shard reports its first bad
	// row, and the lowest shard wins, so the error matches a sequential
	// scan's.
	err := parallel.ForEachShardErr(nil, workers, len(data), func(s parallel.Shard) error {
		for r := s.Start; r < s.End; r++ {
			row := data[r]
			if len(row) != n {
				return fmt.Errorf("bayes: row %d has %d columns, want %d", r, len(row), n)
			}
			for i, v := range row {
				if v < 0 || v >= vars[i].Arity {
					return fmt.Errorf("bayes: row %d column %d value %d out of range [0,%d)", r, i, v, vars[i].Arity)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	net := &Network{
		Vars:    append([]Variable(nil), vars...),
		Parents: make([][]int, n),
		CPTs:    make([]*CPT, n),
	}
	for i := 0; i < n; i++ {
		var parents []int
		switch cfg.Structure {
		case StructureIndependent:
			parents = nil
		case StructureChain:
			if i > 0 {
				parents = []int{i - 1}
			}
		default:
			parents = bestParents(data, vars, i, cfg)
		}
		net.Parents[i] = parents
		net.CPTs[i] = fitCPT(data, vars, i, parents, cfg.pseudocount(), workers)
	}
	return net, nil
}

// bestParents searches all parent subsets of {0..i-1} with at most
// MaxParents elements and returns the highest-scoring one. With the
// ordering fixed, per-node searches are independent, so this is an exact
// search over the constrained structure space (the same space BNFinder
// searches for this problem).
//
// Candidate parent sets are enumerated first (cheap), scored concurrently
// (each score is a full pass over the data — the hot loop of structure
// search), and then selected sequentially in enumeration order, so the
// chosen set matches the single-threaded search exactly, including its
// epsilon tie-breaks against the running best.
func bestParents(data [][]int, vars []Variable, node int, cfg LearnConfig) []int {
	best := []int(nil)
	bestScore := scoreFamily(data, vars, node, nil, cfg)
	maxP := cfg.maxParents()
	// Enumerate subsets of size 1..maxP in the DFS order the sequential
	// search visits them, keeping only those within the parent-config
	// budget.
	var cands [][]int
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) > 0 && parentConfigs(vars, chosen) <= cfg.maxParentConfigs() {
			cands = append(cands, append([]int(nil), chosen...))
		}
		if len(chosen) >= maxP {
			return
		}
		for c := start; c < node; c++ {
			rec(c+1, append(chosen, c))
		}
	}
	rec(0, nil)

	scores := parallel.Map(cfg.Workers, len(cands), func(k int) float64 {
		return scoreFamily(data, vars, node, cands[k], cfg)
	})
	for k, chosen := range cands {
		s := scores[k]
		if s > bestScore+1e-9 || (s > bestScore-1e-9 && less(chosen, best)) {
			bestScore = s
			best = chosen
		}
	}
	sort.Ints(best)
	return best
}

// less provides a deterministic tie-break: prefer fewer parents, then
// lexicographically smaller parent sets. A nil best is never preferred.
func less(a, b []int) bool {
	if b == nil {
		return false
	}
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func parentConfigs(vars []Variable, parents []int) int {
	q := 1
	for _, p := range parents {
		q *= vars[p].Arity
	}
	return q
}

// scoreFamily scores node with the given parent set against the data.
func scoreFamily(data [][]int, vars []Variable, node int, parents []int, cfg LearnConfig) float64 {
	r := vars[node].Arity
	q := parentConfigs(vars, parents)
	// Count N_jk = observations with parent config j and node value k.
	counts := make([][]float64, q)
	for j := range counts {
		counts[j] = make([]float64, r)
	}
	for _, row := range data {
		j := 0
		for _, p := range parents {
			j = j*vars[p].Arity + row[p]
		}
		counts[j][row[node]]++
	}
	switch cfg.Score {
	case ScoreBIC:
		return bicScore(counts, len(data), q, r)
	default:
		return bdeuScore(counts, cfg.ess(), q, r)
	}
}

// bdeuScore computes the BDeu family score with equivalent sample size ess.
func bdeuScore(counts [][]float64, ess float64, q, r int) float64 {
	alphaJ := ess / float64(q)
	alphaJK := ess / float64(q*r)
	score := 0.0
	for j := 0; j < q; j++ {
		nj := 0.0
		for k := 0; k < r; k++ {
			nj += counts[j][k]
		}
		score += lgamma(alphaJ) - lgamma(alphaJ+nj)
		for k := 0; k < r; k++ {
			score += lgamma(alphaJK+counts[j][k]) - lgamma(alphaJK)
		}
	}
	return score
}

// bicScore computes the BIC family score: log-likelihood minus the
// complexity penalty (q·(r−1) free parameters).
func bicScore(counts [][]float64, n, q, r int) float64 {
	ll := 0.0
	for j := 0; j < q; j++ {
		nj := 0.0
		for k := 0; k < r; k++ {
			nj += counts[j][k]
		}
		if nj == 0 {
			continue
		}
		for k := 0; k < r; k++ {
			if counts[j][k] > 0 {
				ll += counts[j][k] * math.Log(counts[j][k]/nj)
			}
		}
	}
	if n <= 0 {
		n = 1
	}
	penalty := 0.5 * math.Log(float64(n)) * float64(q*(r-1))
	return ll - penalty
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// fitCPT estimates the node's conditional probability table from the data
// using Dirichlet (add-pseudocount) smoothing. Counting shards the rows
// across workers into per-shard integer tensors merged in shard order;
// integer counts merge exactly, and pseudocount + count is an exact
// float64 for any realistic dataset, so the CPT is bit-identical for any
// worker count.
func fitCPT(data [][]int, vars []Variable, node int, parents []int, pseudocount float64, workers int) *CPT {
	r := vars[node].Arity
	parentCard := make([]int, len(parents))
	for i, p := range parents {
		parentCard[i] = vars[p].Arity
	}
	cpt := &CPT{ParentCard: parentCard, Arity: r}
	q := cpt.NumRows()

	counts := parallel.MapReduce(workers, len(data),
		func(s parallel.Shard) []int {
			c := make([]int, q*r)
			for _, obs := range data[s.Start:s.End] {
				j := 0
				for _, p := range parents {
					j = j*vars[p].Arity + obs[p]
				}
				c[j*r+obs[node]]++
			}
			return c
		},
		func(into, from []int) []int {
			for i, v := range from {
				into[i] += v
			}
			return into
		})
	if counts == nil {
		counts = make([]int, q*r)
	}

	cpt.Rows = make([][]float64, q)
	for j := range cpt.Rows {
		row := make([]float64, r)
		for k := range row {
			row[k] = pseudocount + float64(counts[j*r+k])
		}
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		for k := range row {
			row[k] /= sum
		}
		cpt.Rows[j] = row
	}
	return cpt
}

// NumVars returns the number of variables in the network.
func (n *Network) NumVars() int { return len(n.Vars) }

// Validate checks structural invariants: parents precede their children,
// CPT shapes match the declared arities, and every CPT row is a probability
// distribution.
func (n *Network) Validate() error {
	if len(n.Parents) != len(n.Vars) || len(n.CPTs) != len(n.Vars) {
		return fmt.Errorf("bayes: inconsistent network shape")
	}
	for i, parents := range n.Parents {
		for _, p := range parents {
			if p < 0 || p >= i {
				return fmt.Errorf("bayes: node %d has invalid parent %d (ordering constraint)", i, p)
			}
		}
		cpt := n.CPTs[i]
		if cpt == nil {
			return fmt.Errorf("bayes: node %d has no CPT", i)
		}
		if cpt.Arity != n.Vars[i].Arity {
			return fmt.Errorf("bayes: node %d CPT arity %d != %d", i, cpt.Arity, n.Vars[i].Arity)
		}
		if len(cpt.ParentCard) != len(parents) {
			return fmt.Errorf("bayes: node %d CPT has %d parents, want %d", i, len(cpt.ParentCard), len(parents))
		}
		for k, p := range parents {
			if cpt.ParentCard[k] != n.Vars[p].Arity {
				return fmt.Errorf("bayes: node %d parent %d cardinality mismatch", i, p)
			}
		}
		if len(cpt.Rows) != cpt.NumRows() {
			return fmt.Errorf("bayes: node %d CPT has %d rows, want %d", i, len(cpt.Rows), cpt.NumRows())
		}
		for j, row := range cpt.Rows {
			if len(row) != cpt.Arity {
				return fmt.Errorf("bayes: node %d CPT row %d has %d entries", i, j, len(row))
			}
			sum := 0.0
			for _, v := range row {
				if v < 0 || math.IsNaN(v) {
					return fmt.Errorf("bayes: node %d CPT row %d has invalid probability", i, j)
				}
				sum += v
			}
			if sum == 0 {
				// Distinguish the all-zero case: it cannot be renormalized
				// and sampling from it would be undefined.
				return fmt.Errorf("bayes: node %d CPT row %d is all zero", i, j)
			}
			if math.Abs(sum-1) > 1e-6 {
				return fmt.Errorf("bayes: node %d CPT row %d sums to %v", i, j, sum)
			}
		}
	}
	return nil
}

// renormalizeTolerance is the |sum-1| beyond which Renormalize rescales
// a row. It sits far above the few-ULP drift our own learn/encode/decode
// cycle produces — rows within it are left bit-untouched, so a
// save→load→save round trip stays byte-identical — and far below any
// drift a truncating writer or hand edit introduces.
const renormalizeTolerance = 1e-9

// Renormalize rescales CPT rows that do not sum to one (beyond
// renormalizeTolerance). Learned networks are normalized by
// construction; rows written by truncating tools or edited by hand may
// be arbitrarily far off, and renormalizing them at load time keeps
// sampling unbiased without per-draw correction. All-zero and invalid
// rows are rejected — there is no distribution to recover.
func (n *Network) Renormalize() error {
	for i, cpt := range n.CPTs {
		if cpt == nil {
			return fmt.Errorf("bayes: node %d has no CPT", i)
		}
		for j, row := range cpt.Rows {
			sum := 0.0
			for _, v := range row {
				if v < 0 || math.IsNaN(v) {
					return fmt.Errorf("bayes: node %d CPT row %d has invalid probability", i, j)
				}
				sum += v
			}
			if sum <= 0 {
				return fmt.Errorf("bayes: node %d CPT row %d is all zero", i, j)
			}
			if math.Abs(sum-1) > renormalizeTolerance {
				for k := range row {
					row[k] /= sum
				}
			}
		}
	}
	return nil
}

// Prob returns P(node = value | parent values) from the node's CPT. The
// parentValues map must contain all of the node's parents (extra entries
// are ignored).
func (n *Network) Prob(node, value int, parentValues map[int]int) float64 {
	cpt := n.CPTs[node]
	pv := make([]int, len(n.Parents[node]))
	for i, p := range n.Parents[node] {
		v, ok := parentValues[p]
		if !ok {
			panic(fmt.Sprintf("bayes: Prob missing parent %d of node %d", p, node))
		}
		pv[i] = v
	}
	return cpt.Rows[cpt.RowIndex(pv)][value]
}

// LogLikelihood returns the total log-likelihood of the data under the
// network.
func (n *Network) LogLikelihood(data [][]int) float64 {
	ll := 0.0
	assignment := make(map[int]int, len(n.Vars))
	for _, row := range data {
		for i, v := range row {
			assignment[i] = v
		}
		for i := range n.Vars {
			p := n.Prob(i, row[i], assignment)
			if p <= 0 {
				p = 1e-300
			}
			ll += math.Log(p)
		}
	}
	return ll
}

// Sample draws one complete assignment by forward (ancestral) sampling.
// Hot paths should prefer SampleInto with a reused buffer, or compile the
// network once with NewSampler.
func (n *Network) Sample(rng *rand.Rand) []int {
	return n.SampleInto(rng, make([]int, len(n.Vars)))
}

// SampleInto draws one complete assignment by forward (ancestral)
// sampling into buf, which must have length >= NumVars, and returns
// buf[:NumVars]. Parents precede their children, so the already-sampled
// prefix of buf supplies every parent value — no per-draw map or scratch
// slices are needed.
func (n *Network) SampleInto(rng *rand.Rand, buf []int) []int {
	for i := range n.Vars {
		cpt := n.CPTs[i]
		j := 0
		for k, p := range n.Parents[i] {
			j = j*cpt.ParentCard[k] + buf[p]
		}
		buf[i] = sampleRow(rng, cpt.Rows[j])
	}
	return buf[:len(n.Vars)]
}

// sampleRow draws a category from a probability row. A degenerate row —
// all zero, or summing below the drawn point from float drift — falls
// back to a uniform draw instead of silently returning the last
// category, which would bias generation toward high-index codes.
func sampleRow(rng *rand.Rand, probs []float64) int {
	x := rng.Float64()
	cum := 0.0
	for k, p := range probs {
		cum += p
		if x < cum {
			return k
		}
	}
	return rng.Intn(len(probs))
}

// Edges returns all directed edges (parent, child) of the network.
func (n *Network) Edges() [][2]int {
	var out [][2]int
	for child, parents := range n.Parents {
		for _, p := range parents {
			out = append(out, [2]int{p, child})
		}
	}
	return out
}
