package bayes

import (
	"fmt"
	"math"
	"math/rand"
)

// Sampler is a compiled forward sampler over a network: every node's CPT
// is flattened into per-row cumulative probability tables built once, so
// a draw is a walk over the nodes doing one row lookup and one cumulative
// scan each — no per-draw maps, factors or allocations. A Sampler is
// immutable after construction and safe to share across goroutines; each
// goroutine supplies its own rand.Rand and assignment buffer.
type Sampler struct {
	nodes []samplerNode
}

type samplerNode struct {
	// parents are the node's parent variable indices; under the network's
	// ordering constraint they always precede the node, so the assignment
	// buffer's prefix supplies every parent value.
	parents    []int
	parentCard []int
	arity      int
	// cum holds NumRows normalized cumulative rows of length arity each.
	cum []float64
}

// NewSampler compiles the network into a forward sampler. Rows are
// renormalized while building the cumulative tables, so CPTs carrying
// float drift sample without the bias a raw cumulative scan would give
// the last category.
func (n *Network) NewSampler() *Sampler {
	s := &Sampler{nodes: make([]samplerNode, len(n.Vars))}
	for i := range n.Vars {
		cpt := n.CPTs[i]
		node := samplerNode{
			parents:    n.Parents[i],
			parentCard: cpt.ParentCard,
			arity:      cpt.Arity,
			cum:        make([]float64, len(cpt.Rows)*cpt.Arity),
		}
		for j, row := range cpt.Rows {
			buildCumRow(node.cum[j*cpt.Arity:(j+1)*cpt.Arity], row)
		}
		s.nodes[i] = node
	}
	return s
}

// NumVars returns the number of variables the sampler assigns.
func (s *Sampler) NumVars() int { return len(s.nodes) }

// SampleInto draws one complete assignment by ancestral sampling into
// buf, which must have length >= NumVars, and returns buf[:NumVars].
func (s *Sampler) SampleInto(rng *rand.Rand, buf []int) []int {
	for i := range s.nodes {
		nd := &s.nodes[i]
		j := 0
		for k, p := range nd.parents {
			j = j*nd.parentCard[k] + buf[p]
		}
		buf[i] = cumSample(rng, nd.cum[j*nd.arity:(j+1)*nd.arity])
	}
	return buf[:len(s.nodes)]
}

// buildCumRow fills cum with the normalized cumulative distribution of
// row. All-zero rows are left all-zero; cumSample treats those (and any
// residual drift past the final cumulative value) as a uniform draw.
func buildCumRow(cum []float64, row []float64) {
	total := 0.0
	for _, p := range row {
		if p > 0 {
			total += p
		}
	}
	if total <= 0 || math.IsNaN(total) {
		for k := range cum {
			cum[k] = 0
		}
		return
	}
	c := 0.0
	for k, p := range row {
		if p > 0 {
			c += p / total
		}
		cum[k] = c
	}
}

// cumSample draws an index from a cumulative row. A degenerate row — all
// zero, or with cumulative mass below the drawn point from float drift —
// falls back to a uniform draw over the categories instead of silently
// returning the last one, which would bias generation toward high-index
// codes.
func cumSample(rng *rand.Rand, cum []float64) int {
	x := rng.Float64()
	for k, c := range cum {
		if x < c {
			return k
		}
	}
	return rng.Intn(len(cum))
}

// CondSampler is a compiled conditional sampler: it draws complete
// assignments from the exact posterior P(X | evidence). The variable-
// elimination work that conditioning requires runs ONCE at construction —
// eliminating variables from the last to the first records, for every
// unobserved variable v, the intermediate factor φ_v over v and a subset
// of earlier variables; P(x_v | x_<v, evidence) is then a normalized row
// of φ_v, precomputed here as cumulative tables. Sampling is therefore a
// forward pass identical in cost to unconditional sampling, instead of a
// full variable elimination per variable per draw.
//
// A CondSampler is immutable after construction and safe to share across
// goroutines.
type CondSampler struct {
	numVars int
	// fixed[v] is the evidence value of v, or -1 when unobserved.
	fixed []int
	// nodes holds the unobserved variables in ascending order.
	nodes []condNode
}

type condNode struct {
	v     int
	arity int
	// deps are the earlier unobserved variables φ_v depends on;
	// rowStride[k] is deps[k]'s stride in the row index.
	deps      []int
	rowStride []int
	// cum holds one normalized cumulative row of length arity per
	// configuration of deps.
	cum []float64
}

// NewCondSampler compiles the network, conditioned on the evidence, into
// a sampler over the posterior. Evidence maps variable index to observed
// category; it may mention any variables (influence flows both ways). It
// returns an error for invalid evidence or evidence with zero
// probability under the network.
func (n *Network) NewCondSampler(evidence map[int]int) (*CondSampler, error) {
	vars := sortedVars(evidence)
	for _, v := range vars {
		if ev := evidence[v]; v < 0 || v >= len(n.Vars) || ev < 0 || ev >= n.Vars[v].Arity {
			return nil, fmt.Errorf("bayes: invalid evidence %d=%d", v, ev)
		}
	}
	cs := &CondSampler{
		numVars: len(n.Vars),
		fixed:   make([]int, len(n.Vars)),
	}
	for v := range cs.fixed {
		cs.fixed[v] = -1
	}
	for _, v := range vars {
		cs.fixed[v] = evidence[v]
	}

	// One backward variable-elimination pass. Eliminating in descending
	// index order under the left-to-right ordering constraint guarantees
	// that when v is eliminated every remaining factor mentions only
	// variables <= v, so the product factor φ_v scopes v plus earlier
	// variables only — exactly what forward sampling needs.
	factors := make([]*Factor, 0, len(n.Vars))
	for i := range n.Vars {
		factors = append(factors, n.nodeFactor(i).Reduce(evidence))
	}
	for v := len(n.Vars) - 1; v >= 0; v-- {
		if cs.fixed[v] >= 0 {
			continue
		}
		var involved, rest []*Factor
		for _, f := range factors {
			if mentions(f, v) {
				involved = append(involved, f)
			} else {
				rest = append(rest, f)
			}
		}
		if len(involved) == 0 {
			// Unreachable: v's own node factor always mentions it.
			continue
		}
		prod := involved[0]
		for _, f := range involved[1:] {
			prod = Product(prod, f)
		}
		cs.nodes = append(cs.nodes, compileCondNode(v, n.Vars[v].Arity, prod))
		factors = append(rest, prod.SumOut(v))
	}
	// What remains are variable-free constants whose product is the
	// evidence probability; reject impossible evidence up front rather
	// than sampling from all-zero rows.
	pe := 1.0
	for _, f := range factors {
		pe *= f.Sum()
	}
	if pe <= 0 || math.IsNaN(pe) {
		return nil, fmt.Errorf("bayes: evidence has zero probability")
	}
	// nodes were recorded in elimination (descending) order; sampling
	// walks them ascending.
	for i, j := 0, len(cs.nodes)-1; i < j; i, j = i+1, j-1 {
		cs.nodes[i], cs.nodes[j] = cs.nodes[j], cs.nodes[i]
	}
	return cs, nil
}

// compileCondNode turns the elimination factor φ (over v and earlier
// variables) into dense cumulative rows indexed by the dep configuration.
func compileCondNode(v, arity int, phi *Factor) condNode {
	vi := -1
	for i, fv := range phi.Vars {
		if fv == v {
			vi = i
			break
		}
	}
	// Strides of each factor position in phi.Values (last varies fastest).
	phiStride := make([]int, len(phi.Vars))
	st := 1
	for i := len(phi.Vars) - 1; i >= 0; i-- {
		phiStride[i] = st
		st *= phi.Card[i]
	}
	nd := condNode{v: v, arity: arity}
	rows := 1
	for i, fv := range phi.Vars {
		if i == vi {
			continue
		}
		nd.deps = append(nd.deps, fv)
		rows *= phi.Card[i]
	}
	// Row-index strides over deps in their phi order (last varies fastest).
	nd.rowStride = make([]int, len(nd.deps))
	st = 1
	k := len(nd.deps) - 1
	for i := len(phi.Vars) - 1; i >= 0; i-- {
		if i == vi {
			continue
		}
		nd.rowStride[k] = st
		st *= phi.Card[i]
		k--
	}
	nd.cum = make([]float64, rows*arity)
	row := make([]float64, arity)
	assign := make([]int, len(nd.deps))
	for r := 0; r < rows; r++ {
		// Decode the row index into a dep assignment, then locate the
		// factor entries for each value of v.
		rem := r
		for i := range assign {
			assign[i] = rem / nd.rowStride[i]
			rem %= nd.rowStride[i]
		}
		base := 0
		k := 0
		for i := range phi.Vars {
			if i == vi {
				continue
			}
			base += assign[k] * phiStride[i]
			k++
		}
		for c := 0; c < arity; c++ {
			row[c] = phi.Values[base+c*phiStride[vi]]
		}
		buildCumRow(nd.cum[r*arity:(r+1)*arity], row)
	}
	return nd
}

// NumVars returns the number of variables the sampler assigns.
func (cs *CondSampler) NumVars() int { return cs.numVars }

// SampleInto draws one complete assignment from P(X | evidence) into buf,
// which must have length >= NumVars, and returns buf[:NumVars]. Observed
// variables are set to their evidence values.
func (cs *CondSampler) SampleInto(rng *rand.Rand, buf []int) []int {
	for v, val := range cs.fixed {
		if val >= 0 {
			buf[v] = val
		}
	}
	for i := range cs.nodes {
		nd := &cs.nodes[i]
		r := 0
		for k, d := range nd.deps {
			r += buf[d] * nd.rowStride[k]
		}
		buf[nd.v] = cumSample(rng, nd.cum[r*nd.arity:(r+1)*nd.arity])
	}
	return buf[:cs.numVars]
}
