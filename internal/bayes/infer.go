package bayes

import (
	"fmt"
	"maps"
	"math"
	"math/rand"
	"sort"
)

// sortedVars returns the evidence variable indices in ascending order.
// Validation walks use it so that which error surfaces first does not
// depend on map iteration order.
func sortedVars(evidence map[int]int) []int {
	vars := make([]int, 0, len(evidence))
	for v := range evidence {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	return vars
}

// nodeFactor builds the factor representation of node i's CPT: a factor
// over (parents..., i).
func (n *Network) nodeFactor(i int) *Factor {
	vars := append(append([]int(nil), n.Parents[i]...), i)
	card := make([]int, len(vars))
	for k, v := range vars {
		card[k] = n.Vars[v].Arity
	}
	f := NewFactor(vars, card)
	cpt := n.CPTs[i]
	assign := make([]int, len(vars))
	for idx := range f.Values {
		f.assignment(idx, assign)
		j := 0
		for k := range n.Parents[i] {
			j = j*cpt.ParentCard[k] + assign[k]
		}
		f.Values[idx] = cpt.Rows[j][assign[len(vars)-1]]
	}
	return f
}

// Query computes the exact posterior distribution P(target | evidence) by
// variable elimination. Evidence maps variable index to observed category.
// The returned slice has one probability per category of the target.
//
// Because probabilistic influence flows both ways through the graph, the
// evidence may mention variables before or after the target — this is the
// "evidential reasoning" the paper relies on when an analyst conditions a
// later segment and watches earlier segments change (Fig. 1b→1c).
func (n *Network) Query(target int, evidence map[int]int) ([]float64, error) {
	if target < 0 || target >= len(n.Vars) {
		return nil, fmt.Errorf("bayes: target %d out of range", target)
	}
	if ev, ok := evidence[target]; ok {
		// The target is observed: a point mass.
		out := make([]float64, n.Vars[target].Arity)
		if ev < 0 || ev >= len(out) {
			return nil, fmt.Errorf("bayes: evidence %d out of range for variable %d", ev, target)
		}
		out[ev] = 1
		return out, nil
	}
	for _, v := range sortedVars(evidence) {
		if v < 0 || v >= len(n.Vars) {
			return nil, fmt.Errorf("bayes: evidence variable %d out of range", v)
		}
		if ev := evidence[v]; ev < 0 || ev >= n.Vars[v].Arity {
			return nil, fmt.Errorf("bayes: evidence value %d out of range for variable %d", ev, v)
		}
	}

	// Build all node factors, reduced by the evidence.
	factors := make([]*Factor, 0, len(n.Vars))
	for i := range n.Vars {
		factors = append(factors, n.nodeFactor(i).Reduce(evidence))
	}
	// Eliminate every hidden variable except the target, in reverse index
	// order (children before parents keeps intermediate factors small under
	// the left-to-right ordering constraint).
	for v := len(n.Vars) - 1; v >= 0; v-- {
		if v == target {
			continue
		}
		if _, observed := evidence[v]; observed {
			continue
		}
		var involved []*Factor
		var rest []*Factor
		for _, f := range factors {
			if mentions(f, v) {
				involved = append(involved, f)
			} else {
				rest = append(rest, f)
			}
		}
		if len(involved) == 0 {
			continue
		}
		prod := involved[0]
		for _, f := range involved[1:] {
			prod = Product(prod, f)
		}
		factors = append(rest, prod.SumOut(v))
	}
	// Multiply what remains (all factors now mention only the target or are
	// constants).
	result := NewFactor([]int{target}, []int{n.Vars[target].Arity})
	for i := range result.Values {
		result.Values[i] = 1
	}
	for _, f := range factors {
		result = Product(result, f)
	}
	// The result may mention only the target; normalize to a distribution.
	result = marginalTo(result, target)
	if !result.Normalize() {
		return nil, fmt.Errorf("bayes: evidence has zero probability")
	}
	return append([]float64(nil), result.Values...), nil
}

func mentions(f *Factor, v int) bool {
	for _, fv := range f.Vars {
		if fv == v {
			return true
		}
	}
	return false
}

// marginalTo sums out every variable except keep.
func marginalTo(f *Factor, keep int) *Factor {
	out := f
	for _, v := range f.Vars {
		if v != keep {
			out = out.SumOut(v)
		}
	}
	return out
}

// Posteriors returns the posterior distribution of every variable given the
// evidence: the data behind the paper's conditional probability browser
// (Fig. 1b/c and Fig. 7b, 9b, 10b).
func (n *Network) Posteriors(evidence map[int]int) ([][]float64, error) {
	out := make([][]float64, len(n.Vars))
	for i := range n.Vars {
		dist, err := n.Query(i, evidence)
		if err != nil {
			return nil, err
		}
		out[i] = dist
	}
	return out, nil
}

// ProbEvidence returns the probability of the evidence configuration,
// P(evidence), computed by variable elimination.
func (n *Network) ProbEvidence(evidence map[int]int) (float64, error) {
	for _, v := range sortedVars(evidence) {
		if ev := evidence[v]; v < 0 || v >= len(n.Vars) || ev < 0 || ev >= n.Vars[v].Arity {
			return 0, fmt.Errorf("bayes: invalid evidence %d=%d", v, ev)
		}
	}
	factors := make([]*Factor, 0, len(n.Vars))
	for i := range n.Vars {
		factors = append(factors, n.nodeFactor(i).Reduce(evidence))
	}
	for v := len(n.Vars) - 1; v >= 0; v-- {
		if _, observed := evidence[v]; observed {
			continue
		}
		var involved, rest []*Factor
		for _, f := range factors {
			if mentions(f, v) {
				involved = append(involved, f)
			} else {
				rest = append(rest, f)
			}
		}
		if len(involved) == 0 {
			continue
		}
		prod := involved[0]
		for _, f := range involved[1:] {
			prod = Product(prod, f)
		}
		factors = append(rest, prod.SumOut(v))
	}
	p := 1.0
	for _, f := range factors {
		p *= f.Sum()
	}
	return p, nil
}

// SampleConditional draws one complete assignment from the posterior
// distribution P(X | evidence): each unobserved variable is sampled from
// its exact conditional given the evidence and the values sampled so
// far. This is exact (not importance-weighted) and is how the model
// generates candidate addresses constrained to particular segment values
// (§4.4, §5.5).
//
// It compiles a CondSampler per call; callers drawing many samples under
// the same evidence should build the sampler once with NewCondSampler —
// the variable elimination the conditioning requires then runs once per
// evidence set instead of once per variable per draw.
func (n *Network) SampleConditional(rng *rand.Rand, evidence map[int]int) ([]int, error) {
	cs, err := n.NewCondSampler(evidence)
	if err != nil {
		return nil, err
	}
	return cs.SampleInto(rng, make([]int, len(n.Vars))), nil
}

// MutualInformation computes the mutual information (in bits) between two
// variables under the joint distribution encoded by the network, optionally
// conditioned on evidence. It is a convenience used to rank dependencies
// when rendering the BN graph.
func (n *Network) MutualInformation(a, b int, evidence map[int]int) (float64, error) {
	if a == b {
		return 0, fmt.Errorf("bayes: mutual information of a variable with itself")
	}
	pa, err := n.Query(a, evidence)
	if err != nil {
		return 0, err
	}
	mi := 0.0
	for va := 0; va < n.Vars[a].Arity; va++ {
		if pa[va] <= 0 {
			continue
		}
		ev := make(map[int]int, len(evidence)+1)
		maps.Copy(ev, evidence)
		ev[a] = va
		pbGivenA, err := n.Query(b, ev)
		if err != nil {
			return 0, err
		}
		pb, err := n.Query(b, evidence)
		if err != nil {
			return 0, err
		}
		for vb := 0; vb < n.Vars[b].Arity; vb++ {
			if pbGivenA[vb] <= 0 || pb[vb] <= 0 {
				continue
			}
			joint := pa[va] * pbGivenA[vb]
			mi += joint * math.Log2(pbGivenA[vb]/pb[vb])
		}
	}
	return mi, nil
}
