package bayes

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFactorIndexRoundTrip(t *testing.T) {
	f := NewFactor([]int{0, 1, 2}, []int{2, 3, 4})
	if len(f.Values) != 24 {
		t.Fatalf("size = %d", len(f.Values))
	}
	assign := make([]int, 3)
	for idx := range f.Values {
		f.assignment(idx, assign)
		if got := f.index(assign); got != idx {
			t.Fatalf("index round trip: %d -> %v -> %d", idx, assign, got)
		}
	}
}

func TestFactorAtSet(t *testing.T) {
	f := NewFactor([]int{5, 7}, []int{2, 2})
	f.Set([]int{1, 0}, 0.25)
	if !approx(f.At([]int{1, 0}), 0.25) {
		t.Error("At/Set mismatch")
	}
	if f.Sum() != 0.25 {
		t.Errorf("Sum = %v", f.Sum())
	}
}

func TestFactorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatched lengths": func() { NewFactor([]int{0}, []int{2, 2}) },
		"zero cardinality":   func() { NewFactor([]int{0}, []int{0}) },
		"bad assignment":     func() { NewFactor([]int{0}, []int{2}).At([]int{5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProduct(t *testing.T) {
	// P(A) * P(B|A) should give the joint.
	pa := NewFactor([]int{0}, []int{2})
	pa.Set([]int{0}, 0.6)
	pa.Set([]int{1}, 0.4)
	pba := NewFactor([]int{0, 1}, []int{2, 2})
	pba.Set([]int{0, 0}, 0.9)
	pba.Set([]int{0, 1}, 0.1)
	pba.Set([]int{1, 0}, 0.2)
	pba.Set([]int{1, 1}, 0.8)
	joint := Product(pa, pba)
	if !approx(joint.At([]int{0, 0}), 0.54) || !approx(joint.At([]int{1, 1}), 0.32) {
		t.Errorf("joint wrong: %v", joint.Values)
	}
	if !approx(joint.Sum(), 1) {
		t.Errorf("joint sum = %v", joint.Sum())
	}
	// Product with a factor over disjoint variables behaves like an outer
	// product.
	pc := NewFactor([]int{2}, []int{3})
	for i := 0; i < 3; i++ {
		pc.Set([]int{i}, 1.0/3)
	}
	outer := Product(pa, pc)
	if len(outer.Values) != 6 || !approx(outer.Sum(), 1) {
		t.Errorf("outer product wrong: %v", outer.Values)
	}
}

func TestSumOut(t *testing.T) {
	joint := NewFactor([]int{0, 1}, []int{2, 2})
	joint.Set([]int{0, 0}, 0.54)
	joint.Set([]int{0, 1}, 0.06)
	joint.Set([]int{1, 0}, 0.08)
	joint.Set([]int{1, 1}, 0.32)
	pb := joint.SumOut(0)
	if len(pb.Vars) != 1 || pb.Vars[0] != 1 {
		t.Fatalf("vars = %v", pb.Vars)
	}
	if !approx(pb.At([]int{0}), 0.62) || !approx(pb.At([]int{1}), 0.38) {
		t.Errorf("marginal = %v", pb.Values)
	}
	// Summing out an absent variable clones.
	clone := joint.SumOut(9)
	if !approx(clone.Sum(), joint.Sum()) || len(clone.Vars) != 2 {
		t.Error("SumOut of absent variable should clone")
	}
}

func TestReduce(t *testing.T) {
	joint := NewFactor([]int{0, 1}, []int{2, 2})
	joint.Set([]int{0, 0}, 0.54)
	joint.Set([]int{0, 1}, 0.06)
	joint.Set([]int{1, 0}, 0.08)
	joint.Set([]int{1, 1}, 0.32)
	reduced := joint.Reduce(map[int]int{0: 1})
	if len(reduced.Vars) != 1 || reduced.Vars[0] != 1 {
		t.Fatalf("vars = %v", reduced.Vars)
	}
	if !approx(reduced.At([]int{0}), 0.08) || !approx(reduced.At([]int{1}), 0.32) {
		t.Errorf("reduced = %v", reduced.Values)
	}
	// Evidence on an unrelated variable leaves the factor unchanged.
	same := joint.Reduce(map[int]int{7: 0})
	if !approx(same.Sum(), joint.Sum()) {
		t.Error("unrelated evidence should not change the factor")
	}
}

func TestNormalize(t *testing.T) {
	f := NewFactor([]int{0}, []int{2})
	if f.Normalize() {
		t.Error("all-zero factor cannot normalize")
	}
	f.Set([]int{0}, 3)
	f.Set([]int{1}, 1)
	if !f.Normalize() {
		t.Fatal("normalize failed")
	}
	if !approx(f.At([]int{0}), 0.75) {
		t.Errorf("normalized = %v", f.Values)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFactor([]int{0}, []int{2})
	f.Set([]int{0}, 1)
	c := f.Clone()
	c.Set([]int{0}, 5)
	if f.At([]int{0}) != 1 {
		t.Error("Clone shares storage")
	}
}
