package admission

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic bucket math.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func TestDisabledConfigReturnsNil(t *testing.T) {
	if c := New(Config{}); c != nil {
		t.Fatalf("New(zero Config) = %v, want nil", c)
	}
	// Every gate on the nil controller admits and is callable.
	var c *Controller
	if d := c.AllowRequest("a"); !d.OK {
		t.Errorf("nil AllowRequest = %+v", d)
	}
	if d := c.ChargeGenerate("a", 1<<30); !d.OK {
		t.Errorf("nil ChargeGenerate = %+v", d)
	}
	release, d := c.AcquireSlot(context.Background(), "a")
	if !d.OK {
		t.Errorf("nil AcquireSlot = %+v", d)
	}
	release()
	release, ok := c.WaitSlot(context.Background(), "a")
	if !ok {
		t.Error("nil WaitSlot refused")
	}
	release()
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil Stats = %+v", st)
	}
}

func TestRequestRateBucket(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{RequestRate: 2, RequestBurst: 2, Now: clk.Now})

	// The bucket starts full: burst admits back to back.
	for i := 0; i < 2; i++ {
		if d := c.AllowRequest("t"); !d.OK {
			t.Fatalf("request %d shed: %+v", i, d)
		}
	}
	d := c.AllowRequest("t")
	if d.OK || d.Reason != ReasonRate {
		t.Fatalf("over-burst request = %+v, want rate shed", d)
	}
	if d.RetryAfter <= 0 || d.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s] at 2 req/s", d.RetryAfter)
	}

	// Tokens refill at the configured rate.
	clk.Advance(500 * time.Millisecond) // one token at 2/s
	if d := c.AllowRequest("t"); !d.OK {
		t.Fatalf("after refill: %+v", d)
	}
	if d := c.AllowRequest("t"); d.OK {
		t.Fatal("second request after half-second refill admitted, want shed")
	}

	// Tenants are isolated: a fresh tenant has a full bucket.
	if d := c.AllowRequest("other"); !d.OK {
		t.Fatalf("fresh tenant shed: %+v", d)
	}

	st := c.Stats()
	if st.Admitted != 4 || st.ShedRate != 2 {
		t.Errorf("stats = %+v, want 4 admitted / 2 rate sheds", st)
	}
}

func TestGenerateBudgetLends(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{GenBudget: 1000, GenBurst: 1000, Now: clk.Now})

	// A charge far beyond burst is admitted (lending) and drives the
	// tenant into debt.
	if d := c.ChargeGenerate("t", 5000); !d.OK {
		t.Fatalf("first charge shed: %+v", d)
	}
	d := c.ChargeGenerate("t", 1)
	if d.OK || d.Reason != ReasonBudget {
		t.Fatalf("charge while in debt = %+v, want budget shed", d)
	}
	// Debt is 4000 tokens at 1000/s: cleared in 4s, not before.
	if d.RetryAfter < 3*time.Second || d.RetryAfter > 5*time.Second {
		t.Fatalf("RetryAfter = %v, want ~4s", d.RetryAfter)
	}
	clk.Advance(2 * time.Second)
	if d := c.ChargeGenerate("t", 1); d.OK {
		t.Fatal("charge with debt half repaid admitted, want shed")
	}
	clk.Advance(2500 * time.Millisecond)
	if d := c.ChargeGenerate("t", 100); !d.OK {
		t.Fatalf("charge after debt repaid shed: %+v", d)
	}
	if st := c.Stats(); st.GenCharged != 5100 {
		t.Errorf("GenCharged = %d, want 5100", st.GenCharged)
	}
}

func TestSlotsQueueAndShed(t *testing.T) {
	c := New(Config{TenantSlots: 1, QueueDepth: 1, MaxWait: 50 * time.Millisecond})
	ctx := context.Background()

	release1, d := c.AcquireSlot(ctx, "t")
	if !d.OK {
		t.Fatalf("first slot: %+v", d)
	}

	// Second acquire queues; it must get the slot once released.
	got := make(chan Decision, 1)
	var release2 func()
	go func() {
		var d Decision
		release2, d = c.AcquireSlot(ctx, "t")
		got <- d
	}()
	// Wait until the waiter is queued so the third acquire sees a full
	// queue deterministically.
	deadline := time.Now().Add(time.Second)
	for c.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third acquire: queue (depth 1) is full — immediate shed.
	_, d = c.AcquireSlot(ctx, "t")
	if d.OK || d.Reason != ReasonQueueFull {
		t.Fatalf("over-queue acquire = %+v, want queue_full shed", d)
	}
	if d.RetryAfter <= 0 {
		t.Fatalf("queue_full RetryAfter = %v, want positive", d.RetryAfter)
	}

	release1()
	if d := <-got; !d.OK {
		t.Fatalf("queued waiter = %+v, want admitted", d)
	}
	release2()

	// With the slot free again, an acquire succeeds immediately.
	release3, d := c.AcquireSlot(ctx, "t")
	if !d.OK {
		t.Fatalf("post-release acquire: %+v", d)
	}
	release3()

	st := c.Stats()
	if st.ShedQueueFull != 1 {
		t.Errorf("ShedQueueFull = %d, want 1", st.ShedQueueFull)
	}
	if st.SlotsInUse != 0 || st.QueueDepth != 0 {
		t.Errorf("slots/queue not drained: %+v", st)
	}
}

func TestSlotDeadlineShed(t *testing.T) {
	c := New(Config{TenantSlots: 1, MaxWait: 20 * time.Millisecond})
	release, d := c.AcquireSlot(context.Background(), "t")
	if !d.OK {
		t.Fatalf("first slot: %+v", d)
	}
	defer release()

	start := time.Now()
	_, d = c.AcquireSlot(context.Background(), "t")
	if d.OK || d.Reason != ReasonDeadline {
		t.Fatalf("deadline acquire = %+v, want deadline shed", d)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline shed took %v, want ~MaxWait", elapsed)
	}
	if st := c.Stats(); st.ShedDeadline != 1 {
		t.Errorf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
}

func TestWaitSlotHonorsContext(t *testing.T) {
	c := New(Config{TenantSlots: 1})
	release, d := c.AcquireSlot(context.Background(), "t")
	if !d.OK {
		t.Fatalf("first slot: %+v", d)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := c.WaitSlot(ctx, "t")
		done <- ok
	}()
	cancel()
	if ok := <-done; ok {
		t.Fatal("WaitSlot admitted after context cancel")
	}
	release()

	// With the slot free, WaitSlot admits immediately.
	rel, ok := c.WaitSlot(context.Background(), "t")
	if !ok {
		t.Fatal("WaitSlot refused a free slot")
	}
	rel()
}

func TestTenantIsolationAcrossSlots(t *testing.T) {
	c := New(Config{TenantSlots: 1, MaxWait: 20 * time.Millisecond})
	release, d := c.AcquireSlot(context.Background(), "greedy")
	if !d.OK {
		t.Fatalf("greedy slot: %+v", d)
	}
	defer release()

	// The greedy tenant saturating its slot must not delay another
	// tenant's acquire at all.
	start := time.Now()
	rel, d := c.AcquireSlot(context.Background(), "polite")
	if !d.OK {
		t.Fatalf("polite tenant shed: %+v", d)
	}
	rel()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("polite acquire took %v", elapsed)
	}
}

func TestIdleTenantEviction(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{RequestRate: 1, IdleTTL: time.Minute, Now: clk.Now})
	c.AllowRequest("a")
	c.AllowRequest("b")
	if st := c.Stats(); st.Tenants != 2 {
		t.Fatalf("tenants = %d, want 2", st.Tenants)
	}

	// Past the TTL, "a" stays hot while "b" idles; the sweep (triggered
	// by a new tenant's creation) evicts only "b".
	clk.Advance(61 * time.Second)
	c.AllowRequest("a")
	clk.Advance(61 * time.Second)
	c.AllowRequest("fresh")
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no evictions after TTL: %+v", st)
	}
	c.mu.RLock()
	_, aAlive := c.tenants["a"]
	_, bAlive := c.tenants["b"]
	c.mu.RUnlock()
	if bAlive {
		t.Error("idle tenant b survived the sweep")
	}
	if !aAlive {
		// a's last activity was 61s before the sweep — also evictable.
		// What matters is that eviction resets its bucket rather than
		// leaking state; re-admit must work.
		if d := c.AllowRequest("a"); !d.OK {
			t.Errorf("re-created tenant shed: %+v", d)
		}
	}
}

func TestBusyTenantSurvivesSweep(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{TenantSlots: 1, IdleTTL: time.Minute, Now: clk.Now})
	release, d := c.AcquireSlot(context.Background(), "busy")
	if !d.OK {
		t.Fatalf("slot: %+v", d)
	}
	clk.Advance(2 * time.Minute)
	c.AllowRequest("fresh") // triggers a sweep
	c.mu.RLock()
	_, alive := c.tenants["busy"]
	c.mu.RUnlock()
	if !alive {
		t.Fatal("tenant holding a slot was evicted")
	}
	release()
}

func TestMaxTenantsForcesSweep(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{RequestRate: 1, MaxTenants: 2, IdleTTL: time.Minute, Now: clk.Now})
	c.AllowRequest("a")
	c.AllowRequest("b")
	clk.Advance(2 * time.Minute)
	c.AllowRequest("c") // map at cap: sweep runs, a and b are stale
	st := c.Stats()
	if st.Tenants != 1 || st.Evicted != 2 {
		t.Errorf("after forced sweep: %+v, want 1 tenant / 2 evicted", st)
	}
}

func TestConcurrentGatesRaceClean(t *testing.T) {
	c := New(Config{
		RequestRate: 1000, GenBudget: 1_000_000,
		TenantSlots: 2, QueueDepth: 4, MaxWait: 10 * time.Millisecond,
	})
	tenants := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := tenants[g%len(tenants)]
			ctx := context.Background()
			for i := 0; i < 200; i++ {
				c.AllowRequest(key)
				c.ChargeGenerate(key, 100)
				if release, d := c.AcquireSlot(ctx, key); d.OK {
					release()
				}
				if release, ok := c.WaitSlot(ctx, key); ok {
					release()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.SlotsInUse != 0 || st.QueueDepth != 0 {
		t.Errorf("slots/queue leaked: %+v", st)
	}
	if st.Shed() == 0 && st.Admitted == 0 {
		t.Error("no decisions recorded")
	}
}
