// Package admission implements per-tenant admission control for the
// serving plane: token-bucket limits on request rate and generation
// budget (candidates per second, so one huge generate request spends
// budget like a thousand small ones), bounded per-tenant concurrency
// slots with deadline-aware queueing and load shedding, and TTL
// eviction of idle tenants.
//
// The package is stdlib-only, like internal/obs, and is importable only
// from the serving plane (enforced by the layers analyzer — see
// docs/layers.json "admission-only-at-serving-plane"). It knows nothing
// about HTTP: the serving plane maps Decision values onto 429 responses
// with Retry-After, and scrapes Stats into eip_admission_* metrics.
//
// Shed ladder (DESIGN.md "Admission control"): a request is refused at
// the first gate it fails —
//
//  1. request rate   — the tenant's request token bucket is empty
//  2. generation budget — the tenant is still repaying candidate debt
//  3. queue full     — the tenant's slot-wait queue is at QueueDepth
//  4. deadline       — no slot freed up within MaxWait
//
// Every refusal carries a RetryAfter hint. Nothing in this package
// blocks unboundedly: slot waits are bounded by MaxWait (AcquireSlot)
// or by the request context (WaitSlot, used by stream producers that
// are already admitted and mid-response).
package admission

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults used when Config fields are zero.
const (
	// DefaultQueueDepth is how many slot waiters one tenant may have
	// queued beyond its running slots before further requests shed.
	DefaultQueueDepth = 32
	// DefaultMaxWait bounds how long an admission-gated request waits
	// for a tenant slot before shedding.
	DefaultMaxWait = 2 * time.Second
	// DefaultIdleTTL is how long an idle tenant's limiter state is kept.
	DefaultIdleTTL = 5 * time.Minute
	// DefaultMaxTenants softly caps the tenant map; reaching it forces
	// an eviction sweep on the next new tenant.
	DefaultMaxTenants = 16384
)

// Config configures a Controller. The zero value disables every gate
// (New returns nil, and all Controller methods are nil-receiver-safe).
type Config struct {
	// RequestRate is the per-tenant steady-state request rate
	// (requests/second) admitted to rate-limited routes. Zero or
	// negative disables request-rate limiting.
	RequestRate float64
	// RequestBurst is the request bucket capacity (how many requests a
	// tenant may issue back to back after idling). Zero means
	// max(1, ceil(2*RequestRate)).
	RequestBurst int
	// GenBudget is the per-tenant generation budget in candidates per
	// second. The budget bucket lends: a request is admitted whenever
	// the tenant is not in debt, and its full candidate count is then
	// charged — possibly driving the balance negative — so one
	// count=10M request costs the same budget as a thousand count=10k
	// ones, paid off over the seconds that follow. Zero or negative
	// disables budget accounting.
	GenBudget float64
	// GenBurst is the budget bucket capacity in candidates. Zero means
	// ceil(GenBudget) (one second of budget).
	GenBurst int
	// TenantSlots is how many generation streams one tenant may run
	// concurrently. Zero or negative disables slot gating.
	TenantSlots int
	// QueueDepth bounds how many slot waiters one tenant may queue
	// beyond its running slots; requests beyond it shed immediately.
	// Zero means DefaultQueueDepth.
	QueueDepth int
	// MaxWait bounds how long an admission-gated request waits for a
	// slot before shedding. Zero means DefaultMaxWait.
	MaxWait time.Duration
	// IdleTTL is how long an idle tenant's state (bucket balances, slot
	// pool) survives before eviction. Zero means DefaultIdleTTL.
	IdleTTL time.Duration
	// MaxTenants softly caps the tenant map: reaching it triggers an
	// immediate eviction sweep, but a sweep that frees nothing (every
	// tenant active) still admits the new tenant — correctness over a
	// hard cap. Zero means DefaultMaxTenants.
	MaxTenants int
	// Now overrides the clock for tests. Nil means time.Now.
	Now func() time.Time
}

// Enabled reports whether the configuration turns on any gate.
func (c Config) Enabled() bool {
	return c.RequestRate > 0 || c.GenBudget > 0 || c.TenantSlots > 0
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return DefaultQueueDepth
	}
	return c.QueueDepth
}

func (c Config) maxWait() time.Duration {
	if c.MaxWait <= 0 {
		return DefaultMaxWait
	}
	return c.MaxWait
}

func (c Config) idleTTL() time.Duration {
	if c.IdleTTL <= 0 {
		return DefaultIdleTTL
	}
	return c.IdleTTL
}

func (c Config) maxTenants() int {
	if c.MaxTenants <= 0 {
		return DefaultMaxTenants
	}
	return c.MaxTenants
}

func (c Config) requestBurst() float64 {
	if c.RequestBurst > 0 {
		return float64(c.RequestBurst)
	}
	b := 2 * c.RequestRate
	if b < 1 {
		b = 1
	}
	return b
}

func (c Config) genBurst() float64 {
	if c.GenBurst > 0 {
		return float64(c.GenBurst)
	}
	if c.GenBudget < 1 {
		return 1
	}
	return c.GenBudget
}

// Shed reasons carried by refusing Decisions. The strings are stable:
// they label the eip_admission_shed_total metric and appear in error
// envelope messages.
const (
	ReasonRate      = "rate"       // request token bucket empty
	ReasonBudget    = "budget"     // generation budget in debt
	ReasonQueueFull = "queue_full" // tenant slot-wait queue at capacity
	ReasonDeadline  = "deadline"   // no slot freed within MaxWait
)

// Decision is the outcome of one admission gate.
type Decision struct {
	// OK is true when the request may proceed.
	OK bool
	// Reason is the shed reason (Reason* constants) when OK is false.
	Reason string
	// RetryAfter is the earliest time the same request could plausibly
	// succeed, for the Retry-After response header. Zero when OK.
	RetryAfter time.Duration
}

// admitted is the Decision every gate returns on a nil Controller.
var admitted = Decision{OK: true}

// bucket is a token bucket over a monotonic-enough clock. rate<=0 means
// the bucket is disabled and always admits. Guarded by the owning
// tenant's mutex.
type bucket struct {
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64 // current balance; negative = debt (lending buckets)
	last   time.Time
}

// refill advances the bucket to now.
func (b *bucket) refill(now time.Time) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// take admits when n whole tokens are available and spends them.
func (b *bucket) take(now time.Time, n float64) (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.refill(now)
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	return false, durationFor(n-b.tokens, b.rate)
}

// lend admits whenever the bucket is not in debt and charges the full
// n, letting the balance go negative: large charges are paid off by
// future refills instead of being unadmittable outright.
func (b *bucket) lend(now time.Time, n float64) (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	b.refill(now)
	if b.tokens < 0 {
		return false, durationFor(-b.tokens, b.rate)
	}
	b.tokens -= n
	return true, 0
}

// durationFor converts a token deficit at a refill rate into a wait.
func durationFor(tokens, rate float64) time.Duration {
	d := time.Duration(tokens / rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// tenant is one tenant's limiter state. Buckets are mutex-guarded; the
// slot pool is a channel semaphore with an atomically counted bounded
// wait queue.
type tenant struct {
	mu  sync.Mutex
	req bucket
	gen bucket

	// lastSeen is the UnixNano of the tenant's latest gate check; the
	// eviction sweep compares it against the idle cutoff.
	lastSeen atomic.Int64

	// slots holds one token per running stream (nil when slot gating is
	// disabled); waiters counts goroutines queued for a slot, bounded
	// by QueueDepth for AcquireSlot callers.
	slots   chan struct{}
	waiters atomic.Int32
}

// busy reports whether the tenant holds slots or has waiters — such a
// tenant is never evicted, so a release never races a teardown.
func (t *tenant) busy() bool {
	return (t.slots != nil && len(t.slots) > 0) || t.waiters.Load() > 0
}

// Controller is the admission-control state over all tenants. A nil
// Controller admits everything (every method is nil-receiver-safe), so
// callers hold one field and never branch on "is admission on".
type Controller struct {
	cfg Config
	now func() time.Time

	mu        sync.RWMutex
	tenants   map[string]*tenant
	lastSweep time.Time

	// Monotonic counters for Stats (scraped into eip_admission_*).
	admitted     atomic.Uint64
	shedRate     atomic.Uint64
	shedBudget   atomic.Uint64
	shedQueue    atomic.Uint64
	shedDeadline atomic.Uint64
	genCharged   atomic.Uint64
	genRefunded  atomic.Uint64
	evictions    atomic.Uint64
	queueDepth   atomic.Int64 // current slot waiters across tenants
}

// New returns a Controller for the config, or nil when the config
// enables no gate — the nil Controller admits everything at zero cost.
func New(cfg Config) *Controller {
	if !cfg.Enabled() {
		return nil
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Controller{
		cfg:       cfg,
		now:       now,
		tenants:   make(map[string]*tenant),
		lastSweep: now(),
	}
}

// tenant returns the key's state, creating (and possibly sweeping) on
// first sight. The read path is one RLock'd map hit.
func (c *Controller) tenant(key string) *tenant {
	now := c.now()
	c.mu.RLock()
	t := c.tenants[key]
	c.mu.RUnlock()
	if t == nil {
		c.mu.Lock()
		if t = c.tenants[key]; t == nil {
			c.maybeSweepLocked(now)
			t = &tenant{
				req: bucket{rate: c.cfg.RequestRate, burst: c.cfg.requestBurst(), tokens: c.cfg.requestBurst(), last: now},
				gen: bucket{rate: c.cfg.GenBudget, burst: c.cfg.genBurst(), tokens: c.cfg.genBurst(), last: now},
			}
			if c.cfg.TenantSlots > 0 {
				t.slots = make(chan struct{}, c.cfg.TenantSlots)
			}
			c.tenants[key] = t
		}
		c.mu.Unlock()
	}
	t.lastSeen.Store(now.UnixNano())
	return t
}

// maybeSweepLocked evicts idle tenants when the map hit MaxTenants or
// an IdleTTL has passed since the last sweep. Tenants holding slots or
// with queued waiters survive regardless of age. Eviction order does
// not matter (every victim is equally expired), so the map-range
// nondeterminism is fine.
func (c *Controller) maybeSweepLocked(now time.Time) {
	ttl := c.cfg.idleTTL()
	if len(c.tenants) < c.cfg.maxTenants() && now.Sub(c.lastSweep) < ttl {
		return
	}
	c.lastSweep = now
	cutoff := now.Add(-ttl).UnixNano()
	for k, t := range c.tenants {
		if t.lastSeen.Load() < cutoff && !t.busy() {
			delete(c.tenants, k)
			c.evictions.Add(1)
		}
	}
}

// AllowRequest runs the request-rate gate for one inbound request.
func (c *Controller) AllowRequest(key string) Decision {
	if c == nil {
		return admitted
	}
	t := c.tenant(key)
	if c.cfg.RequestRate > 0 {
		t.mu.Lock()
		ok, wait := t.req.take(c.now(), 1)
		t.mu.Unlock()
		if !ok {
			c.shedRate.Add(1)
			return Decision{Reason: ReasonRate, RetryAfter: wait}
		}
	}
	c.admitted.Add(1)
	return admitted
}

// ChargeGenerate runs the generation-budget gate: admitted requests are
// charged their full candidate count (lending semantics — see
// Config.GenBudget), refused ones are told when the debt clears.
func (c *Controller) ChargeGenerate(key string, candidates int) Decision {
	if c == nil || c.cfg.GenBudget <= 0 || candidates <= 0 {
		return admitted
	}
	t := c.tenant(key)
	t.mu.Lock()
	ok, wait := t.gen.lend(c.now(), float64(candidates))
	t.mu.Unlock()
	if !ok {
		c.shedBudget.Add(1)
		return Decision{Reason: ReasonBudget, RetryAfter: wait}
	}
	c.genCharged.Add(uint64(candidates))
	return admitted
}

// RefundGenerate returns candidates to the tenant's budget when an
// already-charged request sheds at a later gate (queue full, deadline)
// without generating anything. The balance is clamped at burst, so a
// refund can repay debt but never mint extra credit.
func (c *Controller) RefundGenerate(key string, candidates int) {
	if c == nil || c.cfg.GenBudget <= 0 || candidates <= 0 {
		return
	}
	t := c.tenant(key)
	t.mu.Lock()
	t.gen.refill(c.now())
	t.gen.tokens += float64(candidates)
	if t.gen.tokens > t.gen.burst {
		t.gen.tokens = t.gen.burst
	}
	t.mu.Unlock()
	c.genRefunded.Add(uint64(candidates))
}

// noRelease is the release function of gates that held nothing.
func noRelease() {}

// AcquireSlot claims one of the tenant's concurrency slots, queueing up
// to MaxWait behind the tenant's own running work. It sheds immediately
// when the tenant's wait queue is at QueueDepth, and at the deadline
// when no slot frees up — so a saturating tenant accumulates 429s, not
// goroutines. The returned release must be called exactly once (it is
// never nil, even on refusal).
func (c *Controller) AcquireSlot(ctx context.Context, key string) (func(), Decision) {
	if c == nil || c.cfg.TenantSlots <= 0 {
		return noRelease, admitted
	}
	t := c.tenant(key)
	release := func() { <-t.slots }
	select {
	case t.slots <- struct{}{}:
		return release, admitted
	default:
	}
	maxWait := c.cfg.maxWait()
	if int(t.waiters.Add(1)) > c.cfg.queueDepth() {
		t.waiters.Add(-1)
		c.shedQueue.Add(1)
		return noRelease, Decision{Reason: ReasonQueueFull, RetryAfter: maxWait}
	}
	c.queueDepth.Add(1)
	defer func() {
		t.waiters.Add(-1)
		c.queueDepth.Add(-1)
	}()
	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case t.slots <- struct{}{}:
		return release, admitted
	case <-timer.C:
		c.shedDeadline.Add(1)
		return noRelease, Decision{Reason: ReasonDeadline, RetryAfter: maxWait}
	case <-ctx.Done():
		// The client is gone; nothing will read a 429. Report deadline
		// so the caller's error path still accounts the shed.
		c.shedDeadline.Add(1)
		return noRelease, Decision{Reason: ReasonDeadline, RetryAfter: maxWait}
	}
}

// WaitSlot claims a tenant slot for a stream producer that is already
// admitted and mid-response: it waits as long as the request context
// lives (the response is streaming, so there is no 429 to send) and
// returns false only when the context dies first. Waiters count toward
// the tenant's queue depth, so an admitted batch saturating its own
// slots pushes the tenant's NEXT requests into queue-full sheds instead
// of piling up more work.
func (c *Controller) WaitSlot(ctx context.Context, key string) (func(), bool) {
	if c == nil || c.cfg.TenantSlots <= 0 {
		return noRelease, true
	}
	t := c.tenant(key)
	release := func() { <-t.slots }
	select {
	case t.slots <- struct{}{}:
		return release, true
	default:
	}
	t.waiters.Add(1)
	c.queueDepth.Add(1)
	defer func() {
		t.waiters.Add(-1)
		c.queueDepth.Add(-1)
	}()
	select {
	case t.slots <- struct{}{}:
		return release, true
	case <-ctx.Done():
		return noRelease, false
	}
}

// Stats is a point-in-time snapshot of the controller's counters, for
// the /metrics collectors and the /healthz admission summary.
type Stats struct {
	// Tenants is the number of tenants currently tracked.
	Tenants int
	// QueueDepth is the number of goroutines currently waiting for a
	// tenant slot, across all tenants.
	QueueDepth int
	// SlotsInUse is the number of running streams holding tenant slots.
	SlotsInUse int
	// Admitted counts requests that passed the rate gate.
	Admitted uint64
	// ShedRate/ShedBudget/ShedQueueFull/ShedDeadline count refusals by
	// shed reason; Shed() sums them.
	ShedRate      uint64
	ShedBudget    uint64
	ShedQueueFull uint64
	ShedDeadline  uint64
	// GenCharged is the cumulative candidate count charged to budgets;
	// GenRefunded is the part returned by later-gate sheds.
	GenCharged  uint64
	GenRefunded uint64
	// Evicted counts idle tenants removed by TTL sweeps.
	Evicted uint64
}

// Shed is the total refusal count across all reasons.
func (s Stats) Shed() uint64 {
	return s.ShedRate + s.ShedBudget + s.ShedQueueFull + s.ShedDeadline
}

// Stats snapshots the controller. Counters are read independently, so
// a snapshot under load may be one step out of sync with itself — fine
// for a scrape. Nil-receiver-safe (returns zeros).
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Admitted:      c.admitted.Load(),
		ShedRate:      c.shedRate.Load(),
		ShedBudget:    c.shedBudget.Load(),
		ShedQueueFull: c.shedQueue.Load(),
		ShedDeadline:  c.shedDeadline.Load(),
		GenCharged:    c.genCharged.Load(),
		GenRefunded:   c.genRefunded.Load(),
		Evicted:       c.evictions.Load(),
		QueueDepth:    int(c.queueDepth.Load()),
	}
	c.mu.RLock()
	st.Tenants = len(c.tenants)
	for _, t := range c.tenants {
		if t.slots != nil {
			st.SlotsInUse += len(t.slots)
		}
	}
	c.mu.RUnlock()
	return st
}
