package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrBusy is returned by Pool.Do when the queue of waiting requests is
// full. HTTP handlers translate it to 503 Service Unavailable so that
// expensive work degrades by shedding load instead of stampeding.
var ErrBusy = errors.New("serve: too many queued requests")

// Pool bounds concurrency of expensive work (model training) with a fixed
// number of workers and a bounded queue of waiting requests. Work beyond
// workers+queue is rejected immediately with ErrBusy.
type Pool struct {
	workers  chan struct{} // worker tokens
	queue    chan struct{} // admission tokens: workers + queue depth
	rejected atomic.Uint64 // Do calls shed with ErrBusy
}

// PoolStats is a snapshot of pool utilization for the metrics collector.
type PoolStats struct {
	// Workers is the configured worker count; Active of them are running
	// work right now.
	Workers int
	Active  int
	// Queued is the number of admitted requests waiting for a worker;
	// QueueCapacity is the configured queue depth beyond the workers.
	Queued        int
	QueueCapacity int
	// Rejected counts requests shed with ErrBusy since startup.
	Rejected uint64
}

// Stats returns a point-in-time utilization snapshot. Channel lengths are
// read independently, so Active and Queued may be one step out of sync
// with each other — fine for a scrape.
func (p *Pool) Stats() PoolStats {
	active := len(p.workers)
	queued := len(p.queue) - active
	if queued < 0 {
		queued = 0
	}
	return PoolStats{
		Workers:       cap(p.workers),
		Active:        active,
		Queued:        queued,
		QueueCapacity: cap(p.queue) - cap(p.workers),
		Rejected:      p.rejected.Load(),
	}
}

// NewPool returns a pool with the given number of workers and queue
// depth. Non-positive values select 1 worker and a queue of 0.
func NewPool(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Pool{
		workers: make(chan struct{}, workers),
		queue:   make(chan struct{}, workers+queueDepth),
	}
}

// Do runs fn on one of the pool's workers, waiting in the queue if all
// workers are busy. It returns ErrBusy without running fn when the queue
// is full, and the context's error if ctx is done before a worker frees
// up.
func (p *Pool) Do(ctx context.Context, fn func() error) error {
	select {
	case p.queue <- struct{}{}:
	default:
		p.rejected.Add(1)
		return ErrBusy
	}
	defer func() { <-p.queue }()

	select {
	case p.workers <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.workers }()
	return fn()
}
