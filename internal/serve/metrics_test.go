package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"entropyip/internal/obs"
)

// scrape issues GET /metrics and returns the exposition body.
func scrape(t *testing.T, s *Server) string {
	t.Helper()
	w := do(t, s, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	return w.Body.String()
}

// TestMetricsEndpoint exercises the serving plane end to end and asserts
// the exposition carries families from every instrumented subsystem:
// HTTP middleware, registry cache, ingest/drift/refresher streams, the
// training pool and the parallel scheduler.
func TestMetricsEndpoint(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}

	// Traffic across the instrumented routes.
	w := do(t, s, "POST", "/v1/models/web/browse", BrowseRequest{})
	if w.Code != http.StatusOK {
		t.Fatalf("browse status = %d: %s", w.Code, w.Body.String())
	}
	w = do(t, s, "POST", "/v1/models/web/generate", GenerateRequest{Count: 5, Seed: seedPtr(1)})
	if w.Code != http.StatusOK {
		t.Fatalf("generate status = %d: %s", w.Code, w.Body.String())
	}
	req := httptest.NewRequest("POST", "/v1/models/web/observe",
		strings.NewReader("2001:db8::1\n2001:db8::2\nnot-an-address\n"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("observe status = %d: %s", rec.Code, rec.Body.String())
	}
	var obsResp ObserveResponse
	decode(t, rec, &obsResp)
	if obsResp.Accepted != 2 || obsResp.Invalid != 1 {
		t.Fatalf("observe response = %+v, want 2 accepted / 1 invalid", obsResp)
	}

	body := scrape(t, s)
	for _, want := range []string{
		// HTTP middleware (per-route counters + histogram invariants).
		`eip_http_requests_total{route="POST /v1/models/{name}/browse"} 1`,
		`eip_http_requests_total{route="POST /v1/models/{name}/generate"} 1`,
		`eip_http_request_seconds_bucket{route="POST /v1/models/{name}/browse",le="+Inf"} 1`,
		`eip_http_request_seconds_count{route="POST /v1/models/{name}/browse"} 1`,
		"# TYPE eip_http_requests_total counter",
		"# TYPE eip_http_request_seconds histogram",
		"eip_http_in_flight 1", // the /metrics request itself
		"eip_http_panics_total 0",
		"eip_uptime_seconds",
		// Serving-plane business counters.
		"eip_generate_candidates_total 5",
		`eip_observe_lines_total{result="accepted"} 2`,
		`eip_observe_lines_total{result="invalid"} 1`,
		// Registry cache.
		"eip_registry_models 1",
		"eip_registry_cache_hits_total",
		"eip_registry_cache_misses_total",
		"eip_registry_coalesced_loads_total",
		// Per-model ingest/drift stream (created by the observe above).
		`eip_ingest_window{model="web"} 2`,
		`eip_ingest_observed_total{model="web"} 2`,
		`eip_drift_drifting{model="web"} 0`,
		`eip_refresh_rotations_total{model="web"} 0`,
		// Worker pools.
		"eip_training_pool_workers",
		"eip_training_pool_rejected_total 0",
		"eip_parallel_jobs_total",
		"eip_parallel_workers_running",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsTrainingStages trains through the API and checks the
// per-stage histogram saw every pipeline stage.
func TestMetricsTrainingStages(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	addrs := make([]string, 0, 300)
	for _, a := range testAddrs(300, 7) {
		addrs = append(addrs, a.String())
	}
	w := do(t, s, "PUT", "/v1/models/web", PutModelRequest{Addresses: addrs})
	if w.Code != http.StatusCreated {
		t.Fatalf("train status = %d: %s", w.Code, w.Body.String())
	}
	body := scrape(t, s)
	for _, stage := range []string{"entropy", "segment", "mine", "compile", "encode", "learn"} {
		want := `eip_training_stage_seconds_count{stage="` + stage + `"} 1`
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPanicRecovery installs a panicking route through the same
// middleware as the real ones and checks the recovery contract: a 500
// response, the panic counted, in-flight back to zero, and the server
// still answering afterwards.
func TestPanicRecovery(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	s.handle("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})

	w := do(t, s, "GET", "/boom", nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", w.Code)
	}
	var er errorResponse
	decode(t, w, &er)
	if er.Error.Message == "" || er.Error.Code != CodeInternal {
		t.Errorf("expected an internal error envelope, got %+v", er.Error)
	}

	snap := s.metrics.Snapshot()
	if snap.Panics != 1 {
		t.Errorf("Panics = %d, want 1", snap.Panics)
	}
	if snap.InFlight != 0 {
		t.Errorf("InFlight = %d, want 0", snap.InFlight)
	}
	rs, ok := snap.Routes["GET /boom"]
	if !ok || rs.Requests != 1 || rs.Errors != 1 {
		t.Errorf("route snapshot = %+v (present=%v), want 1 request / 1 error", rs, ok)
	}

	// The server survives: healthz still works and reports the panic.
	w = do(t, s, "GET", "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz after panic: status = %d", w.Code)
	}
	if !strings.Contains(scrape(t, s), "eip_http_panics_total 1") {
		t.Error("exposition missing eip_http_panics_total 1")
	}
}

// TestPanicAfterWriteKeepsStatus checks a panic after the handler has
// started writing does not attempt a second WriteHeader.
func TestPanicAfterWriteKeepsStatus(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	s.handle("GET /halfway", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte("partial"))
		panic("late")
	})
	w := do(t, s, "GET", "/halfway", nil)
	if w.Code != http.StatusAccepted {
		t.Fatalf("status = %d, want the already-committed 202", w.Code)
	}
	if s.metrics.Snapshot().Panics != 1 {
		t.Error("late panic not counted")
	}
}

// TestRequestIDHeader checks every response carries a unique request ID.
func TestRequestIDHeader(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	ids := make(map[string]bool)
	for i := 0; i < 3; i++ {
		w := do(t, s, "GET", "/healthz", nil)
		id := w.Header().Get("X-Request-Id")
		if id == "" {
			t.Fatal("missing X-Request-Id header")
		}
		if ids[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		ids[id] = true
	}
}
