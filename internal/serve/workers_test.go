package serve

import (
	"bytes"
	"io"
	"net/http"
	"testing"
)

// TestTrainWorkersOption trains the same address set with different
// per-request worker counts (and the server-wide default) and asserts the
// stored models are byte-identical — the serving layer's face of the
// training pipeline's determinism guarantee.
func TestTrainWorkersOption(t *testing.T) {
	lines := make([]string, 0, 1500)
	for _, a := range testAddrs(1500, 9) {
		lines = append(lines, a.String())
	}

	s, reg := newTestServer(t, Options{TrainWorkers: 1})
	for i, workers := range []int{0, 1, 8} {
		w := do(t, s, "PUT", "/v1/models/det", PutModelRequest{
			Addresses: lines,
			Options:   TrainOptions{Workers: workers},
		})
		if w.Code != http.StatusCreated {
			t.Fatalf("workers=%d: status = %d: %s", workers, w.Code, w.Body.String())
		}
		var resp PutModelResponse
		decode(t, w, &resp)
		if resp.Info.Version != i+1 {
			t.Fatalf("workers=%d: version = %d, want %d", workers, resp.Info.Version, i+1)
		}
	}
	versions, err := reg.Versions("det")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 3 {
		t.Fatalf("%d versions, want 3", len(versions))
	}
	var want []byte
	for _, v := range versions {
		rc, _, err := reg.OpenRaw("det", v.Version)
		if err != nil {
			t.Fatal(err)
		}
		raw := readAll(t, rc)
		rc.Close()
		if want == nil {
			want = raw
			continue
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("version %d model bytes differ across worker counts", v.Version)
		}
	}
}

func readAll(t *testing.T, r io.Reader) []byte {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTrainWorkersValidation rejects out-of-range worker requests before
// any parsing or queueing happens.
func TestTrainWorkersValidation(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	for _, workers := range []int{-1, MaxTrainWorkers + 1} {
		w := do(t, s, "PUT", "/v1/models/bad", PutModelRequest{
			Addresses: []string{"2001:db8::1"},
			Options:   TrainOptions{Workers: workers},
		})
		if w.Code != http.StatusBadRequest {
			t.Fatalf("workers=%d: status = %d, want 400", workers, w.Code)
		}
	}
}
