package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"sort"
	"strings"
	"testing"

	"entropyip/internal/wire"
)

// TestOpenAPIRoutesMatchMux diffs the OpenAPI operations table against
// the mux patterns the server actually registers: every /v1 route must
// be documented, and the spec must not document routes that do not
// exist. (The non-versioned /healthz alias and /metrics are
// infrastructure endpoints, outside the v1 contract.)
func TestOpenAPIRoutesMatchMux(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	var registered []string
	for _, p := range s.patterns {
		if strings.Contains(p, " /v1/") {
			registered = append(registered, p)
		}
	}
	sort.Strings(registered)
	spec := specRoutePatterns()
	if strings.Join(registered, "\n") != strings.Join(spec, "\n") {
		t.Errorf("spec route list diverges from the mux.\nregistered (/v1 only):\n  %s\nspec:\n  %s",
			strings.Join(registered, "\n  "), strings.Join(spec, "\n  "))
	}
}

// TestOpenAPIEndpoint checks GET /v1/openapi.json serves a parseable
// 3.0 document that names both streaming encodings.
func TestOpenAPIEndpoint(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	w := do(t, s, "GET", "/v1/openapi.json", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var doc struct {
		OpenAPI string                 `json:"openapi"`
		Paths   map[string]interface{} `json:"paths"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("spec does not parse: %v", err)
	}
	if !strings.HasPrefix(doc.OpenAPI, "3.0") {
		t.Errorf("openapi = %q", doc.OpenAPI)
	}
	wantPaths := map[string]bool{}
	for _, op := range apiOperations {
		wantPaths[op.Path] = true
	}
	if len(doc.Paths) != len(wantPaths) {
		t.Errorf("spec has %d paths, operations table has %d", len(doc.Paths), len(wantPaths))
	}
	for _, frag := range []string{wire.ContentType, "application/x-ndjson", "#/components/schemas/Error"} {
		if !bytes.Contains(w.Body.Bytes(), []byte(frag)) {
			t.Errorf("spec missing %q", frag)
		}
	}
}

// TestAPIDocsInSync pins docs/API.md to the markdown rendered from the
// operations table. Run with UPDATE_API_DOCS=1 to rewrite the file.
func TestAPIDocsInSync(t *testing.T) {
	const path = "../../docs/API.md"
	want := renderAPIMarkdown()
	if os.Getenv("UPDATE_API_DOCS") != "" {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Skip("docs/API.md rewritten")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s (regenerate with UPDATE_API_DOCS=1): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("docs/API.md is stale; regenerate with UPDATE_API_DOCS=1 go test ./internal/serve -run APIDocs")
	}
}
