package serve

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"entropyip/internal/drift"
	"entropyip/internal/ingest"
	"entropyip/internal/obs/trace"
)

// sampledTraceparent is a fixed W3C traceparent with the sampled flag on;
// the server must join this trace and force-keep it.
const sampledTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// TestTraceparentRoundTrip pins the propagation contract: a request
// carrying a sampled traceparent joins that trace (X-Trace-Id echoes the
// inbound trace ID), the flight recorder retains it (sampled == forced
// keep), and GET /v1/debug/traces?trace_id= returns the span tree with
// the route as the root span.
func TestTraceparentRoundTrip(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("GET", "/v1/models/web", nil)
	req.Header.Set("Traceparent", sampledTraceparent)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", w.Code, w.Body.String())
	}
	wantID := "4bf92f3577b34da6a3ce929d0e0e4736"
	if got := w.Result().Header.Get("X-Trace-Id"); got != wantID {
		t.Fatalf("X-Trace-Id = %q, want inbound trace ID %q", got, wantID)
	}

	w = do(t, s, "GET", "/v1/debug/traces?trace_id="+wantID, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("debug/traces status = %d body %s", w.Code, w.Body.String())
	}
	var resp DebugTracesResponse
	decode(t, w, &resp)
	if resp.Trace == nil {
		t.Fatal("trace_id fetch returned no tree")
	}
	if resp.Trace.TraceID != wantID {
		t.Errorf("tree trace_id = %q, want %q", resp.Trace.TraceID, wantID)
	}
	if resp.Trace.Kept != "forced" {
		t.Errorf("kept = %q, want \"forced\" (inbound sampled flag)", resp.Trace.Kept)
	}
	if resp.Trace.Root == nil || resp.Trace.Root.Name != "GET /v1/models/{name}" {
		t.Errorf("root = %+v, want route-named root span", resp.Trace.Root)
	}
	if resp.Trace.RemoteParent == "" {
		t.Errorf("remote parent not recorded on a joined trace")
	}
}

// TestTraceIDInErrorEnvelope checks the error envelope carries the trace
// ID of the failed request, matching the X-Trace-Id header.
func TestTraceIDInErrorEnvelope(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	w := do(t, s, "GET", "/v1/models/nope", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status = %d", w.Code)
	}
	var er struct {
		Error ErrorBody `json:"error"`
	}
	decode(t, w, &er)
	want := w.Result().Header.Get("X-Trace-Id")
	if want == "" || er.Error.TraceID != want {
		t.Errorf("envelope trace_id = %q, X-Trace-Id = %q (must match, non-empty)",
			er.Error.TraceID, want)
	}
}

// TestInboundRequestID pins the X-Request-Id honoring rules: a
// well-formed client ID is echoed verbatim; malformed or oversized ones
// are replaced with a minted ID, never truncated or quoted through.
func TestInboundRequestID(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	send := func(id string) string {
		req := httptest.NewRequest("GET", "/healthz", nil)
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w.Result().Header.Get("X-Request-Id")
	}
	for _, ok := range []string{"abc-123", "A.B_C-9", strings.Repeat("x", 128)} {
		if got := send(ok); got != ok {
			t.Errorf("valid id %q not honored: echoed %q", ok, got)
		}
	}
	for _, bad := range []string{"has space", "new\nline", `quote"`, "non-ascii-é", strings.Repeat("x", 129)} {
		got := send(bad)
		if got == bad || got == "" {
			t.Errorf("invalid id %q: echoed %q, want a minted replacement", bad, got)
		}
	}
	if got := send(""); got == "" {
		t.Error("no inbound id: no minted id echoed")
	}
}

// TestDebugTracesEndpoint covers the listing and error forms of
// GET /v1/debug/traces.
func TestDebugTracesEndpoint(t *testing.T) {
	// SampleEvery 1 keeps every trace, so the listing is deterministic.
	s, _ := newTestServer(t, Options{Trace: trace.Policy{SampleEvery: 1}})
	for i := 0; i < 3; i++ {
		do(t, s, "GET", "/healthz", nil)
	}
	w := do(t, s, "GET", "/v1/debug/traces?limit=2", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var resp DebugTracesResponse
	decode(t, w, &resp)
	if len(resp.Traces) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(resp.Traces))
	}
	if resp.Recorder.Kept < 3 {
		t.Errorf("recorder stats kept = %d, want >= 3", resp.Recorder.Kept)
	}
	for _, sum := range resp.Traces {
		if sum.Root != "GET /healthz" && sum.Root != "GET /v1/debug/traces" {
			t.Errorf("unexpected root %q in listing", sum.Root)
		}
	}

	if w = do(t, s, "GET", "/v1/debug/traces?trace_id=zzz", nil); w.Code != http.StatusBadRequest {
		t.Errorf("bad trace_id: status = %d, want 400", w.Code)
	}
	missing := "00000000000000000000000000000001"
	if w = do(t, s, "GET", "/v1/debug/traces?trace_id="+missing, nil); w.Code != http.StatusNotFound {
		t.Errorf("missing trace: status = %d, want 404", w.Code)
	}
	if w = do(t, s, "GET", "/v1/debug/traces?limit=-1", nil); w.Code != http.StatusBadRequest {
		t.Errorf("bad limit: status = %d, want 400", w.Code)
	}
}

// TestBatchGenerateChildSpans checks a batch generate request's trace has
// one generate.stream child per stream, each with its stream index and
// produced count.
func TestBatchGenerateChildSpans(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/models/web/generate",
		strings.NewReader(`{"streams":[{"count":50,"seed":1},{"count":70,"seed":2},{"count":30,"seed":3}]}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", sampledTraceparent)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", w.Code, w.Body.String())
	}
	tid, err := trace.ParseTraceID(w.Result().Header.Get("X-Trace-Id"))
	if err != nil {
		t.Fatal(err)
	}
	tree, ok := s.recorder.Get(tid)
	if !ok {
		t.Fatal("batch generate trace not retained despite sampled traceparent")
	}
	var streams []*trace.Node
	for _, child := range tree.Root.Children {
		if child.Name == "generate.stream" {
			streams = append(streams, child)
		}
	}
	if len(streams) != 3 {
		t.Fatalf("generate.stream children = %d, want 3 (tree root children: %d)",
			len(streams), len(tree.Root.Children))
	}
	seen := map[int64]bool{}
	for _, st := range streams {
		idx, ok := st.Attrs["stream"].(int64)
		if !ok {
			t.Fatalf("stream child without stream attr: %+v", st.Attrs)
		}
		seen[idx] = true
		if p, ok := st.Attrs["produced"].(int64); !ok || p <= 0 {
			t.Errorf("stream %d produced attr = %v", idx, st.Attrs["produced"])
		}
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Errorf("stream indexes seen = %v, want 0,1,2", seen)
	}
}

// TestRotationTraceShape drives the refresh loop through a drift-triggered
// rotation and checks the retrain's own root trace has the full chain as
// children: pool.wait, train (with pipeline stages under it), shadow.eval
// and rotate.
func TestRotationTraceShape(t *testing.T) {
	variantA := refreshPlan([]uint64{0x0001, 0x0002}, []float64{0.7, 0.3})
	variantB := refreshPlan([]uint64{0x00a1, 0x00a2}, []float64{0.5, 0.5})
	s, reg := newTestServer(t, Options{
		Workers: 1,
		// Keep every trace: a fast retrain may beat the slow threshold.
		Trace: trace.Policy{SampleEvery: 1},
		Refresh: RefreshOptions{
			AutoRefresh:   true,
			EvaluateEvery: 512,
			Ingest:        ingest.Config{WindowSize: 4096, Seed: 1},
			Drift:         drift.Config{Enter: 0.15, Consecutive: 2, MinWindow: 256},
		},
	})
	if _, err := reg.Put("live", buildOn(t, variantA, 3000, 1)); err != nil {
		t.Fatal(err)
	}
	r := s.Refresher()
	traffic := rand.New(rand.NewSource(7))
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := r.Observe(context.Background(), "live", variantB.Generate(traffic, 512)); err != nil {
			t.Fatal(err)
		}
		st, _ := r.Status("live")
		if st.Rotations >= 1 && !st.Retraining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no rotation before deadline: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var tree trace.Tree
	found := false
	for _, sum := range s.recorder.List(0) {
		if sum.Root != "refresh.retrain" {
			continue
		}
		id, err := trace.ParseTraceID(sum.TraceID)
		if err != nil {
			t.Fatal(err)
		}
		if tr, ok := s.recorder.Get(id); ok && childNames(tr.Root)["rotate"] {
			tree, found = tr, true
			break
		}
	}
	if !found {
		t.Fatal("no refresh.retrain trace with a rotate span retained")
	}
	names := childNames(tree.Root)
	for _, want := range []string{"pool.wait", "train", "shadow.eval", "rotate"} {
		if !names[want] {
			t.Errorf("retrain trace missing %q child (have %v)", want, names)
		}
	}
	if tree.Root.Attrs["model"] != "live" {
		t.Errorf("retrain root model attr = %v", tree.Root.Attrs["model"])
	}
	for _, child := range tree.Root.Children {
		if child.Name != "train" {
			continue
		}
		if len(child.Children) == 0 {
			t.Error("train span has no pipeline-stage children")
		}
	}
}

// childNames collects the names of a node's direct children.
func childNames(n *trace.Node) map[string]bool {
	out := map[string]bool{}
	for _, c := range n.Children {
		out[c.Name] = true
	}
	return out
}
