package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"entropyip/internal/core"
	"entropyip/internal/ip6"
	"entropyip/internal/registry"
)

// testAddrs synthesizes a structured network with a large address support
// (pseudo-random IIDs), so that streaming tests can draw tens of
// thousands of unique candidates.
func testAddrs(n int, seed int64) []ip6.Addr {
	rng := rand.New(rand.NewSource(seed))
	base := ip6.MustParseAddr("2001:db8::")
	out := make([]ip6.Addr, n)
	for i := range out {
		a := base
		a = a.SetField(8, 2, uint64(rng.Intn(8)))
		a = a.SetField(16, 16, rng.Uint64())
		out[i] = a
	}
	return out
}

func testModel(t *testing.T, seed int64) *core.Model {
	t.Helper()
	m, err := core.Build(testAddrs(1500, seed), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newTestServer returns a Server over a fresh registry plus the registry.
func newTestServer(t *testing.T, opts Options) (*Server, *registry.Registry) {
	t.Helper()
	reg, err := registry.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	return New(reg, opts), reg
}

// seedPtr builds the optional seed field of a GenerateRequest.
func seedPtr(v int64) *int64 { return &v }

// do issues a JSON request against the handler and returns the recorder.
func do(t *testing.T, s *Server, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decode(t *testing.T, w *httptest.ResponseRecorder, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
}

func TestListEmptyAndPopulated(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	w := do(t, s, "GET", "/v1/models", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var list ListModelsResponse
	decode(t, w, &list)
	if len(list.Models) != 0 {
		t.Errorf("expected empty list, got %d", len(list.Models))
	}

	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	w = do(t, s, "GET", "/v1/models", nil)
	decode(t, w, &list)
	if len(list.Models) != 1 || list.Models[0].Name != "web" || list.Models[0].Version != 1 {
		t.Errorf("list = %+v", list.Models)
	}
}

func TestUploadModel(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	m := testModel(t, 1)
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "PUT", "/v1/models/web", PutModelRequest{Model: raw})
	if w.Code != http.StatusCreated {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp PutModelResponse
	decode(t, w, &resp)
	if resp.Trained {
		t.Error("upload must not report trained")
	}
	if resp.Info.Version != 1 || resp.Info.TrainCount != m.TrainCount {
		t.Errorf("info = %+v", resp.Info)
	}

	// Second upload bumps the version.
	w = do(t, s, "PUT", "/v1/models/web", PutModelRequest{Model: raw})
	decode(t, w, &resp)
	if resp.Info.Version != 2 {
		t.Errorf("second upload version = %d", resp.Info.Version)
	}
}

func TestUploadErrors(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	cases := []struct {
		name   string
		path   string
		body   interface{}
		status int
	}{
		{"invalid name", "/v1/models/.hidden", PutModelRequest{}, http.StatusBadRequest},
		{"empty request", "/v1/models/web", PutModelRequest{}, http.StatusBadRequest},
		{"corrupt model", "/v1/models/web", PutModelRequest{Model: json.RawMessage(`{"version":99}`)}, http.StatusBadRequest},
		{"both model and addresses", "/v1/models/web", map[string]interface{}{
			"model": json.RawMessage(`{}`), "addresses": []string{"::1"},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := do(t, s, "PUT", tc.path, tc.body)
		if w.Code != tc.status {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, w.Code, tc.status, w.Body.String())
		}
	}

	// Malformed JSON body.
	req := httptest.NewRequest("PUT", "/v1/models/web", strings.NewReader("{"))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d", w.Code)
	}
}

func TestTrainFromAddresses(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	lines := make([]string, 0, 1500)
	for _, a := range testAddrs(1500, 3) {
		lines = append(lines, a.String())
	}
	w := do(t, s, "PUT", "/v1/models/trained", PutModelRequest{Addresses: lines})
	if w.Code != http.StatusCreated {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp PutModelResponse
	decode(t, w, &resp)
	if !resp.Trained {
		t.Error("training must report trained")
	}
	if resp.Info.TrainCount != 1500 {
		t.Errorf("train count = %d", resp.Info.TrainCount)
	}

	// A bad address in the set is a 400, not a train failure.
	w = do(t, s, "PUT", "/v1/models/trained", PutModelRequest{Addresses: []string{"not-an-address"}})
	if w.Code != http.StatusBadRequest {
		t.Errorf("bad address: status = %d", w.Code)
	}

	// Training on an empty-after-parse set fails cleanly.
	w = do(t, s, "PUT", "/v1/models/trained", PutModelRequest{Addresses: []string{}, Model: nil})
	if w.Code != http.StatusBadRequest {
		t.Errorf("no addresses: status = %d", w.Code)
	}
}

func TestTrainPrefix64Option(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	lines := make([]string, 0, 1500)
	for _, a := range testAddrs(1500, 3) {
		lines = append(lines, a.String())
	}
	w := do(t, s, "PUT", "/v1/models/p64", PutModelRequest{
		Addresses: lines,
		Options:   TrainOptions{Prefix64Only: true},
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp PutModelResponse
	decode(t, w, &resp)
	if !resp.Info.Prefix64Only {
		t.Error("Prefix64Only option not applied")
	}
}

// TestTrainShedsLoad fills the worker pool and checks the next training
// request is answered 503 instead of queueing without bound.
func TestTrainShedsLoad(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 1, QueueDepth: -1})
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.pool.Do(context.Background(), func() error { <-block; return nil })
	}()
	// Wait until the worker token is actually held; with one worker and no
	// extra queue depth, the pool is then saturated.
	for len(s.pool.workers) < 1 {
		runtime.Gosched()
	}

	lines := []string{"2001:db8::1", "2001:db8::2"}
	w := do(t, s, "PUT", "/v1/models/busy", PutModelRequest{Addresses: lines})
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("saturated pool: status = %d, want 503 (%s)", w.Code, w.Body.String())
	}
	close(block)
	wg.Wait()
}

func TestBrowseMatchesDirect(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	m := testModel(t, 1)
	if _, err := reg.Put("web", m); err != nil {
		t.Fatal(err)
	}

	for _, ev := range []map[string]string{nil, {"A": "A1"}} {
		w := do(t, s, "POST", "/v1/models/web/browse", BrowseRequest{Evidence: ev})
		if w.Code != http.StatusOK {
			t.Fatalf("status = %d: %s", w.Code, w.Body.String())
		}
		var resp BrowseResponse
		decode(t, w, &resp)

		direct, err := m.Browse(core.Evidence(ev))
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Distributions) != len(direct) {
			t.Fatalf("got %d distributions, want %d", len(resp.Distributions), len(direct))
		}
		for i, d := range direct {
			got := resp.Distributions[i]
			if got.Label != d.Label || len(got.Entries) != len(d.Entries) {
				t.Fatalf("distribution %d = %+v, want label %s with %d entries", i, got, d.Label, len(d.Entries))
			}
			for k, e := range d.Entries {
				ge := got.Entries[k]
				if ge.Code != e.Code || ge.Display != e.Display || ge.IsRange != e.IsRange {
					t.Errorf("%s entry %d metadata mismatch: %+v vs %+v", d.Label, k, ge, e)
				}
				if ge.Prob != e.Prob {
					t.Errorf("%s/%s prob = %v over HTTP, %v direct", d.Label, e.Code, ge.Prob, e.Prob)
				}
			}
		}
	}
}

func TestBrowseErrors(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "POST", "/v1/models/missing/browse", BrowseRequest{})
	if w.Code != http.StatusNotFound {
		t.Errorf("missing model: status = %d", w.Code)
	}
	w = do(t, s, "POST", "/v1/models/web/browse", BrowseRequest{Evidence: map[string]string{"ZZ": "Z1"}})
	if w.Code != http.StatusBadRequest {
		t.Errorf("bad evidence: status = %d", w.Code)
	}
	w = do(t, s, "POST", "/v1/models/web/browse", BrowseRequest{Version: 42})
	if w.Code != http.StatusNotFound {
		t.Errorf("bad version: status = %d", w.Code)
	}
}

func TestGenerateStreamsNDJSON(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	m := testModel(t, 1)
	if _, err := reg.Put("web", m); err != nil {
		t.Fatal(err)
	}

	const count = 2000
	w := do(t, s, "POST", "/v1/models/web/generate", GenerateRequest{Count: count, Seed: seedPtr(7)})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}

	// The stream must reproduce exactly what the batch API returns for the
	// same seed.
	want, err := m.Generate(core.GenerateOptions{Count: count, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	for sc.Scan() {
		var item GenerateItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if item.Addr == "" {
			t.Fatalf("line without addr: %q", sc.Text())
		}
		got = append(got, item.Addr)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d candidates, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i].String() {
			t.Fatalf("candidate %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestGeneratePrefixesMode(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	m := testModel(t, 1)
	if _, err := reg.Put("web", m); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "POST", "/v1/models/web/generate", GenerateRequest{Count: 50, Seed: seedPtr(7), Prefixes: true})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	// The test network has only a handful of distinct /64s, so the stream
	// must match exactly what the batch API can produce.
	want, err := m.GeneratePrefixes(core.GenerateOptions{Count: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	var got []string
	for sc.Scan() {
		var item GenerateItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(item.Prefix, "/64") {
			t.Fatalf("expected /64 prefix, got %q", item.Prefix)
		}
		got = append(got, item.Prefix)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d prefixes, batch produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i].String() {
			t.Fatalf("prefix %d = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestGenerateSeedlessStreamsDiffer is the seed-default regression test:
// two requests that omit the seed must receive DIFFERENT candidate
// streams (the old behaviour defaulted to seed 0, handing every seedless
// client the identical "random" candidates), and each response must echo
// the derived seed in X-Seed so the stream can be replayed.
func TestGenerateSeedlessStreamsDiffer(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	m := testModel(t, 1)
	if _, err := reg.Put("web", m); err != nil {
		t.Fatal(err)
	}
	req := GenerateRequest{Count: 200} // no seed
	w1 := do(t, s, "POST", "/v1/models/web/generate", req)
	w2 := do(t, s, "POST", "/v1/models/web/generate", req)
	if w1.Code != http.StatusOK || w2.Code != http.StatusOK {
		t.Fatalf("status = %d, %d", w1.Code, w2.Code)
	}
	seed1 := w1.Header().Get("X-Seed")
	seed2 := w2.Header().Get("X-Seed")
	if seed1 == "" || seed2 == "" {
		t.Fatalf("missing X-Seed headers: %q, %q", seed1, seed2)
	}
	if seed1 == seed2 {
		t.Errorf("two seedless requests derived the same seed %s", seed1)
	}
	if bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("two seedless requests received the identical candidate stream")
	}

	// Replaying the echoed seed reproduces the stream exactly.
	var echoed int64
	if _, err := fmt.Sscan(seed1, &echoed); err != nil {
		t.Fatalf("X-Seed %q is not an integer: %v", seed1, err)
	}
	w3 := do(t, s, "POST", "/v1/models/web/generate", GenerateRequest{Count: 200, Seed: seedPtr(echoed)})
	if w3.Code != http.StatusOK {
		t.Fatalf("replay status = %d", w3.Code)
	}
	if w3.Header().Get("X-Seed") != seed1 {
		t.Errorf("explicit seed not echoed: %q vs %q", w3.Header().Get("X-Seed"), seed1)
	}
	if !bytes.Equal(w3.Body.Bytes(), w1.Body.Bytes()) {
		t.Error("replaying the echoed seed did not reproduce the stream")
	}

	// An explicit zero seed is honored, not treated as absent.
	z1 := do(t, s, "POST", "/v1/models/web/generate", GenerateRequest{Count: 200, Seed: seedPtr(0)})
	z2 := do(t, s, "POST", "/v1/models/web/generate", GenerateRequest{Count: 200, Seed: seedPtr(0)})
	if z1.Header().Get("X-Seed") != "0" {
		t.Errorf("X-Seed = %q for explicit zero seed", z1.Header().Get("X-Seed"))
	}
	if !bytes.Equal(z1.Body.Bytes(), z2.Body.Bytes()) {
		t.Error("explicit zero seed is not deterministic")
	}
}

// TestGenerateWorkersParam checks request-level generation parallelism:
// any accepted workers value yields the same stream, and out-of-range
// values are rejected.
func TestGenerateWorkersParam(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	m := testModel(t, 1)
	if _, err := reg.Put("web", m); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		w := do(t, s, "POST", "/v1/models/web/generate",
			GenerateRequest{Count: 2000, Seed: seedPtr(11), Workers: workers})
		if w.Code != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, w.Code, w.Body.String())
		}
		if want == nil {
			want = w.Body.Bytes()
			continue
		}
		if !bytes.Equal(w.Body.Bytes(), want) {
			t.Errorf("workers=%d: stream differs from workers=1", workers)
		}
	}
	w := do(t, s, "POST", "/v1/models/web/generate",
		GenerateRequest{Count: 10, Workers: MaxGenerateWorkers + 1})
	if w.Code != http.StatusBadRequest {
		t.Errorf("over-limit workers: status %d, want 400", w.Code)
	}
	w = do(t, s, "POST", "/v1/models/web/generate",
		GenerateRequest{Count: 10, Workers: -1})
	if w.Code != http.StatusBadRequest {
		t.Errorf("negative workers: status %d, want 400", w.Code)
	}
}

func TestGenerateErrors(t *testing.T) {
	s, reg := newTestServer(t, Options{MaxGenerateCount: 100})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		path   string
		req    GenerateRequest
		status int
	}{
		{"zero count", "/v1/models/web/generate", GenerateRequest{Count: 0}, http.StatusBadRequest},
		{"over limit", "/v1/models/web/generate", GenerateRequest{Count: 101}, http.StatusBadRequest},
		{"missing model", "/v1/models/none/generate", GenerateRequest{Count: 10}, http.StatusNotFound},
		{"bad evidence", "/v1/models/web/generate", GenerateRequest{Count: 10, Evidence: map[string]string{"ZZ": "1"}}, http.StatusBadRequest},
		{"attempts factor over limit", "/v1/models/web/generate", GenerateRequest{Count: 10, MaxAttemptsFactor: MaxAttemptsFactorLimit + 1}, http.StatusBadRequest},
		{"negative attempts factor", "/v1/models/web/generate", GenerateRequest{Count: 10, MaxAttemptsFactor: -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := do(t, s, "POST", tc.path, tc.req)
		if w.Code != tc.status {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, w.Code, tc.status, w.Body.String())
		}
	}
}

// TestGenerateEndToEnd10k uploads a model over a real HTTP server, then
// streams >= 10k unique candidates, reading the body incrementally —
// the acceptance scenario for bounded-memory streaming.
func TestGenerateEndToEnd10k(t *testing.T) {
	s, _ := newTestServer(t, Options{FlushEvery: 256})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Upload.
	m := testModel(t, 1)
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(PutModelRequest{Model: raw}); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("PUT", ts.URL+"/v1/models/web", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}

	// List.
	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list ListModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Models) != 1 || list.Models[0].Name != "web" {
		t.Fatalf("list = %+v", list.Models)
	}

	// Stream 10k candidates, consuming line by line off the wire.
	const count = 10_000
	genBody := strings.NewReader(fmt.Sprintf(`{"count": %d, "seed": 1}`, count))
	resp, err = http.Post(ts.URL+"/v1/models/web/generate", "application/json", genBody)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status = %d", resp.StatusCode)
	}
	seen := make(map[string]bool, count)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var item GenerateItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad line: %v", err)
		}
		if seen[item.Addr] {
			t.Fatalf("duplicate candidate %s", item.Addr)
		}
		seen[item.Addr] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) < count {
		t.Fatalf("streamed %d unique candidates, want >= %d", len(seen), count)
	}
}

func TestDownloadRoundTrips(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	m := testModel(t, 1)
	if _, err := reg.Put("web", m); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "GET", "/v1/models/web/model", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	loaded, err := core.Load(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TrainCount != m.TrainCount || len(loaded.Segments) != len(m.Segments) {
		t.Errorf("downloaded model differs: %d/%d segments, %d/%d train",
			len(loaded.Segments), len(m.Segments), loaded.TrainCount, m.TrainCount)
	}

	// A malformed version pin must be rejected, not silently serve latest.
	w = do(t, s, "GET", "/v1/models/web/model?version=abc", nil)
	if w.Code != http.StatusBadRequest {
		t.Errorf("bad version param: status = %d, want 400", w.Code)
	}
	w = do(t, s, "GET", "/v1/models/web/model?version=9", nil)
	if w.Code != http.StatusNotFound {
		t.Errorf("missing version param: status = %d, want 404", w.Code)
	}
}

func TestModelInfoAndDelete(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	m := testModel(t, 1)
	if _, err := reg.Put("web", m); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Put("web", m); err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "GET", "/v1/models/web", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var info ModelInfoResponse
	decode(t, w, &info)
	if info.Latest.Version != 2 || len(info.Versions) != 2 {
		t.Errorf("info = %+v", info)
	}

	w = do(t, s, "DELETE", "/v1/models/web", nil)
	if w.Code != http.StatusNoContent {
		t.Errorf("delete status = %d", w.Code)
	}
	w = do(t, s, "DELETE", "/v1/models/web", nil)
	if w.Code != http.StatusNotFound {
		t.Errorf("double delete status = %d", w.Code)
	}
	w = do(t, s, "GET", "/v1/models/web", nil)
	if w.Code != http.StatusNotFound {
		t.Errorf("info after delete status = %d", w.Code)
	}
}

func TestHealthzReportsMetrics(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	do(t, s, "GET", "/v1/models", nil)
	do(t, s, "POST", "/v1/models/web/browse", BrowseRequest{})
	do(t, s, "POST", "/v1/models/missing/browse", BrowseRequest{})

	w := do(t, s, "GET", "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var h HealthResponse
	decode(t, w, &h)
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.Registry.Models != 1 {
		t.Errorf("registry models = %d", h.Registry.Models)
	}
	browse := h.Metrics.Routes["POST /v1/models/{name}/browse"]
	if browse.Requests != 2 || browse.Errors != 1 {
		t.Errorf("browse route metrics = %+v", browse)
	}
	if h.Metrics.Routes["GET /v1/models"].Requests != 1 {
		t.Errorf("list route metrics = %+v", h.Metrics.Routes["GET /v1/models"])
	}
}

func TestBodySizeLimit(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxBodyBytes: 64})
	big := strings.Repeat("x", 200)
	req := httptest.NewRequest("PUT", "/v1/models/web", strings.NewReader(`{"addresses": ["`+big+`"]}`))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", w.Code)
	}
}
