package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"entropyip/internal/core"
	"entropyip/internal/drift"
	"entropyip/internal/ingest"
	"entropyip/internal/ip6"
	"entropyip/internal/obs"
	"entropyip/internal/obs/trace"
	"entropyip/internal/registry"
)

// DefaultEvaluateEvery is how many accepted observations pass between
// drift evaluations when RefreshOptions.EvaluateEvery is zero.
const DefaultEvaluateEvery = 1024

// RefreshOptions configures the online ingest → drift → retrain loop.
type RefreshOptions struct {
	// Ingest configures each model's observation buffer.
	Ingest ingest.Config
	// Drift configures divergence thresholds and hysteresis.
	Drift drift.Config
	// EvaluateEvery is how many accepted observations pass between drift
	// evaluations of a model. Zero means DefaultEvaluateEvery.
	EvaluateEvery int
	// AutoRefresh enables the full loop: when the detector says a model
	// drifted, retrain it on the live window, shadow-evaluate the
	// candidate and rotate. With it off, drift is scored and reported but
	// models are only rotated by hand.
	AutoRefresh bool
	// ShadowMargin is how much the candidate model's mean per-address
	// log-likelihood on the live window must exceed the active model's
	// before it may be published. Zero means any improvement.
	ShadowMargin float64
	// TrainWorkers bounds each retraining job's parallelism (0 = all
	// cores), like Options.TrainWorkers for client-requested training.
	TrainWorkers int
	// OnEvent, if non-nil, receives loop events (evaluations that trip or
	// clear the detector, rotations, shadow rejections) for logging.
	OnEvent func(model, event, detail string)
}

func (o RefreshOptions) evaluateEvery() int {
	if o.EvaluateEvery <= 0 {
		return DefaultEvaluateEvery
	}
	return o.EvaluateEvery
}

// RotationInfo describes one automatic model rotation.
type RotationInfo struct {
	// Version is the registry version the rotation published.
	Version int `json:"version"`
	// At is when the rotation happened.
	At time.Time `json:"at"`
	// StaleMeanLL and FreshMeanLL are the mean per-address log-likelihoods
	// of the replaced and published models on the shadow window.
	StaleMeanLL float64 `json:"stale_mean_ll"`
	FreshMeanLL float64 `json:"fresh_mean_ll"`
	// Window is the number of addresses the candidate was judged on.
	Window int `json:"window"`
}

// DriftStatus is the observable state of one model's ingest/drift loop.
type DriftStatus struct {
	// Model is the registry model name.
	Model string `json:"model"`
	// Ingest summarizes the observation buffer.
	Ingest ingest.Stats `json:"ingest"`
	// Evaluations counts drift evaluations so far.
	Evaluations int `json:"evaluations"`
	// Drifting is the detector's current state.
	Drifting bool `json:"drifting"`
	// Retraining is true while a retrain triggered by drift is running.
	Retraining bool `json:"retraining"`
	// Rotations counts models published by the refresh loop.
	Rotations int `json:"rotations"`
	// ShadowRejects counts candidates that failed shadow evaluation.
	ShadowRejects int `json:"shadow_rejects"`
	// LastVerdict is the most recent detector verdict (with its report).
	LastVerdict *drift.Verdict `json:"last_verdict,omitempty"`
	// LastRotation describes the most recent rotation.
	LastRotation *RotationInfo `json:"last_rotation,omitempty"`
	// LastError is the most recent retrain failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// RefreshSummary is the aggregate ingest/drift view exposed in healthz.
type RefreshSummary struct {
	// Models is the number of models receiving observations.
	Models int `json:"models"`
	// Drifting is how many of them are currently flagged as drifted.
	Drifting int `json:"drifting"`
	// Rotations and ShadowRejects sum the per-model counters.
	Rotations     int `json:"rotations"`
	ShadowRejects int `json:"shadow_rejects"`
	// Observed sums every address offered across all models.
	Observed uint64 `json:"observed"`
}

// modelStream is the per-model state of the refresh loop.
type modelStream struct {
	name string
	buf  *ingest.Buffer
	det  *drift.Detector

	mu            sync.Mutex
	sinceEval     int
	retraining    bool
	evaluations   int
	rotations     int
	shadowRejects int
	lastVerdict   *drift.Verdict
	lastRotation  *RotationInfo
	lastError     string
}

// Refresher ties ingest buffers, drift detection and the training pool
// into the model-refresh feedback loop: observations stream in per model,
// every EvaluateEvery accepted addresses the live window is scored against
// the active model, and — when the detector trips and AutoRefresh is on —
// a background retrain on the live window is shadow-evaluated and
// published as a new registry version. Rotation is atomic from the
// client's point of view: in-flight requests keep the *core.Model they
// resolved, new requests resolve the fresh version.
type Refresher struct {
	reg  *registry.Registry
	pool *Pool
	opts RefreshOptions

	// Observability wiring, installed by serve.New before traffic (tests
	// constructing a bare Refresher get a nop logger and nil-safe metrics).
	logger *slog.Logger
	// stage receives per-stage retrain build timings (the same
	// eip_training_stage_seconds histograms client training feeds).
	stage          func(stage string, d time.Duration)
	retrains       *obs.Counter
	retrainSeconds *obs.Histogram
	// tracer mints the refresh loop's own root traces: a retrain outlives
	// the request that triggered it, so it gets a fresh trace linked back
	// by a trigger_trace_id attribute instead of joining the request's.
	// Nil (bare test Refreshers) is fine — every trace call is nil-safe.
	tracer *trace.Tracer

	mu      sync.Mutex
	streams map[string]*modelStream
}

// NewRefresher returns a Refresher publishing through reg and running
// retrains on pool (the same bounded pool client-requested training uses,
// so refresh work and client work share the machine instead of
// oversubscribing it).
func NewRefresher(reg *registry.Registry, pool *Pool, opts RefreshOptions) *Refresher {
	return &Refresher{
		reg:     reg,
		pool:    pool,
		opts:    opts,
		logger:  obs.NopLogger(),
		streams: make(map[string]*modelStream),
	}
}

func (r *Refresher) event(model, event, detail string) {
	r.logger.Info("refresh", "model", model, "event", event, "detail", detail)
	if r.opts.OnEvent != nil {
		r.opts.OnEvent(model, event, detail)
	}
}

// stream returns (creating if needed) the per-model stream. The model must
// exist in the registry — observations for unknown models are an error,
// not a silent buffer.
func (r *Refresher) stream(name string) (*modelStream, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.streams[name]; ok {
		return s, nil
	}
	if _, err := r.reg.Versions(name); err != nil {
		return nil, err
	}
	s := &modelStream{
		name: name,
		buf:  ingest.New(r.opts.Ingest),
		det:  drift.NewDetector(r.opts.Drift),
	}
	r.streams[name] = s
	return s, nil
}

// ObserveResult summarizes one Observe call.
type ObserveResult struct {
	// Accepted is how many addresses entered the window (always the
	// batch size: the per-/64 cap replaces a prefix's oldest entry
	// rather than rejecting; displacements appear in ingest.Stats.Deduped).
	Accepted int
	// Evaluated is true when this batch crossed the evaluation interval
	// and drift was scored.
	Evaluated bool
	// Verdict is the evaluation's outcome when Evaluated.
	Verdict *drift.Verdict
}

// Observe feeds observed addresses into the named model's window and runs
// a drift evaluation whenever EvaluateEvery accepted observations have
// accumulated since the last one. The context carries the caller's trace;
// an evaluation this batch trips appears as a child span under it.
func (r *Refresher) Observe(ctx context.Context, name string, addrs []ip6.Addr) (ObserveResult, error) {
	s, err := r.stream(name)
	if err != nil {
		return ObserveResult{}, err
	}
	res := ObserveResult{Accepted: s.buf.AddBatch(addrs)}

	s.mu.Lock()
	s.sinceEval += res.Accepted
	due := s.sinceEval >= r.opts.evaluateEvery()
	if due {
		s.sinceEval = 0
	}
	s.mu.Unlock()
	if !due {
		return res, nil
	}

	v, err := r.Evaluate(ctx, name)
	if err != nil {
		return res, err
	}
	res.Evaluated = true
	res.Verdict = &v
	return res, nil
}

// Evaluate scores the named model's current window against its active
// version, feeds the detector, and — when drifted and AutoRefresh is on —
// kicks a background retrain. It is also the hook for operators to force
// an evaluation regardless of the observation counter.
func (r *Refresher) Evaluate(ctx context.Context, name string) (drift.Verdict, error) {
	span := requestSpan(ctx).StartChild("drift.evaluate")
	defer span.Finish()
	span.SetAttr("model", name)
	s, err := r.stream(name)
	if err != nil {
		span.SetError(err.Error())
		return drift.Verdict{}, err
	}
	m, _, err := r.reg.Get(name)
	if err != nil {
		span.SetError(err.Error())
		return drift.Verdict{}, err
	}
	rep, err := drift.Score(m, s.buf.Snapshot())
	if err != nil {
		span.SetError(err.Error())
		return drift.Verdict{}, err
	}
	v := s.det.Observe(rep)
	span.SetFloat("score", rep.Score)
	span.SetBool("drifting", v.Drifting)

	s.mu.Lock()
	if !v.Skipped {
		s.evaluations++
	}
	s.lastVerdict = &v
	shouldRetrain := v.Drifting && r.opts.AutoRefresh && !s.retraining
	if shouldRetrain {
		s.retraining = true
	}
	s.mu.Unlock()

	switch {
	case v.Entered:
		r.event(name, "drift-entered", v.Reason)
	case v.Exited:
		r.event(name, "drift-exited", v.Reason)
	}
	if shouldRetrain {
		span.SetBool("retrain_started", true)
		go r.retrain(s, traceIDString(ctx))
	}
	return v, nil
}

// retrain rebuilds the model on the live window, shadow-evaluates the
// candidate against the active version, and publishes it when it wins.
// Runs on the shared training pool; the stream's retraining flag is held
// for the duration so only one refresh per model is in flight.
//
// The whole chain runs under its own root trace ("refresh.retrain") with
// the triggering request's trace ID as an attribute: pool queue wait,
// the build with its pipeline stages as children, shadow evaluation and
// rotation. Failures and shadow rejections force the trace into the
// flight recorder; the trace ID becomes the retrain-latency exemplar.
func (r *Refresher) retrain(s *modelStream, triggerTraceID string) {
	root := r.tracer.StartRoot("refresh.retrain", trace.SpanContext{})
	root.SetAttr("model", s.name)
	if triggerTraceID != "" {
		root.SetAttr("trigger_trace_id", triggerTraceID)
	}
	var rootID string
	if tid := root.TraceID(); tid.IsValid() {
		rootID = tid.String()
	}
	var rejected string
	start := time.Now()
	ran := false
	err := r.pool.Do(context.Background(), func() error {
		ran = true
		root.RecordChild("pool.wait", time.Since(start))
		active, _, err := r.reg.Get(s.name)
		if err != nil {
			return err // model deleted since the evaluation
		}
		window := s.buf.Snapshot()
		if len(window) == 0 {
			return errors.New("empty observation window")
		}
		opts := active.Opts
		opts.Workers = r.opts.TrainWorkers
		trainSpan := root.StartChild("train")
		trainSpan.SetInt("window", int64(len(window)))
		opts.OnStage = func(stage string, d time.Duration) {
			if r.stage != nil {
				r.stage(stage, d)
			}
			trainSpan.RecordChild(stage, d)
			r.logger.Debug("training stage", "model", s.name, "origin", "refresh", "trace_id", rootID, "stage", stage, "duration", d)
		}
		candidate, err := core.Build(window, opts)
		if err != nil {
			trainSpan.SetError(err.Error())
			trainSpan.Finish()
			return fmt.Errorf("retraining: %w", err)
		}
		trainSpan.Finish()

		// Shadow evaluation on a fresh window: the candidate must fit the
		// live distribution better than the model it would replace. The
		// snapshot is re-taken so observations that arrived during the
		// (potentially long) build count against the candidate too.
		// drift.MeanLogLikelihood applies the same Prefix64Only masking as
		// Score, so the freshLL recorded as the detector baseline is on
		// the same scale as every later evaluation's.
		shadowSpan := root.StartChild("shadow.eval")
		shadow := s.buf.Snapshot()
		staleLL := drift.MeanLogLikelihood(active, shadow)
		freshLL := drift.MeanLogLikelihood(candidate, shadow)
		shadowSpan.SetFloat("stale_ll", staleLL)
		shadowSpan.SetFloat("fresh_ll", freshLL)
		shadowSpan.SetInt("window", int64(len(shadow)))
		if freshLL <= staleLL+r.opts.ShadowMargin {
			rejected = fmt.Sprintf("candidate mean LL %.3f <= active %.3f + margin %.3f",
				freshLL, staleLL, r.opts.ShadowMargin)
			shadowSpan.SetBool("rejected", true)
			shadowSpan.Finish()
			// A rejection means compute was burned for nothing publishable —
			// exactly the trace an operator wants retained.
			root.ForceKeep()
			return nil
		}
		shadowSpan.Finish()

		rotateSpan := root.StartChild("rotate")
		info, err := r.reg.Put(s.name, candidate)
		if err != nil {
			rotateSpan.SetError(err.Error())
			rotateSpan.Finish()
			return fmt.Errorf("publishing: %w", err)
		}
		rotateSpan.SetInt("version", int64(info.Version))
		rotateSpan.Finish()
		rot := &RotationInfo{
			Version:     info.Version,
			At:          info.Created,
			StaleMeanLL: staleLL,
			FreshMeanLL: freshLL,
			Window:      len(shadow),
		}
		s.det.Reset(freshLL)
		s.mu.Lock()
		s.rotations++
		s.lastRotation = rot
		s.lastError = ""
		s.mu.Unlock()
		r.event(s.name, "rotated", fmt.Sprintf("v%d: mean LL %.3f -> %.3f on %d addresses",
			info.Version, staleLL, freshLL, len(shadow)))
		return nil
	})

	if ran {
		// Count only retrains that actually ran (ErrBusy sheds before fn);
		// the duration includes the pool queue wait — it is the drift-to-
		// fresh-model latency an operator cares about. The trace ID links
		// the latency observation to the retained trace as its exemplar.
		if r.retrains != nil {
			r.retrains.Inc()
		}
		if r.retrainSeconds != nil {
			r.retrainSeconds.ObserveExemplar(time.Since(start).Seconds(), rootID)
		}
	}
	if err != nil {
		root.SetError(err.Error())
	}
	root.Finish()

	s.mu.Lock()
	s.retraining = false
	if rejected != "" {
		s.shadowRejects++
		s.lastError = ""
	}
	if err != nil {
		s.lastError = err.Error()
	}
	s.mu.Unlock()
	switch {
	case errors.Is(err, ErrBusy):
		// Pool saturated by client trainings: the next drifting
		// evaluation retries.
		r.event(s.name, "retrain-deferred", "training pool busy")
	case err != nil:
		r.event(s.name, "retrain-failed", err.Error())
	case rejected != "":
		r.event(s.name, "shadow-rejected", rejected)
	}
}

// Status returns the named model's drift status; ok is false when the
// model has received no observations.
func (r *Refresher) Status(name string) (DriftStatus, bool) {
	r.mu.Lock()
	s, ok := r.streams[name]
	r.mu.Unlock()
	if !ok {
		return DriftStatus{}, false
	}
	drifting, _ := s.det.State()
	s.mu.Lock()
	defer s.mu.Unlock()
	return DriftStatus{
		Model:         s.name,
		Ingest:        s.buf.Stats(),
		Evaluations:   s.evaluations,
		Drifting:      drifting,
		Retraining:    s.retraining,
		Rotations:     s.rotations,
		ShadowRejects: s.shadowRejects,
		LastVerdict:   s.lastVerdict,
		LastRotation:  s.lastRotation,
		LastError:     s.lastError,
	}, true
}

// Summary aggregates all streams for healthz.
func (r *Refresher) Summary() RefreshSummary {
	r.mu.Lock()
	streams := make([]*modelStream, 0, len(r.streams))
	for _, s := range r.streams {
		streams = append(streams, s)
	}
	r.mu.Unlock()
	out := RefreshSummary{Models: len(streams)}
	for _, s := range streams {
		drifting, _ := s.det.State()
		if drifting {
			out.Drifting++
		}
		st := s.buf.Stats()
		out.Observed += st.Observed
		s.mu.Lock()
		out.Rotations += s.rotations
		out.ShadowRejects += s.shadowRejects
		s.mu.Unlock()
	}
	return out
}

// collect emits per-model ingest/drift/refresh series for one scrape.
// Per-model series are collector-driven rather than registered, so a
// Forget (model delete) stops emitting the model's series on the next
// scrape instead of leaking them forever. Streams are sorted by name for
// deterministic exposition output.
func (r *Refresher) collect(e *obs.Expo) {
	r.mu.Lock()
	streams := make([]*modelStream, 0, len(r.streams))
	for _, s := range r.streams {
		streams = append(streams, s)
	}
	r.mu.Unlock()
	sort.Slice(streams, func(i, j int) bool { return streams[i].name < streams[j].name })

	for _, s := range streams {
		st := s.buf.Stats()
		drifting, _ := s.det.State()
		e.Gauge("eip_ingest_window", "Addresses currently in the model's observation window.", float64(st.Window), "model", s.name)
		e.Gauge("eip_ingest_window_capacity", "Configured observation window size.", float64(st.WindowCapacity), "model", s.name)
		e.Gauge("eip_ingest_prefixes64", "Distinct /64 prefixes in the window.", float64(st.Prefixes64), "model", s.name)
		e.Counter("eip_ingest_observed_total", "Addresses offered to the model's window.", float64(st.Observed), "model", s.name)
		e.Counter("eip_ingest_cap_displacements_total", "Same-/64 window entries displaced early by the per-/64 cap.", float64(st.Deduped), "model", s.name)
		e.Counter("eip_ingest_evictions_total", "Window slots overwritten by newer observations.", float64(st.Evicted), "model", s.name)
		e.Counter("eip_ingest_reservoir_replacements_total", "Long-horizon reservoir slots replaced by algorithm R.", float64(st.ReservoirReplaced), "model", s.name)

		s.mu.Lock()
		evals := s.evaluations
		rotations := s.rotations
		rejects := s.shadowRejects
		retraining := s.retraining
		score, haveScore := 0.0, false
		if s.lastVerdict != nil {
			score, haveScore = s.lastVerdict.Report.Score, true
		}
		s.mu.Unlock()

		e.Gauge("eip_drift_drifting", "1 while the detector flags the model as drifted.", b2f(drifting), "model", s.name)
		e.Counter("eip_drift_evaluations_total", "Drift evaluations run for the model.", float64(evals), "model", s.name)
		if haveScore {
			e.Gauge("eip_drift_score", "Drift score of the most recent evaluation (weighted mean per-segment JS divergence).", score, "model", s.name)
		}
		e.Counter("eip_refresh_rotations_total", "Models published by the refresh loop.", float64(rotations), "model", s.name)
		e.Counter("eip_refresh_shadow_rejects_total", "Retrained candidates that failed shadow evaluation.", float64(rejects), "model", s.name)
		e.Gauge("eip_refresh_retraining", "1 while a drift-triggered retrain is in flight.", b2f(retraining), "model", s.name)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Forget drops the named model's stream (after a registry delete).
func (r *Refresher) Forget(name string) {
	r.mu.Lock()
	delete(r.streams, name)
	r.mu.Unlock()
}
