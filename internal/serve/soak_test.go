package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"entropyip/internal/admission"
	"entropyip/internal/core"
)

// TestSoakMultiTenantAdmission is the chaos/soak stage: several tenants
// hammer a live server — one greedy tenant saturating its generation
// budget, polite tenants issuing small generates and observes — while a
// rotator goroutine keeps replacing the model underneath them, the
// production refresh shape. The admission invariants under churn:
//
//   - every refused request is an explicit 429 with Retry-After — no
//     silent drops, no 5xx, no hung connections;
//   - polite tenants are isolated: the greedy tenant's saturation must
//     not starve them of admissions or blow up their admitted latency;
//   - nothing leaks: goroutines return to baseline and heap growth stays
//     bounded once the storm passes.
//
// CI runs this under -race (see the soak job), which is where the
// admission bookkeeping would surface data races with rotation.
func TestSoakMultiTenantAdmission(t *testing.T) {
	duration := 3 * time.Second
	if testing.Short() {
		duration = 1 * time.Second
	}

	s, reg := newTestServer(t, Options{
		Admission: admission.Config{
			RequestRate:  500,
			RequestBurst: 100,
			GenBudget:    20000,
			GenBurst:     10000,
			TenantSlots:  2,
			QueueDepth:   8,
			MaxWait:      200 * time.Millisecond,
		},
		FlushEvery: 64,
	})
	// Prebuilt variants so the rotator swaps models without paying a
	// training run per rotation.
	models := []*core.Model{testModel(t, 1), testModel(t, 2), testModel(t, 3)}
	if _, err := reg.Put("live", models[0]); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()

	baseline := runtime.NumGoroutine()

	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		rotations  atomic.Int64
		admitted   [2]atomic.Int64 // [0] greedy, [1] polite
		shed       [2]atomic.Int64
		mu         sync.Mutex
		violations []string        // non-(200|429) statuses, missing Retry-After
		politeLat  []time.Duration // latency of each admitted polite request
	)
	violation := func(format string, args ...interface{}) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	// checkResponse consumes the body and enforces the shed contract.
	checkResponse := func(who int, label string, resp *http.Response, err error) {
		if err != nil {
			violation("%s: transport error: %v", label, err)
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			admitted[who].Add(1)
		case http.StatusTooManyRequests:
			shed[who].Add(1)
			if resp.Header.Get("Retry-After") == "" {
				violation("%s: 429 without Retry-After", label)
			}
		default:
			violation("%s: status %d, want 200 or 429", label, resp.StatusCode)
		}
	}
	post := func(tenant, path, body string) (*http.Response, error) {
		req, err := http.NewRequest("POST", ts.URL+path, strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("X-Tenant", tenant)
		req.Header.Set("Content-Type", "application/json")
		return client.Do(req)
	}

	// Chaos: rotate the model for the whole run, the Refresher's rotation
	// shape (registry Put swaps the current version atomically).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(25 * time.Millisecond):
			}
			if _, err := reg.Put("live", models[i%len(models)]); err != nil {
				violation("rotation %d: %v", i, err)
				return
			}
			rotations.Add(1)
		}
	}()

	// Greedy tenant: two goroutines issuing oversized generates back to
	// back. Each one overdraws the 10k-candidate burst, so the budget
	// gate throttles this tenant almost immediately and keeps throttling
	// it as the bucket refills.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := 0; ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := post("greedy", "/v1/models/live/generate",
					fmt.Sprintf(`{"count": 20000, "seed": %d}`, seed))
				checkResponse(0, "greedy generate", resp, err)
			}
		}()
	}

	// Polite tenants: small generates plus observe batches, with the
	// admitted-request latency recorded for the isolation bound.
	for p := 0; p < 2; p++ {
		tenant := fmt.Sprintf("polite-%d", p)
		wg.Add(1)
		go func() {
			defer wg.Done()
			observe := strings.Repeat("2001:db8:700:0:1:2:3:4\n", 64)
			for seed := 0; ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				resp, err := post(tenant, "/v1/models/live/generate",
					fmt.Sprintf(`{"count": 50, "seed": %d}`, seed))
				ok := err == nil && resp.StatusCode == http.StatusOK
				checkResponse(1, tenant+" generate", resp, err)
				if ok {
					elapsed := time.Since(start)
					mu.Lock()
					politeLat = append(politeLat, elapsed)
					mu.Unlock()
				}
				resp, err = post(tenant, "/v1/models/live/observe", observe)
				checkResponse(1, tenant+" observe", resp, err)
				// Polite means paced: leave headroom between requests.
				select {
				case <-stop:
					return
				case <-time.After(10 * time.Millisecond):
				}
			}
		}()
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for i, v := range violations {
		if i == 10 {
			t.Errorf("... and %d more violations", len(violations)-10)
			break
		}
		t.Error(v)
	}
	if rotations.Load() == 0 {
		t.Error("model never rotated: the chaos stage did not run")
	}
	if shed[0].Load() == 0 {
		t.Error("greedy tenant was never shed: admission did not engage")
	}
	if n := admitted[1].Load(); n < 5 {
		t.Errorf("polite tenants admitted only %d requests under greedy load: starved", n)
	}
	// Isolation bound: admitted polite requests must stay responsive even
	// while greedy saturates its budget. The bound is deliberately loose —
	// CI runs single-core under -race — but a tenant blocked behind the
	// greedy tenant's queue would overshoot it by an order of magnitude.
	var worst time.Duration
	for _, d := range politeLat {
		if d > worst {
			worst = d
		}
	}
	if worst > 10*time.Second {
		t.Errorf("worst admitted polite latency %v: greedy tenant degraded another tenant's admitted requests", worst)
	}

	// Leak checks: connections idle out, goroutines return to baseline,
	// heap settles. Poll with a deadline — conn teardown is asynchronous.
	client.CloseIdleConnections()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+5 {
			break
		} else if time.Now().After(deadline) {
			t.Errorf("goroutines = %d after soak, baseline %d: leak", g, baseline)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	const heapBound = 256 << 20
	if ms.HeapAlloc > heapBound {
		t.Errorf("heap alloc %d after soak exceeds %d: unbounded growth", ms.HeapAlloc, uint64(heapBound))
	}

	t.Logf("soak: rotations=%d greedy admitted=%d shed=%d polite admitted=%d shed=%d worst polite latency=%v",
		rotations.Load(), admitted[0].Load(), shed[0].Load(), admitted[1].Load(), shed[1].Load(), worst)
}

// TestSoakShedStatsConsistent cross-checks the admission controller's
// own accounting after a burst: everything the server refused is
// attributed to a shed reason, and the queue/slot gauges are back to
// zero once the burst drains.
func TestSoakShedStatsConsistent(t *testing.T) {
	s, reg := newTestServer(t, Options{Admission: admission.Config{
		RequestRate:  0.001,
		RequestBurst: 5,
	}})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	var got200, got429 int
	for i := 0; i < 20; i++ {
		switch w := doAs(t, s, "burst", "GET", "/v1/models", nil); w.Code {
		case http.StatusOK:
			got200++
		case http.StatusTooManyRequests:
			got429++
		default:
			t.Fatalf("request %d: status %d", i, w.Code)
		}
	}
	if got200 != 5 || got429 != 15 {
		t.Fatalf("admitted=%d shed=%d, want 5/15", got200, got429)
	}
	st := s.adm.Stats()
	if st.Admitted != 5 || st.Shed() != 15 || st.ShedRate != 15 {
		t.Fatalf("controller stats %+v disagree with observed 5 admitted / 15 rate-shed", st)
	}
	if st.QueueDepth != 0 || st.SlotsInUse != 0 {
		t.Fatalf("queue/slot gauges nonzero at rest: %+v", st)
	}
}
