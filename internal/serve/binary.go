package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"entropyip/internal/admission"
	"entropyip/internal/core"
	"entropyip/internal/ip6"
	"entropyip/internal/obs/trace"
	"entropyip/internal/wire"
)

// This file is the binary half of the wire-protocol redesign (PR 7): the
// Accept/Content-Type negotiation between NDJSON and the framed binary
// encoding of internal/wire, the batch (multi-stream) generate engine
// both encodings share, and the binary /observe decode path. The
// single-stream NDJSON path in server.go is untouched and byte-identical
// to what PR 5 pinned.

// encoding is a negotiated request/response encoding.
type encoding int

const (
	encNDJSON encoding = iota
	encBinary
)

// Row indexes into Server.encRequests (columns are the encoding values).
const (
	routeGenerate = 0
	routeObserve  = 1
)

func (e encoding) String() string {
	if e == encBinary {
		return "binary"
	}
	return "ndjson"
}

// contentType returns the media type the encoding is served under.
func (e encoding) contentType() string {
	if e == encBinary {
		return wire.ContentType
	}
	return "application/x-ndjson"
}

// negotiateGenerateEncoding picks the generate response encoding from
// the Accept header. The binary type wins whenever it appears; an absent
// or wildcard Accept keeps the NDJSON default; an Accept that admits
// neither encoding is a 406. Quality parameters are ignored — a client
// that sends q-values still gets the most capable encoding it listed.
func negotiateGenerateEncoding(r *http.Request) (encoding, error) {
	accept := r.Header.Get("Accept")
	if accept == "" {
		return encNDJSON, nil
	}
	ndjsonOK := false
	for rest := accept; rest != ""; {
		var part string
		part, rest, _ = strings.Cut(rest, ",")
		if i := strings.IndexByte(part, ';'); i >= 0 {
			part = part[:i]
		}
		part = strings.TrimSpace(part)
		switch {
		case strings.EqualFold(part, wire.ContentType):
			return encBinary, nil
		case strings.EqualFold(part, "application/x-ndjson"),
			strings.EqualFold(part, "application/json"),
			strings.EqualFold(part, "application/*"),
			part == "*/*":
			ndjsonOK = true
		}
	}
	if ndjsonOK {
		return encNDJSON, nil
	}
	return 0, fmt.Errorf("Accept %q admits no supported encoding (application/x-ndjson, %s)", accept, wire.ContentType)
}

// isBinaryContentType reports whether a request body is declared as the
// binary wire encoding.
func isBinaryContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.EqualFold(strings.TrimSpace(ct), wire.ContentType)
}

// MaxGenerateStreams caps the streams of one batch generate request at
// what the wire format's frame stream index can address.
const MaxGenerateStreams = wire.MaxStreams

// maxConcurrentStreams bounds how many of a batch request's streams
// generate at once; the rest start as earlier ones finish. Frames (or
// NDJSON lines) interleave only among running streams, so this also
// bounds the demultiplexing state a client holds at once.
const maxConcurrentStreams = 8

// resolvedStream is one generate stream after request validation, its
// seed derived when the request omitted one. Evidence stays in request
// form — the engine validates it against the model at generation time,
// per stream.
type resolvedStream struct {
	count       int
	seed        int64
	evidence    core.Evidence
	maxAttempts int
}

// resolveStreams validates a generate request into its stream list and
// reports whether the request was batch-form. Single requests use the
// legacy top-level fields; batch requests move count, seed, evidence and
// max_attempts_factor per stream and must leave the top-level ones
// unset.
func (s *Server) resolveStreams(req *GenerateRequest) ([]resolvedStream, bool, error) {
	maxCount := s.opts.maxGenerateCount()
	if len(req.Streams) == 0 {
		if req.Count <= 0 {
			return nil, false, fmt.Errorf("count must be positive")
		}
		if req.Count > maxCount {
			return nil, false, fmt.Errorf("count %d exceeds limit %d", req.Count, maxCount)
		}
		if req.MaxAttemptsFactor < 0 || req.MaxAttemptsFactor > MaxAttemptsFactorLimit {
			return nil, false, fmt.Errorf("max_attempts_factor must be in 0..%d", MaxAttemptsFactorLimit)
		}
		seed := randomSeed()
		if req.Seed != nil {
			seed = *req.Seed
		}
		return []resolvedStream{{
			count:       req.Count,
			seed:        seed,
			evidence:    core.Evidence(req.Evidence),
			maxAttempts: req.MaxAttemptsFactor,
		}}, false, nil
	}
	if req.Count != 0 || req.Seed != nil || len(req.Evidence) > 0 || req.MaxAttemptsFactor != 0 {
		return nil, true, fmt.Errorf("streams and top-level count/seed/evidence/max_attempts_factor are mutually exclusive")
	}
	if len(req.Streams) > MaxGenerateStreams {
		return nil, true, fmt.Errorf("%d streams exceed limit %d", len(req.Streams), MaxGenerateStreams)
	}
	out := make([]resolvedStream, len(req.Streams))
	total := 0
	for i, st := range req.Streams {
		if st.Count <= 0 {
			return nil, true, fmt.Errorf("streams[%d].count must be positive", i)
		}
		if st.MaxAttemptsFactor < 0 || st.MaxAttemptsFactor > MaxAttemptsFactorLimit {
			return nil, true, fmt.Errorf("streams[%d].max_attempts_factor must be in 0..%d", i, MaxAttemptsFactorLimit)
		}
		total += st.Count
		if total > maxCount {
			return nil, true, fmt.Errorf("total count across streams exceeds limit %d", maxCount)
		}
		seed := randomSeed()
		if st.Seed != nil {
			seed = *st.Seed
		}
		out[i] = resolvedStream{
			count:       st.Count,
			seed:        seed,
			evidence:    core.Evidence(st.Evidence),
			maxAttempts: st.MaxAttemptsFactor,
		}
	}
	return out, true, nil
}

// seedHeader renders the X-Seed value: the stream seeds, comma-joined in
// stream order (a single stream's header is just its seed, as before).
func seedHeader(streams []resolvedStream) string {
	if len(streams) == 1 {
		return strconv.FormatInt(streams[0].seed, 10)
	}
	var b strings.Builder
	for i, st := range streams {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(st.seed, 10))
	}
	return b.String()
}

// generateOptions builds the engine options for one resolved stream.
// Without Stop, a disconnected client would keep the generator spinning
// through duplicate draws until the attempt budget runs out.
func (s *Server) generateOptions(ctx context.Context, st resolvedStream, req *GenerateRequest) core.GenerateOptions {
	workers := req.Workers
	if workers == 0 {
		workers = s.opts.GenerateWorkers
	}
	return core.GenerateOptions{
		Count:             st.count,
		Seed:              st.seed,
		Evidence:          st.evidence,
		MaxAttemptsFactor: st.maxAttempts,
		Workers:           workers,
		Unordered:         req.Unordered,
		Stop:              func() bool { return ctx.Err() != nil || s.isDraining() },
	}
}

// streamGate bounds how many of a batch request's streams generate at
// once. With admission slot gating on, every producer claims one of the
// TENANT's slots — per-tenant isolation, so a greedy batch queues behind
// its own tenant's work, not everyone's. Otherwise a per-request
// semaphore of maxConcurrentStreams preserves the PR 7 behavior.
type streamGate struct {
	adm    *admission.Controller
	tenant string
	sem    chan struct{}
}

func (s *Server) newStreamGate(ctx context.Context) *streamGate {
	if s.adm != nil && s.opts.Admission.TenantSlots > 0 {
		return &streamGate{adm: s.adm, tenant: tenantFrom(ctx)}
	}
	return &streamGate{sem: make(chan struct{}, maxConcurrentStreams)}
}

// acquire claims one generation slot, blocking until a slot frees or the
// context dies; ok=false means the stream must not run.
func (g *streamGate) acquire(ctx context.Context) (func(), bool) {
	if g.adm != nil {
		return g.adm.WaitSlot(ctx, g.tenant)
	}
	select {
	case g.sem <- struct{}{}:
		return func() { <-g.sem }, true
	case <-ctx.Done():
		return func() {}, false
	}
}

// lockedSink serializes frame/line writes from concurrent stream
// producers onto one buffered response writer. Each Write call must be
// one complete frame (or NDJSON line) — wire.Writer guarantees this —
// so frames of different streams interleave without tearing. The first
// error (including client disconnect) sticks and fails every later
// write, stopping all producers.
type lockedSink struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	flusher http.Flusher
	ctx     context.Context
	// every flushes after that many writes; 1 flushes each write.
	every  int
	n      int
	writes int64
	err    error
}

func (ls *lockedSink) Write(p []byte) (int, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.err != nil {
		return 0, ls.err
	}
	if ls.ctx.Err() != nil {
		ls.err = ls.ctx.Err()
		return 0, ls.err
	}
	n, err := ls.bw.Write(p)
	if err != nil {
		ls.err = err
		return n, err
	}
	ls.writes++
	ls.n++
	if ls.n%ls.every == 0 {
		if err := ls.bw.Flush(); err != nil {
			ls.err = err
			return n, err
		}
		if ls.flusher != nil {
			ls.flusher.Flush()
		}
	}
	return n, nil
}

// wroteAny reports whether any frame/line reached the buffered writer —
// after which the 200 status may be on the wire and errors must go
// in-band.
func (ls *lockedSink) wroteAny() bool {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return ls.writes > 0
}

// wireWriterPool reuses per-stream binary frame encoders; Reset keeps
// each Writer's frame buffer, so steady state allocates nothing.
var wireWriterPool = sync.Pool{
	New: func() interface{} { return new(wire.Writer) },
}

// wireReaderPool reuses binary body decoders (one fixed payload buffer
// each) across /observe requests.
var wireReaderPool = sync.Pool{
	New: func() interface{} { return new(wire.Reader) },
}

// generateBinary streams candidates in the framed binary encoding,
// single-stream or batch. The stream header goes out first; stream
// producers then run concurrently (bounded by maxConcurrentStreams),
// each multiplexing complete frames onto the shared sink. A stream that
// fails after bytes are on the wire reports in-band through its Error
// frame; a single-stream request that fails before anything was flushed
// still gets a clean error envelope.
func (s *Server) generateBinary(w http.ResponseWriter, r *http.Request, m *core.Model, req *GenerateRequest, streams []resolvedStream, batch bool, release func()) {
	ctx := r.Context()
	if batch {
		// The request-level admission slot goes back before fan-out: each
		// producer claims its own tenant slot through the stream gate, and
		// holding the request's would deadlock a one-slot tenant against
		// its own batch.
		release()
	} else {
		defer release()
	}
	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriterSize(w, 32<<10)
	// Data frames are kilobytes each, so flushing every frame keeps
	// time-to-first-candidate low without defeating buffering.
	sink := &lockedSink{bw: bw, flusher: flusher, ctx: ctx, every: 1}

	var flags uint8
	if req.Prefixes {
		flags |= wire.FlagPrefixes
	}
	if batch {
		flags |= wire.FlagBatch
	}
	// The header goes into the bufio buffer but is not flushed: if a
	// single-stream request fails before its first frame, the buffer is
	// simply abandoned and a JSON error envelope written instead.
	var hb [wire.HeaderSize]byte
	if _, err := bw.Write(wire.AppendHeader(hb[:0], wire.Header{
		Flags:   flags,
		Streams: len(streams),
		Seed:    streams[0].seed,
	})); err != nil {
		return
	}
	// The request's trace ID rides right behind the header as a Trace
	// frame, so a client holding only the binary stream (possibly saved to
	// disk) can still pull the matching flight-recorder trace. It shares
	// the header's not-flushed-yet property: abandoned with the buffer if
	// a single-stream request dies before its first data frame.
	root := requestSpan(ctx)
	if tid := root.TraceID(); tid.IsValid() {
		var tb [wire.FrameHeaderSize + 16]byte
		if _, err := bw.Write(wire.AppendTraceFrame(tb[:0], 0, tid)); err != nil {
			return
		}
	}

	var produced int64
	streamErrs := make([]error, len(streams))
	runStream := func(idx int, span *trace.Span) {
		defer span.Finish()
		st := streams[idx]
		span.SetInt("stream", int64(idx))
		span.SetInt("count", int64(st.count))
		span.SetInt("seed", st.seed)
		ww := wireWriterPool.Get().(*wire.Writer)
		defer wireWriterPool.Put(ww)
		ww.Reset(sink, idx, req.Prefixes, s.opts.flushEvery())
		if batch {
			if ww.Seed(st.seed) != nil {
				return
			}
		}
		opts := s.generateOptions(ctx, st, req)
		var n int64
		var werr error
		var err error
		if req.Prefixes {
			err = m.GeneratePrefixesStream(opts, func(p ip6.Prefix) bool {
				n++
				werr = ww.AddPrefix(p)
				return werr == nil
			})
		} else {
			err = m.GenerateStream(opts, func(a ip6.Addr) bool {
				n++
				werr = ww.AddAddr(a)
				return werr == nil
			})
		}
		atomic.AddInt64(&produced, n)
		span.SetInt("produced", n)
		switch {
		case werr != nil || ctx.Err() != nil:
			// The sink is dead (client gone or write failure); nothing
			// more to say on the wire.
		case err != nil:
			span.SetError(err.Error())
			if !batch && !sink.wroteAny() {
				// Nothing flushed yet: the caller answers with a clean
				// error envelope instead of a binary Error frame.
				streamErrs[idx] = err
				return
			}
			s.logger.Error("generate failed mid-stream",
				"request_id", requestID(ctx),
				"trace_id", traceIDString(ctx),
				"model", r.PathValue("name"),
				"stream", idx,
				"encoding", "binary",
				"err", err)
			_ = ww.Error(err.Error())
		default:
			if s.isDraining() && n < int64(st.count) {
				// Drain cut this stream short: say so in-band, so the
				// client can tell the cut from exhausted model support.
				_ = ww.Error(drainMessage)
			} else {
				_ = ww.End()
			}
		}
	}

	if !batch {
		runStream(0, root.StartChild("generate.stream"))
		if streamErrs[0] != nil {
			writeError(w, r, http.StatusBadRequest, "%v", streamErrs[0])
			return
		}
	} else {
		gate := s.newStreamGate(ctx)
		var wg sync.WaitGroup
		for i := range streams {
			// Children start before the goroutine handoff (span ownership
			// rule, DESIGN.md §9); their duration therefore includes the
			// slot queue wait, which is part of what the client paid.
			span := root.StartChild("generate.stream")
			wg.Add(1)
			go func(i int, span *trace.Span) {
				defer wg.Done()
				done, ok := gate.acquire(ctx)
				if !ok {
					span.Finish()
					return
				}
				defer done()
				runStream(i, span)
			}(i, span)
		}
		wg.Wait()
	}
	_ = bw.Flush()
	s.candidates.Add(uint64(atomic.LoadInt64(&produced)))
}

// generateNDJSONBatch streams a batch request in NDJSON: one object per
// line, each tagged with its stream index —
//
//	{"stream":0,"addr":"2001:db8::1"}
//	{"stream":1,"prefix":"2001:db8::/64"}
//	{"stream":0,"done":true}           stream completed
//	{"stream":1,"error":"..."}         stream failed mid-way
//
// Lines of different streams interleave arbitrarily; lines of one
// stream are in its deterministic order. Stream seeds are echoed
// comma-joined in X-Seed (GenerateItem decodes these lines client-side).
func (s *Server) generateNDJSONBatch(w http.ResponseWriter, r *http.Request, m *core.Model, req *GenerateRequest, streams []resolvedStream, release func()) {
	ctx := r.Context()
	// Same slot handoff as the binary batch path: producers claim their
	// own tenant slots, so the request-level one goes back first.
	release()
	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriterSize(w, 32<<10)
	sink := &lockedSink{bw: bw, flusher: flusher, ctx: ctx, every: s.opts.flushEvery()}

	var produced int64
	runStream := func(idx int, span *trace.Span) {
		defer span.Finish()
		st := streams[idx]
		span.SetInt("stream", int64(idx))
		span.SetInt("count", int64(st.count))
		span.SetInt("seed", st.seed)
		lb := getLineBuf()
		defer putLineBuf(lb)
		prefix := `{"stream":` + strconv.Itoa(idx) + `,`
		opts := s.generateOptions(ctx, st, req)
		var n int64
		var werr error
		write := func() bool {
			_, werr = sink.Write(lb.b)
			return werr == nil
		}
		var err error
		if req.Prefixes {
			err = m.GeneratePrefixesStream(opts, func(p ip6.Prefix) bool {
				lb.b = append(lb.b[:0], prefix...)
				lb.b = append(lb.b, `"prefix":"`...)
				lb.b = p.AppendString(lb.b)
				lb.b = append(lb.b, '"', '}', '\n')
				n++
				return write()
			})
		} else {
			err = m.GenerateStream(opts, func(a ip6.Addr) bool {
				lb.b = append(lb.b[:0], prefix...)
				lb.b = append(lb.b, `"addr":"`...)
				lb.b = a.AppendString(lb.b)
				lb.b = append(lb.b, '"', '}', '\n')
				n++
				return write()
			})
		}
		atomic.AddInt64(&produced, n)
		span.SetInt("produced", n)
		switch {
		case werr != nil || ctx.Err() != nil:
		case err != nil:
			span.SetError(err.Error())
			s.logger.Error("generate failed mid-stream",
				"request_id", requestID(ctx),
				"trace_id", traceIDString(ctx),
				"model", r.PathValue("name"),
				"stream", idx,
				"encoding", "ndjson",
				"err", err)
			lb.b = append(lb.b[:0], prefix...)
			lb.b = append(lb.b, `"error":`...)
			lb.b = appendJSONString(lb.b, err.Error())
			if tid := traceIDString(ctx); tid != "" {
				lb.b = append(lb.b, `,"trace_id":`...)
				lb.b = appendJSONString(lb.b, tid)
			}
			lb.b = append(lb.b, '}', '\n')
			_, _ = sink.Write(lb.b)
		default:
			lb.b = append(lb.b[:0], prefix...)
			if s.isDraining() && n < int64(st.count) {
				// Drain cut this stream short: an in-band error line, so
				// the client can tell it from exhausted model support.
				lb.b = append(lb.b, `"error":`...)
				lb.b = appendJSONString(lb.b, drainMessage)
				lb.b = append(lb.b, '}', '\n')
			} else {
				lb.b = append(lb.b, `"done":true}`...)
				lb.b = append(lb.b, '\n')
			}
			_, _ = sink.Write(lb.b)
		}
	}

	root := requestSpan(ctx)
	gate := s.newStreamGate(ctx)
	var wg sync.WaitGroup
	for i := range streams {
		span := root.StartChild("generate.stream")
		wg.Add(1)
		go func(i int, span *trace.Span) {
			defer wg.Done()
			done, ok := gate.acquire(ctx)
			if !ok {
				span.Finish()
				return
			}
			defer done()
			runStream(i, span)
		}(i, span)
	}
	wg.Wait()
	_ = bw.Flush()
	if flusher != nil {
		flusher.Flush()
	}
	s.candidates.Add(uint64(atomic.LoadInt64(&produced)))
}

// observeBinary ingests a framed binary /observe body: address frames
// stream into the model's observation window in the same bounded
// batches as the text path. Malformed framing rejects the request — a
// binary body is machine-written, so unlike text lines a bad frame is a
// protocol error, not traffic noise to skip (there is no Invalid count
// on this path).
func (s *Server) observeBinary(w http.ResponseWriter, r *http.Request, name string) {
	body := http.MaxBytesReader(w, r.Body, s.opts.maxBodyBytes())
	rd := wireReaderPool.Get().(*wire.Reader)
	defer wireReaderPool.Put(rd)
	if err := rd.Reset(body); err != nil {
		writeWireError(w, r, err)
		return
	}
	if rd.Header().Prefixes() {
		writeError(w, r, http.StatusBadRequest, "observe ingests addresses; prefix streams are not accepted")
		return
	}

	var out ObserveResponse
	// Same ingest span as the NDJSON path: it covers the frame decode and
	// any drift evaluation a batch trips (a child, via the context).
	span := requestSpan(r.Context()).StartChild("observe.ingest")
	ctx := trace.ContextWithSpan(r.Context(), span)
	defer func() {
		span.SetInt("accepted", int64(out.Accepted))
		span.Finish()
	}()
	batchp := observeBatchPool.Get().(*[]ip6.Addr)
	batch := (*batchp)[:0]
	defer func() {
		*batchp = batch[:0]
		observeBatchPool.Put(batchp)
	}()
decode:
	for {
		f, err := rd.Next()
		switch {
		case err == io.EOF:
			break decode
		case err != nil:
			writeWireError(w, r, err)
			return
		}
		switch f.Kind {
		case wire.KindAddrs:
			for i := 0; i < f.Count; i++ {
				batch = append(batch, f.Addr(i))
				if len(batch) >= observeBatchSize {
					if !s.observeFlush(ctx, w, r, name, &batch, &out) {
						return
					}
				}
			}
		case wire.KindEnd:
			// Stream complete; keep reading so multi-stream bodies (e.g. a
			// saved batch response piped back) drain every stream's End.
		case wire.KindSeed:
			// Seed frames are meaningful on generate responses only; a
			// replayed capture may carry them, and they are no-ops here.
		case wire.KindTrace:
			// Trace frames identify the generate response they came from;
			// a replayed capture carries one, and it is a no-op here.
		default:
			writeError(w, r, http.StatusBadRequest,
				"unexpected frame kind 0x%02x in observe body", f.Kind)
			return
		}
	}
	if !s.observeFlush(ctx, w, r, name, &batch, &out) {
		return
	}
	out.Drift, _ = s.refresher.Status(name)
	writeJSON(w, http.StatusOK, out)
}

// writeWireError maps binary-decode failures onto the error envelope:
// body-size overruns are 413 like everywhere else; anything wrong with
// the framing itself is a 400.
func writeWireError(w http.ResponseWriter, r *http.Request, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, r, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
		return
	}
	writeError(w, r, http.StatusBadRequest, "invalid binary body: %v", err)
}

// observeFlush pushes the accumulated batch into the model's window,
// folding the result into out. On registry errors it answers the
// request itself and returns false.
func (s *Server) observeFlush(ctx context.Context, w http.ResponseWriter, r *http.Request, name string, batch *[]ip6.Addr, out *ObserveResponse) bool {
	if len(*batch) == 0 {
		return true
	}
	res, err := s.refresher.Observe(ctx, name, *batch)
	*batch = (*batch)[:0]
	if err != nil {
		writeRegistryError(w, r, err)
		return false
	}
	out.Accepted += res.Accepted
	out.Evaluated = out.Evaluated || res.Evaluated
	s.observeAccepted.Add(uint64(res.Accepted))
	return true
}
