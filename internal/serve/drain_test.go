package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"entropyip/internal/wire"
)

// These tests pin the graceful-shutdown drain contract: once Drain is
// called, an in-flight generate stream stops after its current candidate
// and the client receives an explicit in-band signal — an NDJSON error
// line, or a binary Error frame — distinguishable from a legitimately
// short stream (exhausted model support ends with no error marker).

// lastNDJSONLine returns the final non-empty line of a body.
func lastNDJSONLine(t *testing.T, body string) GenerateItem {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) == 0 || lines[len(lines)-1] == "" {
		t.Fatalf("no NDJSON lines in body %q", body)
	}
	var item GenerateItem
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &item); err != nil {
		t.Fatalf("decoding last line %q: %v", lines[len(lines)-1], err)
	}
	return item
}

func TestDrainEmitsNDJSONErrorLine(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	w := do(t, s, "POST", "/v1/models/web/generate", GenerateRequest{Count: 50000, Seed: seedPtr(7)})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	item := lastNDJSONLine(t, w.Body.String())
	if item.Error != drainMessage {
		t.Fatalf("last line = %+v, want error %q", item, drainMessage)
	}
	if item.TraceID == "" {
		t.Error("drain trailer line is missing the trace_id handle")
	}
}

func TestDrainEmitsBatchNDJSONErrorLines(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	w := do(t, s, "POST", "/v1/models/web/generate", GenerateRequest{Streams: []GenerateStreamSpec{
		{Count: 50000, Seed: seedPtr(1)},
		{Count: 50000, Seed: seedPtr(2)},
	}})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	// Every stream must close with the drain error line, none with done.
	got := map[int]string{}
	for _, line := range strings.Split(strings.TrimSpace(w.Body.String()), "\n") {
		var item GenerateItem
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("decoding line %q: %v", line, err)
		}
		if item.Done {
			t.Fatalf("stream %v reported done on a drained server", item.Stream)
		}
		if item.Error != "" && item.Stream != nil {
			got[*item.Stream] = item.Error
		}
	}
	for i := 0; i < 2; i++ {
		if got[i] != drainMessage {
			t.Errorf("stream %d final error = %q, want %q", i, got[i], drainMessage)
		}
	}
}

func TestDrainEmitsBinaryErrorFrame(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(GenerateRequest{Count: 50000, Seed: seedPtr(7)}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/models/web/generate", &buf)
	req.Header.Set("Accept", wire.ContentType)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	rd, err := wire.NewReader(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sawError bool
	for {
		f, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch f.Kind {
		case wire.KindEnd:
			t.Fatal("drained stream sent a clean End frame, want Error")
		case wire.KindError:
			sawError = true
			if f.Message() != drainMessage {
				t.Fatalf("Error frame message = %q, want %q", f.Message(), drainMessage)
			}
		}
	}
	if !sawError {
		t.Fatal("no Error frame in drained binary stream")
	}
}

// TestDrainCutsStreamMidFlight exercises the real mid-stream shape over
// a live connection: the client reads some candidates, Drain fires, and
// the stream must terminate promptly with the in-band error line.
func TestDrainCutsStreamMidFlight(t *testing.T) {
	s, reg := newTestServer(t, Options{FlushEvery: 1})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := `{"count": 10000000, "seed": 7}`
	resp, err := http.Post(ts.URL+"/v1/models/web/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
		if len(lines) == 3 {
			s.Drain() // mid-stream: candidates are already on the wire
		}
		if len(lines) > 5_000_000 {
			t.Fatal("stream did not stop after Drain")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading drained stream: %v", err)
	}
	if len(lines) < 3 {
		t.Fatalf("only %d lines before EOF; expected at least the pre-drain reads", len(lines))
	}
	var last GenerateItem
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("decoding final line %q: %v", lines[len(lines)-1], err)
	}
	if last.Error != drainMessage {
		t.Fatalf("final line = %+v, want the %q trailer", last, drainMessage)
	}
}

// TestDrainIsIdempotentAndScopedToStreams: Drain may be called twice,
// and non-streaming routes keep answering normally afterwards (shutdown
// drains connections via http.Server; the handler itself stays up).
func TestDrainIsIdempotentAndScopedToStreams(t *testing.T) {
	s, reg := newTestServer(t, Options{})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	s.Drain()
	if w := do(t, s, "GET", "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz on draining server = %d", w.Code)
	}
	if w := do(t, s, "GET", "/v1/models", nil); w.Code != http.StatusOK {
		t.Fatalf("list on draining server = %d", w.Code)
	}
}
