package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"entropyip/internal/registry"
)

// Every non-2xx answer from a /v1 handler carries ONE body shape — the
// v1 error envelope:
//
//	{"error": {"code": "...", "message": "...", "request_id": "req-..."}}
//
// The code is a stable, machine-matchable string derived from the HTTP
// status (the table below is pinned by TestErrorCodeForStatus); the
// message is human-readable and free to change; the request_id matches
// the X-Request-Id response header and the server's structured logs, so
// a client error report names the exact log records to pull. Error
// bodies used to be ad-hoc {"error": "<string>"} shapes — PR 7
// consolidated them; see docs/API.md "Errors".
//
// The NDJSON {"error":"..."} trailer line of a generate stream that
// fails after the 200 header is on the wire is NOT an error body (the
// response status is 200); its shape is part of the stream encoding and
// unchanged.

// Error codes of the v1 envelope, by HTTP status.
const (
	CodeInvalidRequest       = "invalid_request"        // 400
	CodeNotFound             = "not_found"              // 404
	CodeNotAcceptable        = "not_acceptable"         // 406
	CodePayloadTooLarge      = "payload_too_large"      // 413
	CodeUnsupportedMediaType = "unsupported_media_type" // 415
	CodeUnprocessable        = "unprocessable"          // 422
	CodeRateLimited          = "rate_limited"           // 429
	CodeInternal             = "internal"               // 500
	CodeUnavailable          = "unavailable"            // 503
)

// errorCodeForStatus maps an HTTP status to its envelope code. Statuses
// outside the table collapse to the generic code of their class, so a
// future handler cannot emit an unmapped code by accident.
func errorCodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusNotAcceptable:
		return CodeNotAcceptable
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusUnsupportedMediaType:
		return CodeUnsupportedMediaType
	case http.StatusUnprocessableEntity:
		return CodeUnprocessable
	case http.StatusTooManyRequests:
		return CodeRateLimited
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	}
	if status >= 500 {
		return CodeInternal
	}
	return CodeInvalidRequest
}

// ErrorBody is the object under "error" in the v1 error envelope.
type ErrorBody struct {
	// Code is the stable machine-matchable error class (Code* constants).
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// RequestID echoes the X-Request-Id header for log correlation.
	RequestID string `json:"request_id,omitempty"`
	// TraceID echoes the X-Trace-Id header; it keys the flight recorder
	// (GET /v1/debug/traces?trace_id=...) and the trace_id log attribute.
	TraceID string `json:"trace_id,omitempty"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error ErrorBody `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError answers with the v1 error envelope. The request supplies
// the request ID assigned by the middleware; handlers outside the
// middleware (none today) get an envelope without one.
func writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: ErrorBody{
		Code:      errorCodeForStatus(status),
		Message:   fmt.Sprintf(format, args...),
		RequestID: requestID(r.Context()),
		TraceID:   traceIDString(r.Context()),
	}})
}

// writeRegistryError maps registry errors to HTTP statuses.
func writeRegistryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, registry.ErrNotFound):
		writeError(w, r, http.StatusNotFound, "%v", err)
	default:
		writeError(w, r, http.StatusInternalServerError, "%v", err)
	}
}
