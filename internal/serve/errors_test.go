package serve

import (
	"net/http"
	"testing"
)

// TestErrorCodeForStatus pins the status ↔ code table of the v1 error
// envelope. Codes are API surface: clients match on them, so a change
// here is a breaking change and must show up as a failing test.
func TestErrorCodeForStatus(t *testing.T) {
	cases := []struct {
		status int
		code   string
	}{
		{http.StatusBadRequest, "invalid_request"},
		{http.StatusNotFound, "not_found"},
		{http.StatusNotAcceptable, "not_acceptable"},
		{http.StatusRequestEntityTooLarge, "payload_too_large"},
		{http.StatusUnsupportedMediaType, "unsupported_media_type"},
		{http.StatusUnprocessableEntity, "unprocessable"},
		{http.StatusTooManyRequests, "rate_limited"},
		{http.StatusInternalServerError, "internal"},
		{http.StatusServiceUnavailable, "unavailable"},
		// Unmapped statuses collapse to their class's generic code.
		{http.StatusConflict, "invalid_request"},
		{http.StatusBadGateway, "internal"},
	}
	for _, tc := range cases {
		if got := errorCodeForStatus(tc.status); got != tc.code {
			t.Errorf("errorCodeForStatus(%d) = %q, want %q", tc.status, got, tc.code)
		}
	}
}

// TestErrorEnvelopeShape drives every error-producing handler class and
// checks the one envelope shape comes back: code matching the status,
// a non-empty message, and a request_id equal to the X-Request-Id
// header so clients can quote the exact server-side log records.
func TestErrorEnvelopeShape(t *testing.T) {
	s, reg := newTestServer(t, Options{MaxGenerateCount: 100})
	if _, err := reg.Put("web", testModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		method string
		path   string
		body   interface{}
		status int
	}{
		{"registry 404", "POST", "/v1/models/missing/browse", BrowseRequest{}, http.StatusNotFound},
		{"validation 400", "POST", "/v1/models/web/generate", GenerateRequest{Count: 0}, http.StatusBadRequest},
		{"count limit 400", "POST", "/v1/models/web/generate", GenerateRequest{Count: 101}, http.StatusBadRequest},
		{"bad name 400", "PUT", "/v1/models/.hidden", PutModelRequest{}, http.StatusBadRequest},
		{"drift of missing model 404", "GET", "/v1/models/missing/drift", nil, http.StatusNotFound},
		{"observe missing model 404", "POST", "/v1/models/missing/observe", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		w := do(t, s, tc.method, tc.path, tc.body)
		if w.Code != tc.status {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, w.Code, tc.status, w.Body.String())
			continue
		}
		var er errorResponse
		decode(t, w, &er)
		if er.Error.Code != errorCodeForStatus(tc.status) {
			t.Errorf("%s: code = %q, want %q", tc.name, er.Error.Code, errorCodeForStatus(tc.status))
		}
		if er.Error.Message == "" {
			t.Errorf("%s: empty message", tc.name)
		}
		if want := w.Header().Get("X-Request-Id"); want == "" || er.Error.RequestID != want {
			t.Errorf("%s: request_id = %q, X-Request-Id = %q (must match, non-empty)",
				tc.name, er.Error.RequestID, want)
		}
	}
}
